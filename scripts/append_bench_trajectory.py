#!/usr/bin/env python3
"""Append one point to BENCH_trajectory.json from bench-run artifacts.

The trajectory file records how the repo's headline numbers move commit to
commit, so a perf regression is visible as a trend break instead of a
guess. Each point stores the *median* across however many repeat runs of
each bench artifact the caller passes (CI runs each bench three times;
locally one run per bench is fine — the median of one value is itself).

Usage:
  python3 scripts/append_bench_trajectory.py \
      --trajectory BENCH_trajectory.json \
      --commit "$(git rev-parse --short HEAD)" --source local \
      --fig8a BENCH_fig8a_run*.json \
      --fig8d BENCH_fig8d_run*.json \
      --throughput BENCH_throughput_run*.json \
      --storage BENCH_storage_run*.json

Any of --fig8a / --fig8d / --throughput / --storage may be omitted; the
point records whichever benches ran.
"""

import argparse
import datetime
import json
import statistics
import sys

SCHEMA = 1


def load_all(paths):
    return [json.load(open(p)) for p in paths]


def fig8a_point(runs):
    """variant -> median seconds_per_doc (plus probe_s, the join pass)."""
    by_variant = {}
    for run in runs:
        for row in run:
            by_variant.setdefault(row["variant"], []).append(row)
    return {
        variant: {
            "seconds_per_doc": statistics.median(
                r["seconds_per_doc"] for r in rows
            ),
            "probe_s": statistics.median(r["probe_s"] for r in rows),
        }
        for variant, rows in by_variant.items()
    }


def fig8d_point(runs):
    """variant -> median seconds_per_iter (plus join_s where present)."""
    by_variant = {}
    for run in runs:
        for row in run:
            by_variant.setdefault(row["variant"], []).append(row)
    return {
        variant: {
            "seconds_per_iter": statistics.median(
                r["seconds_per_iter"] for r in rows
            ),
            "join_s": statistics.median(r["join_s"] for r in rows),
        }
        for variant, rows in by_variant.items()
    }


def throughput_point(runs):
    """threads -> median virtual/wall throughput across runs."""
    by_threads = {}
    for run in runs:
        for row in run["rows"]:
            by_threads.setdefault(row["threads"], []).append(row)
    return {
        str(threads): {
            "pages_per_virtual_second": statistics.median(
                r["pages_per_virtual_second"] for r in rows
            ),
            "pages_per_wall_second": statistics.median(
                r["pages_per_wall_second"] for r in rows
            ),
        }
        for threads, rows in sorted(by_threads.items())
    }


def storage_point(runs):
    """workload/frames/shards -> median throughput and pool behaviour.

    The micro_storage --json sweep: one row per (workload, frames,
    shards) configuration; keys look like "seq/256f/4s".
    """
    by_config = {}
    for run in runs:
        for row in run:
            key = f"{row['workload']}/{row['frames']}f/{row['shards']}s"
            by_config.setdefault(key, []).append(row)
    return {
        key: {
            "ops_per_second": statistics.median(
                r["ops_per_second"] for r in rows
            ),
            "hit_ratio": statistics.median(r["hit_ratio"] for r in rows),
            "readahead_used_frac": statistics.median(
                r["readahead_used_frac"] for r in rows
            ),
        }
        for key, rows in sorted(by_config.items())
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trajectory", required=True)
    parser.add_argument("--commit", required=True)
    parser.add_argument("--source", default="local",
                        help="who measured (local, ci, ...)")
    parser.add_argument("--fig8a", nargs="*", default=[])
    parser.add_argument("--fig8d", nargs="*", default=[])
    parser.add_argument("--throughput", nargs="*", default=[])
    parser.add_argument("--storage", nargs="*", default=[])
    args = parser.parse_args()

    if not (args.fig8a or args.fig8d or args.throughput or args.storage):
        sys.exit("nothing to append: pass at least one bench artifact")

    try:
        trajectory = json.load(open(args.trajectory))
    except FileNotFoundError:
        trajectory = {"schema": SCHEMA, "points": []}
    if trajectory.get("schema") != SCHEMA:
        sys.exit(f"unsupported trajectory schema: {trajectory.get('schema')}")

    point = {
        "commit": args.commit,
        "date": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "source": args.source,
    }
    if args.fig8a:
        point["fig8a"] = fig8a_point(load_all(args.fig8a))
    if args.fig8d:
        point["fig8d"] = fig8d_point(load_all(args.fig8d))
    if args.throughput:
        point["tab_throughput"] = throughput_point(load_all(args.throughput))
    if args.storage:
        point["micro_storage"] = storage_point(load_all(args.storage))

    trajectory["points"].append(point)
    with open(args.trajectory, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    runs = max(len(args.fig8a), len(args.fig8d), len(args.throughput),
               len(args.storage))
    print(f"appended {args.commit} ({args.source}, median of {runs} run(s)) "
          f"-> {args.trajectory}: {len(trajectory['points'])} points")


if __name__ == "__main__":
    main()
