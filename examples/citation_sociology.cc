// Citation sociology (§1): "Find a topic (other than bicycling) within one
// link of bicycling pages that is much more frequent than on the web at
// large. The answer found by the system described in this paper is
// first aid."
//
// Method: run a focused crawl on cycling; classify every page within one
// link of a strongly-relevant cycling page; compare each topic's frequency
// in that neighbourhood against its frequency in a uniform sample of the
// web. Report topics by lift.
#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_set>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "text/document.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

int Run() {
  using namespace focus;

  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  auto cycling = tax.FindByName("cycling").value();
  auto first_aid = tax.FindByName("first_aid").value();

  core::FocusOptions options;
  options.seed = 7;
  options.web.pages_per_topic = 500;
  options.web.background_pages = 30000;
  options.web.background_servers = 800;

  // The synthetic web embeds the sociology: cycling pages cite first-aid
  // resources (clubs link to crash/first-aid pages).
  auto system = core::FocusSystem::Create(
                    std::move(tax), options,
                    {webgraph::TopicAffinity{cycling, first_aid, 0.10}})
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());

  crawl::CrawlerOptions crawl_options;
  crawl_options.max_fetches = 1200;
  auto seeds = system->web().KeywordSeeds(cycling, 20);
  auto session = system->NewCrawl(seeds, crawl_options).TakeValue();
  FOCUS_CHECK(session->crawler().Crawl().ok());

  const auto& clf = system->classifier();
  auto topic_of = [&](const std::string& url)
      -> std::optional<taxonomy::Cid> {
    auto fetch = system->web().Fetch(url);
    if (!fetch.ok()) return std::nullopt;
    auto scores = clf.Classify(text::BuildTermVector(fetch.value().tokens));
    return scores.BestLeaf(system->tax());
  };

  // Topic census of pages within one link of relevant cycling pages.
  std::map<taxonomy::Cid, int> neighborhood;
  std::unordered_set<std::string> judged;
  int neighborhood_total = 0;
  for (const auto& visit : session->crawler().visits()) {
    if (visit.relevance < 0.5) continue;
    auto fetch = system->web().Fetch(visit.url);
    if (!fetch.ok()) continue;
    for (const auto& out : fetch.value().outlink_urls) {
      if (!judged.insert(out).second) continue;
      if (auto topic = topic_of(out); topic.has_value()) {
        ++neighborhood[*topic];
        ++neighborhood_total;
      }
      if (neighborhood_total >= 4000) break;
    }
    if (neighborhood_total >= 4000) break;
  }

  // Topic census of the web at large (uniform page sample).
  std::map<taxonomy::Cid, int> global;
  int global_total = 0;
  Rng rng(99);
  while (global_total < 4000) {
    uint32_t index =
        static_cast<uint32_t>(rng.Uniform(system->web().num_pages()));
    if (auto topic = topic_of(system->web().page(index).url);
        topic.has_value()) {
      ++global[*topic];
      ++global_total;
    }
  }

  std::printf("topic frequency within one link of cycling pages vs the "
              "web at large (%d / %d pages judged):\n\n",
              neighborhood_total, global_total);
  std::printf("%-20s %12s %12s %8s\n", "topic", "neighborhood", "global",
              "lift");
  struct Row {
    std::string name;
    double near, far, lift;
  };
  std::vector<Row> rows;
  for (const auto& [cid, count] : neighborhood) {
    if (cid == cycling) continue;  // "other than bicycling"
    double near = static_cast<double>(count) / neighborhood_total;
    double far =
        (global.contains(cid) ? global.at(cid) : 0.25) /
        static_cast<double>(global_total);
    rows.push_back(
        {system->tax().Name(cid), near, far, near / std::max(far, 1e-6)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.lift > b.lift; });
  for (const auto& row : rows) {
    if (row.near < 0.005) continue;
    std::printf("%-20s %11.1f%% %11.1f%% %7.1fx\n", row.name.c_str(),
                100 * row.near, 100 * row.far, row.lift);
  }
  if (!rows.empty()) {
    std::printf("\nanswer: \"%s\" (the paper's answer was first aid)\n",
                rows.front().name.c_str());
  }
  return 0;
}

}  // namespace

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return Run();
}
