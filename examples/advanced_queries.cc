// The advanced queries of §1, answered over a focused crawl's relational
// state. "The novelty ... is that page content is selected by topics, not
// keyword matches":
//
//  * spam filter   — "find pages that are apparently about database
//    research which are cited by at least two pages about Hawaiian
//    vacations": topic-classified citation patterns expose endorsement
//    spam;
//  * community link census — "find the number of links from a page about
//    environmental protection to a page related to oil and natural gas"
//    (our taxonomy: mutual_funds -> investing_general): cross-community
//    citation counting.
//
// Both are plain plans over CRAWL ⋈ LINK — the reason the system lives in
// a relational database.
#include <cstdio>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "sql/exec/aggregate.h"
#include "sql/exec/basic.h"
#include "sql/exec/join.h"
#include "sql/exec/scan.h"
#include "util/logging.h"

namespace {

using namespace focus;
using sql::AggKind;
using sql::AggSpec;
using sql::Collect;
using sql::Filter;
using sql::HashAggregate;
using sql::HashJoin;
using sql::OperatorPtr;
using sql::SeqScan;
using sql::Tuple;

// CRAWL columns: 0 oid, 1 url, ..., 7 kcid, 8 visited.
OperatorPtr VisitedOfClass(sql::Table* crawl, int32_t kcid) {
  return std::make_unique<Filter>(
      std::make_unique<SeqScan>(crawl), [kcid](const Tuple& t) {
        return t.Get(8).AsInt32() != 0 && t.Get(7).AsInt32() == kcid;
      });
}

int Run() {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  auto funds = tax.FindByName("mutual_funds").value();
  auto investing = tax.FindByName("investing_general").value();
  auto databases = tax.FindByName("databases").value();
  auto yoga = tax.FindByName("yoga").value();  // our "Hawaiian vacations"

  core::FocusOptions options;
  options.seed = 71;
  options.web.pages_per_topic = 500;
  options.web.background_pages = 20000;
  options.web.background_servers = 500;
  // Link spam: yoga pages systematically endorse database pages, and the
  // funds <-> investing community citations of the §1 evolution query.
  auto system =
      core::FocusSystem::Create(
          std::move(tax), options,
          {webgraph::TopicAffinity{yoga, databases, 0.15},
           webgraph::TopicAffinity{funds, investing, 0.12}})
          .TakeValue();
  FOCUS_CHECK(system->MarkGood("business").ok());
  FOCUS_CHECK(system->Train().ok());

  // One broad crawl materializes the subgraph all queries run against;
  // mark a second interest to cover both communities.
  system->mutable_tax()->ClearMarks();
  FOCUS_CHECK(system->MarkGood("business").ok());
  FOCUS_CHECK(system->MarkGood("computers").ok());
  FOCUS_CHECK(system->MarkGood("yoga").ok());
  auto seeds = system->web().KeywordSeeds(funds, 8);
  auto more = system->web().KeywordSeeds(databases, 8);
  seeds.insert(seeds.end(), more.begin(), more.end());
  auto yoga_seeds = system->web().KeywordSeeds(yoga, 8);
  seeds.insert(seeds.end(), yoga_seeds.begin(), yoga_seeds.end());

  crawl::CrawlerOptions copts;
  copts.max_fetches = 3000;
  auto session = system->NewCrawl(seeds, copts).TakeValue();
  FOCUS_CHECK(session->crawler().Crawl().ok());
  std::printf("crawled %zu pages; LINK has %llu rows\n\n",
              session->crawler().visits().size(),
              static_cast<unsigned long long>(session->db().num_links()));

  sql::Table* crawl_t = session->db().crawl_table();
  sql::Table* link_t = session->db().link_table();

  // --- spam filter ---
  // select d.url, count(*) from CRAWL y, LINK l, CRAWL d
  // where y.kcid = 'yoga' and y.oid = l.oid_src
  //   and l.oid_dst = d.oid and d.kcid = 'databases'
  // group by d.url having count(*) >= 2
  {
    OperatorPtr yoga_pages = VisitedOfClass(crawl_t, yoga);
    OperatorPtr citations = std::make_unique<HashJoin>(
        std::move(yoga_pages), std::make_unique<SeqScan>(link_t),
        std::vector<int>{0}, std::vector<int>{0});  // y.oid = l.oid_src
    // citations: 0..8 CRAWL(y), 9..14 LINK
    OperatorPtr db_pages = VisitedOfClass(crawl_t, databases);
    OperatorPtr endorsed = std::make_unique<HashJoin>(
        std::move(db_pages), std::move(citations), std::vector<int>{0},
        std::vector<int>{11});  // d.oid = l.oid_dst
    // endorsed: 0..8 CRAWL(d), 9.. rest
    OperatorPtr counted = std::make_unique<HashAggregate>(
        std::move(endorsed), std::vector<int>{1},  // group by d.url
        std::vector<AggSpec>{AggSpec{AggKind::kCount, -1, "cnt"}});
    Filter having(std::move(counted),
                  [](const Tuple& t) { return t.Get(1).AsInt64() >= 2; });
    auto rows = Collect(&having);
    FOCUS_CHECK(rows.ok(), rows.status().ToString());
    std::printf("spam filter: %zu 'database' pages are endorsed by >= 2 "
                "'yoga' pages, e.g.:\n",
                rows.value().size());
    for (size_t i = 0; i < std::min<size_t>(5, rows.value().size()); ++i) {
      std::printf("  %-50s cited %lld times\n",
                  rows.value()[i].Get(0).AsString().c_str(),
                  static_cast<long long>(rows.value()[i].Get(1).AsInt64()));
    }
  }

  // --- community link census ---
  // select count(*) from CRAWL s, LINK l, CRAWL d
  // where s.kcid = 'mutual_funds' and d.kcid = 'investing_general'
  //   and s.oid = l.oid_src and l.oid_dst = d.oid
  {
    OperatorPtr funds_pages = VisitedOfClass(crawl_t, funds);
    OperatorPtr out_links = std::make_unique<HashJoin>(
        std::move(funds_pages), std::make_unique<SeqScan>(link_t),
        std::vector<int>{0}, std::vector<int>{0});  // s.oid = l.oid_src
    OperatorPtr investing_pages = VisitedOfClass(crawl_t, investing);
    OperatorPtr cross = std::make_unique<HashJoin>(
        std::move(investing_pages), std::move(out_links),
        std::vector<int>{0}, std::vector<int>{11});
    HashAggregate count(std::move(cross), {},
                        {AggSpec{AggKind::kCount, -1, "links"}});
    auto rows = Collect(&count);
    FOCUS_CHECK(rows.ok(), rows.status().ToString());
    long long links = rows.value().empty()
                          ? 0
                          : rows.value()[0].Get(0).AsInt64();
    std::printf("\ncommunity census: %lld links from mutual_funds pages to "
                "investing_general pages in the crawled subgraph\n",
                links);
  }
  return 0;
}

}  // namespace

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return Run();
}
