// Focused-corpus search — the paper's §3.6 outlook made concrete:
// "a standard search over the corpus ... [is] likely to be much more
// satisfying in the scope of the focused corpus."
//
// We build two corpora of equal size with the same fetch budget — one via
// a focused crawl, one via an unfocused crawl — index both, run the same
// keyword query, and compare precision@10 against ground truth.
#include <cstdio>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "text/corpus_index.h"
#include "util/logging.h"

namespace {

int Run() {
  using namespace focus;

  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 13;
  options.web.pages_per_topic = 800;
  options.web.background_pages = 40000;
  options.web.background_servers = 1000;
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 15);

  // Build a corpus from a crawl: index every fetched page's text.
  auto build_corpus = [&](crawl::ExpansionRule rule,
                          crawl::PriorityPolicy policy,
                          text::CorpusIndex* index,
                          std::unordered_map<uint64_t, std::string>* urls) {
    crawl::CrawlerOptions copts;
    copts.max_fetches = 1500;
    copts.expansion = rule;
    copts.policy = policy;
    auto session = system->NewCrawl(seeds, copts).TakeValue();
    FOCUS_CHECK(session->crawler().Crawl().ok());
    for (const auto& visit : session->crawler().visits()) {
      auto fetch = system->web().Fetch(visit.url);
      if (!fetch.ok()) continue;
      FOCUS_CHECK(index
                      ->AddDocument(visit.oid,
                                    text::BuildTermVector(
                                        fetch.value().tokens))
                      .ok());
      (*urls)[visit.oid] = visit.url;
    }
  };

  text::CorpusIndex focused_index, unfocused_index;
  std::unordered_map<uint64_t, std::string> focused_urls, unfocused_urls;
  build_corpus(crawl::ExpansionRule::kSoftFocus,
               crawl::PriorityPolicy::kAggressiveDiscovery, &focused_index,
               &focused_urls);
  build_corpus(crawl::ExpansionRule::kUnfocused,
               crawl::PriorityPolicy::kBreadthFirst, &unfocused_index,
               &unfocused_urls);
  std::printf("focused corpus: %zu docs; unfocused corpus: %zu docs\n\n",
              focused_index.num_documents(),
              unfocused_index.num_documents());

  // The query: the topic's characteristic keywords (cycl* bicycl* bike).
  auto query = system->web().TopicKeywords(cycling, 3);
  std::printf("query: %s %s %s\n\n", query[0].c_str(), query[1].c_str(),
              query[2].c_str());

  auto evaluate = [&](const char* name, const text::CorpusIndex& index,
                      const std::unordered_map<uint64_t, std::string>&
                          urls) {
    int in_corpus = 0;
    for (const auto& [oid, url] : urls) {
      auto idx = system->web().PageIndexByUrl(url);
      if (idx.ok() && system->web().page(idx.value()).topic == cycling) {
        ++in_corpus;
      }
    }
    auto top10 = index.Search(query, 10);
    int p10 = 0;
    for (const auto& r : top10) {
      auto idx = system->web().PageIndexByUrl(urls.at(r.did));
      p10 += idx.ok() &&
             system->web().page(idx.value()).topic == cycling;
    }
    auto top500 = index.Search(query, 500);
    int good500 = 0;
    for (const auto& r : top500) {
      auto idx = system->web().PageIndexByUrl(urls.at(r.did));
      good500 += idx.ok() &&
                 system->web().page(idx.value()).topic == cycling;
    }
    std::printf("%-10s corpus: %4d relevant pages indexed | "
                "precision@10 = %.1f | relevant in top-500 = %d\n",
                name, in_corpus, p10 / 10.0, good500);
    return good500;
  };
  int focused_found = evaluate("focused", focused_index, focused_urls);
  int unfocused_found = evaluate("unfocused", unfocused_index,
                                 unfocused_urls);
  std::printf("\nwith the same fetch budget, searching the focused corpus "
              "surfaces %.1fx as many relevant resources\n",
              static_cast<double>(focused_found) /
                  std::max(unfocused_found, 1));
  return 0;
}

}  // namespace

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return Run();
}
