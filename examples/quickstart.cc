// Quickstart: the whole Focus pipeline in one page of code.
//
//   1. build a topic taxonomy and mark the topics of interest "good"
//   2. train the hierarchical classifier from example documents
//   3. run a focused crawl from keyword-search seeds
//   4. distill the crawl graph into topical hubs and authorities
//
// Run:  ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "util/logging.h"

namespace {

int Run(uint64_t seed) {
  using namespace focus;

  // 1. Taxonomy: a Yahoo!-style category tree; we are interested in
  // cycling pages.
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();

  core::FocusOptions options;
  options.seed = seed;
  options.web.pages_per_topic = 600;
  options.web.background_pages = 40000;
  options.web.background_servers = 1000;

  auto system_or = core::FocusSystem::Create(std::move(tax), options);
  if (!system_or.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = system_or.TakeValue();
  if (auto s = system->MarkGood("cycling"); !s.ok()) {
    std::fprintf(stderr, "mark: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Train the classifier from example documents.
  if (auto s = system->Train(); !s.ok()) {
    std::fprintf(stderr, "train: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("trained classifier over %d topics\n",
              system->tax().num_topics());

  // 3. Focused crawl from a keyword search ("cycl* bicycl* bike").
  auto cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 20);
  std::printf("seeding crawl with %zu keyword-search results, e.g. %s\n",
              seeds.size(), seeds.front().c_str());

  crawl::CrawlerOptions crawl_options;
  crawl_options.max_fetches = 1000;
  crawl_options.distill_every = 250;  // periodic hub boosts
  auto session_or = system->NewCrawl(seeds, crawl_options);
  if (!session_or.ok()) {
    std::fprintf(stderr, "crawl setup: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  auto session = session_or.TakeValue();
  if (auto s = session->crawler().Crawl(); !s.ok()) {
    std::fprintf(stderr, "crawl: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto& visits = session->crawler().visits();
  auto harvest = crawl::MovingAverageRelevance(visits, 100);
  std::printf("crawled %zu pages in %.1f virtual minutes; "
              "final harvest rate (avg over 100) = %.2f\n",
              visits.size(), session->crawler().clock().NowSeconds() / 60,
              harvest.back());

  // 4. Distill hubs and authorities from the crawl graph.
  auto distilled = session->Distill({.iterations = 20, .rho = 0.1}, 10);
  if (!distilled.ok()) {
    std::fprintf(stderr, "distill: %s\n",
                 distilled.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop cycling hubs:\n");
  for (const auto& hub : distilled.value().hubs) {
    std::printf("  %-50s  score %.4f\n", hub.url.c_str(), hub.score);
  }
  std::printf("\ntop cycling authorities:\n");
  for (const auto& auth : distilled.value().authorities) {
    std::printf("  %-50s  score %.4f\n", auth.url.c_str(), auth.score);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  return Run(seed);
}
