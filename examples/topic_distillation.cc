// Topic distillation over a focused crawl (§3.6 / Figure 7).
//
// Crawls the cycling community, distills hubs/authorities with the
// relevance-weighted HITS, prints the top resource lists (the paper's
// table of cycling hubs) and the histogram of shortest link distances from
// the start set to the top authorities — showing the crawler found
// excellent resources many links from any seed.
#include <cstdio>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "util/hash.h"
#include "util/logging.h"

namespace {

int Run() {
  using namespace focus;

  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 3;
  options.web.pages_per_topic = 1500;
  options.web.background_pages = 30000;
  options.web.background_servers = 800;
  // A community with a large effective radius: tight topical locality,
  // few long-range shortcuts (Figure 7's regime).
  options.web.locality_window = 12;
  options.web.p_long_range = 0.02;
  options.web.hub_locality_window = 30;

  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());

  auto cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 5);

  crawl::CrawlerOptions crawl_options;
  crawl_options.max_fetches = 2500;
  crawl_options.distill_every = 500;
  auto session = system->NewCrawl(seeds, crawl_options).TakeValue();
  FOCUS_CHECK(session->crawler().Crawl().ok());
  std::printf("crawled %zu pages\n", session->crawler().visits().size());

  auto result = session->Distill({.iterations = 25, .rho = 0.2}, 100);
  FOCUS_CHECK(result.ok(), result.status().ToString());

  std::printf("\ntop 15 hubs for cycling:\n");
  for (size_t i = 0; i < 15 && i < result.value().hubs.size(); ++i) {
    const auto& hub = result.value().hubs[i];
    std::printf("  %-55s %.4f\n", hub.url.c_str(), hub.score);
  }

  // Distance histogram: shortest distance (within the crawled graph) from
  // the seed set to the top 100 authorities.
  std::vector<uint64_t> sources;
  sources.reserve(seeds.size());
  for (const auto& url : seeds) sources.push_back(UrlOid(url));
  std::vector<uint64_t> targets;
  targets.reserve(result.value().authorities.size());
  for (const auto& auth : result.value().authorities) {
    targets.push_back(auth.oid);
  }
  auto distances =
      crawl::CrawledGraphDistances(session->db(), sources, targets);
  FOCUS_CHECK(distances.ok());
  auto hist = crawl::DistanceHistogram(distances.value(), 15);
  std::printf("\nshortest distance from the start set to the top %zu "
              "authorities:\n", targets.size());
  for (size_t d = 0; d < hist.size(); ++d) {
    if (hist[d] == 0) continue;
    std::printf("  %2zu links: %3d %s\n", d, hist[d],
                std::string(hist[d], '#').c_str());
  }
  return 0;
}

}  // namespace

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return Run();
}
