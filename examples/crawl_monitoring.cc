// Crawl monitoring and tweaking (§3.7): the mutual-funds story.
//
// "Only one crawl dropped in relevance (mutual funds). To diagnose why, we
// asked [the census query]. This query immediately revealed that the
// neighborhood of most pages on mutual funds contained pages on investment
// in general... One update statement marking the ancestor good fixed this
// stagnation problem."
//
// We reproduce it end to end: a soft-focus crawl on the narrow topic
// yields a depressed harvest; the census query shows the neighbourhood is
// general-investing material judged irrelevant; re-marking the broader
// category good recovers the harvest.
#include <cstdio>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "crawl/monitor.h"
#include "util/logging.h"

namespace {

double FinalHarvest(const std::vector<focus::crawl::Visit>& visits) {
  auto series = focus::crawl::MovingAverageRelevance(visits, 300);
  return series.empty() ? 0.0 : series.back();
}

int Run() {
  using namespace focus;

  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  auto funds = tax.FindByName("mutual_funds").value();
  auto investing = tax.FindByName("investing_general").value();
  auto banking = tax.FindByName("banking").value();

  core::FocusOptions options;
  options.seed = 11;
  options.web.pages_per_topic = 500;
  options.web.background_pages = 30000;
  options.web.background_servers = 800;

  // Mutual-fund pages cite general investing and banking pages heavily —
  // the neighbourhood structure the paper diagnosed.
  auto system =
      core::FocusSystem::Create(
          std::move(tax), options,
          {webgraph::TopicAffinity{funds, investing, 0.18},
           webgraph::TopicAffinity{funds, banking, 0.08},
           webgraph::TopicAffinity{investing, funds, 0.10}})
          .TakeValue();
  FOCUS_CHECK(system->MarkGood("mutual_funds").ok());
  FOCUS_CHECK(system->Train().ok());

  auto seeds = system->web().KeywordSeeds(funds, 10);

  // --- the drooping crawl: good = {mutual_funds} only ---
  crawl::CrawlerOptions copts;
  copts.max_fetches = 1500;
  auto session = system->NewCrawl(seeds, copts).TakeValue();
  FOCUS_CHECK(session->crawler().Crawl().ok());
  std::printf("crawl with good = {mutual_funds}: %zu pages, final harvest "
              "= %.2f  <- dropped\n\n",
              session->crawler().visits().size(),
              FinalHarvest(session->crawler().visits()));

  // --- diagnose with the census query of §3.7 ---
  std::printf("census query (select kcid, count(oid) from CRAWL group by "
              "kcid order by cnt), top classes:\n");
  auto census = crawl::ClassCensus(session->db(), system->tax());
  FOCUS_CHECK(census.ok());
  size_t n = census.value().size();
  for (size_t i = n > 6 ? n - 6 : 0; i < n; ++i) {
    std::printf("  %-20s %6lld pages\n", census.value()[i].name.c_str(),
                static_cast<long long>(census.value()[i].count));
  }
  std::printf("\nper-minute harvest (the monitoring applet's query):\n");
  auto by_minute = crawl::HarvestByMinute(session->db());
  FOCUS_CHECK(by_minute.ok());
  for (const auto& m : by_minute.value()) {
    std::printf("  minute %3lld: avg relevance %.3f over %lld pages\n",
                static_cast<long long>(m.minute), m.avg_relevance,
                static_cast<long long>(m.pages));
  }

  // --- the fix: one marking update on the ancestor category ---
  std::printf("\nfix: the neighbourhood is general business/investing "
              "material; mark the ancestor 'business' good\n\n");
  system->mutable_tax()->ClearMarks();
  FOCUS_CHECK(system->MarkGood("business").ok());

  auto fixed = system->NewCrawl(seeds, copts).TakeValue();
  FOCUS_CHECK(fixed->crawler().Crawl().ok());
  std::printf("crawl with good = {business}: %zu pages, final harvest "
              "= %.2f  <- recovered\n",
              fixed->crawler().visits().size(),
              FinalHarvest(fixed->crawler().visits()));
  return 0;
}

}  // namespace

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return Run();
}
