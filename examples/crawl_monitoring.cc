// Crawl monitoring and tweaking (§3.7): the mutual-funds story.
//
// "Only one crawl dropped in relevance (mutual funds). To diagnose why, we
// asked [the census query]. This query immediately revealed that the
// neighborhood of most pages on mutual funds contained pages on investment
// in general... One update statement marking the ancestor good fixed this
// stagnation problem."
//
// We reproduce it end to end: a soft-focus crawl on the narrow topic
// yields a depressed harvest; the census query shows the neighbourhood is
// general-investing material judged irrelevant; re-marking the broader
// category good recovers the harvest.
//
// Along the way this example doubles as the observability tour: the
// pipeline stage report, the registry-delta reporter, the crawl event log
// with a provenance-path reconstruction, EXPLAIN-ANALYZE plan reports for
// the Figure 3 classifier plan and a Figure 4 distillation iteration, and
// (with --admin-port N) the live admin introspection server:
//
//   crawl_monitoring --admin-port 0 --admin-linger 30
//
// starts the read-only HTTP server on an ephemeral loopback port (printed
// on stdout), then keeps the process alive for 30 s after the tour so
// /metrics, /events, /frontier etc. can be scraped.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/batch_evaluator.h"
#include "crawl/metrics.h"
#include "crawl/monitor.h"
#include "crawl/provenance.h"
#include "distill/join_distiller.h"
#include "obs/admin_server.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "sql/catalog.h"
#include "sql/exec/analyze.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "text/document.h"
#include "util/clock.h"
#include "util/logging.h"

namespace {

double FinalHarvest(const std::vector<focus::crawl::Visit>& visits) {
  auto series = focus::crawl::MovingAverageRelevance(visits, 300);
  return series.empty() ? 0.0 : series.back();
}

int Run(int admin_port, int admin_linger_s) {
  using namespace focus;

  // The event log records the full URL lifecycle for both crawls; the
  // provenance section below reconstructs a discovery path from it.
  obs::EventLog event_log;
  event_log.Enable();

  obs::AdminServer::Options admin_opts;
  admin_opts.port = admin_port < 0 ? 0 : admin_port;
  admin_opts.events = &event_log;  // metrics/trace default to the globals
  obs::AdminServer admin(admin_opts);
  if (admin_port >= 0) {
    FOCUS_CHECK(admin.Start().ok());
    std::printf("admin server listening on http://127.0.0.1:%d\n",
                admin.port());
    std::fflush(stdout);
  }

  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  auto funds = tax.FindByName("mutual_funds").value();
  auto investing = tax.FindByName("investing_general").value();
  auto banking = tax.FindByName("banking").value();

  core::FocusOptions options;
  options.seed = 11;
  options.web.pages_per_topic = 500;
  options.web.background_pages = 30000;
  options.web.background_servers = 800;
  // A mildly hostile web, so the stage report's fault line has content:
  // a few percent of fetches fail transiently, some pages are gone for
  // good, some transfers are cut short, and a sliver of servers is flaky.
  options.web.fetch_failure_prob = 0.04;
  options.web.faults.permanent_prob = 0.01;
  options.web.faults.timeout_prob = 0.01;
  options.web.faults.truncate_prob = 0.02;
  options.web.faults.flaky_server_fraction = 0.03;

  // Mutual-fund pages cite general investing and banking pages heavily —
  // the neighbourhood structure the paper diagnosed.
  auto system =
      core::FocusSystem::Create(
          std::move(tax), options,
          {webgraph::TopicAffinity{funds, investing, 0.18},
           webgraph::TopicAffinity{funds, banking, 0.08},
           webgraph::TopicAffinity{investing, funds, 0.10}})
          .TakeValue();
  FOCUS_CHECK(system->MarkGood("mutual_funds").ok());
  FOCUS_CHECK(system->Train().ok());

  auto seeds = system->web().KeywordSeeds(funds, 10);

  // --- the drooping crawl: good = {mutual_funds} only ---
  crawl::CrawlerOptions copts;
  copts.max_fetches = 1500;
  copts.num_threads = 4;  // the pipeline, so the stage report has content
  copts.event_log = &event_log;
  // Baseline the registry-delta reporter before any pages move. With
  // Start() it would log a delta every interval; here we pull one report
  // by hand after the crawl so the output stays deterministic.
  obs::PeriodicReporter reporter;
  auto session = system->NewCrawl(seeds, copts).TakeValue();
  crawl::RegisterCrawlAdminEndpoints(&admin, &session->crawler());
  FOCUS_CHECK(session->crawler().Crawl().ok());
  std::printf("crawl with good = {mutual_funds}: %zu pages, final harvest "
              "= %.2f  <- dropped\n\n",
              session->crawler().visits().size(),
              FinalHarvest(session->crawler().visits()));

  std::printf("pipeline stage report for the drooping crawl:\n%s\n",
              crawl::FormatStageMetrics(
                  session->crawler().stage_metrics().Snapshot())
                  .c_str());
  const crawl::CrawlStats& cstats = session->crawler().stats();
  std::printf("hostile-web accounting: %llu attempts = %zu visits + %llu "
              "retried failures + %llu dropped urls\n\n",
              static_cast<unsigned long long>(cstats.attempts),
              session->crawler().visits().size(),
              static_cast<unsigned long long>(cstats.transient_failures),
              static_cast<unsigned long long>(cstats.dropped_urls));
  std::printf("registry counters moved since crawl start:\n%s\n",
              reporter.ReportOnce().c_str());

  // --- diagnose with the census query of §3.7 ---
  std::printf("census query (select kcid, count(oid) from CRAWL group by "
              "kcid order by cnt), top classes:\n");
  auto census = crawl::ClassCensus(session->db(), system->tax());
  FOCUS_CHECK(census.ok());
  size_t n = census.value().size();
  for (size_t i = n > 6 ? n - 6 : 0; i < n; ++i) {
    std::printf("  %-20s %6lld pages\n", census.value()[i].name.c_str(),
                static_cast<long long>(census.value()[i].count));
  }
  std::printf("\nper-minute harvest (the monitoring applet's query):\n");
  auto by_minute = crawl::HarvestByMinute(session->db());
  FOCUS_CHECK(by_minute.ok());
  for (const auto& m : by_minute.value()) {
    std::printf("  minute %3lld: avg relevance %.3f over %lld pages\n",
                static_cast<long long>(m.minute), m.avg_relevance,
                static_cast<long long>(m.pages));
  }

  // --- the fix: one marking update on the ancestor category ---
  std::printf("\nfix: the neighbourhood is general business/investing "
              "material; mark the ancestor 'business' good\n\n");
  system->mutable_tax()->ClearMarks();
  FOCUS_CHECK(system->MarkGood("business").ok());

  // Provenance is a per-session story: drop the drooping crawl's events so
  // path walks below never chain into the other session's history.
  event_log.Clear();
  auto fixed = system->NewCrawl(seeds, copts).TakeValue();
  crawl::RegisterCrawlAdminEndpoints(&admin, &fixed->crawler());
  FOCUS_CHECK(fixed->crawler().Crawl().ok());
  std::printf("crawl with good = {business}: %zu pages, final harvest "
              "= %.2f  <- recovered\n",
              fixed->crawler().visits().size(),
              FinalHarvest(fixed->crawler().visits()));

  // --- provenance: how did the crawler reach its last find? ---
  // Every admit/fetch/retry/breaker decision is in the event log; the
  // canned query walks first-admit edges back to a seed (§3.7 asks "why is
  // the crawler here?" — this answers it for any URL).
  const auto& visits = fixed->crawler().visits();
  if (!visits.empty()) {
    // Prefer a multi-hop story over a seed: walk back from the last visit
    // until a path at least three hops deep turns up.
    std::vector<crawl::DiscoveryHop> best;
    for (size_t i = visits.size(); i-- > 0 && i + 200 >= visits.size();) {
      auto path =
          crawl::DiscoveryPath(event_log, fixed->db(), visits[i].oid);
      FOCUS_CHECK(path.ok());
      if (path.value().size() > best.size()) best = path.TakeValue();
      if (best.size() >= 3) break;
    }
    std::printf("\ndiscovery path of a recently visited page (%llu events "
                "logged so far):\n%s",
                static_cast<unsigned long long>(event_log.TotalRecorded()),
                crawl::FormatDiscoveryPath(best).c_str());
  }

  // --- under the hood: EXPLAIN ANALYZE the two relational workhorses ---
  // (a) The Figure 3 bulk-probe classifier plan, over a small batch of
  // mutual-fund pages, in its own scratch catalog (like the benches).
  std::vector<text::TermVector> docs;
  VirtualClock fetch_clock;
  for (const std::string& url : system->web().KeywordSeeds(funds, 6)) {
    // The web is hostile here too: retry transients a few times, skip
    // pages that stay down (the crawler proper does this via RetryPolicy).
    for (int attempt = 0; attempt < 4; ++attempt) {
      auto fetched = system->web().Fetch(url, &fetch_clock);
      if (fetched.ok()) {
        docs.push_back(text::BuildTermVector(fetched.value().tokens));
        break;
      }
    }
  }
  FOCUS_CHECK(!docs.empty());
  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 4096);
  sql::Catalog catalog(&pool);
  auto tables = classify::BuildClassifierTables(&catalog, system->tax(),
                                                system->model());
  FOCUS_CHECK(tables.ok());
  classify::BulkProbeClassifier bulk(&system->classifier(),
                                     &tables.value());
  crawl::BatchRelevanceEvaluator batch_eval(&bulk, &system->classifier(),
                                            &catalog);
  sql::PlanStats classify_plan;
  FOCUS_CHECK(batch_eval.JudgeBatchWithPlan(docs, &classify_plan).ok());
  std::printf("\nEXPLAIN ANALYZE, bulk-probe classification of a %zu-page "
              "batch (Figure 3):\n%s",
              docs.size(), classify_plan.Format().c_str());

  // (b) One Figure 4 distillation iteration over the recovered crawl's
  // link graph (Distill first seeds HUBS/AUTH and refreshes edge weights).
  distill::HitsOptions hopts;
  FOCUS_CHECK(fixed->Distill(hopts, 5).ok());
  distill::JoinDistiller distiller(fixed->distill_tables());
  FOCUS_CHECK(distiller.Initialize().ok());  // reseed HUBS, bind columns
  sql::PlanStats distill_plan;
  FOCUS_CHECK(distiller.RunIterationWithPlan(hopts.rho, &distill_plan).ok());
  std::printf("\nEXPLAIN ANALYZE, one HITS iteration as joins "
              "(Figure 4):\n%s",
              distill_plan.Format().c_str());

  // --- where the batch engine spent its time, process-wide ---
  // Every instrumented BatchOperator::NextBatch feeds the global registry
  // (see sql/exec/batch_ops.h): batches produced, a rows-per-batch
  // histogram, and per-operator self time. Summed over both crawls plus
  // the two plans above, this is the engine's own profile of where
  // classification and distillation time went.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  auto batch_counters = registry.CounterValues();
  obs::HistogramSnapshot rows_per_batch =
      registry.GetHistogram("focus_sql_rows_per_batch")->Snapshot();
  std::printf("\nbatch engine counters (process-wide):\n");
  std::printf("  batches produced: %llu; rows/batch mean %.0f, "
              "p50 ~%.0f, p99 ~%.0f\n",
              static_cast<unsigned long long>(
                  batch_counters["focus_sql_batches_total"]),
              rows_per_batch.Mean(), rows_per_batch.Quantile(0.5),
              rows_per_batch.Quantile(0.99));
  const std::string kOpPrefix = "focus_sql_batch_op_micros_total{op=\"";
  std::vector<std::pair<uint64_t, std::string>> op_micros;
  for (const auto& [key, value] : batch_counters) {
    if (key.rfind(kOpPrefix, 0) != 0) continue;
    std::string op = key.substr(kOpPrefix.size());
    if (size_t quote = op.find('"'); quote != std::string::npos) {
      op.resize(quote);
    }
    op_micros.emplace_back(value, op);
  }
  std::sort(op_micros.rbegin(), op_micros.rend());
  std::printf("  self time by operator:\n");
  for (const auto& [micros, op] : op_micros) {
    std::printf("    %-18s %9.2f ms\n", op.c_str(), micros / 1000.0);
  }

  // Keep serving so a scraper (the CI smoke job, a human with curl) can
  // hit the admin endpoints after the tour finishes.
  if (admin.running() && admin_linger_s > 0) {
    std::printf("\nlingering %d s for admin scrapes...\n", admin_linger_s);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(admin_linger_s));
  }
  admin.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  int admin_port = -1;   // -1 = no admin server
  int admin_linger_s = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--admin-port") == 0 && i + 1 < argc) {
      admin_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--admin-linger") == 0 && i + 1 < argc) {
      admin_linger_s = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--admin-port N] [--admin-linger SECONDS]\n",
                   argv[0]);
      return 2;
    }
  }
  return Run(admin_port, admin_linger_s);
}
