# Empty dependencies file for fig8a_classifier_time.
# This may be replaced when dependencies are built.
