file(REMOVE_RECURSE
  "CMakeFiles/fig8a_classifier_time.dir/fig8a_classifier_time.cc.o"
  "CMakeFiles/fig8a_classifier_time.dir/fig8a_classifier_time.cc.o.d"
  "fig8a_classifier_time"
  "fig8a_classifier_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_classifier_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
