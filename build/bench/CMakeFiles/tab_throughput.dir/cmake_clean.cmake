file(REMOVE_RECURSE
  "CMakeFiles/tab_throughput.dir/tab_throughput.cc.o"
  "CMakeFiles/tab_throughput.dir/tab_throughput.cc.o.d"
  "tab_throughput"
  "tab_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
