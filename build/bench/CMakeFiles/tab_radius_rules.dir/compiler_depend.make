# Empty compiler generated dependencies file for tab_radius_rules.
# This may be replaced when dependencies are built.
