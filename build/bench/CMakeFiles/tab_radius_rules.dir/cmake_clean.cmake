file(REMOVE_RECURSE
  "CMakeFiles/tab_radius_rules.dir/tab_radius_rules.cc.o"
  "CMakeFiles/tab_radius_rules.dir/tab_radius_rules.cc.o.d"
  "tab_radius_rules"
  "tab_radius_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_radius_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
