file(REMOVE_RECURSE
  "CMakeFiles/fig8b_memory_scaling.dir/fig8b_memory_scaling.cc.o"
  "CMakeFiles/fig8b_memory_scaling.dir/fig8b_memory_scaling.cc.o.d"
  "fig8b_memory_scaling"
  "fig8b_memory_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_memory_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
