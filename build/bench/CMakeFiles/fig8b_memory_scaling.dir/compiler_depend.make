# Empty compiler generated dependencies file for fig8b_memory_scaling.
# This may be replaced when dependencies are built.
