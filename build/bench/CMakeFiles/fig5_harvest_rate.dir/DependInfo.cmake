
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_harvest_rate.cc" "bench/CMakeFiles/fig5_harvest_rate.dir/fig5_harvest_rate.cc.o" "gcc" "bench/CMakeFiles/fig5_harvest_rate.dir/fig5_harvest_rate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/focus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crawl/CMakeFiles/focus_crawl.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/focus_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/distill/CMakeFiles/focus_distill.dir/DependInfo.cmake"
  "/root/repo/build/src/webgraph/CMakeFiles/focus_webgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/focus_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/focus_text.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/focus_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/focus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/focus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
