# Empty dependencies file for fig5_harvest_rate.
# This may be replaced when dependencies are built.
