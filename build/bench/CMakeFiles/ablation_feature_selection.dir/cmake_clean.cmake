file(REMOVE_RECURSE
  "CMakeFiles/ablation_feature_selection.dir/ablation_feature_selection.cc.o"
  "CMakeFiles/ablation_feature_selection.dir/ablation_feature_selection.cc.o.d"
  "ablation_feature_selection"
  "ablation_feature_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feature_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
