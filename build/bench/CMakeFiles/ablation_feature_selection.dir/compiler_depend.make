# Empty compiler generated dependencies file for ablation_feature_selection.
# This may be replaced when dependencies are built.
