file(REMOVE_RECURSE
  "CMakeFiles/micro_distill.dir/micro_distill.cc.o"
  "CMakeFiles/micro_distill.dir/micro_distill.cc.o.d"
  "micro_distill"
  "micro_distill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_distill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
