# Empty dependencies file for micro_distill.
# This may be replaced when dependencies are built.
