file(REMOVE_RECURSE
  "CMakeFiles/ablation_crawl_policy.dir/ablation_crawl_policy.cc.o"
  "CMakeFiles/ablation_crawl_policy.dir/ablation_crawl_policy.cc.o.d"
  "ablation_crawl_policy"
  "ablation_crawl_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crawl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
