# Empty dependencies file for ablation_crawl_policy.
# This may be replaced when dependencies are built.
