file(REMOVE_RECURSE
  "CMakeFiles/fig8d_distillation.dir/fig8d_distillation.cc.o"
  "CMakeFiles/fig8d_distillation.dir/fig8d_distillation.cc.o.d"
  "fig8d_distillation"
  "fig8d_distillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8d_distillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
