# Empty dependencies file for fig8d_distillation.
# This may be replaced when dependencies are built.
