file(REMOVE_RECURSE
  "CMakeFiles/ablation_cho_orderings.dir/ablation_cho_orderings.cc.o"
  "CMakeFiles/ablation_cho_orderings.dir/ablation_cho_orderings.cc.o.d"
  "ablation_cho_orderings"
  "ablation_cho_orderings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cho_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
