# Empty compiler generated dependencies file for ablation_cho_orderings.
# This may be replaced when dependencies are built.
