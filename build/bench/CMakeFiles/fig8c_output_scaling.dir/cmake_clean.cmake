file(REMOVE_RECURSE
  "CMakeFiles/fig8c_output_scaling.dir/fig8c_output_scaling.cc.o"
  "CMakeFiles/fig8c_output_scaling.dir/fig8c_output_scaling.cc.o.d"
  "fig8c_output_scaling"
  "fig8c_output_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_output_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
