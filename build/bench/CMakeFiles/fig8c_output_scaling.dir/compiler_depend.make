# Empty compiler generated dependencies file for fig8c_output_scaling.
# This may be replaced when dependencies are built.
