# Empty compiler generated dependencies file for ablation_distillation.
# This may be replaced when dependencies are built.
