file(REMOVE_RECURSE
  "CMakeFiles/ablation_distillation.dir/ablation_distillation.cc.o"
  "CMakeFiles/ablation_distillation.dir/ablation_distillation.cc.o.d"
  "ablation_distillation"
  "ablation_distillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
