# Empty dependencies file for fig7_distance_histogram.
# This may be replaced when dependencies are built.
