file(REMOVE_RECURSE
  "CMakeFiles/fig7_distance_histogram.dir/fig7_distance_histogram.cc.o"
  "CMakeFiles/fig7_distance_histogram.dir/fig7_distance_histogram.cc.o.d"
  "fig7_distance_histogram"
  "fig7_distance_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_distance_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
