file(REMOVE_RECURSE
  "CMakeFiles/classify_random_taxonomy_test.dir/classify_random_taxonomy_test.cc.o"
  "CMakeFiles/classify_random_taxonomy_test.dir/classify_random_taxonomy_test.cc.o.d"
  "classify_random_taxonomy_test"
  "classify_random_taxonomy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_random_taxonomy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
