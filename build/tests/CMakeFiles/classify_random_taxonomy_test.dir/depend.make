# Empty dependencies file for classify_random_taxonomy_test.
# This may be replaced when dependencies are built.
