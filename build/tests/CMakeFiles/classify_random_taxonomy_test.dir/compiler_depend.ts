# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for classify_random_taxonomy_test.
