file(REMOVE_RECURSE
  "CMakeFiles/frontier_property_test.dir/frontier_property_test.cc.o"
  "CMakeFiles/frontier_property_test.dir/frontier_property_test.cc.o.d"
  "frontier_property_test"
  "frontier_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontier_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
