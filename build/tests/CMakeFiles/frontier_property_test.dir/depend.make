# Empty dependencies file for frontier_property_test.
# This may be replaced when dependencies are built.
