file(REMOVE_RECURSE
  "CMakeFiles/webgraph_extra_test.dir/webgraph_extra_test.cc.o"
  "CMakeFiles/webgraph_extra_test.dir/webgraph_extra_test.cc.o.d"
  "webgraph_extra_test"
  "webgraph_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webgraph_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
