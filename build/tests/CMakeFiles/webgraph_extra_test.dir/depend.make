# Empty dependencies file for webgraph_extra_test.
# This may be replaced when dependencies are built.
