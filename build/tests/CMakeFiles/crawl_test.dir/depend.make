# Empty dependencies file for crawl_test.
# This may be replaced when dependencies are built.
