file(REMOVE_RECURSE
  "CMakeFiles/distill_extra_test.dir/distill_extra_test.cc.o"
  "CMakeFiles/distill_extra_test.dir/distill_extra_test.cc.o.d"
  "distill_extra_test"
  "distill_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distill_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
