# Empty dependencies file for distill_extra_test.
# This may be replaced when dependencies are built.
