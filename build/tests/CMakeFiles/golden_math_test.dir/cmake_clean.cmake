file(REMOVE_RECURSE
  "CMakeFiles/golden_math_test.dir/golden_math_test.cc.o"
  "CMakeFiles/golden_math_test.dir/golden_math_test.cc.o.d"
  "golden_math_test"
  "golden_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
