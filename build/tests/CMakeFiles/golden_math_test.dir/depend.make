# Empty dependencies file for golden_math_test.
# This may be replaced when dependencies are built.
