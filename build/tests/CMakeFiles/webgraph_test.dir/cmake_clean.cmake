file(REMOVE_RECURSE
  "CMakeFiles/webgraph_test.dir/webgraph_test.cc.o"
  "CMakeFiles/webgraph_test.dir/webgraph_test.cc.o.d"
  "webgraph_test"
  "webgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
