# Empty dependencies file for webgraph_test.
# This may be replaced when dependencies are built.
