# Empty dependencies file for monitoring_integration_test.
# This may be replaced when dependencies are built.
