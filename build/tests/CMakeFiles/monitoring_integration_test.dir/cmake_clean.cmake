file(REMOVE_RECURSE
  "CMakeFiles/monitoring_integration_test.dir/monitoring_integration_test.cc.o"
  "CMakeFiles/monitoring_integration_test.dir/monitoring_integration_test.cc.o.d"
  "monitoring_integration_test"
  "monitoring_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
