# Empty compiler generated dependencies file for crawler_features_test.
# This may be replaced when dependencies are built.
