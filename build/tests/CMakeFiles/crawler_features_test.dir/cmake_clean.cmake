file(REMOVE_RECURSE
  "CMakeFiles/crawler_features_test.dir/crawler_features_test.cc.o"
  "CMakeFiles/crawler_features_test.dir/crawler_features_test.cc.o.d"
  "crawler_features_test"
  "crawler_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawler_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
