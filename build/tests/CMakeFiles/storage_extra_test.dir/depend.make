# Empty dependencies file for storage_extra_test.
# This may be replaced when dependencies are built.
