# Empty compiler generated dependencies file for classify_extra_test.
# This may be replaced when dependencies are built.
