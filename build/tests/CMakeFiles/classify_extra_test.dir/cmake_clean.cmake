file(REMOVE_RECURSE
  "CMakeFiles/classify_extra_test.dir/classify_extra_test.cc.o"
  "CMakeFiles/classify_extra_test.dir/classify_extra_test.cc.o.d"
  "classify_extra_test"
  "classify_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
