# Empty compiler generated dependencies file for corpus_index_test.
# This may be replaced when dependencies are built.
