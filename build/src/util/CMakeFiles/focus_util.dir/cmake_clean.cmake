file(REMOVE_RECURSE
  "CMakeFiles/focus_util.dir/logging.cc.o"
  "CMakeFiles/focus_util.dir/logging.cc.o.d"
  "CMakeFiles/focus_util.dir/random.cc.o"
  "CMakeFiles/focus_util.dir/random.cc.o.d"
  "CMakeFiles/focus_util.dir/status.cc.o"
  "CMakeFiles/focus_util.dir/status.cc.o.d"
  "CMakeFiles/focus_util.dir/string_util.cc.o"
  "CMakeFiles/focus_util.dir/string_util.cc.o.d"
  "CMakeFiles/focus_util.dir/thread_pool.cc.o"
  "CMakeFiles/focus_util.dir/thread_pool.cc.o.d"
  "libfocus_util.a"
  "libfocus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
