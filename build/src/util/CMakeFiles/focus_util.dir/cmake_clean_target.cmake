file(REMOVE_RECURSE
  "libfocus_util.a"
)
