# Empty compiler generated dependencies file for focus_util.
# This may be replaced when dependencies are built.
