file(REMOVE_RECURSE
  "CMakeFiles/focus_distill.dir/distiller.cc.o"
  "CMakeFiles/focus_distill.dir/distiller.cc.o.d"
  "CMakeFiles/focus_distill.dir/hits.cc.o"
  "CMakeFiles/focus_distill.dir/hits.cc.o.d"
  "CMakeFiles/focus_distill.dir/join_distiller.cc.o"
  "CMakeFiles/focus_distill.dir/join_distiller.cc.o.d"
  "CMakeFiles/focus_distill.dir/naive_distiller.cc.o"
  "CMakeFiles/focus_distill.dir/naive_distiller.cc.o.d"
  "CMakeFiles/focus_distill.dir/pagerank.cc.o"
  "CMakeFiles/focus_distill.dir/pagerank.cc.o.d"
  "libfocus_distill.a"
  "libfocus_distill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_distill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
