
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distill/distiller.cc" "src/distill/CMakeFiles/focus_distill.dir/distiller.cc.o" "gcc" "src/distill/CMakeFiles/focus_distill.dir/distiller.cc.o.d"
  "/root/repo/src/distill/hits.cc" "src/distill/CMakeFiles/focus_distill.dir/hits.cc.o" "gcc" "src/distill/CMakeFiles/focus_distill.dir/hits.cc.o.d"
  "/root/repo/src/distill/join_distiller.cc" "src/distill/CMakeFiles/focus_distill.dir/join_distiller.cc.o" "gcc" "src/distill/CMakeFiles/focus_distill.dir/join_distiller.cc.o.d"
  "/root/repo/src/distill/naive_distiller.cc" "src/distill/CMakeFiles/focus_distill.dir/naive_distiller.cc.o" "gcc" "src/distill/CMakeFiles/focus_distill.dir/naive_distiller.cc.o.d"
  "/root/repo/src/distill/pagerank.cc" "src/distill/CMakeFiles/focus_distill.dir/pagerank.cc.o" "gcc" "src/distill/CMakeFiles/focus_distill.dir/pagerank.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/focus_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/focus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/focus_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
