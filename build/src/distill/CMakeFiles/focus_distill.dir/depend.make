# Empty dependencies file for focus_distill.
# This may be replaced when dependencies are built.
