file(REMOVE_RECURSE
  "libfocus_distill.a"
)
