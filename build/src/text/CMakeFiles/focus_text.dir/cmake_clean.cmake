file(REMOVE_RECURSE
  "CMakeFiles/focus_text.dir/corpus_index.cc.o"
  "CMakeFiles/focus_text.dir/corpus_index.cc.o.d"
  "CMakeFiles/focus_text.dir/document.cc.o"
  "CMakeFiles/focus_text.dir/document.cc.o.d"
  "CMakeFiles/focus_text.dir/tokenizer.cc.o"
  "CMakeFiles/focus_text.dir/tokenizer.cc.o.d"
  "libfocus_text.a"
  "libfocus_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
