file(REMOVE_RECURSE
  "libfocus_text.a"
)
