# Empty compiler generated dependencies file for focus_text.
# This may be replaced when dependencies are built.
