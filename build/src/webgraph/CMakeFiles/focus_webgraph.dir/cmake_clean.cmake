file(REMOVE_RECURSE
  "CMakeFiles/focus_webgraph.dir/simulated_web.cc.o"
  "CMakeFiles/focus_webgraph.dir/simulated_web.cc.o.d"
  "libfocus_webgraph.a"
  "libfocus_webgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_webgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
