# Empty compiler generated dependencies file for focus_webgraph.
# This may be replaced when dependencies are built.
