file(REMOVE_RECURSE
  "libfocus_webgraph.a"
)
