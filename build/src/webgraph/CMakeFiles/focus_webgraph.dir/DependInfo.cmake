
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/webgraph/simulated_web.cc" "src/webgraph/CMakeFiles/focus_webgraph.dir/simulated_web.cc.o" "gcc" "src/webgraph/CMakeFiles/focus_webgraph.dir/simulated_web.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/taxonomy/CMakeFiles/focus_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/focus_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/focus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
