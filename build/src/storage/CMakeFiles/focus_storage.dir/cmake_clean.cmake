file(REMOVE_RECURSE
  "CMakeFiles/focus_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/focus_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/focus_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/focus_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/focus_storage.dir/disk_manager.cc.o"
  "CMakeFiles/focus_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/focus_storage.dir/heap_file.cc.o"
  "CMakeFiles/focus_storage.dir/heap_file.cc.o.d"
  "libfocus_storage.a"
  "libfocus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
