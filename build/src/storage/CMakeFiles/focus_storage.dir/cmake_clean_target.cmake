file(REMOVE_RECURSE
  "libfocus_storage.a"
)
