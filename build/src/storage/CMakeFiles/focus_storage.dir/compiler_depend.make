# Empty compiler generated dependencies file for focus_storage.
# This may be replaced when dependencies are built.
