file(REMOVE_RECURSE
  "CMakeFiles/focus_crawl.dir/crawl_db.cc.o"
  "CMakeFiles/focus_crawl.dir/crawl_db.cc.o.d"
  "CMakeFiles/focus_crawl.dir/crawler.cc.o"
  "CMakeFiles/focus_crawl.dir/crawler.cc.o.d"
  "CMakeFiles/focus_crawl.dir/frontier.cc.o"
  "CMakeFiles/focus_crawl.dir/frontier.cc.o.d"
  "CMakeFiles/focus_crawl.dir/metrics.cc.o"
  "CMakeFiles/focus_crawl.dir/metrics.cc.o.d"
  "CMakeFiles/focus_crawl.dir/monitor.cc.o"
  "CMakeFiles/focus_crawl.dir/monitor.cc.o.d"
  "libfocus_crawl.a"
  "libfocus_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
