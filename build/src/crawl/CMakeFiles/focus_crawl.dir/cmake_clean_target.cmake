file(REMOVE_RECURSE
  "libfocus_crawl.a"
)
