# Empty dependencies file for focus_crawl.
# This may be replaced when dependencies are built.
