file(REMOVE_RECURSE
  "CMakeFiles/focus_taxonomy.dir/taxonomy.cc.o"
  "CMakeFiles/focus_taxonomy.dir/taxonomy.cc.o.d"
  "libfocus_taxonomy.a"
  "libfocus_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
