# Empty dependencies file for focus_taxonomy.
# This may be replaced when dependencies are built.
