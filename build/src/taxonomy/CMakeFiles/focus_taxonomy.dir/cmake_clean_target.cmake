file(REMOVE_RECURSE
  "libfocus_taxonomy.a"
)
