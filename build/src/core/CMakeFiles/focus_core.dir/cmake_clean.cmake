file(REMOVE_RECURSE
  "CMakeFiles/focus_core.dir/focus.cc.o"
  "CMakeFiles/focus_core.dir/focus.cc.o.d"
  "CMakeFiles/focus_core.dir/sample_taxonomy.cc.o"
  "CMakeFiles/focus_core.dir/sample_taxonomy.cc.o.d"
  "libfocus_core.a"
  "libfocus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
