file(REMOVE_RECURSE
  "CMakeFiles/focus_sql.dir/catalog.cc.o"
  "CMakeFiles/focus_sql.dir/catalog.cc.o.d"
  "CMakeFiles/focus_sql.dir/exec/aggregate.cc.o"
  "CMakeFiles/focus_sql.dir/exec/aggregate.cc.o.d"
  "CMakeFiles/focus_sql.dir/exec/basic.cc.o"
  "CMakeFiles/focus_sql.dir/exec/basic.cc.o.d"
  "CMakeFiles/focus_sql.dir/exec/external_sort.cc.o"
  "CMakeFiles/focus_sql.dir/exec/external_sort.cc.o.d"
  "CMakeFiles/focus_sql.dir/exec/join.cc.o"
  "CMakeFiles/focus_sql.dir/exec/join.cc.o.d"
  "CMakeFiles/focus_sql.dir/exec/operator.cc.o"
  "CMakeFiles/focus_sql.dir/exec/operator.cc.o.d"
  "CMakeFiles/focus_sql.dir/exec/scan.cc.o"
  "CMakeFiles/focus_sql.dir/exec/scan.cc.o.d"
  "CMakeFiles/focus_sql.dir/exec/sort.cc.o"
  "CMakeFiles/focus_sql.dir/exec/sort.cc.o.d"
  "CMakeFiles/focus_sql.dir/schema.cc.o"
  "CMakeFiles/focus_sql.dir/schema.cc.o.d"
  "CMakeFiles/focus_sql.dir/table.cc.o"
  "CMakeFiles/focus_sql.dir/table.cc.o.d"
  "CMakeFiles/focus_sql.dir/value.cc.o"
  "CMakeFiles/focus_sql.dir/value.cc.o.d"
  "libfocus_sql.a"
  "libfocus_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
