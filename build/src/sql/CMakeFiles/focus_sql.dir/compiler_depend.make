# Empty compiler generated dependencies file for focus_sql.
# This may be replaced when dependencies are built.
