
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/catalog.cc" "src/sql/CMakeFiles/focus_sql.dir/catalog.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/catalog.cc.o.d"
  "/root/repo/src/sql/exec/aggregate.cc" "src/sql/CMakeFiles/focus_sql.dir/exec/aggregate.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/sql/exec/basic.cc" "src/sql/CMakeFiles/focus_sql.dir/exec/basic.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/exec/basic.cc.o.d"
  "/root/repo/src/sql/exec/external_sort.cc" "src/sql/CMakeFiles/focus_sql.dir/exec/external_sort.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/exec/external_sort.cc.o.d"
  "/root/repo/src/sql/exec/join.cc" "src/sql/CMakeFiles/focus_sql.dir/exec/join.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/exec/join.cc.o.d"
  "/root/repo/src/sql/exec/operator.cc" "src/sql/CMakeFiles/focus_sql.dir/exec/operator.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/exec/operator.cc.o.d"
  "/root/repo/src/sql/exec/scan.cc" "src/sql/CMakeFiles/focus_sql.dir/exec/scan.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/exec/scan.cc.o.d"
  "/root/repo/src/sql/exec/sort.cc" "src/sql/CMakeFiles/focus_sql.dir/exec/sort.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/exec/sort.cc.o.d"
  "/root/repo/src/sql/schema.cc" "src/sql/CMakeFiles/focus_sql.dir/schema.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/schema.cc.o.d"
  "/root/repo/src/sql/table.cc" "src/sql/CMakeFiles/focus_sql.dir/table.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/table.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/sql/CMakeFiles/focus_sql.dir/value.cc.o" "gcc" "src/sql/CMakeFiles/focus_sql.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/focus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/focus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
