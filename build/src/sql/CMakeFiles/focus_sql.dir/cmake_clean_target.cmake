file(REMOVE_RECURSE
  "libfocus_sql.a"
)
