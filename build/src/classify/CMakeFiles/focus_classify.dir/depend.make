# Empty dependencies file for focus_classify.
# This may be replaced when dependencies are built.
