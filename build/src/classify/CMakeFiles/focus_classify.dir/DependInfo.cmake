
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/bulk_probe.cc" "src/classify/CMakeFiles/focus_classify.dir/bulk_probe.cc.o" "gcc" "src/classify/CMakeFiles/focus_classify.dir/bulk_probe.cc.o.d"
  "/root/repo/src/classify/db_tables.cc" "src/classify/CMakeFiles/focus_classify.dir/db_tables.cc.o" "gcc" "src/classify/CMakeFiles/focus_classify.dir/db_tables.cc.o.d"
  "/root/repo/src/classify/hierarchical_classifier.cc" "src/classify/CMakeFiles/focus_classify.dir/hierarchical_classifier.cc.o" "gcc" "src/classify/CMakeFiles/focus_classify.dir/hierarchical_classifier.cc.o.d"
  "/root/repo/src/classify/single_probe.cc" "src/classify/CMakeFiles/focus_classify.dir/single_probe.cc.o" "gcc" "src/classify/CMakeFiles/focus_classify.dir/single_probe.cc.o.d"
  "/root/repo/src/classify/trainer.cc" "src/classify/CMakeFiles/focus_classify.dir/trainer.cc.o" "gcc" "src/classify/CMakeFiles/focus_classify.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/focus_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/focus_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/focus_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/focus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/focus_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
