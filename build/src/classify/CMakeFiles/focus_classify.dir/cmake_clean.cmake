file(REMOVE_RECURSE
  "CMakeFiles/focus_classify.dir/bulk_probe.cc.o"
  "CMakeFiles/focus_classify.dir/bulk_probe.cc.o.d"
  "CMakeFiles/focus_classify.dir/db_tables.cc.o"
  "CMakeFiles/focus_classify.dir/db_tables.cc.o.d"
  "CMakeFiles/focus_classify.dir/hierarchical_classifier.cc.o"
  "CMakeFiles/focus_classify.dir/hierarchical_classifier.cc.o.d"
  "CMakeFiles/focus_classify.dir/single_probe.cc.o"
  "CMakeFiles/focus_classify.dir/single_probe.cc.o.d"
  "CMakeFiles/focus_classify.dir/trainer.cc.o"
  "CMakeFiles/focus_classify.dir/trainer.cc.o.d"
  "libfocus_classify.a"
  "libfocus_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
