file(REMOVE_RECURSE
  "libfocus_classify.a"
)
