# Empty dependencies file for topic_distillation.
# This may be replaced when dependencies are built.
