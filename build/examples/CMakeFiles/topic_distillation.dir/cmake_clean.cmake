file(REMOVE_RECURSE
  "CMakeFiles/topic_distillation.dir/topic_distillation.cc.o"
  "CMakeFiles/topic_distillation.dir/topic_distillation.cc.o.d"
  "topic_distillation"
  "topic_distillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_distillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
