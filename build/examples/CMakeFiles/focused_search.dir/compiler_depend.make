# Empty compiler generated dependencies file for focused_search.
# This may be replaced when dependencies are built.
