file(REMOVE_RECURSE
  "CMakeFiles/focused_search.dir/focused_search.cc.o"
  "CMakeFiles/focused_search.dir/focused_search.cc.o.d"
  "focused_search"
  "focused_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focused_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
