# Empty dependencies file for citation_sociology.
# This may be replaced when dependencies are built.
