file(REMOVE_RECURSE
  "CMakeFiles/citation_sociology.dir/citation_sociology.cc.o"
  "CMakeFiles/citation_sociology.dir/citation_sociology.cc.o.d"
  "citation_sociology"
  "citation_sociology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_sociology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
