# Empty dependencies file for crawl_monitoring.
# This may be replaced when dependencies are built.
