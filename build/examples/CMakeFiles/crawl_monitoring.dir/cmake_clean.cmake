file(REMOVE_RECURSE
  "CMakeFiles/crawl_monitoring.dir/crawl_monitoring.cc.o"
  "CMakeFiles/crawl_monitoring.dir/crawl_monitoring.cc.o.d"
  "crawl_monitoring"
  "crawl_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
