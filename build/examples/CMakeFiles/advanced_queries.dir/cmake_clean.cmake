file(REMOVE_RECURSE
  "CMakeFiles/advanced_queries.dir/advanced_queries.cc.o"
  "CMakeFiles/advanced_queries.dir/advanced_queries.cc.o.d"
  "advanced_queries"
  "advanced_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
