// Shared helpers for the figure benchmarks.
#ifndef FOCUS_BENCH_BENCH_UTIL_H_
#define FOCUS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "classify/model.h"
#include "obs/json_writer.h"
#include "taxonomy/taxonomy.h"
#include "text/document.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::bench {

// Benches emit JSON through the same escaped writer as the metrics
// snapshot exporter (obs::JsonWriter) — one JSON implementation repo-wide.
using obs::JsonWriter;

// Writes `content` (a JSON document, Prometheus text page, or JSONL dump)
// to `path`, newline-terminated exactly once; returns false (with a
// stderr note) on failure.
inline bool WriteTextFile(const std::string& path,
                          const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(content.c_str(), f);
  if (content.empty() || content.back() != '\n') std::fputc('\n', f);
  std::fclose(f);
  return true;
}

// A wide taxonomy approximating the paper's Yahoo!-derived tree (the real
// one had ~2100 nodes; statistics tables must dwarf the buffer pool).
inline taxonomy::Taxonomy MakeWideTaxonomy(int categories,
                                           int leaves_per_category) {
  taxonomy::Taxonomy tax;
  for (int c = 0; c < categories; ++c) {
    auto cat = tax.AddTopic(taxonomy::kRootCid, StrCat("cat", c));
    for (int l = 0; l < leaves_per_category; ++l) {
      tax.AddTopic(cat.value(), StrCat("cat", c, "_leaf", l)).value();
    }
  }
  return tax;
}

struct SyntheticTextOptions {
  int tokens_per_doc = 200;
  int leaf_vocab = 120;       // tokens unique to each leaf
  int category_vocab = 60;    // shared by a category's leaves
  int shared_vocab = 3000;    // background
  double leaf_fraction = 0.45;
  double category_fraction = 0.15;
  double zipf_exponent = 1.1;
};

// Deterministic bag-of-words generator over a taxonomy; mirrors the
// simulated web's per-topic language models without needing a web.
class SyntheticText {
 public:
  SyntheticText(const taxonomy::Taxonomy* tax, SyntheticTextOptions options)
      : tax_(tax),
        options_(options),
        leaf_zipf_(options.leaf_vocab, options.zipf_exponent),
        cat_zipf_(options.category_vocab, options.zipf_exponent),
        shared_zipf_(options.shared_vocab, options.zipf_exponent) {}

  text::TermVector MakeDoc(taxonomy::Cid leaf, Rng* rng) const {
    std::vector<std::string> tokens;
    tokens.reserve(options_.tokens_per_doc);
    taxonomy::Cid parent = tax_->Parent(leaf);
    for (int i = 0; i < options_.tokens_per_doc; ++i) {
      double u = rng->NextDouble();
      if (u < options_.leaf_fraction) {
        tokens.push_back(StrCat("w", leaf, "_", leaf_zipf_.Sample(rng)));
      } else if (u < options_.leaf_fraction + options_.category_fraction) {
        tokens.push_back(StrCat("p", parent, "_", cat_zipf_.Sample(rng)));
      } else {
        tokens.push_back(StrCat("bg_", shared_zipf_.Sample(rng)));
      }
    }
    return text::BuildTermVector(tokens);
  }

  std::vector<classify::LabeledDocument> MakeTrainingSet(int docs_per_leaf,
                                                         Rng* rng) const {
    std::vector<classify::LabeledDocument> out;
    uint64_t did = 1;
    for (taxonomy::Cid leaf : tax_->LeavesUnder(taxonomy::kRootCid)) {
      for (int i = 0; i < docs_per_leaf; ++i) {
        out.push_back(
            classify::LabeledDocument{did++, leaf, MakeDoc(leaf, rng)});
      }
    }
    return out;
  }

 private:
  const taxonomy::Taxonomy* tax_;
  SyntheticTextOptions options_;
  ZipfTable leaf_zipf_;
  ZipfTable cat_zipf_;
  ZipfTable shared_zipf_;
};

// Prints a labelled key=value line (stable, grep-able bench output).
template <typename... Args>
void Note(const Args&... args) {
  std::string line = StrCat(args...);
  std::printf("# %s\n", line.c_str());
}

}  // namespace focus::bench

#endif  // FOCUS_BENCH_BENCH_UTIL_H_
