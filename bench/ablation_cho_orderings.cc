// Crawl-ordering comparison à la Cho, Garcia-Molina & Page (cited in
// §1.4), on the topical-discovery task.
//
// The paper's position: prestige-based orderings have "no notion of
// adaptive goal-directed exploration" — "PageRank has no notion of page
// content". We run the same crawler with four frontier orderings
// (classifier relevance, backlink count, PageRank of the known graph,
// FIFO) and measure how much of the target community each discovers.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kBudget = 2500;

int Run() {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 59;
  options.web.pages_per_topic = 2000;
  options.web.background_pages = 60000;
  options.web.background_servers = 1500;
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 12);

  Note("crawl orderings on the discovery task (Cho et al. comparison)");
  Note("identical soft-focus expansion; budget ", kBudget);
  std::printf("ordering,steady_harvest,true_on_topic_pages,"
              "on_topic_fraction\n");

  auto run = [&](const char* name, crawl::PriorityPolicy policy) {
    crawl::CrawlerOptions copts;
    copts.max_fetches = kBudget;
    copts.policy = policy;
    if (policy == crawl::PriorityPolicy::kPageRankOrder) {
      copts.pagerank_every = 250;
    }
    auto session = system->NewCrawl(seeds, copts).TakeValue();
    FOCUS_CHECK(session->crawler().Crawl().ok());
    const auto& visits = session->crawler().visits();
    double tail = 0;
    size_t start = visits.size() / 2;
    for (size_t i = start; i < visits.size(); ++i) {
      tail += visits[i].relevance;
    }
    tail /= std::max<size_t>(1, visits.size() - start);
    int on_topic = 0;
    for (const auto& v : visits) {
      auto idx = system->web().PageIndexByUrl(v.url);
      if (idx.ok() &&
          system->web().page(idx.value()).topic == cycling) {
        ++on_topic;
      }
    }
    std::printf("%s,%.3f,%d,%.3f\n", name, tail, on_topic,
                static_cast<double>(on_topic) / visits.size());
  };

  run("relevance (focused)",
      crawl::PriorityPolicy::kAggressiveDiscovery);
  run("backlink count", crawl::PriorityPolicy::kBacklinkCount);
  run("pagerank", crawl::PriorityPolicy::kPageRankOrder);
  run("breadth-first", crawl::PriorityPolicy::kBreadthFirst);
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
