// Figure 8(d): distillation running time, naive edge-walk vs join plan.
//
// The paper compares one distillation iteration implemented as a
// sequential LINK scan with per-endpoint index lookups and score updates
// (the old main-memory style, on disk) against the Figure 4 join
// formulation, and finds the join about a factor of three faster, with
// the naive time split into scan / lookup / update. The JoinVec row runs
// the same join plan on the vectorized batch engine; JoinEnc runs it on
// dictionary codes with cost-based access-path selection per join node.
//
// The crawl graph comes from a real focused crawl; its LINK/CRAWL tables
// are then copied into a database whose buffer pool is far smaller than
// the tables, with per-miss latency modelling the 1999 disk. The JoinPar
// row runs the plan morsel-parallel (`--threads=N`, default 4);
// `--explain` prints each join variant's plan with EXPLAIN ANALYZE
// (the JoinEnc plan annotates every join node with the cost model's
// chosen access path and cardinality estimate);
// `--fast-disk` zeroes the modelled read latency so the CPU-bound join
// cost dominates (the CI speedup gate compares JoinPar vs JoinVec
// join_s under this flag), and `--json` emits the same rows as a JSON
// array for the bench artifacts.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "distill/join_distiller.h"
#include "distill/naive_distiller.h"
#include "sql/exec/operator.h"
#include "sql/exec/scan.h"
#include "util/clock.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kCrawlBudget = 1500;
constexpr int kIterations = 3;
constexpr double kRho = 0.2;
constexpr int kBufferFrames = 384;
constexpr double kReadLatencyUs = 80;

// Copies all rows of `src` (living in another catalog) into `dst_catalog`.
sql::Table* CopyTable(sql::Catalog* dst_catalog, const sql::Table* src,
                      std::vector<sql::IndexSpec> indexes) {
  auto dst = dst_catalog->CreateTable(src->name(), src->schema(),
                                      std::move(indexes));
  FOCUS_CHECK(dst.ok(), dst.status().ToString());
  auto it = src->Scan();
  storage::Rid rid;
  sql::Tuple row;
  while (it.Next(&rid, &row)) {
    FOCUS_CHECK(dst.value()->Insert(row).ok());
  }
  FOCUS_CHECK(it.status().ok());
  return dst.value();
}

int Run(bool json, int threads, bool fast_disk, bool explain) {
  // --- build a crawl graph with the full pipeline (fast disk) ---
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 5;
  options.web.pages_per_topic = 600;
  options.web.background_pages = 20000;
  options.web.background_servers = 600;
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  auto session =
      system
          ->NewCrawl(system->web().KeywordSeeds(cycling, 15),
                     crawl::CrawlerOptions{.max_fetches = kCrawlBudget})
          .TakeValue();
  FOCUS_CHECK(session->crawler().Crawl().ok());
  FOCUS_CHECK(session->db().RefreshEdgeWeights().ok());

  // --- copy LINK/CRAWL onto the slow-disk database ---
  storage::MemDiskManager disk(storage::MemDiskManager::Options{
      .read_latency_us = fast_disk ? 0 : kReadLatencyUs});
  storage::BufferPool pool(&disk, kBufferFrames);
  sql::Catalog catalog(&pool);
  distill::DistillTables tables;
  tables.link = CopyTable(&catalog, session->db().link_table(),
                          {sql::IndexSpec{"by_src", {0}, {}},
                           sql::IndexSpec{"by_dst", {2}, {}}});
  tables.crawl = CopyTable(&catalog, session->db().crawl_table(),
                           {sql::IndexSpec{"by_oid", {0}, {}}});
  FOCUS_CHECK(distill::CreateHubsAuthTables(&catalog, &tables).ok());

  if (!json) {
    Note("figure 8(d): distillation iteration time, naive index walk vs "
         "Figure 4 join plan");
    Note("crawl graph: ", tables.link->num_rows(), " links over ",
         tables.crawl->num_rows(), " urls; buffer pool ", kBufferFrames,
         " frames; iterations: ", kIterations,
         fast_disk ? "; fast disk (no read latency)" : "");
  }

  struct Row {
    const char* variant;
    double per_iter, scan_s, lookup_s, update_s, join_s, misses, relative;
  };
  std::vector<Row> report;

  double baseline = 0;
  {
    distill::NaiveDistiller naive(tables);
    FOCUS_CHECK(pool.EvictAll().ok());
    pool.ResetStats();
    Stopwatch timer;
    FOCUS_CHECK(
        naive.Run({.iterations = kIterations, .rho = kRho}).ok());
    double per_iter = timer.ElapsedSeconds() / kIterations;
    baseline = per_iter;
    report.push_back(Row{"Index", per_iter,
                         naive.stats().scan_seconds / kIterations,
                         naive.stats().lookup_seconds / kIterations,
                         naive.stats().update_seconds / kIterations, 0.0,
                         static_cast<double>(pool.stats().misses) /
                             kIterations,
                         1.0});
  }
  auto run_join = [&](sql::ExecEngine engine, const char* name) {
    distill::JoinDistiller join(tables);
    join.SetEngine(engine);
    join.SetParallelThreads(threads);
    FOCUS_CHECK(pool.EvictAll().ok());
    pool.ResetStats();
    Stopwatch timer;
    FOCUS_CHECK(join.Run({.iterations = kIterations, .rho = kRho}).ok());
    double per_iter = timer.ElapsedSeconds() / kIterations;
    if (explain) {
      sql::PlanStats plan;
      FOCUS_CHECK(join.RunIterationWithPlan(kRho, &plan).ok());
      std::fprintf(stderr, "# --- %s plan ---\n%s", name,
                   plan.Format().c_str());
    }
    report.push_back(Row{name, per_iter, 0.0, 0.0,
                         join.stats().update_seconds / kIterations,
                         join.stats().join_seconds / kIterations,
                         static_cast<double>(pool.stats().misses) /
                             kIterations,
                         per_iter / baseline});
  };
  run_join(sql::ExecEngine::kScalar, "Join");
  run_join(sql::ExecEngine::kVectorized, "JoinVec");
  run_join(sql::ExecEngine::kParallel, "JoinPar");
  run_join(sql::ExecEngine::kEncoded, "JoinEnc");

  if (json) {
    std::printf("[\n");
    for (size_t i = 0; i < report.size(); ++i) {
      const Row& r = report[i];
      std::printf("  {\"variant\":\"%s\",\"seconds_per_iter\":%.4f,"
                  "\"scan_s\":%.4f,\"lookup_s\":%.4f,\"update_s\":%.4f,"
                  "\"join_s\":%.4f,\"misses_per_iter\":%.0f,"
                  "\"relative\":%.2f,\"threads\":%d}%s\n",
                  r.variant, r.per_iter, r.scan_s, r.lookup_s, r.update_s,
                  r.join_s, r.misses, r.relative, threads,
                  i + 1 < report.size() ? "," : "");
    }
    std::printf("]\n");
  } else {
    std::printf("variant,seconds_per_iter,scan_s,lookup_s,update_s,join_s,"
                "misses_per_iter,relative\n");
    for (const Row& r : report) {
      std::printf("%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.0f,%.2f\n", r.variant,
                  r.per_iter, r.scan_s, r.lookup_s, r.update_s, r.join_s,
                  r.misses, r.relative);
    }
  }
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main(int argc, char** argv) {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  bool json = false;
  bool fast_disk = false;
  bool explain = false;
  int threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--fast-disk") == 0) fast_disk = true;
    if (std::strcmp(argv[i], "--explain") == 0) explain = true;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::max(1, std::atoi(argv[i] + 10));
    }
  }
  return focus::bench::Run(json, threads, fast_disk, explain);
}
