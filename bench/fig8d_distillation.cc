// Figure 8(d): distillation running time, naive edge-walk vs join plan.
//
// The paper compares one distillation iteration implemented as a
// sequential LINK scan with per-endpoint index lookups and score updates
// (the old main-memory style, on disk) against the Figure 4 join
// formulation, and finds the join about a factor of three faster, with
// the naive time split into scan / lookup / update. The JoinVec row runs
// the same join plan on the vectorized batch engine.
//
// The crawl graph comes from a real focused crawl; its LINK/CRAWL tables
// are then copied into a database whose buffer pool is far smaller than
// the tables, with per-miss latency modelling the 1999 disk.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "distill/join_distiller.h"
#include "distill/naive_distiller.h"
#include "sql/exec/operator.h"
#include "sql/exec/scan.h"
#include "util/clock.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kCrawlBudget = 1500;
constexpr int kIterations = 3;
constexpr double kRho = 0.2;
constexpr int kBufferFrames = 384;
constexpr double kReadLatencyUs = 80;

// Copies all rows of `src` (living in another catalog) into `dst_catalog`.
sql::Table* CopyTable(sql::Catalog* dst_catalog, const sql::Table* src,
                      std::vector<sql::IndexSpec> indexes) {
  auto dst = dst_catalog->CreateTable(src->name(), src->schema(),
                                      std::move(indexes));
  FOCUS_CHECK(dst.ok(), dst.status().ToString());
  auto it = src->Scan();
  storage::Rid rid;
  sql::Tuple row;
  while (it.Next(&rid, &row)) {
    FOCUS_CHECK(dst.value()->Insert(row).ok());
  }
  FOCUS_CHECK(it.status().ok());
  return dst.value();
}

int Run() {
  // --- build a crawl graph with the full pipeline (fast disk) ---
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 5;
  options.web.pages_per_topic = 600;
  options.web.background_pages = 20000;
  options.web.background_servers = 600;
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  auto session =
      system
          ->NewCrawl(system->web().KeywordSeeds(cycling, 15),
                     crawl::CrawlerOptions{.max_fetches = kCrawlBudget})
          .TakeValue();
  FOCUS_CHECK(session->crawler().Crawl().ok());
  FOCUS_CHECK(session->db().RefreshEdgeWeights().ok());

  // --- copy LINK/CRAWL onto the slow-disk database ---
  storage::MemDiskManager disk(
      storage::MemDiskManager::Options{.read_latency_us = kReadLatencyUs});
  storage::BufferPool pool(&disk, kBufferFrames);
  sql::Catalog catalog(&pool);
  distill::DistillTables tables;
  tables.link = CopyTable(&catalog, session->db().link_table(),
                          {sql::IndexSpec{"by_src", {0}, {}},
                           sql::IndexSpec{"by_dst", {2}, {}}});
  tables.crawl = CopyTable(&catalog, session->db().crawl_table(),
                           {sql::IndexSpec{"by_oid", {0}, {}}});
  FOCUS_CHECK(distill::CreateHubsAuthTables(&catalog, &tables).ok());

  Note("figure 8(d): distillation iteration time, naive index walk vs "
       "Figure 4 join plan");
  Note("crawl graph: ", tables.link->num_rows(), " links over ",
       tables.crawl->num_rows(), " urls; buffer pool ", kBufferFrames,
       " frames; iterations: ", kIterations);
  std::printf("variant,seconds_per_iter,scan_s,lookup_s,update_s,join_s,"
              "misses_per_iter,relative\n");

  double baseline = 0;
  {
    distill::NaiveDistiller naive(tables);
    FOCUS_CHECK(pool.EvictAll().ok());
    pool.ResetStats();
    Stopwatch timer;
    FOCUS_CHECK(
        naive.Run({.iterations = kIterations, .rho = kRho}).ok());
    double per_iter = timer.ElapsedSeconds() / kIterations;
    baseline = per_iter;
    std::printf("Index,%.4f,%.4f,%.4f,%.4f,%.4f,%.0f,%.2f\n", per_iter,
                naive.stats().scan_seconds / kIterations,
                naive.stats().lookup_seconds / kIterations,
                naive.stats().update_seconds / kIterations, 0.0,
                static_cast<double>(pool.stats().misses) / kIterations,
                1.0);
  }
  auto run_join = [&](sql::ExecEngine engine, const char* name) {
    distill::JoinDistiller join(tables);
    join.SetEngine(engine);
    FOCUS_CHECK(pool.EvictAll().ok());
    pool.ResetStats();
    Stopwatch timer;
    FOCUS_CHECK(join.Run({.iterations = kIterations, .rho = kRho}).ok());
    double per_iter = timer.ElapsedSeconds() / kIterations;
    std::printf("%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.0f,%.2f\n", name, per_iter,
                0.0, 0.0, join.stats().update_seconds / kIterations,
                join.stats().join_seconds / kIterations,
                static_cast<double>(pool.stats().misses) / kIterations,
                per_iter / baseline);
  };
  run_join(sql::ExecEngine::kScalar, "Join");
  run_join(sql::ExecEngine::kVectorized, "JoinVec");
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
