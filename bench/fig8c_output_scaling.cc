// Figure 8(c): BulkProbe running time vs output size.
//
// The paper scatters running time against |{ci}| x |{d}| (the number of
// (child, document) scores produced) over 1e3..1e8 and finds the bulk
// algorithm roughly linear in output size. We sweep document batch size
// and taxonomy width and report (output_rows, seconds).
#include <cstdio>

#include "bench/bench_util.h"
#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "classify/single_probe.h"
#include "classify/trainer.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/clock.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr double kReadLatencyUs = 120;

void RunConfig(int categories, int leaves_per_category, int num_docs) {
  taxonomy::Taxonomy tax = MakeWideTaxonomy(categories, leaves_per_category);
  SyntheticTextOptions text_options;
  SyntheticText text(&tax, text_options);
  Rng rng(31);

  classify::Trainer trainer(
      classify::TrainerOptions{.max_features_per_node = 1500});
  auto model = trainer.Train(tax, text.MakeTrainingSet(8, &rng));
  FOCUS_CHECK(model.ok(), model.status().ToString());
  classify::HierarchicalClassifier ref(&tax, &model.value());

  storage::MemDiskManager disk(
      storage::MemDiskManager::Options{.read_latency_us = kReadLatencyUs});
  storage::BufferPool pool(&disk, 256);
  sql::Catalog catalog(&pool);
  auto tables = classify::BuildClassifierTables(&catalog, tax,
                                                model.value());
  FOCUS_CHECK(tables.ok(), tables.status().ToString());
  auto document = classify::CreateDocumentTable(&catalog, "DOCUMENT");
  FOCUS_CHECK(document.ok());
  auto leaves = tax.LeavesUnder(taxonomy::kRootCid);
  for (int i = 0; i < num_docs; ++i) {
    FOCUS_CHECK(classify::InsertDocument(
                    document.value(), i + 1,
                    text.MakeDoc(leaves[i % leaves.size()], &rng))
                    .ok());
  }

  classify::BulkProbeClassifier bulk(&ref, &tables.value());
  FOCUS_CHECK(pool.EvictAll().ok());
  pool.ResetStats();
  Stopwatch timer;
  auto scores = bulk.ClassifyAll(document.value());
  FOCUS_CHECK(scores.ok(), scores.status().ToString());
  double seconds = timer.ElapsedSeconds();
  std::printf("%dx%d,%d,%llu,%.4f\n", categories, leaves_per_category,
              num_docs,
              static_cast<unsigned long long>(bulk.stats().output_rows),
              seconds);
}

int Run() {
  Note("figure 8(c): bulk classification time vs output size "
       "|{ci}| x |{d}|");
  std::printf("taxonomy,docs,output_rows,seconds\n");
  for (int docs : {25, 50, 100, 200, 400, 800}) {
    RunConfig(4, 6, docs);
  }
  for (int docs : {25, 100, 400, 800}) {
    RunConfig(8, 14, docs);
  }
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
