// Figure 8(a): classification running time of the three formulations.
//
//   SQL     — SingleProbe over per-row STAT tables (index probe per term,
//             one heap fetch per (child, term) statistic)
//   BLOB    — SingleProbe over the packed BLOB table (one fetch per term)
//   CLI     — BulkProbe, the Figure 3 sort-merge plan, scalar engine
//   CLI-VEC — the same plan on the vectorized batch engine
//   CLI-PAR — the same plan morsel-parallel (`--threads=N`, default 4)
//   CLI-ENC — the same plan on dictionary codes with cost-based access
//             paths (semi-join-reduced STAT, dense run-table probes)
//
// `--json` switches the report from CSV to a JSON array (one object per
// variant) for the CI bench-smoke gate, which asserts the vectorized join
// pass beats the scalar one. `--explain` additionally prints the CLI and
// CLI-VEC plans with EXPLAIN ANALYZE operator timings.
//
// The paper reports over an order of magnitude between SQL/BLOB and CLI,
// with per-document time broken into document scan / statistics probe /
// CPU. We report seconds per document, the same breakdown, and buffer-pool
// misses per document (the hardware-independent signal).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "classify/single_probe.h"
#include "classify/trainer.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/clock.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kCategories = 8;
constexpr int kLeavesPerCategory = 14;
constexpr int kTrainDocsPerLeaf = 8;
constexpr int kTestDocs = 200;
constexpr int kBufferFrames = 256;        // 1 MiB — far below the model size
constexpr double kReadLatencyUs = 120;    // a (conservative) 1999-era seek
// Streaming a page after the head is positioned is much cheaper than the
// seek: batched readahead amortizes one seek over a whole window.
constexpr double kTransferLatencyUs = 10;
constexpr uint32_t kReadaheadWindow = 32;

int Run(bool json, bool explain, int threads) {
  taxonomy::Taxonomy tax = MakeWideTaxonomy(kCategories, kLeavesPerCategory);
  SyntheticTextOptions text_options;
  text_options.tokens_per_doc = 250;
  text_options.leaf_vocab = 300;
  text_options.shared_vocab = 20000;
  text_options.zipf_exponent = 0.75;  // flatter term distribution: less
                                      // locality for the probe classifiers
  SyntheticText text(&tax, text_options);
  Rng rng(17);

  if (!json) {
    Note("figure 8(a): classifier running time, SQL vs BLOB vs CLI(bulk)");
    Note("taxonomy: ", tax.num_topics(), " topics; train docs/leaf: ",
         kTrainDocsPerLeaf, "; test docs: ", kTestDocs);
  }

  classify::Trainer trainer(
      classify::TrainerOptions{.max_features_per_node = 4000,
                               .min_document_frequency = 2});
  auto model = trainer.Train(tax, text.MakeTrainingSet(kTrainDocsPerLeaf,
                                                       &rng));
  FOCUS_CHECK(model.ok(), model.status().ToString());
  classify::HierarchicalClassifier ref(&tax, &model.value());

  storage::MemDiskManager disk(storage::MemDiskManager::Options{
      .read_latency_us = kReadLatencyUs,
      .write_latency_us = 0,
      .transfer_latency_us = kTransferLatencyUs});
  storage::BufferPool pool(&disk, kBufferFrames,
                           storage::BufferPool::Options{
                               .readahead_window = kReadaheadWindow,
                               .auto_readahead = true});
  sql::Catalog catalog(&pool);
  auto tables = classify::BuildClassifierTables(&catalog, tax,
                                                model.value());
  FOCUS_CHECK(tables.ok(), tables.status().ToString());
  if (!json) {
    Note("model pages on disk: ", disk.NumPages(), " (",
         disk.NumPages() * 4, " KiB); buffer pool: ", kBufferFrames,
         " frames (", kBufferFrames * 4, " KiB)");
  }

  // Materialize test documents in a DOCUMENT table (populated at crawl
  // time in the real system).
  auto document = classify::CreateDocumentTable(&catalog, "DOCUMENT");
  FOCUS_CHECK(document.ok());
  std::vector<text::TermVector> docs;
  auto leaves = tax.LeavesUnder(taxonomy::kRootCid);
  for (int i = 0; i < kTestDocs; ++i) {
    docs.push_back(text.MakeDoc(leaves[i % leaves.size()], &rng));
    FOCUS_CHECK(
        classify::InsertDocument(document.value(), i + 1, docs.back()).ok());
  }

  struct Row {
    const char* variant;
    double per_doc, scan_doc_s, probe_s, cpu_s, misses_per_doc, relative;
    double hit_ratio, readahead_used_frac;
  };
  std::vector<Row> report;
  double baseline = 0;

  // Pool behaviour of the variant that just ran (EvictAll + ResetStats
  // precede each one).
  auto pool_hit_ratio = [&] { return pool.stats().hit_ratio(); };
  auto pool_readahead_used = [&] {
    storage::BufferPool::Stats s = pool.stats();
    if (std::getenv("FOCUS_POOL_TRACE") != nullptr) {
      std::fprintf(stderr,
                   "POOL fetches=%llu hits=%llu misses=%llu evict=%llu "
                   "ra_issued=%llu ra_used=%llu\n",
                   (unsigned long long)s.fetches, (unsigned long long)s.hits,
                   (unsigned long long)s.misses,
                   (unsigned long long)s.evictions,
                   (unsigned long long)s.readahead_issued,
                   (unsigned long long)s.readahead_used);
    }
    return s.readahead_issued == 0
               ? 0.0
               : static_cast<double>(s.readahead_used) /
                     static_cast<double>(s.readahead_issued);
  };

  auto run_single = [&](classify::SingleProbeClassifier::Variant variant,
                        const char* name) {
    classify::SingleProbeClassifier clf(&ref, &tables.value(), variant);
    FOCUS_CHECK(pool.EvictAll().ok());
    pool.ResetStats();
    Stopwatch total;
    double scan_doc = 0;
    for (int i = 0; i < kTestDocs; ++i) {
      Stopwatch fetch_timer;
      auto terms = classify::FetchDocument(document.value(), i + 1);
      FOCUS_CHECK(terms.ok());
      scan_doc += fetch_timer.ElapsedSeconds();
      FOCUS_CHECK(clf.Classify(terms.value()).ok());
    }
    double seconds = total.ElapsedSeconds();
    double per_doc = seconds / kTestDocs;
    if (baseline == 0) baseline = per_doc;
    report.push_back(Row{name, per_doc, scan_doc / kTestDocs,
                         clf.stats().probe_seconds / kTestDocs,
                         clf.stats().compute_seconds / kTestDocs,
                         static_cast<double>(pool.stats().misses) /
                             kTestDocs,
                         per_doc / baseline, pool_hit_ratio(),
                         pool_readahead_used()});
  };
  run_single(classify::SingleProbeClassifier::Variant::kSqlRows, "SQL");
  run_single(classify::SingleProbeClassifier::Variant::kBlob, "BLOB");

  auto run_bulk = [&](sql::ExecEngine engine, const char* name) {
    classify::BulkProbeClassifier bulk(&ref, &tables.value());
    bulk.SetEngine(engine);
    bulk.SetParallelThreads(threads);
    FOCUS_CHECK(pool.EvictAll().ok());
    pool.ResetStats();
    sql::PlanStats plan;
    Stopwatch total;
    auto scores = explain ? bulk.ClassifyWithPlan(document.value(), &plan)
                          : bulk.ClassifyAll(document.value());
    FOCUS_CHECK(scores.ok(), scores.status().ToString());
    FOCUS_CHECK(scores.value().size() == kTestDocs);
    if (explain) {
      std::fprintf(stderr, "# --- %s plan ---\n%s", name,
                   plan.Format().c_str());
    }
    double per_doc = total.ElapsedSeconds() / kTestDocs;
    report.push_back(
        Row{name, per_doc,
            0.0,  // the bulk plan scans DOCUMENT inside its joins
            bulk.stats().join_seconds / kTestDocs,
            bulk.stats().finalize_seconds / kTestDocs,
            static_cast<double>(pool.stats().misses) / kTestDocs,
            per_doc / baseline, pool_hit_ratio(), pool_readahead_used()});
  };
  run_bulk(sql::ExecEngine::kScalar, "CLI");
  run_bulk(sql::ExecEngine::kVectorized, "CLI-VEC");
  run_bulk(sql::ExecEngine::kParallel, "CLI-PAR");
  run_bulk(sql::ExecEngine::kEncoded, "CLI-ENC");

  if (json) {
    std::printf("[\n");
    for (size_t i = 0; i < report.size(); ++i) {
      const Row& r = report[i];
      std::printf("  {\"variant\":\"%s\",\"seconds_per_doc\":%.6f,"
                  "\"scan_doc_s\":%.6f,\"probe_s\":%.6f,\"cpu_s\":%.6f,"
                  "\"misses_per_doc\":%.1f,\"relative\":%.2f,"
                  "\"hit_ratio\":%.4f,\"readahead_used_frac\":%.4f}%s\n",
                  r.variant, r.per_doc, r.scan_doc_s, r.probe_s, r.cpu_s,
                  r.misses_per_doc, r.relative, r.hit_ratio,
                  r.readahead_used_frac,
                  i + 1 < report.size() ? "," : "");
    }
    std::printf("]\n");
  } else {
    std::printf("variant,seconds_per_doc,scan_doc_s,probe_s,cpu_s,"
                "misses_per_doc,relative,hit_ratio,readahead_used_frac\n");
    for (const Row& r : report) {
      std::printf("%s,%.6f,%.6f,%.6f,%.6f,%.1f,%.2f,%.4f,%.4f\n", r.variant,
                  r.per_doc, r.scan_doc_s, r.probe_s, r.cpu_s,
                  r.misses_per_doc, r.relative, r.hit_ratio,
                  r.readahead_used_frac);
    }
  }
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main(int argc, char** argv) {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  bool json = false;
  bool explain = false;
  int threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--explain") == 0) explain = true;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::max(1, std::atoi(argv[i] + 10));
    }
  }
  return focus::bench::Run(json, explain, threads);
}
