// Micro-benchmarks for the storage engine: B+-tree, buffer pool, heap file.
#include <benchmark/benchmark.h>

#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "util/random.h"

namespace focus::storage {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4096);
  auto tree = BPlusTree::Create(&pool).TakeValue();
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(rng.Next(), rng.Next()).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeProbe(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4096);
  auto tree = BPlusTree::Create(&pool).TakeValue();
  const uint64_t n = state.range(0);
  for (uint64_t i = 0; i < n; ++i) {
    (void)tree.Insert(i * 7919 % n, i);
  }
  Rng rng(2);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(tree.GetAll(rng.Uniform(n), &out).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeProbe)->Arg(10000)->Arg(100000);

void BM_BufferPoolHit(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 64);
  PageId id;
  (void)pool.NewPage(&id);
  pool.UnpinPage(id, true);
  for (auto _ : state) {
    auto page = pool.FetchPage(id);
    benchmark::DoNotOptimize(page.ok());
    pool.UnpinPage(id, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 16);
  std::vector<PageId> ids(64);
  for (auto& id : ids) {
    (void)pool.NewPage(&id);
    pool.UnpinPage(id, true);
  }
  size_t i = 0;
  for (auto _ : state) {
    PageId id = ids[i++ % ids.size()];  // cycle > pool: every fetch misses
    auto page = pool.FetchPage(id);
    benchmark::DoNotOptimize(page.ok());
    pool.UnpinPage(id, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolMissEvict);

void BM_HeapFileInsert(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 256);
  auto file = HeapFile::Create(&pool).TakeValue();
  std::string record(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(file.Insert(record).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapFileInsert);

void BM_HeapFileScan(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 1024);
  auto file = HeapFile::Create(&pool).TakeValue();
  std::string record(64, 'x');
  for (int i = 0; i < 10000; ++i) (void)file.Insert(record);
  for (auto _ : state) {
    auto it = file.Scan();
    Rid rid;
    std::string rec;
    int64_t count = 0;
    while (it.Next(&rid, &rec)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HeapFileScan);

}  // namespace
}  // namespace focus::storage

BENCHMARK_MAIN();
