// Micro-benchmarks for the storage engine: B+-tree, buffer pool, heap file.
//
// Two modes:
//   (default)  google-benchmark micro-benchmarks (BM_* below).
//   --json     the buffer-pool workload sweep: point-read vs
//              sequential-scan vs mixed workloads across pool sizes and
//              shard counts, against a latency-modeled disk. Prints one
//              JSON array (one object per configuration) for the CI
//              storage job and the scripts/append_bench_trajectory.py
//              --storage flow.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "util/clock.h"
#include "util/random.h"

namespace focus::storage {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4096);
  auto tree = BPlusTree::Create(&pool).TakeValue();
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(rng.Next(), rng.Next()).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeProbe(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4096);
  auto tree = BPlusTree::Create(&pool).TakeValue();
  const uint64_t n = state.range(0);
  for (uint64_t i = 0; i < n; ++i) {
    (void)tree.Insert(i * 7919 % n, i);
  }
  Rng rng(2);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(tree.GetAll(rng.Uniform(n), &out).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeProbe)->Arg(10000)->Arg(100000);

void BM_BufferPoolHit(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 64);
  PageId id;
  (void)pool.NewPage(&id);
  pool.UnpinPage(id, true);
  for (auto _ : state) {
    auto page = pool.FetchPage(id);
    benchmark::DoNotOptimize(page.ok());
    pool.UnpinPage(id, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 16);
  std::vector<PageId> ids(64);
  for (auto& id : ids) {
    (void)pool.NewPage(&id);
    pool.UnpinPage(id, true);
  }
  size_t i = 0;
  for (auto _ : state) {
    PageId id = ids[i++ % ids.size()];  // cycle > pool: every fetch misses
    auto page = pool.FetchPage(id);
    benchmark::DoNotOptimize(page.ok());
    pool.UnpinPage(id, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolMissEvict);

void BM_HeapFileInsert(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 256);
  auto file = HeapFile::Create(&pool).TakeValue();
  std::string record(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(file.Insert(record).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapFileInsert);

void BM_HeapFileScan(benchmark::State& state) {
  MemDiskManager disk;
  BufferPool pool(&disk, 1024);
  auto file = HeapFile::Create(&pool).TakeValue();
  std::string record(64, 'x');
  for (int i = 0; i < 10000; ++i) (void)file.Insert(record);
  for (auto _ : state) {
    auto it = file.Scan();
    Rid rid;
    std::string rec;
    int64_t count = 0;
    while (it.Next(&rid, &rec)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HeapFileScan);

// ---------------------------------------------------------------------------
// --json workload sweep
//
// A latency-modeled disk (a seek per read op, a small per-page transfer
// cost) seeded with a fixed working set, swept across pool sizes and
// shard counts under three access patterns:
//   point — 4 threads of uniform random page fetches (latch + replacement
//           pressure; hit ratio tracks frames/working-set)
//   seq   — one thread sweeping the working set in order twice (the
//           stream detector + batched readahead path)
//   mixed — one sequential sweeper plus 3 point-read threads (the
//           scan-resistance scenario: the sweep must not starve the
//           random readers' hot set)

constexpr size_t kSweepPages = 1024;          // 4 MiB working set
constexpr size_t kPointOpsPerThread = 4096;
constexpr int kPointThreads = 4;
constexpr int kSeqSweeps = 2;
constexpr double kSweepReadLatencyUs = 20;
constexpr double kSweepTransferLatencyUs = 2;
constexpr uint32_t kSweepReadaheadWindow = 16;

struct SweepRow {
  const char* workload;
  size_t frames;
  uint32_t shards_requested;
  size_t shards;
  int threads;
  uint64_t ops;
  double wall_s;
  BufferPool::Stats pool;
  uint64_t batch_reads;
};

// One thread's worth of uniform random fetches. Each thread gets its own
// seed so the shards see independent streams.
void PointReads(BufferPool* pool, uint64_t seed, size_t ops) {
  Rng rng(seed);
  for (size_t i = 0; i < ops; ++i) {
    PageId id = rng.Uniform(kSweepPages);
    auto page = pool->FetchPage(id);
    if (!page.ok()) continue;  // transient all-pinned: skip, advisory load
    benchmark::DoNotOptimize(page.value()->data[0]);
    pool->UnpinPage(id, false);
  }
}

void SequentialSweeps(BufferPool* pool, int sweeps) {
  for (int s = 0; s < sweeps; ++s) {
    for (PageId id = 0; id < kSweepPages; ++id) {
      auto page = pool->FetchPage(id);
      if (!page.ok()) continue;
      benchmark::DoNotOptimize(page.value()->data[0]);
      pool->UnpinPage(id, false);
    }
  }
}

SweepRow RunSweepConfig(const char* workload, MemDiskManager* disk,
                        size_t frames, uint32_t shards) {
  BufferPool pool(disk, frames,
                  BufferPool::Options{.shards = shards,
                                      .readahead_window =
                                          kSweepReadaheadWindow,
                                      .auto_readahead = true});
  uint64_t batch_reads_before = disk->stats().batch_reads;
  SweepRow row{workload, frames, shards, pool.num_shards(), 1, 0, 0, {}, 0};
  Stopwatch wall;
  if (std::strcmp(workload, "point") == 0) {
    row.threads = kPointThreads;
    row.ops = kPointThreads * kPointOpsPerThread;
    std::vector<std::thread> threads;
    for (int t = 0; t < kPointThreads; ++t) {
      threads.emplace_back(PointReads, &pool, 1000 + t, kPointOpsPerThread);
    }
    for (auto& t : threads) t.join();
  } else if (std::strcmp(workload, "seq") == 0) {
    row.threads = 1;
    row.ops = kSeqSweeps * kSweepPages;
    SequentialSweeps(&pool, kSeqSweeps);
  } else {  // mixed: one sweeper + (kPointThreads - 1) random readers
    row.threads = kPointThreads;
    row.ops = kSweepPages + (kPointThreads - 1) * kPointOpsPerThread;
    std::vector<std::thread> threads;
    threads.emplace_back(SequentialSweeps, &pool, 1);
    for (int t = 1; t < kPointThreads; ++t) {
      threads.emplace_back(PointReads, &pool, 2000 + t, kPointOpsPerThread);
    }
    for (auto& t : threads) t.join();
  }
  row.wall_s = wall.ElapsedSeconds();
  row.pool = pool.stats();
  row.batch_reads = disk->stats().batch_reads - batch_reads_before;
  return row;
}

int RunWorkloadSweep() {
  // Seed the working set once; every configuration reads the same pages.
  MemDiskManager disk(MemDiskManager::Options{
      .read_latency_us = kSweepReadLatencyUs,
      .write_latency_us = 0,
      .transfer_latency_us = kSweepTransferLatencyUs});
  {
    BufferPool seeder(&disk, 64);
    for (size_t i = 0; i < kSweepPages; ++i) {
      PageId id;
      auto page = seeder.NewPage(&id);
      if (!page.ok()) return 1;
      page.value()->data[0] = static_cast<char>(id & 0xff);
      seeder.UnpinPage(id, true);
    }
    if (!seeder.FlushAll().ok()) return 1;
  }

  std::vector<SweepRow> rows;
  for (const char* workload : {"point", "seq", "mixed"}) {
    for (size_t frames : {64, 256, 1024}) {
      for (uint32_t shards : {1u, 4u, 8u}) {
        rows.push_back(RunSweepConfig(workload, &disk, frames, shards));
      }
    }
  }

  std::printf("[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    double used_frac =
        r.pool.readahead_issued == 0
            ? 0.0
            : static_cast<double>(r.pool.readahead_used) /
                  static_cast<double>(r.pool.readahead_issued);
    std::printf(
        "  {\"workload\":\"%s\",\"frames\":%zu,\"shards_requested\":%u,"
        "\"shards\":%zu,\"threads\":%d,\"ops\":%llu,"
        "\"wall_seconds\":%.6f,\"ops_per_second\":%.0f,"
        "\"hit_ratio\":%.4f,\"misses\":%llu,"
        "\"readahead_issued\":%llu,\"readahead_used\":%llu,"
        "\"readahead_used_frac\":%.4f,\"batch_reads\":%llu}%s\n",
        r.workload, r.frames, r.shards_requested, r.shards, r.threads,
        static_cast<unsigned long long>(r.ops), r.wall_s,
        r.wall_s == 0 ? 0 : r.ops / r.wall_s, r.pool.hit_ratio(),
        static_cast<unsigned long long>(r.pool.misses),
        static_cast<unsigned long long>(r.pool.readahead_issued),
        static_cast<unsigned long long>(r.pool.readahead_used), used_frac,
        static_cast<unsigned long long>(r.batch_reads),
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("]\n");
  return 0;
}

}  // namespace
}  // namespace focus::storage

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return focus::storage::RunWorkloadSweep();
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
