// Micro-benchmarks for distillation: HITS iterations and PageRank at
// various graph sizes.
#include <benchmark/benchmark.h>

#include "distill/hits.h"
#include "distill/pagerank.h"
#include "util/random.h"

namespace focus::distill {
namespace {

std::vector<WeightedEdge> RandomEdges(int nodes, int edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedEdge> out;
  out.reserve(edges);
  for (int i = 0; i < edges; ++i) {
    uint64_t u = 1 + rng.Uniform(nodes), v = 1 + rng.Uniform(nodes);
    if (u == v) continue;
    out.push_back(WeightedEdge{u, static_cast<int32_t>(u % 97), v,
                               static_cast<int32_t>(v % 97),
                               rng.NextDouble(), rng.NextDouble()});
  }
  return out;
}

void BM_HitsIterations(benchmark::State& state) {
  int nodes = state.range(0);
  auto edges = RandomEdges(nodes, nodes * 8, 3);
  std::unordered_map<uint64_t, double> relevance;
  Rng rng(4);
  for (int n = 1; n <= nodes; ++n) relevance[n] = rng.NextDouble();
  HitsEngine engine(edges, relevance);
  for (auto _ : state) {
    auto scores = engine.Run({.iterations = 10, .rho = 0.2});
    benchmark::DoNotOptimize(scores.size());
  }
  state.SetItemsProcessed(state.iterations() * edges.size() * 10);
}
BENCHMARK(BM_HitsIterations)->Arg(1000)->Arg(10000);

void BM_PageRank(benchmark::State& state) {
  int nodes = state.range(0);
  Rng rng(5);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (int i = 0; i < nodes * 8; ++i) {
    uint32_t u = rng.Uniform(nodes), v = rng.Uniform(nodes);
    if (u != v) edges.emplace_back(u, v);
  }
  for (auto _ : state) {
    auto rank = PageRank(nodes, edges, {.damping = 0.85, .iterations = 20});
    benchmark::DoNotOptimize(rank.size());
  }
  state.SetItemsProcessed(state.iterations() * edges.size() * 20);
}
BENCHMARK(BM_PageRank)->Arg(1000)->Arg(10000);

void BM_AssignWeights(benchmark::State& state) {
  auto edges = RandomEdges(5000, 40000, 6);
  std::unordered_map<uint64_t, double> relevance;
  Rng rng(7);
  for (int n = 1; n <= 5000; ++n) relevance[n] = rng.NextDouble();
  for (auto _ : state) {
    auto copy = edges;
    AssignRelevanceWeights(relevance, &copy);
    benchmark::DoNotOptimize(copy.size());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_AssignWeights);

}  // namespace
}  // namespace focus::distill

BENCHMARK_MAIN();
