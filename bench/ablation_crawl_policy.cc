// Ablation: frontier policy and the distillation boost (radius-2 rule).
//
// DESIGN.md calls out two crawler design choices: the aggressive-discovery
// priority ordering (vs plain FIFO over the same soft-focus expansion) and
// the periodic hub boost ("Occasionally, HUBS.score is used to trigger the
// raising of relevance of unvisited pages cited by some of the top
// hubs"). We measure the steady-state harvest and the number of distinct
// strongly-relevant pages discovered under each combination.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kBudget = 3000;

int Run() {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 53;
  options.web.pages_per_topic = 2000;
  options.web.background_pages = 60000;
  options.web.background_servers = 1500;
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 12);

  Note("ablation: frontier priority and periodic distillation boost");
  Note("soft-focus expansion in all variants; budget ", kBudget);
  std::printf("variant,steady_harvest,relevant_found_first_1000,"
              "relevant_pages_found,true_on_topic_pages\n");

  auto run = [&](const char* name, crawl::PriorityPolicy policy,
                 int distill_every) {
    crawl::CrawlerOptions copts;
    copts.max_fetches = kBudget;
    copts.policy = policy;
    copts.distill_every = distill_every;
    auto session = system->NewCrawl(seeds, copts).TakeValue();
    FOCUS_CHECK(session->crawler().Crawl().ok());
    const auto& visits = session->crawler().visits();
    double tail = 0;
    size_t start = visits.size() / 2;
    for (size_t i = start; i < visits.size(); ++i) {
      tail += visits[i].relevance;
    }
    tail /= visits.size() - start;
    int relevant = 0, early_relevant = 0, on_topic = 0;
    for (const auto& v : visits) {
      if (v.relevance > 0.5) {
        ++relevant;
        if (v.fetch_index < 1000) ++early_relevant;
      }
      auto idx = system->web().PageIndexByUrl(v.url);
      if (idx.ok() &&
          system->web().page(idx.value()).topic == cycling) {
        ++on_topic;
      }
    }
    std::printf("%s,%.3f,%d,%d,%d\n", name, tail, early_relevant, relevant,
                on_topic);
  };

  run("relevance priority + distill boost",
      crawl::PriorityPolicy::kAggressiveDiscovery, 500);
  run("relevance priority, no boost",
      crawl::PriorityPolicy::kAggressiveDiscovery, 0);
  run("fifo frontier, no boost", crawl::PriorityPolicy::kBreadthFirst, 0);
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
