// The §2 premise table: radius-1 and radius-2 statistics of the web.
//
// "a page that points to a given first level topic of Yahoo! has about a
// 45% chance of having another link to the same topic." We measure the
// same statistics on the simulated web — these are the properties the
// whole crawler design depends on, so the substrate must exhibit them.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/sample_taxonomy.h"
#include "util/logging.h"
#include "webgraph/simulated_web.h"

namespace focus::bench {
namespace {

int Run() {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  webgraph::WebConfig config;
  config.seed = 41;
  config.pages_per_topic = 800;
  config.background_pages = 60000;
  config.background_servers = 1500;
  auto web = webgraph::SimulatedWeb::Generate(tax, config, {});
  FOCUS_CHECK(web.ok(), web.status().ToString());

  Note("radius-1 / radius-2 statistics of the simulated web (the paper's "
       "section 2 premises)");
  Note("pages: ", web.value().num_pages());
  std::printf("topic,p_same_per_link,p_random_page_links_topic,"
              "p_second_link_given_first\n");

  for (const char* name : {"cycling", "mutual_funds", "first_aid",
                           "databases"}) {
    taxonomy::Cid topic = tax.FindByName(name).value();
    int64_t same = 0, topic_links = 0;
    for (uint32_t idx : web.value().PagesOfTopic(topic)) {
      for (uint32_t t : web.value().page(idx).outlinks) {
        same += (web.value().page(t).topic == topic);
        ++topic_links;
      }
    }
    int64_t with_one = 0, with_two = 0;
    for (uint32_t i = 0; i < web.value().num_pages(); ++i) {
      int count = 0;
      for (uint32_t t : web.value().page(i).outlinks) {
        count += (web.value().page(t).topic == topic);
      }
      if (count >= 1) ++with_one;
      if (count >= 2) ++with_two;
    }
    std::printf("%s,%.3f,%.5f,%.3f\n", name,
                static_cast<double>(same) / topic_links,
                static_cast<double>(with_one) / web.value().num_pages(),
                static_cast<double>(with_two) / with_one);
  }
  Note("paper's reference point: P(second link | first link) ~ 0.45 for "
       "Yahoo! first-level topics");
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
