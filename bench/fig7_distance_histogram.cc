// Figure 7: evidence of large-radius exploration.
//
// "We will plot histograms of the shortest distance (number of links) of
// the top 100 authorities from the start set. If most of the best
// authorities are very close to the start set, we cannot claim
// significant value in the goal-driven exploration... excellent resources
// were found as far as 12-15 links from the start set." Plus the paper's
// table of top hubs.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "util/hash.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kBudget = 5000;

int Run() {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 37;
  options.web.pages_per_topic = 2500;
  options.web.background_pages = 40000;
  options.web.background_servers = 1000;
  // Large-radius community: tight topical locality, few shortcuts.
  options.web.locality_window = 8;
  options.web.p_long_range = 0.005;
  options.web.hub_locality_window = 20;
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 4);

  crawl::CrawlerOptions copts;
  copts.max_fetches = kBudget;
  copts.distill_every = 1000;
  auto session = system->NewCrawl(seeds, copts).TakeValue();
  FOCUS_CHECK(session->crawler().Crawl().ok());
  Note("figure 7: distance from the start set to the top 100 authorities");
  Note("crawl: ", session->crawler().visits().size(), " pages from ",
       seeds.size(), " seeds");

  auto result = session->Distill({.iterations = 25, .rho = 0.2}, 100);
  FOCUS_CHECK(result.ok(), result.status().ToString());

  std::vector<uint64_t> sources;
  for (const auto& url : seeds) sources.push_back(UrlOid(url));
  std::vector<uint64_t> targets;
  for (const auto& auth : result.value().authorities) {
    targets.push_back(auth.oid);
  }
  auto distances =
      crawl::CrawledGraphDistances(session->db(), sources, targets);
  FOCUS_CHECK(distances.ok());
  auto hist = crawl::DistanceHistogram(distances.value(), 20);

  std::printf("shortest_distance_links,frequency\n");
  int max_d = 0;
  for (size_t d = 0; d < hist.size(); ++d) {
    std::printf("%zu,%d\n", d, hist[d]);
    if (hist[d] > 0) max_d = static_cast<int>(d);
  }
  Note("authorities found up to ", max_d,
       " links from the start set (paper: 12-15)");

  std::printf("\n# top hubs (the paper's table of cycling resource "
              "lists):\n");
  for (size_t i = 0; i < 16 && i < result.value().hubs.size(); ++i) {
    std::printf("# %-55s %.4f\n", result.value().hubs[i].url.c_str(),
                result.value().hubs[i].score);
  }
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
