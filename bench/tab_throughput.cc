// System throughput, for context with §3's setup: "about thirty threads
// fetch a total of 5-10 pages a second" — roughly ten thousand pages per
// hour on the 1999 testbed.
//
// We report (a) virtual-time throughput — fetch latency is charged to the
// virtual clock at fetch_latency_mean_ms per page, so this axis is
// comparable to the paper's network-bound rate — and (b) wall-clock
// throughput of the whole pipeline (fetch simulation + tokenization +
// classification + relational bookkeeping), single- and multi-threaded.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "util/clock.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kBudget = 2000;

int Run() {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 73;
  options.web.pages_per_topic = 1500;
  options.web.background_pages = 30000;
  options.web.background_servers = 800;
  options.web.fetch_latency_mean_ms = 120;  // the paper's network regime
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 12);

  Note("crawler throughput (paper: ~30 threads, 5-10 pages/s, ~10k "
       "pages/hour)");
  std::printf("threads,pages,wall_seconds,pages_per_wall_second,"
              "virtual_seconds,pages_per_virtual_second\n");
  for (int threads : {1, 8}) {
    crawl::CrawlerOptions copts;
    copts.max_fetches = kBudget;
    copts.num_threads = threads;
    auto session = system->NewCrawl(seeds, copts).TakeValue();
    Stopwatch wall;
    FOCUS_CHECK(session->crawler().Crawl().ok());
    double wall_s = wall.ElapsedSeconds();
    double virtual_s = session->crawler().clock().NowSeconds();
    size_t pages = session->crawler().visits().size();
    std::printf("%d,%zu,%.2f,%.0f,%.1f,%.1f\n", threads, pages, wall_s,
                pages / wall_s, virtual_s, pages / virtual_s);
  }
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
