// System throughput, for context with §3's setup: "about thirty threads
// fetch a total of 5-10 pages a second" — roughly ten thousand pages per
// hour on the 1999 testbed.
//
// We report (a) virtual-time throughput — fetch latency is charged to the
// virtual clock at fetch_latency_mean_ms per page, so this axis is
// comparable to the paper's network-bound rate, and multi-threaded runs
// overlap fetch waits exactly like the paper's fetch threads — and
// (b) wall-clock throughput of the whole pipeline (fetch simulation +
// tokenization + batched classification + relational bookkeeping).
//
// Flags (for the CI bench-smoke job):
//   --budget N           pages to fetch per run (default 2000)
//   --tiny               shrink the simulated web for fast smoke runs
//   --json PATH          write the result rows as JSON (schema 2)
//   --metrics-json PATH  dump the full metrics-registry snapshot as JSON
//   --metrics-text PATH  same snapshot in Prometheus text format
//   --trace PATH         record trace spans, write Chrome trace_event JSON
//
// Provenance / live introspection:
//   --events PATH        enable the crawl event log, dump it as JSONL
//   --admin-port N       serve /metrics /metrics.json /trace /events
//                        /frontier /healthz on 127.0.0.1:N while the bench
//                        runs (0 = ephemeral port, printed at startup);
//                        implies the event log
//
// Fault injection (the hostile-web model; defaults are a fault-free web):
//   --fail-prob P        transient failure probability per fetch, plus
//                        P/5 permanent losses, P/5 timeouts, P/2 truncation
//   --timeout-ms N       virtual time a timed-out fetch burns (default 2000)
//   --outage-servers N   schedule staggered outages on the first N servers
//   --dead-servers F     fraction of servers that never respond
//   --no-breaker         disable the per-server circuit breaker
//
// Durability:
//   --wal                back each session with FileDiskManager + the
//                        write-ahead log (crawler batches become durable
//                        commits); reports appends/syncs per committed
//                        batch so the WAL overhead vs the in-memory
//                        baseline is visible on both time axes
//
// Distributed (the multi-shard supervisor; see src/dist/):
//   --shards N           partition the URL space across N crawl shards and
//                        run the supervisor to its fixpoint instead of the
//                        thread sweep; reports per-shard pages/restarts and
//                        the link-exchange counters. --budget applies per
//                        shard (each shard owns a disjoint URL partition).
//   --kill-shard S@T     schedule a shard death: kill shard S when its
//                        virtual clock reaches T seconds (repeatable); the
//                        supervisor must recover it and still converge.
//                        Recovery counters land in the --json artifact.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "crawl/relevance_evaluator.h"
#include "dist/dist_crawl.h"
#include "crawl/monitor.h"
#include "crawl/provenance.h"
#include "obs/admin_server.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/wal.h"
#include "util/clock.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

struct Flags {
  int budget = 2000;
  bool tiny = false;
  int shards = 1;
  std::vector<std::pair<int, double>> kills;  // (shard, virtual seconds)
  double fail_prob = 0;
  int timeout_ms = 2000;
  int outage_servers = 0;
  double dead_servers = 0;
  bool breaker = true;
  bool wal = false;
  int admin_port = -1;  // -1 = no admin server
  std::string events_path;
  std::string json_path;
  std::string metrics_json_path;
  std::string metrics_text_path;
  std::string trace_path;

  bool WantEvents() const { return admin_port >= 0 || !events_path.empty(); }
};

// Applies the fault flags to a web config: --fail-prob P injects the full
// taxonomy (transient baseline P plus proportional permanent / timeout /
// truncation shares), and --outage-servers staggers one outage window per
// affected server across the first minutes of virtual time.
void ApplyFaultFlags(const Flags& flags, webgraph::WebConfig* web) {
  web->fetch_failure_prob = flags.fail_prob;
  web->faults.permanent_prob = flags.fail_prob / 5;
  web->faults.timeout_prob = flags.fail_prob / 5;
  web->faults.truncate_prob = flags.fail_prob / 2;
  web->faults.timeout_ms = flags.timeout_ms;
  web->faults.dead_server_fraction = flags.dead_servers;
  for (int s = 0; s < flags.outage_servers; ++s) {
    double start = 5.0 + 10.0 * s;
    web->faults.outages.push_back(
        webgraph::ServerOutage{s, start, start + 60.0});
  }
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      flags.tiny = true;
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      flags.budget = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      flags.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      flags.metrics_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-text") == 0 && i + 1 < argc) {
      flags.metrics_text_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      flags.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fail-prob") == 0 && i + 1 < argc) {
      flags.fail_prob = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      flags.timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--outage-servers") == 0 &&
               i + 1 < argc) {
      flags.outage_servers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dead-servers") == 0 && i + 1 < argc) {
      flags.dead_servers = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-breaker") == 0) {
      flags.breaker = false;
    } else if (std::strcmp(argv[i], "--wal") == 0) {
      flags.wal = true;
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      flags.events_path = argv[++i];
    } else if (std::strcmp(argv[i], "--admin-port") == 0 && i + 1 < argc) {
      flags.admin_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      flags.shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--kill-shard") == 0 && i + 1 < argc) {
      int shard = 0;
      double at_s = 0;
      if (std::sscanf(argv[++i], "%d@%lf", &shard, &at_s) != 2) {
        std::fprintf(stderr, "--kill-shard wants S@T (e.g. 2@5.0)\n");
        std::exit(2);
      }
      flags.kills.emplace_back(shard, at_s);
    } else {
      std::fprintf(stderr,
                   "usage: tab_throughput [--budget N] [--tiny] "
                   "[--json PATH] [--metrics-json PATH] "
                   "[--metrics-text PATH] [--trace PATH] "
                   "[--events PATH] [--admin-port N] "
                   "[--fail-prob P] [--timeout-ms N] [--outage-servers N] "
                   "[--dead-servers F] [--no-breaker] [--wal] "
                   "[--shards N] [--kill-shard S@T]\n");
      std::exit(2);
    }
  }
  return flags;
}

struct Row {
  int threads = 0;
  size_t pages = 0;
  double wall_s = 0;
  double virtual_s = 0;
  double batch_occupancy = 0;
  storage::WalStats wal;            // zero when running without --wal
  storage::BufferPool::Stats pool;  // the session's buffer-pool counters

  double PerWallSecond() const { return wall_s == 0 ? 0 : pages / wall_s; }
  double PerVirtualSecond() const {
    return virtual_s == 0 ? 0 : pages / virtual_s;
  }
  double PerCommit(uint64_t n) const {
    return wal.commits == 0 ? 0 : static_cast<double>(n) / wal.commits;
  }
  double ReadaheadUsedFrac() const {
    return pool.readahead_issued == 0
               ? 0
               : static_cast<double>(pool.readahead_used) /
                     static_cast<double>(pool.readahead_issued);
  }
};

int Run(const Flags& flags) {
  if (!flags.trace_path.empty()) obs::TraceBuffer::Global().Enable();
  // A private registry: repeated bench runs (and other processes' global
  // metrics) never leak into this run's snapshot.
  obs::MetricsRegistry registry;
  obs::EventLog event_log;
  if (flags.WantEvents()) event_log.Enable();
  obs::AdminServer::Options admin_opts;
  admin_opts.port = flags.admin_port < 0 ? 0 : flags.admin_port;
  admin_opts.metrics = &registry;
  admin_opts.events = flags.WantEvents() ? &event_log : nullptr;
  obs::AdminServer admin(admin_opts);
  if (flags.admin_port >= 0) {
    Status started = admin.Start();
    FOCUS_CHECK(started.ok(), started.ToString());
    std::printf("admin server on http://127.0.0.1:%d\n", admin.port());
  }
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 73;
  options.web.pages_per_topic = flags.tiny ? 150 : 1500;
  options.web.background_pages = flags.tiny ? 3000 : 30000;
  options.web.background_servers = flags.tiny ? 120 : 800;
  options.web.fetch_latency_mean_ms = 120;  // the paper's network regime
  ApplyFaultFlags(flags, &options.web);
  if (flags.wal) {
    // File-backed sessions behind the write-ahead log; a scratch directory
    // per process so parallel bench runs never share a store.
    options.session_db_dir =
        "/tmp/focus-tab-throughput-" + std::to_string(::getpid());
  }
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 12);

  if (flags.shards > 1) {
    // Multi-shard supervisor instead of the thread sweep: hash-partition
    // the URL space, run to the distributed fixpoint (recovering any
    // scheduled shard deaths), and report the recovery counters.
    crawl::ClassifierEvaluator evaluator(&system->classifier());
    dist::ShardFaultPlan plan;
    for (const auto& [shard, at_s] : flags.kills) {
      FOCUS_CHECK(shard >= 0 && shard < flags.shards,
                  "--kill-shard shard out of range");
      plan.KillAt(shard, static_cast<int64_t>(at_s * 1e6));
    }
    dist::DistCrawlOptions dopts;
    dopts.num_shards = flags.shards;
    dopts.crawler.max_fetches = flags.budget;
    dopts.crawler.breaker.enabled = flags.breaker;
    dopts.crawler.distill_every = 0;
    dopts.metrics_registry = &registry;
    dopts.fault_plan = flags.kills.empty() ? nullptr : &plan;
    dopts.enable_event_logs = flags.WantEvents();
    auto dc_or = dist::DistCrawl::Create(&system->web(), &evaluator, dopts);
    FOCUS_CHECK(dc_or.ok(), dc_or.status().ToString());
    std::unique_ptr<dist::DistCrawl> dc = std::move(dc_or).TakeValue();
    for (const std::string& url : seeds) {
      FOCUS_CHECK(dc->AddSeed(url).ok());
    }
    Stopwatch wall;
    Status fixpoint = dc->RunToFixpoint();
    FOCUS_CHECK(fixpoint.ok(), fixpoint.ToString());
    double wall_s = wall.ElapsedSeconds();
    auto visited = dc->VisitedRelevance();
    FOCUS_CHECK(visited.ok(), visited.status().ToString());
    auto harvest = dc->HarvestRate(0.5);
    FOCUS_CHECK(harvest.ok(), harvest.status().ToString());
    const dist::ExchangeStats& ex = dc->exchange_stats();

    Note("distributed crawl (per-server hash partitioning, crash-safe "
         "link exchange)");
    std::printf("shards=%d pages=%zu wall_seconds=%.2f harvest_rate=%.3f\n",
                flags.shards, visited.value().size(), wall_s,
                harvest.value());
    std::printf("exchange: delivered=%llu replayed=%llu batches=%llu\n",
                static_cast<unsigned long long>(ex.delivered),
                static_cast<unsigned long long>(ex.replayed),
                static_cast<unsigned long long>(ex.batches));
    std::printf("kills: scheduled=%zu fired=%d restarts=%d\n",
                flags.kills.size(), plan.fired(), dc->total_restarts());
    std::printf("shard,frontier,restarts\n");
    for (int s = 0; s < flags.shards; ++s) {
      std::printf("%d,%zu,%d\n", s, dc->crawler(s)->frontier()->size(),
                  dc->restarts(s));
    }

    if (!flags.json_path.empty()) {
      // The recovery-counter artifact the CI chaos smoke uploads.
      JsonWriter w;
      w.BeginObject()
          .Field("schema", 1)
          .Field("benchmark", "tab_throughput_distributed")
          .Field("shards", flags.shards)
          .Field("pages", static_cast<uint64_t>(visited.value().size()))
          .Field("wall_seconds", wall_s)
          .Field("harvest_rate", harvest.value())
          .Field("kills_scheduled", static_cast<uint64_t>(flags.kills.size()))
          .Field("kills_fired", plan.fired())
          .Field("total_restarts", dc->total_restarts())
          .Field("exchange_delivered", ex.delivered)
          .Field("exchange_replayed", ex.replayed)
          .Field("exchange_batches", ex.batches);
      w.Key("shard_restarts").BeginArray();
      for (int s = 0; s < flags.shards; ++s) {
        w.BeginObject()
            .Field("shard", s)
            .Field("restarts", dc->restarts(s))
            .EndObject();
      }
      w.EndArray().EndObject();
      if (!WriteTextFile(flags.json_path, w.TakeString())) return 1;
    }
    if (!flags.metrics_json_path.empty() &&
        !WriteTextFile(flags.metrics_json_path, registry.ToJson())) {
      return 1;
    }
    if (!flags.metrics_text_path.empty() &&
        !WriteTextFile(flags.metrics_text_path,
                       registry.ToPrometheusText())) {
      return 1;
    }
    if (!flags.events_path.empty()) {
      std::string jsonl;
      for (int s = 0; s < flags.shards; ++s) {
        jsonl += dc->event_log(s)->ToJsonl();
      }
      if (!WriteTextFile(flags.events_path, jsonl)) return 1;
    }
    admin.Stop();
    return 0;
  }

  Note("crawler throughput (paper: ~30 threads, 5-10 pages/s, ~10k "
       "pages/hour)");
  std::printf("threads,pages,wall_seconds,pages_per_wall_second,"
              "virtual_seconds,pages_per_virtual_second,"
              "batch_occupancy\n");
  std::vector<Row> rows;
  // Sessions stay alive past the loop so their buffer-pool collectors are
  // still registered when the registry snapshot is taken below.
  std::vector<std::unique_ptr<core::CrawlSession>> sessions;
  for (int threads : {1, 8}) {
    crawl::CrawlerOptions copts;
    copts.max_fetches = flags.budget;
    copts.num_threads = threads;
    copts.breaker.enabled = flags.breaker;
    copts.metrics_registry = &registry;
    copts.event_log = flags.WantEvents() ? &event_log : nullptr;
    auto session = system->NewCrawl(seeds, copts).TakeValue();
    if (flags.admin_port >= 0) {
      // Re-point /frontier at the session that is about to run.
      crawl::RegisterCrawlAdminEndpoints(&admin, &session->crawler());
    }
    Stopwatch wall;
    FOCUS_CHECK(session->crawler().Crawl().ok());
    Row row;
    row.threads = threads;
    row.wall_s = wall.ElapsedSeconds();
    row.virtual_s = session->crawler().clock().NowSeconds();
    row.pages = session->crawler().visits().size();
    const crawl::StageMetricsSnapshot metrics =
        session->crawler().stage_metrics().Snapshot();
    row.batch_occupancy = metrics.AvgBatchOccupancy();
    std::printf("%d,%zu,%.2f,%.0f,%.1f,%.1f,%.1f\n", row.threads,
                row.pages, row.wall_s, row.PerWallSecond(), row.virtual_s,
                row.PerVirtualSecond(), row.batch_occupancy);
    bool faulty = flags.fail_prob > 0 || flags.dead_servers > 0 ||
                  flags.outage_servers > 0;
    if (threads > 1 || faulty) {
      std::printf("%s", crawl::FormatStageMetrics(metrics).c_str());
    }
    row.pool = session->pool()->stats();
    std::printf("  pool: hit_ratio=%.4f readahead issued=%llu used=%llu\n",
                row.pool.hit_ratio(),
                static_cast<unsigned long long>(row.pool.readahead_issued),
                static_cast<unsigned long long>(row.pool.readahead_used));
    if (session->wal() != nullptr) {
      row.wal = session->wal()->wal_stats();
      std::printf("  wal: %llu commits, %.1f appends/commit, "
                  "%.1f syncs/commit, %llu checkpoints, %.1f KiB logged\n",
                  static_cast<unsigned long long>(row.wal.commits),
                  row.PerCommit(row.wal.appends),
                  row.PerCommit(row.wal.syncs),
                  static_cast<unsigned long long>(row.wal.checkpoints),
                  row.wal.log_bytes / 1024.0);
    }
    rows.push_back(row);
    sessions.push_back(std::move(session));
  }

  if (!flags.json_path.empty()) {
    JsonWriter w;
    w.BeginObject().Field("schema", 2).Field("benchmark", "tab_throughput");
    w.Key("rows").BeginArray();
    for (const Row& r : rows) {
      w.BeginObject()
          .Field("threads", r.threads)
          .Field("pages", static_cast<uint64_t>(r.pages))
          .Field("wall_seconds", r.wall_s)
          .Field("pages_per_wall_second", r.PerWallSecond())
          .Field("virtual_seconds", r.virtual_s)
          .Field("pages_per_virtual_second", r.PerVirtualSecond())
          .Field("batch_occupancy", r.batch_occupancy)
          .Field("wal_commits", r.wal.commits)
          .Field("wal_appends_per_commit", r.PerCommit(r.wal.appends))
          .Field("wal_syncs_per_commit", r.PerCommit(r.wal.syncs))
          .Field("pool_hit_ratio", r.pool.hit_ratio())
          .Field("pool_readahead_issued", r.pool.readahead_issued)
          .Field("pool_readahead_used", r.pool.readahead_used)
          .Field("pool_readahead_used_frac", r.ReadaheadUsedFrac())
          .EndObject();
    }
    w.EndArray().EndObject();
    if (!WriteTextFile(flags.json_path, w.TakeString())) return 1;
  }
  if (!flags.metrics_json_path.empty() &&
      !WriteTextFile(flags.metrics_json_path, registry.ToJson())) {
    return 1;
  }
  if (!flags.metrics_text_path.empty() &&
      !WriteTextFile(flags.metrics_text_path, registry.ToPrometheusText())) {
    return 1;
  }
  if (!flags.trace_path.empty() &&
      !WriteTextFile(flags.trace_path,
                     obs::TraceBuffer::Global().ToChromeTraceJson())) {
    return 1;
  }
  if (!flags.events_path.empty() &&
      !WriteTextFile(flags.events_path, event_log.ToJsonl())) {
    return 1;
  }
  admin.Stop();
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main(int argc, char** argv) {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run(focus::bench::ParseFlags(argc, argv));
}
