// Figure 6: coverage (recall surrogate) experiment.
//
// "We first build a reference crawl by selecting a random set S1 of start
// URLs... Then we collect another random set S2 of start sites..., making
// sure S1 ∩ S2 = ∅. Then we start a separate crawl from S2, monitoring
// along time the fraction of the relevant URLs in the reference crawl
// that are visited by the second test crawl." The paper reaches ~83% URL
// and ~90% server coverage within an hour. Relevance threshold:
// log R(u) > -1.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kBudget = 4000;

int Run() {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 29;
  options.web.pages_per_topic = 1200;
  options.web.background_pages = 60000;
  options.web.background_servers = 1500;
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();

  // Disjoint start sets (different slices of the keyword ranking, standing
  // in for Yahoo!/Infoseek/Excite vs AltaVista sources).
  auto s1 = system->web().KeywordSeeds(cycling, 15, 0);
  auto s2 = system->web().KeywordSeeds(cycling, 15, 15);

  crawl::CrawlerOptions copts;
  copts.max_fetches = kBudget;
  copts.distill_every = 400;

  auto reference = system->NewCrawl(s1, copts).TakeValue();
  FOCUS_CHECK(reference->crawler().Crawl().ok());
  auto sets =
      crawl::RelevantReferenceSets(reference->crawler().visits(), -1.0);
  Note("figure 6: coverage of a reference crawl by a test crawl from a "
       "disjoint start set");
  Note("reference crawl: ", reference->crawler().visits().size(),
       " pages; relevant urls (log R > -1): ", sets.oids.size(),
       "; servers: ", sets.servers.size());

  auto test = system->NewCrawl(s2, copts).TakeValue();
  FOCUS_CHECK(test->crawler().Crawl().ok());
  auto coverage =
      crawl::Coverage(test->crawler().visits(), sets.oids, sets.servers);

  std::printf("urls_crawled,url_coverage,server_coverage\n");
  for (size_t i = 99; i < coverage.url_fraction.size(); i += 100) {
    std::printf("%zu,%.4f,%.4f\n", i + 1, coverage.url_fraction[i],
                coverage.server_fraction[i]);
  }
  Note("final coverage: urls ", coverage.url_fraction.back(), ", servers ",
       coverage.server_fraction.back(), " (paper: ~0.83 and ~0.90)");
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
