// Micro-benchmarks for the executor: joins, sort, aggregation, tokenizer.
//
// Operators with multiple engines carry a _scalar / _vectorized /
// _parallel / _encoded suffix;
// `--engine=scalar|vectorized|parallel|encoded` selects one family (it maps to --benchmark_filter), `--threads=N` sets the
// parallel-engine worker count (reported as the `threads` counter), and
// `--json` maps to --benchmark_format=json, so CI can diff the engines
// and thread counts from one binary.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sql/exec/aggregate.h"
#include "sql/exec/batch.h"
#include "sql/exec/batch_ops.h"
#include "sql/exec/dictionary.h"
#include "sql/exec/join.h"
#include "sql/exec/operator.h"
#include "sql/exec/parallel.h"
#include "sql/exec/sort.h"
#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

// Worker count for the _parallel family (set by --threads=N).
static int g_parallel_threads = 4;

namespace focus::sql {
namespace {

Schema TwoInts() {
  return Schema({{"k", TypeId::kInt32}, {"v", TypeId::kInt32}});
}

std::vector<Tuple> RandomRows(int n, int key_range, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(Tuple({Value::Int32(static_cast<int32_t>(
                              rng.Uniform(key_range))),
                          Value::Int32(i)}));
  }
  return rows;
}

// The columnar twin of a MaterializedSource input: both engines start
// from an in-memory rowset in their native layout.
ColumnSet Columnar(const std::vector<Tuple>& rows) {
  ColumnSet set(TwoInts());
  for (const Tuple& t : rows) set.AppendTuple(t);
  return set;
}

// --- sort + merge join (the Figure 3 / Figure 4 access pattern) ---

void BM_MergeJoin_scalar(benchmark::State& state) {
  int n = state.range(0);
  auto left = RandomRows(n, n / 4, 1);
  auto right = RandomRows(n, n / 4, 2);
  for (auto _ : state) {
    MergeJoin join(
        std::make_unique<Sort>(
            std::make_unique<MaterializedSource>(TwoInts(), left),
            std::vector<SortKey>{{0, false}}),
        std::make_unique<Sort>(
            std::make_unique<MaterializedSource>(TwoInts(), right),
            std::vector<SortKey>{{0, false}}),
        std::vector<int>{0}, std::vector<int>{0});
    auto rows = Collect(&join);
    benchmark::DoNotOptimize(rows.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeJoin_scalar)->Arg(1000)->Arg(10000);

void BM_MergeJoin_vectorized(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet left = Columnar(RandomRows(n, n / 4, 1));
  ColumnSet right = Columnar(RandomRows(n, n / 4, 2));
  for (auto _ : state) {
    BatchMergeJoin join(
        std::make_unique<BatchSort>(std::make_unique<BatchSource>(&left),
                                    std::vector<SortKey>{{0, false}}),
        std::make_unique<BatchSort>(std::make_unique<BatchSource>(&right),
                                    std::vector<SortKey>{{0, false}}),
        std::vector<int>{0}, std::vector<int>{0});
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&join, &out).ok());
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
// The 100k point is the CI speedup gate: large enough that morsel/
// partition overhead is amortized and the parallel engine must win.
BENCHMARK(BM_MergeJoin_vectorized)->Arg(1000)->Arg(10000)->Arg(100000);

// Same work as _vectorized (sort both sides + merge, from unsorted
// columnar input): the parallel join fuses the sorts into its radix
// partitioning, producing bit-identical output.
void BM_MergeJoin_parallel(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet left = Columnar(RandomRows(n, n / 4, 1));
  ColumnSet right = Columnar(RandomRows(n, n / 4, 2));
  MorselDispatcher dispatcher(g_parallel_threads);
  for (auto _ : state) {
    ParallelMergeJoin join(std::make_unique<BatchSource>(&left),
                           std::make_unique<BatchSource>(&right),
                           std::vector<int>{0}, std::vector<int>{0},
                           &dispatcher);
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&join, &out).ok());
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["threads"] = g_parallel_threads;
}
BENCHMARK(BM_MergeJoin_parallel)->Arg(1000)->Arg(10000)->Arg(100000);

// Same work on dictionary codes: the dictionaries are built once (table
// materialization time in the real system); each iteration sorts, joins
// and late-materializes the key columns from codes, the way the kEncoded
// engine runs the hot plans.
void BM_MergeJoin_encoded(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet left = Columnar(RandomRows(n, n / 4, 1));
  ColumnSet right = Columnar(RandomRows(n, n / 4, 2));
  DictionaryPtr uni =
      UnifyDictionaries(*ColumnDictionary::Build(left.col(0)),
                        *ColumnDictionary::Build(right.col(0)))
          .dict;
  auto encode = [&uni](const ColumnSet& img) {
    std::vector<Column> sch = img.schema().columns();
    sch[0].type = TypeId::kInt32;
    return ColumnSet(Schema(std::move(sch)),
                     {EncodeColumn(img.col(0), *uni), img.col_ptr(1)});
  };
  ColumnSet lenc = encode(left), renc = encode(right);
  for (auto _ : state) {
    BatchMergeJoin join(
        std::make_unique<BatchSort>(std::make_unique<BatchSource>(&lenc),
                                    std::vector<SortKey>{{0, false}}),
        std::make_unique<BatchSort>(std::make_unique<BatchSource>(&renc),
                                    std::vector<SortKey>{{0, false}}),
        std::vector<int>{0}, std::vector<int>{0});
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&join, &out).ok());
    benchmark::DoNotOptimize(DecodeColumn(out.col(0), *uni)->size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeJoin_encoded)->Arg(1000)->Arg(10000)->Arg(100000);

// The cost model's favourite shape on codes: a dense run table over the
// dictionary domain replaces the merge walk with O(1) lookups.
void BM_ProbeJoin_encoded(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet left = Columnar(RandomRows(n, n / 4, 1));
  ColumnSet right = Columnar(RandomRows(n, n / 4, 2));
  DictionaryPtr uni =
      UnifyDictionaries(*ColumnDictionary::Build(left.col(0)),
                        *ColumnDictionary::Build(right.col(0)))
          .dict;
  auto encode_sorted = [&uni](const ColumnSet& img) {
    BatchSort sort(std::make_unique<BatchSource>(&img),
                   std::vector<SortKey>{{0, false}});
    ColumnSet sorted;
    FOCUS_CHECK(CollectInto(&sort, &sorted).ok());
    std::vector<Column> sch = sorted.schema().columns();
    sch[0].type = TypeId::kInt32;
    return ColumnSet(Schema(std::move(sch)),
                     {EncodeSortedColumn(sorted.col(0), *uni),
                      sorted.col_ptr(1)});
  };
  ColumnSet lenc = encode_sorted(left), renc = encode_sorted(right);
  for (auto _ : state) {
    BatchProbeJoin join(std::make_unique<BatchSource>(&lenc),
                        std::make_unique<BatchSource>(&renc), 0, 0,
                        /*left_outer=*/false,
                        /*dense_domain=*/uni->size());
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&join, &out).ok());
    benchmark::DoNotOptimize(DecodeColumn(out.col(0), *uni)->size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProbeJoin_encoded)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  int n = state.range(0);
  auto left = RandomRows(n, n / 4, 1);
  auto right = RandomRows(n, n / 4, 2);
  for (auto _ : state) {
    HashJoin join(std::make_unique<MaterializedSource>(TwoInts(), left),
                  std::make_unique<MaterializedSource>(TwoInts(), right),
                  std::vector<int>{0}, std::vector<int>{0});
    auto rows = Collect(&join);
    benchmark::DoNotOptimize(rows.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000);

// --- sort ---

void BM_Sort_scalar(benchmark::State& state) {
  int n = state.range(0);
  auto rows = RandomRows(n, 1 << 30, 3);
  for (auto _ : state) {
    Sort sort(std::make_unique<MaterializedSource>(TwoInts(), rows),
              std::vector<SortKey>{{0, false}});
    auto sorted = Collect(&sort);
    benchmark::DoNotOptimize(sorted.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sort_scalar)->Arg(10000);

void BM_Sort_vectorized(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet rows = Columnar(RandomRows(n, 1 << 30, 3));
  for (auto _ : state) {
    BatchSort sort(std::make_unique<BatchSource>(&rows),
                   std::vector<SortKey>{{0, false}});
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&sort, &out).ok());
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sort_vectorized)->Arg(10000)->Arg(100000);

// Sorting int32 codes instead of the values they stand for — the
// encoded engine's sort workload (identical permutation by monotonicity).
void BM_Sort_encoded(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet rows = Columnar(RandomRows(n, 1 << 30, 3));
  DictionaryPtr dict = ColumnDictionary::Build(rows.col(0));
  std::vector<Column> sch = rows.schema().columns();
  sch[0].type = TypeId::kInt32;
  ColumnSet enc(Schema(std::move(sch)),
                {EncodeColumn(rows.col(0), *dict), rows.col_ptr(1)});
  for (auto _ : state) {
    BatchSort sort(std::make_unique<BatchSource>(&enc),
                   std::vector<SortKey>{{0, false}});
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&sort, &out).ok());
    benchmark::DoNotOptimize(DecodeColumn(out.col(0), *dict)->size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sort_encoded)->Arg(10000)->Arg(100000);

void BM_Sort_parallel(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet rows = Columnar(RandomRows(n, 1 << 30, 3));
  MorselDispatcher dispatcher(g_parallel_threads);
  for (auto _ : state) {
    ParallelSort sort(std::make_unique<BatchSource>(&rows),
                      std::vector<SortKey>{{0, false}}, &dispatcher);
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&sort, &out).ok());
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["threads"] = g_parallel_threads;
}
BENCHMARK(BM_Sort_parallel)->Arg(10000)->Arg(100000);

// --- grouped aggregation (sum over 64 groups) ---
//
// In the hot plans the aggregate consumes merge-join output, which is
// already sorted on the group keys, so both engines see sorted input:
// the scalar engine still hashes (it has no sorted-run aggregate), the
// batch engine aggregates runs in place.

std::vector<Tuple> SortedRows(int n, int key_range, uint64_t seed) {
  Sort sort(std::make_unique<MaterializedSource>(
                TwoInts(), RandomRows(n, key_range, seed)),
            std::vector<SortKey>{{0, false}});
  auto rows = Collect(&sort);
  return std::move(rows.value());
}

void BM_GroupedAggregate_scalar(benchmark::State& state) {
  int n = state.range(0);
  auto rows = SortedRows(n, 64, 4);
  for (auto _ : state) {
    HashAggregate agg(std::make_unique<MaterializedSource>(TwoInts(), rows),
                      {0}, {AggSpec{AggKind::kSum, 1, "sum"}});
    auto out = Collect(&agg);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GroupedAggregate_scalar)->Arg(10000);

void BM_GroupedAggregate_vectorized(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet rows = Columnar(SortedRows(n, 64, 4));
  for (auto _ : state) {
    BatchSortedAggregate agg(std::make_unique<BatchSource>(&rows), {0},
                             {AggSpec{AggKind::kSum, 1, "sum"}});
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&agg, &out).ok());
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GroupedAggregate_vectorized)->Arg(10000);

// Aggregating runs of codes: group compares are int32 equality instead
// of typed Value compares; the group column decodes at output.
void BM_GroupedAggregate_encoded(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet rows = Columnar(SortedRows(n, 64, 4));
  DictionaryPtr dict = ColumnDictionary::BuildFromSorted(rows.col(0));
  std::vector<Column> sch = rows.schema().columns();
  sch[0].type = TypeId::kInt32;
  ColumnSet enc(Schema(std::move(sch)),
                {EncodeSortedColumn(rows.col(0), *dict), rows.col_ptr(1)});
  for (auto _ : state) {
    BatchSortedAggregate agg(std::make_unique<BatchSource>(&enc), {0},
                             {AggSpec{AggKind::kSum, 1, "sum"}});
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&agg, &out).ok());
    benchmark::DoNotOptimize(DecodeColumn(out.col(0), *dict)->size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GroupedAggregate_encoded)->Arg(10000);

void BM_GroupedAggregate_parallel(benchmark::State& state) {
  int n = state.range(0);
  ColumnSet rows = Columnar(SortedRows(n, 64, 4));
  MorselDispatcher dispatcher(g_parallel_threads);
  for (auto _ : state) {
    ParallelSortAggregate agg(std::make_unique<BatchSource>(&rows),
                              {{0, false}}, {0},
                              {AggSpec{AggKind::kSum, 1, "sum"}},
                              &dispatcher);
    ColumnSet out;
    benchmark::DoNotOptimize(CollectInto(&agg, &out).ok());
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["threads"] = g_parallel_threads;
}
BENCHMARK(BM_GroupedAggregate_parallel)->Arg(10000);

void BM_Tokenize(benchmark::State& state) {
  std::string text;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    text += StrCat("token", rng.Uniform(5000), " ");
  }
  text::Tokenizer tokenizer;
  for (auto _ : state) {
    auto tokens = tokenizer.Tokenize(text);
    benchmark::DoNotOptimize(tokens.size());
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_Tokenize);

}  // namespace
}  // namespace focus::sql

int main(int argc, char** argv) {
  // google-benchmark rejects unknown flags, so translate our CLI into its
  // vocabulary before Initialize sees it.
  std::vector<std::string> args;
  args.reserve(argc + 1);
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      args.push_back("--benchmark_filter=_" + arg.substr(9));
    } else if (arg.rfind("--threads=", 0) == 0) {
      g_parallel_threads = std::max(1, std::atoi(arg.c_str() + 10));
    } else if (arg == "--json") {
      args.push_back("--benchmark_format=json");
    } else {
      args.push_back(std::move(arg));
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& s : args) argv2.push_back(s.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
