// Micro-benchmarks for the executor: joins, sort, aggregation, tokenizer.
#include <benchmark/benchmark.h>

#include "sql/exec/aggregate.h"
#include "sql/exec/join.h"
#include "sql/exec/operator.h"
#include "sql/exec/sort.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::sql {
namespace {

Schema TwoInts() {
  return Schema({{"k", TypeId::kInt32}, {"v", TypeId::kInt32}});
}

std::vector<Tuple> RandomRows(int n, int key_range, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(Tuple({Value::Int32(static_cast<int32_t>(
                              rng.Uniform(key_range))),
                          Value::Int32(i)}));
  }
  return rows;
}

void BM_MergeJoin(benchmark::State& state) {
  int n = state.range(0);
  auto left = RandomRows(n, n / 4, 1);
  auto right = RandomRows(n, n / 4, 2);
  for (auto _ : state) {
    MergeJoin join(
        std::make_unique<Sort>(
            std::make_unique<MaterializedSource>(TwoInts(), left),
            std::vector<SortKey>{{0, false}}),
        std::make_unique<Sort>(
            std::make_unique<MaterializedSource>(TwoInts(), right),
            std::vector<SortKey>{{0, false}}),
        std::vector<int>{0}, std::vector<int>{0});
    auto rows = Collect(&join);
    benchmark::DoNotOptimize(rows.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeJoin)->Arg(1000)->Arg(10000);

void BM_HashJoin(benchmark::State& state) {
  int n = state.range(0);
  auto left = RandomRows(n, n / 4, 1);
  auto right = RandomRows(n, n / 4, 2);
  for (auto _ : state) {
    HashJoin join(std::make_unique<MaterializedSource>(TwoInts(), left),
                  std::make_unique<MaterializedSource>(TwoInts(), right),
                  std::vector<int>{0}, std::vector<int>{0});
    auto rows = Collect(&join);
    benchmark::DoNotOptimize(rows.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000);

void BM_Sort(benchmark::State& state) {
  int n = state.range(0);
  auto rows = RandomRows(n, 1 << 30, 3);
  for (auto _ : state) {
    Sort sort(std::make_unique<MaterializedSource>(TwoInts(), rows),
              std::vector<SortKey>{{0, false}});
    auto sorted = Collect(&sort);
    benchmark::DoNotOptimize(sorted.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sort)->Arg(10000);

void BM_HashAggregate(benchmark::State& state) {
  int n = state.range(0);
  auto rows = RandomRows(n, 64, 4);
  for (auto _ : state) {
    HashAggregate agg(std::make_unique<MaterializedSource>(TwoInts(), rows),
                      {0}, {AggSpec{AggKind::kSum, 1, "sum"}});
    auto out = Collect(&agg);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashAggregate)->Arg(10000);

void BM_Tokenize(benchmark::State& state) {
  std::string text;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    text += StrCat("token", rng.Uniform(5000), " ");
  }
  text::Tokenizer tokenizer;
  for (auto _ : state) {
    auto tokens = tokenizer.Tokenize(text);
    benchmark::DoNotOptimize(tokens.size());
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_Tokenize);

}  // namespace
}  // namespace focus::sql

BENCHMARK_MAIN();
