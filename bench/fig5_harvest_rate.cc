// Figure 5: harvest rate of the focused crawler vs a standard crawler.
//
// Both crawlers start from the same keyword-search result on cycling.
// The paper's unfocused crawler is "completely lost within the next
// hundred page fetches: the relevance goes quickly toward zero", while the
// focused crawler sustains a healthy rate ("on an average, every second
// page is relevant"). We print the same moving averages (over 100 and
// 1000 fetches) against #URLs fetched, plus a hard-focus ablation series.
//
// Flags:
//   --budget N           focused-crawl fetch budget (default 6000; the
//                        unfocused baseline gets 2x)
//   --tiny               shrink the simulated web for fast smoke runs
//
// Fault injection (see EXPERIMENTS.md's degradation curve):
//   --fail-prob P        transient failure probability per fetch, plus
//                        P/5 permanent losses, P/5 timeouts, P/2 truncation
//   --timeout-ms N       virtual time a timed-out fetch burns (default 2000)
//   --outage-servers N   schedule staggered outages on the first N servers
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

struct Flags {
  int budget = 6000;  // focused crawl (Figure 5(b))
  bool tiny = false;
  double fail_prob = 0;
  int timeout_ms = 2000;
  int outage_servers = 0;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      flags.tiny = true;
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      flags.budget = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--fail-prob") == 0 && i + 1 < argc) {
      flags.fail_prob = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      flags.timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--outage-servers") == 0 &&
               i + 1 < argc) {
      flags.outage_servers = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: fig5_harvest_rate [--budget N] [--tiny] "
                   "[--fail-prob P] [--timeout-ms N] "
                   "[--outage-servers N]\n");
      std::exit(2);
    }
  }
  return flags;
}

std::unique_ptr<core::FocusSystem> MakeSystem(const Flags& flags) {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 19;
  // Full size: inexhaustible within the budget, with the "web at large"
  // dominating.
  options.web.pages_per_topic = flags.tiny ? 400 : 4000;
  options.web.background_pages = flags.tiny ? 12000 : 120000;
  options.web.background_servers = flags.tiny ? 300 : 3000;
  options.web.p_same_topic = 0.35;
  options.web.fetch_failure_prob = flags.fail_prob;
  options.web.faults.permanent_prob = flags.fail_prob / 5;
  options.web.faults.timeout_prob = flags.fail_prob / 5;
  options.web.faults.truncate_prob = flags.fail_prob / 2;
  options.web.faults.timeout_ms = flags.timeout_ms;
  for (int s = 0; s < flags.outage_servers; ++s) {
    double start = 5.0 + 10.0 * s;
    options.web.faults.outages.push_back(
        webgraph::ServerOutage{s, start, start + 60.0});
  }
  auto system = core::FocusSystem::Create(std::move(tax), options);
  FOCUS_CHECK(system.ok(), system.status().ToString());
  return system.TakeValue();
}

std::vector<crawl::Visit> RunCrawl(core::FocusSystem* system,
                                   const std::vector<std::string>& seeds,
                                   crawl::ExpansionRule rule,
                                   crawl::PriorityPolicy policy,
                                   bool distill, int budget) {
  crawl::CrawlerOptions options;
  options.max_fetches = budget;
  options.expansion = rule;
  options.policy = policy;
  options.distill_every = distill ? 500 : 0;
  auto session = system->NewCrawl(seeds, options);
  FOCUS_CHECK(session.ok(), session.status().ToString());
  FOCUS_CHECK(session.value()->crawler().Crawl().ok());
  const crawl::CrawlStats& stats = session.value()->crawler().stats();
  if (stats.transient_failures + stats.dropped_urls > 0) {
    Note("  faults: ", stats.attempts, " attempts, ",
         stats.transient_failures, " retried failures, ", stats.dropped_urls,
         " urls dropped");
  }
  return session.value()->crawler().visits();
}

void PrintSeries(const char* name, const std::vector<crawl::Visit>& visits) {
  auto avg100 = crawl::MovingAverageRelevance(visits, 100);
  auto avg1000 = crawl::MovingAverageRelevance(visits, 1000);
  for (size_t i = 99; i < visits.size(); i += 100) {
    std::printf("%s,%zu,%.4f,%.4f\n", name, i + 1, avg100[i], avg1000[i]);
  }
}

int Run(const Flags& flags) {
  auto system = MakeSystem(flags);
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  // "starting from the result of topic distillation with keyword search
  // cycl* bicycl* bike"
  auto seeds = system->web().KeywordSeeds(cycling, 12);
  const int budget = flags.budget;
  const int unfocused_budget = 2 * flags.budget;  // standard crawl, 5(a)

  Note("figure 5: harvest rate (moving avg of relevance vs #URLs fetched)");
  Note("budget: ", budget, " fetches; seeds: ", seeds.size(),
       flags.fail_prob > 0 ? "; fault injection on" : "");
  std::printf("crawler,urls_fetched,avg_over_100,avg_over_1000\n");

  auto unfocused =
      RunCrawl(system.get(), seeds, crawl::ExpansionRule::kUnfocused,
               crawl::PriorityPolicy::kBreadthFirst, false,
               unfocused_budget);
  PrintSeries("unfocused", unfocused);

  auto soft =
      RunCrawl(system.get(), seeds, crawl::ExpansionRule::kSoftFocus,
               crawl::PriorityPolicy::kAggressiveDiscovery, true, budget);
  PrintSeries("soft_focus", soft);

  // Ablation: the hard focus rule (§2.1.2) — prone to stagnation.
  auto hard =
      RunCrawl(system.get(), seeds, crawl::ExpansionRule::kHardFocus,
               crawl::PriorityPolicy::kAggressiveDiscovery, false, budget);
  PrintSeries("hard_focus", hard);
  Note("hard focus visited ", hard.size(), " of ", budget,
       " budgeted fetches",
       static_cast<int>(hard.size()) < budget ? " (stagnated)" : "");

  // Ground truth (available only because the web is simulated): fraction
  // of fetched pages truly in the cycling community, second half of each
  // crawl.
  auto true_fraction = [&](const std::vector<crawl::Visit>& visits) {
    int on = 0, n = 0;
    for (size_t i = visits.size() / 2; i < visits.size(); ++i) {
      auto idx = system->web().PageIndexByUrl(visits[i].url);
      if (idx.ok() && system->web().page(idx.value()).topic == cycling) {
        ++on;
      }
      ++n;
    }
    return n == 0 ? 0.0 : static_cast<double>(on) / n;
  };
  Note("ground-truth on-topic fraction (steady state): soft focus ",
       true_fraction(soft), " vs unfocused ", true_fraction(unfocused));

  double soft_tail = 0, unfocused_tail = 0;
  for (size_t i = soft.size() / 2; i < soft.size(); ++i) {
    soft_tail += soft[i].relevance;
  }
  soft_tail /= soft.size() - soft.size() / 2;
  for (size_t i = unfocused.size() / 2; i < unfocused.size(); ++i) {
    unfocused_tail += unfocused[i].relevance;
  }
  unfocused_tail /= unfocused.size() - unfocused.size() / 2;
  Note("steady-state harvest: soft focus ", soft_tail, " vs unfocused ",
       unfocused_tail, " (paper: ~0.4-0.5 vs ~0)");
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main(int argc, char** argv) {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run(focus::bench::ParseFlags(argc, argv));
}
