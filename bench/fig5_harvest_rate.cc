// Figure 5: harvest rate of the focused crawler vs a standard crawler.
//
// Both crawlers start from the same keyword-search result on cycling.
// The paper's unfocused crawler is "completely lost within the next
// hundred page fetches: the relevance goes quickly toward zero", while the
// focused crawler sustains a healthy rate ("on an average, every second
// page is relevant"). We print the same moving averages (over 100 and
// 1000 fetches) against #URLs fetched, plus a hard-focus ablation series.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kBudget = 6000;            // focused crawl (Figure 5(b))
constexpr int kUnfocusedBudget = 12000;  // standard crawl (Figure 5(a))

std::unique_ptr<core::FocusSystem> MakeSystem() {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 19;
  options.web.pages_per_topic = 4000;  // inexhaustible within the budget
  options.web.background_pages = 120000;  // the "web at large" dominates
  options.web.background_servers = 3000;
  options.web.p_same_topic = 0.35;
  auto system = core::FocusSystem::Create(std::move(tax), options);
  FOCUS_CHECK(system.ok(), system.status().ToString());
  return system.TakeValue();
}

std::vector<crawl::Visit> RunCrawl(core::FocusSystem* system,
                                   const std::vector<std::string>& seeds,
                                   crawl::ExpansionRule rule,
                                   crawl::PriorityPolicy policy,
                                   bool distill, int budget) {
  crawl::CrawlerOptions options;
  options.max_fetches = budget;
  options.expansion = rule;
  options.policy = policy;
  options.distill_every = distill ? 500 : 0;
  auto session = system->NewCrawl(seeds, options);
  FOCUS_CHECK(session.ok(), session.status().ToString());
  FOCUS_CHECK(session.value()->crawler().Crawl().ok());
  return session.value()->crawler().visits();
}

void PrintSeries(const char* name, const std::vector<crawl::Visit>& visits) {
  auto avg100 = crawl::MovingAverageRelevance(visits, 100);
  auto avg1000 = crawl::MovingAverageRelevance(visits, 1000);
  for (size_t i = 99; i < visits.size(); i += 100) {
    std::printf("%s,%zu,%.4f,%.4f\n", name, i + 1, avg100[i], avg1000[i]);
  }
}

int Run() {
  auto system = MakeSystem();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();
  // "starting from the result of topic distillation with keyword search
  // cycl* bicycl* bike"
  auto seeds = system->web().KeywordSeeds(cycling, 12);

  Note("figure 5: harvest rate (moving avg of relevance vs #URLs fetched)");
  Note("budget: ", kBudget, " fetches; seeds: ", seeds.size());
  std::printf("crawler,urls_fetched,avg_over_100,avg_over_1000\n");

  auto unfocused =
      RunCrawl(system.get(), seeds, crawl::ExpansionRule::kUnfocused,
               crawl::PriorityPolicy::kBreadthFirst, false,
               kUnfocusedBudget);
  PrintSeries("unfocused", unfocused);

  auto soft =
      RunCrawl(system.get(), seeds, crawl::ExpansionRule::kSoftFocus,
               crawl::PriorityPolicy::kAggressiveDiscovery, true, kBudget);
  PrintSeries("soft_focus", soft);

  // Ablation: the hard focus rule (§2.1.2) — prone to stagnation.
  auto hard =
      RunCrawl(system.get(), seeds, crawl::ExpansionRule::kHardFocus,
               crawl::PriorityPolicy::kAggressiveDiscovery, false, kBudget);
  PrintSeries("hard_focus", hard);
  Note("hard focus visited ", hard.size(), " of ", kBudget,
       " budgeted fetches",
       hard.size() < kBudget ? " (stagnated)" : "");

  // Ground truth (available only because the web is simulated): fraction
  // of fetched pages truly in the cycling community, second half of each
  // crawl.
  auto true_fraction = [&](const std::vector<crawl::Visit>& visits) {
    int on = 0, n = 0;
    for (size_t i = visits.size() / 2; i < visits.size(); ++i) {
      auto idx = system->web().PageIndexByUrl(visits[i].url);
      if (idx.ok() && system->web().page(idx.value()).topic == cycling) {
        ++on;
      }
      ++n;
    }
    return n == 0 ? 0.0 : static_cast<double>(on) / n;
  };
  Note("ground-truth on-topic fraction (steady state): soft focus ",
       true_fraction(soft), " vs unfocused ", true_fraction(unfocused));

  double soft_tail = 0, unfocused_tail = 0;
  for (size_t i = soft.size() / 2; i < soft.size(); ++i) {
    soft_tail += soft[i].relevance;
  }
  soft_tail /= soft.size() - soft.size() / 2;
  for (size_t i = unfocused.size() / 2; i < unfocused.size(); ++i) {
    unfocused_tail += unfocused[i].relevance;
  }
  unfocused_tail /= unfocused.size() - unfocused.size() / 2;
  Note("steady-state harvest: soft focus ", soft_tail, " vs unfocused ",
       unfocused_tail, " (paper: ~0.4-0.5 vs ~0)");
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
