// Figure 8(b): running time vs buffer-pool size.
//
// The paper sweeps the DB2 buffer pool from 128 to 928 4-KiB pages:
// SingleProbe shows continual improvement (no locality — every added
// frame helps), while BulkProbe drops steeply and then stabilizes (its
// sequential passes need only a small working set). As in the paper, a
// smaller document set is used for SingleProbe, which is slow.
#include <cstdio>

#include "bench/bench_util.h"
#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "classify/single_probe.h"
#include "classify/trainer.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/clock.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kSingleProbeDocs = 40;
constexpr int kBulkDocs = 200;
constexpr double kReadLatencyUs = 120;

int Run() {
  taxonomy::Taxonomy tax = MakeWideTaxonomy(8, 14);
  SyntheticTextOptions text_options;
  text_options.tokens_per_doc = 250;
  text_options.leaf_vocab = 500;
  text_options.shared_vocab = 30000;
  text_options.zipf_exponent = 0.75;  // flatter term distribution: less
                                      // locality for the probe classifiers
  SyntheticText text(&tax, text_options);
  Rng rng(23);

  classify::Trainer trainer(
      classify::TrainerOptions{.max_features_per_node = 4000});
  auto model = trainer.Train(tax, text.MakeTrainingSet(12, &rng));
  FOCUS_CHECK(model.ok(), model.status().ToString());
  classify::HierarchicalClassifier ref(&tax, &model.value());

  auto leaves = tax.LeavesUnder(taxonomy::kRootCid);
  std::vector<text::TermVector> docs;
  for (int i = 0; i < kBulkDocs; ++i) {
    docs.push_back(text.MakeDoc(leaves[i % leaves.size()], &rng));
  }

  Note("figure 8(b): running time vs buffer pool (x 4KiB frames)");
  Note("single-probe (BLOB) docs: ", kSingleProbeDocs,
       "; bulk docs: ", kBulkDocs);
  std::printf("frames,single_total_s_per_doc,single_probe_s_per_doc,"
              "single_misses_per_doc,bulk_total_s_per_doc,"
              "bulk_join_s_per_doc,bulk_misses_per_doc\n");

  for (int frames : {16, 32, 64, 128, 228, 328, 428, 528, 628, 728, 828,
                     928}) {
    // Rebuild tables per point so index/heap layout is identical.
    storage::MemDiskManager disk(
        storage::MemDiskManager::Options{.read_latency_us = kReadLatencyUs});
    storage::BufferPool pool(&disk, frames);
    sql::Catalog catalog(&pool);
    auto tables =
        classify::BuildClassifierTables(&catalog, tax, model.value());
    FOCUS_CHECK(tables.ok(), tables.status().ToString());
    auto document = classify::CreateDocumentTable(&catalog, "DOCUMENT");
    FOCUS_CHECK(document.ok());
    for (int i = 0; i < kBulkDocs; ++i) {
      FOCUS_CHECK(
          classify::InsertDocument(document.value(), i + 1, docs[i]).ok());
    }

    classify::SingleProbeClassifier single(
        &ref, &tables.value(), classify::SingleProbeClassifier::Variant::
                                   kBlob);
    FOCUS_CHECK(pool.EvictAll().ok());
    pool.ResetStats();
    Stopwatch single_timer;
    for (int i = 0; i < kSingleProbeDocs; ++i) {
      FOCUS_CHECK(single.Classify(docs[i]).ok());
    }
    double single_total = single_timer.ElapsedSeconds() / kSingleProbeDocs;
    double single_probe = single.stats().probe_seconds / kSingleProbeDocs;
    double single_misses =
        static_cast<double>(pool.stats().misses) / kSingleProbeDocs;

    classify::BulkProbeClassifier bulk(&ref, &tables.value());
    FOCUS_CHECK(pool.EvictAll().ok());
    pool.ResetStats();
    Stopwatch bulk_timer;
    auto scores = bulk.ClassifyAll(document.value());
    FOCUS_CHECK(scores.ok(), scores.status().ToString());
    double bulk_total = bulk_timer.ElapsedSeconds() / kBulkDocs;
    double bulk_join = bulk.stats().join_seconds / kBulkDocs;
    double bulk_misses =
        static_cast<double>(pool.stats().misses) / kBulkDocs;

    std::printf("%d,%.6f,%.6f,%.1f,%.6f,%.6f,%.1f\n", frames, single_total,
                single_probe, single_misses, bulk_total, bulk_join,
                bulk_misses);
  }
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
