// Ablation: what the §2.2.2 distillation enhancements actually buy.
//
// "w.r.t. almost any topic, relevant pages refer to irrelevant pages and
// vice versa... Pages of all topics point to Netscape and Free Speech
// Online." The paper prevents leakage of endorsement with (1) relevance-
// derived edge weights EF/EB, (2) the authority relevance threshold rho,
// and (3) the same-server nepotism filter. We run HITS over the same
// crawl graph with each enhancement removed and measure, against ground
// truth, how many of the top-20 authorities/hubs are actually on topic
// and whether the universal portals ("b*.web.example") invade the top.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "distill/hits.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace focus::bench {
namespace {

int Run() {
  taxonomy::Taxonomy tax = core::BuildSampleTaxonomy();
  core::FocusOptions options;
  options.seed = 47;
  options.web.pages_per_topic = 1000;
  options.web.background_pages = 40000;
  options.web.background_servers = 1000;
  // Make the §2.2.2 hazard pronounced: strong universal portals.
  options.web.popular_background_pages = 10;
  options.web.popular_background_share = 0.35;
  auto system = core::FocusSystem::Create(std::move(tax), options)
                    .TakeValue();
  FOCUS_CHECK(system->MarkGood("cycling").ok());
  FOCUS_CHECK(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();

  auto session = system
                     ->NewCrawl(system->web().KeywordSeeds(cycling, 15),
                                crawl::CrawlerOptions{.max_fetches = 3000})
                     .TakeValue();
  FOCUS_CHECK(session->crawler().Crawl().ok());

  // Edge list + relevance from the crawl state.
  std::vector<distill::WeightedEdge> edges;
  std::unordered_map<uint64_t, double> relevance;
  std::unordered_map<uint64_t, std::string> url_of;
  {
    auto it = session->db().crawl_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      uint64_t oid = static_cast<uint64_t>(row.Get(0).AsInt64());
      url_of[oid] = row.Get(1).AsString();
      if (row.Get(8).AsInt32() != 0) {  // visited pages carry their own R
        relevance[oid] = row.Get(4).AsDouble();
      }
    }
    FOCUS_CHECK(it.status().ok());
  }
  {
    auto it = session->db().link_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      edges.push_back(distill::WeightedEdge{
          static_cast<uint64_t>(row.Get(0).AsInt64()), row.Get(1).AsInt32(),
          static_cast<uint64_t>(row.Get(2).AsInt64()), row.Get(3).AsInt32(),
          0, 0});
    }
    FOCUS_CHECK(it.status().ok());
  }

  auto evaluate = [&](const char* name, bool relevance_weights, double rho,
                      bool nepotism) {
    auto weighted = edges;
    if (relevance_weights) {
      distill::AssignRelevanceWeights(relevance, &weighted);
    } else {
      for (auto& e : weighted) e.wgt_fwd = e.wgt_rev = 1.0;
    }
    distill::HitsEngine engine(weighted, relevance);
    auto scores = engine.Run({.iterations = 25,
                              .rho = rho,
                              .nepotism_filter = nepotism});
    auto top_auth = distill::HitsEngine::TopAuthorities(scores, 20);
    auto top_hubs = distill::HitsEngine::TopHubs(scores, 20);
    auto on_topic = [&](const std::vector<std::pair<uint64_t, double>>& top,
                        int* portals) {
      int good = 0;
      *portals = 0;
      for (const auto& [oid, score] : top) {
        auto it = url_of.find(oid);
        if (it == url_of.end()) continue;
        auto idx = system->web().PageIndexByUrl(it->second);
        if (!idx.ok()) continue;
        const auto& page = system->web().page(idx.value());
        if (page.topic == cycling) ++good;
        if (page.topic == webgraph::kBackgroundTopic) ++(*portals);
      }
      return good;
    };
    int auth_portals = 0, hub_portals = 0;
    int auth_good = on_topic(top_auth, &auth_portals);
    int hub_good = on_topic(top_hubs, &hub_portals);
    std::printf("%s,%d,%d,%d,%d\n", name, auth_good, auth_portals, hub_good,
                hub_portals);
  };

  Note("ablation: distillation enhancements of section 2.2.2 "
       "(top-20 membership, ground truth)");
  Note("crawl: ", session->crawler().visits().size(), " pages; links: ",
       session->db().num_links());
  std::printf("variant,auth_on_topic,auth_background,hub_on_topic,"
              "hub_background\n");
  evaluate("paper (weights + rho + nepotism)", true, 0.2, true);
  evaluate("no edge weights", false, 0.2, true);
  evaluate("no rho filter", true, 0.0, true);
  evaluate("no nepotism filter", true, 0.2, false);
  evaluate("plain HITS (none)", false, 0.0, false);
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
