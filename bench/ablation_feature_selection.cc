// Ablation: feature selection (§2.1.1).
//
// "Of all the terms in the universe, a subset F(c0) is selected...
// Because training data is limited and noisy, accuracy may in fact be
// reduced by including more terms." We sweep the per-node feature budget
// for both ranking criteria (mutual information, Fisher's discriminant)
// with scarce, noisy training data and measure held-out leaf accuracy.
#include <cstdio>

#include "bench/bench_util.h"
#include "classify/hierarchical_classifier.h"
#include "classify/trainer.h"
#include "util/logging.h"

namespace focus::bench {
namespace {

constexpr int kTrainDocsPerLeaf = 4;  // scarce, as the paper warns
constexpr int kTestDocsPerLeaf = 20;

int Run() {
  taxonomy::Taxonomy tax = MakeWideTaxonomy(4, 8);
  SyntheticTextOptions text_options;
  text_options.tokens_per_doc = 70;     // short pages
  text_options.leaf_fraction = 0.18;    // weak signal
  text_options.category_fraction = 0.07;
  text_options.shared_vocab = 20000;    // lots of noise terms
  text_options.zipf_exponent = 0.5;     // noise spread over many rare terms
  SyntheticText text(&tax, text_options);
  Rng rng(83);

  auto training = text.MakeTrainingSet(kTrainDocsPerLeaf, &rng);
  auto leaves = tax.LeavesUnder(taxonomy::kRootCid);
  std::vector<std::pair<taxonomy::Cid, text::TermVector>> held_out;
  for (taxonomy::Cid leaf : leaves) {
    for (int i = 0; i < kTestDocsPerLeaf; ++i) {
      held_out.emplace_back(leaf, text.MakeDoc(leaf, &rng));
    }
  }

  Note("ablation: feature budget vs held-out accuracy (", tax.num_topics(),
       " topics, ", kTrainDocsPerLeaf, " noisy train docs/leaf)");
  std::printf("features_per_node,accuracy_mutual_information,"
              "accuracy_fisher\n");

  for (int budget : {5, 15, 40, 100, 300, 1000, 100000}) {
    double accuracy[2];
    for (int which = 0; which < 2; ++which) {
      classify::TrainerOptions options;
      options.max_features_per_node = budget;
      options.min_document_frequency = 1;
      options.feature_selection =
          which == 0 ? classify::FeatureSelection::kMutualInformation
                     : classify::FeatureSelection::kFisher;
      classify::Trainer trainer(options);
      auto model = trainer.Train(tax, training);
      FOCUS_CHECK(model.ok(), model.status().ToString());
      classify::HierarchicalClassifier clf(&tax, &model.value());
      int correct = 0;
      for (const auto& [leaf, doc] : held_out) {
        correct += clf.Classify(doc).BestLeaf(tax) == leaf;
      }
      accuracy[which] = static_cast<double>(correct) / held_out.size();
    }
    std::printf("%d,%.3f,%.3f\n", budget, accuracy[0], accuracy[1]);
  }
  return 0;
}

}  // namespace
}  // namespace focus::bench

int main() {
  focus::SetLogLevel(focus::LogLevel::kWarning);
  return focus::bench::Run();
}
