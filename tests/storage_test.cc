#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "util/string_util.h"

namespace focus::storage {
namespace {

TEST(MemDiskManagerTest, AllocateReadWrite) {
  MemDiskManager disk;
  auto id1 = disk.AllocatePage();
  ASSERT_TRUE(id1.ok());
  auto id2 = disk.AllocatePage();
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(id1.value(), id2.value());
  EXPECT_EQ(disk.NumPages(), 2u);

  Page out;
  ASSERT_TRUE(disk.ReadPage(id1.value(), out.data).ok());
  for (uint32_t i = 0; i < kPageSize; ++i) EXPECT_EQ(out.data[i], 0);

  Page in;
  in.Zero();
  in.Write<uint64_t>(100, 0xdeadbeefULL);
  ASSERT_TRUE(disk.WritePage(id2.value(), in.data).ok());
  ASSERT_TRUE(disk.ReadPage(id2.value(), out.data).ok());
  EXPECT_EQ(out.Read<uint64_t>(100), 0xdeadbeefULL);
}

TEST(MemDiskManagerTest, OutOfRangeRejected) {
  MemDiskManager disk;
  Page p;
  EXPECT_EQ(disk.ReadPage(0, p.data).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.WritePage(5, p.data).code(), StatusCode::kOutOfRange);
}

TEST(FileDiskManagerTest, RoundTrip) {
  std::string path = testing::TempDir() + "/focus_disk_test.db";
  auto disk_or = FileDiskManager::Open(path);
  ASSERT_TRUE(disk_or.ok()) << disk_or.status();
  auto& disk = *disk_or.value();
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  Page in;
  in.Zero();
  in.Write<uint32_t>(0, 1234);
  ASSERT_TRUE(disk.WritePage(id.value(), in.data).ok());
  Page out;
  ASSERT_TRUE(disk.ReadPage(id.value(), out.data).ok());
  EXPECT_EQ(out.Read<uint32_t>(0), 1234u);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().writes, 1u);
  std::remove(path.c_str());
}

TEST(BufferPoolTest, HitAfterMiss) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  PageId id;
  auto page = pool.NewPage(&id);
  ASSERT_TRUE(page.ok());
  page.value()->Write<uint32_t>(0, 77);
  pool.UnpinPage(id, true);

  auto again = pool.FetchPage(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->Read<uint32_t>(0), 77u);
  pool.UnpinPage(id, false);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 12; ++i) {
    PageId id;
    auto page = pool.NewPage(&id);
    ASSERT_TRUE(page.ok());
    page.value()->Write<int>(0, i * 11);
    pool.UnpinPage(id, true);
    ids.push_back(id);
  }
  // Early pages were evicted; their contents must survive.
  for (int i = 0; i < 12; ++i) {
    auto page = pool.FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page.value()->Read<int>(0), i * 11);
    pool.UnpinPage(ids[i], false);
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);
  std::vector<PageId> ids(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.NewPage(&ids[i]).ok());
  }
  PageId extra;
  auto r = pool.NewPage(&extra);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  for (int i = 0; i < 4; ++i) pool.UnpinPage(ids[i], false);
}

TEST(BufferPoolTest, LruEvictsColdestPage) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);
  std::vector<PageId> ids(5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.NewPage(&ids[i]).ok());
    pool.UnpinPage(ids[i], true);
  }
  // Touch page 0 so page 1 becomes the LRU victim.
  ASSERT_TRUE(pool.FetchPage(ids[0]).ok());
  pool.UnpinPage(ids[0], false);
  ASSERT_TRUE(pool.NewPage(&ids[4]).ok());
  pool.UnpinPage(ids[4], true);

  pool.ResetStats();
  ASSERT_TRUE(pool.FetchPage(ids[0]).ok());  // still resident
  pool.UnpinPage(ids[0], false);
  EXPECT_EQ(pool.stats().hits, 1u);
  ASSERT_TRUE(pool.FetchPage(ids[1]).ok());  // was evicted
  pool.UnpinPage(ids[1], false);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, EvictAllFlushesAndEmpties) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  PageId id;
  auto page = pool.NewPage(&id);
  ASSERT_TRUE(page.ok());
  page.value()->Write<int>(0, 5);
  pool.UnpinPage(id, true);
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();
  auto again = pool.FetchPage(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->Read<int>(0), 5);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.UnpinPage(id, false);
}

TEST(BufferPoolTest, StatsDiff) {
  BufferPool::Stats a, b;
  a.fetches = 10;
  a.misses = 4;
  b.fetches = 3;
  b.misses = 1;
  auto d = a - b;
  EXPECT_EQ(d.fetches, 7u);
  EXPECT_EQ(d.misses, 3u);
}

class HeapFileTest : public testing::Test {
 protected:
  HeapFileTest() : pool_(&disk_, 16) {}
  MemDiskManager disk_;
  BufferPool pool_;
};

TEST_F(HeapFileTest, InsertAndGet) {
  auto file_or = HeapFile::Create(&pool_);
  ASSERT_TRUE(file_or.ok());
  HeapFile file = file_or.TakeValue();
  auto rid = file.Insert("hello world");
  ASSERT_TRUE(rid.ok());
  std::string out;
  ASSERT_TRUE(file.Get(rid.value(), &out).ok());
  EXPECT_EQ(out, "hello world");
  EXPECT_EQ(file.num_records(), 1u);
}

TEST_F(HeapFileTest, ManyRecordsSpanPages) {
  auto file_or = HeapFile::Create(&pool_);
  ASSERT_TRUE(file_or.ok());
  HeapFile file = file_or.TakeValue();
  std::vector<Rid> rids;
  for (int i = 0; i < 2000; ++i) {
    auto rid = file.Insert(StrCat("record-", i, "-padding-padding"));
    ASSERT_TRUE(rid.ok()) << rid.status();
    rids.push_back(rid.value());
  }
  EXPECT_EQ(file.num_records(), 2000u);
  std::string out;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(file.Get(rids[i], &out).ok());
    EXPECT_EQ(out, StrCat("record-", i, "-padding-padding"));
  }
  // Spot-check that multiple pages were used.
  EXPECT_GT(disk_.NumPages(), 5u);
}

TEST_F(HeapFileTest, UpdateInPlace) {
  auto file_or = HeapFile::Create(&pool_);
  ASSERT_TRUE(file_or.ok());
  HeapFile file = file_or.TakeValue();
  auto rid = file.Insert("AAAA");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(file.Update(rid.value(), "BBBB").ok());
  std::string out;
  ASSERT_TRUE(file.Get(rid.value(), &out).ok());
  EXPECT_EQ(out, "BBBB");
  // Size-changing updates are rejected.
  EXPECT_EQ(file.Update(rid.value(), "CCC").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HeapFileTest, DeleteTombstones) {
  auto file_or = HeapFile::Create(&pool_);
  ASSERT_TRUE(file_or.ok());
  HeapFile file = file_or.TakeValue();
  auto r1 = file.Insert("one");
  auto r2 = file.Insert("two");
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_TRUE(file.Delete(r1.value()).ok());
  std::string out;
  EXPECT_EQ(file.Get(r1.value(), &out).code(), StatusCode::kNotFound);
  EXPECT_TRUE(file.Get(r2.value(), &out).ok());
  EXPECT_EQ(file.num_records(), 1u);
  EXPECT_EQ(file.Delete(r1.value()).code(), StatusCode::kNotFound);
}

TEST_F(HeapFileTest, ScanVisitsLiveRecordsInOrder) {
  auto file_or = HeapFile::Create(&pool_);
  ASSERT_TRUE(file_or.ok());
  HeapFile file = file_or.TakeValue();
  std::vector<Rid> rids;
  for (int i = 0; i < 500; ++i) {
    auto rid = file.Insert(StrCat("rec", i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  for (int i = 0; i < 500; i += 3) {
    ASSERT_TRUE(file.Delete(rids[i]).ok());
  }
  auto it = file.Scan();
  Rid rid;
  std::string rec;
  int count = 0, expected_i = 0;
  while (it.Next(&rid, &rec)) {
    while (expected_i % 3 == 0) ++expected_i;
    EXPECT_EQ(rec, StrCat("rec", expected_i));
    ++expected_i;
    ++count;
  }
  EXPECT_TRUE(it.status().ok());
  EXPECT_EQ(count, 500 - 167);
}

TEST_F(HeapFileTest, OversizeRecordRejected) {
  auto file_or = HeapFile::Create(&pool_);
  ASSERT_TRUE(file_or.ok());
  HeapFile file = file_or.TakeValue();
  std::string big(kPageSize, 'x');
  EXPECT_EQ(file.Insert(big).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(HeapFileTest, RidPackUnpackRoundTrip) {
  Rid r{12345, 678};
  Rid s = Rid::Unpack(r.Pack());
  EXPECT_EQ(r, s);
}

}  // namespace
}  // namespace focus::storage
