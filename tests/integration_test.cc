// End-to-end tests of the full Focus pipeline: train -> crawl -> distill,
// asserting the paper's qualitative claims at reduced scale.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "crawl/monitor.h"
#include "util/hash.h"

namespace focus::core {
namespace {

using crawl::CrawlerOptions;
using crawl::ExpansionRule;
using crawl::PriorityPolicy;
using taxonomy::Cid;
using taxonomy::Taxonomy;

FocusOptions SmallOptions(uint64_t seed = 4) {
  FocusOptions options;
  options.seed = seed;
  options.web.seed = seed;
  options.web.pages_per_topic = 600;
  options.web.background_pages = 60000;
  options.web.background_servers = 1500;
  options.examples_per_topic = 20;
  options.trainer.max_features_per_node = 300;
  return options;
}

std::unique_ptr<FocusSystem> MakeSystem(uint64_t seed = 4) {
  Taxonomy tax = BuildSampleTaxonomy();
  Cid cycling = tax.FindByName("cycling").value();
  Cid first_aid = tax.FindByName("first_aid").value();
  auto system = FocusSystem::Create(
      std::move(tax), SmallOptions(seed),
      {webgraph::TopicAffinity{cycling, first_aid, 0.08}});
  EXPECT_TRUE(system.ok()) << system.status();
  return system.TakeValue();
}

TEST(FocusSystemTest, TrainBeforeCrawlEnforced) {
  auto system = MakeSystem();
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  CrawlerOptions copts;
  auto session = system->NewCrawl({"http://x/"}, copts);
  EXPECT_EQ(session.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(system->MarkGood("no_such_topic").ok());
}

TEST(FocusSystemTest, SoftFocusBeatsUnfocusedHarvest) {
  // A larger community for this test so the focused crawler cannot simply
  // exhaust it within the budget (the paper's topics were inexhaustible at
  // its crawl scale).
  Taxonomy big_tax = BuildSampleTaxonomy();
  FocusOptions big = SmallOptions(4);
  big.web.pages_per_topic = 1200;
  auto system_or = FocusSystem::Create(std::move(big_tax), big, {});
  ASSERT_TRUE(system_or.ok());
  auto system = system_or.TakeValue();
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 15);

  CrawlerOptions focused;
  focused.max_fetches = 1200;
  focused.expansion = ExpansionRule::kSoftFocus;
  focused.distill_every = 300;  // the full system: distiller runs too
  auto focused_session = system->NewCrawl(seeds, focused);
  ASSERT_TRUE(focused_session.ok());
  ASSERT_TRUE(focused_session.value()->crawler().Crawl().ok());

  CrawlerOptions unfocused;
  unfocused.max_fetches = 2400;  // BFS needs more runway to get fully lost
  unfocused.expansion = ExpansionRule::kUnfocused;
  unfocused.policy = PriorityPolicy::kBreadthFirst;
  auto unfocused_session = system->NewCrawl(seeds, unfocused);
  ASSERT_TRUE(unfocused_session.ok());
  ASSERT_TRUE(unfocused_session.value()->crawler().Crawl().ok());

  auto avg_rel = [](const std::vector<crawl::Visit>& visits, size_t skip) {
    double sum = 0;
    size_t n = 0;
    for (size_t i = skip; i < visits.size(); ++i) {
      sum += visits[i].relevance;
      ++n;
    }
    return n == 0 ? 0.0 : sum / n;
  };
  // Compare sustained harvest well past the seed neighbourhood (Figure 5:
  // the standard crawler is "completely lost within the next hundred page
  // fetches" while the focused crawler "keeps up a healthy pace").
  double focused_harvest =
      avg_rel(focused_session.value()->crawler().visits(), 600);
  double unfocused_harvest =
      avg_rel(unfocused_session.value()->crawler().visits(), 1200);
  EXPECT_GT(focused_harvest, 0.2);
  EXPECT_LT(unfocused_harvest, 0.12);
  EXPECT_GT(focused_harvest, 2 * unfocused_harvest);
}

TEST(FocusSystemTest, FocusedCrawlStaysOnTrueTopic) {
  auto system = MakeSystem(9);
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 15);
  CrawlerOptions copts;
  copts.max_fetches = 500;
  auto session = system->NewCrawl(seeds, copts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->crawler().Crawl().ok());
  // Ground truth check (the crawler never sees it): most visited pages
  // belong to the cycling community.
  int on_topic = 0, total = 0;
  for (const auto& visit : session.value()->crawler().visits()) {
    auto idx = system->web().PageIndexByUrl(visit.url);
    ASSERT_TRUE(idx.ok());
    on_topic += (system->web().page(idx.value()).topic == cycling);
    ++total;
  }
  EXPECT_GT(total, 400);
  EXPECT_GT(static_cast<double>(on_topic) / total, 0.25);
}

TEST(FocusSystemTest, HardFocusCanStagnate) {
  // §2.1.2: hard-focus crawls may stop because the frontier is judged
  // unsuitable, while soft focus on the same inputs keeps crawling.
  auto system = MakeSystem(12);
  ASSERT_TRUE(system->MarkGood("mutual_funds").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid funds = system->tax().FindByName("mutual_funds").value();
  auto seeds = system->web().KeywordSeeds(funds, 5);

  CrawlerOptions hard;
  hard.max_fetches = 8000;  // far beyond what stagnation will allow
  hard.expansion = ExpansionRule::kHardFocus;
  auto hard_session = system->NewCrawl(seeds, hard);
  ASSERT_TRUE(hard_session.ok());
  ASSERT_TRUE(hard_session.value()->crawler().Crawl().ok());

  CrawlerOptions soft = hard;
  soft.expansion = ExpansionRule::kSoftFocus;
  auto soft_session = system->NewCrawl(seeds, soft);
  ASSERT_TRUE(soft_session.ok());
  ASSERT_TRUE(soft_session.value()->crawler().Crawl().ok());

  // Hard focus visits at most the community it accepts; soft focus keeps
  // going (it can wade through mildly relevant pages).
  EXPECT_GE(soft_session.value()->crawler().visits().size(),
            hard_session.value()->crawler().visits().size());
  EXPECT_TRUE(hard_session.value()->crawler().stats().stagnated);
}

TEST(FocusSystemTest, CoverageFromDisjointSeeds) {
  // §3.5: a test crawl from a disjoint start set re-discovers most of the
  // reference crawl's relevant URLs and servers.
  auto system = MakeSystem(21);
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  auto s1 = system->web().KeywordSeeds(cycling, 10, 0);
  auto s2 = system->web().KeywordSeeds(cycling, 10, 10);

  CrawlerOptions copts;
  copts.max_fetches = 1200;
  copts.distill_every = 300;  // hub boosts pull crawls into the same core
  auto ref = system->NewCrawl(s1, copts);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(ref.value()->crawler().Crawl().ok());
  auto test = system->NewCrawl(s2, copts);
  ASSERT_TRUE(test.ok());
  ASSERT_TRUE(test.value()->crawler().Crawl().ok());

  auto sets = crawl::RelevantReferenceSets(ref.value()->crawler().visits());
  ASSERT_GT(sets.oids.size(), 50u);
  auto coverage = crawl::Coverage(test.value()->crawler().visits(),
                                  sets.oids, sets.servers);
  EXPECT_GT(coverage.url_fraction.back(), 0.4);
  EXPECT_GT(coverage.server_fraction.back(), 0.7);
}

TEST(FocusSystemTest, DistillationSurfacesTrueHubs) {
  auto system = MakeSystem(33);
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 15);
  CrawlerOptions copts;
  copts.max_fetches = 600;
  auto session = system->NewCrawl(seeds, copts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->crawler().Crawl().ok());

  auto result =
      session.value()->Distill({.iterations = 15, .rho = 0.2}, 15);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result.value().hubs.size(), 15u);
  // Top hubs must be on-topic pages, and most should be ground-truth hubs.
  int true_hubs = 0, on_topic = 0;
  for (const auto& page : result.value().hubs) {
    auto idx = system->web().PageIndexByUrl(page.url);
    ASSERT_TRUE(idx.ok()) << page.url;
    on_topic += (system->web().page(idx.value()).topic == cycling);
    true_hubs += system->web().page(idx.value()).is_hub;
  }
  EXPECT_GE(on_topic, 13);
  EXPECT_GE(true_hubs, 8);
  // Authorities are on-topic too.
  int auth_on_topic = 0;
  for (const auto& page : result.value().authorities) {
    auto idx = system->web().PageIndexByUrl(page.url);
    if (idx.ok() &&
        system->web().page(idx.value()).topic == cycling) {
      ++auth_on_topic;
    }
  }
  EXPECT_GE(auth_on_topic, 12);
}

TEST(FocusSystemTest, PeriodicDistillationBoostRuns) {
  auto system = MakeSystem(44);
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 10);
  CrawlerOptions copts;
  copts.max_fetches = 300;
  copts.distill_every = 100;
  copts.distill_iterations = 3;
  auto session = system->NewCrawl(seeds, copts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->crawler().Crawl().ok());
  EXPECT_GE(session.value()->crawler().stats().distill_rounds, 2u);
  EXPECT_EQ(session.value()->crawler().visits().size(), 300u);
}

TEST(FocusSystemTest, MultiThreadedCrawlIsSafeAndComplete) {
  auto system = MakeSystem(55);
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 10);
  CrawlerOptions copts;
  copts.max_fetches = 300;
  copts.num_threads = 8;
  auto session = system->NewCrawl(seeds, copts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->crawler().Crawl().ok());
  const auto& visits = session.value()->crawler().visits();
  EXPECT_EQ(visits.size(), 300u);
  // No URL visited twice.
  std::unordered_set<uint64_t> oids;
  for (const auto& v : visits) {
    EXPECT_TRUE(oids.insert(v.oid).second) << v.url;
  }
}

TEST(FocusSystemTest, MonitoringQueriesRunOnLiveCrawl) {
  auto system = MakeSystem(66);
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 10);
  CrawlerOptions copts;
  copts.max_fetches = 250;
  auto session = system->NewCrawl(seeds, copts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->crawler().Crawl().ok());

  auto census = crawl::ClassCensus(session.value()->db(), system->tax());
  ASSERT_TRUE(census.ok());
  EXPECT_FALSE(census.value().empty());
  int64_t total = 0;
  for (const auto& row : census.value()) total += row.count;
  EXPECT_EQ(total, 250);

  auto by_minute = crawl::HarvestByMinute(session.value()->db());
  ASSERT_TRUE(by_minute.ok());
  EXPECT_FALSE(by_minute.value().empty());
  int64_t pages = 0;
  for (const auto& m : by_minute.value()) pages += m.pages;
  EXPECT_EQ(pages, 250);
}

}  // namespace
}  // namespace focus::core
