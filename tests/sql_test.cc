#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "sql/catalog.h"
#include "sql/exec/aggregate.h"
#include "sql/exec/basic.h"
#include "sql/exec/join.h"
#include "sql/exec/operator.h"
#include "sql/exec/scan.h"
#include "sql/exec/sort.h"
#include "sql/schema.h"
#include "sql/table.h"
#include "sql/value.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::sql {
namespace {

TEST(ValueTest, ConstructAndRead) {
  EXPECT_EQ(Value::Int32(7).AsInt32(), 7);
  EXPECT_EQ(Value::Int64(1LL << 40).AsInt64(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("abc").AsString(), "abc");
  EXPECT_TRUE(Value::Null(TypeId::kDouble).is_null());
  EXPECT_FALSE(Value::Int32(0).is_null());
}

TEST(ValueTest, CompareOrdersValues) {
  EXPECT_LT(Value::Int32(1).Compare(Value::Int32(2)), 0);
  EXPECT_EQ(Value::Int64(5).Compare(Value::Int64(5)), 0);
  EXPECT_GT(Value::Double(2.0).Compare(Value::Double(-1.0)), 0);
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  // NULL sorts first.
  EXPECT_LT(Value::Null(TypeId::kInt32).Compare(Value::Int32(-100)), 0);
}

TEST(ValueTest, SerializeRoundTrip) {
  std::vector<Value> values = {Value::Int32(-42), Value::Int64(1LL << 50),
                               Value::Double(3.14159),
                               Value::Str("http://example.com/page")};
  for (const auto& v : values) {
    std::string buf;
    v.SerializeTo(&buf);
    size_t offset = 0;
    auto back = Value::Deserialize(v.type(), buf, &offset);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().Compare(v), 0);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(ValueTest, DeserializeTruncatedFails) {
  std::string buf = "\x01\x02";
  size_t offset = 0;
  EXPECT_FALSE(Value::Deserialize(TypeId::kInt64, buf, &offset).ok());
}

TEST(ValueTest, HashConsistency) {
  EXPECT_EQ(Value::Int32(9).Hash(), Value::Int32(9).Hash());
  EXPECT_NE(Value::Int32(9).Hash(), Value::Int32(10).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
}

TEST(SchemaTest, ColumnLookupAndConcat) {
  Schema a({{"oid", TypeId::kInt64}, {"score", TypeId::kDouble}});
  EXPECT_EQ(a.ColumnIndex("score"), 1);
  EXPECT_EQ(a.ColumnIndex("missing"), -1);
  Schema b({{"url", TypeId::kString}});
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_columns(), 3);
  EXPECT_EQ(c.column(2).name, "url");
}

TEST(TupleTest, SerializeRoundTrip) {
  Schema schema({{"did", TypeId::kInt64},
                 {"tid", TypeId::kInt32},
                 {"freq", TypeId::kInt32},
                 {"url", TypeId::kString}});
  Tuple t({Value::Int64(99), Value::Int32(12345), Value::Int32(3),
           Value::Str("http://a/b")});
  std::string bytes = t.Serialize(schema);
  auto back = Tuple::Deserialize(schema, bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Get(0).AsInt64(), 99);
  EXPECT_EQ(back.value().Get(3).AsString(), "http://a/b");
}

class SqlTest : public testing::Test {
 protected:
  SqlTest() : pool_(&disk_, 256), catalog_(&pool_) {}

  Table* MakeLinkTable() {
    auto t = catalog_.CreateTable(
        "LINK",
        Schema({{"oid_src", TypeId::kInt64},
                {"sid_src", TypeId::kInt32},
                {"oid_dst", TypeId::kInt64},
                {"sid_dst", TypeId::kInt32},
                {"wgt_fwd", TypeId::kDouble},
                {"wgt_rev", TypeId::kDouble}}),
        {IndexSpec{"by_src", {0}, {}}, IndexSpec{"by_dst", {2}, {}}});
    EXPECT_TRUE(t.ok()) << t.status();
    return t.value();
  }

  storage::MemDiskManager disk_;
  storage::BufferPool pool_;
  Catalog catalog_;
};

TEST_F(SqlTest, CreateInsertGet) {
  Table* link = MakeLinkTable();
  Tuple row({Value::Int64(111), Value::Int32(1), Value::Int64(222),
             Value::Int32(2), Value::Double(0.5), Value::Double(0.9)});
  auto rid = link->Insert(row);
  ASSERT_TRUE(rid.ok());
  Tuple out;
  ASSERT_TRUE(link->Get(rid.value(), &out).ok());
  EXPECT_EQ(out.Get(0).AsInt64(), 111);
  EXPECT_DOUBLE_EQ(out.Get(5).AsDouble(), 0.9);
  EXPECT_EQ(link->num_rows(), 1u);
}

TEST_F(SqlTest, ArityMismatchRejected) {
  Table* link = MakeLinkTable();
  EXPECT_FALSE(link->Insert(Tuple({Value::Int64(1)})).ok());
}

TEST_F(SqlTest, IndexLookupFindsAllDuplicates) {
  Table* link = MakeLinkTable();
  for (int i = 0; i < 50; ++i) {
    Tuple row({Value::Int64(i % 5), Value::Int32(i), Value::Int64(1000 + i),
               Value::Int32(0), Value::Double(0), Value::Double(0)});
    ASSERT_TRUE(link->Insert(row).ok());
  }
  std::vector<storage::Rid> rids;
  ASSERT_TRUE(link->IndexLookup(link->IndexId("by_src"),
                                {Value::Int64(3)}, &rids)
                  .ok());
  EXPECT_EQ(rids.size(), 10u);
  for (const auto& rid : rids) {
    Tuple t;
    ASSERT_TRUE(link->Get(rid, &t).ok());
    EXPECT_EQ(t.Get(0).AsInt64(), 3);
  }
}

TEST_F(SqlTest, UpdateMaintainsIndexes) {
  Table* link = MakeLinkTable();
  Tuple row({Value::Int64(7), Value::Int32(0), Value::Int64(8),
             Value::Int32(0), Value::Double(0), Value::Double(0)});
  auto rid = link->Insert(row);
  ASSERT_TRUE(rid.ok());
  Tuple updated({Value::Int64(7), Value::Int32(0), Value::Int64(9),
                 Value::Int32(0), Value::Double(1), Value::Double(0)});
  ASSERT_TRUE(link->Update(rid.value(), updated).ok());
  std::vector<storage::Rid> rids;
  ASSERT_TRUE(
      link->IndexLookup(link->IndexId("by_dst"), {Value::Int64(8)}, &rids)
          .ok());
  EXPECT_TRUE(rids.empty());
  ASSERT_TRUE(
      link->IndexLookup(link->IndexId("by_dst"), {Value::Int64(9)}, &rids)
          .ok());
  EXPECT_EQ(rids.size(), 1u);
}

TEST_F(SqlTest, DeleteRemovesRowAndIndexEntries) {
  Table* link = MakeLinkTable();
  Tuple row({Value::Int64(7), Value::Int32(0), Value::Int64(8),
             Value::Int32(0), Value::Double(0), Value::Double(0)});
  auto rid = link->Insert(row);
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(link->Delete(rid.value()).ok());
  EXPECT_EQ(link->num_rows(), 0u);
  std::vector<storage::Rid> rids;
  ASSERT_TRUE(
      link->IndexLookup(link->IndexId("by_src"), {Value::Int64(7)}, &rids)
          .ok());
  EXPECT_TRUE(rids.empty());
}

TEST_F(SqlTest, ClearEmptiesTable) {
  Table* link = MakeLinkTable();
  for (int i = 0; i < 20; ++i) {
    Tuple row({Value::Int64(i), Value::Int32(0), Value::Int64(i),
               Value::Int32(0), Value::Double(0), Value::Double(0)});
    ASSERT_TRUE(link->Insert(row).ok());
  }
  ASSERT_TRUE(link->Clear().ok());
  EXPECT_EQ(link->num_rows(), 0u);
  auto rows = Collect(std::make_unique<SeqScan>(link).get());
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows.value().empty());
}

TEST_F(SqlTest, CompositeKeyPacking) {
  // A STAT-style table keyed on (kcid:16, tid:32).
  auto t = catalog_.CreateTable(
      "STAT",
      Schema({{"kcid", TypeId::kInt32},
              {"tid", TypeId::kInt32},
              {"logtheta", TypeId::kDouble}}),
      {IndexSpec{"by_kcid_tid", {0, 1}, {16, 32}}});
  ASSERT_TRUE(t.ok()) << t.status();
  Table* stat = t.value();
  for (int kcid = 0; kcid < 4; ++kcid) {
    for (int tid = 0; tid < 100; ++tid) {
      ASSERT_TRUE(stat->Insert(Tuple({Value::Int32(kcid), Value::Int32(tid),
                                      Value::Double(kcid + tid)}))
                      .ok());
    }
  }
  std::vector<storage::Rid> rids;
  ASSERT_TRUE(stat->IndexLookup(0, {Value::Int32(2), Value::Int32(55)}, &rids)
                  .ok());
  ASSERT_EQ(rids.size(), 1u);
  Tuple row;
  ASSERT_TRUE(stat->Get(rids[0], &row).ok());
  EXPECT_DOUBLE_EQ(row.Get(2).AsDouble(), 57.0);
  // A key value that does not fit the declared bit width is rejected.
  auto packed = stat->PackKey(0, {Value::Int32(1 << 17), Value::Int32(0)});
  EXPECT_FALSE(packed.ok());
}

TEST_F(SqlTest, CatalogDuplicateAndDrop) {
  MakeLinkTable();
  auto dup = catalog_.CreateTable("LINK", Schema({{"x", TypeId::kInt32}}));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_NE(catalog_.GetTable("LINK"), nullptr);
  ASSERT_TRUE(catalog_.DropTable("LINK").ok());
  EXPECT_EQ(catalog_.GetTable("LINK"), nullptr);
  EXPECT_EQ(catalog_.DropTable("LINK").code(), StatusCode::kNotFound);
}

// ---------- Executor ----------

OperatorPtr SourceOf(Schema schema, std::vector<Tuple> rows) {
  return std::make_unique<MaterializedSource>(std::move(schema),
                                              std::move(rows));
}

Schema TwoIntSchema() {
  return Schema({{"k", TypeId::kInt32}, {"v", TypeId::kInt32}});
}

std::vector<Tuple> IntRows(std::vector<std::pair<int, int>> kv) {
  std::vector<Tuple> rows;
  rows.reserve(kv.size());
  for (auto [k, v] : kv) {
    rows.push_back(Tuple({Value::Int32(k), Value::Int32(v)}));
  }
  return rows;
}

TEST_F(SqlTest, SeqScanReadsAllRows) {
  Table* link = MakeLinkTable();
  for (int i = 0; i < 300; ++i) {
    Tuple row({Value::Int64(i), Value::Int32(i % 7), Value::Int64(2 * i),
               Value::Int32(0), Value::Double(i * 0.1), Value::Double(0)});
    ASSERT_TRUE(link->Insert(row).ok());
  }
  SeqScan scan(link);
  auto rows = Collect(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 300u);
}

TEST_F(SqlTest, FilterAndProject) {
  auto src = SourceOf(TwoIntSchema(), IntRows({{1, 10}, {2, 20}, {3, 30}}));
  auto filtered = std::make_unique<Filter>(
      std::move(src),
      [](const Tuple& t) { return t.Get(0).AsInt32() >= 2; });
  Project proj(std::move(filtered),
               {ProjExpr{"doubled", TypeId::kInt32, [](const Tuple& t) {
                           return Value::Int32(t.Get(1).AsInt32() * 2);
                         }}});
  auto rows = Collect(&proj);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0].Get(0).AsInt32(), 40);
  EXPECT_EQ(rows.value()[1].Get(0).AsInt32(), 60);
}

TEST_F(SqlTest, LimitStopsEarly) {
  auto src = SourceOf(TwoIntSchema(),
                      IntRows({{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  Limit limit(std::move(src), 2);
  auto rows = Collect(&limit);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
}

TEST_F(SqlTest, SortAscendingAndDescending) {
  auto rows_in = IntRows({{3, 1}, {1, 2}, {2, 3}, {1, 1}});
  {
    Sort sort(SourceOf(TwoIntSchema(), rows_in), {{0, false}, {1, false}});
    auto rows = Collect(&sort);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows.value()[0].Get(0).AsInt32(), 1);
    EXPECT_EQ(rows.value()[0].Get(1).AsInt32(), 1);
    EXPECT_EQ(rows.value()[3].Get(0).AsInt32(), 3);
  }
  {
    Sort sort(SourceOf(TwoIntSchema(), rows_in), {{0, true}});
    auto rows = Collect(&sort);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows.value()[0].Get(0).AsInt32(), 3);
  }
}

TEST_F(SqlTest, MergeJoinInner) {
  auto left = SourceOf(TwoIntSchema(),
                       IntRows({{1, 10}, {2, 20}, {2, 21}, {4, 40}}));
  auto right = SourceOf(TwoIntSchema(),
                        IntRows({{2, 200}, {2, 201}, {3, 300}, {4, 400}}));
  MergeJoin join(std::move(left), std::move(right), {0}, {0});
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  // key 2: 2x2 pairs; key 4: 1 pair.
  EXPECT_EQ(rows.value().size(), 5u);
  for (const auto& r : rows.value()) {
    EXPECT_EQ(r.Get(0).AsInt32(), r.Get(2).AsInt32());
  }
}

TEST_F(SqlTest, MergeJoinLeftOuterPadsNulls) {
  auto left = SourceOf(TwoIntSchema(), IntRows({{1, 10}, {2, 20}, {3, 30}}));
  auto right = SourceOf(TwoIntSchema(), IntRows({{2, 200}}));
  MergeJoin join(std::move(left), std::move(right), {0}, {0},
                 /*left_outer=*/true);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_TRUE(rows.value()[0].Get(2).is_null());   // key 1 unmatched
  EXPECT_FALSE(rows.value()[1].Get(2).is_null());  // key 2 matched
  EXPECT_TRUE(rows.value()[2].Get(2).is_null());   // key 3 unmatched
}

TEST_F(SqlTest, HashJoinMatchesMergeJoin) {
  auto rows_l = IntRows({{5, 1}, {1, 2}, {3, 3}, {3, 4}, {9, 5}});
  auto rows_r = IntRows({{3, 10}, {3, 11}, {5, 12}, {7, 13}});
  MergeJoin mj(std::make_unique<Sort>(SourceOf(TwoIntSchema(), rows_l),
                                      std::vector<SortKey>{{0, false}}),
               std::make_unique<Sort>(SourceOf(TwoIntSchema(), rows_r),
                                      std::vector<SortKey>{{0, false}}),
               {0}, {0});
  HashJoin hj(SourceOf(TwoIntSchema(), rows_l),
              SourceOf(TwoIntSchema(), rows_r), {0}, {0});
  auto m = Collect(&mj);
  auto h = Collect(&hj);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(h.ok());
  auto canon = [](std::vector<Tuple> rows) {
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (auto& t : rows) out.push_back(t.ToString());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(canon(m.value()), canon(h.value()));
  EXPECT_EQ(m.value().size(), 5u);  // 2x2 for key 3 + 1 for key 5
}

// Property test: on random inputs, MergeJoin == HashJoin == NestedLoopJoin.
class JoinEquivalenceTest : public SqlTest,
                            public testing::WithParamInterface<int> {};

TEST_P(JoinEquivalenceTest, AllJoinsAgree) {
  Rng rng(GetParam());
  auto random_rows = [&](int n, int key_range) {
    std::vector<std::pair<int, int>> kv;
    kv.reserve(n);
    for (int i = 0; i < n; ++i) {
      kv.emplace_back(static_cast<int>(rng.Uniform(key_range)), i);
    }
    return IntRows(kv);
  };
  int n_left = 1 + static_cast<int>(rng.Uniform(120));
  int n_right = 1 + static_cast<int>(rng.Uniform(120));
  int range = 1 + static_cast<int>(rng.Uniform(30));
  auto rows_l = random_rows(n_left, range);
  auto rows_r = random_rows(n_right, range);

  MergeJoin mj(std::make_unique<Sort>(SourceOf(TwoIntSchema(), rows_l),
                                      std::vector<SortKey>{{0, false}}),
               std::make_unique<Sort>(SourceOf(TwoIntSchema(), rows_r),
                                      std::vector<SortKey>{{0, false}}),
               {0}, {0});
  HashJoin hj(SourceOf(TwoIntSchema(), rows_l),
              SourceOf(TwoIntSchema(), rows_r), {0}, {0});
  NestedLoopJoin nl(SourceOf(TwoIntSchema(), rows_l),
                    SourceOf(TwoIntSchema(), rows_r),
                    [](const Tuple& l, const Tuple& r) {
                      return l.Get(0).AsInt32() == r.Get(0).AsInt32();
                    });
  auto m = Collect(&mj);
  auto h = Collect(&hj);
  auto n = Collect(&nl);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(n.ok());
  auto canon = [](const std::vector<Tuple>& rows) {
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const auto& t : rows) out.push_back(t.ToString());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(canon(m.value()), canon(n.value()));
  EXPECT_EQ(canon(h.value()), canon(n.value()));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, JoinEquivalenceTest,
                         testing::Range(1, 21));

TEST_F(SqlTest, HashAggregateSumCountAvgMinMax) {
  auto src = SourceOf(TwoIntSchema(),
                      IntRows({{1, 10}, {1, 20}, {2, 5}, {2, 7}, {2, 9}}));
  HashAggregate agg(std::move(src), {0},
                    {AggSpec{AggKind::kSum, 1, "sum_v"},
                     AggSpec{AggKind::kCount, -1, "cnt"},
                     AggSpec{AggKind::kAvg, 1, "avg_v"},
                     AggSpec{AggKind::kMin, 1, "min_v"},
                     AggSpec{AggKind::kMax, 1, "max_v"}});
  auto rows = Collect(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  const Tuple& g1 = rows.value()[0];
  EXPECT_EQ(g1.Get(0).AsInt32(), 1);
  EXPECT_EQ(g1.Get(1).AsInt64(), 30);
  EXPECT_EQ(g1.Get(2).AsInt64(), 2);
  EXPECT_DOUBLE_EQ(g1.Get(3).AsDouble(), 15.0);
  EXPECT_EQ(g1.Get(4).AsInt32(), 10);
  EXPECT_EQ(g1.Get(5).AsInt32(), 20);
  const Tuple& g2 = rows.value()[1];
  EXPECT_EQ(g2.Get(0).AsInt32(), 2);
  EXPECT_EQ(g2.Get(1).AsInt64(), 21);
  EXPECT_EQ(g2.Get(2).AsInt64(), 3);
}

TEST_F(SqlTest, AggregateNoGroupColumns) {
  auto src = SourceOf(TwoIntSchema(), IntRows({{1, 2}, {3, 4}}));
  HashAggregate agg(std::move(src), {},
                    {AggSpec{AggKind::kSum, 1, "total"}});
  auto rows = Collect(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0].Get(0).AsInt64(), 6);
}

TEST_F(SqlTest, IndexScanEqOperator) {
  Table* link = MakeLinkTable();
  for (int i = 0; i < 30; ++i) {
    Tuple row({Value::Int64(i % 3), Value::Int32(i), Value::Int64(i),
               Value::Int32(0), Value::Double(0), Value::Double(0)});
    ASSERT_TRUE(link->Insert(row).ok());
  }
  IndexScanEq scan(link, link->IndexId("by_src"), {Value::Int64(1)});
  auto rows = Collect(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 10u);
  for (const auto& r : rows.value()) EXPECT_EQ(r.Get(0).AsInt64(), 1);
}

// Transcription of the §3.7 census query:
//   with CENSUS(kcid, cnt) as (select kcid, count(oid) from CRAWL group by
//   kcid) select kcid, cnt from CENSUS order by cnt
TEST_F(SqlTest, MonitoringCensusQueryShape) {
  auto t = catalog_.CreateTable("CRAWL",
                                Schema({{"oid", TypeId::kInt64},
                                        {"kcid", TypeId::kInt32}}));
  ASSERT_TRUE(t.ok());
  Table* crawl = t.value();
  for (int i = 0; i < 60; ++i) {
    // Class 0: 30 rows, class 1: 20, class 2: 10.
    int kcid = i < 30 ? 0 : (i < 50 ? 1 : 2);
    ASSERT_TRUE(
        crawl->Insert(Tuple({Value::Int64(i), Value::Int32(kcid)})).ok());
  }
  auto agg = std::make_unique<HashAggregate>(
      std::make_unique<SeqScan>(crawl), std::vector<int>{1},
      std::vector<AggSpec>{AggSpec{AggKind::kCount, -1, "cnt"}});
  Sort ordered(std::move(agg), {{1, false}});
  auto rows = Collect(&ordered);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[0].Get(0).AsInt32(), 2);
  EXPECT_EQ(rows.value()[0].Get(1).AsInt64(), 10);
  EXPECT_EQ(rows.value()[2].Get(0).AsInt32(), 0);
  EXPECT_EQ(rows.value()[2].Get(1).AsInt64(), 30);
}

}  // namespace
}  // namespace focus::sql
