// Vectorized-engine equivalence: every batch operator against its scalar
// oracle on randomized inputs, batch-boundary edge cases (empty input,
// exactly one batch, batch-size-1), and end-to-end scalar-vs-vectorized
// runs of the Figure 3 (BulkProbe) and Figure 4 (JoinDistiller) plans.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "classify/trainer.h"
#include "distill/distiller.h"
#include "distill/join_distiller.h"
#include "sql/catalog.h"
#include "sql/exec/aggregate.h"
#include "sql/exec/basic.h"
#include "sql/exec/batch.h"
#include "sql/exec/batch_ops.h"
#include "sql/exec/dictionary.h"
#include "sql/exec/join.h"
#include "sql/exec/operator.h"
#include "sql/exec/sort.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "taxonomy/taxonomy.h"
#include "text/document.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::sql {
namespace {

// A mixed-type random rowset: i32, i64, double, string, with NULLs in the
// string column (the only column the Figure 3/4 plans null-pad).
Schema MixedSchema() {
  return Schema({{"a", TypeId::kInt32},
                 {"b", TypeId::kInt64},
                 {"x", TypeId::kDouble},
                 {"s", TypeId::kString}});
}

std::vector<Tuple> RandomRows(Rng* rng, size_t n, int key_range = 20) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value s = rng->Bernoulli(0.15)
                  ? Value::Null(TypeId::kString)
                  : Value::Str(StrCat("s", rng->Uniform(key_range)));
    rows.push_back(
        Tuple({Value::Int32(static_cast<int32_t>(rng->Uniform(key_range))),
               Value::Int64(static_cast<int64_t>(rng->Uniform(1000))),
               Value::Double(rng->NextDouble() * 10 - 5), s}));
  }
  return rows;
}

OperatorPtr Source(const Schema& schema, std::vector<Tuple> rows) {
  return std::make_unique<MaterializedSource>(schema, std::move(rows));
}

BatchOperatorPtr BatchOf(const Schema& schema, std::vector<Tuple> rows,
                         int batch_rows) {
  return std::make_unique<Vectorize>(Source(schema, std::move(rows)),
                                     batch_rows);
}

std::vector<std::string> RowStrings(Operator* op) {
  auto rows = Collect(op);
  EXPECT_TRUE(rows.ok()) << rows.status();
  std::vector<std::string> out;
  for (const Tuple& t : rows.value()) out.push_back(t.ToString());
  return out;
}

std::vector<std::string> RowStrings(BatchOperatorPtr op) {
  Devectorize scalar(std::move(op));
  return RowStrings(&scalar);
}

// The batch sizes every equivalence case sweeps: batch-size-1, a size
// that straddles batch boundaries, exactly-one-batch, and the default.
const int kBatchSizes[] = {1, 7, 64, kDefaultBatchRows};

TEST(BatchAdapterTest, VectorizeDevectorizeRoundTripsExactly) {
  Rng rng(101);
  Schema schema = MixedSchema();
  for (size_t n : {size_t{0}, size_t{1}, size_t{64}, size_t{200}}) {
    std::vector<Tuple> rows = RandomRows(&rng, n);
    OperatorPtr oracle = Source(schema, rows);
    std::vector<std::string> expected = RowStrings(oracle.get());
    for (int bs : kBatchSizes) {
      EXPECT_EQ(RowStrings(BatchOf(schema, rows, bs)), expected)
          << "n=" << n << " batch_rows=" << bs;
    }
  }
}

TEST(BatchOperatorTest, FilterMatchesScalar) {
  Rng rng(202);
  Schema schema = MixedSchema();
  std::vector<Tuple> rows = RandomRows(&rng, 300);
  auto scalar = std::make_unique<Filter>(
      Source(schema, rows),
      [](const Tuple& t) { return t.Get(0).AsInt32() % 3 == 0; });
  std::vector<std::string> expected = RowStrings(scalar.get());
  for (int bs : kBatchSizes) {
    auto batch = std::make_unique<BatchFilter>(
        BatchOf(schema, rows, bs),
        [](const Batch& in, std::vector<int64_t>* sel) {
          const auto& a = in.col(0).i32;
          for (size_t i = 0; i < a.size(); ++i) {
            if (a[i] % 3 == 0) sel->push_back(static_cast<int64_t>(i));
          }
        });
    EXPECT_EQ(RowStrings(std::move(batch)), expected) << "batch_rows=" << bs;
  }
}

TEST(BatchOperatorTest, ProjectMatchesScalar) {
  Rng rng(303);
  Schema schema = MixedSchema();
  std::vector<Tuple> rows = RandomRows(&rng, 250);
  auto scalar = std::make_unique<Project>(
      Source(schema, rows),
      std::vector<ProjExpr>{
          ProjExpr{"a", TypeId::kInt32,
                   [](const Tuple& t) { return t.Get(0); }},
          ProjExpr{"bx", TypeId::kDouble, [](const Tuple& t) {
                     return Value::Double(t.Get(1).AsInt64() *
                                          t.Get(2).AsDouble());
                   }}});
  std::vector<std::string> expected = RowStrings(scalar.get());
  for (int bs : kBatchSizes) {
    auto batch = std::make_unique<BatchProject>(
        BatchOf(schema, rows, bs),
        std::vector<BatchExpr>{
            BatchExpr::Passthrough("a", TypeId::kInt32, 0),
            BatchExpr{"bx", TypeId::kDouble, [](const Batch& in) {
                        const auto& b = in.col(1).i64;
                        const auto& x = in.col(2).f64;
                        ColumnPtr out = NewColumn(TypeId::kDouble);
                        out->f64.reserve(b.size());
                        for (size_t i = 0; i < b.size(); ++i) {
                          out->f64.push_back(b[i] * x[i]);
                        }
                        return out;
                      }}});
    EXPECT_EQ(RowStrings(std::move(batch)), expected) << "batch_rows=" << bs;
  }
}

TEST(BatchOperatorTest, SortMatchesScalarIncludingStability) {
  Rng rng(404);
  Schema schema = MixedSchema();
  // Narrow key range -> many duplicate keys, so instability would show.
  std::vector<Tuple> rows = RandomRows(&rng, 400, /*key_range=*/5);
  std::vector<SortKey> keys{{0, false}, {2, true}};
  auto scalar = std::make_unique<Sort>(Source(schema, rows), keys);
  std::vector<std::string> expected = RowStrings(scalar.get());
  for (int bs : kBatchSizes) {
    auto batch =
        std::make_unique<BatchSort>(BatchOf(schema, rows, bs), keys, bs);
    EXPECT_EQ(RowStrings(std::move(batch)), expected) << "batch_rows=" << bs;
  }
}

// Sorted inputs with heavy key duplication for the merge-join cases.
std::vector<Tuple> SortedKeyed(Rng* rng, size_t n, int key_range,
                               double payload_scale) {
  Schema schema({{"k", TypeId::kInt32}, {"p", TypeId::kDouble}});
  std::vector<Tuple> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(
        Tuple({Value::Int32(static_cast<int32_t>(rng->Uniform(key_range))),
               Value::Double(rng->NextDouble() * payload_scale)}));
  }
  Sort sorter(Source(schema, std::move(rows)),
              std::vector<SortKey>{{0, false}});
  auto sorted = Collect(&sorter);
  EXPECT_TRUE(sorted.ok());
  return sorted.TakeValue();
}

TEST(BatchOperatorTest, MergeJoinMatchesScalarInnerAndOuter) {
  Rng rng(505);
  Schema schema({{"k", TypeId::kInt32}, {"p", TypeId::kDouble}});
  std::vector<Tuple> left = SortedKeyed(&rng, 120, 15, 1.0);
  std::vector<Tuple> right = SortedKeyed(&rng, 90, 15, 100.0);
  for (bool outer : {false, true}) {
    auto scalar = std::make_unique<MergeJoin>(
        Source(schema, left), Source(schema, right), std::vector<int>{0},
        std::vector<int>{0}, outer);
    std::vector<std::string> expected = RowStrings(scalar.get());
    for (int bs : kBatchSizes) {
      auto batch = std::make_unique<BatchMergeJoin>(
          BatchOf(schema, left, bs), BatchOf(schema, right, bs),
          std::vector<int>{0}, std::vector<int>{0}, outer, bs);
      EXPECT_EQ(RowStrings(std::move(batch)), expected)
          << "outer=" << outer << " batch_rows=" << bs;
    }
  }
}

TEST(BatchOperatorTest, MergeJoinEmptyInputs) {
  Schema schema({{"k", TypeId::kInt32}, {"p", TypeId::kDouble}});
  Rng rng(606);
  std::vector<Tuple> some = SortedKeyed(&rng, 10, 4, 1.0);
  for (bool left_empty : {true, false}) {
    for (bool outer : {false, true}) {
      std::vector<Tuple> left = left_empty ? std::vector<Tuple>{} : some;
      std::vector<Tuple> right = left_empty ? some : std::vector<Tuple>{};
      auto scalar = std::make_unique<MergeJoin>(
          Source(schema, left), Source(schema, right), std::vector<int>{0},
          std::vector<int>{0}, outer);
      auto batch = std::make_unique<BatchMergeJoin>(
          BatchOf(schema, left, 3), BatchOf(schema, right, 3),
          std::vector<int>{0}, std::vector<int>{0}, outer, 3);
      EXPECT_EQ(RowStrings(std::move(batch)), RowStrings(scalar.get()))
          << "left_empty=" << left_empty << " outer=" << outer;
    }
  }
}

TEST(BatchOperatorTest, CrossJoinMatchesNestedLoop) {
  Rng rng(707);
  Schema schema({{"k", TypeId::kInt32}, {"p", TypeId::kDouble}});
  std::vector<Tuple> left = SortedKeyed(&rng, 23, 8, 1.0);
  std::vector<Tuple> right = SortedKeyed(&rng, 5, 8, 10.0);
  auto scalar = std::make_unique<NestedLoopJoin>(
      Source(schema, left), Source(schema, right),
      [](const Tuple&, const Tuple&) { return true; });
  std::vector<std::string> expected = RowStrings(scalar.get());
  for (int bs : kBatchSizes) {
    auto batch = std::make_unique<BatchCrossJoin>(
        BatchOf(schema, left, bs), BatchOf(schema, right, bs), bs);
    EXPECT_EQ(RowStrings(std::move(batch)), expected) << "batch_rows=" << bs;
  }
}

TEST(BatchOperatorTest, SortedAggregateMatchesHashAggregateBitExactly) {
  Rng rng(808);
  Schema schema({{"k", TypeId::kInt32}, {"p", TypeId::kDouble}});
  // Input sorted by the group key: HashAggregate emits groups in
  // ascending key order and accumulates in arrival order — exactly the
  // sorted-run order BatchSortedAggregate consumes.
  std::vector<Tuple> rows = SortedKeyed(&rng, 500, 12, 1.0);
  std::vector<AggSpec> aggs{AggSpec{AggKind::kSum, 1, "sum_p"},
                            AggSpec{AggKind::kCount, -1, "cnt"}};
  auto scalar = std::make_unique<HashAggregate>(
      Source(schema, rows), std::vector<int>{0}, aggs);
  std::vector<std::string> expected = RowStrings(scalar.get());
  for (int bs : kBatchSizes) {
    auto batch = std::make_unique<BatchSortedAggregate>(
        BatchOf(schema, rows, bs), std::vector<int>{0}, aggs, bs);
    EXPECT_EQ(RowStrings(std::move(batch)), expected) << "batch_rows=" << bs;
  }
}

TEST(BatchOperatorTest, SortedAggregateIntSumTypesMatchScalar) {
  Schema schema({{"k", TypeId::kInt32}, {"v", TypeId::kInt64}});
  std::vector<Tuple> rows;
  for (int i = 0; i < 9; ++i) {
    rows.push_back(Tuple({Value::Int32(i / 3), Value::Int64(i * 7)}));
  }
  std::vector<AggSpec> aggs{AggSpec{AggKind::kSum, 1, "sum_v"}};
  auto scalar = std::make_unique<HashAggregate>(
      Source(schema, rows), std::vector<int>{0}, aggs);
  auto batch = std::make_unique<BatchSortedAggregate>(
      BatchOf(schema, rows, 2), std::vector<int>{0}, aggs, 2);
  EXPECT_EQ(RowStrings(std::move(batch)), RowStrings(scalar.get()));
}

TEST(BatchOperatorTest, FusedSortAggregateMatchesSortThenAggregate) {
  Rng rng(909);
  // Unsorted, mixed-type input with NULL strings: the fused operator must
  // reproduce BatchSort + BatchSortedAggregate bit for bit, through both
  // the integer fast-path sort (int keys) and the generic sort (string
  // key forces the fallback).
  std::vector<Tuple> rows = RandomRows(&rng, 400, /*key_range=*/7);
  Schema schema = MixedSchema();
  std::vector<AggSpec> aggs{AggSpec{AggKind::kSum, 2, "sum_x"},
                            AggSpec{AggKind::kCount, -1, "cnt"}};
  struct Case {
    std::vector<SortKey> keys;
    std::vector<int> groups;
  };
  for (const Case& c :
       {Case{{{0, false}, {1, false}}, {0, 1}},   // two int keys (fast)
        Case{{{1, true}}, {1}},                   // descending int (fast)
        Case{{{3, false}}, {3}}}) {               // string key (generic)
    auto reference = std::make_unique<BatchSortedAggregate>(
        std::make_unique<BatchSort>(BatchOf(schema, rows, 64), c.keys, 64),
        c.groups, aggs, 64);
    std::vector<std::string> expected = RowStrings(std::move(reference));
    for (int bs : kBatchSizes) {
      auto fused = std::make_unique<BatchSortAggregate>(
          BatchOf(schema, rows, bs), c.keys, c.groups, aggs, bs);
      EXPECT_EQ(RowStrings(std::move(fused)), expected)
          << "batch_rows=" << bs;
    }
  }
}

TEST(BatchOperatorTest, EmptyInputThroughEveryOperator) {
  Schema schema({{"k", TypeId::kInt32}, {"p", TypeId::kDouble}});
  auto empty = [&] { return BatchOf(schema, {}, 4); };
  EXPECT_TRUE(RowStrings(std::make_unique<BatchFilter>(
                             empty(),
                             [](const Batch&, std::vector<int64_t>*) {}))
                  .empty());
  EXPECT_TRUE(RowStrings(std::make_unique<BatchSort>(
                             empty(), std::vector<SortKey>{{0, false}}))
                  .empty());
  EXPECT_TRUE(RowStrings(std::make_unique<BatchSortedAggregate>(
                             empty(), std::vector<int>{0},
                             std::vector<AggSpec>{
                                 AggSpec{AggKind::kCount, -1, "c"}}))
                  .empty());
  EXPECT_TRUE(RowStrings(std::make_unique<BatchSortAggregate>(
                             empty(), std::vector<SortKey>{{0, false}},
                             std::vector<int>{0},
                             std::vector<AggSpec>{
                                 AggSpec{AggKind::kCount, -1, "c"}}))
                  .empty());
  EXPECT_TRUE(RowStrings(std::make_unique<BatchCrossJoin>(empty(), empty()))
                  .empty());
}

// ---- Dictionary encoding: edge cases + aliasing regression ----

TEST(DictionaryTest, AllNullColumnEncodesToNullCodes) {
  ColumnPtr col = NewColumn(TypeId::kInt32);
  for (int i = 0; i < 200; ++i) col->AppendNull();
  DictionaryPtr dict = ColumnDictionary::Build(*col);
  EXPECT_EQ(dict->size(), 0);
  ColumnPtr codes = EncodeColumn(*col, *dict);
  ASSERT_EQ(codes->size(), 200u);
  for (int32_t c : codes->i32) EXPECT_EQ(c, ColumnDictionary::kNullCode);
  ColumnPtr decoded = DecodeColumn(*codes, *dict);
  ASSERT_EQ(decoded->size(), 200u);
  for (size_t i = 0; i < decoded->size(); ++i) {
    EXPECT_TRUE(decoded->IsNull(i)) << "row " << i;
  }
  ColumnSet rows(Schema({{"v", TypeId::kInt32}}), {col});
  EncodedColumnSet enc = EncodedColumnSet::FromColumnSet(rows);
  EXPECT_EQ(enc.stats(0).rows, 200u);
  EXPECT_EQ(enc.stats(0).nulls, 200u);
  EXPECT_EQ(enc.stats(0).distinct, 0u);
}

TEST(DictionaryTest, SingleDistinctValueColumnRoundTrips) {
  ColumnPtr col = NewColumn(TypeId::kInt64);
  for (int i = 0; i < 500; ++i) {
    if (i % 7 == 3) {
      col->AppendNull();
    } else {
      col->AppendValue(Value::Int64(42));
    }
  }
  DictionaryPtr dict = ColumnDictionary::Build(*col);
  ASSERT_EQ(dict->size(), 1);
  EXPECT_EQ(dict->CodeOf(Value::Int64(42)), 0);
  EXPECT_EQ(dict->CodeOf(Value::Int64(41)), ColumnDictionary::kMissingCode);
  EXPECT_EQ(dict->CodeOf(Value::Null(TypeId::kInt64)),
            ColumnDictionary::kNullCode);
  ColumnPtr codes = EncodeColumn(*col, *dict);
  ColumnPtr decoded = DecodeColumn(*codes, *dict);
  ASSERT_EQ(decoded->size(), col->size());
  for (size_t i = 0; i < col->size(); ++i) {
    EXPECT_EQ(decoded->ValueAt(i).ToString(), col->ValueAt(i).ToString())
        << "row " << i;
  }
}

TEST(DictionaryTest, CodesPast16BitsStayExact) {
  // > 2^16 distinct values: codes are int32, not uint16 — positions past
  // 65535 must survive encode/decode unclamped. Values spaced by 3 so
  // near-miss probes land between entries; insertion order descending so
  // Build must actually sort.
  constexpr int32_t kDistinct = 70000;
  ColumnPtr col = NewColumn(TypeId::kInt64);
  for (int32_t i = kDistinct - 1; i >= 0; --i) {
    col->AppendValue(Value::Int64(static_cast<int64_t>(i) * 3));
  }
  DictionaryPtr dict = ColumnDictionary::Build(*col);
  ASSERT_EQ(dict->size(), kDistinct);
  for (int32_t code : {0, 65535, 65536, kDistinct - 1}) {
    EXPECT_EQ(dict->ValueOf(code).AsInt64(), static_cast<int64_t>(code) * 3);
    EXPECT_EQ(dict->CodeOf(Value::Int64(static_cast<int64_t>(code) * 3)),
              code);
  }
  EXPECT_EQ(dict->CodeOf(Value::Int64(1)), ColumnDictionary::kMissingCode);
  ColumnPtr codes = EncodeColumn(*col, *dict);
  EXPECT_EQ(codes->i32.front(), kDistinct - 1);
  EXPECT_EQ(codes->i32.back(), 0);
  ColumnPtr decoded = DecodeColumn(*codes, *dict);
  EXPECT_EQ(decoded->i64.front(), static_cast<int64_t>(kDistinct - 1) * 3);
  EXPECT_EQ(decoded->i64.back(), 0);
}

TEST(DictionaryTest, MixedEncodedUnencodedJoinMatchesValueJoin) {
  // One join input arrives dictionary-encoded, the other as raw values:
  // the raw side is encoded on the fly against the foreign dictionary,
  // kMissingCode rows (absent from the encoded side's domain, so
  // unmatchable) are filtered, the join runs purely on codes, and both
  // key columns decode at output. Must equal the scalar value join.
  Rng rng(1234);
  Schema schema({{"k", TypeId::kInt32}, {"p", TypeId::kDouble}});
  std::vector<Tuple> left = SortedKeyed(&rng, 160, 12, 1.0);
  // Wider key domain: some right keys are outside the left dictionary.
  std::vector<Tuple> right = SortedKeyed(&rng, 110, 30, 10.0);
  auto scalar = std::make_unique<MergeJoin>(
      Source(schema, left), Source(schema, right), std::vector<int>{0},
      std::vector<int>{0});
  std::vector<std::string> expected = RowStrings(scalar.get());

  ColumnSet lcols(schema), rcols(schema);
  for (const Tuple& t : left) lcols.AppendTuple(t);
  for (const Tuple& t : right) rcols.AppendTuple(t);
  DictionaryPtr dict = ColumnDictionary::BuildFromSorted(lcols.col(0));
  ColumnPtr lcodes = EncodeSortedColumn(lcols.col(0), *dict);
  ColumnPtr rcodes = EncodeSortedColumn(rcols.col(0), *dict);
  std::vector<int64_t> keep;
  for (size_t i = 0; i < rcodes->i32.size(); ++i) {
    if (rcodes->i32[i] >= 0) keep.push_back(static_cast<int64_t>(i));
  }
  Schema cschema({{"k", TypeId::kInt32}, {"p", TypeId::kDouble}});
  ColumnSet lenc(cschema, {lcodes, lcols.col_ptr(1)});
  ColumnSet renc(cschema, {Gather(*rcodes, keep), Gather(rcols.col(1), keep)});
  for (bool dense : {false, true}) {
    auto join = std::make_unique<BatchProbeJoin>(
        std::make_unique<BatchSource>(&lenc),
        std::make_unique<BatchSource>(&renc), 0, 0, /*left_outer=*/false,
        dense ? static_cast<int64_t>(dict->size()) : 0);
    ColumnSet joined;
    ASSERT_TRUE(CollectInto(join.get(), &joined).ok());
    // Late materialization of both key columns.
    ColumnSet decoded(
        Schema({{"k", TypeId::kInt32},
                {"p", TypeId::kDouble},
                {"k2", TypeId::kInt32},
                {"p2", TypeId::kDouble}}),
        {DecodeColumn(joined.col(0), *dict), joined.col_ptr(1),
         DecodeColumn(joined.col(2), *dict), joined.col_ptr(3)});
    EXPECT_EQ(RowStrings(std::make_unique<BatchSource>(&decoded)), expected)
        << "dense=" << dense;
  }
}

TEST(DictionaryTest, MaterializeReturnsFreshUnaliasedColumns) {
  // Regression for the ColumnSet shared_ptr aliasing bug class (PR 6):
  // a materialized/decoded column surfacing as a shared buffer in two
  // output slots, so mutating one mutates the other. Every Materialize /
  // DecodeColumn call must return freshly allocated storage — for
  // encoded and plain (forwarded) columns alike.
  ColumnPtr scol = NewColumn(TypeId::kString);
  ColumnPtr dcol = NewColumn(TypeId::kDouble);
  for (int i = 0; i < 50; ++i) {
    scol->AppendValue(Value::Str(StrCat("v", i % 5)));
    dcol->AppendValue(Value::Double(i * 0.5));
  }
  ColumnSet rows(Schema({{"s", TypeId::kString}, {"x", TypeId::kDouble}}),
                 {scol, dcol});
  EncodedColumnSet enc = EncodedColumnSet::FromColumnSet(rows);
  ASSERT_TRUE(enc.encoded(0));
  ASSERT_FALSE(enc.encoded(1));  // doubles default to unencoded

  ColumnPtr a = enc.Materialize(0);
  ColumnPtr b = enc.Materialize(0);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), scol.get());
  a->arena[0] = 'X';
  EXPECT_EQ(b->StringAt(0), "v0");
  EXPECT_EQ(scol->StringAt(0), "v0");

  ColumnPtr c = enc.Materialize(1);
  ColumnPtr d = enc.Materialize(1);
  EXPECT_NE(c.get(), d.get());
  EXPECT_NE(c.get(), dcol.get());
  c->f64[0] = 999.0;
  EXPECT_EQ(d->f64[0], 0.0);
  EXPECT_EQ(dcol->f64[0], 0.0);

  // Same guarantee through standalone decode.
  ColumnPtr codes = EncodeColumn(*scol, *enc.dict(0));
  ColumnPtr e = DecodeColumn(*codes, *enc.dict(0));
  ColumnPtr f = DecodeColumn(*codes, *enc.dict(0));
  EXPECT_NE(e.get(), f.get());
  e->arena[0] = 'Y';
  EXPECT_EQ(f->StringAt(0), "v0");
}

// ---- Figure 3: BulkProbe scalar vs vectorized ----

TEST(EngineEquivalenceTest, BulkProbeScoresWithin1em9) {
  Rng rng(42);
  taxonomy::Taxonomy tax;
  using taxonomy::kRootCid;
  taxonomy::Cid rec = tax.AddTopic(kRootCid, "recreation").value();
  taxonomy::Cid biz = tax.AddTopic(kRootCid, "business").value();
  std::vector<taxonomy::Cid> leaves = {
      tax.AddTopic(rec, "cycling").value(),
      tax.AddTopic(rec, "gardening").value(),
      tax.AddTopic(biz, "mutual_funds").value(),
      tax.AddTopic(biz, "stocks").value()};

  auto make_doc = [&](taxonomy::Cid leaf) {
    std::vector<std::string> tokens;
    for (int i = 0; i < 140; ++i) {
      if (rng.Bernoulli(0.6)) {
        tokens.push_back(StrCat("w_", tax.Name(leaf), "_", rng.Uniform(25)));
      } else {
        tokens.push_back(StrCat("bg_", rng.Uniform(60)));
      }
    }
    return text::BuildTermVector(tokens);
  };

  classify::Trainer trainer(
      classify::TrainerOptions{.max_features_per_node = 150});
  std::vector<classify::LabeledDocument> training;
  uint64_t did = 1;
  for (taxonomy::Cid leaf : leaves) {
    for (int i = 0; i < 12; ++i) {
      training.push_back(
          classify::LabeledDocument{did++, leaf, make_doc(leaf)});
    }
  }
  auto model = trainer.Train(tax, training);
  ASSERT_TRUE(model.ok()) << model.status();
  classify::HierarchicalClassifier ref(&tax, &model.value());

  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  Catalog catalog(&pool);
  auto tables = classify::BuildClassifierTables(&catalog, tax,
                                                model.value());
  ASSERT_TRUE(tables.ok()) << tables.status();

  auto doc_table = classify::CreateDocumentTable(&catalog, "DOCUMENT");
  ASSERT_TRUE(doc_table.ok());
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(classify::InsertDocument(doc_table.value(), i + 1,
                                         make_doc(leaves[i % 4]))
                    .ok());
  }

  classify::BulkProbeClassifier bulk(&ref, &tables.value());
  bulk.SetEngine(ExecEngine::kScalar);
  auto scalar = bulk.ClassifyAll(doc_table.value());
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  bulk.SetEngine(ExecEngine::kVectorized);
  auto vectorized = bulk.ClassifyAll(doc_table.value());
  ASSERT_TRUE(vectorized.ok()) << vectorized.status();
  bulk.SetEngine(ExecEngine::kEncoded);
  auto encoded = bulk.ClassifyAll(doc_table.value());
  ASSERT_TRUE(encoded.ok()) << encoded.status();

  ASSERT_EQ(scalar.value().size(), vectorized.value().size());
  ASSERT_EQ(scalar.value().size(), encoded.value().size());
  for (const auto& [doc, expected] : scalar.value()) {
    auto it = vectorized.value().find(doc);
    ASSERT_NE(it, vectorized.value().end()) << "doc " << doc;
    ASSERT_EQ(it->second.logp.size(), expected.logp.size());
    auto enc_it = encoded.value().find(doc);
    ASSERT_NE(enc_it, encoded.value().end()) << "doc " << doc;
    ASSERT_EQ(enc_it->second.logp.size(), expected.logp.size());
    for (size_t c = 0; c < expected.logp.size(); ++c) {
      EXPECT_NEAR(it->second.logp[c], expected.logp[c], 1e-9)
          << "doc " << doc << " cid " << c;
      // The encoded plan runs the same floating-point operations in the
      // same order as the vectorized one (codes only replace join keys;
      // the STAT semi-join drops rows that never contributed), so it is
      // bit-identical to it, not merely close.
      EXPECT_EQ(enc_it->second.logp[c], it->second.logp[c])
          << "doc " << doc << " cid " << c;
    }
  }
}

// ---- Figure 4: JoinDistiller scalar vs vectorized ----

struct DistillFixture {
  storage::MemDiskManager disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<Catalog> catalog;
  distill::DistillTables tables;

  // Builds LINK/CRAWL from the same seeded random graph, so two fixtures
  // with equal seeds hold byte-identical inputs.
  Status Build(uint64_t seed, int pages, int servers, int edges) {
    pool = std::make_unique<storage::BufferPool>(&disk, 2048);
    catalog = std::make_unique<Catalog>(pool.get());
    FOCUS_ASSIGN_OR_RETURN(
        tables.link,
        catalog->CreateTable(
            "LINK",
            Schema({{"oid_src", TypeId::kInt64},
                    {"sid_src", TypeId::kInt32},
                    {"oid_dst", TypeId::kInt64},
                    {"sid_dst", TypeId::kInt32},
                    {"wgt_fwd", TypeId::kDouble},
                    {"wgt_rev", TypeId::kDouble}}),
            {IndexSpec{"by_src", {0}, {}}, IndexSpec{"by_dst", {2}, {}}}));
    FOCUS_ASSIGN_OR_RETURN(
        tables.crawl,
        catalog->CreateTable(
            "CRAWL",
            Schema({{"oid", TypeId::kInt64},
                    {"relevance", TypeId::kDouble}}),
            {IndexSpec{"by_oid", {0}, {}}}));
    Rng rng(seed);
    auto sid = [&](int64_t oid) {
      return static_cast<int32_t>(oid % servers);
    };
    for (int64_t oid = 1; oid <= pages; ++oid) {
      FOCUS_RETURN_IF_ERROR(
          tables.crawl
              ->Insert(Tuple(
                  {Value::Int64(oid), Value::Double(rng.NextDouble())}))
              .status());
    }
    for (int e = 0; e < edges; ++e) {
      int64_t src = 1 + static_cast<int64_t>(rng.Uniform(pages));
      int64_t dst = 1 + static_cast<int64_t>(rng.Uniform(pages));
      FOCUS_RETURN_IF_ERROR(
          tables.link
              ->Insert(Tuple({Value::Int64(src), Value::Int32(sid(src)),
                              Value::Int64(dst), Value::Int32(sid(dst)),
                              Value::Double(0.5 + rng.NextDouble()),
                              Value::Double(0.5 + rng.NextDouble())}))
              .status());
    }
    return distill::CreateHubsAuthTables(catalog.get(), &tables);
  }
};

std::vector<std::pair<int64_t, double>> TableRows(Table* t) {
  std::vector<std::pair<int64_t, double>> out;
  auto it = t->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    out.emplace_back(row.Get(0).AsInt64(), row.Get(1).AsDouble());
  }
  EXPECT_TRUE(it.status().ok());
  return out;
}

TEST(EngineEquivalenceTest, DistillerRankingsIdentical) {
  for (uint64_t seed : {7u, 21u, 99u}) {
    DistillFixture scalar_fx, vec_fx, enc_fx;
    ASSERT_TRUE(scalar_fx.Build(seed, 60, 9, 400).ok());
    ASSERT_TRUE(vec_fx.Build(seed, 60, 9, 400).ok());
    ASSERT_TRUE(enc_fx.Build(seed, 60, 9, 400).ok());

    distill::JoinDistiller scalar(scalar_fx.tables);
    scalar.SetEngine(ExecEngine::kScalar);
    ASSERT_TRUE(scalar.Initialize().ok());
    distill::JoinDistiller vectorized(vec_fx.tables);
    vectorized.SetEngine(ExecEngine::kVectorized);
    ASSERT_TRUE(vectorized.Initialize().ok());
    distill::JoinDistiller encoded(enc_fx.tables);
    encoded.SetEngine(ExecEngine::kEncoded);
    ASSERT_TRUE(encoded.Initialize().ok());

    for (int iter = 0; iter < 4; ++iter) {
      ASSERT_TRUE(scalar.RunIteration(0.3).ok());
      ASSERT_TRUE(vectorized.RunIteration(0.3).ok());
      ASSERT_TRUE(encoded.RunIteration(0.3).ok());
    }

    for (auto [s_table, v_table, e_table] :
         {std::tuple{scalar_fx.tables.hubs, vec_fx.tables.hubs,
                     enc_fx.tables.hubs},
          std::tuple{scalar_fx.tables.auth, vec_fx.tables.auth,
                     enc_fx.tables.auth}}) {
      auto s_rows = TableRows(s_table);
      auto v_rows = TableRows(v_table);
      auto e_rows = TableRows(e_table);
      ASSERT_EQ(s_rows.size(), v_rows.size()) << "seed " << seed;
      ASSERT_EQ(s_rows.size(), e_rows.size()) << "seed " << seed;
      for (size_t i = 0; i < s_rows.size(); ++i) {
        // Identical ranking: same oid at every (score-ordered) heap slot.
        EXPECT_EQ(s_rows[i].first, v_rows[i].first)
            << "seed " << seed << " row " << i;
        EXPECT_NEAR(s_rows[i].second, v_rows[i].second, 1e-9)
            << "seed " << seed << " row " << i;
        // Cost-model path choices only swap access paths that emit the
        // same rows in the same order, so the encoded run is bit-equal
        // to the vectorized one.
        EXPECT_EQ(e_rows[i].first, v_rows[i].first)
            << "seed " << seed << " row " << i;
        EXPECT_EQ(e_rows[i].second, v_rows[i].second)
            << "seed " << seed << " row " << i;
      }
    }
  }
}

}  // namespace
}  // namespace focus::sql
