// Tests for the concurrent crawl pipeline: the server-sharded frontier,
// the batched relevance evaluator, and thread-count invariance of the
// crawl outcome.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/batch_evaluator.h"
#include "crawl/frontier.h"
#include "crawl/metrics.h"
#include "crawl/monitor.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "text/document.h"
#include "util/clock.h"

namespace focus::core {
namespace {

using crawl::BatchRelevanceEvaluator;
using crawl::ClassifierEvaluator;
using crawl::Crawler;
using crawl::CrawlerOptions;
using crawl::Frontier;
using crawl::FrontierEntry;
using crawl::PageJudgment;
using crawl::PriorityPolicy;
using crawl::ShardedFrontier;
using taxonomy::Cid;
using taxonomy::Taxonomy;

FrontierEntry Entry(uint64_t oid, const std::string& url, double relevance,
                    int32_t numtries = 0, int32_t serverload = 0) {
  FrontierEntry e;
  e.oid = oid;
  e.url = url;
  e.relevance = relevance;
  e.numtries = numtries;
  e.serverload = serverload;
  return e;
}

TEST(ShardedFrontierTest, SingleShardMatchesPlainFrontierOrder) {
  // With one shard the sharded frontier must reproduce the classic
  // frontier's pop sequence exactly (single-threaded crawls depend on it).
  Frontier plain(PriorityPolicy::kAggressiveDiscovery);
  ShardedFrontier sharded(PriorityPolicy::kAggressiveDiscovery, 1);
  std::vector<FrontierEntry> entries = {
      Entry(1, "http://a/1", 0.9, 0, 3), Entry(2, "http://b/2", 0.9, 0, 1),
      Entry(3, "http://c/3", 0.2, 1, 0), Entry(4, "http://d/4", 0.5, 0, 1),
      Entry(5, "http://e/5", 0.9, 0, 1), Entry(6, "http://f/6", 0.1, 0, 9),
  };
  for (const FrontierEntry& e : entries) {
    plain.AddOrUpdate(e);
    sharded.AddOrUpdate(e);
  }
  // Re-rank one entry through both paths.
  FrontierEntry update = Entry(6, "http://f/6", 0.95, 0, 0);
  plain.AddOrUpdate(update);
  sharded.AddOrUpdate(update);

  ASSERT_EQ(plain.size(), sharded.size());
  while (!plain.empty()) {
    auto expected = plain.PopBest();
    auto got = sharded.PopBest();
    ASSERT_TRUE(expected.has_value());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(expected->oid, got->oid);
  }
  EXPECT_TRUE(sharded.empty());
}

TEST(ShardedFrontierTest, PreservesPriorityOrderWithinAServerShard) {
  // Same server => same shard, so the politeness-aware lexicographic
  // order is preserved among a server's pages.
  ShardedFrontier frontier(PriorityPolicy::kAggressiveDiscovery, 8);
  frontier.AddOrUpdate(Entry(1, "http://srv/a", 0.3));
  frontier.AddOrUpdate(Entry(2, "http://srv/b", 0.9));
  frontier.AddOrUpdate(Entry(3, "http://srv/c", 0.6, /*numtries=*/1));
  frontier.AddOrUpdate(Entry(4, "http://srv/d", 0.6));

  int shard = frontier.ShardOf("http://srv/a");
  EXPECT_EQ(shard, frontier.ShardOf("http://srv/d"));

  std::vector<uint64_t> order;
  bool stolen = true;
  while (auto e = frontier.PopPreferShard(shard, &stolen)) {
    EXPECT_FALSE(stolen);  // everything lives in the preferred shard
    order.push_back(e->oid);
  }
  // numtries asc first, then relevance desc.
  EXPECT_EQ(order, (std::vector<uint64_t>{2, 4, 1, 3}));
}

TEST(ShardedFrontierTest, StealsFromOtherShardsWhenPreferredRunsDry) {
  ShardedFrontier frontier(PriorityPolicy::kAggressiveDiscovery, 4);
  frontier.AddOrUpdate(Entry(1, "http://server-x/page", 0.8));
  int home = frontier.ShardOf("http://server-x/page");

  bool stolen = false;
  auto e = frontier.PopPreferShard((home + 1) % frontier.num_shards(),
                                   &stolen);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->oid, 1u);
  EXPECT_TRUE(stolen);
  EXPECT_TRUE(frontier.empty());

  // Popping the home shard directly is not a steal.
  frontier.AddOrUpdate(Entry(2, "http://server-x/other", 0.5));
  stolen = true;
  e = frontier.PopPreferShard(home, &stolen);
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(stolen);
}

TEST(ShardedFrontierTest, LookupEraseAndSnapshotSpanShards) {
  ShardedFrontier frontier(PriorityPolicy::kAggressiveDiscovery, 4);
  for (int i = 0; i < 20; ++i) {
    frontier.AddOrUpdate(Entry(100 + i,
                               "http://host" + std::to_string(i) + "/p",
                               0.1 * (i % 7)));
  }
  EXPECT_EQ(frontier.size(), 20u);
  EXPECT_TRUE(frontier.Contains(105));
  auto copy = frontier.PeekCopy(105);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->url, "http://host5/p");

  frontier.Erase(105);
  EXPECT_FALSE(frontier.Contains(105));
  EXPECT_FALSE(frontier.PeekCopy(105).has_value());

  std::vector<FrontierEntry> all = frontier.Snapshot();
  EXPECT_EQ(all.size(), 19u);
  std::unordered_set<uint64_t> oids;
  for (const FrontierEntry& e : all) oids.insert(e.oid);
  EXPECT_EQ(oids.size(), 19u);
  EXPECT_FALSE(oids.contains(105));
}

FocusOptions TinyOptions(uint64_t seed) {
  FocusOptions options;
  options.seed = seed;
  options.web.seed = seed;
  options.web.pages_per_topic = 60;
  options.web.background_pages = 800;
  options.web.background_servers = 60;
  options.examples_per_topic = 15;
  options.trainer.max_features_per_node = 200;
  return options;
}

std::unique_ptr<FocusSystem> TrainedSystem(uint64_t seed,
                                           double failure_prob = 0.0) {
  Taxonomy tax = BuildSampleTaxonomy();
  FocusOptions options = TinyOptions(seed);
  options.web.fetch_failure_prob = failure_prob;
  auto system = FocusSystem::Create(std::move(tax), options);
  EXPECT_TRUE(system.ok()) << system.status();
  auto sys = system.TakeValue();
  EXPECT_TRUE(sys->MarkGood("cycling").ok());
  EXPECT_TRUE(sys->Train().ok());
  return sys;
}

std::vector<text::TermVector> SamplePages(FocusSystem* system, int count) {
  Cid cycling = system->tax().FindByName("cycling").value();
  std::vector<text::TermVector> docs;
  VirtualClock clock;
  for (const std::string& url :
       system->web().KeywordSeeds(cycling, count)) {
    auto fetched = system->web().Fetch(url, &clock);
    EXPECT_TRUE(fetched.ok()) << fetched.status();
    docs.push_back(text::BuildTermVector(fetched.value().tokens));
  }
  return docs;
}

TEST(BatchRelevanceEvaluatorTest, MatchesInMemoryEvaluatorExactly) {
  auto system = TrainedSystem(11);
  std::vector<text::TermVector> docs = SamplePages(system.get(), 8);
  // An empty document exercises the fallback for pages that materialize
  // no DOCUMENT rows.
  docs.push_back(text::TermVector{});

  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 4096);
  sql::Catalog catalog(&pool);
  auto tables =
      classify::BuildClassifierTables(&catalog, system->tax(),
                                      system->model());
  ASSERT_TRUE(tables.ok()) << tables.status();
  classify::BulkProbeClassifier bulk(&system->classifier(),
                                     &tables.value());
  BatchRelevanceEvaluator batch_eval(&bulk, &system->classifier(),
                                     &catalog);
  ClassifierEvaluator ref_eval(&system->classifier());

  auto batched = batch_eval.JudgeBatch(docs);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ASSERT_EQ(batched.value().size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    auto expected = ref_eval.Judge(docs[i]);
    ASSERT_TRUE(expected.ok());
    EXPECT_NEAR(batched.value()[i].relevance, expected.value().relevance,
                1e-9)
        << "doc " << i;
    EXPECT_EQ(batched.value()[i].best_leaf, expected.value().best_leaf)
        << "doc " << i;
    EXPECT_EQ(batched.value()[i].best_leaf_is_good,
              expected.value().best_leaf_is_good)
        << "doc " << i;
  }

  // Size-1 batches take the in-memory shortcut; scores must still agree.
  auto single = batch_eval.JudgeBatch({docs[0]});
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(single.value().size(), 1u);
  auto expected = ref_eval.Judge(docs[0]);
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(single.value()[0].relevance, expected.value().relevance,
              1e-9);

  // Empty batches are a no-op.
  auto empty = batch_eval.JudgeBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(BatchRelevanceEvaluatorTest, ReusableAcrossBatches) {
  // The scratch DOCUMENT table is per-call; consecutive batches must not
  // contaminate each other.
  auto system = TrainedSystem(12);
  std::vector<text::TermVector> docs = SamplePages(system.get(), 6);

  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 4096);
  sql::Catalog catalog(&pool);
  auto tables =
      classify::BuildClassifierTables(&catalog, system->tax(),
                                      system->model());
  ASSERT_TRUE(tables.ok());
  classify::BulkProbeClassifier bulk(&system->classifier(),
                                     &tables.value());
  BatchRelevanceEvaluator batch_eval(&bulk, &system->classifier(),
                                     &catalog);

  std::vector<text::TermVector> first(docs.begin(), docs.begin() + 3);
  std::vector<text::TermVector> second(docs.begin() + 3, docs.end());
  auto all = batch_eval.JudgeBatch(docs);
  auto a = batch_eval.JudgeBatch(first);
  auto b = batch_eval.JudgeBatch(second);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_NEAR(a.value()[i].relevance, all.value()[i].relevance, 1e-12);
  }
  for (size_t i = 0; i < second.size(); ++i) {
    EXPECT_NEAR(b.value()[i].relevance, all.value()[i + 3].relevance,
                1e-12);
  }
}

// A crawl run to frontier exhaustion, with its owning system kept alive.
struct ExhaustedCrawl {
  std::unique_ptr<FocusSystem> system;
  std::unique_ptr<CrawlSession> session;
  std::unordered_map<uint64_t, double> relevance_by_oid;
};

ExhaustedCrawl CrawlToExhaustion(uint64_t seed, int num_threads) {
  ExhaustedCrawl run;
  run.system = TrainedSystem(seed);
  Cid cycling = run.system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 5000;  // > total page count: crawl runs to stagnation
  copts.num_threads = num_threads;
  copts.distill_every = 0;  // boosts mutate priorities, not the reachable set
  run.session =
      run.system->NewCrawl(run.system->web().KeywordSeeds(cycling, 8),
                           copts)
          .TakeValue();
  EXPECT_TRUE(run.session->crawler().Crawl().ok());
  EXPECT_TRUE(run.session->crawler().stats().stagnated);
  for (const auto& v : run.session->crawler().visits()) {
    EXPECT_FALSE(run.relevance_by_oid.contains(v.oid))
        << "double visit: " << v.url;
    run.relevance_by_oid[v.oid] = v.relevance;
  }
  return run;
}

TEST(CrawlPipelineTest, EightThreadsVisitSamePagesAsOneThread) {
  // With no fetch failures and soft focus, the visited set is the link
  // closure of the seeds — independent of worker count and pop order.
  const std::unordered_map<uint64_t, double> solo =
      CrawlToExhaustion(21, /*num_threads=*/1).relevance_by_oid;
  ExhaustedCrawl run = CrawlToExhaustion(21, /*num_threads=*/8);
  const std::unordered_map<uint64_t, double>& pooled = run.relevance_by_oid;

  ASSERT_GT(solo.size(), 100u);
  ASSERT_EQ(solo.size(), pooled.size());
  for (const auto& [oid, relevance] : solo) {
    auto it = pooled.find(oid);
    ASSERT_NE(it, pooled.end()) << "oid " << oid << " missing from pooled";
    // Classification is a pure function of page text, so scores must be
    // identical no matter which worker judged the page.
    EXPECT_DOUBLE_EQ(relevance, it->second) << "oid " << oid;
  }

  // Stage counters must reflect a real batched pipeline run.
  const crawl::StageMetricsSnapshot metrics =
      run.session->crawler().stage_metrics().Snapshot();
  EXPECT_GT(metrics.batches, 0u);
  EXPECT_EQ(metrics.batched_pages, pooled.size());
  EXPECT_GE(metrics.frontier_pops, pooled.size());
  EXPECT_GE(metrics.AvgBatchOccupancy(), 1.0);
  EXPECT_LE(metrics.AvgBatchOccupancy(), 32.0);
  // The formatted report is for the monitoring console; just check it
  // renders every counter group.
  std::string report = crawl::FormatStageMetrics(metrics);
  EXPECT_NE(report.find("classify"), std::string::npos);
  EXPECT_NE(report.find("occupancy"), std::string::npos);
  EXPECT_NE(report.find("steal_rate"), std::string::npos);
}

TEST(CrawlPipelineTest, BatchSizeOneStillCompletes) {
  auto system = TrainedSystem(31);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 120;
  copts.num_threads = 4;
  copts.classify_batch_size = 1;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 6),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  EXPECT_EQ(session->crawler().visits().size(), 120u);
}

TEST(CrawlPipelineTest, ExplicitShardCountIsRespected) {
  auto system = TrainedSystem(32);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 80;
  copts.num_threads = 4;
  copts.frontier_shards = 3;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 6),
                                  copts)
                     .TakeValue();
  EXPECT_EQ(session->crawler().frontier()->num_shards(), 3);
  ASSERT_TRUE(session->crawler().Crawl().ok());
  EXPECT_EQ(session->crawler().visits().size(), 80u);
}

}  // namespace
}  // namespace focus::core
