// Cross-engine differential harness: seeded random plans — scans,
// key-range filters, projections, sorts, inner/outer joins (sort-merge
// and index-probe, dense and searched), sorted-run aggregates — run on
// all four engines (scalar, vectorized, parallel, dictionary-encoded,
// plus the parallel-over-codes combination) and compared row for row,
// bit for bit, at every thread count. The scalar Volcano engine is the
// oracle; any divergence dumps a one-line repro (seed + plan) to stderr.
//
// Environment knobs (both optional, used by the CI matrix):
//   FOCUS_DIFF_SEED     base seed offset (default 0)
//   FOCUS_TEST_THREADS  pin the parallel engine to one thread count
//                       (default: sweep 1, 2, 4, 8)
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sql/exec/aggregate.h"
#include "sql/exec/basic.h"
#include "sql/exec/batch.h"
#include "sql/exec/batch_ops.h"
#include "sql/exec/dictionary.h"
#include "sql/exec/join.h"
#include "sql/exec/operator.h"
#include "sql/exec/parallel.h"
#include "sql/exec/sort.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::sql {
namespace {

struct PlanSpec {
  uint64_t seed = 0;
  TypeId key_type = TypeId::kInt32;
  int left_rows = 0;
  int right_rows = 0;
  int key_range = 1;             // 1 = single-distinct-value column
  bool with_string_payload = false;  // nullable string column on the left
  bool with_filter = false;          // key-range predicate
  bool with_project = false;         // appended x2 = 2*x
  bool with_join = false;
  bool left_outer = false;
  bool probe_join = false;   // index-probe instead of sort-merge
  bool dense_probe = false;  // dense run table over the code domain
  bool with_agg = false;     // group by key: sum(x), count(*)

  std::string Describe() const {
    return StrCat("key_type=", static_cast<int>(key_type),
                  " L=", left_rows, " R=", right_rows,
                  " range=", key_range,
                  " str_payload=", with_string_payload,
                  " filter=", with_filter, " project=", with_project,
                  " join=", with_join, " outer=", left_outer,
                  " probe=", probe_join, " dense=", dense_probe,
                  " agg=", with_agg);
  }
};

PlanSpec RandomSpec(uint64_t seed) {
  Rng rng(seed * 2654435761ull + 17);
  PlanSpec s;
  s.seed = seed;
  switch (rng.Uniform(3)) {
    case 0: s.key_type = TypeId::kInt32; break;
    case 1: s.key_type = TypeId::kInt64; break;
    default: s.key_type = TypeId::kString; break;
  }
  auto size = [&rng]() -> int {
    switch (rng.Uniform(6)) {
      case 0: return 0;  // empty table
      case 1: return 1;
      case 2: return static_cast<int>(rng.Uniform(8));
      default: return 40 + static_cast<int>(rng.Uniform(200));
    }
  };
  s.left_rows = size();
  s.right_rows = size();
  // Occasionally collapse the key domain to 1-3 values: duplicate-heavy
  // runs, quadratic join groups, single-distinct dictionaries.
  s.key_range = rng.Bernoulli(0.25) ? 1 + static_cast<int>(rng.Uniform(3))
                                    : 4 + static_cast<int>(rng.Uniform(30));
  s.with_string_payload = rng.Bernoulli(0.5);
  s.with_filter = rng.Bernoulli(0.5);
  s.with_project = rng.Bernoulli(0.4);
  s.with_join = rng.Bernoulli(0.6);
  s.left_outer = s.with_join && rng.Bernoulli(0.4);
  s.probe_join = s.with_join && rng.Bernoulli(0.5);
  s.dense_probe = s.probe_join && rng.Bernoulli(0.5);
  s.with_agg = rng.Bernoulli(0.5);
  return s;
}

Value MakeKey(TypeId type, int v) {
  switch (type) {
    case TypeId::kInt32: return Value::Int32(v);
    case TypeId::kInt64: return Value::Int64(static_cast<int64_t>(v) * 3);
    default: return Value::Str(StrCat("k", v));
  }
}

// [lo, hi) over the same literal space MakeKey draws from (for strings
// this is a lexicographic range — odd-looking but identical everywhere).
std::pair<Value, Value> FilterBounds(const PlanSpec& s) {
  int lo = s.key_range / 4;
  int hi = std::max(lo + 1, (3 * s.key_range) / 4);
  return {MakeKey(s.key_type, lo), MakeKey(s.key_type, hi)};
}

struct Inputs {
  Schema lschema, rschema;
  std::vector<Tuple> left, right;
};

Inputs MakeInputs(const PlanSpec& s) {
  Rng rng(s.seed * 7919ull + 3);
  Inputs in;
  std::vector<Column> lcols{{"k", s.key_type}, {"x", TypeId::kDouble}};
  if (s.with_string_payload) lcols.push_back({"s", TypeId::kString});
  in.lschema = Schema(lcols);
  in.rschema = Schema({{"k", s.key_type}, {"w", TypeId::kDouble}});
  for (int i = 0; i < s.left_rows; ++i) {
    std::vector<Value> row{
        MakeKey(s.key_type, static_cast<int>(rng.Uniform(s.key_range))),
        Value::Double(rng.NextDouble() * 10 - 5)};
    if (s.with_string_payload) {
      row.push_back(rng.Bernoulli(0.2)
                        ? Value::Null(TypeId::kString)
                        : Value::Str(StrCat("p", rng.Uniform(5))));
    }
    in.left.push_back(Tuple(std::move(row)));
  }
  for (int i = 0; i < s.right_rows; ++i) {
    in.right.push_back(Tuple(
        {MakeKey(s.key_type, static_cast<int>(rng.Uniform(s.key_range))),
         Value::Double(rng.NextDouble() * 100)}));
  }
  return in;
}

std::vector<AggSpec> Aggs(const PlanSpec&) {
  // The batch sorted-run aggregate supports SUM and COUNT — the two the
  // paper's plans use — so the differential plan space sticks to those.
  return {AggSpec{AggKind::kSum, 1, "sum_x"},
          AggSpec{AggKind::kCount, -1, "cnt"}};
}

std::vector<std::string> RowStrings(Operator* op) {
  auto rows = Collect(op);
  EXPECT_TRUE(rows.ok()) << rows.status();
  std::vector<std::string> out;
  for (const Tuple& t : rows.value()) out.push_back(t.ToString());
  return out;
}

// ---- The oracle: the scalar Volcano engine ----

std::vector<std::string> RunScalar(const PlanSpec& s, const Inputs& in) {
  OperatorPtr op =
      std::make_unique<MaterializedSource>(in.lschema, in.left);
  if (s.with_filter) {
    auto [lo, hi] = FilterBounds(s);
    op = std::make_unique<Filter>(
        std::move(op), [lo, hi](const Tuple& t) {
          return t.Get(0).Compare(lo) >= 0 && t.Get(0).Compare(hi) < 0;
        });
  }
  if (s.with_project) {
    std::vector<ProjExpr> exprs;
    for (int c = 0; c < in.lschema.num_columns(); ++c) {
      exprs.push_back(ProjExpr{in.lschema.columns()[c].name,
                               in.lschema.columns()[c].type,
                               [c](const Tuple& t) { return t.Get(c); }});
    }
    exprs.push_back(ProjExpr{"x2", TypeId::kDouble, [](const Tuple& t) {
                               return Value::Double(2 * t.Get(1).AsDouble());
                             }});
    op = std::make_unique<Project>(std::move(op), std::move(exprs));
  }
  op = std::make_unique<Sort>(std::move(op),
                              std::vector<SortKey>{{0, false}});
  if (s.with_join) {
    OperatorPtr r = std::make_unique<Sort>(
        std::make_unique<MaterializedSource>(in.rschema, in.right),
        std::vector<SortKey>{{0, false}});
    op = std::make_unique<MergeJoin>(std::move(op), std::move(r),
                                     std::vector<int>{0},
                                     std::vector<int>{0}, s.left_outer);
  }
  if (s.with_agg) {
    op = std::make_unique<HashAggregate>(std::move(op),
                                         std::vector<int>{0}, Aggs(s));
  }
  return RowStrings(op.get());
}

// ---- The three columnar engines (+ the parallel-over-codes combo) ----

std::vector<std::string> RunColumnar(const PlanSpec& s, const Inputs& in,
                                     bool par, bool enc,
                                     MorselDispatcher* disp) {
  ColumnSet limg(in.lschema), rimg(in.rschema);
  for (const Tuple& t : in.left) limg.AppendTuple(t);
  for (const Tuple& t : in.right) rimg.AppendTuple(t);

  // Dictionary-encode the join/group key; a join gets one unified code
  // domain so equal merged codes mean equal values across sides.
  DictionaryPtr dict;
  ColumnSet lenc, renc;
  const ColumnSet* lsrc = &limg;
  const ColumnSet* rsrc = &rimg;
  if (enc) {
    if (s.with_join) {
      DictionaryPtr ld = ColumnDictionary::Build(limg.col(0));
      DictionaryPtr rd = ColumnDictionary::Build(rimg.col(0));
      dict = UnifyDictionaries(*ld, *rd).dict;
    } else {
      dict = ColumnDictionary::Build(limg.col(0));
    }
    auto encode_set = [&dict](const ColumnSet& img) {
      std::vector<ColumnPtr> cols;
      for (int c = 0; c < img.num_columns(); ++c) {
        cols.push_back(img.col_ptr(c));
      }
      cols[0] = EncodeColumn(img.col(0), *dict);
      std::vector<Column> sch = img.schema().columns();
      sch[0].type = TypeId::kInt32;
      return ColumnSet(Schema(std::move(sch)), std::move(cols));
    };
    lenc = encode_set(limg);
    lsrc = &lenc;
    if (s.with_join) {
      renc = encode_set(rimg);
      rsrc = &renc;
    }
  }

  BatchOperatorPtr op = std::make_unique<BatchSource>(lsrc);
  if (s.with_filter) {
    BatchPredicate pred;
    if (enc) {
      // The dictionary probe: one binary search per bound turns the
      // value range into a code range.
      auto [lo, hi] = FilterBounds(s);
      pred = CodeRangePredicate(0, dict->LowerBound(lo),
                                dict->LowerBound(hi));
    } else {
      auto [lo, hi] = FilterBounds(s);
      pred = [lo, hi](const Batch& b, std::vector<int64_t>* sel) {
        for (size_t i = 0; i < b.num_rows(); ++i) {
          Value v = b.ValueAt(i, 0);
          if (v.Compare(lo) >= 0 && v.Compare(hi) < 0) {
            sel->push_back(static_cast<int64_t>(i));
          }
        }
      };
    }
    op = par ? BatchOperatorPtr(std::make_unique<ParallelFilter>(
                   std::move(op), std::move(pred), disp))
             : BatchOperatorPtr(std::make_unique<BatchFilter>(
                   std::move(op), std::move(pred)));
  }
  if (s.with_project) {
    std::vector<BatchExpr> exprs;
    const Schema& cur = op->schema();
    for (int c = 0; c < cur.num_columns(); ++c) {
      exprs.push_back(BatchExpr::Passthrough(
          cur.columns()[c].name, cur.columns()[c].type, c));
    }
    exprs.push_back(BatchExpr{"x2", TypeId::kDouble, [](const Batch& b) {
                                const auto& x = b.col(1).f64;
                                ColumnPtr out = NewColumn(TypeId::kDouble);
                                out->f64.reserve(x.size());
                                for (double v : x) out->f64.push_back(2 * v);
                                return out;
                              }});
    op = par ? BatchOperatorPtr(std::make_unique<ParallelProject>(
                   std::move(op), std::move(exprs), disp))
             : BatchOperatorPtr(std::make_unique<BatchProject>(
                   std::move(op), std::move(exprs)));
  }

  std::vector<SortKey> by_key{{0, false}};
  if (!s.with_join) {
    op = par ? BatchOperatorPtr(std::make_unique<ParallelSort>(
                   std::move(op), by_key, disp))
             : BatchOperatorPtr(std::make_unique<BatchSort>(std::move(op),
                                                            by_key));
  } else {
    BatchOperatorPtr r = std::make_unique<BatchSource>(rsrc);
    // The parallel merge join fuses its inputs' sorts; the probe join
    // (either engine) needs both sides pre-sorted.
    if (!par || s.probe_join) {
      auto sort_side = [&](BatchOperatorPtr side) {
        return par ? BatchOperatorPtr(std::make_unique<ParallelSort>(
                         std::move(side), by_key, disp))
                   : BatchOperatorPtr(std::make_unique<BatchSort>(
                         std::move(side), by_key));
      };
      op = sort_side(std::move(op));
      r = sort_side(std::move(r));
    }
    int64_t dense_domain =
        (enc && s.dense_probe && dict->size() > 0) ? dict->size() : 0;
    if (s.probe_join) {
      op = par ? BatchOperatorPtr(std::make_unique<ParallelProbeJoin>(
                     std::move(op), std::move(r), 0, 0, disp, s.left_outer,
                     dense_domain))
               : BatchOperatorPtr(std::make_unique<BatchProbeJoin>(
                     std::move(op), std::move(r), 0, 0, s.left_outer,
                     dense_domain));
    } else {
      op = par ? BatchOperatorPtr(std::make_unique<ParallelMergeJoin>(
                     std::move(op), std::move(r), std::vector<int>{0},
                     std::vector<int>{0}, disp, s.left_outer))
               : BatchOperatorPtr(std::make_unique<BatchMergeJoin>(
                     std::move(op), std::move(r), std::vector<int>{0},
                     std::vector<int>{0}, s.left_outer));
    }
  }
  if (s.with_agg) {
    op = par ? BatchOperatorPtr(std::make_unique<ParallelSortAggregate>(
                   std::move(op), by_key, std::vector<int>{0}, Aggs(s),
                   disp))
             : BatchOperatorPtr(std::make_unique<BatchSortedAggregate>(
                   std::move(op), std::vector<int>{0}, Aggs(s)));
  }

  ColumnSet out;
  Status st = CollectInto(op.get(), &out);
  EXPECT_TRUE(st.ok()) << st;

  if (enc) {
    // Late materialization: decode every surviving code column.
    std::vector<int> code_cols{0};
    if (s.with_join && !s.with_agg) {
      int lcols = in.lschema.num_columns() + (s.with_project ? 1 : 0);
      code_cols.push_back(lcols);  // the right side's join key
    }
    std::vector<ColumnPtr> cols;
    std::vector<Column> sch = out.schema().columns();
    for (int c = 0; c < out.num_columns(); ++c) cols.push_back(out.col_ptr(c));
    for (int c : code_cols) {
      cols[c] = DecodeColumn(out.col(c), *dict);
      sch[c].type = s.key_type;
    }
    out = ColumnSet(Schema(std::move(sch)), std::move(cols));
  }

  Devectorize scalar_tail(std::make_unique<BatchSource>(&out));
  return RowStrings(&scalar_tail);
}

void ExpectSame(const PlanSpec& s, const std::vector<std::string>& expected,
                const std::vector<std::string>& got, const char* engine,
                int threads) {
  if (got == expected) return;
  // The one line a human (or CI log grepper) needs to replay this case.
  std::cerr << "REPRO: seed=" << s.seed << " engine=" << engine
            << " threads=" << threads << " plan={" << s.Describe() << "}\n";
  size_t first = 0;
  while (first < expected.size() && first < got.size() &&
         expected[first] == got[first]) {
    ++first;
  }
  ADD_FAILURE() << engine << " (threads=" << threads
                << ") diverged from scalar on seed " << s.seed << ": "
                << expected.size() << " vs " << got.size()
                << " rows, first divergence at row " << first << "\n  want: "
                << (first < expected.size() ? expected[first] : "<none>")
                << "\n  got:  "
                << (first < got.size() ? got[first] : "<none>");
}

void RunDifferential(const PlanSpec& spec,
                     const std::vector<int>& thread_counts,
                     std::vector<std::unique_ptr<MorselDispatcher>>* disps) {
  Inputs in = MakeInputs(spec);
  std::vector<std::string> expected = RunScalar(spec, in);
  ExpectSame(spec, expected,
             RunColumnar(spec, in, false, false, nullptr), "vectorized", 1);
  ExpectSame(spec, expected,
             RunColumnar(spec, in, false, true, nullptr), "encoded", 1);
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    ExpectSame(spec, expected,
               RunColumnar(spec, in, true, false, (*disps)[i].get()),
               "parallel", thread_counts[i]);
    ExpectSame(spec, expected,
               RunColumnar(spec, in, true, true, (*disps)[i].get()),
               "parallel-encoded", thread_counts[i]);
  }
}

std::vector<int> ThreadCounts() {
  if (const char* env = std::getenv("FOCUS_TEST_THREADS")) {
    int t = std::atoi(env);
    if (t > 0) return {t};
  }
  return {1, 2, 4, 8};
}

uint64_t BaseSeed() {
  if (const char* env = std::getenv("FOCUS_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0;
}

TEST(SqlDifferentialTest, HandPickedEdgeCases) {
  std::vector<int> threads = ThreadCounts();
  std::vector<std::unique_ptr<MorselDispatcher>> disps;
  for (int t : threads) disps.push_back(std::make_unique<MorselDispatcher>(t));

  std::vector<PlanSpec> cases;
  {
    PlanSpec s;  // empty left, outer join, aggregate
    s.seed = 9001;
    s.left_rows = 0;
    s.right_rows = 50;
    s.key_range = 5;
    s.with_join = true;
    s.left_outer = true;
    s.with_agg = true;
    cases.push_back(s);
  }
  {
    PlanSpec s;  // empty right: outer join must pad every left row
    s.seed = 9002;
    s.left_rows = 60;
    s.right_rows = 0;
    s.key_range = 6;
    s.with_join = true;
    s.left_outer = true;
    cases.push_back(s);
  }
  {
    PlanSpec s;  // single-distinct key both sides: one quadratic group
    s.seed = 9003;
    s.left_rows = 150;
    s.right_rows = 150;
    s.key_range = 1;
    s.with_join = true;
    s.probe_join = true;
    s.dense_probe = true;
    cases.push_back(s);
  }
  {
    PlanSpec s;  // duplicate-heavy string keys through filter+join+agg
    s.seed = 9004;
    s.key_type = TypeId::kString;
    s.left_rows = 180;
    s.right_rows = 120;
    s.key_range = 3;
    s.with_string_payload = true;
    s.with_filter = true;
    s.with_join = true;
    s.with_agg = true;
    cases.push_back(s);
  }
  {
    PlanSpec s;  // both sides empty
    s.seed = 9005;
    s.with_join = true;
    s.with_agg = true;
    cases.push_back(s);
  }
  for (const PlanSpec& s : cases) {
    RunDifferential(s, threads, &disps);
    if (HasFailure()) break;
  }
}

TEST(SqlDifferentialTest, RandomPlansBitIdenticalAcrossEngines) {
  constexpr int kPlans = 220;
  uint64_t base = BaseSeed();
  std::vector<int> threads = ThreadCounts();
  std::vector<std::unique_ptr<MorselDispatcher>> disps;
  for (int t : threads) disps.push_back(std::make_unique<MorselDispatcher>(t));
  for (int i = 0; i < kPlans; ++i) {
    RunDifferential(RandomSpec(base + static_cast<uint64_t>(i)), threads,
                    &disps);
    // One repro line is worth more than two hundred: stop at the first.
    if (HasFailure()) break;
  }
}

}  // namespace
}  // namespace focus::sql
