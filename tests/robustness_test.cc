// System-level robustness: determinism guarantees, multi-threaded stress
// with failure injection, and hostile tokenizer input.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "storage/crash_fault_disk.h"
#include "storage/wal.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/string_util.h"
#include "webgraph/web_config.h"

namespace focus::core {
namespace {

using crawl::CrawlerOptions;
using taxonomy::Cid;

FocusOptions Options(uint64_t seed) {
  FocusOptions options;
  options.seed = seed;
  options.web.pages_per_topic = 250;
  options.web.background_pages = 4000;
  options.web.background_servers = 120;
  return options;
}

TEST(RobustnessTest, IdenticalSeedsGiveIdenticalCrawls) {
  // The whole pipeline — generation, training, crawling, distillation —
  // is a pure function of the seed.
  std::vector<std::string> urls[2];
  std::vector<double> scores[2];
  for (int run = 0; run < 2; ++run) {
    taxonomy::Taxonomy tax = BuildSampleTaxonomy();
    auto system = FocusSystem::Create(std::move(tax), Options(99))
                      .TakeValue();
    ASSERT_TRUE(system->MarkGood("cycling").ok());
    ASSERT_TRUE(system->Train().ok());
    Cid cycling = system->tax().FindByName("cycling").value();
    CrawlerOptions copts;
    copts.max_fetches = 200;
    copts.distill_every = 80;
    auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 6),
                                    copts)
                       .TakeValue();
    ASSERT_TRUE(session->crawler().Crawl().ok());
    for (const auto& v : session->crawler().visits()) {
      urls[run].push_back(v.url);
      scores[run].push_back(v.relevance);
    }
    auto top = session->Distill({.iterations = 10, .rho = 0.1}, 5);
    ASSERT_TRUE(top.ok());
    for (const auto& hub : top.value().hubs) {
      urls[run].push_back(hub.url);
      scores[run].push_back(hub.score);
    }
  }
  ASSERT_EQ(urls[0].size(), urls[1].size());
  for (size_t i = 0; i < urls[0].size(); ++i) {
    EXPECT_EQ(urls[0][i], urls[1][i]) << i;
    EXPECT_DOUBLE_EQ(scores[0][i], scores[1][i]) << i;
  }
}

TEST(RobustnessTest, DifferentSeedsDiverge) {
  std::vector<std::string> first_urls[2];
  for (int run = 0; run < 2; ++run) {
    taxonomy::Taxonomy tax = BuildSampleTaxonomy();
    auto system =
        FocusSystem::Create(std::move(tax), Options(run == 0 ? 1 : 2))
            .TakeValue();
    ASSERT_TRUE(system->MarkGood("cycling").ok());
    ASSERT_TRUE(system->Train().ok());
    Cid cycling = system->tax().FindByName("cycling").value();
    CrawlerOptions copts;
    copts.max_fetches = 50;
    auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 6),
                                    copts)
                       .TakeValue();
    ASSERT_TRUE(session->crawler().Crawl().ok());
    for (const auto& v : session->crawler().visits()) {
      first_urls[run].push_back(v.url);
    }
  }
  EXPECT_NE(first_urls[0], first_urls[1]);
}

TEST(RobustnessTest, MultiThreadedCrawlWithFailuresAndDistillation) {
  taxonomy::Taxonomy tax = BuildSampleTaxonomy();
  FocusOptions options = Options(7);
  options.web.fetch_failure_prob = 0.15;
  auto system = FocusSystem::Create(std::move(tax), options).TakeValue();
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 400;
  copts.num_threads = 8;
  copts.distill_every = 150;
  copts.try_truncated_urls = true;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  const auto& visits = session->crawler().visits();
  EXPECT_EQ(visits.size(), 400u);
  std::unordered_set<uint64_t> oids;
  for (const auto& v : visits) {
    EXPECT_TRUE(oids.insert(v.oid).second);
  }
  EXPECT_GT(session->crawler().stats().transient_failures +
                session->crawler().stats().dropped_urls,
            0u);
  // The relational state is consistent: every visited row is classified.
  auto it = session->db().crawl_table()->Scan();
  storage::Rid rid;
  sql::Tuple row;
  int visited_rows = 0;
  while (it.Next(&rid, &row)) {
    if (row.Get(8).AsInt32() != 0) {
      ++visited_rows;
      EXPECT_GE(row.Get(7).AsInt32(), 0);   // kcid assigned
      EXPECT_GT(row.Get(6).AsInt64(), 0);   // lastvisited set
    }
  }
  EXPECT_EQ(visited_rows, 400);
}

TEST(RobustnessTest, TokenizerSurvivesHostileInput) {
  text::Tokenizer tokenizer;
  Rng rng(3);
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    int len = static_cast<int>(rng.Uniform(2000));
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto tokens = tokenizer.Tokenize(garbage);
    for (const auto& tok : tokens) {
      EXPECT_GE(tok.size(), 2u);
      for (char c : tok) {
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) ||
                    c == '_');
      }
    }
  }
}

TEST(RobustnessTest, CrawlerHandlesAllSeedsFailing) {
  taxonomy::Taxonomy tax = BuildSampleTaxonomy();
  auto system = FocusSystem::Create(std::move(tax), Options(11))
                    .TakeValue();
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  CrawlerOptions copts;
  copts.max_fetches = 50;
  // Seeds that do not exist in the web: every fetch 404s.
  auto session = system
                     ->NewCrawl({"http://no.such.host/a",
                                 "http://no.such.host/b"},
                                copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  EXPECT_TRUE(session->crawler().visits().empty());
  EXPECT_TRUE(session->crawler().stats().stagnated);
  EXPECT_GT(session->crawler().stats().dropped_urls, 0u);
}

// A hostile-web config: ~10% transient failures plus permanent losses,
// timeouts, truncation, flaky servers and two scheduled outages.
FocusOptions FaultyOptions(uint64_t seed) {
  FocusOptions options = Options(seed);
  options.web.fetch_failure_prob = 0.10;
  options.web.faults.permanent_prob = 0.02;
  options.web.faults.timeout_prob = 0.03;
  options.web.faults.truncate_prob = 0.05;
  options.web.faults.flaky_server_fraction = 0.05;
  options.web.faults.slow_server_fraction = 0.10;
  options.web.faults.outages.push_back(
      webgraph::ServerOutage{/*server_id=*/0, /*start_s=*/2.0,
                             /*end_s=*/30.0});
  options.web.faults.outages.push_back(
      webgraph::ServerOutage{/*server_id=*/1, /*start_s=*/10.0,
                             /*end_s=*/60.0});
  return options;
}

std::unique_ptr<FocusSystem> TrainedSystem(FocusOptions options) {
  auto system =
      FocusSystem::Create(BuildSampleTaxonomy(), std::move(options))
          .TakeValue();
  EXPECT_TRUE(system->MarkGood("cycling").ok());
  EXPECT_TRUE(system->Train().ok());
  return system;
}

// A crawl-to-exhaustion over the hostile web, with its owning system.
struct FaultyExhaustion {
  std::unique_ptr<FocusSystem> system;
  std::unique_ptr<CrawlSession> session;
  std::unordered_map<uint64_t, double> relevance_by_oid;
};

FaultyExhaustion ExhaustWithFaults(uint64_t seed, int num_threads) {
  FaultyExhaustion run;
  run.system = TrainedSystem(FaultyOptions(seed));
  Cid cycling = run.system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 20000;  // > total page count: runs to stagnation
  copts.num_threads = num_threads;
  copts.distill_every = 0;
  run.session =
      run.system->NewCrawl(run.system->web().KeywordSeeds(cycling, 8),
                           copts)
          .TakeValue();
  EXPECT_TRUE(run.session->crawler().Crawl().ok());
  EXPECT_TRUE(run.session->crawler().stats().stagnated);
  for (const auto& v : run.session->crawler().visits()) {
    EXPECT_FALSE(run.relevance_by_oid.contains(v.oid))
        << "double visit: " << v.url;
    run.relevance_by_oid[v.oid] = v.relevance;
  }
  return run;
}

TEST(RobustnessTest, DeterministicUnderFaultsAcrossThreadCounts) {
  // Fault outcomes are a pure function of (seed, page, attempt ordinal);
  // backoff, outages and breakers only *delay* entries. So even with ~10%
  // fault injection, the set of pages a crawl-to-exhaustion visits — and
  // which URLs it drops — is identical at any thread count. (Attempt and
  // transient-failure counts ARE timing-dependent: outage hits vary with
  // when workers land on a server. The visit set must not.)
  FaultyExhaustion solo = ExhaustWithFaults(33, /*num_threads=*/1);
  FaultyExhaustion pooled = ExhaustWithFaults(33, /*num_threads=*/8);

  ASSERT_GT(solo.relevance_by_oid.size(), 100u);
  ASSERT_EQ(solo.relevance_by_oid.size(), pooled.relevance_by_oid.size());
  for (const auto& [oid, relevance] : solo.relevance_by_oid) {
    auto it = pooled.relevance_by_oid.find(oid);
    ASSERT_NE(it, pooled.relevance_by_oid.end())
        << "oid " << oid << " missing from the 8-thread crawl";
    EXPECT_DOUBLE_EQ(relevance, it->second) << "oid " << oid;
  }
  // The fault model actually fired, and drop decisions are deterministic.
  const auto& solo_stats = solo.session->crawler().stats();
  const auto& pooled_stats = pooled.session->crawler().stats();
  EXPECT_GT(solo_stats.transient_failures, 0u);
  EXPECT_GT(solo_stats.dropped_urls, 0u);
  EXPECT_EQ(solo_stats.dropped_urls, pooled_stats.dropped_urls);
}

TEST(RobustnessTest, KillAndResumeConvergesToUninterruptedCrawl) {
  // Uninterrupted reference run.
  FaultyExhaustion full = ExhaustWithFaults(35, /*num_threads=*/1);

  // Same-seed run "killed" by budget exhaustion mid-crawl...
  auto system = TrainedSystem(FaultyOptions(35));
  Cid cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 8);
  CrawlerOptions partial;
  partial.max_fetches = 120;
  partial.distill_every = 0;
  auto session = system->NewCrawl(seeds, partial).TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  std::unordered_map<uint64_t, double> merged;
  for (const auto& v : session->crawler().visits()) {
    merged[v.oid] = v.relevance;
  }
  ASSERT_LT(merged.size(), full.relevance_by_oid.size());

  // ...then resumed by a brand-new crawler over the same CrawlDb: numtries,
  // nextretry and BREAKER rows restore the retry schedule.
  crawl::ClassifierEvaluator evaluator(&system->classifier());
  CrawlerOptions rest;
  rest.max_fetches = 20000;
  rest.distill_every = 0;
  crawl::Crawler resumed(&system->web(), &evaluator, &session->db(),
                         &session->catalog(), rest);
  ASSERT_TRUE(resumed.ResumeFromDb().ok());
  ASSERT_TRUE(resumed.Crawl().ok());
  EXPECT_TRUE(resumed.stats().stagnated);
  for (const auto& v : resumed.visits()) {
    EXPECT_FALSE(merged.contains(v.oid)) << "revisited " << v.url;
    merged[v.oid] = v.relevance;
  }

  // The interrupted crawl converges to the uninterrupted one: same visit
  // set, same judged relevances, same discovered URL and LINK rows.
  ASSERT_EQ(merged.size(), full.relevance_by_oid.size());
  for (const auto& [oid, relevance] : full.relevance_by_oid) {
    auto it = merged.find(oid);
    ASSERT_NE(it, merged.end()) << "oid " << oid << " never revisited";
    EXPECT_DOUBLE_EQ(relevance, it->second) << "oid " << oid;
  }
  EXPECT_EQ(session->db().num_urls(), full.session->db().num_urls());
  EXPECT_EQ(session->db().num_links(), full.session->db().num_links());
}

// Visited rows of a crawl database: oid -> judged relevance.
std::unordered_map<uint64_t, double> VisitedRows(crawl::CrawlDb* db) {
  std::unordered_map<uint64_t, double> out;
  auto it = db->crawl_table()->Scan();
  storage::Rid rid;
  sql::Tuple row;
  while (it.Next(&rid, &row)) {
    if (row.Get(8).AsInt32() != 0) {
      out[static_cast<uint64_t>(row.Get(0).AsInt64())] =
          row.Get(4).AsDouble();
    }
  }
  EXPECT_TRUE(it.status().ok());
  return out;
}

TEST(RobustnessTest, StorageCrashMidCommitResumesAndConverges) {
  // A crawl over a file-backed WAL store, killed by a storage-level power
  // cut inside a batch commit, must recover to a commit boundary and — a
  // fresh crawler resuming from the recovered tables — converge to the
  // same final state as a crawl that was never interrupted. This is the
  // §3.1 crash claim ("all crawlers crash") carried down to the disk.
  FocusOptions options = Options(37);
  options.web.pages_per_topic = 120;
  options.web.background_pages = 800;
  options.web.background_servers = 40;
  options.web.fetch_failure_prob = 0.10;
  options.web.faults.permanent_prob = 0.02;

  // Reference: uninterrupted in-memory crawl to exhaustion. The storage
  // backend is transparent, so its final tables are the target state.
  std::unordered_map<uint64_t, double> full_visited;
  uint64_t full_urls = 0, full_links = 0;
  {
    auto system = TrainedSystem(options);
    Cid cycling = system->tax().FindByName("cycling").value();
    CrawlerOptions copts;
    copts.max_fetches = 20000;
    auto session =
        system->NewCrawl(system->web().KeywordSeeds(cycling, 8), copts)
            .TakeValue();
    ASSERT_TRUE(session->crawler().Crawl().ok());
    ASSERT_TRUE(session->crawler().stats().stagnated);
    full_visited = VisitedRows(&session->db());
    full_urls = session->db().num_urls();
    full_links = session->db().num_links();
  }
  ASSERT_GT(full_visited.size(), 50u);

  // One WAL-backed crawl attempt over `plan`-decorated file devices.
  // Deterministic per seed, so a counting pass sizes the op stream and a
  // second pass crashes at ~60% of it — inside some batch's commit, since
  // nearly every device op belongs to one.
  std::string base = ::testing::TempDir() + "robustness_wal";
  storage::CrashPlan plan;
  auto crawl_attempt = [&](const std::string& tag) -> Status {
    auto data =
        storage::FileDiskManager::Open(StrCat(base, tag, ".db"))
            .TakeValue();
    auto log =
        storage::FileDiskManager::Open(StrCat(base, tag, ".wal"))
            .TakeValue();
    storage::CrashFaultDiskManager cdata(data.get(), &plan);
    storage::CrashFaultDiskManager clog(log.get(), &plan);
    auto system = TrainedSystem(options);
    Cid cycling = system->tax().FindByName("cycling").value();
    FOCUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::WalDiskManager> wal,
                           storage::WalDiskManager::Open(&cdata, &clog));
    storage::BufferPool pool(wal.get(), 4096);
    sql::Catalog catalog(&pool);
    FOCUS_ASSIGN_OR_RETURN(crawl::CrawlDb db,
                           crawl::CrawlDb::Open(&catalog, wal.get()));
    crawl::ClassifierEvaluator evaluator(&system->classifier());
    CrawlerOptions copts;
    copts.max_fetches = 20000;
    crawl::Crawler crawler(&system->web(), &evaluator, &db, &catalog,
                           copts);
    for (const std::string& url :
         system->web().KeywordSeeds(cycling, 8)) {
      FOCUS_RETURN_IF_ERROR(crawler.AddSeed(url));
    }
    return crawler.Crawl();
  };

  ASSERT_TRUE(crawl_attempt("_count").ok());
  uint64_t total_ops = plan.op_count.load();
  ASSERT_GT(total_ops, 100u);

  plan.Reset(total_ops * 6 / 10);
  Status crashed = crawl_attempt("_crash");
  ASSERT_FALSE(crashed.ok());
  ASSERT_NE(crashed.message().find(storage::kCrashMessage),
            std::string::npos)
      << crashed.ToString();

  // Recovery: reopen the surviving files, replay the log, resume with a
  // brand-new crawler, and run to exhaustion.
  storage::FileDiskManager::Options attach;
  attach.truncate = false;
  auto data =
      storage::FileDiskManager::Open(base + "_crash.db", attach)
          .TakeValue();
  auto log =
      storage::FileDiskManager::Open(base + "_crash.wal", attach)
          .TakeValue();
  auto wal = storage::WalDiskManager::Open(data.get(), log.get())
                 .TakeValue();
  storage::BufferPool pool(wal.get(), 4096);
  sql::Catalog catalog(&pool);
  auto db = crawl::CrawlDb::Open(&catalog, wal.get()).TakeValue();
  std::unordered_map<uint64_t, double> at_recovery = VisitedRows(&db);
  ASSERT_LT(at_recovery.size(), full_visited.size());  // work was lost

  auto system = TrainedSystem(options);
  crawl::ClassifierEvaluator evaluator(&system->classifier());
  CrawlerOptions copts;
  copts.max_fetches = 20000;
  crawl::Crawler resumed(&system->web(), &evaluator, &db, &catalog,
                         copts);
  ASSERT_TRUE(resumed.ResumeFromDb().ok());
  ASSERT_TRUE(resumed.Crawl().ok());
  EXPECT_TRUE(resumed.stats().stagnated);
  EXPECT_GT(resumed.visits().size(), 0u);

  // Batch atomicity at the storage layer means the recovered store was a
  // consistent prefix; the resumed crawl must therefore converge exactly.
  std::unordered_map<uint64_t, double> final_visited = VisitedRows(&db);
  ASSERT_EQ(final_visited.size(), full_visited.size());
  for (const auto& [oid, relevance] : full_visited) {
    auto it = final_visited.find(oid);
    ASSERT_NE(it, final_visited.end()) << "oid " << oid << " missing";
    EXPECT_DOUBLE_EQ(relevance, it->second) << "oid " << oid;
  }
  EXPECT_EQ(db.num_urls(), full_urls);
  EXPECT_EQ(db.num_links(), full_links);
}

TEST(RobustnessTest, CircuitBreakerReducesWastedWorkOnDeadServers) {
  // With ~12% of servers dead, every pop of a dead-server page burns a
  // full timeout without the breaker. With it, the server is quarantined
  // after a few failures and its pages sit parked, so a fixed visit budget
  // completes with fewer wasted attempts and less virtual time.
  auto run = [](bool breaker_enabled) {
    FocusOptions options = Options(55);
    options.web.fetch_failure_prob = 0.02;
    options.web.faults.dead_server_fraction = 0.12;
    auto system = TrainedSystem(std::move(options));
    Cid cycling = system->tax().FindByName("cycling").value();
    CrawlerOptions copts;
    copts.max_fetches = 300;
    copts.distill_every = 0;
    copts.breaker.enabled = breaker_enabled;
    auto session =
        system->NewCrawl(system->web().KeywordSeeds(cycling, 8), copts)
            .TakeValue();
    EXPECT_TRUE(session->crawler().Crawl().ok());
    EXPECT_EQ(session->crawler().visits().size(), 300u);
    struct Outcome {
      uint64_t attempts;
      uint64_t breaker_skips;
      int64_t makespan_us;
    };
    return Outcome{session->crawler().stats().attempts,
                   session->crawler().stats().breaker_skips,
                   session->crawler().clock().NowMicros()};
  };
  auto with_breaker = run(true);
  auto without = run(false);

  EXPECT_GT(with_breaker.breaker_skips, 0u);
  EXPECT_EQ(without.breaker_skips, 0u);
  EXPECT_LT(with_breaker.attempts, without.attempts);
  EXPECT_LT(with_breaker.makespan_us, without.makespan_us);
}

}  // namespace
}  // namespace focus::core
