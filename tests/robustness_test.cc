// System-level robustness: determinism guarantees, multi-threaded stress
// with failure injection, and hostile tokenizer input.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace focus::core {
namespace {

using crawl::CrawlerOptions;
using taxonomy::Cid;

FocusOptions Options(uint64_t seed) {
  FocusOptions options;
  options.seed = seed;
  options.web.pages_per_topic = 250;
  options.web.background_pages = 4000;
  options.web.background_servers = 120;
  return options;
}

TEST(RobustnessTest, IdenticalSeedsGiveIdenticalCrawls) {
  // The whole pipeline — generation, training, crawling, distillation —
  // is a pure function of the seed.
  std::vector<std::string> urls[2];
  std::vector<double> scores[2];
  for (int run = 0; run < 2; ++run) {
    taxonomy::Taxonomy tax = BuildSampleTaxonomy();
    auto system = FocusSystem::Create(std::move(tax), Options(99))
                      .TakeValue();
    ASSERT_TRUE(system->MarkGood("cycling").ok());
    ASSERT_TRUE(system->Train().ok());
    Cid cycling = system->tax().FindByName("cycling").value();
    CrawlerOptions copts;
    copts.max_fetches = 200;
    copts.distill_every = 80;
    auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 6),
                                    copts)
                       .TakeValue();
    ASSERT_TRUE(session->crawler().Crawl().ok());
    for (const auto& v : session->crawler().visits()) {
      urls[run].push_back(v.url);
      scores[run].push_back(v.relevance);
    }
    auto top = session->Distill({.iterations = 10, .rho = 0.1}, 5);
    ASSERT_TRUE(top.ok());
    for (const auto& hub : top.value().hubs) {
      urls[run].push_back(hub.url);
      scores[run].push_back(hub.score);
    }
  }
  ASSERT_EQ(urls[0].size(), urls[1].size());
  for (size_t i = 0; i < urls[0].size(); ++i) {
    EXPECT_EQ(urls[0][i], urls[1][i]) << i;
    EXPECT_DOUBLE_EQ(scores[0][i], scores[1][i]) << i;
  }
}

TEST(RobustnessTest, DifferentSeedsDiverge) {
  std::vector<std::string> first_urls[2];
  for (int run = 0; run < 2; ++run) {
    taxonomy::Taxonomy tax = BuildSampleTaxonomy();
    auto system =
        FocusSystem::Create(std::move(tax), Options(run == 0 ? 1 : 2))
            .TakeValue();
    ASSERT_TRUE(system->MarkGood("cycling").ok());
    ASSERT_TRUE(system->Train().ok());
    Cid cycling = system->tax().FindByName("cycling").value();
    CrawlerOptions copts;
    copts.max_fetches = 50;
    auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 6),
                                    copts)
                       .TakeValue();
    ASSERT_TRUE(session->crawler().Crawl().ok());
    for (const auto& v : session->crawler().visits()) {
      first_urls[run].push_back(v.url);
    }
  }
  EXPECT_NE(first_urls[0], first_urls[1]);
}

TEST(RobustnessTest, MultiThreadedCrawlWithFailuresAndDistillation) {
  taxonomy::Taxonomy tax = BuildSampleTaxonomy();
  FocusOptions options = Options(7);
  options.web.fetch_failure_prob = 0.15;
  auto system = FocusSystem::Create(std::move(tax), options).TakeValue();
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 400;
  copts.num_threads = 8;
  copts.distill_every = 150;
  copts.try_truncated_urls = true;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  const auto& visits = session->crawler().visits();
  EXPECT_EQ(visits.size(), 400u);
  std::unordered_set<uint64_t> oids;
  for (const auto& v : visits) {
    EXPECT_TRUE(oids.insert(v.oid).second);
  }
  EXPECT_GT(session->crawler().stats().failures, 0u);
  // The relational state is consistent: every visited row is classified.
  auto it = session->db().crawl_table()->Scan();
  storage::Rid rid;
  sql::Tuple row;
  int visited_rows = 0;
  while (it.Next(&rid, &row)) {
    if (row.Get(8).AsInt32() != 0) {
      ++visited_rows;
      EXPECT_GE(row.Get(7).AsInt32(), 0);   // kcid assigned
      EXPECT_GT(row.Get(6).AsInt64(), 0);   // lastvisited set
    }
  }
  EXPECT_EQ(visited_rows, 400);
}

TEST(RobustnessTest, TokenizerSurvivesHostileInput) {
  text::Tokenizer tokenizer;
  Rng rng(3);
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    int len = static_cast<int>(rng.Uniform(2000));
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto tokens = tokenizer.Tokenize(garbage);
    for (const auto& tok : tokens) {
      EXPECT_GE(tok.size(), 2u);
      for (char c : tok) {
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) ||
                    c == '_');
      }
    }
  }
}

TEST(RobustnessTest, CrawlerHandlesAllSeedsFailing) {
  taxonomy::Taxonomy tax = BuildSampleTaxonomy();
  auto system = FocusSystem::Create(std::move(tax), Options(11))
                    .TakeValue();
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  CrawlerOptions copts;
  copts.max_fetches = 50;
  // Seeds that do not exist in the web: every fetch 404s.
  auto session = system
                     ->NewCrawl({"http://no.such.host/a",
                                 "http://no.such.host/b"},
                                copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  EXPECT_TRUE(session->crawler().visits().empty());
  EXPECT_TRUE(session->crawler().stats().stagnated);
  EXPECT_GT(session->crawler().stats().failures, 0u);
}

}  // namespace
}  // namespace focus::core
