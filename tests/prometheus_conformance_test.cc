// Prometheus text-exposition conformance for the metrics registry.
//
// A scraper is the consumer here, not a human, so shape bugs (missing HELP,
// non-cumulative buckets, unescaped label values, counters without the
// _total suffix) silently corrupt dashboards. This test renders a registry
// populated with the crawl layer's real metric families (StageMetrics) plus
// adversarial label/help strings, then re-parses the page line by line and
// checks the format invariants the exposition spec requires.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crawl/metrics.h"
#include "obs/metrics.h"

namespace focus::obs {
namespace {

struct Family {
  std::string type;  // "counter" | "gauge" | "histogram"
  bool has_help = false;
  bool help_before_type = false;
};

struct Sample {
  std::string name;   // family or series name as written (with suffix)
  std::string labels; // raw text inside {...}, "" when absent
  double value = 0;
};

// Minimal exposition parser: records families from # HELP / # TYPE lines
// and splits samples into name / label-block / value. Fails the test on
// any line that fits neither shape.
class Exposition {
 public:
  explicit Exposition(const std::string& text) { Parse(text); }

 private:
  // ASSERT macros need a void function, so parsing lives outside the ctor.
  void Parse(const std::string& text) {
    std::string last_help;
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      ASSERT_NE(end, std::string::npos) << "page must end with a newline";
      std::string line = text.substr(start, end - start);
      start = end + 1;
      if (line.rfind("# HELP ", 0) == 0) {
        last_help = Word(line.substr(7));
        families_[last_help].has_help = true;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string rest = line.substr(7);
        std::string name = Word(rest);
        Family& fam = families_[name];
        fam.type = rest.substr(name.size() + 1);
        fam.help_before_type = (last_help == name) && fam.has_help;
        continue;
      }
      ASSERT_NE(line.rfind("#", 0), 0) << "unknown comment line: " << line;
      ParseSample(line);
    }
  }

 public:
  const std::map<std::string, Family>& families() const { return families_; }
  const std::vector<Sample>& samples() const { return samples_; }

  std::vector<Sample> SeriesNamed(const std::string& name) const {
    std::vector<Sample> out;
    for (const Sample& s : samples_) {
      if (s.name == name) out.push_back(s);
    }
    return out;
  }

 private:
  static std::string Word(const std::string& s) {
    return s.substr(0, s.find(' '));
  }

  void ParseSample(const std::string& line) {
    Sample s;
    size_t brace = line.find('{');
    size_t name_end = std::min(brace, line.find(' '));
    ASSERT_NE(name_end, std::string::npos) << "malformed sample: " << line;
    s.name = line.substr(0, name_end);
    size_t value_start;
    if (brace != std::string::npos && brace == name_end) {
      // The label block ends at the last '}' — label VALUES may contain
      // escaped quotes but never a raw unescaped '}' followed by space+num
      // in this format, and the writer always emits value after "} ".
      size_t close = line.rfind('}');
      ASSERT_NE(close, std::string::npos) << "unterminated labels: " << line;
      s.labels = line.substr(brace + 1, close - brace - 1);
      value_start = close + 2;
    } else {
      value_start = name_end + 1;
    }
    ASSERT_LT(value_start, line.size()) << "missing value: " << line;
    char* parse_end = nullptr;
    std::string value_text = line.substr(value_start);
    s.value = std::strtod(value_text.c_str(), &parse_end);
    ASSERT_EQ(*parse_end, '\0') << "non-numeric value in: " << line;
    samples_.push_back(std::move(s));
  }

  std::map<std::string, Family> families_;
  std::vector<Sample> samples_;
};

// The family a series belongs to: strips the histogram series suffixes.
std::string FamilyOf(const std::string& series,
                     const std::map<std::string, Family>& families) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    size_t len = std::strlen(suffix);
    if (series.size() > len &&
        series.compare(series.size() - len, len, suffix) == 0) {
      std::string base = series.substr(0, series.size() - len);
      auto it = families.find(base);
      if (it != families.end() && it->second.type == "histogram") return base;
    }
  }
  return series;
}

class ConformanceTest : public ::testing::Test {
 protected:
  ConformanceTest() : stage_(&registry_) {
    // Real crawl-layer traffic so every family carries samples.
    stage_.AddFetchMicros(1200);
    stage_.RecordBatch(8);
    stage_.ObserveClassifyBatchMicros(0);       // zero bucket
    stage_.ObserveClassifyBatchMicros(3);       // low bucket
    stage_.ObserveClassifyBatchMicros(900000);  // high bucket
    stage_.RecordPop(true);
    stage_.RecordFetchFailure(crawl::FailureClass::kTimeout);
    stage_.RecordRetry(crawl::FailureClass::kTimeout, 4.5);
    stage_.RecordDrop(true);
    stage_.RecordVisitRelevance(0.75);
    stage_.SetFrontierDepth(17);

    // Adversarial label value and help text exercising every escape the
    // format defines (backslash, double-quote, newline).
    registry_
        .GetCounter("conformance_nasty_total",
                    {{"path", "a\\b\"c\nd"}})
        ->Add(2);
    registry_.SetHelp("conformance_nasty_total", "line one\nline\\two");
  }

  MetricsRegistry registry_;
  crawl::StageMetrics stage_;
};

TEST_F(ConformanceTest, EveryTypeLineIsPrecededByItsHelpLine) {
  Exposition page(registry_.ToPrometheusText());
  ASSERT_FALSE(page.families().empty());
  for (const auto& [name, fam] : page.families()) {
    EXPECT_FALSE(fam.type.empty()) << name << " has HELP but no TYPE";
    EXPECT_TRUE(fam.has_help) << name << " is missing its # HELP line";
    EXPECT_TRUE(fam.help_before_type)
        << name << ": # HELP must immediately precede # TYPE";
  }
}

TEST_F(ConformanceTest, EverySampleBelongsToADeclaredFamily) {
  Exposition page(registry_.ToPrometheusText());
  ASSERT_FALSE(page.samples().empty());
  for (const Sample& s : page.samples()) {
    std::string family = FamilyOf(s.name, page.families());
    auto it = page.families().find(family);
    ASSERT_NE(it, page.families().end())
        << s.name << " has no # TYPE declaration";
    if (s.name != family) {
      EXPECT_EQ(it->second.type, "histogram");
    }
  }
}

TEST_F(ConformanceTest, CounterFamiliesEndWithTotal) {
  Exposition page(registry_.ToPrometheusText());
  int counters = 0;
  for (const auto& [name, fam] : page.families()) {
    if (fam.type != "counter") continue;
    ++counters;
    ASSERT_GE(name.size(), 6u);
    EXPECT_EQ(name.substr(name.size() - 6), "_total")
        << "counter family " << name << " must end in _total";
  }
  EXPECT_GT(counters, 5);  // the StageMetrics families are all present
}

TEST_F(ConformanceTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  Exposition page(registry_.ToPrometheusText());
  int histograms = 0;
  for (const auto& [name, fam] : page.families()) {
    if (fam.type != "histogram") continue;
    ++histograms;
    std::vector<Sample> buckets = page.SeriesNamed(name + "_bucket");
    std::vector<Sample> counts = page.SeriesNamed(name + "_count");
    std::vector<Sample> sums = page.SeriesNamed(name + "_sum");
    ASSERT_EQ(counts.size(), 1u) << name;
    ASSERT_EQ(sums.size(), 1u) << name;
    ASSERT_FALSE(buckets.empty()) << name;

    double prev = -1;
    double prev_le = -1;
    bool saw_inf = false;
    for (const Sample& b : buckets) {
      EXPECT_FALSE(saw_inf) << name << ": +Inf must be the last bucket";
      EXPECT_GE(b.value, prev) << name << ": buckets must be cumulative";
      prev = b.value;
      size_t le_pos = b.labels.find("le=\"");
      ASSERT_NE(le_pos, std::string::npos) << name << ": bucket without le";
      std::string le =
          b.labels.substr(le_pos + 4,
                          b.labels.find('"', le_pos + 4) - le_pos - 4);
      if (le == "+Inf") {
        saw_inf = true;
        EXPECT_EQ(b.value, counts[0].value)
            << name << ": +Inf bucket must equal _count";
      } else {
        double bound = std::strtod(le.c_str(), nullptr);
        EXPECT_GT(bound, prev_le) << name << ": le bounds must increase";
        prev_le = bound;
      }
    }
    EXPECT_TRUE(saw_inf) << name << " is missing its +Inf bucket";
    EXPECT_GE(sums[0].value, 0) << name;
  }
  // batch_pages, batch_micros and backoff_delay_ms at minimum.
  EXPECT_GE(histograms, 3);
}

TEST_F(ConformanceTest, LabelValuesAndHelpTextAreEscaped) {
  std::string page = registry_.ToPrometheusText();
  // The raw backslash, quote and newline must appear escaped in the
  // sample line...
  EXPECT_NE(page.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
  // ...and the help newline (plus the literal backslash) likewise.
  EXPECT_NE(page.find("# HELP conformance_nasty_total line one\\nline\\\\two"),
            std::string::npos);
  // No physical line may start inside a label block: every line is either
  // a comment or starts with a metric-name character.
  size_t start = 0;
  while (start < page.size()) {
    size_t end = page.find('\n', start);
    if (end == std::string::npos) end = page.size();
    std::string line = page.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    char c = line[0];
    EXPECT_TRUE(c == '#' || std::isalpha(static_cast<unsigned char>(c)) ||
                c == '_')
        << "line starts mid-record (unescaped newline?): " << line;
  }
}

TEST_F(ConformanceTest, EscapeHelpersMatchTheSpecExactly) {
  EXPECT_EQ(PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\nb"), "a\\nb");
  // Unlike JSON: control chars and UTF-8 pass through verbatim.
  EXPECT_EQ(PrometheusEscapeLabelValue("tab\there"), "tab\there");
  EXPECT_EQ(PrometheusEscapeLabelValue("caf\xc3\xa9"), "caf\xc3\xa9");
  // HELP escaping touches backslash and newline only.
  EXPECT_EQ(PrometheusEscapeHelp("a\"b"), "a\"b");
  EXPECT_EQ(PrometheusEscapeHelp("a\nb\\c"), "a\\nb\\\\c");
}

}  // namespace
}  // namespace focus::obs
