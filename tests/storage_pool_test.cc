// Sharded buffer pool: scan resistance, readahead, PageGuard semantics,
// batched device reads, and multi-threaded pin/unpin (run under TSan in
// the CI storage job).
//
// The replacement-policy tests pin down the 2Q properties the Figure 8
// benchmarks depend on: a sequential flood churns only once-used frames
// (hot index pages survive), and a hot-monopolized shard still admits
// readahead speculation (the bounded hot queue).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "util/string_util.h"

namespace focus::storage {
namespace {

// Seeds `n` pages through the pool (page i carries i at offset 0), flushes
// them to the device, and empties the pool so every later fetch starts cold.
std::vector<PageId> SeedPages(BufferPool* pool, int n) {
  std::vector<PageId> ids(n);
  for (int i = 0; i < n; ++i) {
    auto page = pool->NewPage(&ids[i]);
    EXPECT_TRUE(page.ok());
    page.value()->Write<uint32_t>(0, static_cast<uint32_t>(i));
    pool->UnpinPage(ids[i], true);
  }
  EXPECT_TRUE(pool->EvictAll().ok());
  pool->ResetStats();
  return ids;
}

TEST(BufferPoolShardingTest, AutoShardCountScalesWithFrames) {
  MemDiskManager disk;
  EXPECT_EQ(BufferPool(&disk, 16).num_shards(), 1u);    // small => exact LRU
  EXPECT_EQ(BufferPool(&disk, 256).num_shards(), 4u);   // one per 64 frames
  EXPECT_EQ(BufferPool(&disk, 4096).num_shards(), 8u);  // capped
  BufferPool explicit_pool(&disk, 64, BufferPool::Options{.shards = 3});
  EXPECT_EQ(explicit_pool.num_shards(), 3u);
}

TEST(BufferPoolShardingTest, ShardStatsSumToPoolStats) {
  MemDiskManager disk;
  BufferPool pool(&disk, 256, BufferPool::Options{.shards = 4});
  SeedPages(&pool, 300);
  for (PageId id = 0; id < 300; ++id) {
    ASSERT_TRUE(pool.FetchPage(id).ok());
    pool.UnpinPage(id, false);
  }
  BufferPool::Stats total = pool.stats();
  uint64_t fetches = 0, misses = 0, evictions = 0;
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    BufferPool::Stats sh = pool.shard_stats(s);
    fetches += sh.fetches;
    misses += sh.misses;
    evictions += sh.evictions;
    // Fibonacci hashing really spreads the contiguous run.
    EXPECT_GT(sh.fetches, 0u) << "shard " << s << " saw no traffic";
  }
  EXPECT_EQ(fetches, total.fetches);
  EXPECT_EQ(misses, total.misses);
  EXPECT_EQ(evictions, total.evictions);
}

TEST(BufferPoolScanResistanceTest, SequentialFloodCannotEvictHotPages) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);  // single shard: policy-observable
  std::vector<PageId> ids = SeedPages(&pool, 80);

  // Heat two pages (an index root and an upper level, say): two fetches
  // each puts them in the hot class, and two hot frames are well under
  // the half-shard hot budget.
  for (int round = 0; round < 2; ++round) {
    for (PageId id : {ids[0], ids[1]}) {
      ASSERT_TRUE(pool.FetchPage(id).ok());
      pool.UnpinPage(id, false);
    }
  }

  // A sequential flood an order of magnitude larger than the pool: every
  // page fetched exactly once churns through the A1 class only.
  for (int i = 2; i < 80; ++i) {
    ASSERT_TRUE(pool.FetchPage(ids[i]).ok());
    pool.UnpinPage(ids[i], false);
  }

  uint64_t misses_before = pool.stats().misses;
  for (PageId id : {ids[0], ids[1]}) {
    auto page = pool.FetchPage(id);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page.value()->Read<uint32_t>(0), id);
    pool.UnpinPage(id, false);
  }
  EXPECT_EQ(pool.stats().misses, misses_before)
      << "the flood evicted a hot page";
}

TEST(BufferPoolScanResistanceTest, BoundedHotQueueStillAdmitsSpeculation) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  std::vector<PageId> ids = SeedPages(&pool, 16);

  // Monopolize the shard: every frame hot (fetched twice). Without the
  // half-shard bound on the hot class nothing would be evictable ahead
  // of speculation and prefetched pages would be destroyed on arrival.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(pool.FetchPage(ids[i]).ok());
      pool.UnpinPage(ids[i], false);
    }
  }

  pool.Prefetch(ids[8], 4);
  EXPECT_EQ(pool.stats().readahead_issued, 4u);
  uint64_t misses_before = pool.stats().misses;
  for (int i = 8; i < 12; ++i) {
    auto page = pool.FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page.value()->Read<uint32_t>(0), static_cast<uint32_t>(i));
    pool.UnpinPage(ids[i], false);
  }
  EXPECT_EQ(pool.stats().misses, misses_before)
      << "speculation was evicted before use";
  EXPECT_EQ(pool.stats().readahead_used, 4u);
}

TEST(BufferPoolReadaheadTest, AscendingMissStreamIsDetectedAndCovered) {
  MemDiskManager disk;
  BufferPool pool(&disk, 64,
                  BufferPool::Options{.readahead_window = 8,
                                      .auto_readahead = true});
  std::vector<PageId> ids = SeedPages(&pool, 200);

  for (int i = 0; i < 200; ++i) {
    auto page = pool.FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page.value()->Read<uint32_t>(0), static_cast<uint32_t>(i));
    pool.UnpinPage(ids[i], false);
  }
  BufferPool::Stats s = pool.stats();
  // Startup costs a couple of misses; after that the stream's issued edge
  // extends ahead of the consumer and everything is a prefetched hit.
  EXPECT_LE(s.misses, 10u);
  EXPECT_GE(s.readahead_used, 180u);
  EXPECT_GT(s.hit_ratio(), 0.9);
  // The issued-edge bookkeeping reads each swept page at most once.
  EXPECT_LE(s.readahead_issued, 220u);
  // Batched: far fewer vector ops than pages read.
  EXPECT_LE(disk.stats().batch_reads, 40u);
}

TEST(BufferPoolReadaheadTest, PrefetchIsAdvisoryPastDeviceEnd) {
  MemDiskManager disk;
  BufferPool pool(&disk, 16);
  std::vector<PageId> ids = SeedPages(&pool, 8);
  pool.Prefetch(ids[4], 100);  // window runs past the device: clamped
  EXPECT_EQ(pool.stats().readahead_issued, 4u);
  pool.Prefetch(1000, 8);  // entirely unallocated: a no-op, not an error
  EXPECT_EQ(pool.stats().readahead_issued, 4u);
}

TEST(BufferPoolPinningTest, FetchFailsOnlyWhileShardFullyPinned) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);  // one shard of four frames
  std::vector<PageId> ids = SeedPages(&pool, 5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.FetchPage(ids[i]).ok());
  }
  auto r = pool.FetchPage(ids[4]);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  pool.Prefetch(ids[4], 1);  // advisory: swallowed, not an error

  pool.UnpinPage(ids[0], false);
  auto again = pool.FetchPage(ids[4]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->Read<uint32_t>(0), 4u);
  pool.UnpinPage(ids[4], false);
  for (int i = 1; i < 4; ++i) pool.UnpinPage(ids[i], false);
}

TEST(BufferPoolPinningTest, FullyPinnedShardStealsFrameFromNeighbour) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8, BufferPool::Options{.shards = 2});
  std::vector<PageId> ids = SeedPages(&pool, 32);
  // Replicate ShardOf's Fibonacci hash to collect pages of one shard.
  auto shard_of = [](PageId id) {
    return (static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull >> 32) % 2;
  };
  std::vector<PageId> same;
  for (PageId id : ids) {
    if (shard_of(id) == shard_of(ids[0])) same.push_back(id);
  }
  // Two shards of four frames: the fifth pin overflows its shard and must
  // be served by stealing a frame from the other (entirely idle) shard.
  ASSERT_GE(same.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    auto page = pool.FetchPage(same[i]);
    ASSERT_TRUE(page.ok()) << "pin " << i << ": " << page.status().message();
    EXPECT_EQ(page.value()->Read<uint32_t>(0), same[i]);
  }
  for (size_t i = 0; i < 5; ++i) pool.UnpinPage(same[i], false);
}

TEST(BufferPoolPinningTest, PinCapacityIsPoolGlobal) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8, BufferPool::Options{.shards = 2});
  std::vector<PageId> ids = SeedPages(&pool, 9);
  // However the hash distributes pages over shards, callers may hold
  // num_frames concurrent pins — the guarantee of the pre-sharding pool.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.FetchPage(ids[i]).ok()) << "pin " << i;
  }
  // Only a truly full pool refuses.
  auto r = pool.FetchPage(ids[8]);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  for (int i = 0; i < 8; ++i) pool.UnpinPage(ids[i], false);
}

TEST(PageGuardTest, MoveConstructionTransfersThePin) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  std::vector<PageId> ids = SeedPages(&pool, 1);
  {
    PageGuard a(&pool, ids[0]);
    ASSERT_TRUE(a.ok());
    PageGuard b(std::move(a));
    EXPECT_FALSE(a.ok());  // moved-from: released, double-unpin impossible
    EXPECT_TRUE(b.ok());
    EXPECT_EQ(b.page()->Read<uint32_t>(0), 0u);
  }  // exactly one unpin happens here
  // The page is now unpinned: a full pool can evict it.
  ASSERT_TRUE(pool.EvictAll().ok());
}

TEST(PageGuardTest, MoveAssignmentReleasesTheOldPin) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  std::vector<PageId> ids = SeedPages(&pool, 2);
  PageGuard a(&pool, ids[0]);
  PageGuard b(&pool, ids[1]);
  ASSERT_TRUE(a.ok() && b.ok());
  a = std::move(b);  // must unpin ids[0], then own ids[1]
  EXPECT_EQ(a.id(), ids[1]);
  EXPECT_FALSE(b.ok());
  a.Release();
  a.Release();  // idempotent
  // Both pins are gone: EvictAll (which skips pinned frames) empties the
  // pool, so a re-fetch of either page is a cold miss.
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();
  ASSERT_TRUE(pool.FetchPage(ids[0]).ok());
  pool.UnpinPage(ids[0], false);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(PageGuardTest, DirtyMarkSurvivesReleaseAndRepin) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  std::vector<PageId> ids = SeedPages(&pool, 1);
  {
    PageGuard g(&pool, ids[0]);
    ASSERT_TRUE(g.ok());
    g.page()->Write<uint32_t>(0, 4242);
    g.MarkDirty();
    // A second, clean pin of the same page released after the dirty one
    // must not wash out the dirty mark (the pool merges, never clears).
    PageGuard clean(&pool, ids[0]);
    ASSERT_TRUE(clean.ok());
    g.Release();
    clean.Release();
  }
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();
  PageGuard back(&pool, ids[0]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.page()->Read<uint32_t>(0), 4242u);
  EXPECT_EQ(pool.stats().misses, 1u);  // really re-read from the device
}

TEST(PageGuardTest, FailedFetchReportsStatus) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  PageGuard g(&pool, 123);  // unallocated
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.page(), nullptr);
  g.Release();  // safe on a failed guard
}

#ifdef FOCUS_SANITIZE
TEST(BufferPoolSanitizeDeathTest, UnbalancedUnpinAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  PageId id;
  ASSERT_TRUE(pool.NewPage(&id).ok());
  pool.UnpinPage(id, true);
  EXPECT_DEATH(pool.UnpinPage(id, false), "without a matching pin");
}
#endif

TEST(BufferPoolConcurrencyTest, ParallelPinUnpinKeepsContentsIntact) {
  constexpr int kThreads = 8;
  constexpr int kPages = 512;
  constexpr int kIters = 4000;
  MemDiskManager disk;
  BufferPool pool(&disk, 256, BufferPool::Options{.shards = 4});
  std::vector<PageId> ids = SeedPages(&pool, kPages);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x9E3779B9u * (t + 1);
      for (int i = 0; i < kIters; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        PageId id = ids[(state >> 33) % kPages];
        auto page = pool.FetchPage(id);
        if (!page.ok()) {  // transiently full shard is legal under load
          continue;
        }
        bool dirty = false;
        if (page.value()->Read<uint32_t>(0) != id) failures.fetch_add(1);
        if (i % 7 == t % 7) {
          // Scribble in a thread-private slot; offset 0 stays the page id.
          page.value()->Write<uint32_t>(64 + 4 * t, uint32_t(i));
          dirty = true;
        }
        pool.UnpinPage(id, dirty);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(pool.FlushAll().ok());
  // Every page still carries its id after the storm.
  for (int i = 0; i < kPages; ++i) {
    auto page = pool.FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page.value()->Read<uint32_t>(0), static_cast<uint32_t>(i));
    pool.UnpinPage(ids[i], false);
  }
}

TEST(BufferPoolConcurrencyTest, PrefetchNeverResurrectsStalePages) {
  // One thread keeps prefetching the whole range while writers modify
  // pages through a pool far smaller than the working set, so dirty
  // write-backs race the prefetcher's batch reads constantly. A prefetch
  // that installs its pre-write-back read as a clean resident frame
  // surfaces as a lost update: each writer's private slot must always
  // read back exactly what that writer last wrote.
  constexpr int kPages = 64;
  constexpr int kWriters = 4;
  constexpr int kIters = 20000;
  MemDiskManager disk;
  BufferPool pool(&disk, 16, BufferPool::Options{.shards = 2});
  std::vector<PageId> ids = SeedPages(&pool, kPages);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread prefetcher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // One whole-range batch: the long install loop (64 latched installs
      // racing the writers) is the window a modify+evict cycle must beat.
      pool.Prefetch(ids[0], kPages);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      uint64_t state = 0x12345u + t;
      std::vector<uint32_t> last(kPages, 0);
      for (int i = 0; i < kIters; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        size_t idx = (state >> 33) % kPages;
        auto page = pool.FetchPage(ids[idx]);
        if (!page.ok()) continue;  // transiently full shard: legal
        uint32_t v = page.value()->Read<uint32_t>(8 + 4 * t);
        if (v != last[idx]) failures.fetch_add(1);
        last[idx] = v + 1;
        page.value()->Write<uint32_t>(8 + 4 * t, v + 1);
        pool.UnpinPage(ids[idx], true);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  prefetcher.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(BufferPoolConcurrencyTest, ConcurrentReadaheadAndFetchesAgree) {
  // Threads walk disjoint ascending ranges through one auto-readahead
  // pool: stream detection, prefetch installs and hits race on the shard
  // latches. Contents must stay correct and the pool balanced.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 256;
  MemDiskManager disk;
  BufferPool pool(&disk, 256,
                  BufferPool::Options{.shards = 4,
                                      .readahead_window = 8,
                                      .auto_readahead = true});
  std::vector<PageId> ids = SeedPages(&pool, kThreads * kPerThread);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        PageId id = ids[t * kPerThread + i];
        auto page = pool.FetchPage(id);
        if (!page.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (page.value()->Read<uint32_t>(0) != id) failures.fetch_add(1);
        pool.UnpinPage(id, false);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(MemDiskManagerBatchedReadTest, ReadPagesMatchesPerPageReads) {
  MemDiskManager disk;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(disk.AllocatePage().ok());
    Page p;
    p.Zero();
    p.Write<uint32_t>(0, 1000 + i);
    ASSERT_TRUE(disk.WritePage(i, p.data).ok());
  }
  std::vector<char> buf(6 * kPageSize);
  ASSERT_TRUE(disk.ReadPages(2, 6, buf.data()).ok());
  for (int i = 0; i < 6; ++i) {
    uint32_t v;
    std::memcpy(&v, buf.data() + static_cast<size_t>(i) * kPageSize,
                sizeof v);
    EXPECT_EQ(v, 1002u + i);
  }
  EXPECT_EQ(disk.stats().batch_reads, 1u);
  EXPECT_EQ(disk.stats().reads, 6u);  // batched reads count per page
  // The whole run must be allocated.
  EXPECT_EQ(disk.ReadPages(8, 4, buf.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(disk.ReadPages(3, 0, buf.data()).ok());  // empty run: no-op
}

TEST(WalBatchedReadTest, OverlayPagesSplitTheForwardedRuns) {
  MemDiskManager data, log;
  auto wal = WalDiskManager::Open(&data, &log).TakeValue();
  Page img;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(wal->AllocatePage().ok());
    img.Zero();
    img.Write<uint32_t>(0, 500 + i);
    ASSERT_TRUE(wal->WritePage(i, img.data).ok());
  }
  ASSERT_TRUE(wal->Commit("m").ok());
  // Everything is still overlay-resident: a batched read is served from
  // memory, no data-device I/O at all.
  std::vector<char> buf(8 * kPageSize);
  uint64_t dev_batches = data.stats().batch_reads;
  uint64_t dev_reads = data.stats().reads;
  ASSERT_TRUE(wal->ReadPages(0, 8, buf.data()).ok());
  EXPECT_EQ(data.stats().batch_reads, dev_batches);
  EXPECT_EQ(data.stats().reads, dev_reads);

  // Checkpoint folds the overlay down; re-dirty page 3 only. A batched
  // read of [0, 8) must now split into two device runs around the overlay
  // page: [0, 3) and [4, 8).
  ASSERT_TRUE(wal->Checkpoint("m").ok());
  img.Zero();
  img.Write<uint32_t>(0, 9999);
  ASSERT_TRUE(wal->WritePage(3, img.data).ok());
  dev_batches = data.stats().batch_reads;
  ASSERT_TRUE(wal->ReadPages(0, 8, buf.data()).ok());
  EXPECT_EQ(data.stats().batch_reads, dev_batches + 2);
  for (int i = 0; i < 8; ++i) {
    uint32_t v;
    std::memcpy(&v, buf.data() + static_cast<size_t>(i) * kPageSize,
                sizeof v);
    EXPECT_EQ(v, i == 3 ? 9999u : 500u + i) << "page " << i;
  }
  // Past the committed horizon the batched read fails like ReadPage does.
  EXPECT_FALSE(wal->ReadPages(6, 4, buf.data()).ok());
}

TEST(BufferPoolMetricsTest, PerShardSamplesExport) {
  obs::MetricsRegistry registry;
  MemDiskManager disk;
  BufferPool pool(&disk, 128, BufferPool::Options{.shards = 2});
  pool.BindMetrics(&registry, "test_pool");
  SeedPages(&pool, 32);
  for (PageId id = 0; id < 32; ++id) {
    ASSERT_TRUE(pool.FetchPage(id).ok());
    pool.UnpinPage(id, false);
  }
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("focus_bufferpool_hit_ratio"), std::string::npos);
  EXPECT_NE(json.find("focus_bufferpool_readahead_issued_total"),
            std::string::npos);
  EXPECT_NE(json.find("focus_bufferpool_shard_fetches_total"),
            std::string::npos);
  EXPECT_NE(json.find("focus_disk_batch_reads_total"), std::string::npos);
  EXPECT_NE(json.find("\"shard\""), std::string::npos);
}

}  // namespace
}  // namespace focus::storage
