// Golden tests: tiny hand-computed instances pinning the paper's exact
// formulas — Equation 1's smoothing, Figure 2's scoring, Equation 3's
// relevance, and one Figure-4 distillation iteration.
#include <gtest/gtest.h>

#include <cmath>

#include "classify/hierarchical_classifier.h"
#include "classify/trainer.h"
#include "distill/hits.h"
#include "taxonomy/taxonomy.h"
#include "text/document.h"
#include "util/hash.h"

namespace focus::classify {
namespace {

using taxonomy::Cid;
using taxonomy::Taxonomy;

// Two leaves under the root. Training:
//   leaf a: one document "x x y"   (n=3)
//   leaf b: one document "y z"     (n=2)
// Vocabulary at the root: {x, y, z}, |V| = 3.
// Equation 1:
//   theta(a, x) = (1+2)/(3+3) = 1/2;  theta(a, y) = (1+1)/6 = 1/3
//   theta(a, z) = 1/6 (smoothed default)
//   theta(b, y) = (1+1)/(3+2) = 2/5;  theta(b, z) = 2/5;  theta(b, x) = 1/5
// Priors: 1/2 each.
class GoldenClassifierTest : public testing::Test {
 protected:
  GoldenClassifierTest() {
    a_ = tax_.AddTopic(taxonomy::kRootCid, "a").value();
    b_ = tax_.AddTopic(taxonomy::kRootCid, "b").value();
    std::vector<LabeledDocument> train = {
        {1, a_, text::BuildTermVector({"x", "x", "y"})},
        {2, b_, text::BuildTermVector({"y", "z"})}};
    Trainer trainer(TrainerOptions{.max_features_per_node = 100,
                                   .min_document_frequency = 1});
    auto model = trainer.Train(tax_, train);
    EXPECT_TRUE(model.ok()) << model.status();
    model_ = model.TakeValue();
  }

  double Theta(Cid child, const char* term) const {
    const NodeModel* node = model_.NodeFor(taxonomy::kRootCid);
    EXPECT_NE(node, nullptr);
    auto it = node->stats.find(TermId(term));
    if (it != node->stats.end()) {
      for (const ChildStat& cs : it->second) {
        if (cs.kcid == child) return std::exp(cs.logtheta);
      }
    }
    // Smoothed default: 1/denominator.
    return std::exp(-model_.logdenom[child]);
  }

  Taxonomy tax_;
  Cid a_, b_;
  ClassifierModel model_;
};

TEST_F(GoldenClassifierTest, Equation1Estimates) {
  EXPECT_NEAR(Theta(a_, "x"), 0.5, 1e-12);
  EXPECT_NEAR(Theta(a_, "y"), 1.0 / 3, 1e-12);
  EXPECT_NEAR(Theta(a_, "z"), 1.0 / 6, 1e-12);
  EXPECT_NEAR(Theta(b_, "x"), 0.2, 1e-12);
  EXPECT_NEAR(Theta(b_, "y"), 0.4, 1e-12);
  EXPECT_NEAR(Theta(b_, "z"), 0.4, 1e-12);
  EXPECT_NEAR(std::exp(model_.logprior[a_]), 0.5, 1e-12);
  EXPECT_NEAR(std::exp(model_.logprior[b_]), 0.5, 1e-12);
}

TEST_F(GoldenClassifierTest, Figure2PosteriorOnTestDocument) {
  // Test document "x y":
  //   Pr[d|a] ∝ (1/2)(1/3) = 1/6;  Pr[d|b] ∝ (1/5)(2/5) = 2/25.
  //   With equal priors: Pr[a|d] = (1/6) / (1/6 + 2/25) = 25/37.
  HierarchicalClassifier clf(&tax_, &model_);
  ClassScores scores = clf.Classify(text::BuildTermVector({"x", "y"}));
  EXPECT_NEAR(scores.Prob(a_), 25.0 / 37, 1e-9);
  EXPECT_NEAR(scores.Prob(b_), 12.0 / 37, 1e-9);
  EXPECT_EQ(scores.BestLeaf(tax_), a_);
}

TEST_F(GoldenClassifierTest, Equation3Relevance) {
  ASSERT_TRUE(tax_.MarkGood(b_).ok());
  HierarchicalClassifier clf(&tax_, &model_);
  // R(d) = Pr[b|d] = 12/37 for "x y".
  EXPECT_NEAR(clf.Relevance(text::BuildTermVector({"x", "y"})), 12.0 / 37,
              1e-9);
}

TEST_F(GoldenClassifierTest, TermFrequencyExponentiates) {
  // "x x x" vs "x": the frequency multiplies the log-theta contribution.
  HierarchicalClassifier clf(&tax_, &model_);
  ClassScores one = clf.Classify(text::BuildTermVector({"x"}));
  ClassScores three = clf.Classify(text::BuildTermVector({"x", "x", "x"}));
  // Pr[a | "x"] = (1/2) / (1/2 + 1/5) = 5/7.
  EXPECT_NEAR(one.Prob(a_), 5.0 / 7, 1e-9);
  // Pr[a | "xxx"] = (1/8) / (1/8 + 1/125) = 125/133.
  EXPECT_NEAR(three.Prob(a_), 125.0 / 133, 1e-9);
}

}  // namespace
}  // namespace focus::classify

namespace focus::distill {
namespace {

TEST(GoldenHitsTest, OneIterationByHand) {
  // Graph: 1 -> 3, 2 -> 3, 2 -> 4; all off-server; weights:
  //   wgt_fwd(1,3)=0.8, wgt_fwd(2,3)=0.6, wgt_fwd(2,4)=1.0
  //   wgt_rev(1,3)=0.5, wgt_rev(2,3)=0.9, wgt_rev(2,4)=0.2
  // Init h = 1 everywhere. UpdateAuth:
  //   a(3) = h1*0.8 + h2*0.6 = 1.4;  a(4) = h2*1.0 = 1.0; total 2.4
  //   -> a(3)=7/12, a(4)=5/12
  // UpdateHubs:
  //   h(1) = a(3)*0.5 = 7/24; h(2) = a(3)*0.9 + a(4)*0.2 = 7.3/12... :
  //   h(2) = (7/12)*0.9 + (5/12)*0.2 = 6.3/12 + 1/12 = 7.3/12
  //   total = 7/24 + 14.6/24 = 21.6/24 -> h(1)=7/21.6, h(2)=14.6/21.6
  std::vector<WeightedEdge> edges = {{1, 10, 3, 30, 0.8, 0.5},
                                     {2, 20, 3, 30, 0.6, 0.9},
                                     {2, 20, 4, 40, 1.0, 0.2}};
  std::unordered_map<uint64_t, double> rel = {{1, 1}, {2, 1}, {3, 1},
                                              {4, 1}};
  HitsEngine engine(edges, rel);
  auto scores = engine.Run({.iterations = 1, .rho = 0.0});
  EXPECT_NEAR(scores[3].auth, 7.0 / 12, 1e-12);
  EXPECT_NEAR(scores[4].auth, 5.0 / 12, 1e-12);
  EXPECT_NEAR(scores[1].hub, 7.0 / 21.6, 1e-12);
  EXPECT_NEAR(scores[2].hub, 14.6 / 21.6, 1e-12);
}

}  // namespace
}  // namespace focus::distill
