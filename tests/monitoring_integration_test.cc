// Integration test of the §3.7 "mutual funds" story: a soft-focus crawl on
// the narrow topic shows a depressed harvest; the census query diagnoses a
// general-investing neighbourhood; marking the ancestor good recovers the
// harvest. (The runnable narrative lives in examples/crawl_monitoring.cc;
// this test pins the behaviour.)
#include <gtest/gtest.h>

#include <algorithm>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "crawl/metrics.h"
#include "crawl/monitor.h"

namespace focus::core {
namespace {

using crawl::CrawlerOptions;
using taxonomy::Cid;

double TailHarvest(const std::vector<crawl::Visit>& visits) {
  double sum = 0;
  size_t start = visits.size() / 2;
  for (size_t i = start; i < visits.size(); ++i) sum += visits[i].relevance;
  return sum / (visits.size() - start);
}

TEST(MonitoringIntegrationTest, CensusDiagnosesAndAncestorMarkFixes) {
  taxonomy::Taxonomy tax = BuildSampleTaxonomy();
  Cid funds = tax.FindByName("mutual_funds").value();
  Cid investing = tax.FindByName("investing_general").value();
  FocusOptions options;
  options.seed = 61;
  options.web.pages_per_topic = 400;
  options.web.background_pages = 20000;
  options.web.background_servers = 500;
  auto system =
      FocusSystem::Create(std::move(tax), options,
                          {webgraph::TopicAffinity{funds, investing, 0.2},
                           webgraph::TopicAffinity{investing, funds, 0.1}})
          .TakeValue();
  ASSERT_TRUE(system->MarkGood("mutual_funds").ok());
  ASSERT_TRUE(system->Train().ok());
  auto seeds = system->web().KeywordSeeds(funds, 8);

  CrawlerOptions copts;
  copts.max_fetches = 800;
  auto drooping = system->NewCrawl(seeds, copts).TakeValue();
  ASSERT_TRUE(drooping->crawler().Crawl().ok());
  double drooping_harvest = TailHarvest(drooping->crawler().visits());

  // Census: the biggest neighbouring class among visited pages must be a
  // business-category sibling (the diagnosis).
  auto census = crawl::ClassCensus(drooping->db(), system->tax());
  ASSERT_TRUE(census.ok());
  ASSERT_GE(census.value().size(), 2u);
  // Ignore the target class itself; find the largest other class.
  std::string biggest_other;
  int64_t biggest_count = 0;
  for (const auto& row : census.value()) {
    if (row.kcid == funds) continue;
    if (row.count > biggest_count) {
      biggest_count = row.count;
      biggest_other = row.name;
    }
  }
  EXPECT_TRUE(biggest_other == "investing_general" ||
              biggest_other == "banking" || biggest_other == "insurance" ||
              biggest_other == "startups" ||
              biggest_other == "real_estate")
      << "diagnosed neighbour was " << biggest_other;

  // The fix: one marking update on the ancestor.
  system->mutable_tax()->ClearMarks();
  ASSERT_TRUE(system->MarkGood("business").ok());
  auto fixed = system->NewCrawl(seeds, copts).TakeValue();
  ASSERT_TRUE(fixed->crawler().Crawl().ok());
  double fixed_harvest = TailHarvest(fixed->crawler().visits());

  EXPECT_GT(fixed_harvest, drooping_harvest + 0.1);
  EXPECT_GT(fixed_harvest, 1.5 * drooping_harvest);
}

TEST(MonitoringIntegrationTest, MissedHubNeighborsFlowsFromDistillation) {
  // After a crawl + distillation, the §3.7 hub-neighbour query returns
  // unvisited pages cited by top hubs — candidates the crawler was
  // neglecting.
  taxonomy::Taxonomy tax = BuildSampleTaxonomy();
  FocusOptions options;
  options.seed = 67;
  options.web.pages_per_topic = 400;
  options.web.background_pages = 10000;
  options.web.background_servers = 300;
  auto system = FocusSystem::Create(std::move(tax), options).TakeValue();
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 250;  // small budget: plenty of unvisited citations
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  auto result = session->Distill({.iterations = 10, .rho = 0.2}, 10);
  ASSERT_TRUE(result.ok());

  auto missed = crawl::MissedHubNeighbors(
      session->db(), session->distill_tables().hubs, 0.9);
  ASSERT_TRUE(missed.ok());
  ASSERT_FALSE(missed.value().empty());
  for (const auto& rec : missed.value()) {
    EXPECT_FALSE(rec.visited);
    EXPECT_EQ(rec.numtries, 0);
  }
  // Sorted by estimated relevance, descending.
  for (size_t i = 1; i < missed.value().size(); ++i) {
    EXPECT_GE(missed.value()[i - 1].relevance,
              missed.value()[i].relevance);
  }
}

}  // namespace
}  // namespace focus::core
