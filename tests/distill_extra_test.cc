// Distillation extras: edge-weight assignment, ablation flags, ranking
// determinism, degenerate graphs, and dangling-edge tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <unordered_set>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "distill/distiller.h"
#include "distill/hits.h"
#include "distill/join_distiller.h"
#include "distill/pagerank.h"
#include "obs/metrics.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/random.h"

namespace focus::distill {
namespace {

TEST(AssignWeightsTest, MapsEndpointRelevances) {
  std::vector<WeightedEdge> edges = {
      {1, 10, 2, 20, 0, 0}, {2, 20, 3, 30, 0, 0}};
  AssignRelevanceWeights({{1, 0.9}, {2, 0.5}}, &edges);
  EXPECT_DOUBLE_EQ(edges[0].wgt_fwd, 0.5);  // R(dst=2)
  EXPECT_DOUBLE_EQ(edges[0].wgt_rev, 0.9);  // R(src=1)
  EXPECT_DOUBLE_EQ(edges[1].wgt_fwd, 0.0);  // R(3) unknown -> 0
  EXPECT_DOUBLE_EQ(edges[1].wgt_rev, 0.5);
}

TEST(HitsAblationTest, NepotismFlagChangesScores) {
  // Same-server edge from 1 to 2 plus off-server edge from 3 to 2.
  std::vector<WeightedEdge> edges = {{1, 5, 2, 5, 1, 1},
                                     {3, 7, 2, 8, 1, 1}};
  std::unordered_map<uint64_t, double> rel = {{1, 1}, {2, 1}, {3, 1}};
  HitsEngine engine(edges, rel);
  auto with = engine.Run({.iterations = 5, .rho = 0, .nepotism_filter =
                              true});
  auto without = engine.Run({.iterations = 5, .rho = 0,
                             .nepotism_filter = false});
  // With the filter, only node 3 hubs; without it node 1 also does.
  EXPECT_EQ(with[1].hub, 0.0);
  EXPECT_GT(without[1].hub, 0.0);
  EXPECT_NEAR(without[1].hub + without[3].hub, 1.0, 1e-9);
}

TEST(HitsRankingTest, TopListsDeterministicUnderTies) {
  std::unordered_map<uint64_t, HubAuthScore> scores;
  for (uint64_t oid = 1; oid <= 10; ++oid) {
    scores[oid] = HubAuthScore{0.1, 0.1};  // all tied
  }
  auto hubs = HitsEngine::TopHubs(scores, 5);
  ASSERT_EQ(hubs.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(hubs[i].first, i + 1);
  auto auths = HitsEngine::TopAuthorities(scores, 3);
  EXPECT_EQ(auths[0].first, 1u);
}

TEST(HitsDegenerateTest, EmptyGraph) {
  HitsEngine engine({}, {});
  auto scores = engine.Run({.iterations = 5});
  EXPECT_TRUE(scores.empty());
}

TEST(HitsDegenerateTest, AllEdgesFiltered) {
  // Every destination fails the rho filter: scores must not blow up.
  std::vector<WeightedEdge> edges = {{1, 1, 2, 2, 1, 1}};
  HitsEngine engine(edges, {{1, 0.1}, {2, 0.1}});
  auto scores = engine.Run({.iterations = 5, .rho = 0.9});
  EXPECT_EQ(scores[2].auth, 0.0);
  EXPECT_EQ(scores[1].hub, 0.0);
}

TEST(HitsConvergenceTest, ScoresStabilizeAcrossIterations) {
  Rng rng(13);
  std::vector<WeightedEdge> edges;
  std::unordered_map<uint64_t, double> rel;
  for (int i = 0; i < 400; ++i) {
    uint64_t u = 1 + rng.Uniform(60), v = 1 + rng.Uniform(60);
    if (u == v) continue;
    edges.push_back({u, static_cast<int32_t>(u % 11), v,
                     static_cast<int32_t>(v % 11), 0, 0});
    rel[u] = 1;
    rel[v] = 1;
  }
  AssignRelevanceWeights(rel, &edges);
  HitsEngine engine(edges, rel);
  auto s20 = engine.Run({.iterations = 20});
  auto s40 = engine.Run({.iterations = 40});
  for (const auto& [oid, s] : s20) {
    EXPECT_NEAR(s.hub, s40[oid].hub, 1e-6) << oid;
    EXPECT_NEAR(s.auth, s40[oid].auth, 1e-6) << oid;
  }
}

// A miniature crawl database for dangling-edge tests: CRAWL stand-in
// (oid, relevance, by_oid) plus the full 6-column LINK schema.
struct MiniGraph {
  storage::MemDiskManager disk;
  storage::BufferPool pool{&disk, 256};
  sql::Catalog catalog{&pool};
  DistillTables tables;

  MiniGraph() {
    using sql::IndexSpec;
    using sql::TypeId;
    tables.crawl =
        catalog
            .CreateTable("CRAWL",
                         sql::Schema({{"oid", TypeId::kInt64},
                                      {"relevance", TypeId::kDouble}}),
                         {IndexSpec{"by_oid", {0}, {}}})
            .TakeValue();
    tables.link =
        catalog
            .CreateTable("LINK",
                         sql::Schema({{"oid_src", TypeId::kInt64},
                                      {"sid_src", TypeId::kInt32},
                                      {"oid_dst", TypeId::kInt64},
                                      {"sid_dst", TypeId::kInt32},
                                      {"wgt_fwd", TypeId::kDouble},
                                      {"wgt_rev", TypeId::kDouble}}),
                         {})
            .TakeValue();
    EXPECT_TRUE(CreateHubsAuthTables(&catalog, &tables).ok());
  }

  void AddPage(int64_t oid, double relevance) {
    EXPECT_TRUE(tables.crawl
                    ->Insert(sql::Tuple({sql::Value::Int64(oid),
                                         sql::Value::Double(relevance)}))
                    .ok());
  }
  void AddEdge(int64_t src, int64_t dst, double weight = 1.0) {
    // Distinct sids (src*10 vs dst*10) keep the nepotism filter out of
    // the way.
    EXPECT_TRUE(
        tables.link
            ->Insert(sql::Tuple(
                {sql::Value::Int64(src),
                 sql::Value::Int32(static_cast<int32_t>(src * 10)),
                 sql::Value::Int64(dst),
                 sql::Value::Int32(static_cast<int32_t>(dst * 10)),
                 sql::Value::Double(weight), sql::Value::Double(weight)}))
            .ok());
  }
};

TEST(JoinDanglingTest, ToleratesAndCountsDanglingEndpoints) {
  MiniGraph g;
  g.AddPage(1, 1.0);
  g.AddPage(2, 1.0);
  g.AddPage(3, 1.0);
  g.AddEdge(1, 2);  // both endpoints known
  g.AddEdge(3, 2);  // both endpoints known
  g.AddEdge(1, 9);  // dangling dst (9 purged from CRAWL)
  g.AddEdge(9, 2);  // dangling src
  g.AddEdge(8, 9);  // both endpoints dangling

  JoinDistiller distiller(g.tables);
  ASSERT_TRUE(distiller.Run({.iterations = 3, .rho = 0.0}).ok());

  EXPECT_EQ(distiller.stats().dangling_src_edges, 2u);  // 9->2, 8->9
  EXPECT_EQ(distiller.stats().dangling_dst_edges, 2u);  // 1->9, 8->9
  EXPECT_EQ(distiller.stats().nonfinite_scores, 0u);

  // The surviving subgraph still scores: hubs 1 and 3 cite authority 2.
  auto hubs = CollectScores(g.tables.hubs).TakeValue();
  auto auth = CollectScores(g.tables.auth).TakeValue();
  for (const auto& [oid, score] : hubs) EXPECT_TRUE(std::isfinite(score));
  for (const auto& [oid, score] : auth) EXPECT_TRUE(std::isfinite(score));
  EXPECT_GT(hubs[1], 0.0);
  EXPECT_GT(auth[2], 0.0);

  // The counts export as labeled gauges.
  obs::MetricsRegistry registry;
  distiller.ExportMetrics(&registry, "test");
  EXPECT_DOUBLE_EQ(
      registry
          .GetGauge("focus_distill_dangling_edges",
                    {{"distiller", "test"}, {"endpoint", "src"}})
          ->Value(),
      2.0);
  EXPECT_DOUBLE_EQ(
      registry
          .GetGauge("focus_distill_dangling_edges",
                    {{"distiller", "test"}, {"endpoint", "dst"}})
          ->Value(),
      2.0);
}

TEST(JoinDanglingTest, NonFiniteWeightsAreClampedNotPropagated) {
  MiniGraph g;
  g.AddPage(1, 1.0);
  g.AddPage(2, 1.0);
  g.AddPage(3, 1.0);
  g.AddEdge(1, 2);
  // A corrupt edge weight would otherwise ride through sum() and turn the
  // whole normalized vector into NaN.
  g.AddEdge(3, 2, std::numeric_limits<double>::infinity());

  JoinDistiller distiller(g.tables);
  ASSERT_TRUE(distiller.Run({.iterations = 2, .rho = 0.0}).ok());

  EXPECT_GT(distiller.stats().nonfinite_scores, 0u);
  auto hubs = CollectScores(g.tables.hubs).TakeValue();
  auto auth = CollectScores(g.tables.auth).TakeValue();
  for (const auto& [oid, score] : hubs) {
    EXPECT_TRUE(std::isfinite(score)) << "hub " << oid;
  }
  for (const auto& [oid, score] : auth) {
    EXPECT_TRUE(std::isfinite(score)) << "auth " << oid;
  }
}

TEST(JoinDanglingTest, FaultInjectedCrawlGraphDistillsFinite) {
  // A crawl over a hostile web drops URLs whose retry budget exhausts;
  // purging those rows (crash-recovery debris collection) leaves LINK
  // edges with no CRAWL endpoint. Distillation must survive that graph
  // and surface the damage through the session's metrics registry.
  core::FocusOptions options;
  options.seed = 21;
  options.web.pages_per_topic = 250;
  options.web.background_pages = 4000;
  options.web.background_servers = 120;
  options.web.fetch_failure_prob = 0.15;
  options.web.faults.permanent_prob = 0.05;
  options.web.faults.timeout_prob = 0.03;
  options.web.faults.flaky_server_fraction = 0.05;
  auto system =
      core::FocusSystem::Create(core::BuildSampleTaxonomy(), options)
          .TakeValue();
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  auto cycling = system->tax().FindByName("cycling").value();

  obs::MetricsRegistry registry;
  crawl::CrawlerOptions copts;
  copts.max_fetches = 300;
  copts.distill_every = 0;
  copts.metrics_registry = &registry;
  auto session =
      system->NewCrawl(system->web().KeywordSeeds(cycling, 8), copts)
          .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  ASSERT_GT(session->crawler().stats().dropped_urls, 0u);

  // Purge abandoned rows: unvisited, attempted, no retry scheduled.
  sql::Table* crawl = session->db().crawl_table();
  std::vector<storage::Rid> doomed;
  std::unordered_set<int64_t> purged;
  {
    auto it = crawl->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      if (row.Get(8).AsInt32() == 0 && row.Get(3).AsInt32() > 0 &&
          row.Get(9).AsInt64() == 0) {
        doomed.push_back(rid);
        purged.insert(row.Get(0).AsInt64());
      }
    }
    ASSERT_TRUE(it.status().ok());
  }
  ASSERT_FALSE(doomed.empty());
  for (const storage::Rid& rid : doomed) {
    ASSERT_TRUE(crawl->Delete(rid).ok());
  }

  // Hand-count the edges the purge left dangling. Only unvisited pages
  // were purged and only visited pages source links, so src stays clean.
  uint64_t expect_dst = 0;
  {
    auto it = session->db().link_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      if (purged.contains(row.Get(2).AsInt64())) ++expect_dst;
    }
    ASSERT_TRUE(it.status().ok());
  }
  ASSERT_GT(expect_dst, 0u);

  auto result = session->Distill({.iterations = 5, .rho = 0.0}, 10);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const auto& page : result.value().hubs) {
    EXPECT_TRUE(std::isfinite(page.score)) << page.url;
  }
  for (const auto& page : result.value().authorities) {
    EXPECT_TRUE(std::isfinite(page.score)) << page.url;
  }

  obs::Labels dst_labels = {{"distiller", session->name()},
                            {"endpoint", "dst"}};
  obs::Labels src_labels = {{"distiller", session->name()},
                            {"endpoint", "src"}};
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("focus_distill_dangling_edges", dst_labels)->Value(),
      static_cast<double>(expect_dst));
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("focus_distill_dangling_edges", src_labels)->Value(),
      0.0);
}

TEST(PageRankConvergenceTest, MoreIterationsAgree) {
  Rng rng(17);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (int i = 0; i < 500; ++i) {
    uint32_t u = rng.Uniform(80), v = rng.Uniform(80);
    if (u != v) edges.emplace_back(u, v);
  }
  auto r30 = PageRank(80, edges, {.damping = 0.85, .iterations = 30});
  auto r60 = PageRank(80, edges, {.damping = 0.85, .iterations = 60});
  for (size_t i = 0; i < 80; ++i) {
    EXPECT_NEAR(r30[i], r60[i], 1e-8);
  }
}

}  // namespace
}  // namespace focus::distill
