// Distillation extras: edge-weight assignment, ablation flags, ranking
// determinism, and degenerate graphs.
#include <gtest/gtest.h>

#include "distill/hits.h"
#include "distill/pagerank.h"
#include "util/random.h"

namespace focus::distill {
namespace {

TEST(AssignWeightsTest, MapsEndpointRelevances) {
  std::vector<WeightedEdge> edges = {
      {1, 10, 2, 20, 0, 0}, {2, 20, 3, 30, 0, 0}};
  AssignRelevanceWeights({{1, 0.9}, {2, 0.5}}, &edges);
  EXPECT_DOUBLE_EQ(edges[0].wgt_fwd, 0.5);  // R(dst=2)
  EXPECT_DOUBLE_EQ(edges[0].wgt_rev, 0.9);  // R(src=1)
  EXPECT_DOUBLE_EQ(edges[1].wgt_fwd, 0.0);  // R(3) unknown -> 0
  EXPECT_DOUBLE_EQ(edges[1].wgt_rev, 0.5);
}

TEST(HitsAblationTest, NepotismFlagChangesScores) {
  // Same-server edge from 1 to 2 plus off-server edge from 3 to 2.
  std::vector<WeightedEdge> edges = {{1, 5, 2, 5, 1, 1},
                                     {3, 7, 2, 8, 1, 1}};
  std::unordered_map<uint64_t, double> rel = {{1, 1}, {2, 1}, {3, 1}};
  HitsEngine engine(edges, rel);
  auto with = engine.Run({.iterations = 5, .rho = 0, .nepotism_filter =
                              true});
  auto without = engine.Run({.iterations = 5, .rho = 0,
                             .nepotism_filter = false});
  // With the filter, only node 3 hubs; without it node 1 also does.
  EXPECT_EQ(with[1].hub, 0.0);
  EXPECT_GT(without[1].hub, 0.0);
  EXPECT_NEAR(without[1].hub + without[3].hub, 1.0, 1e-9);
}

TEST(HitsRankingTest, TopListsDeterministicUnderTies) {
  std::unordered_map<uint64_t, HubAuthScore> scores;
  for (uint64_t oid = 1; oid <= 10; ++oid) {
    scores[oid] = HubAuthScore{0.1, 0.1};  // all tied
  }
  auto hubs = HitsEngine::TopHubs(scores, 5);
  ASSERT_EQ(hubs.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(hubs[i].first, i + 1);
  auto auths = HitsEngine::TopAuthorities(scores, 3);
  EXPECT_EQ(auths[0].first, 1u);
}

TEST(HitsDegenerateTest, EmptyGraph) {
  HitsEngine engine({}, {});
  auto scores = engine.Run({.iterations = 5});
  EXPECT_TRUE(scores.empty());
}

TEST(HitsDegenerateTest, AllEdgesFiltered) {
  // Every destination fails the rho filter: scores must not blow up.
  std::vector<WeightedEdge> edges = {{1, 1, 2, 2, 1, 1}};
  HitsEngine engine(edges, {{1, 0.1}, {2, 0.1}});
  auto scores = engine.Run({.iterations = 5, .rho = 0.9});
  EXPECT_EQ(scores[2].auth, 0.0);
  EXPECT_EQ(scores[1].hub, 0.0);
}

TEST(HitsConvergenceTest, ScoresStabilizeAcrossIterations) {
  Rng rng(13);
  std::vector<WeightedEdge> edges;
  std::unordered_map<uint64_t, double> rel;
  for (int i = 0; i < 400; ++i) {
    uint64_t u = 1 + rng.Uniform(60), v = 1 + rng.Uniform(60);
    if (u == v) continue;
    edges.push_back({u, static_cast<int32_t>(u % 11), v,
                     static_cast<int32_t>(v % 11), 0, 0});
    rel[u] = 1;
    rel[v] = 1;
  }
  AssignRelevanceWeights(rel, &edges);
  HitsEngine engine(edges, rel);
  auto s20 = engine.Run({.iterations = 20});
  auto s40 = engine.Run({.iterations = 40});
  for (const auto& [oid, s] : s20) {
    EXPECT_NEAR(s.hub, s40[oid].hub, 1e-6) << oid;
    EXPECT_NEAR(s.auth, s40[oid].auth, 1e-6) << oid;
  }
}

TEST(PageRankConvergenceTest, MoreIterationsAgree) {
  Rng rng(17);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (int i = 0; i < 500; ++i) {
    uint32_t u = rng.Uniform(80), v = rng.Uniform(80);
    if (u != v) edges.emplace_back(u, v);
  }
  auto r30 = PageRank(80, edges, {.damping = 0.85, .iterations = 30});
  auto r60 = PageRank(80, edges, {.damping = 0.85, .iterations = 60});
  for (size_t i = 0; i < 80; ++i) {
    EXPECT_NEAR(r30[i], r60[i], 1e-8);
  }
}

}  // namespace
}  // namespace focus::distill
