// Additional executor coverage: sources, sort stability, multi-key joins,
// projections, limits, aggregate typing and value edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sql/exec/aggregate.h"
#include "sql/exec/basic.h"
#include "sql/exec/join.h"
#include "sql/exec/operator.h"
#include "sql/exec/sort.h"
#include "sql/schema.h"
#include "sql/value.h"
#include "util/random.h"

namespace focus::sql {
namespace {

Schema KV() { return Schema({{"k", TypeId::kInt32}, {"v", TypeId::kInt32}}); }

std::vector<Tuple> Rows(std::vector<std::pair<int, int>> kv) {
  std::vector<Tuple> rows;
  for (auto [k, v] : kv) {
    rows.push_back(Tuple({Value::Int32(k), Value::Int32(v)}));
  }
  return rows;
}

TEST(BorrowedSourceTest, SharesRowsWithoutCopy) {
  auto rows = Rows({{1, 1}, {2, 2}});
  BorrowedSource src(KV(), &rows);
  auto out = Collect(&src);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);
  // Re-open re-reads from the start.
  auto again = Collect(&src);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().size(), 2u);
}

TEST(SortTest, StableOnEqualKeys) {
  // Equal keys preserve input order (stable_sort).
  auto rows = Rows({{1, 100}, {1, 50}, {1, 75}});
  Sort sort(std::make_unique<MaterializedSource>(KV(), rows),
            {{0, false}});
  auto out = Collect(&sort);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].Get(1).AsInt32(), 100);
  EXPECT_EQ(out.value()[1].Get(1).AsInt32(), 50);
  EXPECT_EQ(out.value()[2].Get(1).AsInt32(), 75);
}

TEST(SortTest, EmptyInput) {
  Sort sort(std::make_unique<MaterializedSource>(KV(), std::vector<Tuple>{}),
            {{0, false}});
  auto out = Collect(&sort);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(MergeJoinTest, MultiKeyJoin) {
  Schema abc({{"a", TypeId::kInt32},
              {"b", TypeId::kInt32},
              {"x", TypeId::kInt32}});
  std::vector<Tuple> left = {
      Tuple({Value::Int32(1), Value::Int32(1), Value::Int32(10)}),
      Tuple({Value::Int32(1), Value::Int32(2), Value::Int32(20)}),
      Tuple({Value::Int32(2), Value::Int32(1), Value::Int32(30)})};
  std::vector<Tuple> right = {
      Tuple({Value::Int32(1), Value::Int32(2), Value::Int32(200)}),
      Tuple({Value::Int32(2), Value::Int32(1), Value::Int32(300)}),
      Tuple({Value::Int32(2), Value::Int32(2), Value::Int32(400)})};
  MergeJoin join(std::make_unique<MaterializedSource>(abc, left),
                 std::make_unique<MaterializedSource>(abc, right), {0, 1},
                 {0, 1});
  auto out = Collect(&join);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 2u);  // (1,2) and (2,1)
  EXPECT_EQ(out.value()[0].Get(2).AsInt32(), 20);
  EXPECT_EQ(out.value()[0].Get(5).AsInt32(), 200);
}

TEST(MergeJoinTest, EmptySides) {
  {
    MergeJoin join(
        std::make_unique<MaterializedSource>(KV(), std::vector<Tuple>{}),
        std::make_unique<MaterializedSource>(KV(), Rows({{1, 1}})), {0},
        {0});
    auto out = Collect(&join);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out.value().empty());
  }
  {
    MergeJoin join(
        std::make_unique<MaterializedSource>(KV(), Rows({{1, 1}})),
        std::make_unique<MaterializedSource>(KV(), std::vector<Tuple>{}),
        {0}, {0});
    auto out = Collect(&join);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out.value().empty());
  }
}

TEST(MergeJoinTest, LeftOuterWithEmptyRight) {
  MergeJoin join(
      std::make_unique<MaterializedSource>(KV(), Rows({{1, 1}, {2, 2}})),
      std::make_unique<MaterializedSource>(KV(), std::vector<Tuple>{}), {0},
      {0}, /*left_outer=*/true);
  auto out = Collect(&join);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 2u);
  EXPECT_TRUE(out.value()[0].Get(2).is_null());
  EXPECT_TRUE(out.value()[1].Get(3).is_null());
}

TEST(MergeJoinTest, LeftOuterCountsMatchInnerPlusUnmatched) {
  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::pair<int, int>> l, r;
    for (int i = 0; i < 40; ++i) {
      l.emplace_back(static_cast<int>(rng.Uniform(10)), i);
    }
    for (int i = 0; i < 40; ++i) {
      r.emplace_back(static_cast<int>(rng.Uniform(10)), i);
    }
    auto sorted = [](std::vector<std::pair<int, int>> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    auto ls = Rows(sorted(l));
    auto rs = Rows(sorted(r));
    MergeJoin inner(std::make_unique<MaterializedSource>(KV(), ls),
                    std::make_unique<MaterializedSource>(KV(), rs), {0},
                    {0});
    MergeJoin outer(std::make_unique<MaterializedSource>(KV(), ls),
                    std::make_unique<MaterializedSource>(KV(), rs), {0},
                    {0}, true);
    auto in_rows = Collect(&inner);
    auto out_rows = Collect(&outer);
    ASSERT_TRUE(in_rows.ok());
    ASSERT_TRUE(out_rows.ok());
    size_t unmatched = 0;
    for (const auto& t : out_rows.value()) {
      if (t.Get(2).is_null()) ++unmatched;
    }
    EXPECT_EQ(out_rows.value().size(), in_rows.value().size() + unmatched);
    // Every left row appears at least once in the outer result.
    size_t lefts_seen = 0;
    int prev_v = -1;
    for (const auto& t : out_rows.value()) {
      if (t.Get(1).AsInt32() != prev_v) {
        prev_v = t.Get(1).AsInt32();
        ++lefts_seen;
      }
    }
    EXPECT_GE(lefts_seen, 1u);
  }
}

TEST(ProjectTest, ColumnsHelperPreservesNamesAndOrder) {
  auto src = std::make_unique<MaterializedSource>(KV(), Rows({{7, 8}}));
  auto proj = Project::Columns(std::move(src), {1, 0});
  EXPECT_EQ(proj->schema().column(0).name, "v");
  EXPECT_EQ(proj->schema().column(1).name, "k");
  auto out = Collect(proj.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].Get(0).AsInt32(), 8);
  EXPECT_EQ(out.value()[0].Get(1).AsInt32(), 7);
}

TEST(LimitTest, ZeroLimit) {
  Limit limit(std::make_unique<MaterializedSource>(KV(), Rows({{1, 1}})),
              0);
  auto out = Collect(&limit);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(AggregateTest, SumOfDoublesStaysDouble) {
  Schema schema({{"g", TypeId::kInt32}, {"x", TypeId::kDouble}});
  std::vector<Tuple> rows = {
      Tuple({Value::Int32(1), Value::Double(0.5)}),
      Tuple({Value::Int32(1), Value::Double(0.25)})};
  HashAggregate agg(std::make_unique<MaterializedSource>(schema, rows), {0},
                    {AggSpec{AggKind::kSum, 1, "s"},
                     AggSpec{AggKind::kMin, 1, "mn"},
                     AggSpec{AggKind::kMax, 1, "mx"}});
  auto out = Collect(&agg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(agg.schema().column(1).type, TypeId::kDouble);
  EXPECT_DOUBLE_EQ(out.value()[0].Get(1).AsDouble(), 0.75);
  EXPECT_DOUBLE_EQ(out.value()[0].Get(2).AsDouble(), 0.25);
  EXPECT_DOUBLE_EQ(out.value()[0].Get(3).AsDouble(), 0.5);
}

TEST(AggregateTest, EmptyInputYieldsNoGroups) {
  HashAggregate agg(
      std::make_unique<MaterializedSource>(KV(), std::vector<Tuple>{}), {0},
      {AggSpec{AggKind::kCount, -1, "c"}});
  auto out = Collect(&agg);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(AggregateTest, OutputOrderedByGroupKey) {
  auto rows = Rows({{5, 1}, {2, 1}, {9, 1}, {2, 1}, {5, 1}});
  HashAggregate agg(std::make_unique<MaterializedSource>(KV(), rows), {0},
                    {AggSpec{AggKind::kCount, -1, "c"}});
  auto out = Collect(&agg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 3u);
  EXPECT_EQ(out.value()[0].Get(0).AsInt32(), 2);
  EXPECT_EQ(out.value()[1].Get(0).AsInt32(), 5);
  EXPECT_EQ(out.value()[2].Get(0).AsInt32(), 9);
}

TEST(ValueEdgeTest, EmptyAndLongStrings) {
  Value empty = Value::Str("");
  std::string buf;
  empty.SerializeTo(&buf);
  size_t offset = 0;
  auto back = Value::Deserialize(TypeId::kString, buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().AsString(), "");

  std::string long_str(60000, 'a');
  Value big = Value::Str(long_str);
  buf.clear();
  big.SerializeTo(&buf);
  offset = 0;
  auto big_back = Value::Deserialize(TypeId::kString, buf, &offset);
  ASSERT_TRUE(big_back.ok());
  EXPECT_EQ(big_back.value().AsString().size(), 60000u);
}

TEST(ValueEdgeTest, NumericWideningReads) {
  EXPECT_EQ(Value::Int32(-3).AsIntAny(), -3);
  EXPECT_EQ(Value::Int64(1LL << 40).AsIntAny(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::Int32(2).AsNumeric(), 2.0);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsNumeric(), 2.5);
}

TEST(FilterTest, ComposesWithProject) {
  auto rows = Rows({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  auto plan = Project::Columns(
      std::make_unique<Filter>(
          std::make_unique<MaterializedSource>(KV(), rows),
          [](const Tuple& t) { return t.Get(0).AsInt32() % 2 == 0; }),
      {1});
  auto out = Collect(plan.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 2u);
  EXPECT_EQ(out.value()[0].Get(0).AsInt32(), 20);
  EXPECT_EQ(out.value()[1].Get(0).AsInt32(), 40);
}

}  // namespace
}  // namespace focus::sql
