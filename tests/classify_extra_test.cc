// Classifier extras: degenerate documents, multiple good topics, trainer
// options, and the DB-resident table layouts.
#include <gtest/gtest.h>

#include <cmath>

#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "classify/trainer.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "taxonomy/taxonomy.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::classify {
namespace {

using taxonomy::Cid;
using taxonomy::Taxonomy;
using text::TermVector;

class ClassifyExtraTest : public testing::Test {
 protected:
  ClassifyExtraTest() : pool_(&disk_, 512), catalog_(&pool_), rng_(7) {
    Cid a = tax_.AddTopic(taxonomy::kRootCid, "alpha").value();
    Cid b = tax_.AddTopic(taxonomy::kRootCid, "beta").value();
    a1_ = tax_.AddTopic(a, "a1").value();
    a2_ = tax_.AddTopic(a, "a2").value();
    b1_ = tax_.AddTopic(b, "b1").value();
    b2_ = tax_.AddTopic(b, "b2").value();
  }

  TermVector MakeDoc(Cid leaf, int n = 100) {
    std::vector<std::string> tokens;
    for (int i = 0; i < n; ++i) {
      if (rng_.Bernoulli(0.6)) {
        tokens.push_back(StrCat("w", leaf, "_", rng_.Uniform(25)));
      } else {
        tokens.push_back(StrCat("bg_", rng_.Uniform(60)));
      }
    }
    return text::BuildTermVector(tokens);
  }

  std::vector<LabeledDocument> TrainingSet(int per_leaf) {
    std::vector<LabeledDocument> out;
    uint64_t did = 1;
    for (Cid leaf : {a1_, a2_, b1_, b2_}) {
      for (int i = 0; i < per_leaf; ++i) {
        out.push_back({did++, leaf, MakeDoc(leaf)});
      }
    }
    return out;
  }

  ClassifierModel TrainedModel(TrainerOptions options = {}) {
    Trainer trainer(options);
    auto model = trainer.Train(tax_, TrainingSet(15));
    EXPECT_TRUE(model.ok()) << model.status();
    return model.TakeValue();
  }

  storage::MemDiskManager disk_;
  storage::BufferPool pool_;
  sql::Catalog catalog_;
  Rng rng_;
  Taxonomy tax_;
  Cid a1_, a2_, b1_, b2_;
};

TEST_F(ClassifyExtraTest, EmptyDocumentFallsBackToPriors) {
  ClassifierModel model = TrainedModel();
  HierarchicalClassifier clf(&tax_, &model);
  ClassScores scores = clf.Classify({});
  // No evidence: posteriors equal priors, which sum to 1 at each level.
  EXPECT_NEAR(scores.Prob(taxonomy::kRootCid), 1.0, 1e-12);
  double leaf_sum = 0;
  for (Cid c : {a1_, a2_, b1_, b2_}) leaf_sum += scores.Prob(c);
  EXPECT_NEAR(leaf_sum, 1.0, 1e-9);
  for (Cid c : {a1_, a2_, b1_, b2_}) {
    double prior_path = std::exp(model.logprior[c] +
                                 model.logprior[tax_.Parent(c)]);
    EXPECT_NEAR(scores.Prob(c), prior_path, 1e-9);
  }
}

TEST_F(ClassifyExtraTest, UnknownTermsAreIgnored) {
  ClassifierModel model = TrainedModel();
  HierarchicalClassifier clf(&tax_, &model);
  TermVector junk = text::BuildTermVector({"zzzz", "qqqq", "xxxx"});
  ClassScores scores = clf.Classify(junk);
  ClassScores empty = clf.Classify({});
  for (int c = 0; c < tax_.num_topics(); ++c) {
    EXPECT_NEAR(scores.logp[c], empty.logp[c], 1e-12);
  }
}

TEST_F(ClassifyExtraTest, MultipleGoodTopicsSumRelevance) {
  ClassifierModel model = TrainedModel();
  ASSERT_TRUE(tax_.MarkGood(a1_).ok());
  ASSERT_TRUE(tax_.MarkGood(b1_).ok());
  HierarchicalClassifier clf(&tax_, &model);
  TermVector doc = MakeDoc(a1_);
  ClassScores scores = clf.Classify(doc);
  EXPECT_NEAR(clf.Relevance(doc),
              std::min(1.0, scores.Prob(a1_) + scores.Prob(b1_)), 1e-12);
}

TEST_F(ClassifyExtraTest, GoodInternalTopicCountsWholeSubtree) {
  ClassifierModel model = TrainedModel();
  Cid alpha = tax_.FindByName("alpha").value();
  ASSERT_TRUE(tax_.MarkGood(alpha).ok());
  HierarchicalClassifier clf(&tax_, &model);
  TermVector doc = MakeDoc(a2_);
  ClassScores scores = clf.Classify(doc);
  // R = Pr[alpha|d] = Pr[a1|d] + Pr[a2|d].
  EXPECT_NEAR(clf.Relevance(doc), scores.Prob(alpha), 1e-12);
  EXPECT_NEAR(scores.Prob(alpha), scores.Prob(a1_) + scores.Prob(a2_),
              1e-9);
  EXPECT_GT(clf.Relevance(doc), 0.8);
}

TEST_F(ClassifyExtraTest, FeatureCapIsHonored) {
  ClassifierModel small = TrainedModel(
      TrainerOptions{.max_features_per_node = 10});
  for (const auto& [cid, node] : small.nodes) {
    EXPECT_LE(node.stats.size(), 10u) << "node " << cid;
  }
  ClassifierModel big = TrainedModel(
      TrainerOptions{.max_features_per_node = 10000});
  size_t small_total = 0, big_total = 0;
  for (const auto& [cid, node] : small.nodes) small_total += node.stats.size();
  for (const auto& [cid, node] : big.nodes) big_total += node.stats.size();
  EXPECT_GT(big_total, small_total);
}

TEST_F(ClassifyExtraTest, MinDocumentFrequencyPrunesRareTerms) {
  // Give every document a singleton token that only a df>=2 filter drops.
  auto training = TrainingSet(15);
  for (auto& doc : training) {
    auto extra = text::BuildTermVector({StrCat("unique_", doc.did)});
    doc.terms.insert(doc.terms.end(), extra.begin(), extra.end());
  }
  Trainer strict_trainer(TrainerOptions{.max_features_per_node = 10000,
                                        .min_document_frequency = 2});
  Trainer loose_trainer(TrainerOptions{.max_features_per_node = 10000,
                                       .min_document_frequency = 1});
  auto strict_or = strict_trainer.Train(tax_, training);
  auto loose_or = loose_trainer.Train(tax_, training);
  ASSERT_TRUE(strict_or.ok());
  ASSERT_TRUE(loose_or.ok());
  const ClassifierModel& strict = strict_or.value();
  const ClassifierModel& loose = loose_or.value();
  size_t strict_total = 0, loose_total = 0;
  for (const auto& [cid, node] : strict.nodes) {
    strict_total += node.stats.size();
  }
  for (const auto& [cid, node] : loose.nodes) {
    loose_total += node.stats.size();
  }
  EXPECT_LT(strict_total, loose_total);
}

TEST_F(ClassifyExtraTest, TaxonomyTableHasOneRowPerNonRootTopic) {
  ClassifierModel model = TrainedModel();
  auto tables = BuildClassifierTables(&catalog_, tax_, model);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables.value().taxonomy->num_rows(),
            static_cast<uint64_t>(tax_.num_topics() - 1));
  // Every internal node got a STAT table, heap-ordered by tid.
  EXPECT_EQ(tables.value().stat.size(), 3u);  // root, alpha, beta
  for (const auto& [cid, table] : tables.value().stat) {
    int64_t prev_tid = -1;
    auto it = table->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      EXPECT_GE(row.Get(1).AsInt64(), prev_tid)
          << "STAT_" << cid << " not tid-ordered";
      prev_tid = row.Get(1).AsInt64();
    }
    ASSERT_TRUE(it.status().ok());
  }
}

TEST_F(ClassifyExtraTest, BlobRowCountMatchesFeatureCount) {
  ClassifierModel model = TrainedModel();
  auto tables = BuildClassifierTables(&catalog_, tax_, model);
  ASSERT_TRUE(tables.ok());
  uint64_t features = 0;
  for (const auto& [cid, node] : model.nodes) features += node.stats.size();
  EXPECT_EQ(tables.value().blob->num_rows(), features);
}

TEST_F(ClassifyExtraTest, FisherSelectionAlsoClassifiesWell) {
  ClassifierModel fisher = TrainedModel(
      TrainerOptions{.max_features_per_node = 150,
                     .feature_selection = FeatureSelection::kFisher});
  HierarchicalClassifier clf(&tax_, &fisher);
  int correct = 0, total = 0;
  for (Cid leaf : {a1_, a2_, b1_, b2_}) {
    for (int i = 0; i < 8; ++i) {
      correct += clf.Classify(MakeDoc(leaf)).BestLeaf(tax_) == leaf;
      ++total;
    }
  }
  EXPECT_GE(correct, total - 2);
  // The two criteria need not agree on the feature set, but both must
  // produce non-empty sparse models.
  ClassifierModel mi = TrainedModel(
      TrainerOptions{.max_features_per_node = 150});
  for (const auto& [cid, node] : fisher.nodes) {
    EXPECT_GT(node.stats.size(), 0u);
    EXPECT_LE(node.stats.size(), 150u);
  }
  EXPECT_EQ(fisher.nodes.size(), mi.nodes.size());
}

TEST_F(ClassifyExtraTest, BestLeafPrefersEvidence) {
  ClassifierModel model = TrainedModel();
  HierarchicalClassifier clf(&tax_, &model);
  for (Cid leaf : {a1_, a2_, b1_, b2_}) {
    int correct = 0;
    for (int i = 0; i < 8; ++i) {
      correct += clf.Classify(MakeDoc(leaf)).BestLeaf(tax_) == leaf;
    }
    EXPECT_GE(correct, 7) << tax_.Name(leaf);
  }
}

}  // namespace
}  // namespace focus::classify
