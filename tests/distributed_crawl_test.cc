// Multi-shard distributed crawl: the N-shard fixpoint must be
// bit-identical to the single-shard crawl — same visited set, same judged
// relevances, same harvest rate, same global distillation scores — no
// matter how many shards run and no matter how often they die.
//
// Three death modes are exercised: none (pure partitioning), scheduled
// virtual-time kills (ShardFaultPlan firing through the crawler's
// interrupt hook), and a disk-op crash matrix (CrashFaultDiskManager
// pulling the plug at every stride-th mutating operation of the whole
// multi-shard run, exchange-batch commits included). After every
// recovery the exchange watermarks must prove exactly-once delivery:
// zero pending messages, watermark equal to the outbox tail, no lost or
// duplicated cross-shard link.
//
// FOCUS_WAL_CRASH_STRIDE=<n> widens the sweep stride (CI smoke knob,
// shared with wal_recovery_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "dist/dist_crawl.h"
#include "dist/shard_router.h"
#include "storage/crash_fault_disk.h"
#include "webgraph/web_config.h"

namespace focus {
namespace {

using core::FocusOptions;
using core::FocusSystem;
using dist::DistCrawl;
using dist::DistCrawlOptions;
using dist::ShardDevices;
using dist::ShardFaultPlan;
using dist::ShardRouter;
using dist::WatermarkAudit;
using taxonomy::Cid;

// ---------------------------------------------------------------------
// ShardRouter partitioning.

TEST(ShardRouterTest, PartitionsByServerStably) {
  ShardRouter router(4);
  EXPECT_EQ(router.num_shards(), 4);
  std::set<int> used;
  for (int s = 0; s < 64; ++s) {
    std::string a = "http://server" + std::to_string(s) + ".web/p0";
    std::string b = "http://server" + std::to_string(s) + ".web/deep/p9";
    int shard = router.ShardOfUrl(a);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    // The unit of ownership is the server: every URL of a host lands on
    // the same shard, so breaker/retry/load state never crosses shards.
    EXPECT_EQ(shard, router.ShardOfUrl(b)) << a;
    EXPECT_EQ(shard, router.ShardOfServer(crawl::ServerIdOf(a)));
    used.insert(shard);
  }
  EXPECT_EQ(used.size(), 4u) << "64 servers left some shard empty";
  // Degenerate single-shard router owns everything.
  ShardRouter one(1);
  for (int s = 0; s < 16; ++s) {
    EXPECT_EQ(one.ShardOfUrl("http://server" + std::to_string(s) + ".web/"),
              0);
  }
}

// ---------------------------------------------------------------------
// Shared fixtures.

// A hostile web: transient failures plus permanent losses, so the
// identity claims below cover the retry/drop machinery too.
FocusOptions DistOptions(uint64_t seed) {
  FocusOptions options;
  options.seed = seed;
  options.web.pages_per_topic = 120;
  options.web.background_pages = 800;
  options.web.background_servers = 40;
  options.web.fetch_failure_prob = 0.10;
  options.web.faults.permanent_prob = 0.02;
  return options;
}

std::unique_ptr<FocusSystem> TrainedSystem(FocusOptions options) {
  auto system =
      FocusSystem::Create(core::BuildSampleTaxonomy(), std::move(options))
          .TakeValue();
  EXPECT_TRUE(system->MarkGood("cycling").ok());
  EXPECT_TRUE(system->Train().ok());
  return system;
}

std::map<std::string, double> VisitedByUrl(crawl::CrawlDb* db) {
  std::map<std::string, double> out;
  auto it = db->crawl_table()->Scan();
  storage::Rid rid;
  sql::Tuple row;
  while (it.Next(&rid, &row)) {
    crawl::CrawlRecord rec = crawl::CrawlDb::RecordFromTuple(row);
    if (rec.visited) out[rec.url] = rec.relevance;
  }
  EXPECT_TRUE(it.status().ok()) << it.status().ToString();
  return out;
}

// Every (src, dst) queue fully applied: nothing pending, watermark at the
// outbox tail. This is the durable exactly-once witness.
void ExpectExchangeSettled(DistCrawl* dc) {
  auto audit = dc->AuditExchange();
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  for (const WatermarkAudit& a : *audit) {
    EXPECT_EQ(a.pending, 0)
        << a.src_shard << "->" << a.dst_shard << " lost messages";
    EXPECT_EQ(a.watermark, a.outbox_high)
        << a.src_shard << "->" << a.dst_shard << " watermark lags outbox";
  }
}

struct DistRun {
  std::unique_ptr<DistCrawl> dc;
  std::map<std::string, double> visited;
  double harvest = 0.0;
  dist::GlobalDistillResult distill;
};

DistRun RunDistributed(FocusSystem* system, crawl::RelevanceEvaluator* ev,
                       DistCrawlOptions dopts,
                       const std::vector<std::string>& seeds) {
  DistRun run;
  dopts.crawler.max_fetches = 20000;  // > page count: run to exhaustion
  dopts.crawler.distill_every = 0;
  auto dc = DistCrawl::Create(&system->web(), ev, std::move(dopts));
  EXPECT_TRUE(dc.ok()) << dc.status().ToString();
  run.dc = std::move(dc).TakeValue();
  for (const std::string& url : seeds) {
    EXPECT_TRUE(run.dc->AddSeed(url).ok());
  }
  Status s = run.dc->RunToFixpoint();
  EXPECT_TRUE(s.ok()) << s.ToString();
  auto visited = run.dc->VisitedRelevance();
  EXPECT_TRUE(visited.ok());
  run.visited = std::move(visited).TakeValue();
  auto harvest = run.dc->HarvestRate(0.5);
  EXPECT_TRUE(harvest.ok());
  run.harvest = *harvest;
  auto distill = run.dc->GlobalDistill({.iterations = 10, .rho = 0.1});
  EXPECT_TRUE(distill.ok()) << distill.status().ToString();
  run.distill = std::move(distill).TakeValue();
  return run;
}

void ExpectIdenticalRuns(const DistRun& a, const DistRun& b) {
  ASSERT_EQ(a.visited.size(), b.visited.size());
  for (const auto& [url, relevance] : a.visited) {
    auto it = b.visited.find(url);
    ASSERT_NE(it, b.visited.end()) << url << " missing";
    EXPECT_EQ(relevance, it->second) << url;  // bit-identical, not approx
  }
  EXPECT_EQ(a.harvest, b.harvest);
  EXPECT_EQ(a.distill.merged_pages, b.distill.merged_pages);
  EXPECT_EQ(a.distill.merged_links, b.distill.merged_links);
  ASSERT_EQ(a.distill.hubs.size(), b.distill.hubs.size());
  ASSERT_EQ(a.distill.auths.size(), b.distill.auths.size());
  for (size_t i = 0; i < a.distill.hubs.size(); ++i) {
    EXPECT_EQ(a.distill.hubs[i], b.distill.hubs[i]) << "hub " << i;
  }
  for (size_t i = 0; i < a.distill.auths.size(); ++i) {
    EXPECT_EQ(a.distill.auths[i], b.distill.auths[i]) << "auth " << i;
  }
}

// ---------------------------------------------------------------------
// Partitioning alone: N shards converge to the 1-shard fixpoint.

TEST(DistributedCrawlTest, NShardFixpointBitIdenticalToSingleShard) {
  auto system = TrainedSystem(DistOptions(41));
  Cid cycling = system->tax().FindByName("cycling").value();
  std::vector<std::string> seeds = system->web().KeywordSeeds(cycling, 8);
  crawl::ClassifierEvaluator evaluator(&system->classifier());

  // Cross-check the 1-shard DistCrawl against a plain undistributed
  // crawler first, so the N-vs-1 comparisons below anchor to the
  // original code path and not merely to each other.
  std::map<std::string, double> plain;
  {
    crawl::CrawlerOptions copts;
    copts.max_fetches = 20000;
    copts.distill_every = 0;
    auto session = system->NewCrawl(seeds, copts).TakeValue();
    ASSERT_TRUE(session->crawler().Crawl().ok());
    ASSERT_TRUE(session->crawler().stats().stagnated);
    plain = VisitedByUrl(&session->db());
  }
  ASSERT_GT(plain.size(), 50u);

  DistCrawlOptions base;
  base.num_shards = 1;
  DistRun one = RunDistributed(system.get(), &evaluator, base, seeds);
  EXPECT_EQ(one.visited, plain);
  EXPECT_EQ(one.dc->exchange_stats().delivered, 0u);

  for (int n : {2, 4, 8}) {
    SCOPED_TRACE(n);
    DistCrawlOptions dopts;
    dopts.num_shards = n;
    DistRun sharded = RunDistributed(system.get(), &evaluator, dopts, seeds);
    ExpectIdenticalRuns(one, sharded);
    // The identity is not vacuous: links really crossed shard
    // boundaries, and every one of them was durably applied.
    EXPECT_GT(sharded.dc->exchange_stats().delivered, 0u);
    EXPECT_GT(sharded.dc->exchange_stats().batches, 0u);
    EXPECT_EQ(sharded.dc->total_restarts(), 0);
    ExpectExchangeSettled(sharded.dc.get());
  }
}

// ---------------------------------------------------------------------
// Scheduled virtual-time kills: every shard dies once mid-crawl.

TEST(DistributedCrawlTest, ScheduledShardKillsRecoverAndConverge) {
  auto system = TrainedSystem(DistOptions(43));
  Cid cycling = system->tax().FindByName("cycling").value();
  std::vector<std::string> seeds = system->web().KeywordSeeds(cycling, 8);
  crawl::ClassifierEvaluator evaluator(&system->classifier());

  DistCrawlOptions clean;
  clean.num_shards = 4;
  DistRun reference = RunDistributed(system.get(), &evaluator, clean, seeds);
  ASSERT_GT(reference.visited.size(), 50u);

  // Kill all four shards at different points of their (virtual)
  // timelines — early enough that every shard still has work left.
  ShardFaultPlan plan;
  plan.KillAt(1, 250'000);
  plan.KillAt(3, 600'000);
  plan.KillAt(0, 1'000'000);
  plan.KillAt(2, 1'500'000);

  DistCrawlOptions chaos;
  chaos.num_shards = 4;
  chaos.fault_plan = &plan;
  chaos.enable_event_logs = true;
  DistRun survived = RunDistributed(system.get(), &evaluator, chaos, seeds);

  EXPECT_EQ(plan.fired(), 4);
  EXPECT_EQ(survived.dc->total_restarts(), 4);
  ExpectIdenticalRuns(reference, survived);
  ExpectExchangeSettled(survived.dc.get());

  // Provenance: each shard's own log recorded its death and rebirth,
  // stamped with that shard's id.
  for (int s = 0; s < 4; ++s) {
    SCOPED_TRACE(s);
    ASSERT_EQ(survived.dc->restarts(s), 1);
    obs::EventLog* log = survived.dc->event_log(s);
    ASSERT_NE(log, nullptr);
    obs::EventFilter deaths;
    deaths.type = static_cast<int32_t>(obs::CrawlEventType::kShardDeath);
    std::vector<obs::CrawlEvent> death_events = log->Snapshot(deaths);
    ASSERT_EQ(death_events.size(), 1u);
    EXPECT_EQ(death_events[0].shard_id, s);
    EXPECT_EQ(death_events[0].value, 0.0);  // scheduled kill, not storage
    obs::EventFilter restarts;
    restarts.type = static_cast<int32_t>(obs::CrawlEventType::kShardRestart);
    std::vector<obs::CrawlEvent> restart_events = log->Snapshot(restarts);
    ASSERT_EQ(restart_events.size(), 1u);
    EXPECT_EQ(restart_events[0].shard_id, s);
    EXPECT_EQ(restart_events[0].aux, 1);  // second boot
    // Cross-shard deliveries were journaled against the receiving shard.
    obs::EventFilter batches;
    batches.type = static_cast<int32_t>(obs::CrawlEventType::kExchangeBatch);
    for (const obs::CrawlEvent& ev : log->Snapshot(batches)) {
      EXPECT_EQ(ev.shard_id, s);
      EXPECT_GE(ev.parent_oid, 0);  // source shard
      EXPECT_NE(ev.parent_oid, s);
      EXPECT_GT(ev.aux, 0);  // messages delivered
    }
  }
}

// ---------------------------------------------------------------------
// The crash matrix: power loss at every stride-th disk op of the whole
// two-shard run, exchange-batch commits included.

// Judges everything maximally relevant, so the sweep's many passes stay
// cheap (no classifier, no training).
class ConstantEvaluator final : public crawl::RelevanceEvaluator {
 public:
  Result<crawl::PageJudgment> Judge(const text::TermVector&) override {
    crawl::PageJudgment j;
    j.relevance = 1.0;
    j.best_leaf_is_good = true;
    return j;
  }
};

uint64_t CrashStride() {
  if (const char* env = std::getenv("FOCUS_WAL_CRASH_STRIDE")) {
    long v = std::atol(env);
    if (v > 1) return static_cast<uint64_t>(v);
  }
  return 1;
}

TEST(DistributedCrawlTest, ExchangeCrashMatrixDeliversExactlyOnce) {
  taxonomy::Taxonomy tax;
  Cid rec = tax.AddTopic(taxonomy::kRootCid, "recreation").value();
  ASSERT_TRUE(tax.AddTopic(rec, "cycling").ok());
  webgraph::WebConfig config;
  config.seed = 5;
  config.pages_per_topic = 60;
  config.background_pages = 150;
  auto web = webgraph::SimulatedWeb::Generate(tax, config, {}).TakeValue();
  ConstantEvaluator evaluator;

  constexpr int kShards = 2;
  storage::CrashPlan plan;
  constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  struct RunOutcome {
    std::map<std::string, double> visited;
    uint64_t raw_links = 0;  // LINK rows across shards, duplicates kept
    uint64_t merged_links = 0;
    uint64_t delivered = 0;
    uint64_t replayed = 0;
    int restarts = 0;
  };

  // One complete two-shard crawl over plan-decorated memory devices. The
  // plan is armed only around RunToFixpoint, so every crash point lands
  // in the supervised region; a rebooting shard gets fresh decorators
  // over the same surviving bytes and a disarmed plan (one power cut per
  // pass — the supervisor's recovery itself must then run clean).
  auto run = [&](uint64_t crash_at, uint64_t* total_ops,
                 RunOutcome* out) -> Status {
    storage::MemDiskManager data[kShards], log[kShards];
    std::deque<storage::CrashFaultDiskManager> decorators;
    DistCrawlOptions dopts;
    dopts.num_shards = kShards;
    dopts.crawler.max_fetches = 20000;
    dopts.crawler.distill_every = 0;
    dopts.crawler.checkpoint_every_batches = 4;
    dopts.store_provider = [&](int s, int boot) -> Result<ShardDevices> {
      if (boot > 0) plan.Reset(kNever);
      decorators.emplace_back(&data[s], &plan);
      storage::DiskManager* d = &decorators.back();
      decorators.emplace_back(&log[s], &plan);
      return ShardDevices{d, &decorators.back()};
    };
    plan.Reset(kNever);
    FOCUS_ASSIGN_OR_RETURN(std::unique_ptr<DistCrawl> dc,
                           DistCrawl::Create(&web, &evaluator, dopts));
    FOCUS_RETURN_IF_ERROR(dc->AddSeed(web.page(0).url));
    plan.Reset(crash_at);
    FOCUS_RETURN_IF_ERROR(dc->RunToFixpoint());
    if (total_ops != nullptr) *total_ops = plan.op_count.load();
    plan.Reset(kNever);  // the verification scans below must not crash
    FOCUS_ASSIGN_OR_RETURN(out->visited, dc->VisitedRelevance());
    for (int s = 0; s < kShards; ++s) {
      out->raw_links += dc->db(s)->num_links();
    }
    FOCUS_ASSIGN_OR_RETURN(dist::GlobalDistillResult distill,
                           dc->GlobalDistill({.iterations = 5, .rho = 0.1}));
    out->merged_links = distill.merged_links;
    out->delivered = dc->exchange_stats().delivered;
    out->replayed = dc->exchange_stats().replayed;
    out->restarts = dc->total_restarts();
    FOCUS_ASSIGN_OR_RETURN(std::vector<WatermarkAudit> audit,
                           dc->AuditExchange());
    for (const WatermarkAudit& a : audit) {
      if (a.pending != 0 || a.watermark != a.outbox_high) {
        return Status::Internal("exchange not settled at fixpoint");
      }
    }
    return Status::OK();
  };

  // Golden pass: no crash, count the op stream.
  RunOutcome golden;
  uint64_t total_ops = 0;
  {
    Status s = run(kNever, &total_ops, &golden);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  ASSERT_GT(golden.visited.size(), 100u);
  ASSERT_GT(golden.delivered, 0u) << "no cross-shard traffic to protect";
  ASSERT_EQ(golden.restarts, 0);
  ASSERT_GT(total_ops, 500u);

  // Sweep. The stride honors FOCUS_WAL_CRASH_STRIDE but also caps the
  // pass count, since every pass is a full crawl-to-exhaustion.
  uint64_t stride = std::max(CrashStride(), total_ops / 160);
  uint64_t swept = 0, crashed_passes = 0, replays = 0;
  for (uint64_t k = 1; k < total_ops; k += stride) {
    SCOPED_TRACE(testing::Message() << "crash at op " << k << " of "
                                    << total_ops);
    RunOutcome outcome;
    Status s = run(k, nullptr, &outcome);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ++swept;
    crashed_passes += outcome.restarts > 0 ? 1 : 0;
    replays += outcome.replayed;
    // Exactly-once across the power cut: the union state equals the
    // crash-free run's — nothing lost, and the raw (pre-dedup) LINK row
    // count proves nothing was applied twice either.
    ASSERT_EQ(outcome.visited.size(), golden.visited.size());
    EXPECT_EQ(outcome.visited, golden.visited);
    EXPECT_EQ(outcome.raw_links, golden.raw_links);
    EXPECT_EQ(outcome.merged_links, golden.merged_links);
  }
  ASSERT_GT(swept, 20u);
  // The sweep actually exercised deaths, and at least one crash point
  // fell inside a delivery window (read done, commit lost), forcing the
  // watermark protocol to redeliver.
  EXPECT_GT(crashed_passes, swept / 2);
  EXPECT_GT(replays, 0u);
}

}  // namespace
}  // namespace focus
