#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "taxonomy/taxonomy.h"
#include "util/random.h"
#include "webgraph/simulated_web.h"

namespace focus::webgraph {
namespace {

using taxonomy::Cid;
using taxonomy::Taxonomy;

Taxonomy MakeTax() {
  Taxonomy tax;
  Cid rec = tax.AddTopic(taxonomy::kRootCid, "recreation").value();
  tax.AddTopic(rec, "cycling").value();
  tax.AddTopic(rec, "gardening").value();
  Cid health = tax.AddTopic(taxonomy::kRootCid, "health").value();
  tax.AddTopic(health, "first_aid").value();
  return tax;
}

WebConfig SmallConfig(uint64_t seed = 7) {
  WebConfig config;
  config.seed = seed;
  config.pages_per_topic = 200;
  config.background_pages = 2000;
  config.background_servers = 50;
  return config;
}

class WebTest : public testing::Test {
 protected:
  WebTest() : tax_(MakeTax()) {
    cycling_ = tax_.FindByName("cycling").value();
    first_aid_ = tax_.FindByName("first_aid").value();
    auto web = SimulatedWeb::Generate(
        tax_, SmallConfig(),
        {TopicAffinity{cycling_, first_aid_, 0.08}});
    EXPECT_TRUE(web.ok()) << web.status();
    web_.emplace(web.TakeValue());
  }

  Taxonomy tax_;
  Cid cycling_, first_aid_;
  std::optional<SimulatedWeb> web_;
};

TEST_F(WebTest, PageCountsAndTopics) {
  // 3 leaves x 200 + 2000 background.
  EXPECT_EQ(web_->num_pages(), 3u * 200 + 2000);
  EXPECT_EQ(web_->PagesOfTopic(cycling_).size(), 200u);
  size_t background = 0;
  for (uint32_t i = 0; i < web_->num_pages(); ++i) {
    if (web_->page(i).topic == kBackgroundTopic) ++background;
  }
  EXPECT_EQ(background, 2000u);
}

TEST_F(WebTest, UrlsAreUniqueAndResolvable) {
  std::set<std::string> urls;
  for (uint32_t i = 0; i < web_->num_pages(); ++i) {
    urls.insert(web_->page(i).url);
    auto idx = web_->PageIndexByUrl(web_->page(i).url);
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(idx.value(), i);
  }
  EXPECT_EQ(urls.size(), web_->num_pages());
  EXPECT_FALSE(web_->PageIndexByUrl("http://nowhere/").ok());
}

TEST_F(WebTest, GenerationIsDeterministic) {
  auto web2 = SimulatedWeb::Generate(
      tax_, SmallConfig(),
      {TopicAffinity{cycling_, first_aid_, 0.08}});
  ASSERT_TRUE(web2.ok());
  ASSERT_EQ(web2.value().num_pages(), web_->num_pages());
  for (uint32_t i = 0; i < web_->num_pages(); i += 97) {
    EXPECT_EQ(web2.value().page(i).url, web_->page(i).url);
    EXPECT_EQ(web2.value().page(i).outlinks, web_->page(i).outlinks);
  }
  // Same page fetched twice yields identical text.
  auto f1 = web_->Fetch(web_->page(5).url);
  auto f2 = web_->Fetch(web_->page(5).url);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f1.value().tokens, f2.value().tokens);
}

TEST_F(WebTest, Radius1RuleHolds) {
  // Non-hub topic pages link to their own topic with ~p_same_topic.
  int64_t same = 0, total = 0;
  for (uint32_t idx : web_->PagesOfTopic(cycling_)) {
    const PageInfo& page = web_->page(idx);
    if (page.is_hub) continue;
    for (uint32_t t : page.outlinks) {
      same += (web_->page(t).topic == cycling_);
      ++total;
    }
  }
  double fraction = static_cast<double>(same) / total;
  EXPECT_NEAR(fraction, SmallConfig().p_same_topic, 0.05);
}

TEST_F(WebTest, Radius2RuleHolds) {
  // §2: given that a page has one link to topic T, the chance of a second
  // link to T vastly exceeds the unconditional chance for a random page.
  // Use a web where the background dominates, as on the real web.
  WebConfig config = SmallConfig(5);
  config.background_pages = 20000;
  auto web_or = SimulatedWeb::Generate(tax_, config, {});
  ASSERT_TRUE(web_or.ok());
  const SimulatedWeb& web = web_or.value();
  int64_t pages_with_one = 0, pages_with_two = 0;
  for (uint32_t i = 0; i < web.num_pages(); ++i) {
    const PageInfo& page = web.page(i);
    int links_to_cycling = 0;
    for (uint32_t t : page.outlinks) {
      links_to_cycling += (web.page(t).topic == cycling_);
    }
    if (links_to_cycling >= 1) {
      ++pages_with_one;
      if (links_to_cycling >= 2) ++pages_with_two;
    }
  }
  double p_unconditional =
      static_cast<double>(pages_with_one) / web.num_pages();
  double p_conditional =
      static_cast<double>(pages_with_two) / pages_with_one;
  EXPECT_GT(p_conditional, 5 * p_unconditional);
  EXPECT_GT(p_conditional, 0.3);  // the paper cites ~45% for Yahoo! topics
}

TEST_F(WebTest, BackgroundRarelyLinksInward) {
  int64_t inward = 0, total = 0;
  for (uint32_t i = 0; i < web_->num_pages(); ++i) {
    const PageInfo& page = web_->page(i);
    if (page.topic != kBackgroundTopic) continue;
    for (uint32_t t : page.outlinks) {
      inward += (web_->page(t).topic != kBackgroundTopic);
      ++total;
    }
  }
  EXPECT_LT(static_cast<double>(inward) / total, 0.02);
}

TEST_F(WebTest, FetchReturnsTextAndLinks) {
  const PageInfo& page = web_->page(10);
  VirtualClock clock;
  auto fetch = web_->Fetch(page.url, &clock);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch.value().url, page.url);
  EXPECT_EQ(fetch.value().outlink_urls.size(), page.outlinks.size());
  EXPECT_GE(fetch.value().tokens.size(), 30u);
  EXPECT_GT(clock.NowMicros(), 0);
}

TEST_F(WebTest, FetchFailuresHappenAtConfiguredRate) {
  WebConfig config = SmallConfig(11);
  config.fetch_failure_prob = 0.2;
  auto web = SimulatedWeb::Generate(tax_, config, {});
  ASSERT_TRUE(web.ok());
  int failures = 0;
  const int attempts = 1000;
  for (int i = 0; i < attempts; ++i) {
    auto fetch = web.value().Fetch(web.value().page(i % 500).url);
    if (!fetch.ok()) {
      EXPECT_EQ(fetch.status().code(), StatusCode::kUnavailable);
      ++failures;
    }
  }
  EXPECT_NEAR(failures / static_cast<double>(attempts), 0.2, 0.06);
}

TEST_F(WebTest, KeywordSeedsComeFromTheTopic) {
  auto seeds = web_->KeywordSeeds(cycling_, 20);
  ASSERT_EQ(seeds.size(), 20u);
  for (const auto& url : seeds) {
    auto idx = web_->PageIndexByUrl(url);
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(web_->page(idx.value()).topic, cycling_);
  }
  // Disjoint slices for the coverage experiment's S1/S2.
  auto s2 = web_->KeywordSeeds(cycling_, 20, /*first=*/20);
  std::unordered_set<std::string> s1_set(seeds.begin(), seeds.end());
  for (const auto& url : s2) EXPECT_FALSE(s1_set.contains(url));
}

TEST_F(WebTest, CommunityHasLargeEffectiveRadius) {
  // From the top keyword seeds, some cycling pages should be many links
  // away (locality-window linking) — the premise of Figure 7.
  auto seeds = web_->KeywordSeeds(cycling_, 10);
  std::vector<uint32_t> sources;
  for (const auto& url : seeds) {
    sources.push_back(web_->PageIndexByUrl(url).value());
  }
  auto dist = web_->ShortestDistances(sources);
  int max_dist = 0, reachable = 0;
  for (uint32_t idx : web_->PagesOfTopic(cycling_)) {
    if (dist[idx] >= 0) {
      ++reachable;
      max_dist = std::max(max_dist, dist[idx]);
    }
  }
  EXPECT_GT(reachable, 150);
  EXPECT_GE(max_dist, 4);
}

TEST_F(WebTest, AffinityCreatesCrossTopicCitations) {
  int64_t to_first_aid = 0, total = 0;
  for (uint32_t idx : web_->PagesOfTopic(cycling_)) {
    for (uint32_t t : web_->page(idx).outlinks) {
      to_first_aid += (web_->page(t).topic == first_aid_);
      ++total;
    }
  }
  double fraction = static_cast<double>(to_first_aid) / total;
  EXPECT_GT(fraction, 0.03);
  EXPECT_LT(fraction, 0.15);
}

TEST_F(WebTest, SampledTrainingDocsMatchPageText) {
  // Training documents and page text share the topic's vocabulary prefix.
  Rng rng(3);
  auto doc = web_->SampleDocumentForTopic(cycling_, &rng);
  EXPECT_GT(doc.size(), 10u);
  auto keywords = web_->TopicKeywords(cycling_, 3);
  EXPECT_EQ(keywords.size(), 3u);
}

TEST_F(WebTest, HubsExistAndConcentrateOnTopic) {
  int hubs = 0;
  for (uint32_t idx : web_->PagesOfTopic(cycling_)) {
    const PageInfo& page = web_->page(idx);
    if (!page.is_hub) continue;
    ++hubs;
    EXPECT_GE(page.outlinks.size(), 30u);
    int same = 0;
    for (uint32_t t : page.outlinks) {
      same += (web_->page(t).topic == cycling_);
    }
    EXPECT_GT(static_cast<double>(same) / page.outlinks.size(), 0.6);
  }
  EXPECT_GT(hubs, 2);
  EXPECT_LT(hubs, 40);
}

}  // namespace
}  // namespace focus::webgraph
