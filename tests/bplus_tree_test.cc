#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/random.h"

namespace focus::storage {
namespace {

class BPlusTreeTest : public testing::Test {
 protected:
  BPlusTreeTest() : pool_(&disk_, 64) {}

  BPlusTree MakeTree() {
    auto tree = BPlusTree::Create(&pool_);
    EXPECT_TRUE(tree.ok());
    return tree.TakeValue();
  }

  MemDiskManager disk_;
  BufferPool pool_;
};

TEST_F(BPlusTreeTest, EmptyTree) {
  BPlusTree tree = MakeTree();
  EXPECT_EQ(tree.num_entries(), 0u);
  EXPECT_EQ(tree.height(), 1);
  std::vector<uint64_t> vals;
  ASSERT_TRUE(tree.GetAll(42, &vals).ok());
  EXPECT_TRUE(vals.empty());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, InsertAndGet) {
  BPlusTree tree = MakeTree();
  ASSERT_TRUE(tree.Insert(10, 100).ok());
  ASSERT_TRUE(tree.Insert(20, 200).ok());
  ASSERT_TRUE(tree.Insert(10, 101).ok());
  std::vector<uint64_t> vals;
  ASSERT_TRUE(tree.GetAll(10, &vals).ok());
  EXPECT_EQ(vals, (std::vector<uint64_t>{100, 101}));
  vals.clear();
  ASSERT_TRUE(tree.GetAll(20, &vals).ok());
  EXPECT_EQ(vals, (std::vector<uint64_t>{200}));
  vals.clear();
  ASSERT_TRUE(tree.GetAll(30, &vals).ok());
  EXPECT_TRUE(vals.empty());
}

TEST_F(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree = MakeTree();
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(i, i * 2).ok());
  }
  EXPECT_EQ(tree.num_entries(), 1000u);
  EXPECT_GT(tree.height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (uint64_t i = 0; i < 1000; ++i) {
    std::vector<uint64_t> vals;
    ASSERT_TRUE(tree.GetAll(i, &vals).ok());
    ASSERT_EQ(vals.size(), 1u) << "key " << i;
    EXPECT_EQ(vals[0], i * 2);
  }
}

TEST_F(BPlusTreeTest, ReverseInsertionOrder) {
  BPlusTree tree = MakeTree();
  for (uint64_t i = 2000; i > 0; --i) {
    ASSERT_TRUE(tree.Insert(i, i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto it = tree.Begin();
  ASSERT_TRUE(it.ok());
  uint64_t k, v, prev = 0;
  size_t n = 0;
  while (it.value().Next(&k, &v)) {
    EXPECT_GT(k, prev);
    prev = k;
    ++n;
  }
  EXPECT_EQ(n, 2000u);
}

TEST_F(BPlusTreeTest, ScanIsSortedWithDuplicates) {
  BPlusTree tree = MakeTree();
  Rng rng(11);
  std::multimap<uint64_t, uint64_t> reference;
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.Uniform(300);  // heavy duplication
    uint64_t val = i;                 // unique values
    ASSERT_TRUE(tree.Insert(key, val).ok());
    reference.emplace(key, val);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.num_entries(), 5000u);

  // Full scan must equal the sorted reference.
  auto it = tree.Begin();
  ASSERT_TRUE(it.ok());
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  uint64_t k, v;
  while (it.value().Next(&k, &v)) scanned.emplace_back(k, v);
  ASSERT_TRUE(it.value().status().ok());
  ASSERT_EQ(scanned.size(), reference.size());
  size_t i = 0;
  for (auto& [rk, rv] : reference) {
    EXPECT_EQ(scanned[i].first, rk);
    ++i;
  }
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));

  // Every key's duplicate set must be complete.
  for (uint64_t key = 0; key < 300; ++key) {
    std::vector<uint64_t> vals;
    ASSERT_TRUE(tree.GetAll(key, &vals).ok());
    auto range = reference.equal_range(key);
    std::set<uint64_t> expected;
    for (auto jt = range.first; jt != range.second; ++jt) {
      expected.insert(jt->second);
    }
    EXPECT_EQ(std::set<uint64_t>(vals.begin(), vals.end()), expected)
        << "key " << key;
  }
}

TEST_F(BPlusTreeTest, RemoveEntries) {
  BPlusTree tree = MakeTree();
  for (uint64_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(tree.Insert(i % 37, i).ok());
  }
  ASSERT_TRUE(tree.Remove(5, 5).ok());
  ASSERT_TRUE(tree.Remove(5, 42).ok());
  EXPECT_EQ(tree.Remove(5, 5).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.num_entries(), 598u);
  std::vector<uint64_t> vals;
  ASSERT_TRUE(tree.GetAll(5, &vals).ok());
  EXPECT_EQ(std::count(vals.begin(), vals.end(), 5u), 0);
  EXPECT_EQ(std::count(vals.begin(), vals.end(), 42u), 0);
  EXPECT_EQ(std::count(vals.begin(), vals.end(), 79u), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, SeekStartsMidway) {
  BPlusTree tree = MakeTree();
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(i * 10, i).ok());
  }
  auto it = tree.Seek(55);
  ASSERT_TRUE(it.ok());
  uint64_t k, v;
  ASSERT_TRUE(it.value().Next(&k, &v));
  EXPECT_EQ(k, 60u);  // first key >= 55
}

TEST_F(BPlusTreeTest, RandomizedAgainstReference) {
  BPlusTree tree = MakeTree();
  Rng rng(99);
  std::multimap<uint64_t, uint64_t> reference;
  for (int round = 0; round < 12000; ++round) {
    uint64_t key = rng.Uniform(2000);
    uint64_t val = rng.Next();
    if (rng.Bernoulli(0.85) || reference.empty()) {
      ASSERT_TRUE(tree.Insert(key, val).ok());
      reference.emplace(key, val);
    } else {
      // Remove a random existing entry.
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      ASSERT_TRUE(tree.Remove(it->first, it->second).ok());
      reference.erase(it);
    }
  }
  EXPECT_EQ(tree.num_entries(), reference.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto it = tree.Begin();
  ASSERT_TRUE(it.ok());
  uint64_t k, v;
  auto ref_it = reference.begin();
  while (it.value().Next(&k, &v)) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(k, ref_it->first);
    ++ref_it;
  }
  EXPECT_EQ(ref_it, reference.end());
}

TEST_F(BPlusTreeTest, LargeSequentialBuild) {
  BPlusTree tree = MakeTree();
  const uint64_t n = 60000;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(i, i).ok());
  }
  EXPECT_EQ(tree.num_entries(), n);
  EXPECT_GE(tree.height(), 2);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Spot probes.
  for (uint64_t i = 0; i < n; i += 997) {
    std::vector<uint64_t> vals;
    ASSERT_TRUE(tree.GetAll(i, &vals).ok());
    ASSERT_EQ(vals.size(), 1u);
    EXPECT_EQ(vals[0], i);
  }
}

}  // namespace
}  // namespace focus::storage
