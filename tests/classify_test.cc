#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "classify/model.h"
#include "classify/single_probe.h"
#include "classify/trainer.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "taxonomy/taxonomy.h"
#include "text/document.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::classify {
namespace {

using taxonomy::Cid;
using taxonomy::Taxonomy;
using text::TermVector;

// A two-level taxonomy with distinctive vocabulary per leaf plus shared
// background vocabulary.
class ClassifyTest : public testing::Test {
 protected:
  ClassifyTest() : pool_(&disk_, 512), catalog_(&pool_), rng_(42) {
    Cid rec = tax_.AddTopic(taxonomy::kRootCid, "recreation").value();
    Cid biz = tax_.AddTopic(taxonomy::kRootCid, "business").value();
    cycling_ = tax_.AddTopic(rec, "cycling").value();
    gardening_ = tax_.AddTopic(rec, "gardening").value();
    funds_ = tax_.AddTopic(biz, "mutual_funds").value();
    stocks_ = tax_.AddTopic(biz, "stocks").value();
    leaves_ = {cycling_, gardening_, funds_, stocks_};
  }

  // Document of `n` tokens: 60% from the leaf's own vocabulary (20 terms),
  // 40% from a shared background vocabulary (50 terms).
  TermVector MakeDoc(Cid leaf, int n = 120) {
    std::vector<std::string> tokens;
    tokens.reserve(n);
    for (int i = 0; i < n; ++i) {
      if (rng_.Bernoulli(0.6)) {
        tokens.push_back(StrCat("w_", tax_.Name(leaf), "_",
                                rng_.Uniform(20)));
      } else {
        tokens.push_back(StrCat("bg_", rng_.Uniform(50)));
      }
    }
    return text::BuildTermVector(tokens);
  }

  std::vector<LabeledDocument> MakeTrainingSet(int docs_per_leaf) {
    std::vector<LabeledDocument> out;
    uint64_t did = 1;
    for (Cid leaf : leaves_) {
      for (int i = 0; i < docs_per_leaf; ++i) {
        out.push_back(LabeledDocument{did++, leaf, MakeDoc(leaf)});
      }
    }
    return out;
  }

  storage::MemDiskManager disk_;
  storage::BufferPool pool_;
  sql::Catalog catalog_;
  Rng rng_;
  Taxonomy tax_;
  Cid cycling_, gardening_, funds_, stocks_;
  std::vector<Cid> leaves_;
};

TEST_F(ClassifyTest, TrainerRequiresExamplesUnderEveryChild) {
  std::vector<LabeledDocument> only_cycling = {
      LabeledDocument{1, cycling_, MakeDoc(cycling_)}};
  Trainer trainer;
  auto model = trainer.Train(tax_, only_cycling);
  EXPECT_EQ(model.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ClassifyTest, TrainerProducesSparseModel) {
  Trainer trainer(TrainerOptions{.max_features_per_node = 100});
  auto model = trainer.Train(tax_, MakeTrainingSet(20));
  ASSERT_TRUE(model.ok()) << model.status();
  // One NodeModel per internal node (root + 2).
  EXPECT_EQ(model.value().nodes.size(), 3u);
  for (const auto& [cid, node] : model.value().nodes) {
    EXPECT_LE(node.stats.size(), 100u) << "node " << cid;
    EXPECT_GT(node.stats.size(), 0u) << "node " << cid;
  }
  // Priors of siblings sum to ~1.
  for (Cid c0 : tax_.InternalPreorder()) {
    double total = 0;
    for (Cid ci : tax_.Children(c0)) {
      total += std::exp(model.value().logprior[ci]);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(ClassifyTest, ClassifierRecoversGeneratingClass) {
  Trainer trainer;
  auto model = trainer.Train(tax_, MakeTrainingSet(30));
  ASSERT_TRUE(model.ok());
  HierarchicalClassifier clf(&tax_, &model.value());
  int correct = 0, total = 0;
  for (Cid leaf : leaves_) {
    for (int i = 0; i < 10; ++i) {
      ClassScores scores = clf.Classify(MakeDoc(leaf));
      if (scores.BestLeaf(tax_) == leaf) ++correct;
      ++total;
    }
  }
  EXPECT_GE(correct, total * 9 / 10) << correct << "/" << total;
}

TEST_F(ClassifyTest, ProbabilityMeasureProperty) {
  // §1.1: R_root = 1 and sum over children of R_ci equals R_c0.
  Trainer trainer;
  auto model = trainer.Train(tax_, MakeTrainingSet(15));
  ASSERT_TRUE(model.ok());
  HierarchicalClassifier clf(&tax_, &model.value());
  for (int i = 0; i < 5; ++i) {
    ClassScores scores = clf.Classify(MakeDoc(leaves_[i % 4]));
    EXPECT_DOUBLE_EQ(scores.Prob(taxonomy::kRootCid), 1.0);
    for (Cid c0 : tax_.InternalPreorder()) {
      double child_sum = 0;
      for (Cid ci : tax_.Children(c0)) child_sum += scores.Prob(ci);
      EXPECT_NEAR(child_sum, scores.Prob(c0), 1e-9);
    }
  }
}

TEST_F(ClassifyTest, SoftRelevanceMatchesGoodTopicMass) {
  Trainer trainer;
  auto model = trainer.Train(tax_, MakeTrainingSet(15));
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(tax_.MarkGood(cycling_).ok());
  HierarchicalClassifier clf(&tax_, &model.value());
  TermVector doc = MakeDoc(cycling_);
  ClassScores scores = clf.Classify(doc);
  EXPECT_NEAR(clf.Relevance(doc), scores.Prob(cycling_), 1e-12);
  EXPECT_GT(clf.Relevance(doc), 0.5);
  EXPECT_LT(clf.Relevance(MakeDoc(funds_)), 0.2);
}

TEST_F(ClassifyTest, BlobPayloadRoundTrip) {
  std::vector<ChildStat> stats = {{3, -1.5}, {4, -2.25}, {900, -0.125}};
  auto back = DecodeBlobPayload(EncodeBlobPayload(stats));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 3u);
  EXPECT_EQ(back.value()[2].kcid, 900);
  EXPECT_DOUBLE_EQ(back.value()[1].logtheta, -2.25);
  EXPECT_FALSE(DecodeBlobPayload("12345").ok());  // bad length
}

TEST_F(ClassifyTest, DocumentTableRoundTrip) {
  auto doc_table = CreateDocumentTable(&catalog_, "DOCUMENT");
  ASSERT_TRUE(doc_table.ok());
  TermVector terms = MakeDoc(cycling_);
  ASSERT_TRUE(InsertDocument(doc_table.value(), 77, terms).ok());
  auto back = FetchDocument(doc_table.value(), 77);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), terms);
  auto missing = FetchDocument(doc_table.value(), 78);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing.value().empty());
}

// The central equivalence property: the in-memory classifier, both
// SingleProbe variants and BulkProbe must produce identical posteriors.
class ProbeEquivalenceTest : public ClassifyTest,
                             public testing::WithParamInterface<int> {};

TEST_P(ProbeEquivalenceTest, AllFourClassifiersAgree) {
  rng_.Seed(GetParam() * 1000 + 7);
  Trainer trainer(TrainerOptions{.max_features_per_node = 150});
  auto model = trainer.Train(tax_, MakeTrainingSet(12));
  ASSERT_TRUE(model.ok());
  HierarchicalClassifier ref(&tax_, &model.value());
  auto tables = BuildClassifierTables(&catalog_, tax_, model.value());
  ASSERT_TRUE(tables.ok()) << tables.status();
  SingleProbeClassifier sql_probe(&ref, &tables.value(),
                                  SingleProbeClassifier::Variant::kSqlRows);
  SingleProbeClassifier blob_probe(&ref, &tables.value(),
                                   SingleProbeClassifier::Variant::kBlob);
  BulkProbeClassifier bulk(&ref, &tables.value());

  auto doc_table = CreateDocumentTable(&catalog_, "DOCUMENT");
  ASSERT_TRUE(doc_table.ok());
  std::vector<TermVector> docs;
  for (int i = 0; i < 8; ++i) {
    docs.push_back(MakeDoc(leaves_[i % 4]));
    ASSERT_TRUE(InsertDocument(doc_table.value(), i + 1, docs.back()).ok());
  }

  auto bulk_scores = bulk.ClassifyAll(doc_table.value());
  ASSERT_TRUE(bulk_scores.ok()) << bulk_scores.status();
  ASSERT_EQ(bulk_scores.value().size(), docs.size());

  for (size_t i = 0; i < docs.size(); ++i) {
    ClassScores expected = ref.Classify(docs[i]);
    auto s1 = sql_probe.Classify(docs[i]);
    auto s2 = blob_probe.Classify(docs[i]);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    const ClassScores& s3 = bulk_scores.value().at(i + 1);
    for (Cid c = 0; c < tax_.num_topics(); ++c) {
      EXPECT_NEAR(s1.value().logp[c], expected.logp[c], 1e-9)
          << "sql variant, cid " << c;
      EXPECT_NEAR(s2.value().logp[c], expected.logp[c], 1e-9)
          << "blob variant, cid " << c;
      EXPECT_NEAR(s3.logp[c], expected.logp[c], 1e-9)
          << "bulk variant, cid " << c;
    }
  }
  EXPECT_GT(sql_probe.stats().probes, 0u);
  EXPECT_GT(blob_probe.stats().probes, 0u);
  EXPECT_GT(bulk.stats().output_rows, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbeEquivalenceTest, testing::Range(1, 6));

TEST_F(ClassifyTest, SingleProbeRowCounts) {
  Trainer trainer;
  auto model = trainer.Train(tax_, MakeTrainingSet(10));
  ASSERT_TRUE(model.ok());
  HierarchicalClassifier ref(&tax_, &model.value());
  auto tables = BuildClassifierTables(&catalog_, tax_, model.value());
  ASSERT_TRUE(tables.ok());
  SingleProbeClassifier sql_probe(&ref, &tables.value(),
                                  SingleProbeClassifier::Variant::kSqlRows);
  SingleProbeClassifier blob_probe(&ref, &tables.value(),
                                   SingleProbeClassifier::Variant::kBlob);
  TermVector doc = MakeDoc(cycling_);
  ASSERT_TRUE(sql_probe.Classify(doc).ok());
  ASSERT_TRUE(blob_probe.Classify(doc).ok());
  // The SQL variant fetches one heap row per (child, term) stat; BLOB
  // fetches one packed row per term. Equal probes, fewer BLOB fetches.
  EXPECT_EQ(sql_probe.stats().probes, blob_probe.stats().probes);
  EXPECT_GE(sql_probe.stats().rows_fetched,
            blob_probe.stats().rows_fetched);
}

}  // namespace
}  // namespace focus::classify
