#include <gtest/gtest.h>

#include <algorithm>

#include "text/document.h"
#include "text/tokenizer.h"
#include "util/hash.h"

namespace focus::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("Mountain-Biking, Trails & Racing!");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"mountain", "biking", "trails",
                                      "racing"}));
}

TEST(TokenizerTest, RemovesStopwordsAndShortTokens) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("the bike is on a hill");
  EXPECT_EQ(tokens, (std::vector<std::string>{"bike", "hill"}));
}

TEST(TokenizerTest, KeepsStopwordsWhenDisabled) {
  Tokenizer tok(TokenizerOptions{.min_token_length = 1,
                                 .remove_stopwords = false});
  auto tokens = tok.Tokenize("the bike");
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "bike"}));
}

TEST(TokenizerTest, DigitsAndUnderscoresAreTokenChars) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("db2 term_42 x");
  EXPECT_EQ(tokens, (std::vector<std::string>{"db2", "term_42"}));
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  ,,  ").empty());
}

TEST(DocumentTest, TermVectorCountsAndSorts) {
  TermVector tv = BuildTermVector({"bike", "race", "bike", "bike", "race"});
  ASSERT_EQ(tv.size(), 2u);
  EXPECT_TRUE(std::is_sorted(tv.begin(), tv.end(),
                             [](const TermFreq& a, const TermFreq& b) {
                               return a.tid < b.tid;
                             }));
  int freq_bike = 0, freq_race = 0;
  for (const auto& tf : tv) {
    if (tf.tid == TermId("bike")) freq_bike = tf.freq;
    if (tf.tid == TermId("race")) freq_race = tf.freq;
  }
  EXPECT_EQ(freq_bike, 3);
  EXPECT_EQ(freq_race, 2);
  EXPECT_EQ(TermVectorLength(tv), 5);
}

TEST(DocumentTest, EmptyTermVector) {
  TermVector tv = BuildTermVector({});
  EXPECT_TRUE(tv.empty());
  EXPECT_EQ(TermVectorLength(tv), 0);
}

}  // namespace
}  // namespace focus::text
