// Cost-model lockdown: the stats the dictionary layer feeds the model
// (exact distinct counts, code-range selectivity), the formula's shape
// (strict monotonicity in both row counts, buffer-pressure flips), a
// measured-fastest regression matrix on Fig-8-like join shapes (the
// chosen path must match wall-clock at the extremes), and the EXPLAIN
// ANALYZE rendering of the per-node annotation.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "sql/exec/analyze.h"
#include "sql/exec/batch.h"
#include "sql/exec/batch_ops.h"
#include "sql/exec/cost_model.h"
#include "sql/exec/dictionary.h"
#include "sql/exec/operator.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::sql {
namespace {

// ---- Stats collection ----

TEST(EncodedStatsTest, DistinctAndNullCountsAreExact) {
  // 7 distinct int64 values, 300 rows, 40 NULLs; one never-repeating
  // double column (stays unencoded by default policy).
  ColumnSet rows(Schema({{"k", TypeId::kInt64}, {"x", TypeId::kDouble}}));
  Rng rng(404);
  uint64_t nulls = 0;
  for (int i = 0; i < 300; ++i) {
    bool null = (i < 120 && i % 3 == 0);
    if (null) ++nulls;
    rows.AppendTuple(Tuple({null ? Value::Null(TypeId::kInt64)
                                 : Value::Int64(i % 7),
                            Value::Double(i + rng.NextDouble())}));
  }
  EncodedColumnSet enc = EncodedColumnSet::FromColumnSet(rows);
  ASSERT_TRUE(enc.encoded(0));
  EXPECT_EQ(enc.stats(0).rows, 300u);
  EXPECT_EQ(enc.stats(0).distinct, 7u);
  EXPECT_EQ(enc.stats(0).nulls, nulls);
  EXPECT_EQ(enc.dict(0)->size(), 7);
  EXPECT_FALSE(enc.encoded(1));  // doubles opt out by default
  EXPECT_EQ(enc.stats(1).rows, 300u);
}

TEST(EncodedStatsTest, CodeRangeSelectivityMatchesExactCount) {
  ColumnSet rows(Schema({{"k", TypeId::kInt32}}));
  Rng rng(505);
  std::vector<int32_t> raw;
  for (int i = 0; i < 1000; ++i) {
    int32_t v = static_cast<int32_t>(rng.Uniform(50)) * 2;  // even 0..98
    raw.push_back(v);
    rows.AppendTuple(Tuple({Value::Int32(v)}));
  }
  DictionaryPtr dict = ColumnDictionary::Build(rows.col(0));
  ColumnPtr codes = EncodeColumn(rows.col(0), *dict);
  std::vector<Column> sch{{"k", TypeId::kInt32}};
  ColumnSet encoded(Schema(sch), {codes});

  // Three value ranges, including bounds that fall between dictionary
  // entries (odd values never occur).
  struct Range {
    int32_t lo, hi;
  };
  for (Range rg : std::vector<Range>{{10, 40}, {11, 41}, {0, 99}, {97, 98}}) {
    size_t exact = 0;
    for (int32_t v : raw) {
      if (v >= rg.lo && v < rg.hi) ++exact;
    }
    BatchOperatorPtr scan = std::make_unique<BatchSource>(&encoded);
    BatchOperatorPtr filt = std::make_unique<BatchFilter>(
        std::move(scan),
        CodeRangePredicate(0, dict->LowerBound(Value::Int32(rg.lo)),
                           dict->LowerBound(Value::Int32(rg.hi))));
    ColumnSet out;
    ASSERT_TRUE(CollectInto(filt.get(), &out).ok());
    EXPECT_EQ(out.num_rows(), exact) << "range [" << rg.lo << "," << rg.hi
                                     << ")";
  }
}

// ---- The formula ----

TEST(CostModelTest, EstimateJoinRowsContainment) {
  JoinStats s;
  s.left_rows = 100;
  s.left_distinct = 10;
  s.right_rows = 50;
  s.right_distinct = 25;
  EXPECT_EQ(EstimateJoinRows(s), 100u * 50u / 25u);
  s.right_rows = 0;
  EXPECT_EQ(EstimateJoinRows(s), 0u);  // empty side: no output
  s.right_rows = 1;
  EXPECT_GE(EstimateJoinRows(s), 1u);  // never rounds to zero
  // Unknown distinct counts fall back to row counts (key-like columns).
  JoinStats u;
  u.left_rows = 80;
  u.right_rows = 40;
  EXPECT_EQ(EstimateJoinRows(u), 80u * 40u / 80u);
}

TEST(CostModelTest, CostStrictlyMonotoneInRowCounts) {
  for (AccessPath p : {AccessPath::kIndexProbe, AccessPath::kSortMerge,
                       AccessPath::kHashJoin}) {
    double prev = -1;
    for (uint64_t l : {100u, 1000u, 10000u, 100000u}) {
      JoinStats s;
      s.left_rows = l;
      s.left_distinct = l;
      s.right_rows = 20000;
      s.right_distinct = 20000;
      double c = JoinPathCost(p, s);
      EXPECT_GT(c, prev) << AccessPathName(p) << " left_rows=" << l;
      prev = c;
    }
    prev = -1;
    for (uint64_t r : {100u, 1000u, 10000u, 100000u}) {
      JoinStats s;
      s.left_rows = 5000;
      s.left_distinct = 5000;
      s.right_rows = r;
      s.right_distinct = r;
      double c = JoinPathCost(p, s);
      EXPECT_GT(c, prev) << AccessPathName(p) << " right_rows=" << r;
      prev = c;
    }
  }
}

TEST(CostModelTest, BufferPressureFlipsProbeToMerge) {
  // A probe-friendly shape: few outer runs against a large sorted inner.
  JoinStats s;
  s.left_rows = 2000;
  s.left_distinct = 2000;
  s.right_rows = 100000;
  s.right_distinct = 100000;
  s.right_bytes = 100000 * 16;
  s.buffer_bytes = 1 << 30;  // inner fits: probes stay warm
  EXPECT_EQ(ChooseJoinPath(s).path, AccessPath::kIndexProbe);

  s.buffer_bytes = 1 << 20;  // inner exceeds the pool: probes thrash
  EXPECT_EQ(ChooseJoinPath(s).path, AccessPath::kSortMerge);

  // The same flip with a dense code domain (run-table probe).
  s.right_domain = 100000;
  s.buffer_bytes = 1 << 30;
  EXPECT_EQ(ChooseJoinPath(s).path, AccessPath::kIndexProbe);
  s.buffer_bytes = 1 << 20;
  EXPECT_EQ(ChooseJoinPath(s).path, AccessPath::kSortMerge);
}

TEST(CostModelTest, UnsortedInputsChargeTheSortToMergeOnly) {
  // Sort-merge pays n·log n for each unsorted side; the probe path pays
  // it too (it binary-searches a sorted inner), so relative order shifts
  // toward probing only via the merge side's larger constant.
  JoinStats sorted;
  sorted.left_rows = 50000;
  sorted.left_distinct = 50000;
  sorted.right_rows = 60000;
  sorted.right_distinct = 60000;
  JoinStats unsorted = sorted;
  unsorted.left_sorted = false;
  unsorted.right_sorted = false;
  EXPECT_GT(JoinPathCost(AccessPath::kSortMerge, unsorted),
            JoinPathCost(AccessPath::kSortMerge, sorted));
  // Hash joins never sort: the flag must not change their cost.
  EXPECT_EQ(JoinPathCost(AccessPath::kHashJoin, unsorted),
            JoinPathCost(AccessPath::kHashJoin, sorted));
}

// ---- Measured-fastest regression matrix (Fig-8 shapes) ----

ColumnSet SortedTable(size_t rows, int64_t key_step, uint64_t payload_seed) {
  ColumnSet t(Schema({{"k", TypeId::kInt64}, {"v", TypeId::kDouble}}));
  Rng rng(payload_seed);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendTuple(Tuple({Value::Int64(static_cast<int64_t>(i) * key_step),
                         Value::Double(rng.NextDouble())}));
  }
  return t;
}

double MinJoinSeconds(bool probe, const ColumnSet& l, const ColumnSet& r) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    BatchOperatorPtr op;
    if (probe) {
      op = std::make_unique<BatchProbeJoin>(
          std::make_unique<BatchSource>(&l), std::make_unique<BatchSource>(&r),
          0, 0);
    } else {
      op = std::make_unique<BatchMergeJoin>(
          std::make_unique<BatchSource>(&l), std::make_unique<BatchSource>(&r),
          std::vector<int>{0}, std::vector<int>{0});
    }
    ColumnSet out;
    Status st = CollectInto(op.get(), &out);
    EXPECT_TRUE(st.ok()) << st;
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    best = std::min(best, secs);
  }
  return best;
}

TEST(CostModelTest, ChosenPathMatchesMeasuredFastestAtExtremes) {
  // The two ends of the Fig-8 size axis. Tiny outer vs large inner:
  // a handful of binary searches beats walking the whole inner (both
  // paths drain the inner once; merge additionally compares every row).
  // Comparable large sides: the sequential merge walk beats one
  // cache-missing search per outer run.
  const size_t kBig = 100000;
  ColumnSet big_l = SortedTable(kBig, 1, 1);
  ColumnSet big_r = SortedTable(kBig, 1, 2);
  ColumnSet tiny_l = SortedTable(64, static_cast<int64_t>(kBig) / 64, 3);

  struct Shape {
    const ColumnSet* l;
    const ColumnSet* r;
    const char* name;
  };
  for (const Shape& sh : std::vector<Shape>{{&tiny_l, &big_r, "tiny~big"},
                                            {&big_l, &big_r, "big~big"}}) {
    JoinStats s;
    s.left_rows = sh.l->num_rows();
    s.left_distinct = sh.l->num_rows();
    s.right_rows = sh.r->num_rows();
    s.right_distinct = sh.r->num_rows();
    s.right_bytes = sh.r->num_rows() * 16;
    s.buffer_bytes = 1u << 30;
    PathChoice choice = ChooseJoinPath(s);
    double probe_s = MinJoinSeconds(true, *sh.l, *sh.r);
    double merge_s = MinJoinSeconds(false, *sh.l, *sh.r);
    // Both paths drain the inner side once, so at tiny~big the measured
    // gap can be a few percent — within scheduler noise when the whole
    // suite runs in parallel. Only hold the model to the measurement
    // when the measurement itself is decisive.
    double gap = std::abs(probe_s - merge_s) / std::max(probe_s, merge_s);
    if (gap < 0.25) continue;
    AccessPath fastest = probe_s < merge_s ? AccessPath::kIndexProbe
                                           : AccessPath::kSortMerge;
    EXPECT_EQ(choice.path, fastest)
        << sh.name << ": probe=" << probe_s << "s merge=" << merge_s
        << "s but model chose " << AccessPathName(choice.path);
  }
}

// ---- EXPLAIN ANALYZE rendering ----

TEST(CostModelTest, ExplainRendersPathAndEstimateNextToActual) {
  ColumnSet rows(Schema({{"k", TypeId::kInt32}}));
  for (int i = 0; i < 17; ++i) rows.AppendTuple(Tuple({Value::Int32(i)}));
  PlanStats stats;
  BatchOperatorPtr op = AnalyzeBatchCost(
      &stats, "Join DOCUMENT~STAT", std::make_unique<BatchSource>(&rows),
      AccessPathName(AccessPath::kIndexProbe), 42);
  ColumnSet out;
  ASSERT_TRUE(CollectInto(op.get(), &out).ok());
  std::string report = stats.Format();
  EXPECT_NE(report.find("Join DOCUMENT~STAT"), std::string::npos) << report;
  EXPECT_NE(report.find("path=index-probe"), std::string::npos) << report;
  EXPECT_NE(report.find("est_rows=42"), std::string::npos) << report;
  EXPECT_NE(report.find("rows=17"), std::string::npos) << report;

  // Null stats: the wrapper must vanish (production plans pay nothing).
  BatchOperatorPtr plain = AnalyzeBatchCost(
      nullptr, "x", std::make_unique<BatchSource>(&rows), "sort-merge", 1);
  ColumnSet out2;
  EXPECT_TRUE(CollectInto(plain.get(), &out2).ok());
  EXPECT_EQ(out2.num_rows(), 17u);
}

}  // namespace
}  // namespace focus::sql
