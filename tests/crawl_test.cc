#include <gtest/gtest.h>

#include <unordered_set>

#include "crawl/crawl_db.h"
#include "crawl/frontier.h"
#include "crawl/metrics.h"
#include "crawl/monitor.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "taxonomy/taxonomy.h"
#include "util/hash.h"

namespace focus::crawl {
namespace {

FrontierEntry Entry(uint64_t oid, int numtries, double relevance,
                    int serverload) {
  FrontierEntry e;
  e.oid = oid;
  e.url = "http://h/" + std::to_string(oid);
  e.numtries = numtries;
  e.relevance = relevance;
  e.serverload = serverload;
  return e;
}

TEST(FrontierTest, AggressiveDiscoveryOrder) {
  // (numtries asc, relevance desc, serverload asc) — serverload compared
  // in coarse buckets.
  Frontier f(PriorityPolicy::kAggressiveDiscovery);
  f.AddOrUpdate(Entry(1, 0, 0.2, 0));
  f.AddOrUpdate(Entry(2, 0, 0.9, 40));
  f.AddOrUpdate(Entry(3, 1, 1.0, 0));  // higher numtries loses
  f.AddOrUpdate(Entry(4, 0, 0.9, 1));  // same relevance, far lighter server
  EXPECT_EQ(f.PopBest()->oid, 4u);
  EXPECT_EQ(f.PopBest()->oid, 2u);
  EXPECT_EQ(f.PopBest()->oid, 1u);
  EXPECT_EQ(f.PopBest()->oid, 3u);
  EXPECT_FALSE(f.PopBest().has_value());
}

TEST(FrontierTest, ServerloadTiesBreakFifo) {
  // Small serverload differences land in the same bucket; insertion order
  // decides so no server class is systematically preferred.
  Frontier f(PriorityPolicy::kAggressiveDiscovery);
  f.AddOrUpdate(Entry(1, 0, 0.9, 5));
  f.AddOrUpdate(Entry(2, 0, 0.9, 0));
  EXPECT_EQ(f.PopBest()->oid, 1u);
  EXPECT_EQ(f.PopBest()->oid, 2u);
}

TEST(FrontierTest, BreadthFirstIsFifo) {
  Frontier f(PriorityPolicy::kBreadthFirst);
  f.AddOrUpdate(Entry(10, 0, 0.1, 0));
  f.AddOrUpdate(Entry(20, 0, 0.9, 0));
  f.AddOrUpdate(Entry(30, 0, 0.5, 0));
  EXPECT_EQ(f.PopBest()->oid, 10u);
  EXPECT_EQ(f.PopBest()->oid, 20u);
  EXPECT_EQ(f.PopBest()->oid, 30u);
}

TEST(FrontierTest, UpdateReRanksWithoutDuplication) {
  Frontier f(PriorityPolicy::kAggressiveDiscovery);
  f.AddOrUpdate(Entry(1, 0, 0.1, 0));
  f.AddOrUpdate(Entry(2, 0, 0.5, 0));
  f.AddOrUpdate(Entry(1, 0, 0.95, 0));  // boost oid 1
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.PopBest()->oid, 1u);
  EXPECT_EQ(f.PopBest()->oid, 2u);
  EXPECT_TRUE(f.empty());
}

TEST(FrontierTest, PolicySwitchRebuilds) {
  Frontier f(PriorityPolicy::kAggressiveDiscovery);
  f.AddOrUpdate(Entry(1, 0, 0.1, 0));
  f.AddOrUpdate(Entry(2, 0, 0.9, 0));
  f.SetPolicy(PriorityPolicy::kBreadthFirst);
  EXPECT_EQ(f.PopBest()->oid, 1u);  // insertion order, not relevance
  f.SetPolicy(PriorityPolicy::kAggressiveDiscovery);
  EXPECT_EQ(f.PopBest()->oid, 2u);
}

TEST(FrontierTest, EraseAndPeek) {
  Frontier f;
  f.AddOrUpdate(Entry(7, 0, 0.5, 0));
  ASSERT_NE(f.Peek(7), nullptr);
  EXPECT_DOUBLE_EQ(f.Peek(7)->relevance, 0.5);
  EXPECT_EQ(f.Peek(8), nullptr);
  f.Erase(7);
  EXPECT_FALSE(f.Contains(7));
  EXPECT_FALSE(f.PopBest().has_value());
}

TEST(FrontierTest, RetryDeadLinksPrefersHighNumtries) {
  Frontier f(PriorityPolicy::kRetryDeadLinks);
  f.AddOrUpdate(Entry(1, 0, 0.9, 0));
  f.AddOrUpdate(Entry(2, 3, 0.2, 0));
  EXPECT_EQ(f.PopBest()->oid, 2u);
}

TEST(ServerIdTest, HostDeterminesServer) {
  EXPECT_EQ(ServerIdOf("http://s1.cycling.example/p1"),
            ServerIdOf("http://s1.cycling.example/p999"));
  EXPECT_NE(ServerIdOf("http://s1.cycling.example/p1"),
            ServerIdOf("http://s2.cycling.example/p1"));
  EXPECT_GE(ServerIdOf("http://anything/x"), 0);
}

class CrawlDbTest : public testing::Test {
 protected:
  CrawlDbTest() : pool_(&disk_, 256), catalog_(&pool_) {
    auto db = CrawlDb::Create(&catalog_);
    EXPECT_TRUE(db.ok());
    db_.emplace(db.TakeValue());
  }
  storage::MemDiskManager disk_;
  storage::BufferPool pool_;
  sql::Catalog catalog_;
  std::optional<CrawlDb> db_;
};

TEST_F(CrawlDbTest, AddLookupVisitCycle) {
  const std::string url = "http://s1.cycling.example/p1";
  ASSERT_TRUE(db_->AddUrl(url, 0.7, 2).ok());
  EXPECT_EQ(db_->AddUrl(url, 0.5, 0).code(), StatusCode::kAlreadyExists);

  auto rec = db_->LookupByUrl(url);
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec.value().visited);
  EXPECT_DOUBLE_EQ(rec.value().relevance, 0.7);
  EXPECT_EQ(rec.value().serverload, 2);
  EXPECT_EQ(rec.value().sid, ServerIdOf(url));

  uint64_t oid = UrlOid(url);
  ASSERT_TRUE(db_->RecordAttempt(oid).ok());
  ASSERT_TRUE(db_->RecordVisit(oid, 0.85, 5, 123456).ok());
  rec = db_->LookupByUrl(url);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().visited);
  EXPECT_EQ(rec.value().numtries, 1);
  EXPECT_DOUBLE_EQ(rec.value().relevance, 0.85);
  EXPECT_EQ(rec.value().kcid, 5);
  EXPECT_EQ(rec.value().lastvisited, 123456);

  auto missing = db_->Lookup(999);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().has_value());
}

TEST_F(CrawlDbTest, RaiseRelevanceOnlyRaisesUnvisited) {
  const std::string url = "http://h/x";
  ASSERT_TRUE(db_->AddUrl(url, 0.3, 0).ok());
  uint64_t oid = UrlOid(url);
  ASSERT_TRUE(db_->RaiseRelevance(oid, 0.6).ok());
  EXPECT_DOUBLE_EQ(db_->LookupByUrl(url).value().relevance, 0.6);
  ASSERT_TRUE(db_->RaiseRelevance(oid, 0.4).ok());  // lower: no change
  EXPECT_DOUBLE_EQ(db_->LookupByUrl(url).value().relevance, 0.6);
  ASSERT_TRUE(db_->RecordVisit(oid, 0.2, 1, 1).ok());
  ASSERT_TRUE(db_->RaiseRelevance(oid, 0.99).ok());  // visited: no change
  EXPECT_DOUBLE_EQ(db_->LookupByUrl(url).value().relevance, 0.2);
}

TEST_F(CrawlDbTest, LinksAndEdgeWeights) {
  const std::string a = "http://s1.a.example/p", b = "http://s2.b.example/p";
  ASSERT_TRUE(db_->AddUrl(a, 0, 0).ok());
  ASSERT_TRUE(db_->AddUrl(b, 0, 0).ok());
  ASSERT_TRUE(db_->AddLink(a, b).ok());
  ASSERT_TRUE(db_->RecordVisit(UrlOid(a), 0.9, 1, 1).ok());
  ASSERT_TRUE(db_->RecordVisit(UrlOid(b), 0.4, 1, 2).ok());
  ASSERT_TRUE(db_->RefreshEdgeWeights().ok());
  auto it = db_->link_table()->Scan();
  storage::Rid rid;
  sql::Tuple row;
  ASSERT_TRUE(it.Next(&rid, &row));
  EXPECT_DOUBLE_EQ(row.Get(4).AsDouble(), 0.4);  // wgt_fwd = R(dst)
  EXPECT_DOUBLE_EQ(row.Get(5).AsDouble(), 0.9);  // wgt_rev = R(src)
  EXPECT_EQ(db_->num_links(), 1u);
}

TEST_F(CrawlDbTest, ClassCensusOrdersByCount) {
  taxonomy::Taxonomy tax;
  auto a = tax.AddTopic(taxonomy::kRootCid, "alpha").value();
  auto b = tax.AddTopic(taxonomy::kRootCid, "beta").value();
  for (int i = 0; i < 9; ++i) {
    std::string url = "http://h/p" + std::to_string(i);
    ASSERT_TRUE(db_->AddUrl(url, 0, 0).ok());
    // 6 alpha, 3 beta; one page left unvisited.
    if (i == 8) continue;
    ASSERT_TRUE(db_->RecordVisit(UrlOid(url), 0.5,
                                 i < 6 ? static_cast<int32_t>(a)
                                       : static_cast<int32_t>(b),
                                 i + 1)
                    .ok());
  }
  auto census = ClassCensus(*db_, tax);
  ASSERT_TRUE(census.ok());
  ASSERT_EQ(census.value().size(), 2u);
  EXPECT_EQ(census.value()[0].name, "beta");
  EXPECT_EQ(census.value()[0].count, 2);  // i = 6,7
  EXPECT_EQ(census.value()[1].name, "alpha");
  EXPECT_EQ(census.value()[1].count, 6);
}

TEST_F(CrawlDbTest, HarvestByMinuteAggregates) {
  for (int i = 0; i < 4; ++i) {
    std::string url = "http://h/p" + std::to_string(i);
    ASSERT_TRUE(db_->AddUrl(url, 0, 0).ok());
    // Two visits in minute 0, two in minute 2.
    int64_t t = (i < 2 ? 10 : 130) * 1000000LL;
    ASSERT_TRUE(db_->RecordVisit(UrlOid(url), i * 0.2, 1, t).ok());
  }
  auto series = HarvestByMinute(*db_);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series.value().size(), 2u);
  EXPECT_EQ(series.value()[0].minute, 0);
  EXPECT_EQ(series.value()[0].pages, 2);
  EXPECT_NEAR(series.value()[0].avg_relevance, 0.1, 1e-9);
  EXPECT_EQ(series.value()[1].minute, 2);
  EXPECT_NEAR(series.value()[1].avg_relevance, 0.5, 1e-9);
}

TEST_F(CrawlDbTest, MissedHubNeighborsFindsUntriedCitations) {
  // Hub h cites three pages: one visited, one tried-but-failed, one never
  // tried. Only the last qualifies.
  const std::string hub = "http://s1.hubs.example/h";
  const std::string visited = "http://s2.x.example/v";
  const std::string failed = "http://s3.x.example/f";
  const std::string fresh = "http://s4.x.example/n";
  for (const auto& u : {hub, visited, failed, fresh}) {
    ASSERT_TRUE(db_->AddUrl(u, 0.5, 0).ok());
  }
  for (const auto& u : {visited, failed, fresh}) {
    ASSERT_TRUE(db_->AddLink(hub, u).ok());
  }
  ASSERT_TRUE(db_->RecordAttempt(UrlOid(visited)).ok());
  ASSERT_TRUE(db_->RecordVisit(UrlOid(visited), 0.9, 1, 1).ok());
  ASSERT_TRUE(db_->RecordAttempt(UrlOid(failed)).ok());

  // HUBS table: the hub plus low-score noise.
  auto hubs = catalog_.CreateTable(
      "HUBS", sql::Schema({{"oid", sql::TypeId::kInt64},
                           {"score", sql::TypeId::kDouble}}));
  ASSERT_TRUE(hubs.ok());
  ASSERT_TRUE(hubs.value()
                  ->Insert(sql::Tuple(
                      {sql::Value::Int64(static_cast<int64_t>(UrlOid(hub))),
                       sql::Value::Double(0.9)}))
                  .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(hubs.value()
                    ->Insert(sql::Tuple({sql::Value::Int64(100 + i),
                                         sql::Value::Double(0.001)}))
                    .ok());
  }
  auto missed = MissedHubNeighbors(*db_, hubs.value(), 0.9);
  ASSERT_TRUE(missed.ok());
  ASSERT_EQ(missed.value().size(), 1u);
  EXPECT_EQ(missed.value()[0].url, fresh);
}

TEST(MetricsTest, MovingAverageWindows) {
  std::vector<Visit> visits(6);
  double rel[] = {1, 0, 1, 0, 1, 0};
  for (int i = 0; i < 6; ++i) visits[i].relevance = rel[i];
  auto avg = MovingAverageRelevance(visits, 2);
  ASSERT_EQ(avg.size(), 6u);
  EXPECT_DOUBLE_EQ(avg[0], 1.0);
  EXPECT_DOUBLE_EQ(avg[1], 0.5);
  EXPECT_DOUBLE_EQ(avg[5], 0.5);
}

TEST(MetricsTest, CoverageCountsUniqueHits) {
  std::unordered_set<uint64_t> ref_oids = {1, 2, 3, 4};
  std::unordered_set<int32_t> ref_servers = {
      ServerIdOf("http://a/x"), ServerIdOf("http://b/x")};
  std::vector<Visit> visits(4);
  visits[0].oid = 1;
  visits[0].url = "http://a/1";
  visits[1].oid = 99;  // not in reference
  visits[1].url = "http://z/2";
  visits[2].oid = 2;
  visits[2].url = "http://b/3";
  visits[3].oid = 2;  // duplicate oid: no double counting
  visits[3].url = "http://b/4";
  auto cov = Coverage(visits, ref_oids, ref_servers);
  ASSERT_EQ(cov.url_fraction.size(), 4u);
  EXPECT_DOUBLE_EQ(cov.url_fraction[0], 0.25);
  EXPECT_DOUBLE_EQ(cov.url_fraction[1], 0.25);
  EXPECT_DOUBLE_EQ(cov.url_fraction[3], 0.5);
  EXPECT_DOUBLE_EQ(cov.server_fraction[0], 0.5);
  EXPECT_DOUBLE_EQ(cov.server_fraction[3], 1.0);
}

TEST(MetricsTest, ReferenceSetsThreshold) {
  std::vector<Visit> visits(3);
  visits[0].relevance = 0.9;   // log > -1
  visits[0].oid = 1;
  visits[0].url = "http://a/1";
  visits[1].relevance = 0.2;   // log < -1
  visits[1].oid = 2;
  visits[1].url = "http://b/2";
  visits[2].relevance = 0.5;   // log > -1
  visits[2].oid = 3;
  visits[2].url = "http://c/3";
  auto sets = RelevantReferenceSets(visits, -1.0);
  EXPECT_EQ(sets.oids, (std::unordered_set<uint64_t>{1, 3}));
  EXPECT_EQ(sets.servers.size(), 2u);
}

TEST_F(CrawlDbTest, CrawledGraphDistancesBfs) {
  // Chain a -> b -> c, plus unreachable d.
  std::vector<std::string> urls = {"http://s1.t.example/a",
                                   "http://s2.t.example/b",
                                   "http://s3.t.example/c",
                                   "http://s4.t.example/d"};
  for (const auto& u : urls) ASSERT_TRUE(db_->AddUrl(u, 0, 0).ok());
  ASSERT_TRUE(db_->AddLink(urls[0], urls[1]).ok());
  ASSERT_TRUE(db_->AddLink(urls[1], urls[2]).ok());
  auto dist = CrawledGraphDistances(
      *db_, {UrlOid(urls[0])},
      {UrlOid(urls[0]), UrlOid(urls[1]), UrlOid(urls[2]), UrlOid(urls[3])});
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist.value(), (std::vector<int>{0, 1, 2, -1}));
  auto hist = DistanceHistogram(dist.value(), 10);
  EXPECT_EQ(hist[0], 1);
  EXPECT_EQ(hist[1], 1);
  EXPECT_EQ(hist[2], 1);
}

}  // namespace
}  // namespace focus::crawl
