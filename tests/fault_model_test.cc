// Units for the hostile-web fault model: the webgraph's failure taxonomy
// (determinism per attempt, outages, truncation, dead servers), the
// crawler's RetryPolicy and CircuitBreakerRegistry, the frontier's
// not-before gating, and breaker persistence through CrawlDb.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crawl/circuit_breaker.h"
#include "crawl/crawl_db.h"
#include "crawl/frontier.h"
#include "crawl/retry_policy.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "taxonomy/taxonomy.h"
#include "text/tokenizer.h"
#include "util/clock.h"
#include "util/hash.h"
#include "webgraph/simulated_web.h"

namespace focus::crawl {
namespace {

using taxonomy::Cid;
using taxonomy::Taxonomy;
using webgraph::SimulatedWeb;
using webgraph::TopicAffinity;
using webgraph::WebConfig;

Taxonomy MakeTax() {
  Taxonomy tax;
  Cid rec = tax.AddTopic(taxonomy::kRootCid, "recreation").value();
  tax.AddTopic(rec, "cycling").value();
  tax.AddTopic(rec, "gardening").value();
  return tax;
}

WebConfig FaultyConfig(uint64_t seed = 11) {
  WebConfig config;
  config.seed = seed;
  config.pages_per_topic = 120;
  config.background_pages = 800;
  config.background_servers = 40;
  config.fetch_failure_prob = 0.15;
  config.faults.permanent_prob = 0.05;
  config.faults.timeout_prob = 0.05;
  config.faults.truncate_prob = 0.10;
  config.faults.flaky_server_fraction = 0.10;
  config.faults.slow_server_fraction = 0.10;
  return config;
}

SimulatedWeb MakeWeb(const Taxonomy& tax, const WebConfig& config) {
  auto web = SimulatedWeb::Generate(tax, config, {});
  EXPECT_TRUE(web.ok()) << web.status();
  return web.TakeValue();
}

// --- webgraph fault taxonomy ---

TEST(FaultModelTest, FetchOutcomesAreDeterministicPerAttempt) {
  Taxonomy tax = MakeTax();
  SimulatedWeb web_a = MakeWeb(tax, FaultyConfig());
  SimulatedWeb web_b = MakeWeb(tax, FaultyConfig());
  // Same (page, attempt ordinal) sequence -> identical status codes and
  // identical truncation flags, in two independent web instances.
  int failures = 0, truncated = 0;
  for (uint32_t i = 0; i < 200; ++i) {
    const std::string& url = web_a.page(i).url;
    for (int attempt = 0; attempt < 3; ++attempt) {
      VirtualClock clock_a, clock_b;
      auto a = web_a.Fetch(url, &clock_a);
      auto b = web_b.Fetch(web_b.page(i).url, &clock_b);
      ASSERT_EQ(a.ok(), b.ok()) << url << " attempt " << attempt;
      if (!a.ok()) {
        EXPECT_EQ(a.status().code(), b.status().code()) << url;
        ++failures;
      } else {
        EXPECT_EQ(a.value().truncated, b.value().truncated) << url;
        EXPECT_EQ(a.value().tokens.size(), b.value().tokens.size());
        if (a.value().truncated) ++truncated;
      }
    }
  }
  // The fault mix actually exercised every branch.
  EXPECT_GT(failures, 20);
  EXPECT_GT(truncated, 5);
}

TEST(FaultModelTest, TaxonomyProducesEveryFailureClass) {
  Taxonomy tax = MakeTax();
  SimulatedWeb web = MakeWeb(tax, FaultyConfig());
  int transient = 0, permanent = 0, timeout = 0;
  for (uint32_t i = 0; i < web.num_pages(); ++i) {
    VirtualClock clock;
    auto r = web.Fetch(web.page(i).url, &clock);
    if (r.ok()) continue;
    switch (r.status().code()) {
      case StatusCode::kUnavailable:
        ++transient;
        break;
      case StatusCode::kNotFound:
        ++permanent;
        break;
      case StatusCode::kDeadlineExceeded:
        ++timeout;
        // Timeouts charge the configured deadline, not page latency.
        EXPECT_GE(clock.NowMicros(),
                  static_cast<int64_t>(FaultyConfig().faults.timeout_ms *
                                       1000));
        break;
      default:
        ADD_FAILURE() << "unexpected code " << r.status().message();
    }
  }
  EXPECT_GT(transient, 0);
  EXPECT_GT(permanent, 0);
  EXPECT_GT(timeout, 0);
}

TEST(FaultModelTest, ScheduledOutageRefusesWithoutConsumingAttempts) {
  Taxonomy tax = MakeTax();
  WebConfig config = FaultyConfig(13);
  config.fetch_failure_prob = 0;
  config.faults.permanent_prob = 0;
  config.faults.timeout_prob = 0;
  config.faults.truncate_prob = 0;
  config.faults.flaky_server_fraction = 0;
  SimulatedWeb probe = MakeWeb(tax, config);
  int32_t server = probe.page(0).server_id;
  config.faults.outages.push_back(
      webgraph::ServerOutage{server, /*start_s=*/0.0, /*end_s=*/50.0});

  SimulatedWeb web = MakeWeb(tax, config);
  EXPECT_TRUE(web.InOutage(server, 10.0));
  EXPECT_FALSE(web.InOutage(server, 50.0));

  const std::string& url = web.page(0).url;
  VirtualClock clock;
  auto during = web.Fetch(url, &clock);
  ASSERT_FALSE(during.ok());
  EXPECT_EQ(during.status().code(), StatusCode::kResourceExhausted);

  // After the window the fetch behaves as the *first* attempt would in an
  // outage-free web: the refusal consumed no attempt ordinal.
  clock.AdvanceSeconds(60.0);
  auto after = web.Fetch(url, &clock);
  VirtualClock fresh_clock;
  auto fresh = MakeWeb(tax, [&] {
                 WebConfig c = config;
                 c.faults.outages.clear();
                 return c;
               }()).Fetch(url, &fresh_clock);
  ASSERT_EQ(after.ok(), fresh.ok());
  if (after.ok()) {
    EXPECT_EQ(after.value().tokens, fresh.value().tokens);
  } else {
    EXPECT_EQ(after.status().code(), fresh.status().code());
  }
}

TEST(FaultModelTest, DeadServersAlwaysTimeOut) {
  Taxonomy tax = MakeTax();
  WebConfig config = FaultyConfig(17);
  config.faults.dead_server_fraction = 0.25;
  SimulatedWeb web = MakeWeb(tax, config);
  int dead_pages = 0;
  for (uint32_t i = 0; i < 300; ++i) {
    if (!web.ServerIsDead(web.page(i).server_id)) continue;
    ++dead_pages;
    for (int attempt = 0; attempt < 3; ++attempt) {
      VirtualClock clock;
      auto r = web.Fetch(web.page(i).url, &clock);
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
    }
  }
  EXPECT_GT(dead_pages, 0);
}

TEST(FaultModelTest, TruncatedPagesTokenizeWithoutCrashing) {
  Taxonomy tax = MakeTax();
  WebConfig config = FaultyConfig(19);
  config.fetch_failure_prob = 0;
  config.faults.permanent_prob = 0;
  config.faults.timeout_prob = 0;
  config.faults.truncate_prob = 1.0;  // every transfer is cut short
  config.faults.flaky_server_fraction = 0;
  SimulatedWeb web = MakeWeb(tax, config);
  text::Tokenizer tokenizer;
  int checked = 0;
  for (uint32_t i = 0; i < 50; ++i) {
    VirtualClock clock;
    auto r = web.Fetch(web.page(i).url, &clock);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r.value().truncated);
    EXPECT_FALSE(r.value().tokens.empty());
    // The malformed tail must survive tokenization like any hostile input.
    for (const std::string& tok : r.value().tokens) {
      auto cleaned = tokenizer.Tokenize(tok);
      for (const auto& c : cleaned) EXPECT_GE(c.size(), 2u);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 50);
}

// --- RetryPolicy ---

TEST(RetryPolicyTest, ClassifiesStatusCodes) {
  EXPECT_EQ(ClassifyFetchFailure(Status::Unavailable("x")),
            FailureClass::kTransient);
  EXPECT_EQ(ClassifyFetchFailure(Status::NotFound("x")),
            FailureClass::kPermanent);
  EXPECT_EQ(ClassifyFetchFailure(Status::DeadlineExceeded("x")),
            FailureClass::kTimeout);
  EXPECT_EQ(ClassifyFetchFailure(Status::ResourceExhausted("x")),
            FailureClass::kServerBusy);
}

FrontierEntry EntryWithTries(int numtries) {
  FrontierEntry e;
  e.oid = 42;
  e.url = "http://srv/a";
  e.numtries = numtries;
  return e;
}

TEST(RetryPolicyTest, TransientRetriesThenExhausts) {
  RetryPolicy policy(RetryPolicyOptions{}, /*retry_budget=*/3);
  auto d0 = policy.Decide(EntryWithTries(0), FailureClass::kTransient, 0);
  EXPECT_FALSE(d0.drop);
  EXPECT_EQ(d0.cost, 1);
  EXPECT_GT(d0.ready_at_us, 0);
  auto d2 = policy.Decide(EntryWithTries(2), FailureClass::kTransient, 0);
  EXPECT_TRUE(d2.drop);
  // The drop charges the remaining budget so numtries lands at >= budget.
  EXPECT_GE(EntryWithTries(2).numtries + d2.cost, 3);
}

TEST(RetryPolicyTest, TimeoutsCountDouble) {
  RetryPolicy policy(RetryPolicyOptions{}, /*retry_budget=*/3);
  auto d = policy.Decide(EntryWithTries(0), FailureClass::kTimeout, 0);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.cost, 2);
  auto d1 = policy.Decide(EntryWithTries(1), FailureClass::kTimeout, 0);
  EXPECT_TRUE(d1.drop);  // 1 + 2 >= 3
}

TEST(RetryPolicyTest, PermanentDropsImmediatelyChargingFullBudget) {
  RetryPolicy policy(RetryPolicyOptions{}, /*retry_budget=*/3);
  auto d = policy.Decide(EntryWithTries(0), FailureClass::kPermanent, 0);
  EXPECT_TRUE(d.drop);
  EXPECT_EQ(d.cost, 3);  // durable dropped marker for ResumeFromDb
}

TEST(RetryPolicyTest, ServerBusyIsFreeAndNeverDrops) {
  RetryPolicy policy(RetryPolicyOptions{}, /*retry_budget=*/3);
  auto d = policy.Decide(EntryWithTries(2), FailureClass::kServerBusy, 100);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.cost, 0);
  EXPECT_GT(d.ready_at_us, 100);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithBoundedJitter) {
  RetryPolicyOptions opts;
  opts.base_backoff_s = 2.0;
  opts.backoff_multiplier = 2.0;
  opts.max_backoff_s = 120.0;
  opts.jitter = 0.25;
  RetryPolicy policy(opts, /*retry_budget=*/10);
  double prev_nominal = 0;
  for (int tries = 1; tries <= 8; ++tries) {
    double nominal = 2.0 * (1 << (tries - 1));
    if (nominal > 120.0) nominal = 120.0;
    double s = policy.BackoffSeconds(/*oid=*/7, tries);
    EXPECT_GE(s, nominal * 0.75) << tries;
    EXPECT_LE(s, nominal * 1.25) << tries;
    EXPECT_GE(nominal, prev_nominal);
    prev_nominal = nominal;
    // Deterministic: same (oid, tries) -> same jitter.
    EXPECT_DOUBLE_EQ(s, policy.BackoffSeconds(7, tries));
  }
  // Different oids jitter differently (with overwhelming probability).
  EXPECT_NE(policy.BackoffSeconds(7, 3), policy.BackoffSeconds(8, 3));
}

// --- CircuitBreakerRegistry ---

TEST(CircuitBreakerTest, OpensAfterThresholdAndProbesHalfOpen) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  opts.cooldown_s = 10.0;
  opts.cooldown_multiplier = 2.0;
  opts.probe_interval_s = 2.0;
  CircuitBreakerRegistry reg(opts);
  const int32_t sid = 99;

  // Below threshold: stays closed.
  EXPECT_TRUE(reg.Admit(sid, 0).allow);
  reg.OnFailure(sid, 0);
  reg.OnFailure(sid, 1000);
  EXPECT_TRUE(reg.Admit(sid, 2000).allow);
  EXPECT_EQ(reg.open_count(), 0);

  // Third consecutive failure trips it.
  auto tripped = reg.OnFailure(sid, 2000);
  EXPECT_TRUE(tripped.transitioned);
  EXPECT_EQ(tripped.record.state, BreakerState::kOpen);
  EXPECT_EQ(reg.open_count(), 1);

  // Denied during cooldown, with the retry hint at the cooldown end.
  auto denied = reg.Admit(sid, 2000 + 5'000'000);
  EXPECT_FALSE(denied.allow);
  EXPECT_EQ(denied.retry_at_us, 2000 + 10'000'000);

  // After the cooldown: half-open, one probe admitted.
  auto probe = reg.Admit(sid, 2000 + 10'000'000);
  EXPECT_TRUE(probe.allow);
  EXPECT_TRUE(probe.transitioned);
  EXPECT_EQ(probe.record.state, BreakerState::kHalfOpen);
  // A second caller inside the probe interval is denied.
  EXPECT_FALSE(reg.Admit(sid, 2000 + 10'500'000).allow);

  // Probe failure re-opens with an escalated cooldown (20s).
  auto reopened = reg.OnFailure(sid, 2000 + 11'000'000);
  EXPECT_TRUE(reopened.transitioned);
  EXPECT_EQ(reopened.record.state, BreakerState::kOpen);
  EXPECT_EQ(reopened.record.open_until_us, 2000 + 11'000'000 + 20'000'000);

  // Eventually a successful probe closes it and resets the cooldown.
  auto probe2 = reg.Admit(sid, 2000 + 31'000'000);
  EXPECT_TRUE(probe2.allow);
  auto closed = reg.OnSuccess(sid);
  EXPECT_TRUE(closed.transitioned);
  EXPECT_EQ(closed.record.state, BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(closed.record.cooldown_s, opts.cooldown_s);
  EXPECT_EQ(reg.open_count(), 0);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailureCount) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  CircuitBreakerRegistry reg(opts);
  for (int round = 0; round < 5; ++round) {
    reg.OnFailure(7, 0);
    reg.OnFailure(7, 0);
    reg.OnSuccess(7);  // never three in a row
  }
  EXPECT_EQ(reg.open_count(), 0);
  EXPECT_TRUE(reg.Admit(7, 0).allow);
}

TEST(CircuitBreakerTest, DisabledViaAdmissionSkipStillTracksNothing) {
  // The registry itself is policy-free; "enabled" gating lives in the
  // crawler. A never-admitted registry just reports empty state.
  CircuitBreakerRegistry reg(CircuitBreakerOptions{});
  EXPECT_TRUE(reg.Snapshot().empty());
  EXPECT_EQ(reg.open_count(), 0);
}

// --- frontier not-before gating ---

TEST(FrontierReadyGateTest, ParkedEntriesAreInvisibleUntilReady) {
  Frontier f(PriorityPolicy::kAggressiveDiscovery);
  FrontierEntry now_entry;
  now_entry.oid = 1;
  now_entry.url = "http://a/1";
  now_entry.relevance = 0.2;
  FrontierEntry later;
  later.oid = 2;
  later.url = "http://a/2";
  later.relevance = 0.9;  // outranks, but parked
  later.ready_at_us = 1'000'000;
  f.AddOrUpdate(now_entry);
  f.AddOrUpdate(later);

  EXPECT_EQ(f.NextReadyMicros().value(), 1'000'000);
  auto first = f.PopBest(/*now_us=*/0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->oid, 1u);
  EXPECT_FALSE(f.PopBest(/*now_us=*/999'999).has_value());
  auto second = f.PopBest(/*now_us=*/1'000'000);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->oid, 2u);
  // Promotion cleared the gate on the popped copy.
  EXPECT_EQ(second->ready_at_us, 0);
}

TEST(FrontierReadyGateTest, UngatedPopSeesParkedEntries) {
  // The default (kNoTimeGate) pop drains everything — fault-free crawls
  // and tests keep their historical behaviour.
  Frontier f(PriorityPolicy::kBreadthFirst);
  FrontierEntry e;
  e.oid = 5;
  e.url = "http://a/5";
  e.ready_at_us = 123'456'789;
  f.AddOrUpdate(e);
  auto popped = f.PopBest();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->oid, 5u);
}

TEST(FrontierReadyGateTest, ShardedPopHonorsGateAndReportsNextReady) {
  ShardedFrontier f(PriorityPolicy::kBreadthFirst, /*num_shards=*/4);
  for (uint64_t i = 0; i < 8; ++i) {
    FrontierEntry e;
    e.oid = 100 + i;
    e.url = "http://srv" + std::to_string(i) + "/p";
    e.ready_at_us = (i % 2 == 0) ? 0 : 5'000'000;
    f.AddOrUpdate(e);
  }
  int ready_now = 0;
  bool stolen = false;
  while (f.PopPreferShard(0, /*now_us=*/0, &stolen).has_value()) {
    ++ready_now;
  }
  EXPECT_EQ(ready_now, 4);
  EXPECT_EQ(f.size(), 4u);
  EXPECT_EQ(f.NextReadyMicros().value(), 5'000'000);
  int ready_later = 0;
  while (f.PopBest(/*now_us=*/5'000'000).has_value()) ++ready_later;
  EXPECT_EQ(ready_later, 4);
  EXPECT_TRUE(f.empty());
}

TEST(FrontierReadyGateTest, ReRankPreservesParkedState) {
  Frontier f(PriorityPolicy::kAggressiveDiscovery);
  FrontierEntry e;
  e.oid = 9;
  e.url = "http://a/9";
  e.relevance = 0.5;
  e.ready_at_us = 2'000'000;
  f.AddOrUpdate(e);
  // A citation raises its relevance while it waits out the backoff.
  FrontierEntry updated = e;
  updated.relevance = 0.9;
  f.AddOrUpdate(updated);
  EXPECT_FALSE(f.PopBest(0).has_value());
  auto popped = f.PopBest(2'000'000);
  ASSERT_TRUE(popped.has_value());
  EXPECT_DOUBLE_EQ(popped->relevance, 0.9);
}

// --- persistence ---

class FaultPersistenceTest : public testing::Test {
 protected:
  FaultPersistenceTest() : pool_(&disk_, 256), catalog_(&pool_) {
    auto db = CrawlDb::Create(&catalog_);
    EXPECT_TRUE(db.ok());
    db_.emplace(db.TakeValue());
  }
  storage::MemDiskManager disk_;
  storage::BufferPool pool_;
  sql::Catalog catalog_;
  std::optional<CrawlDb> db_;
};

TEST_F(FaultPersistenceTest, RecordFailurePersistsRetrySchedule) {
  const std::string url = "http://s1.example/p";
  ASSERT_TRUE(db_->AddUrl(url, 0.5, 0).ok());
  uint64_t oid = UrlOid(url);
  ASSERT_TRUE(db_->RecordFailure(oid, /*cost=*/2, /*next_retry_us=*/777).ok());
  auto rec = db_->LookupByUrl(url);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().numtries, 2);
  EXPECT_EQ(rec.value().next_retry_us, 777);
  // A visit clears the pending retry.
  ASSERT_TRUE(db_->RecordVisit(oid, 0.9, 3, 1000).ok());
  rec = db_->LookupByUrl(url);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().next_retry_us, 0);
}

TEST_F(FaultPersistenceTest, BreakerStateRoundTripsThroughDb) {
  BreakerRecord a;
  a.sid = 17;
  a.state = BreakerState::kOpen;
  a.consecutive_failures = 4;
  a.open_until_us = 123'000'000;
  a.cooldown_s = 40.0;
  BreakerRecord b;
  b.sid = 23;
  b.state = BreakerState::kHalfOpen;
  b.consecutive_failures = 6;
  b.cooldown_s = 80.0;
  ASSERT_TRUE(db_->UpsertBreaker(a).ok());
  ASSERT_TRUE(db_->UpsertBreaker(b).ok());
  // Upsert overwrites in place: no duplicate rows per sid.
  a.consecutive_failures = 5;
  ASSERT_TRUE(db_->UpsertBreaker(a).ok());

  auto loaded = db_->LoadBreakers();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);

  CircuitBreakerRegistry reg(CircuitBreakerOptions{});
  for (const auto& rec : loaded.value()) reg.Restore(rec);
  EXPECT_EQ(reg.open_count(), 2);
  // The restored open breaker still denies before its deadline.
  EXPECT_FALSE(reg.Admit(17, 100'000'000).allow);
  EXPECT_TRUE(reg.Admit(17, 123'000'000).allow);  // half-open probe

  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  for (const auto& rec : snap) {
    if (rec.sid == 23) {
      EXPECT_EQ(rec.state, BreakerState::kHalfOpen);
      EXPECT_EQ(rec.consecutive_failures, 6);
      EXPECT_DOUBLE_EQ(rec.cooldown_s, 80.0);
    }
  }
}

}  // namespace
}  // namespace focus::crawl
