// Parallel-engine correctness: every morsel-parallel operator must be
// BIT-exact (not merely close) with its serial vectorized counterpart, at
// every thread count and morsel size, on randomized inputs including
// NULL-heavy keys (the serial-fallback path), heavy key skew, and empty
// inputs — plus radix partition boundary units, exchange determinism, and
// end-to-end kVectorized-vs-kParallel runs of the Figure 3 and Figure 4
// plans. This file is the suite the CI parallel-exec matrix runs per
// thread count (FOCUS_TEST_THREADS) and TSan runs for race coverage.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "classify/trainer.h"
#include "distill/distiller.h"
#include "distill/join_distiller.h"
#include "obs/metrics.h"
#include "sql/catalog.h"
#include "sql/exec/analyze.h"
#include "sql/exec/batch.h"
#include "sql/exec/batch_ops.h"
#include "sql/exec/operator.h"
#include "sql/exec/parallel.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "taxonomy/taxonomy.h"
#include "text/document.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::sql {
namespace {

// Thread counts every equivalence case sweeps. The CI matrix additionally
// pins one count per job via FOCUS_TEST_THREADS so each count also gets a
// full-suite run under TSan.
std::vector<int> ThreadCounts() {
  if (const char* env = std::getenv("FOCUS_TEST_THREADS")) {
    return {std::max(1, std::atoi(env))};
  }
  return {1, 2, 4, 8};
}

// Morsel sizes: degenerate one-row morsels (maximum scheduling freedom),
// a boundary-straddling odd size, and a size larger than most inputs
// (single morsel, inline path).
const int kMorselSizes[] = {1, 7, 1024};

OperatorPtr Source(const Schema& schema, std::vector<Tuple> rows) {
  return std::make_unique<MaterializedSource>(schema, std::move(rows));
}

BatchOperatorPtr BatchOf(const Schema& schema, std::vector<Tuple> rows,
                         int batch_rows = kDefaultBatchRows) {
  return std::make_unique<Vectorize>(Source(schema, std::move(rows)),
                                     batch_rows);
}

ColumnSet Drain(BatchOperatorPtr op) {
  ColumnSet out;
  Status s = CollectInto(op.get(), &out);
  EXPECT_TRUE(s.ok()) << s;
  return out;
}

// Bit-exact equality, column by column. Doubles compare with ==: the
// parallel engine promises the identical accumulation order, so even the
// last ulp must match.
void ExpectBitEqual(const ColumnSet& got, const ColumnSet& want,
                    const std::string& what) {
  ASSERT_EQ(got.num_columns(), want.num_columns()) << what;
  ASSERT_EQ(got.num_rows(), want.num_rows()) << what;
  for (int c = 0; c < want.num_columns(); ++c) {
    const ColumnData& g = got.col(c);
    const ColumnData& w = want.col(c);
    ASSERT_EQ(static_cast<int>(g.type), static_cast<int>(w.type)) << what;
    for (size_t r = 0; r < want.num_rows(); ++r) {
      ASSERT_EQ(g.IsNull(r), w.IsNull(r))
          << what << " col " << c << " row " << r;
      if (w.IsNull(r)) continue;
      switch (w.type) {
        case TypeId::kInt32:
          ASSERT_EQ(g.i32[r], w.i32[r]) << what << " col " << c << " row "
                                        << r;
          break;
        case TypeId::kInt64:
          ASSERT_EQ(g.i64[r], w.i64[r]) << what << " col " << c << " row "
                                        << r;
          break;
        case TypeId::kDouble:
          ASSERT_EQ(g.f64[r], w.f64[r]) << what << " col " << c << " row "
                                        << r;
          break;
        case TypeId::kString:
          ASSERT_EQ(g.StringAt(r), w.StringAt(r))
              << what << " col " << c << " row " << r;
          break;
      }
    }
  }
}

// Key distributions the sweeps cover. kNullKeys forces the unpackable
// serial-fallback path; kSkewed puts ~90% of rows on one key so one radix
// partition dwarfs the rest.
enum class KeyDist { kUniform, kSkewed, kNullKeys };

Schema RowSchema() {
  return Schema({{"k", TypeId::kInt32},
                 {"v", TypeId::kInt64},
                 {"x", TypeId::kDouble}});
}

std::vector<Tuple> RandomRows(Rng* rng, size_t n, KeyDist dist,
                              int key_range = 50) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value k;
    switch (dist) {
      case KeyDist::kUniform:
        k = Value::Int32(static_cast<int32_t>(rng->Uniform(key_range)) - 7);
        break;
      case KeyDist::kSkewed:
        k = rng->Bernoulli(0.9)
                ? Value::Int32(3)
                : Value::Int32(static_cast<int32_t>(rng->Uniform(key_range)));
        break;
      case KeyDist::kNullKeys:
        k = rng->Bernoulli(0.3)
                ? Value::Null(TypeId::kInt32)
                : Value::Int32(static_cast<int32_t>(rng->Uniform(key_range)));
        break;
    }
    rows.push_back(
        Tuple({k, Value::Int64(static_cast<int64_t>(rng->Uniform(100000))),
               Value::Double(rng->NextDouble() * 10 - 5)}));
  }
  return rows;
}

const KeyDist kAllDists[] = {KeyDist::kUniform, KeyDist::kSkewed,
                             KeyDist::kNullKeys};
const size_t kRowCounts[] = {0, 1, 333};

// ---- Radix partition units ----

TEST(RadixPartitionerTest, PartitionsAreDisjointStableKeyRanges) {
  Rng rng(11);
  ColumnSet rows(RowSchema());
  for (const Tuple& t : RandomRows(&rng, 500, KeyDist::kUniform, 200)) {
    rows.AppendTuple(t);
  }
  std::vector<SortKey> keys{{0, false}};
  auto plan = RadixPartitioner::Plan(3, rows, keys);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->num_partitions(), 8);

  MorselDispatcher disp(4, /*morsel_rows=*/64);
  ParallelOpStats stats;
  RadixPartitions parts = plan->Scatter(rows, keys, &disp, &stats);
  ASSERT_EQ(parts.num_partitions, 8);
  ASSERT_EQ(parts.offsets.size(), 9u);
  EXPECT_EQ(parts.offsets.front(), 0u);
  EXPECT_EQ(parts.offsets.back(), rows.num_rows());
  EXPECT_EQ(parts.idx.size(), rows.num_rows());
  EXPECT_EQ(stats.partitions, 8u);
  EXPECT_GT(stats.morsels, 0u);

  // Every row exactly once.
  std::vector<int> seen(rows.num_rows(), 0);
  for (int64_t i : parts.idx) seen[static_cast<size_t>(i)]++;
  for (int s : seen) EXPECT_EQ(s, 1);

  // Partition p's keys all strictly precede partition p+1's (value-range
  // partitioning, not hash), and rows keep arrival order within a
  // partition (stable scatter).
  int32_t prev_max = 0;
  bool have_prev = false;
  for (int p = 0; p < parts.num_partitions; ++p) {
    int32_t lo = 0, hi = 0;
    bool any = false;
    int64_t prev_idx_for_key = -1;
    int32_t prev_key = 0;
    for (size_t s = parts.offsets[p]; s < parts.offsets[p + 1]; ++s) {
      int32_t k = rows.col(0).i32[static_cast<size_t>(parts.idx[s])];
      if (!any) {
        lo = hi = k;
        any = true;
      } else {
        lo = std::min(lo, k);
        hi = std::max(hi, k);
      }
      if (s > parts.offsets[p] && k == prev_key) {
        EXPECT_GT(parts.idx[s], prev_idx_for_key)
            << "unstable scatter in partition " << p;
      }
      prev_key = k;
      prev_idx_for_key = parts.idx[s];
    }
    if (any && have_prev) {
      EXPECT_GT(lo, prev_max) << "partition " << p << " overlaps " << p - 1;
    }
    if (any) {
      prev_max = hi;
      have_prev = true;
    }
  }
}

TEST(RadixPartitionerTest, UnpackableKeysReturnNullopt) {
  Rng rng(12);
  ColumnSet rows(RowSchema());
  for (const Tuple& t : RandomRows(&rng, 40, KeyDist::kNullKeys)) {
    rows.AppendTuple(t);
  }
  // NULLs in the key column.
  EXPECT_FALSE(
      RadixPartitioner::Plan(4, rows, std::vector<SortKey>{{0, false}})
          .has_value());
  // Double keys are not packable.
  ColumnSet clean(RowSchema());
  for (const Tuple& t : RandomRows(&rng, 40, KeyDist::kUniform)) {
    clean.AppendTuple(t);
  }
  EXPECT_FALSE(
      RadixPartitioner::Plan(4, clean, std::vector<SortKey>{{2, false}})
          .has_value());
  // Sides disagreeing on sort direction.
  std::vector<SortKey> asc{{0, false}}, desc{{0, true}};
  EXPECT_FALSE(
      RadixPartitioner::Plan(4, clean, asc, &clean, &desc).has_value());
  // Same keys, agreeing directions: packable.
  EXPECT_TRUE(
      RadixPartitioner::Plan(4, clean, asc, &clean, &asc).has_value());
}

TEST(RadixPartitionerTest, RadixBitsClampToKeyRange) {
  // Two distinct key values span 1 bit; asking for 2^10 partitions must
  // clamp to the key range instead of fabricating empty key ranges
  // interleaved with data.
  ColumnSet rows(Schema({{"k", TypeId::kInt32}}));
  for (int i = 0; i < 10; ++i) {
    rows.AppendTuple(Tuple({Value::Int32(i % 2)}));
  }
  auto plan = RadixPartitioner::Plan(10, rows, std::vector<SortKey>{{0, false}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->num_partitions(), 2);
}

// ---- Operator sweeps: parallel vs serial, bit-exact ----

TEST(ParallelOperatorTest, SortMatchesSerialEverywhere) {
  Rng rng(21);
  Schema schema = RowSchema();
  for (KeyDist dist : kAllDists) {
    for (size_t n : kRowCounts) {
      std::vector<Tuple> rows = RandomRows(&rng, n, dist);
      std::vector<SortKey> keys{{0, false}, {1, true}};
      ColumnSet want = Drain(std::make_unique<BatchSort>(
          BatchOf(schema, rows), keys));
      for (int threads : ThreadCounts()) {
        for (int morsel : kMorselSizes) {
          MorselDispatcher disp(threads, morsel);
          ColumnSet got = Drain(std::make_unique<ParallelSort>(
              BatchOf(schema, rows), keys, &disp));
          ExpectBitEqual(got, want,
                         StrCat("sort dist=", static_cast<int>(dist), " n=", n,
                                " threads=", threads, " morsel=", morsel));
        }
      }
    }
  }
}

TEST(ParallelOperatorTest, FilterAndProjectMatchSerialEverywhere) {
  Rng rng(22);
  Schema schema = RowSchema();
  auto pred = [](const Batch& in, std::vector<int64_t>* sel) {
    const auto& v = in.col(1).i64;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] % 3 != 0) sel->push_back(static_cast<int64_t>(i));
    }
  };
  auto exprs = [] {
    std::vector<BatchExpr> e;
    e.push_back(BatchExpr::Passthrough("k", TypeId::kInt32, 0));
    e.push_back(BatchExpr{"vx", TypeId::kDouble, [](const Batch& in) {
                            const auto& v = in.col(1).i64;
                            const auto& x = in.col(2).f64;
                            ColumnPtr out = NewColumn(TypeId::kDouble);
                            out->f64.reserve(v.size());
                            for (size_t i = 0; i < v.size(); ++i) {
                              out->f64.push_back(v[i] * x[i]);
                            }
                            return out;
                          }});
    return e;
  };
  for (size_t n : kRowCounts) {
    std::vector<Tuple> rows = RandomRows(&rng, n, KeyDist::kUniform);
    ColumnSet want = Drain(std::make_unique<BatchProject>(
        std::make_unique<BatchFilter>(BatchOf(schema, rows, 64), pred),
        exprs()));
    for (int threads : ThreadCounts()) {
      for (int morsel : kMorselSizes) {
        MorselDispatcher disp(threads, morsel);
        ColumnSet got = Drain(std::make_unique<ParallelProject>(
            std::make_unique<ParallelFilter>(BatchOf(schema, rows, 64), pred,
                                             &disp),
            exprs(), &disp));
        ExpectBitEqual(got, want, StrCat("filter+project n=", n, " threads=",
                                         threads, " morsel=", morsel));
      }
    }
  }
}

// Right side: (k, tag) with duplicate keys, so joins fan out.
std::vector<Tuple> RandomRightRows(Rng* rng, size_t n, KeyDist dist) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value k;
    if (dist == KeyDist::kNullKeys && rng->Bernoulli(0.3)) {
      k = Value::Null(TypeId::kInt32);
    } else {
      k = Value::Int32(static_cast<int32_t>(rng->Uniform(40)) - 7);
    }
    rows.push_back(Tuple({k, Value::Int64(static_cast<int64_t>(i))}));
  }
  return rows;
}

Schema RightSchema() {
  return Schema({{"k", TypeId::kInt32}, {"tag", TypeId::kInt64}});
}

TEST(ParallelOperatorTest, MergeJoinMatchesSerialEverywhere) {
  Rng rng(23);
  Schema lschema = RowSchema(), rschema = RightSchema();
  for (KeyDist dist : {KeyDist::kUniform, KeyDist::kSkewed}) {
    for (auto [nl, nr] : {std::pair<size_t, size_t>{0, 50},
                          std::pair<size_t, size_t>{50, 0},
                          std::pair<size_t, size_t>{220, 140}}) {
      std::vector<Tuple> lrows = RandomRows(&rng, nl, dist);
      std::vector<Tuple> rrows = RandomRightRows(&rng, nr, dist);
      for (bool outer : {false, true}) {
        // Serial oracle: sort both sides, then merge.
        ColumnSet want = Drain(std::make_unique<BatchMergeJoin>(
            std::make_unique<BatchSort>(BatchOf(lschema, lrows),
                                        std::vector<SortKey>{{0, false}}),
            std::make_unique<BatchSort>(BatchOf(rschema, rrows),
                                        std::vector<SortKey>{{0, false}}),
            std::vector<int>{0}, std::vector<int>{0}, outer));
        for (int threads : ThreadCounts()) {
          for (int morsel : kMorselSizes) {
            MorselDispatcher disp(threads, morsel);
            ColumnSet got = Drain(std::make_unique<ParallelMergeJoin>(
                BatchOf(lschema, lrows), BatchOf(rschema, rrows),
                std::vector<int>{0}, std::vector<int>{0}, &disp, outer));
            ExpectBitEqual(
                got, want,
                StrCat("mergejoin dist=", static_cast<int>(dist), " nl=", nl,
                       " nr=", nr, " outer=", outer, " threads=", threads,
                       " morsel=", morsel));
          }
        }
      }
    }
  }
}

TEST(ParallelOperatorTest, MergeJoinNullKeysFallBackToSerialKernels) {
  Rng rng(24);
  Schema lschema = RowSchema(), rschema = RightSchema();
  std::vector<Tuple> lrows = RandomRows(&rng, 150, KeyDist::kNullKeys);
  std::vector<Tuple> rrows = RandomRightRows(&rng, 90, KeyDist::kNullKeys);
  ColumnSet want = Drain(std::make_unique<BatchMergeJoin>(
      std::make_unique<BatchSort>(BatchOf(lschema, lrows),
                                  std::vector<SortKey>{{0, false}}),
      std::make_unique<BatchSort>(BatchOf(rschema, rrows),
                                  std::vector<SortKey>{{0, false}}),
      std::vector<int>{0}, std::vector<int>{0}, /*left_outer=*/true));
  for (int threads : ThreadCounts()) {
    MorselDispatcher disp(threads, 7);
    ColumnSet got = Drain(std::make_unique<ParallelMergeJoin>(
        BatchOf(lschema, lrows), BatchOf(rschema, rrows), std::vector<int>{0},
        std::vector<int>{0}, &disp, /*left_outer=*/true));
    ExpectBitEqual(got, want, StrCat("null-key mergejoin threads=", threads));
  }
}

TEST(ParallelOperatorTest, SortAggregateMatchesSerialEverywhere) {
  Rng rng(25);
  Schema schema = RowSchema();
  for (KeyDist dist : kAllDists) {
    for (size_t n : kRowCounts) {
      std::vector<Tuple> rows = RandomRows(&rng, n, dist);
      std::vector<SortKey> keys{{0, false}};
      std::vector<int> groups{0};
      std::vector<AggSpec> aggs{AggSpec{AggKind::kSum, 2, "sx"},
                                AggSpec{AggKind::kCount, -1, "c"}};
      ColumnSet want = Drain(std::make_unique<BatchSortAggregate>(
          BatchOf(schema, rows), keys, groups, aggs));
      for (int threads : ThreadCounts()) {
        for (int morsel : kMorselSizes) {
          MorselDispatcher disp(threads, morsel);
          ColumnSet got = Drain(std::make_unique<ParallelSortAggregate>(
              BatchOf(schema, rows), keys, groups, aggs, &disp));
          // Double sums compare with ==: groups never span partitions, so
          // the accumulation order is the serial one.
          ExpectBitEqual(got, want,
                         StrCat("sortagg dist=", static_cast<int>(dist),
                                " n=", n, " threads=", threads,
                                " morsel=", morsel));
        }
      }
    }
  }
}

TEST(ParallelOperatorTest, TableScanMatchesSerial) {
  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 256);
  Catalog catalog(&pool);
  auto table = catalog.CreateTable(
      "T", Schema({{"a", TypeId::kInt64}, {"s", TypeId::kString}}), {});
  ASSERT_TRUE(table.ok());
  // Heap tuples carry no NULLs (storage serializes concrete values only),
  // so the scan sweep exercises types and variable-length strings instead.
  Rng rng(26);
  for (int i = 0; i < 700; ++i) {
    Value s = Value::Str(rng.Bernoulli(0.2) ? "" : StrCat("row", i));
    ASSERT_TRUE(
        table.value()->Insert(Tuple({Value::Int64(i), s})).ok());
  }
  ColumnSet want =
      Drain(std::make_unique<BatchTableScan>(table.value()));
  for (int threads : ThreadCounts()) {
    for (int morsel : kMorselSizes) {
      MorselDispatcher disp(threads, morsel);
      ColumnSet got =
          Drain(std::make_unique<ParallelTableScan>(table.value(), &disp));
      ExpectBitEqual(got, want,
                     StrCat("scan threads=", threads, " morsel=", morsel));
    }
  }
  // Column pruning matches too.
  ColumnSet want_pruned = Drain(
      std::make_unique<BatchTableScan>(table.value(), std::vector<int>{1}));
  MorselDispatcher disp(4, 64);
  ColumnSet got_pruned = Drain(std::make_unique<ParallelTableScan>(
      table.value(), &disp, std::vector<int>{1}));
  ExpectBitEqual(got_pruned, want_pruned, "pruned scan");
}

// ---- Hash join and exchange determinism ----

TEST(ParallelOperatorTest, HashJoinDeterministicAcrossThreadCounts) {
  Rng rng(27);
  Schema lschema = RowSchema(), rschema = RightSchema();
  std::vector<Tuple> lrows = RandomRows(&rng, 260, KeyDist::kSkewed);
  std::vector<Tuple> rrows = RandomRightRows(&rng, 120, KeyDist::kUniform);
  // Reference at one thread, one morsel size.
  MorselDispatcher ref_disp(1, 1024);
  ColumnSet want = Drain(std::make_unique<ParallelHashJoin>(
      BatchOf(lschema, lrows), BatchOf(rschema, rrows), std::vector<int>{0},
      std::vector<int>{0}, &ref_disp));
  size_t inner_rows =
      Drain(std::make_unique<BatchMergeJoin>(
                std::make_unique<BatchSort>(BatchOf(lschema, lrows),
                                            std::vector<SortKey>{{0, false}}),
                std::make_unique<BatchSort>(BatchOf(rschema, rrows),
                                            std::vector<SortKey>{{0, false}}),
                std::vector<int>{0}, std::vector<int>{0}))
          .num_rows();
  EXPECT_EQ(want.num_rows(), inner_rows);
  for (int threads : ThreadCounts()) {
    for (int morsel : kMorselSizes) {
      MorselDispatcher disp(threads, morsel);
      ColumnSet got = Drain(std::make_unique<ParallelHashJoin>(
          BatchOf(lschema, lrows), BatchOf(rschema, rrows),
          std::vector<int>{0}, std::vector<int>{0}, &disp));
      ExpectBitEqual(got, want,
                     StrCat("hashjoin threads=", threads, " morsel=", morsel));
    }
  }
}

TEST(ParallelOperatorTest, HashJoinRejectsUnpackableKeys) {
  Rng rng(28);
  Schema lschema = RowSchema(), rschema = RightSchema();
  std::vector<Tuple> lrows = RandomRows(&rng, 30, KeyDist::kNullKeys);
  std::vector<Tuple> rrows = RandomRightRows(&rng, 30, KeyDist::kUniform);
  MorselDispatcher disp(2, 7);
  ParallelHashJoin join(BatchOf(lschema, lrows), BatchOf(rschema, rrows),
                        std::vector<int>{0}, std::vector<int>{0}, &disp);
  ASSERT_TRUE(join.Open().ok());
  Batch batch;
  Result<bool> more = join.NextBatch(&batch);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kInvalidArgument);
  join.Close();
}

TEST(ParallelOperatorTest, ExchangeGatherConcatenatesInChildOrder) {
  Rng rng(29);
  Schema schema = RowSchema();
  std::vector<std::vector<Tuple>> parts;
  ColumnSet want(schema);
  for (int c = 0; c < 3; ++c) {
    parts.push_back(RandomRows(&rng, 40 + 13 * c, KeyDist::kUniform));
    for (const Tuple& t : parts.back()) want.AppendTuple(t);
  }
  for (int threads : ThreadCounts()) {
    std::vector<BatchOperatorPtr> children;
    for (const auto& p : parts) children.push_back(BatchOf(schema, p, 16));
    MorselDispatcher disp(threads, 64);
    ColumnSet got =
        Drain(std::make_unique<ExchangeGather>(std::move(children), &disp));
    ExpectBitEqual(got, want, StrCat("gather threads=", threads));
  }
}

TEST(ParallelOperatorTest, ExchangeMergeEqualsGlobalStableSort) {
  Rng rng(30);
  Schema schema = RowSchema();
  std::vector<SortKey> keys{{0, false}};
  // Children are sorted runs of a child-order-concatenated input; the
  // k-way merge (child index tiebreak) must equal the serial stable sort
  // of the concatenation.
  std::vector<std::vector<Tuple>> parts;
  std::vector<Tuple> all;
  for (int c = 0; c < 4; ++c) {
    parts.push_back(RandomRows(&rng, 70, KeyDist::kSkewed));
    for (const Tuple& t : parts.back()) all.push_back(t);
  }
  ColumnSet want =
      Drain(std::make_unique<BatchSort>(BatchOf(schema, all), keys));
  for (int threads : ThreadCounts()) {
    std::vector<BatchOperatorPtr> children;
    for (const auto& p : parts) {
      children.push_back(
          std::make_unique<BatchSort>(BatchOf(schema, p, 32), keys));
    }
    MorselDispatcher disp(threads, 64);
    ColumnSet got = Drain(
        std::make_unique<ExchangeMerge>(std::move(children), keys, &disp));
    ExpectBitEqual(got, want, StrCat("merge threads=", threads));
  }
}

// ---- Morsel/partition observability ----

TEST(ParallelObservabilityTest, CountersAndExplainReportFanOut) {
  obs::MetricsRegistry registry;
  SetBatchMetricsRegistry(&registry);
  {
    Rng rng(31);
    Schema schema = RowSchema();
    std::vector<Tuple> rows = RandomRows(&rng, 400, KeyDist::kUniform);
    MorselDispatcher disp(4, 32);
    PlanStats plan;
    BatchOperatorPtr op = AnalyzeBatch(
        &plan, "ParallelSort test",
        std::make_unique<ParallelSort>(BatchOf(schema, rows),
                                       std::vector<SortKey>{{0, false}},
                                       &disp));
    ColumnSet out;
    ASSERT_TRUE(CollectInto(op.get(), &out).ok());
    ASSERT_EQ(out.num_rows(), rows.size());

    uint64_t morsels = 0, partitions = 0;
    for (const auto& [key, value] : registry.CounterValues()) {
      if (key.find("focus_sql_parallel_morsels_total") != std::string::npos) {
        morsels = value;
      }
      if (key.find("focus_sql_parallel_partitions_total") !=
          std::string::npos) {
        partitions = value;
      }
    }
    EXPECT_GT(morsels, 0u);
    EXPECT_GT(partitions, 0u);

    std::string report = plan.Format();
    EXPECT_NE(report.find("morsels="), std::string::npos) << report;
    EXPECT_NE(report.find("partitions="), std::string::npos) << report;
  }
  SetBatchMetricsRegistry(nullptr);
}

// ---- Figure 3 end-to-end: kVectorized vs kParallel, bit-exact ----

TEST(ParallelEngineEquivalenceTest, BulkProbeScoresBitExact) {
  Rng rng(42);
  taxonomy::Taxonomy tax;
  using taxonomy::kRootCid;
  taxonomy::Cid rec = tax.AddTopic(kRootCid, "recreation").value();
  taxonomy::Cid biz = tax.AddTopic(kRootCid, "business").value();
  std::vector<taxonomy::Cid> leaves = {
      tax.AddTopic(rec, "cycling").value(),
      tax.AddTopic(rec, "gardening").value(),
      tax.AddTopic(biz, "mutual_funds").value(),
      tax.AddTopic(biz, "stocks").value()};

  auto make_doc = [&](taxonomy::Cid leaf) {
    std::vector<std::string> tokens;
    for (int i = 0; i < 120; ++i) {
      if (rng.Bernoulli(0.6)) {
        tokens.push_back(StrCat("w_", tax.Name(leaf), "_", rng.Uniform(25)));
      } else {
        tokens.push_back(StrCat("bg_", rng.Uniform(60)));
      }
    }
    return text::BuildTermVector(tokens);
  };

  classify::Trainer trainer(
      classify::TrainerOptions{.max_features_per_node = 150});
  std::vector<classify::LabeledDocument> training;
  uint64_t did = 1;
  for (taxonomy::Cid leaf : leaves) {
    for (int i = 0; i < 10; ++i) {
      training.push_back(
          classify::LabeledDocument{did++, leaf, make_doc(leaf)});
    }
  }
  auto model = trainer.Train(tax, training);
  ASSERT_TRUE(model.ok()) << model.status();
  classify::HierarchicalClassifier ref(&tax, &model.value());

  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  Catalog catalog(&pool);
  auto tables =
      classify::BuildClassifierTables(&catalog, tax, model.value());
  ASSERT_TRUE(tables.ok()) << tables.status();

  auto doc_table = classify::CreateDocumentTable(&catalog, "DOCUMENT");
  ASSERT_TRUE(doc_table.ok());
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(classify::InsertDocument(doc_table.value(), i + 1,
                                         make_doc(leaves[i % 4]))
                    .ok());
  }

  classify::BulkProbeClassifier bulk(&ref, &tables.value());
  bulk.SetEngine(ExecEngine::kVectorized);
  auto vec = bulk.ClassifyAll(doc_table.value());
  ASSERT_TRUE(vec.ok()) << vec.status();

  bulk.SetEngine(ExecEngine::kParallel);
  for (int threads : ThreadCounts()) {
    bulk.SetParallelThreads(threads);
    auto par = bulk.ClassifyAll(doc_table.value());
    ASSERT_TRUE(par.ok()) << par.status();
    ASSERT_EQ(par.value().size(), vec.value().size()) << threads;
    for (const auto& [doc, expected] : vec.value()) {
      auto it = par.value().find(doc);
      ASSERT_NE(it, par.value().end()) << "doc " << doc;
      ASSERT_EQ(it->second.logp.size(), expected.logp.size());
      for (size_t c = 0; c < expected.logp.size(); ++c) {
        // Bit-exact, not NEAR: same plan, same accumulation order.
        EXPECT_EQ(it->second.logp[c], expected.logp[c])
            << "doc " << doc << " cid " << c << " threads " << threads;
      }
    }
  }

  // The parallel EXPLAIN tree names the parallel operators and reports
  // morsel counts.
  PlanStats plan;
  auto with_plan = bulk.ClassifyWithPlan(doc_table.value(), &plan);
  ASSERT_TRUE(with_plan.ok());
  std::string report = plan.Format();
  EXPECT_NE(report.find("ParallelMergeJoin DOCUMENT~STAT"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("morsels="), std::string::npos) << report;
}

// ---- Figure 4 end-to-end: kVectorized vs kParallel, bit-exact ----

struct DistillFixture {
  storage::MemDiskManager disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<Catalog> catalog;
  distill::DistillTables tables;

  Status Build(uint64_t seed, int pages, int servers, int edges) {
    pool = std::make_unique<storage::BufferPool>(&disk, 2048);
    catalog = std::make_unique<Catalog>(pool.get());
    FOCUS_ASSIGN_OR_RETURN(
        tables.link,
        catalog->CreateTable(
            "LINK",
            Schema({{"oid_src", TypeId::kInt64},
                    {"sid_src", TypeId::kInt32},
                    {"oid_dst", TypeId::kInt64},
                    {"sid_dst", TypeId::kInt32},
                    {"wgt_fwd", TypeId::kDouble},
                    {"wgt_rev", TypeId::kDouble}}),
            {IndexSpec{"by_src", {0}, {}}, IndexSpec{"by_dst", {2}, {}}}));
    FOCUS_ASSIGN_OR_RETURN(
        tables.crawl,
        catalog->CreateTable("CRAWL",
                             Schema({{"oid", TypeId::kInt64},
                                     {"relevance", TypeId::kDouble}}),
                             {IndexSpec{"by_oid", {0}, {}}}));
    Rng rng(seed);
    auto sid = [&](int64_t oid) {
      return static_cast<int32_t>(oid % servers);
    };
    for (int64_t oid = 1; oid <= pages; ++oid) {
      FOCUS_RETURN_IF_ERROR(
          tables.crawl
              ->Insert(
                  Tuple({Value::Int64(oid), Value::Double(rng.NextDouble())}))
              .status());
    }
    for (int e = 0; e < edges; ++e) {
      int64_t src = 1 + static_cast<int64_t>(rng.Uniform(pages));
      int64_t dst = 1 + static_cast<int64_t>(rng.Uniform(pages));
      FOCUS_RETURN_IF_ERROR(
          tables.link
              ->Insert(Tuple({Value::Int64(src), Value::Int32(sid(src)),
                              Value::Int64(dst), Value::Int32(sid(dst)),
                              Value::Double(0.5 + rng.NextDouble()),
                              Value::Double(0.5 + rng.NextDouble())}))
              .status());
    }
    return distill::CreateHubsAuthTables(catalog.get(), &tables);
  }
};

std::vector<std::pair<int64_t, double>> TableRows(Table* t) {
  std::vector<std::pair<int64_t, double>> out;
  auto it = t->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    out.emplace_back(row.Get(0).AsInt64(), row.Get(1).AsDouble());
  }
  EXPECT_TRUE(it.status().ok());
  return out;
}

TEST(ParallelEngineEquivalenceTest, DistillerTablesBitExact) {
  for (int threads : ThreadCounts()) {
    const uint64_t seed = 77;
    DistillFixture vec_fx, par_fx;
    ASSERT_TRUE(vec_fx.Build(seed, 60, 9, 400).ok());
    ASSERT_TRUE(par_fx.Build(seed, 60, 9, 400).ok());

    distill::JoinDistiller vec(vec_fx.tables);
    vec.SetEngine(ExecEngine::kVectorized);
    ASSERT_TRUE(vec.Initialize().ok());
    distill::JoinDistiller par(par_fx.tables);
    par.SetEngine(ExecEngine::kParallel);
    par.SetParallelThreads(threads);
    ASSERT_TRUE(par.Initialize().ok());

    for (int iter = 0; iter < 3; ++iter) {
      ASSERT_TRUE(vec.RunIteration(0.3).ok());
      ASSERT_TRUE(par.RunIteration(0.3).ok());
    }

    for (auto [v_table, p_table] :
         {std::pair{vec_fx.tables.hubs, par_fx.tables.hubs},
          std::pair{vec_fx.tables.auth, par_fx.tables.auth}}) {
      auto v_rows = TableRows(v_table);
      auto p_rows = TableRows(p_table);
      ASSERT_EQ(v_rows.size(), p_rows.size()) << "threads " << threads;
      for (size_t i = 0; i < v_rows.size(); ++i) {
        EXPECT_EQ(v_rows[i].first, p_rows[i].first)
            << "threads " << threads << " slot " << i;
        // Bit-exact scores, not merely the same ranking.
        EXPECT_EQ(v_rows[i].second, p_rows[i].second)
            << "threads " << threads << " slot " << i;
      }
    }
  }
}

}  // namespace
}  // namespace focus::sql
