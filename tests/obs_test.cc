#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"

namespace focus::obs {
namespace {

// ---- a minimal JSON validity checker (the tests assert the exporters
// emit parseable documents without pulling in a JSON library) ----

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  // True iff `text` is exactly one valid JSON value (with whitespace).
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool IsValidJson(std::string_view text) {
  return JsonChecker(text).Valid();
}

TEST(JsonCheckerTest, SanityOnKnownDocuments) {
  EXPECT_TRUE(IsValidJson(R"({"a": [1, 2.5, -3e2, "x\n", true, null]})"));
  EXPECT_FALSE(IsValidJson(R"({"a": )"));
  EXPECT_FALSE(IsValidJson(R"({"a": 1} trailing)"));
  EXPECT_FALSE(IsValidJson("{'a': 1}"));
  EXPECT_FALSE(IsValidJson(R"(["unterminated)"));
}

// ---- JsonWriter ----

TEST(JsonWriterTest, EscapesAndNests) {
  JsonWriter w;
  w.BeginObject()
      .Field("quote", "a\"b")
      .Field("backslash", "a\\b")
      .Field("control", std::string_view("a\nb\tc\x01", 7))
      .Field("num", 42)
      .Field("neg", int64_t{-7})
      .Field("flag", true);
  w.Key("arr").BeginArray().Int(1).Double(2.5).Null().EndArray();
  w.EndObject();
  const std::string& out = w.str();
  EXPECT_TRUE(IsValidJson(out)) << out;
  EXPECT_NE(out.find("\"quote\":\"a\\\"b\""), std::string::npos) << out;
  EXPECT_NE(out.find("a\\\\b"), std::string::npos);
  EXPECT_NE(out.find("a\\nb\\tc\\u0001"), std::string::npos) << out;
  // The const char* overload must not decay to the bool overload.
  EXPECT_EQ(out.find("\"quote\":true"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray()
      .Double(std::numeric_limits<double>::quiet_NaN())
      .Double(std::numeric_limits<double>::infinity())
      .EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

// ---- histogram math ----

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  // Values whose bit_width exceeds the bucket count clamp into the last
  // bucket instead of indexing out of bounds.
  EXPECT_EQ(Histogram::BucketOf(uint64_t{1} << 63), 63);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 63);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(63), ~uint64_t{0});
  // Every value lands inside its bucket's (lower, upper] range.
  for (uint64_t v : {0ull, 1ull, 2ull, 5ull, 100ull, 4096ull, 123456789ull}) {
    int b = Histogram::BucketOf(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(b - 1)) << v;
    }
  }
}

TEST(HistogramTest, SnapshotCountsAndMean) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(5);
  h.Observe(1000);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1011u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 1011.0 / 5);
  EXPECT_EQ(snap.counts[0], 1u);                          // the zero
  EXPECT_EQ(snap.counts[1], 1u);                          // 1
  EXPECT_EQ(snap.counts[Histogram::BucketOf(5)], 2u);     // both fives
  EXPECT_EQ(snap.counts[Histogram::BucketOf(1000)], 1u);  // 1000
}

TEST(HistogramTest, QuantilesLandInTheRightBucket) {
  Histogram h;
  // 90 small values (bucket of 3: (1, 3]) and 10 large (bucket of 1000).
  for (int i = 0; i < 90; ++i) h.Observe(3);
  for (int i = 0; i < 10; ++i) h.Observe(1000);
  HistogramSnapshot snap = h.Snapshot();
  double p50 = snap.Quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 3.0);
  // p95 falls among the large observations: inside (512, 1023].
  double p95 = snap.Quantile(0.95);
  EXPECT_GT(p95, 512.0);
  EXPECT_LE(p95, 1023.0);
  // Degenerate cases.
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
  EXPECT_LE(snap.Quantile(0.0), snap.Quantile(1.0));
}

// ---- registry ----

TEST(MetricsRegistryTest, SameNameAndLabelsSharePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("reqs_total", {{"stage", "fetch"}});
  Counter* b = reg.GetCounter("reqs_total", {{"stage", "fetch"}});
  Counter* c = reg.GetCounter("reqs_total", {{"stage", "classify"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsRegistryTest, PrometheusTextShape) {
  MetricsRegistry reg;
  reg.GetCounter("focus_pages_total", {{"stage", "fetch"}})->Add(7);
  reg.GetGauge("focus_depth")->Set(2.5);
  Histogram* h = reg.GetHistogram("focus_batch_us");
  h->Observe(3);
  h->Observe(100);
  std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE focus_pages_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("focus_pages_total{stage=\"fetch\"} 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE focus_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("focus_batch_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("focus_batch_us_sum 103"), std::string::npos);
  // Cumulative buckets end with an +Inf bucket equal to the count.
  EXPECT_NE(text.find("focus_batch_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, JsonSnapshotIsValid) {
  MetricsRegistry reg;
  reg.GetCounter("c_total", {{"k", "quote\"and\\slash"}})->Inc();
  reg.GetGauge("g")->Set(1.5);
  reg.GetHistogram("h_us")->Observe(42);
  std::string json = reg.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, CollectorsAppearAndUnregister) {
  MetricsRegistry reg;
  uint64_t id = reg.AddCollector([](std::vector<GaugeSample>* out) {
    out->push_back(GaugeSample{"pool_frames", {{"pool", "p1"}}, 64});
  });
  EXPECT_NE(reg.ToPrometheusText().find("pool_frames{pool=\"p1\"} 64"),
            std::string::npos);
  reg.RemoveCollector(id);
  EXPECT_EQ(reg.ToPrometheusText().find("pool_frames"), std::string::npos);
}

// Exercised under TSan in CI: writers hammer counters/histograms while a
// reader repeatedly snapshots both exposition formats.
TEST(MetricsRegistryTest, SnapshotDuringConcurrentIncrements) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::string text = reg.ToPrometheusText();
      std::string json = reg.ToJson();
      EXPECT_TRUE(IsValidJson(json));
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      Counter* c = reg.GetCounter("work_total",
                                  {{"worker", std::to_string(t)}});
      Histogram* h = reg.GetHistogram("work_us");
      Gauge* g = reg.GetGauge("work_depth");
      for (int i = 0; i < kIters; ++i) {
        c->Inc();
        h->Observe(static_cast<uint64_t>(i));
        g->Set(i);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  uint64_t total = 0;
  for (int t = 0; t < kThreads; ++t) {
    total += reg.GetCounter("work_total", {{"worker", std::to_string(t)}})
                 ->Value();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.GetHistogram("work_us")->Snapshot().count,
            static_cast<uint64_t>(kThreads) * kIters);
}

// ---- reporter ----

TEST(PeriodicReporterTest, ReportOnceShowsOnlyMovedCounters) {
  MetricsRegistry reg;
  Counter* moved = reg.GetCounter("moved_total");
  reg.GetCounter("idle_total");
  PeriodicReporter reporter(&reg);
  EXPECT_EQ(reporter.ReportOnce(), "");  // nothing moved yet
  moved->Add(5);
  std::string report = reporter.ReportOnce();
  EXPECT_NE(report.find("moved_total +5"), std::string::npos) << report;
  EXPECT_EQ(report.find("idle_total"), std::string::npos) << report;
  EXPECT_EQ(reporter.ReportOnce(), "");  // delta consumed
}

// ---- trace spans ----

TEST(TraceTest, SpansNestAndExportAsChromeJson) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Enable();
  buffer.Clear();
  VirtualClock vclock;
  vclock.AdvanceMicros(1500);
  {
    FOCUS_SPAN("outer");
    {
      FOCUS_SPAN_VT("inner", &vclock);
    }
  }
  buffer.Disable();
  std::vector<SpanEvent> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Ring order is by wall start: outer opened first.
  const SpanEvent* outer = &spans[0];
  const SpanEvent* inner = &spans[1];
  EXPECT_STREQ(outer->name, "outer");
  EXPECT_STREQ(inner->name, "inner");
  // Nesting: the inner span's window sits inside the outer's.
  EXPECT_GE(inner->wall_start_us, outer->wall_start_us);
  EXPECT_LE(inner->wall_start_us + inner->dur_us,
            outer->wall_start_us + outer->dur_us);
  EXPECT_EQ(inner->virtual_us, 1500);
  EXPECT_EQ(outer->virtual_us, -1);

  std::string json = buffer.ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"virtual_us\":1500"), std::string::npos) << json;
  buffer.Clear();
}

TEST(TraceTest, DisabledTracingRecordsNothing) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Disable();
  buffer.Clear();
  {
    FOCUS_SPAN("ignored");
  }
  EXPECT_TRUE(buffer.Snapshot().empty());
}

TEST(TraceTest, ConcurrentWritersNeverLoseOrTearSpans) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Enable(64);  // small rings force wraparound under load
  buffer.Clear();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kSpansPerThread; ++i) {
        FOCUS_SPAN("stress");
      }
    });
  }
  // Concurrent readers snapshot and render while the writers hammer the
  // rings — the crash/tear surface the admin /trace endpoint lives on.
  std::atomic<bool> stop{false};
  std::thread reader([&buffer, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<SpanEvent> spans = buffer.Snapshot();
      for (const SpanEvent& s : spans) {
        ASSERT_STREQ(s.name, "stress");  // never a torn/garbage pointer
        ASSERT_GE(s.dur_us, 0);
      }
      std::string json = buffer.ToChromeTraceJson();
      ASSERT_FALSE(json.empty());
    }
  });
  go.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  std::vector<SpanEvent> spans = buffer.Snapshot();
  buffer.Disable();
  buffer.Clear();
  // Every writer thread kept exactly one full ring (wraparound dropped
  // the rest); snapshots stay wall-start ordered.
  EXPECT_EQ(spans.size(), static_cast<size_t>(kThreads) * 64);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].wall_start_us, spans[i - 1].wall_start_us);
  }
}

TEST(TraceTest, RingOverwritesOldestWhenFull) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Enable(4);
  buffer.Clear();
  // A ring's capacity is fixed when its thread first records, so the
  // small capacity needs a thread with no ring yet.
  std::thread recorder([] {
    for (int i = 0; i < 10; ++i) {
      FOCUS_SPAN("burst");
    }
  });
  recorder.join();
  std::vector<SpanEvent> spans = buffer.Snapshot();
  buffer.Disable();
  buffer.Clear();
  EXPECT_EQ(spans.size(), 4u);  // only the most recent window survives
}

TEST(EventLogTest, DisabledRecordIsAFreeNoOp) {
  EventLog log;
  log.Record(CrawlEventType::kFetchAttempt, 1, -1, 0, 0, 0.0, 0);
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.TotalRecorded(), 0u);
  log.Enable(16);
  log.Record(CrawlEventType::kFetchAttempt, 1, -1, 0, 0, 0.0, 0);
  log.Disable();
  log.Record(CrawlEventType::kFetchAttempt, 2, -1, 0, 0, 0.0, 0);
  std::vector<CrawlEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].oid, 1);
}

TEST(EventLogTest, TypeNamesRoundTrip) {
  for (int32_t v = 0; v <= static_cast<int32_t>(CrawlEventType::kWalReplay);
       ++v) {
    CrawlEventType type = static_cast<CrawlEventType>(v);
    CrawlEventType parsed;
    ASSERT_TRUE(CrawlEventTypeFromName(CrawlEventTypeName(type), &parsed))
        << CrawlEventTypeName(type);
    EXPECT_EQ(parsed, type);
  }
  CrawlEventType ignored;
  EXPECT_FALSE(CrawlEventTypeFromName("bogus", &ignored));
  EXPECT_FALSE(CrawlEventTypeFromName("", &ignored));
}

TEST(EventLogTest, FilterMatchesNegativeOidsExactly) {
  EventLog log;
  log.Enable(64);
  // oids are full-range 64-bit hashes: half of them are negative as
  // int64, so the "all oids" sentinel must be exactly -1, not "oid < 0".
  const int64_t neg = std::numeric_limits<int64_t>::min() + 5;
  log.Record(CrawlEventType::kFrontierAdmit, neg, -1, 0, 0, 0.1, 0);
  log.Record(CrawlEventType::kFrontierAdmit, 7, neg, 0, 1, 0.2, 0);
  log.Record(CrawlEventType::kFetchSuccess, neg, -1, 0, 2, 0.0, 0);

  EventFilter by_oid;
  by_oid.oid = neg;
  std::vector<CrawlEvent> hits = log.Snapshot(by_oid);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].type, CrawlEventType::kFrontierAdmit);
  EXPECT_EQ(hits[1].type, CrawlEventType::kFetchSuccess);

  EventFilter all;  // oid defaults to the -1 sentinel
  EXPECT_EQ(log.Snapshot(all).size(), 3u);

  EventFilter by_type;
  by_type.type = static_cast<int32_t>(CrawlEventType::kFrontierAdmit);
  EXPECT_EQ(log.Snapshot(by_type).size(), 2u);

  EventFilter since;
  since.min_seq = 1;
  EXPECT_EQ(log.Snapshot(since).size(), 2u);

  EventFilter tail;
  tail.limit = 1;  // keeps the LAST event
  std::vector<CrawlEvent> last = log.Snapshot(tail);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].type, CrawlEventType::kFetchSuccess);
}

TEST(EventLogTest, RingWrapKeepsTheNewestWindow) {
  EventLog log;
  log.Enable(4);
  for (int64_t i = 0; i < 10; ++i) {
    log.Record(CrawlEventType::kFetchAttempt, i, -1, 0, i, 0.0, 0);
  }
  EXPECT_EQ(log.TotalRecorded(), 10u);  // monotonic, counts overwritten
  std::vector<CrawlEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].oid, static_cast<int64_t>(6 + i));
  }
}

TEST(EventLogTest, JsonlLinesAreValidJsonWithStableFields) {
  EventLog log;
  log.Enable(16);
  log.Record(CrawlEventType::kFetchFailure, -9, 3, 2, 1234, 0.5, 1);
  log.Record(CrawlEventType::kFrontierAdmit, 4, -9, 2, 1300, 0.9, 0,
             /*reconciled=*/true);
  std::string jsonl = log.ToJsonl();
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    lines.push_back(jsonl.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(IsValidJson(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"type\":\"fetch_failure\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"oid\":-9"), std::string::npos);
  EXPECT_NE(lines[0].find("\"virtual_us\":1234"), std::string::npos);
  EXPECT_NE(lines[0].find("\"aux\":1"), std::string::npos);
  // "reconciled" appears only on reconciled events.
  EXPECT_EQ(lines[0].find("\"reconciled\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"reconciled\":true"), std::string::npos);
}

TEST(EventLogTest, ClearDropsEventsButSequenceKeepsRising) {
  EventLog log;
  log.Enable(16);
  log.Record(CrawlEventType::kFetchAttempt, 1, -1, 0, 0, 0.0, 0);
  log.Record(CrawlEventType::kFetchAttempt, 2, -1, 0, 0, 0.0, 0);
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  log.Record(CrawlEventType::kFetchAttempt, 3, -1, 0, 0, 0.0, 0);
  std::vector<CrawlEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  // A post-Clear event never reuses a sequence number, so provenance
  // queries can order across sessions if a caller chooses not to clear.
  EXPECT_GE(events[0].seq, 2u);
  EXPECT_EQ(log.TotalRecorded(), 3u);
}

TEST(EventLogTest, InstancesOnOneThreadStayIsolated) {
  EventLog a;
  EventLog b;
  a.Enable(16);
  b.Enable(16);
  a.Record(CrawlEventType::kFetchAttempt, 100, -1, 0, 0, 0.0, 0);
  b.Record(CrawlEventType::kFetchAttempt, 200, -1, 0, 0, 0.0, 0);
  std::vector<CrawlEvent> ea = a.Snapshot();
  std::vector<CrawlEvent> eb = b.Snapshot();
  ASSERT_EQ(ea.size(), 1u);
  ASSERT_EQ(eb.size(), 1u);
  EXPECT_EQ(ea[0].oid, 100);
  EXPECT_EQ(eb[0].oid, 200);
}

TEST(EventLogTest, ConcurrentWritersKeepSequencesUniqueAndRingsBounded) {
  EventLog log;
  log.Enable(128);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 1000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(CrawlEventType::kFetchAttempt, t * kPerThread + i, -1,
                   t, i, 0.0, 0);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(log.TotalRecorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  std::vector<CrawlEvent> events = log.Snapshot();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * 128);
  std::set<uint64_t> seqs;
  for (const CrawlEvent& e : events) {
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
  }
  // Snapshot is sequence-ordered.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
}

}  // namespace
}  // namespace focus::obs
