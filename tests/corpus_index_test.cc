#include <gtest/gtest.h>

#include "text/corpus_index.h"
#include "text/document.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::text {
namespace {

TermVector Doc(std::vector<std::string> tokens) {
  return BuildTermVector(tokens);
}

TEST(CorpusIndexTest, EmptyIndexReturnsNothing) {
  CorpusIndex index;
  EXPECT_TRUE(index.Search(Doc({"bike"}), 10).empty());
  EXPECT_EQ(index.num_documents(), 0u);
}

TEST(CorpusIndexTest, DuplicateDidRejected) {
  CorpusIndex index;
  ASSERT_TRUE(index.AddDocument(1, Doc({"bike"})).ok());
  EXPECT_EQ(index.AddDocument(1, Doc({"ride"})).code(),
            StatusCode::kAlreadyExists);
}

TEST(CorpusIndexTest, RanksByRelevance) {
  CorpusIndex index;
  // Doc 1 is all about bikes; doc 2 mentions them once among noise;
  // doc 3 is unrelated.
  ASSERT_TRUE(index.AddDocument(1, Doc({"bike", "bike", "ride", "race"}))
                  .ok());
  ASSERT_TRUE(index
                  .AddDocument(2, Doc({"bike", "stock", "bond", "fund",
                                       "market", "rate"}))
                  .ok());
  ASSERT_TRUE(index.AddDocument(3, Doc({"garden", "rose", "soil"})).ok());
  auto results = index.Search(Doc({"bike", "ride"}), 10);
  ASSERT_EQ(results.size(), 2u);  // doc 3 shares no terms
  EXPECT_EQ(results[0].did, 1u);
  EXPECT_EQ(results[1].did, 2u);
  EXPECT_GT(results[0].score, results[1].score);
}

TEST(CorpusIndexTest, IdfDemotesUbiquitousTerms) {
  CorpusIndex index;
  // "common" appears everywhere, "rare" in one doc.
  for (uint64_t d = 1; d <= 20; ++d) {
    std::vector<std::string> tokens = {"common", "filler",
                                       StrCat("noise", d)};
    if (d == 7) tokens.push_back("rare");
    ASSERT_TRUE(index.AddDocument(d, Doc(tokens)).ok());
  }
  auto results = index.Search(Doc({"rare"}), 5);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].did, 7u);
  // A query for the ubiquitous term scores everyone but low.
  auto common = index.Search(Doc({"common"}), 25);
  EXPECT_EQ(common.size(), 20u);
  EXPECT_GT(results[0].score, common[0].score);
}

TEST(CorpusIndexTest, KLimitsAndTiesAreDeterministic) {
  CorpusIndex index;
  for (uint64_t d = 1; d <= 10; ++d) {
    ASSERT_TRUE(index.AddDocument(d, Doc({"same", "terms"})).ok());
  }
  auto results = index.Search(Doc({"same"}), 4);
  ASSERT_EQ(results.size(), 4u);
  // Identical scores: dids ascending.
  EXPECT_EQ(results[0].did, 1u);
  EXPECT_EQ(results[3].did, 4u);
}

TEST(CorpusIndexTest, IncrementalAdditionRecomputesIdf) {
  CorpusIndex index;
  ASSERT_TRUE(index.AddDocument(1, Doc({"bike", "ride"})).ok());
  auto before = index.Search(Doc({"bike"}), 5);
  ASSERT_EQ(before.size(), 1u);
  // Adding many bike docs dilutes idf but must not break ranking.
  for (uint64_t d = 2; d <= 6; ++d) {
    ASSERT_TRUE(index.AddDocument(d, Doc({"bike"})).ok());
  }
  auto after = index.Search(Doc({"bike"}), 10);
  EXPECT_EQ(after.size(), 6u);
}

TEST(CorpusIndexTest, QueryWithUnknownTermsOnly) {
  CorpusIndex index;
  ASSERT_TRUE(index.AddDocument(1, Doc({"bike"})).ok());
  EXPECT_TRUE(index.Search(Doc({"zzz", "qqq"}), 5).empty());
}

}  // namespace
}  // namespace focus::text
