#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "distill/distiller.h"
#include "distill/hits.h"
#include "distill/join_distiller.h"
#include "distill/naive_distiller.h"
#include "distill/pagerank.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/random.h"

namespace focus::distill {
namespace {

using sql::Tuple;
using sql::Value;

WeightedEdge Edge(uint64_t src, int32_t sid_src, uint64_t dst,
                  int32_t sid_dst, double fwd = 1.0, double rev = 1.0) {
  return WeightedEdge{src, sid_src, dst, sid_dst, fwd, rev};
}

TEST(HitsEngineTest, StarGraphFindsHubAndAuthorities) {
  // Node 1 links to 2,3,4 (all relevant): 1 is the hub, 2-4 authorities.
  std::vector<WeightedEdge> edges = {Edge(1, 10, 2, 20), Edge(1, 10, 3, 30),
                                     Edge(1, 10, 4, 40)};
  std::unordered_map<uint64_t, double> rel = {{1, 1}, {2, 1}, {3, 1},
                                              {4, 1}};
  HitsEngine engine(edges, rel);
  auto scores = engine.Run({.iterations = 10, .rho = 0.0});
  EXPECT_NEAR(scores[1].hub, 1.0, 1e-9);
  EXPECT_NEAR(scores[2].auth, 1.0 / 3, 1e-9);
  EXPECT_NEAR(scores[1].auth, 0.0, 1e-12);
  auto hubs = HitsEngine::TopHubs(scores, 2);
  EXPECT_EQ(hubs[0].first, 1u);
}

TEST(HitsEngineTest, NormalizationSumsToOne) {
  Rng rng(5);
  std::vector<WeightedEdge> edges;
  std::unordered_map<uint64_t, double> rel;
  for (int i = 0; i < 200; ++i) {
    uint64_t u = rng.Uniform(40), v = rng.Uniform(40);
    if (u == v) continue;
    edges.push_back(Edge(u, static_cast<int32_t>(u % 7), v,
                         static_cast<int32_t>(v % 7)));
    rel[u] = 1;
    rel[v] = 1;
  }
  HitsEngine engine(edges, rel);
  auto scores = engine.Run({.iterations = 15, .rho = 0.0});
  double hub_sum = 0, auth_sum = 0;
  for (const auto& [oid, s] : scores) {
    hub_sum += s.hub;
    auth_sum += s.auth;
  }
  EXPECT_NEAR(hub_sum, 1.0, 1e-9);
  EXPECT_NEAR(auth_sum, 1.0, 1e-9);
}

TEST(HitsEngineTest, NepotismFilterIgnoresSameServerEdges) {
  // Only edge is same-server: nothing should accumulate.
  std::vector<WeightedEdge> edges = {Edge(1, 5, 2, 5)};
  HitsEngine engine(edges, {{1, 1.0}, {2, 1.0}});
  auto scores = engine.Run({.iterations = 5, .rho = 0.0});
  EXPECT_EQ(scores[2].auth, 0.0);
}

TEST(HitsEngineTest, RhoFilterExcludesIrrelevantAuthorities) {
  std::vector<WeightedEdge> edges = {Edge(1, 10, 2, 20),
                                     Edge(1, 10, 3, 30)};
  // Node 3 is barely relevant.
  HitsEngine engine(edges, {{1, 1.0}, {2, 0.9}, {3, 0.05}});
  auto scores = engine.Run({.iterations = 5, .rho = 0.5});
  EXPECT_GT(scores[2].auth, 0.0);
  EXPECT_EQ(scores[3].auth, 0.0);
}

TEST(HitsEngineTest, EdgeWeightsDampenIrrelevantEndorsement) {
  // Two hubs pointing at the same authority; the relevant hub (higher
  // wgt_rev) collects more hub score.
  std::vector<WeightedEdge> edges = {Edge(1, 10, 3, 30), Edge(2, 20, 3, 30)};
  std::unordered_map<uint64_t, double> rel = {{1, 1.0}, {2, 0.1}, {3, 1.0}};
  AssignRelevanceWeights(rel, &edges);
  EXPECT_DOUBLE_EQ(edges[0].wgt_rev, 1.0);
  EXPECT_DOUBLE_EQ(edges[1].wgt_rev, 0.1);
  HitsEngine engine(edges, rel);
  auto scores = engine.Run({.iterations = 5, .rho = 0.0});
  EXPECT_GT(scores[1].hub, scores[2].hub * 5);
}

// ---- DB-resident distillers ----

class DistillerTest : public testing::Test {
 protected:
  DistillerTest() : pool_(&disk_, 1024), catalog_(&pool_) {}

  // Builds LINK/CRAWL tables from edges and relevances.
  void BuildTables(const std::vector<WeightedEdge>& edges,
                   const std::unordered_map<uint64_t, double>& relevance) {
    auto link = catalog_.CreateTable(
        "LINK",
        sql::Schema({{"oid_src", sql::TypeId::kInt64},
                     {"sid_src", sql::TypeId::kInt32},
                     {"oid_dst", sql::TypeId::kInt64},
                     {"sid_dst", sql::TypeId::kInt32},
                     {"wgt_fwd", sql::TypeId::kDouble},
                     {"wgt_rev", sql::TypeId::kDouble}}),
        {sql::IndexSpec{"by_src", {0}, {}},
         sql::IndexSpec{"by_dst", {2}, {}}});
    ASSERT_TRUE(link.ok());
    tables_.link = link.value();
    for (const auto& e : edges) {
      ASSERT_TRUE(tables_.link
                      ->Insert(Tuple(
                          {Value::Int64(static_cast<int64_t>(e.oid_src)),
                           Value::Int32(e.sid_src),
                           Value::Int64(static_cast<int64_t>(e.oid_dst)),
                           Value::Int32(e.sid_dst),
                           Value::Double(e.wgt_fwd),
                           Value::Double(e.wgt_rev)}))
                      .ok());
    }
    auto crawl = catalog_.CreateTable(
        "CRAWL",
        sql::Schema({{"oid", sql::TypeId::kInt64},
                     {"relevance", sql::TypeId::kDouble}}),
        {sql::IndexSpec{"by_oid", {0}, {}}});
    ASSERT_TRUE(crawl.ok());
    tables_.crawl = crawl.value();
    for (const auto& [oid, r] : relevance) {
      ASSERT_TRUE(tables_.crawl
                      ->Insert(Tuple({Value::Int64(static_cast<int64_t>(oid)),
                                      Value::Double(r)}))
                      .ok());
    }
    ASSERT_TRUE(CreateHubsAuthTables(&catalog_, &tables_).ok());
  }

  storage::MemDiskManager disk_;
  storage::BufferPool pool_;
  sql::Catalog catalog_;
  DistillTables tables_;
};

// Property: both DB distillers match the in-memory engine on random graphs.
class DistillerEquivalenceTest : public DistillerTest,
                                 public testing::WithParamInterface<int> {};

TEST_P(DistillerEquivalenceTest, NaiveAndJoinMatchReference) {
  Rng rng(GetParam() * 31 + 1);
  std::vector<WeightedEdge> edges;
  std::unordered_map<uint64_t, double> relevance;
  int nodes = 30 + static_cast<int>(rng.Uniform(40));
  for (uint64_t n = 1; n <= static_cast<uint64_t>(nodes); ++n) {
    relevance[n] = rng.NextDouble();
  }
  int num_edges = 100 + static_cast<int>(rng.Uniform(300));
  for (int i = 0; i < num_edges; ++i) {
    uint64_t u = 1 + rng.Uniform(nodes), v = 1 + rng.Uniform(nodes);
    if (u == v) continue;
    edges.push_back(Edge(u, static_cast<int32_t>(u % 9), v,
                         static_cast<int32_t>(v % 9)));
  }
  AssignRelevanceWeights(relevance, &edges);
  BuildTables(edges, relevance);

  HitsOptions options{.iterations = 7, .rho = 0.3};
  HitsEngine engine(edges, relevance);
  auto expected = engine.Run(options);

  NaiveDistiller naive(tables_);
  ASSERT_TRUE(naive.Run(options).ok());
  auto naive_hubs = CollectScores(tables_.hubs);
  auto naive_auth = CollectScores(tables_.auth);
  ASSERT_TRUE(naive_hubs.ok());
  ASSERT_TRUE(naive_auth.ok());

  JoinDistiller join(tables_);
  ASSERT_TRUE(join.Run(options).ok());
  auto join_hubs = CollectScores(tables_.hubs);
  auto join_auth = CollectScores(tables_.auth);
  ASSERT_TRUE(join_hubs.ok());
  ASSERT_TRUE(join_auth.ok());

  auto score_of = [](const std::unordered_map<uint64_t, double>& m,
                     uint64_t oid) {
    auto it = m.find(oid);
    return it == m.end() ? 0.0 : it->second;
  };
  for (const auto& [oid, s] : expected) {
    EXPECT_NEAR(score_of(naive_hubs.value(), oid), s.hub, 1e-9)
        << "naive hub " << oid;
    EXPECT_NEAR(score_of(naive_auth.value(), oid), s.auth, 1e-9)
        << "naive auth " << oid;
    EXPECT_NEAR(score_of(join_hubs.value(), oid), s.hub, 1e-9)
        << "join hub " << oid;
    EXPECT_NEAR(score_of(join_auth.value(), oid), s.auth, 1e-9)
        << "join auth " << oid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistillerEquivalenceTest,
                         testing::Range(1, 11));

TEST_F(DistillerTest, StatsAreAccumulated) {
  std::vector<WeightedEdge> edges = {Edge(1, 1, 2, 2), Edge(2, 2, 3, 3),
                                     Edge(1, 1, 3, 3)};
  std::unordered_map<uint64_t, double> rel = {{1, 1}, {2, 1}, {3, 1}};
  AssignRelevanceWeights(rel, &edges);
  BuildTables(edges, rel);
  NaiveDistiller naive(tables_);
  ASSERT_TRUE(naive.Run({.iterations = 3, .rho = 0.0}).ok());
  EXPECT_GT(naive.stats().lookup_seconds, 0.0);
  EXPECT_GT(naive.stats().update_seconds, 0.0);
  JoinDistiller join(tables_);
  ASSERT_TRUE(join.Run({.iterations = 3, .rho = 0.0}).ok());
  EXPECT_GT(join.stats().join_seconds, 0.0);
}

TEST(PageRankTest, UniformOnSymmetricCycle) {
  std::vector<std::pair<uint32_t, uint32_t>> edges = {
      {0, 1}, {1, 2}, {2, 0}};
  auto rank = PageRank(3, edges);
  ASSERT_EQ(rank.size(), 3u);
  EXPECT_NEAR(rank[0], 1.0 / 3, 1e-9);
  EXPECT_NEAR(std::accumulate(rank.begin(), rank.end(), 0.0), 1.0, 1e-9);
}

TEST(PageRankTest, PopularNodeRanksHigher) {
  // Everyone links to node 0.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < 10; ++i) edges.emplace_back(i, 0);
  auto rank = PageRank(10, edges);
  for (uint32_t i = 1; i < 10; ++i) EXPECT_GT(rank[0], rank[i]);
  EXPECT_NEAR(std::accumulate(rank.begin(), rank.end(), 0.0), 1.0, 1e-9);
}

TEST(PageRankTest, HandlesDanglingNodes) {
  std::vector<std::pair<uint32_t, uint32_t>> edges = {{0, 1}};  // 1 dangles
  auto rank = PageRank(2, edges);
  EXPECT_NEAR(rank[0] + rank[1], 1.0, 1e-9);
  EXPECT_GT(rank[1], rank[0]);
}

TEST(PageRankTest, EmptyGraph) {
  EXPECT_TRUE(PageRank(0, {}).empty());
  auto rank = PageRank(3, {});
  EXPECT_NEAR(std::accumulate(rank.begin(), rank.end(), 0.0), 1.0, 1e-9);
}

}  // namespace
}  // namespace focus::distill
