// Crawler behaviours beyond the core loop: fetch failures and retries,
// crawl maintenance (revisits), dynamic policy switching, and link
// deduplication on refetch.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "core/focus.h"
#include "core/sample_taxonomy.h"
#include "util/hash.h"

namespace focus::core {
namespace {

using crawl::CrawlerOptions;
using taxonomy::Cid;

std::unique_ptr<FocusSystem> MakeSystem(uint64_t seed,
                                        double failure_prob = 0.01) {
  taxonomy::Taxonomy tax = BuildSampleTaxonomy();
  FocusOptions options;
  options.seed = seed;
  options.web.pages_per_topic = 300;
  options.web.background_pages = 5000;
  options.web.background_servers = 150;
  options.web.fetch_failure_prob = failure_prob;
  auto system = FocusSystem::Create(std::move(tax), options);
  EXPECT_TRUE(system.ok());
  auto out = system.TakeValue();
  EXPECT_TRUE(out->MarkGood("cycling").ok());
  EXPECT_TRUE(out->Train().ok());
  return out;
}

TEST(CrawlerFeaturesTest, FetchFailuresAreRetriedUpToLimit) {
  auto system = MakeSystem(3, /*failure_prob=*/0.25);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 300;
  copts.max_retries = 3;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 10),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  const auto& stats = session->crawler().stats();
  // With a 25% failure rate there must be failures and the crawl must
  // still complete its budget.
  EXPECT_GT(stats.transient_failures + stats.dropped_urls, 20u);
  EXPECT_EQ(session->crawler().visits().size(), 300u);
  EXPECT_EQ(stats.attempts, session->crawler().visits().size() +
                                stats.transient_failures +
                                stats.dropped_urls);
  // No page should record more tries than the retry limit.
  auto it = session->db().crawl_table()->Scan();
  storage::Rid rid;
  sql::Tuple row;
  while (it.Next(&rid, &row)) {
    EXPECT_LE(row.Get(3).AsInt32(), copts.max_retries);
  }
}

TEST(CrawlerFeaturesTest, ScheduleRevisitsRefetchesStalestFirst) {
  auto system = MakeSystem(5);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 150;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  ASSERT_EQ(session->crawler().visits().size(), 150u);
  uint64_t links_before = session->db().num_links();

  // First-visit times of the earliest pages.
  std::unordered_map<uint64_t, int64_t> first_visit_time;
  for (const auto& v : session->crawler().visits()) {
    first_visit_time.emplace(v.oid, v.virtual_time_us);
  }

  ASSERT_TRUE(
      session->crawler().ScheduleRevisits(/*hubs=*/nullptr, 40).ok());
  ASSERT_TRUE(session->crawler().Crawl().ok());
  const auto& visits = session->crawler().visits();
  ASSERT_EQ(visits.size(), 190u);

  // The revisited pages are the 40 stalest (earliest-visited) ones, and
  // they are refetched in (roughly) staleness order.
  std::vector<int64_t> revisit_times;
  for (size_t i = 150; i < visits.size(); ++i) {
    auto it = first_visit_time.find(visits[i].oid);
    ASSERT_NE(it, first_visit_time.end()) << "revisited an unseen page";
    revisit_times.push_back(it->second);
  }
  for (size_t i = 1; i < revisit_times.size(); ++i) {
    EXPECT_LE(revisit_times[i - 1], revisit_times[i]);
  }
  // Revisits do not duplicate LINK rows.
  EXPECT_EQ(session->db().num_links(), links_before);
  // lastvisited advanced for revisited pages.
  auto rec = session->db().Lookup(visits[150].oid);
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec.value()->lastvisited, first_visit_time[visits[150].oid]);
}

TEST(CrawlerFeaturesTest, RevisitsUseHubScoresToBreakTies) {
  // With hub scores supplied, equal-staleness pages order by score. We
  // fabricate a HUBS table that inverts discovery order.
  auto system = MakeSystem(7);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 50;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 5),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  auto hubs = session->catalog().CreateTable(
      "FAKE_HUBS", sql::Schema({{"oid", sql::TypeId::kInt64},
                                {"score", sql::TypeId::kDouble}}));
  ASSERT_TRUE(hubs.ok());
  // All visits happened at distinct virtual times, so hub scores only
  // matter as a secondary criterion; just verify the call works with a
  // hubs table present and the budget extends.
  for (const auto& v : session->crawler().visits()) {
    ASSERT_TRUE(
        hubs.value()
            ->Insert(sql::Tuple(
                {sql::Value::Int64(static_cast<int64_t>(v.oid)),
                 sql::Value::Double(1.0 / (1 + v.fetch_index))}))
            .ok());
  }
  ASSERT_TRUE(session->crawler().ScheduleRevisits(hubs.value(), 10).ok());
  ASSERT_TRUE(session->crawler().Crawl().ok());
  EXPECT_EQ(session->crawler().visits().size(), 60u);
}

TEST(CrawlerFeaturesTest, PolicySwitchMidCrawlTakesEffect) {
  auto system = MakeSystem(9);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 100;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  session->crawler().SetPolicy(crawl::PriorityPolicy::kBreadthFirst);
  EXPECT_EQ(session->crawler().frontier()->policy(),
            crawl::PriorityPolicy::kBreadthFirst);
}

TEST(CrawlerFeaturesTest, ResumeFromDbContinuesAfterCrash) {
  // §3.1: "all crawlers crash" — the CRAWL table is the durable state. We
  // run a partial crawl, throw the Crawler away, build a fresh one over
  // the same CrawlDb and resume.
  auto system = MakeSystem(13);
  Cid cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 8);
  CrawlerOptions copts;
  copts.max_fetches = 120;
  auto session = system->NewCrawl(seeds, copts).TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  ASSERT_EQ(session->crawler().visits().size(), 120u);
  uint64_t urls_before = session->db().num_urls();
  uint64_t links_before = session->db().num_links();
  std::unordered_set<uint64_t> visited_before;
  for (const auto& v : session->crawler().visits()) {
    visited_before.insert(v.oid);
  }

  // "Crash": a brand-new crawler over the same relational state.
  crawl::ClassifierEvaluator evaluator(&system->classifier());
  CrawlerOptions resumed_options;
  resumed_options.max_fetches = 100;  // fresh budget for the resumed run
  crawl::Crawler resumed(&system->web(), &evaluator, &session->db(),
                         &session->catalog(), resumed_options);
  ASSERT_TRUE(resumed.ResumeFromDb().ok());
  EXPECT_GT(resumed.frontier()->size(), 0u);
  ASSERT_TRUE(resumed.Crawl().ok());
  EXPECT_EQ(resumed.visits().size(), 100u);
  // The resumed crawl fetches only pages the dead crawler had not visited.
  for (const auto& v : resumed.visits()) {
    EXPECT_FALSE(visited_before.contains(v.oid)) << v.url;
  }
  // And it keeps extending the same tables.
  EXPECT_GT(session->db().num_urls(), urls_before);
  EXPECT_GT(session->db().num_links(), links_before);
}

TEST(CrawlerFeaturesTest, BacklinkOrderingPrefersMostCited) {
  auto system = MakeSystem(15);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 150;
  copts.policy = crawl::PriorityPolicy::kBacklinkCount;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  EXPECT_EQ(session->crawler().visits().size(), 150u);
}

TEST(CrawlerFeaturesTest, PageRankOrderingRunsWithRefresh) {
  auto system = MakeSystem(17);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 150;
  copts.policy = crawl::PriorityPolicy::kPageRankOrder;
  copts.pagerank_every = 50;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  EXPECT_EQ(session->crawler().visits().size(), 150u);
}

TEST(CrawlerFeaturesTest, UrlTruncationFindsServerIndexPages) {
  taxonomy::Taxonomy tax = BuildSampleTaxonomy();
  FocusOptions options;
  options.seed = 19;
  options.web.pages_per_topic = 300;
  options.web.background_pages = 5000;
  options.web.background_servers = 150;
  options.web.generate_server_index_pages = true;
  auto system = FocusSystem::Create(std::move(tax), options).TakeValue();
  ASSERT_TRUE(system->MarkGood("cycling").ok());
  ASSERT_TRUE(system->Train().ok());
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 200;
  copts.try_truncated_urls = true;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  int index_pages = 0;
  for (const auto& v : session->crawler().visits()) {
    // Index pages are host roots: "http://host/".
    if (v.url == crawl::TruncateToHostRoot(v.url)) ++index_pages;
  }
  EXPECT_GT(index_pages, 3);
}

TEST(CrawlerFeaturesTest, TruncationMissesAreNotRetried) {
  // Without index pages in the web, truncated guesses 404; they must be
  // dropped permanently, not retried.
  auto system = MakeSystem(23, /*failure_prob=*/0.0);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 100;
  copts.try_truncated_urls = true;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  EXPECT_EQ(session->crawler().visits().size(), 100u);
  const auto& stats = session->crawler().stats();
  EXPECT_GT(stats.dropped_urls, 0u);  // the 404 guesses
  // 404s are permanent: dropped on the first attempt, never rescheduled
  // (no transient failures exist with failure_prob = 0).
  EXPECT_EQ(stats.transient_failures, 0u);
  EXPECT_EQ(stats.attempts,
            session->crawler().visits().size() + stats.dropped_urls);
  // Dropped roots carry the exhausted-budget marker so a resumed crawl
  // skips them instead of re-guessing.
  auto it = session->db().crawl_table()->Scan();
  storage::Rid rid;
  sql::Tuple row;
  while (it.Next(&rid, &row)) {
    auto rec = crawl::CrawlDb::RecordFromTuple(row);
    if (!rec.visited && rec.numtries > 0 &&
        rec.url == crawl::TruncateToHostRoot(rec.url)) {
      EXPECT_GE(rec.numtries, copts.max_retries) << rec.url;
    }
  }
}

TEST(CrawlerFeaturesTest, TruncateToHostRootForms) {
  EXPECT_EQ(crawl::TruncateToHostRoot("http://a.b.c/p/q"), "http://a.b.c/");
  EXPECT_EQ(crawl::TruncateToHostRoot("http://a.b.c/"), "http://a.b.c/");
  EXPECT_EQ(crawl::TruncateToHostRoot("http://a.b.c"), "http://a.b.c/");
}

TEST(CrawlerFeaturesTest, BacklinkExpansionEnqueuesCiters) {
  auto system = MakeSystem(29, /*failure_prob=*/0.0);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 150;
  copts.expand_backlinks = true;
  copts.backlinks_per_page = 4;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 5),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  EXPECT_EQ(session->crawler().visits().size(), 150u);
  // Backlink metadata is consistent with the forward graph.
  const auto& first = session->crawler().visits().front();
  auto citers = system->web().Backlinks(first.url, 10);
  ASSERT_TRUE(citers.ok());
  for (const auto& citer : citers.value()) {
    auto idx = system->web().PageIndexByUrl(citer);
    ASSERT_TRUE(idx.ok());
    bool links_forward = false;
    auto target = system->web().PageIndexByUrl(first.url).value();
    for (uint32_t t : system->web().page(idx.value()).outlinks) {
      links_forward |= (t == target);
    }
    EXPECT_TRUE(links_forward) << citer << " -> " << first.url;
  }
}

TEST(CrawlerFeaturesTest, DbResidentEvaluatorMatchesInMemoryCrawl) {
  // The same crawl driven by the in-memory classifier and by the
  // DB-resident single-probe classifier must visit the same pages with
  // the same judgments (the implementations are score-identical).
  auto system = MakeSystem(31, /*failure_prob=*/0.0);
  Cid cycling = system->tax().FindByName("cycling").value();
  auto seeds = system->web().KeywordSeeds(cycling, 6);

  CrawlerOptions copts;
  copts.max_fetches = 80;
  auto reference = system->NewCrawl(seeds, copts).TakeValue();
  ASSERT_TRUE(reference->crawler().Crawl().ok());

  // DB-resident setup: classifier tables + single-probe evaluator.
  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  sql::Catalog clf_catalog(&pool);
  auto tables = classify::BuildClassifierTables(&clf_catalog, system->tax(),
                                                system->model());
  ASSERT_TRUE(tables.ok());
  classify::SingleProbeClassifier probe(
      &system->classifier(), &tables.value(),
      classify::SingleProbeClassifier::Variant::kBlob);
  crawl::SingleProbeEvaluator evaluator(&probe, &system->tax());

  storage::MemDiskManager crawl_disk;
  storage::BufferPool crawl_pool(&crawl_disk, 1024);
  sql::Catalog crawl_catalog(&crawl_pool);
  auto db = crawl::CrawlDb::Create(&crawl_catalog);
  ASSERT_TRUE(db.ok());
  crawl::CrawlDb crawl_db = db.TakeValue();
  crawl::Crawler db_crawler(&system->web(), &evaluator, &crawl_db,
                            &crawl_catalog, copts);
  for (const auto& url : seeds) {
    ASSERT_TRUE(db_crawler.AddSeed(url).ok());
  }
  ASSERT_TRUE(db_crawler.Crawl().ok());

  const auto& a = reference->crawler().visits();
  const auto& b = db_crawler.visits();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].url, b[i].url) << i;
    EXPECT_NEAR(a[i].relevance, b[i].relevance, 1e-9) << i;
    EXPECT_EQ(a[i].best_leaf, b[i].best_leaf) << i;
  }
}

TEST(CrawlerFeaturesTest, VisitsAreUniquePerCrawlPhase) {
  auto system = MakeSystem(11);
  Cid cycling = system->tax().FindByName("cycling").value();
  CrawlerOptions copts;
  copts.max_fetches = 200;
  auto session = system->NewCrawl(system->web().KeywordSeeds(cycling, 8),
                                  copts)
                     .TakeValue();
  ASSERT_TRUE(session->crawler().Crawl().ok());
  std::unordered_set<uint64_t> oids;
  for (const auto& v : session->crawler().visits()) {
    EXPECT_TRUE(oids.insert(v.oid).second) << v.url;
  }
}

}  // namespace
}  // namespace focus::core
