// EXPLAIN-ANALYZE instrumentation: per-operator row counts on a small
// hand-computed plan, and the instrumented Figure 3 / Figure 4 plans.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "classify/trainer.h"
#include "distill/distiller.h"
#include "distill/join_distiller.h"
#include "sql/catalog.h"
#include "sql/exec/analyze.h"
#include "sql/exec/basic.h"
#include "sql/exec/operator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "taxonomy/taxonomy.h"
#include "text/document.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::sql {
namespace {

// Depth-first search for a node by exact label.
const PlanStats::Node* FindNode(const PlanStats::Node* node,
                                const std::string& label) {
  if (node->label == label) return node;
  for (const PlanStats::Node* child : node->children) {
    if (const PlanStats::Node* hit = FindNode(child, label)) return hit;
  }
  return nullptr;
}

const PlanStats::Node* FindNode(const PlanStats& stats,
                                const std::string& label) {
  for (const PlanStats::Node* root : stats.Roots()) {
    if (const PlanStats::Node* hit = FindNode(root, label)) return hit;
  }
  return nullptr;
}

OperatorPtr Ints(std::vector<int64_t> values) {
  Schema schema({{"v", TypeId::kInt64}});
  std::vector<Tuple> rows;
  for (int64_t v : values) rows.push_back(Tuple({Value::Int64(v)}));
  return std::make_unique<MaterializedSource>(std::move(schema),
                                              std::move(rows));
}

TEST(PlanStatsTest, HandComputedRowCountsOnSimplePlan) {
  PlanStats stats;
  // 6 rows -> Filter v > 2 keeps {3,4,5,6} -> Project v*10.
  OperatorPtr plan = Analyze(
      &stats, "Project v*10",
      std::make_unique<Project>(
          Analyze(&stats, "Filter v>2",
                  std::make_unique<Filter>(
                      Analyze(&stats, "Source", Ints({1, 2, 3, 4, 5, 6})),
                      [](const Tuple& t) { return t.Get(0).AsInt64() > 2; })),
          std::vector<ProjExpr>{
              ProjExpr{"v10", TypeId::kInt64, [](const Tuple& t) {
                         return Value::Int64(t.Get(0).AsInt64() * 10);
                       }}}));
  auto rows = Collect(plan.get());
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows.value().size(), 4u);
  EXPECT_EQ(rows.value()[0].Get(0).AsInt64(), 30);

  ASSERT_EQ(stats.Roots().size(), 1u);
  const PlanStats::Node* project = stats.Roots()[0];
  EXPECT_EQ(project->label, "Project v*10");
  ASSERT_EQ(project->children.size(), 1u);
  const PlanStats::Node* filter = project->children[0];
  EXPECT_EQ(filter->label, "Filter v>2");
  ASSERT_EQ(filter->children.size(), 1u);
  const PlanStats::Node* source = filter->children[0];
  EXPECT_EQ(source->label, "Source");
  EXPECT_TRUE(source->children.empty());

  // rows_out counts true Next() results; next_calls includes the final
  // end-of-stream call.
  EXPECT_EQ(source->rows_out, 6u);
  EXPECT_EQ(source->next_calls, 7u);
  EXPECT_EQ(filter->rows_out, 4u);
  EXPECT_EQ(filter->next_calls, 5u);
  EXPECT_EQ(project->rows_out, 4u);
  EXPECT_EQ(project->next_calls, 5u);

  std::string report = stats.Format();
  EXPECT_NE(report.find("Project v*10"), std::string::npos) << report;
  EXPECT_NE(report.find("rows=4"), std::string::npos) << report;
  EXPECT_NE(report.find("rows=6"), std::string::npos) << report;

  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"operator\":\"Filter v>2\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rows\":6"), std::string::npos) << json;
}

TEST(PlanStatsTest, ReexecutionAccumulatesIntoTheSameNodes) {
  PlanStats stats;
  OperatorPtr plan = Analyze(&stats, "Source", Ints({1, 2, 3}));
  ASSERT_TRUE(Collect(plan.get()).ok());
  ASSERT_TRUE(Collect(plan.get()).ok());
  ASSERT_EQ(stats.Roots().size(), 1u);
  EXPECT_EQ(stats.Roots()[0]->rows_out, 6u);  // 3 rows x 2 executions
}

TEST(PlanStatsTest, NullStatsIsPassThrough) {
  OperatorPtr source = Ints({1});
  Operator* raw = source.get();
  OperatorPtr wrapped = Analyze(nullptr, "unused", std::move(source));
  EXPECT_EQ(wrapped.get(), raw);  // no wrapper inserted
}

// ---- the Figure 3 classifier plan ----

class BulkProbePlanTest : public testing::Test {
 protected:
  BulkProbePlanTest() : pool_(&disk_, 512), catalog_(&pool_), rng_(42) {
    using taxonomy::kRootCid;
    taxonomy::Cid rec = tax_.AddTopic(kRootCid, "recreation").value();
    taxonomy::Cid biz = tax_.AddTopic(kRootCid, "business").value();
    leaves_ = {tax_.AddTopic(rec, "cycling").value(),
               tax_.AddTopic(rec, "gardening").value(),
               tax_.AddTopic(biz, "mutual_funds").value(),
               tax_.AddTopic(biz, "stocks").value()};
  }

  text::TermVector MakeDoc(taxonomy::Cid leaf, int n = 120) {
    std::vector<std::string> tokens;
    tokens.reserve(n);
    for (int i = 0; i < n; ++i) {
      if (rng_.Bernoulli(0.6)) {
        tokens.push_back(
            StrCat("w_", tax_.Name(leaf), "_", rng_.Uniform(20)));
      } else {
        tokens.push_back(StrCat("bg_", rng_.Uniform(50)));
      }
    }
    return text::BuildTermVector(tokens);
  }

  storage::MemDiskManager disk_;
  storage::BufferPool pool_;
  sql::Catalog catalog_;
  Rng rng_;
  taxonomy::Taxonomy tax_;
  std::vector<taxonomy::Cid> leaves_;
};

TEST_F(BulkProbePlanTest, ClassifyWithPlanMatchesClassifyAll) {
  classify::Trainer trainer(
      classify::TrainerOptions{.max_features_per_node = 150});
  std::vector<classify::LabeledDocument> training;
  uint64_t did = 1;
  for (taxonomy::Cid leaf : leaves_) {
    for (int i = 0; i < 12; ++i) {
      training.push_back(classify::LabeledDocument{did++, leaf,
                                                   MakeDoc(leaf)});
    }
  }
  auto model = trainer.Train(tax_, training);
  ASSERT_TRUE(model.ok()) << model.status();
  classify::HierarchicalClassifier ref(&tax_, &model.value());
  auto tables = classify::BuildClassifierTables(&catalog_, tax_,
                                                model.value());
  ASSERT_TRUE(tables.ok()) << tables.status();
  classify::BulkProbeClassifier bulk(&ref, &tables.value());
  bulk.SetEngine(ExecEngine::kScalar);

  auto doc_table = classify::CreateDocumentTable(&catalog_, "DOCUMENT");
  ASSERT_TRUE(doc_table.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(classify::InsertDocument(doc_table.value(), i + 1,
                                         MakeDoc(leaves_[i % 4]))
                    .ok());
  }

  auto plain = bulk.ClassifyAll(doc_table.value());
  ASSERT_TRUE(plain.ok()) << plain.status();
  PlanStats stats;
  auto instrumented = bulk.ClassifyWithPlan(doc_table.value(), &stats);
  ASSERT_TRUE(instrumented.ok()) << instrumented.status();

  // Instrumentation must not change results.
  ASSERT_EQ(instrumented.value().size(), plain.value().size());
  for (const auto& [doc, expected] : plain.value()) {
    const classify::ClassScores& got = instrumented.value().at(doc);
    ASSERT_EQ(got.logp.size(), expected.logp.size());
    for (size_t c = 0; c < expected.logp.size(); ++c) {
      EXPECT_DOUBLE_EQ(got.logp[c], expected.logp[c]) << "cid " << c;
    }
  }

  // One root per probed internal node, plus the shared DOCUMENT sort.
  EXPECT_GE(stats.Roots().size(), 2u);
  const PlanStats::Node* doc_scan = FindNode(stats, "SeqScan DOCUMENT");
  ASSERT_NE(doc_scan, nullptr) << stats.Format();
  EXPECT_GT(doc_scan->rows_out, 0u);
  std::string report = stats.Format();
  EXPECT_NE(report.find("BulkProbeNode"), std::string::npos) << report;
  EXPECT_NE(report.find("MergeJoin DOCUMENT~STAT"), std::string::npos)
      << report;

  // The vectorized engine renders batch operators in the same tree and
  // produces bit-identical scores.
  bulk.SetEngine(ExecEngine::kVectorized);
  PlanStats vec_stats;
  auto vectorized = bulk.ClassifyWithPlan(doc_table.value(), &vec_stats);
  ASSERT_TRUE(vectorized.ok()) << vectorized.status();
  ASSERT_EQ(vectorized.value().size(), plain.value().size());
  for (const auto& [doc, expected] : plain.value()) {
    const classify::ClassScores& got = vectorized.value().at(doc);
    ASSERT_EQ(got.logp.size(), expected.logp.size());
    for (size_t c = 0; c < expected.logp.size(); ++c) {
      EXPECT_DOUBLE_EQ(got.logp[c], expected.logp[c]) << "cid " << c;
    }
  }
  std::string vec_report = vec_stats.Format();
  EXPECT_NE(vec_report.find("BatchMergeJoin DOCUMENT~STAT"),
            std::string::npos)
      << vec_report;
  EXPECT_NE(vec_report.find("BulkProbeNode"), std::string::npos)
      << vec_report;
  EXPECT_NE(vec_report.find("batches="), std::string::npos) << vec_report;
  std::string vec_json = vec_stats.ToJson();
  EXPECT_NE(vec_json.find("\"batches\":"), std::string::npos) << vec_json;
}

// ---- the Figure 4 distillation plan ----

TEST(DistillerPlanTest, StarGraphIterationRowCounts) {
  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 1024);
  sql::Catalog catalog(&pool);
  distill::DistillTables tables;

  auto link = catalog.CreateTable(
      "LINK",
      Schema({{"oid_src", TypeId::kInt64},
              {"sid_src", TypeId::kInt32},
              {"oid_dst", TypeId::kInt64},
              {"sid_dst", TypeId::kInt32},
              {"wgt_fwd", TypeId::kDouble},
              {"wgt_rev", TypeId::kDouble}}),
      {IndexSpec{"by_src", {0}, {}}, IndexSpec{"by_dst", {2}, {}}});
  ASSERT_TRUE(link.ok());
  tables.link = link.value();
  // Node 1 links to 2,3,4 off-server, and to 5 on the same server (the
  // nepotism filter must drop that edge).
  for (int64_t dst : {2, 3, 4}) {
    ASSERT_TRUE(tables.link
                    ->Insert(Tuple({Value::Int64(1), Value::Int32(10),
                                    Value::Int64(dst),
                                    Value::Int32(static_cast<int32_t>(
                                        10 * dst)),
                                    Value::Double(1.0), Value::Double(1.0)}))
                    .ok());
  }
  ASSERT_TRUE(tables.link
                  ->Insert(Tuple({Value::Int64(1), Value::Int32(10),
                                  Value::Int64(5), Value::Int32(10),
                                  Value::Double(1.0), Value::Double(1.0)}))
                  .ok());

  auto crawl = catalog.CreateTable(
      "CRAWL",
      Schema({{"oid", TypeId::kInt64}, {"relevance", TypeId::kDouble}}),
      {IndexSpec{"by_oid", {0}, {}}});
  ASSERT_TRUE(crawl.ok());
  tables.crawl = crawl.value();
  for (int64_t oid = 1; oid <= 5; ++oid) {
    ASSERT_TRUE(tables.crawl
                    ->Insert(Tuple(
                        {Value::Int64(oid), Value::Double(1.0)}))
                    .ok());
  }
  ASSERT_TRUE(distill::CreateHubsAuthTables(&catalog, &tables).ok());

  distill::JoinDistiller distiller(tables);
  distiller.SetEngine(ExecEngine::kScalar);
  ASSERT_TRUE(distiller.Initialize().ok());
  PlanStats stats;
  ASSERT_TRUE(distiller.RunIterationWithPlan(0.0, &stats).ok());

  const PlanStats::Node* auth_root =
      FindNode(stats, "UpdateAuth: HashAggregate(oid_dst, sum)");
  ASSERT_NE(auth_root, nullptr) << stats.Format();
  const PlanStats::Node* hub_root =
      FindNode(stats, "UpdateHubs: HashAggregate(oid_src, sum)");
  ASSERT_NE(hub_root, nullptr) << stats.Format();

  // Three distinct authorities, one hub.
  EXPECT_EQ(auth_root->rows_out, 3u);
  EXPECT_EQ(hub_root->rows_out, 1u);

  // The nepotism filter drops the same-server edge: 4 LINK rows in,
  // 3 eligible out, under both update plans.
  const PlanStats::Node* auth_scan = FindNode(auth_root, "SeqScan LINK");
  ASSERT_NE(auth_scan, nullptr) << stats.Format();
  EXPECT_EQ(auth_scan->rows_out, 4u);
  const PlanStats::Node* auth_filter =
      FindNode(auth_root, "Filter sid_src<>sid_dst");
  ASSERT_NE(auth_filter, nullptr);
  EXPECT_EQ(auth_filter->rows_out, 3u);
  // rho = 0 and every relevance is 1.0: the filter keeps all CRAWL rows.
  const PlanStats::Node* rel_filter =
      FindNode(auth_root, "Filter relevance>rho");
  ASSERT_NE(rel_filter, nullptr);
  EXPECT_EQ(rel_filter->rows_out, 5u);

  // Same iteration on the vectorized engine: identical structural row
  // counts, reported per batch operator. (Scores differ only because this
  // is the second iteration over the updated HUBS/AUTH tables; the row
  // counts below are structural.)
  distiller.SetEngine(ExecEngine::kVectorized);
  PlanStats vec_stats;
  ASSERT_TRUE(distiller.RunIterationWithPlan(0.0, &vec_stats).ok());

  const PlanStats::Node* vec_auth_root =
      FindNode(vec_stats, "UpdateAuth: BatchSortAggregate(oid_dst, sum)");
  ASSERT_NE(vec_auth_root, nullptr) << vec_stats.Format();
  EXPECT_EQ(vec_auth_root->rows_out, 3u);
  EXPECT_GE(vec_auth_root->batches, 1u);
  const PlanStats::Node* vec_hub_root =
      FindNode(vec_stats, "UpdateHubs: BatchSortAggregate(oid_src, sum)");
  ASSERT_NE(vec_hub_root, nullptr) << vec_stats.Format();
  EXPECT_EQ(vec_hub_root->rows_out, 1u);

  const PlanStats::Node* vec_link_scan =
      FindNode(vec_auth_root, "BatchTableScan LINK");
  ASSERT_NE(vec_link_scan, nullptr) << vec_stats.Format();
  EXPECT_EQ(vec_link_scan->rows_out, 4u);
  const PlanStats::Node* vec_nepotism =
      FindNode(vec_auth_root, "BatchFilter sid_src<>sid_dst");
  ASSERT_NE(vec_nepotism, nullptr);
  EXPECT_EQ(vec_nepotism->rows_out, 3u);
  const PlanStats::Node* vec_rel =
      FindNode(vec_auth_root, "BatchFilter relevance>rho");
  ASSERT_NE(vec_rel, nullptr);
  EXPECT_EQ(vec_rel->rows_out, 5u);
  EXPECT_NE(vec_stats.Format().find("batches="), std::string::npos)
      << vec_stats.Format();
}

}  // namespace
}  // namespace focus::sql
