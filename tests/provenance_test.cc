// Crawl provenance: EVENTS materialization, the canned discovery-edges
// query on all three engines, and full discovery-path reconstruction —
// including across a crash/recover boundary, where admits are reconciled
// from the WAL-recovered tables instead of the lost in-memory rings.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "crawl/crawl_db.h"
#include "crawl/crawler.h"
#include "crawl/provenance.h"
#include "crawl/relevance_evaluator.h"
#include "obs/admin_server.h"
#include "obs/event_log.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "util/hash.h"

namespace focus {
namespace {

using crawl::CrawlDb;
using crawl::CrawlRecord;
using crawl::Crawler;
using crawl::CrawlerOptions;
using storage::MemDiskManager;
using storage::WalDiskManager;

// Judges everything maximally relevant so the crawl expands freely.
class ConstantEvaluator final : public crawl::RelevanceEvaluator {
 public:
  Result<crawl::PageJudgment> Judge(const text::TermVector&) override {
    crawl::PageJudgment j;
    j.relevance = 1.0;
    j.best_leaf_is_good = true;
    return j;
  }
};

// A hostile simulated web: ~10% of fetch attempts fail across the fault
// classes, so discovery paths carry retries, drops and breaker activity.
// The web keeps a pointer to `tax`, which must outlive it.
std::unique_ptr<webgraph::SimulatedWeb> MakeFaultyWeb(
    const taxonomy::Taxonomy& tax, uint64_t seed) {
  webgraph::WebConfig config;
  config.seed = seed;
  config.pages_per_topic = 150;
  config.background_pages = 500;
  config.fetch_failure_prob = 0.05;
  config.faults.permanent_prob = 0.02;
  config.faults.timeout_prob = 0.02;
  config.faults.truncate_prob = 0.01;
  config.faults.flaky_server_fraction = 0.05;
  auto web = webgraph::SimulatedWeb::Generate(tax, config, {});
  EXPECT_TRUE(web.ok()) << web.status();
  return std::make_unique<webgraph::SimulatedWeb>(web.TakeValue());
}

taxonomy::Taxonomy MakeTinyTaxonomy() {
  taxonomy::Taxonomy tax;
  taxonomy::Cid rec = tax.AddTopic(taxonomy::kRootCid, "recreation").value();
  EXPECT_TRUE(tax.AddTopic(rec, "cycling").ok());
  return tax;
}

struct CrawlFixture {
  taxonomy::Taxonomy tax;
  std::unique_ptr<webgraph::SimulatedWeb> web;
  MemDiskManager disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<sql::Catalog> catalog;
  std::unique_ptr<CrawlDb> db;
  ConstantEvaluator evaluator;
  std::unique_ptr<Crawler> crawler;
};

// Runs a faulty multi-threaded crawl with `log` attached.
std::unique_ptr<CrawlFixture> RunFaultyCrawl(obs::EventLog* log,
                                             int max_fetches,
                                             int num_threads) {
  auto fx = std::make_unique<CrawlFixture>();
  fx->tax = MakeTinyTaxonomy();
  fx->web = MakeFaultyWeb(fx->tax, 17);
  fx->pool = std::make_unique<storage::BufferPool>(&fx->disk, 2048);
  fx->catalog = std::make_unique<sql::Catalog>(fx->pool.get());
  fx->db = std::make_unique<CrawlDb>(
      CrawlDb::Create(fx->catalog.get()).TakeValue());
  CrawlerOptions options;
  options.max_fetches = max_fetches;
  options.num_threads = num_threads;
  options.event_log = log;
  fx->crawler = std::make_unique<Crawler>(fx->web.get(), &fx->evaluator,
                                          fx->db.get(), fx->catalog.get(),
                                          options);
  EXPECT_TRUE(fx->crawler->AddSeed(fx->web->page(0).url).ok());
  EXPECT_TRUE(fx->crawler->AddSeed(fx->web->page(3).url).ok());
  EXPECT_TRUE(fx->crawler->Crawl().ok());
  EXPECT_GT(fx->crawler->visits().size(), 0u);
  return fx;
}

// Asserts `path` is a well-formed seed-to-target chain for `target`.
void CheckPathShape(const std::vector<crawl::DiscoveryHop>& path,
                    uint64_t target) {
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front().parent_oid, -1) << "path must start at a seed";
  EXPECT_EQ(path.back().oid, static_cast<int64_t>(target));
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(path[i].parent_oid, path[i - 1].oid)
        << "chain broken between hops " << i - 1 << " and " << i;
  }
  for (const crawl::DiscoveryHop& hop : path) {
    EXPECT_FALSE(hop.url.empty()) << "oid " << hop.oid << " not in CRAWL";
    EXPECT_GE(hop.attempts, 1) << hop.url;
  }
}

TEST(EventLogCrawlTest, LifecycleEventsCoverEveryVisit) {
  obs::EventLog log;
  log.Enable();
  auto fx = RunFaultyCrawl(&log, 120, 4);

  std::vector<obs::CrawlEvent> events = log.Snapshot();
  ASSERT_GT(events.size(), 0u);
  // Sequence order is total and strictly increasing, and a single-shard
  // crawl stamps every event with shard 0.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  for (const obs::CrawlEvent& e : events) {
    EXPECT_EQ(e.shard_id, 0);
  }
  // Every visit has attempt, success and verdict events.
  std::unordered_set<int64_t> attempted, succeeded, judged;
  uint64_t failures = 0;
  for (const obs::CrawlEvent& e : events) {
    switch (e.type) {
      case obs::CrawlEventType::kFetchAttempt:
        attempted.insert(e.oid);
        break;
      case obs::CrawlEventType::kFetchSuccess:
        succeeded.insert(e.oid);
        break;
      case obs::CrawlEventType::kClassifyVerdict:
        judged.insert(e.oid);
        break;
      case obs::CrawlEventType::kFetchFailure:
        ++failures;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(failures, fx->crawler->stats().transient_failures +
                          fx->crawler->stats().dropped_urls);
  for (const crawl::Visit& v : fx->crawler->visits()) {
    int64_t oid = static_cast<int64_t>(v.oid);
    EXPECT_TRUE(attempted.contains(oid)) << v.url;
    EXPECT_TRUE(succeeded.contains(oid)) << v.url;
    EXPECT_TRUE(judged.contains(oid)) << v.url;
  }
}

TEST(DiscoveryEdgesTest, BitIdenticalAcrossAllThreeEngines) {
  obs::EventLog log;
  log.Enable();
  auto fx = RunFaultyCrawl(&log, 150, 4);

  // Materialize into a scratch catalog (EVENTS is a snapshot relation,
  // independent of the crawl store).
  MemDiskManager scratch_disk;
  storage::BufferPool scratch_pool(&scratch_disk, 2048);
  sql::Catalog scratch(&scratch_pool);
  auto events = crawl::MaterializeEvents(log, &scratch);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_EQ(events.value()->num_rows(), log.Snapshot().size());

  auto scalar = crawl::DiscoveryEdges(events.value(),
                                      fx->db->link_table(),
                                      sql::ExecEngine::kScalar);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  auto vectorized = crawl::DiscoveryEdges(events.value(),
                                          fx->db->link_table(),
                                          sql::ExecEngine::kVectorized);
  ASSERT_TRUE(vectorized.ok()) << vectorized.status();
  auto parallel = crawl::DiscoveryEdges(events.value(),
                                        fx->db->link_table(),
                                        sql::ExecEngine::kParallel,
                                        /*num_threads=*/3);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  ASSERT_GT(scalar.value().size(), 0u);
  ASSERT_EQ(scalar.value().size(), vectorized.value().size());
  ASSERT_EQ(scalar.value().size(), parallel.value().size());
  for (size_t i = 0; i < scalar.value().size(); ++i) {
    EXPECT_EQ(scalar.value()[i].ToString(),
              vectorized.value()[i].ToString())
        << "row " << i;
    EXPECT_EQ(scalar.value()[i].ToString(), parallel.value()[i].ToString())
        << "row " << i;
  }
  // Every edge certifies a discovery: parent is real (never the -1
  // sentinel) and the LINK row backs the admit's claim.
  for (const sql::Tuple& row : scalar.value()) {
    EXPECT_NE(row.Get(2).AsInt64(), -1);
  }
}

TEST(DiscoveryPathTest, ReconstructsEveryVisitedUrlUnderFaults) {
  obs::EventLog log;
  log.Enable();
  auto fx = RunFaultyCrawl(&log, 150, 4);

  // Full-range oid hashes: with ~hundreds of URLs the crawl must touch
  // oids that are negative as int64 — the regression this guards is a
  // sign test silently dropping half the web from provenance.
  bool negative_oid_seen = false;
  for (const crawl::Visit& v : fx->crawler->visits()) {
    auto path = crawl::DiscoveryPath(log, *fx->db, v.oid);
    ASSERT_TRUE(path.ok()) << v.url << ": " << path.status();
    CheckPathShape(path.value(), v.oid);
    EXPECT_TRUE(path.value().back().visited) << v.url;
    EXPECT_EQ(path.value().back().url, v.url);
    for (const crawl::DiscoveryHop& hop : path.value()) {
      if (hop.oid < 0) negative_oid_seen = true;
    }
  }
  EXPECT_TRUE(negative_oid_seen);

  // Fault marks: every URL that failed at least once — visited, parked
  // for retry, or dropped — carries its failures and their classes on its
  // own hop of a well-formed path.
  obs::EventFilter fail_filter;
  fail_filter.type = static_cast<int32_t>(obs::CrawlEventType::kFetchFailure);
  std::vector<obs::CrawlEvent> failure_events = log.Snapshot(fail_filter);
  ASSERT_GT(failure_events.size(), 0u)
      << "10% faults should produce failures";
  std::unordered_set<int64_t> failed_oids;
  for (const obs::CrawlEvent& f : failure_events) failed_oids.insert(f.oid);
  for (int64_t oid : failed_oids) {
    auto path = crawl::DiscoveryPath(log, *fx->db, static_cast<uint64_t>(oid));
    ASSERT_TRUE(path.ok()) << "failed oid " << oid << ": " << path.status();
    CheckPathShape(path.value(), static_cast<uint64_t>(oid));
    const crawl::DiscoveryHop& hop = path.value().back();
    EXPECT_GT(hop.failures, 0) << hop.url;
    EXPECT_EQ(hop.failure_classes.size(), static_cast<size_t>(hop.failures))
        << hop.url;
  }

  // Unknown oid: NotFound, not a crash.
  EXPECT_EQ(crawl::DiscoveryPath(log, *fx->db, 0xDEADBEEFu).status().code(),
            StatusCode::kNotFound);

  // The human rendering names every hop.
  auto path =
      crawl::DiscoveryPath(log, *fx->db, fx->crawler->visits().back().oid);
  ASSERT_TRUE(path.ok());
  std::string pretty = crawl::FormatDiscoveryPath(path.value());
  EXPECT_NE(pretty.find("seed "), std::string::npos) << pretty;
  for (const crawl::DiscoveryHop& hop : path.value()) {
    EXPECT_NE(pretty.find(hop.url), std::string::npos) << pretty;
  }
}

TEST(DiscoveryPathTest, SurvivesCrashRecoverViaReconciledEvents) {
  taxonomy::Taxonomy tax = MakeTinyTaxonomy();
  std::unique_ptr<webgraph::SimulatedWeb> web_ptr = MakeFaultyWeb(tax, 23);
  webgraph::SimulatedWeb& web = *web_ptr;
  MemDiskManager data, wal_log;

  // Phase 1: WAL-backed crawl, then "crash" (drop everything without a
  // final checkpoint; the in-memory event rings die with the process).
  {
    auto wal = WalDiskManager::Open(&data, &wal_log).TakeValue();
    storage::BufferPool pool(wal.get(), 2048);
    sql::Catalog catalog(&pool);
    auto db = CrawlDb::Open(&catalog, wal.get()).TakeValue();
    obs::EventLog lost_log;
    lost_log.Enable();
    ConstantEvaluator evaluator;
    CrawlerOptions options;
    options.max_fetches = 60;
    options.num_threads = 2;
    // Never checkpoint: the crash must leave commits in the WAL so the
    // reopen below demonstrably replays (and marks) them.
    options.checkpoint_every_batches = 0;
    options.event_log = &lost_log;
    Crawler crawler(&web, &evaluator, &db, &catalog, options);
    ASSERT_TRUE(crawler.AddSeed(web.page(0).url).ok());
    ASSERT_TRUE(crawler.Crawl().ok());
    ASSERT_GT(crawler.visits().size(), 0u);
  }

  // Phase 2: a new "process" — fresh WAL recovery, fresh (empty) event
  // log, resumed crawler, more crawling.
  auto wal = WalDiskManager::Open(&data, &wal_log).TakeValue();
  storage::BufferPool pool(wal.get(), 2048);
  sql::Catalog catalog(&pool);
  auto db = CrawlDb::Open(&catalog, wal.get()).TakeValue();
  obs::EventLog log;
  log.Enable();
  wal->BindEventLog(&log);  // retrospective wal_replay marker
  ConstantEvaluator evaluator;
  CrawlerOptions options;
  options.max_fetches = 60;
  options.num_threads = 2;
  options.event_log = &log;
  Crawler crawler(&web, &evaluator, &db, &catalog, options);
  ASSERT_TRUE(crawler.ResumeFromDb().ok());
  ASSERT_TRUE(crawler.Crawl().ok());
  ASSERT_GT(crawler.visits().size(), 0u);

  // The recovery left its marks: a wal_replay event and reconciled admits
  // for the pre-crash history.
  obs::EventFilter replay_filter;
  replay_filter.type = static_cast<int32_t>(obs::CrawlEventType::kWalReplay);
  EXPECT_FALSE(log.Snapshot(replay_filter).empty());
  obs::EventFilter admit_filter;
  admit_filter.type =
      static_cast<int32_t>(obs::CrawlEventType::kFrontierAdmit);
  size_t reconciled_admits = 0;
  for (const obs::CrawlEvent& e : log.Snapshot(admit_filter)) {
    if (e.reconciled) ++reconciled_admits;
  }
  EXPECT_GT(reconciled_admits, 0u);

  // Every visited row in the recovered store — pre- and post-crash — has
  // a complete discovery path; pre-crash pages walk reconciled admits.
  auto it = db.crawl_table()->Scan();
  storage::Rid rid;
  sql::Tuple row;
  size_t visited_rows = 0, paths_with_reconciled_hops = 0;
  while (it.Next(&rid, &row)) {
    CrawlRecord rec = CrawlDb::RecordFromTuple(row);
    if (!rec.visited) continue;
    ++visited_rows;
    auto path = crawl::DiscoveryPath(log, db, rec.oid);
    ASSERT_TRUE(path.ok()) << rec.url << ": " << path.status();
    CheckPathShape(path.value(), rec.oid);
    for (const crawl::DiscoveryHop& hop : path.value()) {
      if (hop.reconciled) {
        ++paths_with_reconciled_hops;
        break;
      }
    }
  }
  ASSERT_TRUE(it.status().ok());
  EXPECT_GT(visited_rows, 0u);
  EXPECT_GT(paths_with_reconciled_hops, 0u);
}

TEST(AdminEndpointTest, FrontierRouteServesLiveCrawlState) {
  obs::EventLog log;
  log.Enable();
  auto fx = RunFaultyCrawl(&log, 80, 2);

  obs::AdminServer::Options opts;
  opts.events = &log;
  obs::AdminServer admin(opts);
  crawl::RegisterCrawlAdminEndpoints(&admin, fx->crawler.get());

  obs::AdminResponse frontier =
      admin.Handle(obs::ParseRequestTarget("/frontier"));
  EXPECT_EQ(frontier.status, 200);
  EXPECT_EQ(frontier.content_type, "application/json");
  EXPECT_NE(frontier.body.find("\"shards\""), std::string::npos)
      << frontier.body;
  EXPECT_NE(frontier.body.find("\"breakers\""), std::string::npos);

  // /events?oid= filters on the exact oid — including oids that are
  // negative as int64 (the JSONL export is what a scraper copies from).
  int64_t target = static_cast<int64_t>(fx->crawler->visits().front().oid);
  obs::AdminResponse events = admin.Handle(obs::ParseRequestTarget(
      "/events?oid=" + std::to_string(target) + "&limit=5"));
  EXPECT_EQ(events.status, 200);
  ASSERT_FALSE(events.body.empty());
  size_t lines = 0;
  for (size_t pos = 0; (pos = events.body.find('\n', pos)) !=
                       std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_LE(lines, 5u);
  EXPECT_NE(events.body.find("\"oid\":" + std::to_string(target)),
            std::string::npos)
      << events.body;
  // The JSONL export carries the shard id on every line (0 here — the
  // admin server fronts a single-shard crawl).
  EXPECT_NE(events.body.find("\"shard_id\":0"), std::string::npos)
      << events.body;
}

TEST(EventLogShardStampTest, ShardIdFlowsThroughSnapshotAndJsonl) {
  obs::EventLog log;
  log.Enable();
  log.SetShardId(3);
  log.Record(obs::CrawlEventType::kFetchAttempt, /*oid=*/42,
             /*parent_oid=*/-1, /*sid=*/7, /*virtual_us=*/100, /*value=*/0.5,
             /*aux=*/0);
  std::vector<obs::CrawlEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].shard_id, 3);
  std::string jsonl = log.ToJsonl();
  EXPECT_NE(jsonl.find("\"shard_id\":3"), std::string::npos) << jsonl;
  // A log that never calls SetShardId reports shard 0 (the single-shard
  // default every pre-distributed consumer relies on).
  obs::EventLog plain;
  plain.Enable();
  plain.Record(obs::CrawlEventType::kFetchAttempt, 1, -1, 0, 0, 0.0, 0);
  ASSERT_EQ(plain.Snapshot().size(), 1u);
  EXPECT_EQ(plain.Snapshot()[0].shard_id, 0);
  EXPECT_NE(plain.ToJsonl().find("\"shard_id\":0"), std::string::npos);
}

}  // namespace
}  // namespace focus
