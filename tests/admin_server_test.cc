// AdminServer: request parsing, route dispatch, and the real socket path.
//
// Most coverage goes through Handle() — the exact function the accept
// thread calls — so the tests are deterministic; one test exercises the
// actual loopback socket end to end (ephemeral port, raw GET, non-GET
// rejection, idempotent Stop).

#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace focus::obs {
namespace {

TEST(ParseRequestTargetTest, SplitsPathAndQuery) {
  AdminRequest req = ParseRequestTarget("/events?type=fetch_failure&limit=10");
  EXPECT_EQ(req.path, "/events");
  EXPECT_EQ(req.Param("type"), "fetch_failure");
  EXPECT_EQ(req.ParamInt("limit", -1), 10);
  EXPECT_EQ(req.Param("absent", "def"), "def");
  EXPECT_EQ(req.ParamInt("absent", 42), 42);
}

TEST(ParseRequestTargetTest, PercentDecodesAndPlusMeansSpace) {
  AdminRequest req = ParseRequestTarget("/p%61th?k%65y=a+b%2Fc&flag");
  EXPECT_EQ(req.path, "/path");
  EXPECT_EQ(req.Param("key"), "a b/c");
  // A bare key (no '=') is present with an empty value.
  EXPECT_EQ(req.query.count("flag"), 1u);
  EXPECT_EQ(req.Param("flag", "def"), "");
}

TEST(ParseRequestTargetTest, NegativeAndMalformedInts) {
  AdminRequest req = ParseRequestTarget("/events?oid=-12345&limit=abc");
  EXPECT_EQ(req.ParamInt("oid", -1), -12345);
  // Unparseable value falls back to the default.
  EXPECT_EQ(req.ParamInt("limit", 7), 7);
}

TEST(AdminServerTest, HealthzAndUnknownPath) {
  AdminServer server(AdminServer::Options{});
  AdminResponse ok = server.Handle(ParseRequestTarget("/healthz"));
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "ok\n");

  AdminResponse missing = server.Handle(ParseRequestTarget("/nope"));
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("/nope"), std::string::npos);
}

TEST(AdminServerTest, MetricsRoutesUsePrivateRegistry) {
  MetricsRegistry registry;
  registry.GetCounter("admin_test_requests_total", {{"route", "a"}})->Add(3);
  AdminServer::Options opts;
  opts.metrics = &registry;
  AdminServer server(opts);

  AdminResponse prom = server.Handle(ParseRequestTarget("/metrics"));
  EXPECT_EQ(prom.status, 200);
  EXPECT_EQ(prom.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(prom.body.find("admin_test_requests_total"), std::string::npos);
  EXPECT_NE(prom.body.find("# HELP"), std::string::npos);

  AdminResponse json = server.Handle(ParseRequestTarget("/metrics.json"));
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.body.find("admin_test_requests_total"), std::string::npos);
}

TEST(AdminServerTest, TraceRouteServesChromeJson) {
  AdminServer::Options opts;
  opts.trace = &TraceBuffer::Global();
  AdminServer server(opts);
  AdminResponse resp = server.Handle(ParseRequestTarget("/trace"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "application/json");
  EXPECT_NE(resp.body.find("\"traceEvents\""), std::string::npos);
}

TEST(AdminServerTest, EventsRouteFiltersAndBounds) {
  EventLog log;
  log.Enable(1024);
  // A negative oid (full-range 64-bit hash) must round-trip the query
  // string and the filter.
  const int64_t neg_oid = -77;
  log.Record(CrawlEventType::kFrontierAdmit, neg_oid, -1, 0, 10, 0.5, 0);
  log.Record(CrawlEventType::kFetchAttempt, neg_oid, -1, 0, 11, 0.0, 1);
  log.Record(CrawlEventType::kFetchSuccess, 42, -1, 0, 12, 0.0, 0);

  AdminServer::Options opts;
  opts.events = &log;
  AdminServer server(opts);

  AdminResponse all = server.Handle(ParseRequestTarget("/events"));
  EXPECT_EQ(all.status, 200);
  EXPECT_EQ(all.content_type, "application/x-ndjson");
  EXPECT_EQ(std::count(all.body.begin(), all.body.end(), '\n'), 3);

  AdminResponse typed =
      server.Handle(ParseRequestTarget("/events?type=fetch_success"));
  EXPECT_EQ(std::count(typed.body.begin(), typed.body.end(), '\n'), 1);
  EXPECT_NE(typed.body.find("\"fetch_success\""), std::string::npos);

  AdminResponse by_oid = server.Handle(ParseRequestTarget("/events?oid=-77"));
  EXPECT_EQ(std::count(by_oid.body.begin(), by_oid.body.end(), '\n'), 2);
  EXPECT_NE(by_oid.body.find("\"oid\":-77"), std::string::npos);

  AdminResponse limited =
      server.Handle(ParseRequestTarget("/events?limit=1"));
  EXPECT_EQ(std::count(limited.body.begin(), limited.body.end(), '\n'), 1);
  // limit keeps the LAST events, so the survivor is the newest one.
  EXPECT_NE(limited.body.find("\"fetch_success\""), std::string::npos);

  AdminResponse bad = server.Handle(ParseRequestTarget("/events?type=bogus"));
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("bogus"), std::string::npos);
}

TEST(AdminServerTest, EventsRouteWithoutLogIsEmptyNotAnError) {
  AdminServer server(AdminServer::Options{});
  AdminResponse resp = server.Handle(ParseRequestTarget("/events"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(resp.body.empty());
}

TEST(AdminServerTest, AddHandlerRegistersAndReplacesRoutes) {
  AdminServer server(AdminServer::Options{});
  server.AddHandler("/custom", [](const AdminRequest& req) {
    AdminResponse resp;
    resp.body = "v1:" + req.Param("q");
    return resp;
  });
  EXPECT_EQ(server.Handle(ParseRequestTarget("/custom?q=x")).body, "v1:x");

  // Re-registering the same path replaces the handler (the long-lived
  // server re-points routes at each new crawl session).
  server.AddHandler("/custom", [](const AdminRequest&) {
    AdminResponse resp;
    resp.body = "v2";
    return resp;
  });
  EXPECT_EQ(server.Handle(ParseRequestTarget("/custom")).body, "v2");
}

// Sends one raw HTTP request to 127.0.0.1:port and returns the full
// response (headers + body), empty on any socket error.
std::string RawRequest(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(AdminServerSocketTest, ServesGetRejectsOthersOnEphemeralPort) {
  EventLog log;
  log.Enable(64);
  log.Record(CrawlEventType::kWalCommit, -1, -1, -1, -1, 0.0, 5);

  AdminServer::Options opts;
  opts.port = 0;  // ephemeral
  opts.events = &log;
  AdminServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  // A second Start() while running must refuse, not rebind.
  EXPECT_FALSE(server.Start().ok());

  std::string health =
      RawRequest(server.port(), "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  std::string events = RawRequest(
      server.port(), "GET /events?type=wal_commit HTTP/1.1\r\n\r\n");
  EXPECT_NE(events.find("application/x-ndjson"), std::string::npos);
  EXPECT_NE(events.find("\"wal_commit\""), std::string::npos);

  std::string post =
      RawRequest(server.port(), "POST /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  std::string malformed = RawRequest(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent

  // The port is released: a fresh server can bind and serve again.
  AdminServer again(opts);
  ASSERT_TRUE(again.Start().ok());
  std::string health2 =
      RawRequest(again.port(), "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(health2.find("HTTP/1.1 200 OK"), std::string::npos);
  again.Stop();
}

}  // namespace
}  // namespace focus::obs
