// Storage-layer integration coverage: file-backed databases, simulated
// disk latency, buffer-pool accounting precision, and cross-structure use
// of one pool.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace focus::storage {
namespace {

TEST(FileBackedTest, HeapFileAndTreeSurviveEviction) {
  std::string path = testing::TempDir() + "/focus_extra_test.db";
  auto disk_or = FileDiskManager::Open(path);
  ASSERT_TRUE(disk_or.ok());
  auto disk = disk_or.TakeValue();
  BufferPool pool(disk.get(), 8);  // tiny pool: constant eviction

  auto file = HeapFile::Create(&pool).TakeValue();
  auto tree = BPlusTree::Create(&pool).TakeValue();
  std::vector<Rid> rids;
  for (int i = 0; i < 1500; ++i) {
    auto rid = file.Insert(StrCat("payload-", i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
    ASSERT_TRUE(tree.Insert(i, rid.value().Pack()).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  // Everything must read back through the tiny pool from the file.
  for (int i = 0; i < 1500; i += 37) {
    std::vector<uint64_t> packed;
    ASSERT_TRUE(tree.GetAll(i, &packed).ok());
    ASSERT_EQ(packed.size(), 1u);
    std::string record;
    ASSERT_TRUE(file.Get(Rid::Unpack(packed[0]), &record).ok());
    EXPECT_EQ(record, StrCat("payload-", i));
  }
  EXPECT_GT(disk->stats().writes, 0u);
  EXPECT_GT(disk->stats().reads, 0u);
  std::remove(path.c_str());
}

TEST(LatencyTest, SimulatedReadLatencyIsObservable) {
  MemDiskManager slow(MemDiskManager::Options{.read_latency_us = 200});
  MemDiskManager fast;
  auto time_reads = [](MemDiskManager* disk, int n) {
    std::vector<PageId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(disk->AllocatePage().value());
    Page buf;
    Stopwatch sw;
    for (PageId id : ids) {
      EXPECT_TRUE(disk->ReadPage(id, buf.data).ok());
    }
    return sw.ElapsedMicros();
  };
  double slow_us = time_reads(&slow, 50);
  double fast_us = time_reads(&fast, 50);
  EXPECT_GE(slow_us, 50 * 180.0);  // ~200us per read, some tolerance
  EXPECT_LT(fast_us, slow_us / 5);
}

TEST(BufferPoolAccountingTest, HitsAndMissesAddUp) {
  MemDiskManager disk;
  BufferPool pool(&disk, 16);
  std::vector<PageId> ids(32);
  for (auto& id : ids) {
    ASSERT_TRUE(pool.NewPage(&id).ok());
    pool.UnpinPage(id, true);
  }
  pool.ResetStats();
  // Touch all 32 twice. First pass: >= 16 misses (only 16 frames);
  // second pass of a 16-page working set fits exactly when we restrict
  // to the last 16 pages.
  for (PageId id : ids) {
    ASSERT_TRUE(pool.FetchPage(id).ok());
    pool.UnpinPage(id, false);
  }
  uint64_t first_pass_misses = pool.stats().misses;
  EXPECT_GE(first_pass_misses, 16u);
  pool.ResetStats();
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 16; i < 32; ++i) {
      ASSERT_TRUE(pool.FetchPage(ids[i]).ok());
      pool.UnpinPage(ids[i], false);
    }
  }
  // After the first warming round the 16-page set is fully resident.
  EXPECT_EQ(pool.stats().hits + pool.stats().misses,
            pool.stats().fetches);
  EXPECT_LE(pool.stats().misses, 16u);
  EXPECT_GE(pool.stats().hits, 32u);
}

TEST(BufferPoolAccountingTest, FlushClearsDirtyOnce) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  PageId id;
  auto page = pool.NewPage(&id);
  ASSERT_TRUE(page.ok());
  page.value()->Write<int>(0, 1);
  pool.UnpinPage(id, true);
  ASSERT_TRUE(pool.FlushAll().ok());
  uint64_t writes_after_first = disk.stats().writes;
  ASSERT_TRUE(pool.FlushAll().ok());  // nothing dirty: no extra writes
  EXPECT_EQ(disk.stats().writes, writes_after_first);
}

TEST(SharedPoolTest, ManyStructuresShareFrames) {
  // Several trees and heap files on one pool must not corrupt each other
  // under eviction pressure.
  MemDiskManager disk;
  BufferPool pool(&disk, 12);
  auto t1 = BPlusTree::Create(&pool).TakeValue();
  auto t2 = BPlusTree::Create(&pool).TakeValue();
  auto f1 = HeapFile::Create(&pool).TakeValue();
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(t1.Insert(i, i * 2).ok());
    ASSERT_TRUE(t2.Insert(i * 3, i).ok());
    if (i % 5 == 0) {
      ASSERT_TRUE(f1.Insert(StrCat("r", i)).ok());
    }
  }
  ASSERT_TRUE(t1.CheckInvariants().ok());
  ASSERT_TRUE(t2.CheckInvariants().ok());
  std::vector<uint64_t> vals;
  ASSERT_TRUE(t1.GetAll(1234, &vals).ok());
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0], 2468u);
  vals.clear();
  ASSERT_TRUE(t2.GetAll(3 * 1999, &vals).ok());
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0], 1999u);
  EXPECT_EQ(f1.num_records(), 400u);
}

}  // namespace
}  // namespace focus::storage
