// Property test: under any policy and any interleaving of AddOrUpdate /
// PopBest, the frontier pops exactly the best live entry according to a
// naive reference implementation.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <optional>

#include "crawl/frontier.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::crawl {
namespace {

// Mirrors Frontier::HeapLess but as a straightforward "is a better than b"
// comparison over a flat map — the oracle.
bool Better(PriorityPolicy policy, const FrontierEntry& a,
            const FrontierEntry& b) {
  auto tie = [&] {
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.oid < b.oid;
  };
  switch (policy) {
    case PriorityPolicy::kAggressiveDiscovery: {
      if (a.numtries != b.numtries) return a.numtries < b.numtries;
      if (a.relevance != b.relevance) return a.relevance > b.relevance;
      int32_t la = a.serverload / 8, lb = b.serverload / 8;
      if (la != lb) return la < lb;
      return tie();
    }
    case PriorityPolicy::kBreadthFirst:
      return tie();
    case PriorityPolicy::kRevisitHubs: {
      int64_t la = a.lastvisited == 0
                       ? std::numeric_limits<int64_t>::max()
                       : a.lastvisited;
      int64_t lb = b.lastvisited == 0
                       ? std::numeric_limits<int64_t>::max()
                       : b.lastvisited;
      if (la != lb) return la < lb;
      if (a.hub_score != b.hub_score) return a.hub_score > b.hub_score;
      return tie();
    }
    case PriorityPolicy::kRetryDeadLinks:
      if (a.numtries != b.numtries) return a.numtries > b.numtries;
      if (a.relevance != b.relevance) return a.relevance > b.relevance;
      return tie();
    case PriorityPolicy::kBacklinkCount:
      if (a.backlinks != b.backlinks) return a.backlinks > b.backlinks;
      return tie();
    case PriorityPolicy::kPageRankOrder:
      if (a.hub_score != b.hub_score) return a.hub_score > b.hub_score;
      return tie();
  }
  return tie();
}

class FrontierPropertyTest
    : public testing::TestWithParam<std::tuple<int, PriorityPolicy>> {};

TEST_P(FrontierPropertyTest, MatchesReferenceSelection) {
  auto [seed, policy] = GetParam();
  Rng rng(seed);
  Frontier frontier(policy);
  std::map<uint64_t, FrontierEntry> reference;

  for (int step = 0; step < 2000; ++step) {
    double action = rng.NextDouble();
    if (action < 0.55 || reference.empty()) {
      FrontierEntry e;
      e.oid = rng.Uniform(200);
      e.url = StrCat("http://h/", e.oid);
      e.numtries = static_cast<int32_t>(rng.Uniform(4));
      e.relevance = rng.NextDouble();
      e.serverload = static_cast<int32_t>(rng.Uniform(40));
      e.lastvisited = static_cast<int64_t>(rng.Uniform(1000));
      e.hub_score = rng.NextDouble();
      e.backlinks = static_cast<int32_t>(rng.Uniform(6));
      frontier.AddOrUpdate(e);
      // Reference mirrors the seq-preservation rule.
      auto it = reference.find(e.oid);
      if (it != reference.end()) {
        e.seq = it->second.seq;
        it->second = e;
      } else {
        const FrontierEntry* in = frontier.Peek(e.oid);
        ASSERT_NE(in, nullptr);
        e.seq = in->seq;
        reference[e.oid] = e;
      }
    } else if (action < 0.9) {
      auto popped = frontier.PopBest();
      ASSERT_TRUE(popped.has_value());
      // Find the reference best.
      const FrontierEntry* best = nullptr;
      for (const auto& [oid, entry] : reference) {
        if (best == nullptr || Better(policy, entry, *best)) {
          best = &entry;
        }
      }
      ASSERT_NE(best, nullptr);
      EXPECT_EQ(popped->oid, best->oid) << "step " << step;
      reference.erase(popped->oid);
    } else if (!reference.empty()) {
      // Erase a random entry.
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      frontier.Erase(it->first);
      reference.erase(it);
    }
    ASSERT_EQ(frontier.size(), reference.size());
  }

  // Drain fully; sequence must match the oracle's repeated selection.
  while (!reference.empty()) {
    auto popped = frontier.PopBest();
    ASSERT_TRUE(popped.has_value());
    const FrontierEntry* best = nullptr;
    for (const auto& [oid, entry] : reference) {
      if (best == nullptr || Better(policy, entry, *best)) best = &entry;
    }
    EXPECT_EQ(popped->oid, best->oid);
    reference.erase(popped->oid);
  }
  EXPECT_TRUE(frontier.empty());
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, FrontierPropertyTest,
    testing::Combine(testing::Range(1, 6),
                     testing::Values(PriorityPolicy::kAggressiveDiscovery,
                                     PriorityPolicy::kBreadthFirst,
                                     PriorityPolicy::kRevisitHubs,
                                     PriorityPolicy::kRetryDeadLinks,
                                     PriorityPolicy::kBacklinkCount,
                                     PriorityPolicy::kPageRankOrder)),
    [](const testing::TestParamInfo<std::tuple<int, PriorityPolicy>>&
           info) {
      return StrCat("seed", std::get<0>(info.param), "_",
                    PolicyName(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace focus::crawl
