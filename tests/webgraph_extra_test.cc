// Webgraph extras: universal portals, determinism of lazy text, config
// validation and fetch bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "taxonomy/taxonomy.h"
#include "webgraph/simulated_web.h"

namespace focus::webgraph {
namespace {

using taxonomy::Cid;
using taxonomy::Taxonomy;

Taxonomy TwoTopicTax() {
  Taxonomy tax;
  Cid rec = tax.AddTopic(taxonomy::kRootCid, "recreation").value();
  tax.AddTopic(rec, "cycling").value();
  tax.AddTopic(rec, "gardening").value();
  return tax;
}

TEST(WebPortalsTest, PopularPagesAttractExtraInlinks) {
  Taxonomy tax = TwoTopicTax();
  WebConfig config;
  config.seed = 3;
  config.pages_per_topic = 150;
  config.background_pages = 3000;
  config.background_servers = 60;
  config.popular_background_pages = 5;
  config.popular_background_share = 0.3;
  auto web = SimulatedWeb::Generate(tax, config, {}).TakeValue();

  // Find the first background page index.
  uint32_t background_start = 0;
  for (uint32_t i = 0; i < web.num_pages(); ++i) {
    if (web.page(i).topic == kBackgroundTopic) {
      background_start = i;
      break;
    }
  }
  std::map<uint32_t, int> indegree;
  for (uint32_t i = 0; i < web.num_pages(); ++i) {
    for (uint32_t t : web.page(i).outlinks) ++indegree[t];
  }
  // Average in-degree of the 5 portals vs other background pages.
  double portal_in = 0, other_in = 0;
  int others = 0;
  for (uint32_t i = background_start; i < web.num_pages(); ++i) {
    if (i < background_start + 5) {
      portal_in += indegree[i];
    } else {
      other_in += indegree[i];
      ++others;
    }
  }
  portal_in /= 5;
  other_in /= others;
  EXPECT_GT(portal_in, 20 * other_in);
}

TEST(WebPortalsTest, ZeroPortalsDisablesSkew) {
  Taxonomy tax = TwoTopicTax();
  WebConfig config;
  config.seed = 3;
  config.pages_per_topic = 100;
  config.background_pages = 2000;
  config.background_servers = 50;
  config.popular_background_pages = 0;
  auto web = SimulatedWeb::Generate(tax, config, {}).TakeValue();
  std::map<uint32_t, int> indegree;
  for (uint32_t i = 0; i < web.num_pages(); ++i) {
    for (uint32_t t : web.page(i).outlinks) ++indegree[t];
  }
  int max_bg_in = 0;
  for (uint32_t i = 0; i < web.num_pages(); ++i) {
    if (web.page(i).topic == kBackgroundTopic) {
      max_bg_in = std::max(max_bg_in, indegree[i]);
    }
  }
  EXPECT_LT(max_bg_in, 30);  // no background page dominates
}

TEST(WebConfigTest, TooSmallWebRejected) {
  Taxonomy tax = TwoTopicTax();
  WebConfig config;
  config.pages_per_topic = 1;
  EXPECT_FALSE(SimulatedWeb::Generate(tax, config, {}).ok());
  config.pages_per_topic = 100;
  config.background_pages = 0;
  EXPECT_FALSE(SimulatedWeb::Generate(tax, config, {}).ok());
}

TEST(WebFetchTest, FetchCountTracksSuccesses) {
  Taxonomy tax = TwoTopicTax();
  WebConfig config;
  config.seed = 9;
  config.pages_per_topic = 50;
  config.background_pages = 500;
  config.background_servers = 20;
  config.fetch_failure_prob = 0.0;
  auto web = SimulatedWeb::Generate(tax, config, {}).TakeValue();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(web.Fetch(web.page(i).url).ok());
  }
  EXPECT_EQ(web.fetch_count(), 10u);
  EXPECT_FALSE(web.Fetch("http://not.a.page/").ok());
  EXPECT_EQ(web.fetch_count(), 10u);
}

TEST(WebTextTest, PurityJitterVariesDocumentsButStaysDeterministic) {
  Taxonomy tax = TwoTopicTax();
  WebConfig config;
  config.seed = 21;
  config.pages_per_topic = 80;
  config.background_pages = 400;
  config.background_servers = 20;
  config.topic_fraction_jitter = 0.2;
  config.fetch_failure_prob = 0.0;
  auto web = SimulatedWeb::Generate(tax, config, {}).TakeValue();
  Cid cycling = tax.FindByName("cycling").value();
  auto members = web.PagesOfTopic(cycling);
  // Topic-token fraction should vary across pages.
  std::vector<double> fractions;
  for (int i = 0; i < 30; ++i) {
    auto fetch = web.Fetch(web.page(members[i]).url);
    ASSERT_TRUE(fetch.ok());
    int topical = 0;
    for (const auto& tok : fetch.value().tokens) {
      topical += tok.rfind("w", 0) == 0;  // topic tokens start with 'w'
    }
    fractions.push_back(static_cast<double>(topical) /
                        fetch.value().tokens.size());
  }
  auto [lo, hi] = std::minmax_element(fractions.begin(), fractions.end());
  EXPECT_GT(*hi - *lo, 0.15);
  // But refetching gives identical text.
  auto f1 = web.Fetch(web.page(members[0]).url);
  auto f2 = web.Fetch(web.page(members[0]).url);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f1.value().tokens, f2.value().tokens);
}

TEST(WebSeedsTest, SeedsAreRankedByKeywordDensity) {
  Taxonomy tax = TwoTopicTax();
  WebConfig config;
  config.seed = 33;
  config.pages_per_topic = 120;
  config.background_pages = 500;
  config.background_servers = 20;
  config.fetch_failure_prob = 0.0;
  auto web = SimulatedWeb::Generate(tax, config, {}).TakeValue();
  Cid cycling = tax.FindByName("cycling").value();
  auto keywords = web.TopicKeywords(cycling, 3);
  auto count_hits = [&](const std::string& url) {
    auto fetch = web.Fetch(url);
    EXPECT_TRUE(fetch.ok());
    int hits = 0;
    for (const auto& tok : fetch.value().tokens) {
      for (const auto& kw : keywords) hits += (tok == kw);
    }
    return hits;
  };
  auto top = web.KeywordSeeds(cycling, 3, 0);
  auto bottom = web.KeywordSeeds(cycling, 3, 110);
  int top_hits = 0, bottom_hits = 0;
  for (const auto& url : top) top_hits += count_hits(url);
  for (const auto& url : bottom) bottom_hits += count_hits(url);
  EXPECT_GT(top_hits, bottom_hits);
}

}  // namespace
}  // namespace focus::webgraph
