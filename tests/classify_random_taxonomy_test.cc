// Property sweep: on randomly shaped taxonomies (variable depth and
// branching), the four classifier implementations remain equivalent and
// the hierarchical probability measure holds.
#include <gtest/gtest.h>

#include <cmath>

#include "classify/bulk_probe.h"
#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "classify/single_probe.h"
#include "classify/trainer.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "taxonomy/taxonomy.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::classify {
namespace {

using taxonomy::Cid;
using taxonomy::Taxonomy;
using text::TermVector;

// Random tree: root gets 2-4 children; each child independently becomes
// internal (2-3 children) or a leaf; depth <= 3.
Taxonomy RandomTaxonomy(Rng* rng) {
  Taxonomy tax;
  int counter = 0;
  int top = 2 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < top; ++i) {
    Cid child =
        tax.AddTopic(taxonomy::kRootCid, StrCat("t", counter++)).value();
    if (rng->Bernoulli(0.5)) {
      int grandchildren = 2 + static_cast<int>(rng->Uniform(2));
      for (int j = 0; j < grandchildren; ++j) {
        Cid grandchild =
            tax.AddTopic(child, StrCat("t", counter++)).value();
        if (rng->Bernoulli(0.3)) {
          for (int k = 0; k < 2; ++k) {
            tax.AddTopic(grandchild, StrCat("t", counter++)).value();
          }
        }
      }
    }
  }
  return tax;
}

TermVector RandomDoc(const Taxonomy& tax, Cid leaf, Rng* rng) {
  std::vector<std::string> tokens;
  int n = 40 + static_cast<int>(rng->Uniform(120));
  for (int i = 0; i < n; ++i) {
    double u = rng->NextDouble();
    if (u < 0.5) {
      tokens.push_back(StrCat("w", leaf, "_", rng->Uniform(30)));
    } else if (u < 0.65) {
      tokens.push_back(
          StrCat("p", tax.Parent(leaf), "_", rng->Uniform(15)));
    } else {
      tokens.push_back(StrCat("bg_", rng->Uniform(80)));
    }
  }
  return text::BuildTermVector(tokens);
}

class RandomTaxonomyTest : public testing::TestWithParam<int> {};

TEST_P(RandomTaxonomyTest, AllClassifiersAgreeOnRandomShapes) {
  Rng rng(GetParam() * 7919 + 13);
  Taxonomy tax = RandomTaxonomy(&rng);
  auto leaves = tax.LeavesUnder(taxonomy::kRootCid);
  ASSERT_GE(leaves.size(), 2u);

  std::vector<LabeledDocument> examples;
  uint64_t did = 1;
  for (Cid leaf : leaves) {
    for (int i = 0; i < 10; ++i) {
      examples.push_back({did++, leaf, RandomDoc(tax, leaf, &rng)});
    }
  }
  Trainer trainer(TrainerOptions{.max_features_per_node = 200});
  auto model = trainer.Train(tax, examples);
  ASSERT_TRUE(model.ok()) << model.status();
  HierarchicalClassifier ref(&tax, &model.value());

  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 512);
  sql::Catalog catalog(&pool);
  auto tables = BuildClassifierTables(&catalog, tax, model.value());
  ASSERT_TRUE(tables.ok());
  SingleProbeClassifier sql_probe(&ref, &tables.value(),
                                  SingleProbeClassifier::Variant::kSqlRows);
  SingleProbeClassifier blob_probe(&ref, &tables.value(),
                                   SingleProbeClassifier::Variant::kBlob);
  BulkProbeClassifier bulk(&ref, &tables.value());

  auto document = CreateDocumentTable(&catalog, "DOCUMENT");
  ASSERT_TRUE(document.ok());
  std::vector<TermVector> docs;
  for (int i = 0; i < 6; ++i) {
    docs.push_back(RandomDoc(tax, leaves[i % leaves.size()], &rng));
    ASSERT_TRUE(InsertDocument(document.value(), i + 1, docs.back()).ok());
  }
  auto bulk_scores = bulk.ClassifyAll(document.value());
  ASSERT_TRUE(bulk_scores.ok()) << bulk_scores.status();

  for (size_t i = 0; i < docs.size(); ++i) {
    ClassScores expected = ref.Classify(docs[i]);
    // Probability measure: siblings sum to the parent everywhere.
    for (Cid c0 : tax.InternalPreorder()) {
      double child_sum = 0;
      for (Cid ci : tax.Children(c0)) child_sum += expected.Prob(ci);
      ASSERT_NEAR(child_sum, expected.Prob(c0), 1e-9);
    }
    auto s1 = sql_probe.Classify(docs[i]);
    auto s2 = blob_probe.Classify(docs[i]);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    const ClassScores& s3 = bulk_scores.value().at(i + 1);
    for (Cid c = 0; c < tax.num_topics(); ++c) {
      ASSERT_NEAR(s1.value().logp[c], expected.logp[c], 1e-9)
          << "sql, shape seed " << GetParam() << " cid " << c;
      ASSERT_NEAR(s2.value().logp[c], expected.logp[c], 1e-9)
          << "blob, shape seed " << GetParam() << " cid " << c;
      ASSERT_NEAR(s3.logp[c], expected.logp[c], 1e-9)
          << "bulk, shape seed " << GetParam() << " cid " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RandomTaxonomyTest, testing::Range(1, 13));

}  // namespace
}  // namespace focus::classify
