#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace focus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing row");
  EXPECT_EQ(s.ToString(), "not_found: missing row");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r = std::string("payload");
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  FOCUS_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(Fnv1a64("cycling"), Fnv1a64("cycling"));
  EXPECT_NE(Fnv1a64("cycling"), Fnv1a64("cyclinG"));
  EXPECT_EQ(TermId("bike"), TermId("bike"));
  // 32-bit term ids over a modest vocabulary should be collision-free.
  std::set<uint32_t> ids;
  for (int i = 0; i < 20000; ++i) ids.insert(TermId(StrCat("term_", i)));
  EXPECT_EQ(ids.size(), 20000u);
}

TEST(HashTest, UrlOidIs64Bit) {
  std::set<uint64_t> oids;
  for (int i = 0; i < 50000; ++i) {
    oids.insert(UrlOid(StrCat("http://server", i % 97, ".example/page", i)));
  }
  EXPECT_EQ(oids.size(), 50000u);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(10.0, 2.0);
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.15);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(5);
  auto small = rng.SampleIndices(1000, 10);
  EXPECT_EQ(std::set<size_t>(small.begin(), small.end()).size(), 10u);
  auto big = rng.SampleIndices(100, 90);
  EXPECT_EQ(std::set<size_t>(big.begin(), big.end()).size(), 90u);
  for (size_t idx : big) EXPECT_LT(idx, 100u);
}

TEST(ZipfTest, RankZeroMostProbable) {
  ZipfTable zipf(100, 1.0);
  Rng rng(6);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
  double total_pmf = 0;
  for (size_t r = 0; r < 100; ++r) total_pmf += zipf.Pmf(r);
  EXPECT_NEAR(total_pmf, 1.0, 1e-9);
}

TEST(StringTest, StrCatAndJoin) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ", "), "x, y, z");
}

TEST(StringTest, Split) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringTest, LowerAndPrefix) {
  EXPECT_EQ(AsciiToLower("CyCling"), "cycling");
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("ftp://x", "http://"));
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(1500);
  clock.AdvanceSeconds(0.5);
  EXPECT_EQ(clock.NowMicros(), 501500);
  EXPECT_NEAR(clock.NowSeconds(), 0.5015, 1e-9);
}

TEST(StopwatchTest, MeasuresSomething) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace focus
