#include <gtest/gtest.h>

#include <algorithm>

#include "taxonomy/taxonomy.h"

namespace focus::taxonomy {
namespace {

// root -> {arts, recreation -> {cycling, gardening}, business ->
// {investing -> {mutual_funds, stocks}}}
Taxonomy MakeSample() {
  Taxonomy tax;
  Cid arts = tax.AddTopic(kRootCid, "arts").value();
  (void)arts;
  Cid rec = tax.AddTopic(kRootCid, "recreation").value();
  tax.AddTopic(rec, "cycling").value();
  tax.AddTopic(rec, "gardening").value();
  Cid biz = tax.AddTopic(kRootCid, "business").value();
  Cid inv = tax.AddTopic(biz, "investing").value();
  tax.AddTopic(inv, "mutual_funds").value();
  tax.AddTopic(inv, "stocks").value();
  return tax;
}

TEST(TaxonomyTest, StructureNavigation) {
  Taxonomy tax = MakeSample();
  EXPECT_EQ(tax.num_topics(), 9);
  Cid rec = tax.FindByName("recreation").value();
  Cid cyc = tax.FindByName("cycling").value();
  EXPECT_EQ(tax.Parent(cyc), rec);
  EXPECT_TRUE(tax.IsLeaf(cyc));
  EXPECT_FALSE(tax.IsLeaf(rec));
  EXPECT_EQ(tax.Children(rec).size(), 2u);
  EXPECT_FALSE(tax.FindByName("nope").ok());
}

TEST(TaxonomyTest, DuplicateNameRejected) {
  Taxonomy tax = MakeSample();
  EXPECT_EQ(tax.AddTopic(kRootCid, "arts").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(TaxonomyTest, AncestorQueries) {
  Taxonomy tax = MakeSample();
  Cid biz = tax.FindByName("business").value();
  Cid mf = tax.FindByName("mutual_funds").value();
  EXPECT_TRUE(tax.IsAncestor(kRootCid, mf));
  EXPECT_TRUE(tax.IsAncestor(biz, mf));
  EXPECT_FALSE(tax.IsAncestor(mf, biz));
  EXPECT_FALSE(tax.IsAncestor(mf, mf));
  EXPECT_TRUE(tax.IsAncestor(mf, mf, /*or_self=*/true));
}

TEST(TaxonomyTest, PathFromRoot) {
  Taxonomy tax = MakeSample();
  Cid mf = tax.FindByName("mutual_funds").value();
  auto path = tax.PathFromRoot(mf);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), kRootCid);
  EXPECT_EQ(tax.Name(path[1]), "business");
  EXPECT_EQ(tax.Name(path[2]), "investing");
  EXPECT_EQ(path.back(), mf);
}

TEST(TaxonomyTest, LeavesUnder) {
  Taxonomy tax = MakeSample();
  Cid biz = tax.FindByName("business").value();
  auto leaves = tax.LeavesUnder(biz);
  std::vector<std::string> names;
  for (Cid c : leaves) names.push_back(tax.Name(c));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"mutual_funds", "stocks"}));
  auto root_leaves = tax.LeavesUnder(kRootCid);
  EXPECT_EQ(root_leaves.size(), 5u);  // arts, cycling, gardening, mf, stocks
}

TEST(TaxonomyTest, InternalPreorderStartsAtRoot) {
  Taxonomy tax = MakeSample();
  auto order = tax.InternalPreorder();
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), kRootCid);
  // Parents precede children.
  Cid biz = tax.FindByName("business").value();
  Cid inv = tax.FindByName("investing").value();
  auto pos = [&](Cid c) {
    return std::find(order.begin(), order.end(), c) - order.begin();
  };
  EXPECT_LT(pos(biz), pos(inv));
  // Leaves are not internal.
  Cid cyc = tax.FindByName("cycling").value();
  EXPECT_EQ(std::find(order.begin(), order.end(), cyc), order.end());
}

TEST(TaxonomyTest, MarkGoodSetsPathAndSubsumed) {
  Taxonomy tax = MakeSample();
  Cid inv = tax.FindByName("investing").value();
  ASSERT_TRUE(tax.MarkGood(inv).ok());
  EXPECT_EQ(tax.mark(inv), Mark::kGood);
  EXPECT_EQ(tax.mark(tax.FindByName("business").value()), Mark::kPath);
  EXPECT_EQ(tax.mark(kRootCid), Mark::kPath);
  EXPECT_EQ(tax.mark(tax.FindByName("mutual_funds").value()),
            Mark::kSubsumed);
  EXPECT_EQ(tax.mark(tax.FindByName("cycling").value()), Mark::kNull);
  EXPECT_TRUE(tax.IsGoodOrSubsumed(tax.FindByName("stocks").value()));
  EXPECT_FALSE(tax.IsGoodOrSubsumed(tax.FindByName("arts").value()));
}

TEST(TaxonomyTest, GoodInvariantEnforced) {
  Taxonomy tax = MakeSample();
  Cid inv = tax.FindByName("investing").value();
  Cid mf = tax.FindByName("mutual_funds").value();
  Cid biz = tax.FindByName("business").value();
  ASSERT_TRUE(tax.MarkGood(inv).ok());
  // Descendant of a good topic cannot be good.
  EXPECT_EQ(tax.MarkGood(mf).code(), StatusCode::kFailedPrecondition);
  // Ancestor of a good topic cannot be good.
  EXPECT_EQ(tax.MarkGood(biz).code(), StatusCode::kFailedPrecondition);
  // Re-marking the same topic is also a conflict (with itself).
  EXPECT_EQ(tax.MarkGood(inv).code(), StatusCode::kFailedPrecondition);
  // An unrelated topic is fine.
  EXPECT_TRUE(tax.MarkGood(tax.FindByName("cycling").value()).ok());
  auto good = tax.GoodTopics();
  EXPECT_EQ(good.size(), 2u);
}

TEST(TaxonomyTest, MarkingTwoSiblingsIsAllowed) {
  // "The user's interest is characterized by a subset of topics" — multiple
  // good topics are allowed as long as none is an ancestor of another.
  Taxonomy tax = MakeSample();
  ASSERT_TRUE(tax.MarkGood(tax.FindByName("mutual_funds").value()).ok());
  ASSERT_TRUE(tax.MarkGood(tax.FindByName("stocks").value()).ok());
  EXPECT_EQ(tax.mark(tax.FindByName("investing").value()), Mark::kPath);
}

TEST(TaxonomyTest, ClearMarksResets) {
  Taxonomy tax = MakeSample();
  ASSERT_TRUE(tax.MarkGood(tax.FindByName("cycling").value()).ok());
  tax.ClearMarks();
  for (Cid c = 0; c < tax.num_topics(); ++c) {
    EXPECT_EQ(tax.mark(c), Mark::kNull);
  }
  // After clearing, previously conflicting marks become possible.
  EXPECT_TRUE(tax.MarkGood(tax.FindByName("recreation").value()).ok());
}

}  // namespace
}  // namespace focus::taxonomy
