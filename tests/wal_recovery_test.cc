// WAL recovery under deterministic crash injection.
//
// The heart of this file is a crash *matrix*: one golden pass of a
// CrawlDb commit/checkpoint workload counts every mutating device
// operation, then the workload is re-run once per operation index with
// CrashFaultDiskManager pulling the plug exactly there. Every recovered
// store must equal a batch boundary of the golden run — pre- or
// post-state of the batch in flight, never a torn hybrid. Variants
// repeat the sweep with torn pages (partial byte prefixes) and with a
// second crash during recovery itself. A pre-WAL baseline shows the raw
// FileDiskManager-style path really does leave torn state without the
// log, which is the point of having one.
//
// FOCUS_WAL_CRASH_STRIDE=<n> sweeps every n-th crash point (CI smoke);
// FOCUS_WAL_METRICS_JSON=<path> additionally dumps one recovery's WAL
// counters as a metrics JSON artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crawl/crawl_db.h"
#include "crawl/crawler.h"
#include "crawl/relevance_evaluator.h"
#include "obs/metrics.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/crash_fault_disk.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "util/string_util.h"

namespace focus {
namespace {

using storage::CrashFaultDiskManager;
using storage::CrashPlan;
using storage::kPageSize;
using storage::MemDiskManager;
using storage::Page;
using storage::PageId;
using storage::WalDiskManager;

// ---------------------------------------------------------------------
// The workload: a deterministic CrawlDb batch sequence.

constexpr int kBatches = 6;
constexpr int kCheckpointEvery = 3;  // batches 2 and 5 checkpoint

// Sorted row-string image of all three crawl tables.
using DbImage = std::vector<std::string>;

DbImage SnapshotDb(crawl::CrawlDb* db) {
  DbImage out;
  for (sql::Table* table : {db->crawl_table(), db->link_table(),
                            db->breaker_table()}) {
    auto it = table->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      out.push_back(StrCat(table->name(), "|", row.ToString()));
    }
    EXPECT_TRUE(it.status().ok()) << it.status().ToString();
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Batch b: six new URLs, three of them visited and linked, one breaker
// row. Pure function of b, so re-runs replay byte-identical batches.
Status ApplyBatch(crawl::CrawlDb* db, int b) {
  std::vector<std::string> urls;
  for (int i = 0; i < 6; ++i) {
    urls.push_back(StrCat("http://s", b, ".example/p", i));
    FOCUS_RETURN_IF_ERROR(db->AddUrl(urls.back(), 0.25 + 0.1 * i, 1));
  }
  for (int i = 0; i < 3; ++i) {
    FOCUS_ASSIGN_OR_RETURN(crawl::CrawlRecord rec,
                           db->LookupByUrl(urls[i]));
    FOCUS_RETURN_IF_ERROR(
        db->RecordVisit(rec.oid, 0.5 + 0.05 * i, 3, 1000 * (b + 1) + i));
    FOCUS_RETURN_IF_ERROR(db->AddLink(urls[i], urls[3 + i]));
  }
  crawl::BreakerRecord brk;
  brk.sid = 100 + b;
  brk.state = crawl::BreakerState::kOpen;
  brk.consecutive_failures = b + 1;
  brk.open_until_us = 5000 * (b + 1);
  brk.cooldown_s = 1.5;
  return db->UpsertBreaker(brk);
}

// One full pass over (data, log): open the WAL store, apply kBatches
// batches, committing each (checkpointing every kCheckpointEvery-th).
// *ok_batches counts the batch commits that returned OK — after a crash,
// recovery must land at or one past that boundary. When `goldens` is
// given, appends the snapshot after open and after every durable batch.
Status RunWorkload(storage::DiskManager* data, storage::DiskManager* log,
                   int* ok_batches, std::vector<DbImage>* goldens,
                   WalDiskManager::Options options = {}) {
  *ok_batches = 0;
  FOCUS_ASSIGN_OR_RETURN(std::unique_ptr<WalDiskManager> wal,
                         WalDiskManager::Open(data, log, options));
  storage::BufferPool pool(wal.get(), 256);
  sql::Catalog catalog(&pool);
  FOCUS_ASSIGN_OR_RETURN(crawl::CrawlDb db,
                         crawl::CrawlDb::Open(&catalog, wal.get()));
  if (goldens != nullptr) goldens->push_back(SnapshotDb(&db));
  for (int b = 0; b < kBatches; ++b) {
    FOCUS_RETURN_IF_ERROR(ApplyBatch(&db, b));
    if ((b + 1) % kCheckpointEvery == 0) {
      FOCUS_RETURN_IF_ERROR(db.Checkpoint());
    } else {
      FOCUS_RETURN_IF_ERROR(db.Commit());
    }
    ++*ok_batches;
    if (goldens != nullptr) goldens->push_back(SnapshotDb(&db));
  }
  return Status::OK();
}

// Reopens the surviving devices (no fault decorators = the platters after
// the power cut) and snapshots the recovered store.
Status RecoverAndSnapshot(storage::DiskManager* data,
                          storage::DiskManager* log,
                          WalDiskManager::Options options, DbImage* out,
                          storage::WalStats* stats = nullptr) {
  FOCUS_ASSIGN_OR_RETURN(std::unique_ptr<WalDiskManager> wal,
                         WalDiskManager::Open(data, log, options));
  storage::BufferPool pool(wal.get(), 256);
  sql::Catalog catalog(&pool);
  FOCUS_ASSIGN_OR_RETURN(crawl::CrawlDb db,
                         crawl::CrawlDb::Open(&catalog, wal.get()));
  *out = SnapshotDb(&db);
  if (stats != nullptr) *stats = wal->wal_stats();
  return Status::OK();
}

uint64_t CrashStride() {
  if (const char* env = std::getenv("FOCUS_WAL_CRASH_STRIDE")) {
    long v = std::atol(env);
    if (v > 1) return static_cast<uint64_t>(v);
  }
  return 1;
}

// Copies a device's content page-by-page (used to re-seed double-crash
// runs without replaying the whole workload).
void CopyDevice(storage::DiskManager* from, MemDiskManager* to) {
  Page buf;
  for (PageId p = 0; p < from->NumPages(); ++p) {
    ASSERT_TRUE(from->ReadPage(p, buf.data).ok());
    if (to->NumPages() <= p) ASSERT_TRUE(to->AllocatePage().ok());
    ASSERT_TRUE(to->WritePage(p, buf.data).ok());
  }
}

// ---------------------------------------------------------------------
// WAL basics.

TEST(WalBasicsTest, CommitIsDurableAcrossReopen) {
  MemDiskManager data, log;
  Page img;
  for (uint32_t i = 0; i < kPageSize; ++i) img.data[i] = char(i * 7);
  {
    auto wal = WalDiskManager::Open(&data, &log).TakeValue();
    PageId p = wal->AllocatePage().TakeValue();
    ASSERT_TRUE(wal->WritePage(p, img.data).ok());
    ASSERT_TRUE(wal->Commit("layout-blob-1").ok());
    EXPECT_EQ(wal->wal_stats().commits, 1u);
    EXPECT_GE(wal->wal_stats().appends, 1u);
    EXPECT_GE(wal->wal_stats().syncs, 1u);
  }
  auto wal = WalDiskManager::Open(&data, &log).TakeValue();
  EXPECT_EQ(wal->recovered_metadata(), "layout-blob-1");
  EXPECT_EQ(wal->NumPages(), 1u);
  EXPECT_GE(wal->wal_stats().recovery_replayed, 1u);
  Page got;
  ASSERT_TRUE(wal->ReadPage(0, got.data).ok());
  EXPECT_EQ(std::memcmp(got.data, img.data, kPageSize), 0);
}

TEST(WalBasicsTest, UncommittedWritesVanishOnReopen) {
  MemDiskManager data, log;
  Page committed, uncommitted;
  committed.Zero();
  std::memcpy(committed.data, "durable", 7);
  uncommitted.Zero();
  std::memcpy(uncommitted.data, "volatile", 8);
  {
    auto wal = WalDiskManager::Open(&data, &log).TakeValue();
    PageId p = wal->AllocatePage().TakeValue();
    ASSERT_TRUE(wal->WritePage(p, committed.data).ok());
    ASSERT_TRUE(wal->Commit("m1").ok());
    ASSERT_TRUE(wal->WritePage(p, uncommitted.data).ok());
    // No commit: the second image must not survive.
  }
  auto wal = WalDiskManager::Open(&data, &log).TakeValue();
  Page got;
  ASSERT_TRUE(wal->ReadPage(0, got.data).ok());
  EXPECT_EQ(std::memcmp(got.data, committed.data, kPageSize), 0);
}

TEST(WalBasicsTest, CheckpointFoldsLogIntoDataDevice) {
  MemDiskManager data, log;
  Page img;
  img.Zero();
  std::memcpy(img.data, "checkpointed", 12);
  {
    auto wal = WalDiskManager::Open(&data, &log).TakeValue();
    PageId p = wal->AllocatePage().TakeValue();
    ASSERT_TRUE(wal->WritePage(p, img.data).ok());
    ASSERT_TRUE(wal->Checkpoint("m-ckpt").ok());
    EXPECT_EQ(wal->wal_stats().checkpoints, 1u);
    EXPECT_EQ(wal->epoch(), 1u);
  }
  auto wal = WalDiskManager::Open(&data, &log).TakeValue();
  // Everything now lives on the data device: nothing to replay.
  EXPECT_EQ(wal->wal_stats().recovery_replayed, 0u);
  EXPECT_EQ(wal->recovered_metadata(), "m-ckpt");
  EXPECT_EQ(wal->epoch(), 1u);
  Page got;
  ASSERT_TRUE(wal->ReadPage(0, got.data).ok());
  EXPECT_EQ(std::memcmp(got.data, img.data, kPageSize), 0);
}

TEST(WalBasicsTest, CheckpointCyclesKeepLogSegmentBounded) {
  // Twelve commit+checkpoint cycles of the same-size batch: the log
  // segment must not grow — every checkpoint folds the tail back to the
  // device start, so the log's page high-water mark plateaus.
  MemDiskManager data, log;
  auto wal = WalDiskManager::Open(&data, &log).TakeValue();
  storage::BufferPool pool(wal.get(), 256);
  sql::Catalog catalog(&pool);
  auto db = crawl::CrawlDb::Open(&catalog, wal.get()).TakeValue();
  constexpr int kCycles = 12;
  uint64_t tail_after_ckpt = 0;
  uint32_t pages_after_warmup = 0;
  uint64_t last_epoch = wal->epoch();
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    ASSERT_TRUE(ApplyBatch(&db, cycle).ok());
    ASSERT_TRUE(db.Commit().ok());
    storage::Wal::SegmentStats mid = wal->wal_segment_stats();
    EXPECT_GT(mid.tail_bytes, 0u);        // the commit really hit the log
    EXPECT_EQ(mid.pending_bytes, 0u);     // ...and nothing stayed buffered
    ASSERT_TRUE(db.Checkpoint().ok());
    storage::Wal::SegmentStats stats = wal->wal_segment_stats();
    EXPECT_GT(stats.epoch, last_epoch);   // checkpoint opened a new epoch
    last_epoch = stats.epoch;
    if (cycle == 0) {
      tail_after_ckpt = stats.tail_bytes;
    } else {
      // The post-checkpoint tail is a constant, not a growing offset.
      EXPECT_EQ(stats.tail_bytes, tail_after_ckpt) << "cycle " << cycle;
    }
    if (cycle == 2) pages_after_warmup = stats.device_pages;
    if (cycle > 2) {
      // The high-water mark plateaus at the largest batch seen so far
      // (batch payloads vary by a few bytes per cycle), so allow a tiny
      // slack over the warmup value — but it must not track cycle count.
      EXPECT_LE(stats.device_pages, pages_after_warmup + 2)
          << "log device grew in cycle " << cycle;
    }
  }
  uint32_t bounded_pages = wal->wal_segment_stats().device_pages;

  // Control: the same workload with commits only. Without checkpoints the
  // tail is a strictly growing offset and the device outgrows the
  // checkpointed run's plateau — which is what makes the bound above a
  // real property and not an accident of small batches.
  MemDiskManager data2, log2;
  auto wal2 = WalDiskManager::Open(&data2, &log2).TakeValue();
  storage::BufferPool pool2(wal2.get(), 256);
  sql::Catalog catalog2(&pool2);
  auto db2 = crawl::CrawlDb::Open(&catalog2, wal2.get()).TakeValue();
  uint64_t prev_tail = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    ASSERT_TRUE(ApplyBatch(&db2, cycle).ok());
    ASSERT_TRUE(db2.Commit().ok());
    storage::Wal::SegmentStats stats = wal2->wal_segment_stats();
    EXPECT_GT(stats.tail_bytes, prev_tail) << "cycle " << cycle;
    prev_tail = stats.tail_bytes;
  }
  EXPECT_GT(wal2->wal_segment_stats().device_pages, bounded_pages);
}

TEST(WalGroupCommitTest, ConcurrentCommitsShareOneSyncBarrier) {
  // Eight committers released together against a leader that lingers:
  // every batch must become durable, and far fewer sync barriers than
  // commits must have been issued (the group-commit coalescing the
  // focus_wal_group_commit_* counters report).
  constexpr int kThreads = 8;
  MemDiskManager data, log;
  WalDiskManager::Options options;
  options.group_commit_wait_us = 20000;  // 20 ms linger for late joiners
  auto wal = WalDiskManager::Open(&data, &log, options).TakeValue();
  std::vector<PageId> pages(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pages[t] = wal->AllocatePage().TakeValue();
  }
  uint64_t syncs_before = wal->wal_stats().syncs;

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Page img;
      img.Zero();
      img.Write<uint32_t>(0, 7000 + t);
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      if (!wal->WritePage(pages[t], img.data).ok() ||
          !wal->Commit(StrCat("meta-", t)).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  storage::WalStats stats = wal->wal_stats();
  EXPECT_EQ(stats.commits, static_cast<uint64_t>(kThreads));
  EXPECT_LT(stats.syncs - syncs_before, static_cast<uint64_t>(kThreads))
      << "no commits coalesced";
  EXPECT_GE(stats.group_commit_max_batch, 2u);
  EXPECT_GE(stats.group_commit_flushes, 1u);

  // Every batch is durable: each page carries its committer's image after
  // reopen, and the last metadata blob is one of the committed ones.
  auto reopened = WalDiskManager::Open(&data, &log).TakeValue();
  for (int t = 0; t < kThreads; ++t) {
    Page got;
    ASSERT_TRUE(reopened->ReadPage(pages[t], got.data).ok());
    EXPECT_EQ(got.Read<uint32_t>(0), 7000u + t);
  }
  EXPECT_EQ(reopened->recovered_metadata().rfind("meta-", 0), 0u);
}

TEST(WalSegmentRecyclingTest, AutoCheckpointBoundsTheLogDevice) {
  // Small segments + recycle_after_segments: the store checkpoints itself
  // whenever the log spans two segments, so a long commit-only workload
  // keeps a bounded log device while the control (recycling off) grows
  // without limit.
  constexpr int kCycles = 18;
  WalDiskManager::Options recycle;
  recycle.segment_pages = 8;
  recycle.recycle_after_segments = 2;

  MemDiskManager data, log;
  auto wal = WalDiskManager::Open(&data, &log, recycle).TakeValue();
  storage::BufferPool pool(wal.get(), 256);
  sql::Catalog catalog(&pool);
  auto db = crawl::CrawlDb::Open(&catalog, wal.get()).TakeValue();
  uint32_t plateau = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    ASSERT_TRUE(ApplyBatch(&db, cycle).ok());
    ASSERT_TRUE(db.Commit().ok());
    storage::Wal::SegmentStats stats = wal->wal_segment_stats();
    // The recycling invariant: a commit that leaves the tail spanning the
    // threshold triggers the checkpoint, so the durable tail observed
    // between commits never exceeds it.
    EXPECT_LE(stats.segments_in_use, recycle.recycle_after_segments)
        << "cycle " << cycle;
    if (cycle == kCycles / 2) plateau = stats.device_pages;
    if (cycle > kCycles / 2) {
      EXPECT_LE(stats.device_pages, plateau + recycle.segment_pages)
          << "log device outgrew its recycled plateau in cycle " << cycle;
    }
  }
  storage::WalStats end = wal->wal_stats();
  EXPECT_GT(end.segments_recycled, 0u);
  EXPECT_GT(end.checkpoints, 0u);  // recycling really checkpoints
  uint32_t bounded = wal->wal_segment_stats().device_pages;

  // Control: same workload, recycling off, nobody checkpoints.
  MemDiskManager data2, log2;
  auto wal2 = WalDiskManager::Open(&data2, &log2).TakeValue();
  storage::BufferPool pool2(wal2.get(), 256);
  sql::Catalog catalog2(&pool2);
  auto db2 = crawl::CrawlDb::Open(&catalog2, wal2.get()).TakeValue();
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    ASSERT_TRUE(ApplyBatch(&db2, cycle).ok());
    ASSERT_TRUE(db2.Commit().ok());
  }
  EXPECT_EQ(wal2->wal_stats().segments_recycled, 0u);
  EXPECT_GT(wal2->wal_segment_stats().device_pages, bounded);

  // The recycled store still holds exactly what the control holds.
  EXPECT_EQ(SnapshotDb(&db), SnapshotDb(&db2));
}

// ---------------------------------------------------------------------
// The crash matrix.

void SweepCrashMatrix(uint32_t torn_bytes,
                      WalDiskManager::Options options = {}) {
  CrashPlan plan;  // no crash scheduled: the golden pass only counts ops
  std::vector<DbImage> goldens;
  uint64_t total_ops = 0;
  {
    MemDiskManager data, log;
    CrashFaultDiskManager cdata(&data, &plan), clog(&log, &plan);
    int ok = 0;
    Status s = RunWorkload(&cdata, &clog, &ok, &goldens, options);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_EQ(ok, kBatches);
    total_ops = plan.op_count.load();
  }
  ASSERT_GT(total_ops, 30u);
  ASSERT_EQ(goldens.size(), size_t{kBatches} + 1);
  // Batches really change the store (distinct boundaries => the matrix
  // assertion below is not vacuous).
  for (int b = 0; b < kBatches; ++b) ASSERT_NE(goldens[b], goldens[b + 1]);

  for (uint64_t k = 0; k < total_ops; k += CrashStride()) {
    SCOPED_TRACE(StrCat("crash at op ", k, " of ", total_ops,
                        " torn_bytes=", torn_bytes));
    MemDiskManager data, log;
    plan.Reset(k, torn_bytes);
    CrashFaultDiskManager cdata(&data, &plan), clog(&log, &plan);
    int ok = 0;
    Status s = RunWorkload(&cdata, &clog, &ok, nullptr, options);
    ASSERT_FALSE(s.ok());
    ASSERT_NE(s.message().find(storage::kCrashMessage), std::string::npos)
        << s.ToString();

    DbImage recovered;
    Status r = RecoverAndSnapshot(&data, &log, options, &recovered);
    ASSERT_TRUE(r.ok()) << r.ToString();
    // Atomic and durable: exactly the pre- or post-state of the batch in
    // flight — never earlier than the last acknowledged commit, never a
    // torn in-between.
    bool pre = recovered == goldens[ok];
    bool post = ok + 1 <= kBatches && recovered == goldens[ok + 1];
    EXPECT_TRUE(pre || post)
        << "recovered " << recovered.size() << " rows; expected boundary "
        << ok << " (" << goldens[ok].size() << " rows) or " << ok + 1;
  }
}

TEST(WalCrashMatrixTest, EveryCrashPointRecoversToABatchBoundary) {
  SweepCrashMatrix(/*torn_bytes=*/0);
}

TEST(WalCrashMatrixTest, TornPagesNeverSurfaceAfterRecovery) {
  // The crashing write persists a 1037-byte prefix — a torn sector run.
  // Checksums must reject the fragment wherever it lands.
  SweepCrashMatrix(/*torn_bytes=*/1037);
}

TEST(WalCrashMatrixTest, SegmentRecyclingRecoversAtEveryCrashPoint) {
  // Tiny segments force auto-checkpoints mid-workload, so the sweep now
  // crosses segment boundaries and recycling checkpoints: a crash at any
  // op of a recycle cycle — log flush, data fold, manifest flip, log
  // reset — must still recover to a batch boundary.
  WalDiskManager::Options recycle;
  recycle.segment_pages = 4;
  recycle.recycle_after_segments = 2;
  SweepCrashMatrix(/*torn_bytes=*/0, recycle);
}

TEST(WalCrashMatrixTest, CrashDuringRecoveryStillRecovers) {
  CrashPlan plan;
  std::vector<DbImage> goldens;
  uint64_t total_ops = 0;
  {
    MemDiskManager data, log;
    CrashFaultDiskManager cdata(&data, &plan), clog(&log, &plan);
    int ok = 0;
    ASSERT_TRUE(RunWorkload(&cdata, &clog, &ok, &goldens).ok());
    total_ops = plan.op_count.load();
  }

  WalDiskManager::Options ckpt;
  ckpt.checkpoint_after_recovery = true;  // gives recovery its own writes
  uint64_t stride = std::max<uint64_t>(7, CrashStride());
  for (uint64_t k = 3; k < total_ops; k += stride) {
    // First crash: stop the workload at op k; keep the surviving bytes.
    MemDiskManager data0, log0;
    int first_ok = 0;
    plan.Reset(k);
    {
      CrashFaultDiskManager cdata(&data0, &plan), clog(&log0, &plan);
      Status s = RunWorkload(&cdata, &clog, &first_ok, nullptr);
      ASSERT_FALSE(s.ok());
    }
    // Second crash: sweep every op j of the checkpointing recovery until
    // one run completes without hitting the crash point.
    for (uint64_t j = 0;; ++j) {
      ASSERT_LT(j, 2000u) << "recovery never completed";
      SCOPED_TRACE(StrCat("first crash at ", k, ", second at ", j));
      MemDiskManager data, log;
      CopyDevice(&data0, &data);
      CopyDevice(&log0, &log);
      plan.Reset(j);
      DbImage mid;
      Status second;
      {
        CrashFaultDiskManager cdata(&data, &plan), clog(&log, &plan);
        second = RecoverAndSnapshot(&cdata, &clog, ckpt, &mid);
      }
      // Third, clean open — after zero, one, or two interrupted attempts
      // the store must still land on the same boundary.
      DbImage final_image;
      ASSERT_TRUE(
          RecoverAndSnapshot(&data, &log, ckpt, &final_image).ok());
      bool pre = final_image == goldens[first_ok];
      bool post = first_ok + 1 <= kBatches &&
                  final_image == goldens[first_ok + 1];
      EXPECT_TRUE(pre || post);
      if (second.ok()) {
        EXPECT_EQ(mid, final_image);
        break;  // j ran past the end of recovery: sweep done for this k
      }
      ASSERT_NE(second.message().find(storage::kCrashMessage),
                std::string::npos)
          << second.ToString();
    }
  }
}

// ---------------------------------------------------------------------
// The pre-WAL baseline this subsystem replaces.

TEST(PreWalBaselineTest, RawDeviceCrashLeavesTornState) {
  // Same batch workload against a bare device — "commit" is FlushAll +
  // Sync, the strongest discipline available without a log. The golden
  // pass records the device image at every boundary; the sweep then shows
  // crash points whose surviving bytes match *no* boundary. (Worse still,
  // a raw store cannot even be reattached: table roots live only in
  // memory. The byte-level comparison is the generous reading.)
  auto run = [](storage::DiskManager* dev, MemDiskManager* inner,
                std::vector<std::string>* images) -> Status {
    auto dump = [inner] {
      std::string out;
      Page buf;
      for (PageId p = 0; p < inner->NumPages(); ++p) {
        EXPECT_TRUE(inner->ReadPage(p, buf.data).ok());
        out.append(buf.data, kPageSize);
      }
      return out;
    };
    storage::BufferPool pool(dev, 256);
    sql::Catalog catalog(&pool);
    FOCUS_ASSIGN_OR_RETURN(crawl::CrawlDb db,
                           crawl::CrawlDb::Create(&catalog));
    if (images != nullptr) images->push_back(dump());
    for (int b = 0; b < kBatches; ++b) {
      FOCUS_RETURN_IF_ERROR(ApplyBatch(&db, b));
      FOCUS_RETURN_IF_ERROR(pool.FlushAll());
      FOCUS_RETURN_IF_ERROR(dev->Sync());
      if (images != nullptr) images->push_back(dump());
    }
    return Status::OK();
  };

  CrashPlan plan;
  std::vector<std::string> goldens;
  uint64_t total_ops = 0;
  {
    MemDiskManager disk;
    CrashFaultDiskManager cdisk(&disk, &plan);
    ASSERT_TRUE(run(&cdisk, &disk, &goldens).ok());
    total_ops = plan.op_count.load();
  }
  ASSERT_GT(total_ops, 30u);
  goldens.push_back("");  // the pristine (empty) device is also a boundary

  uint64_t torn_points = 0;
  for (uint64_t k = 0; k < total_ops; k += CrashStride()) {
    MemDiskManager disk;
    plan.Reset(k);
    CrashFaultDiskManager cdisk(&disk, &plan);
    ASSERT_FALSE(run(&cdisk, &disk, nullptr).ok());
    std::string image;
    Page buf;
    for (PageId p = 0; p < disk.NumPages(); ++p) {
      ASSERT_TRUE(disk.ReadPage(p, buf.data).ok());
      image.append(buf.data, kPageSize);
    }
    if (std::find(goldens.begin(), goldens.end(), image) ==
        goldens.end()) {
      ++torn_points;
    }
  }
  // Without the WAL, many crash points strand the device between
  // boundaries. This is the failure mode the crash matrix proves the
  // logged path cannot exhibit.
  EXPECT_GT(torn_points, 0u);
}

// ---------------------------------------------------------------------
// File-backed reopen (real fdatasync path) + metrics artifact.

TEST(WalFileBackedTest, SurvivesProcessStyleReopenFromFiles) {
  std::string base = ::testing::TempDir() + "wal_reopen";
  DbImage expected;
  {
    auto data = storage::FileDiskManager::Open(base + ".db").TakeValue();
    auto log = storage::FileDiskManager::Open(base + ".wal").TakeValue();
    auto wal = WalDiskManager::Open(data.get(), log.get()).TakeValue();
    storage::BufferPool pool(wal.get(), 64);
    sql::Catalog catalog(&pool);
    auto db = crawl::CrawlDb::Open(&catalog, wal.get()).TakeValue();
    ASSERT_TRUE(ApplyBatch(&db, 0).ok());
    ASSERT_TRUE(db.Commit().ok());
    ASSERT_TRUE(ApplyBatch(&db, 1).ok());
    ASSERT_TRUE(db.Checkpoint().ok());
    ASSERT_TRUE(ApplyBatch(&db, 2).ok());
    ASSERT_TRUE(db.Commit().ok());
    expected = SnapshotDb(&db);
  }  // destructors close the files: the "process" is gone
  storage::FileDiskManager::Options attach;
  attach.truncate = false;
  auto data =
      storage::FileDiskManager::Open(base + ".db", attach).TakeValue();
  auto log =
      storage::FileDiskManager::Open(base + ".wal", attach).TakeValue();
  auto wal = WalDiskManager::Open(data.get(), log.get()).TakeValue();
  storage::BufferPool pool(wal.get(), 64);
  sql::Catalog catalog(&pool);
  auto db = crawl::CrawlDb::Open(&catalog, wal.get()).TakeValue();
  EXPECT_EQ(SnapshotDb(&db), expected);
  EXPECT_GT(wal->wal_stats().recovery_replayed, 0u);  // batch 2 replays
}

TEST(WalMetricsTest, RecoveryCountersExport) {
  // One mid-workload crash + recovery with metrics bound; when
  // FOCUS_WAL_METRICS_JSON is set (the CI artifact hook), the registry
  // snapshot is also written there.
  CrashPlan plan;
  uint64_t total_ops = 0;
  {
    MemDiskManager data, log;
    CrashFaultDiskManager cdata(&data, &plan), clog(&log, &plan);
    int ok = 0;
    ASSERT_TRUE(RunWorkload(&cdata, &clog, &ok, nullptr).ok());
    total_ops = plan.op_count.load();
  }
  MemDiskManager data, log;
  plan.Reset(total_ops / 2);
  {
    CrashFaultDiskManager cdata(&data, &plan), clog(&log, &plan);
    int ok = 0;
    ASSERT_FALSE(RunWorkload(&cdata, &clog, &ok, nullptr).ok());
  }
  obs::MetricsRegistry registry;
  auto wal = WalDiskManager::Open(&data, &log).TakeValue();
  wal->BindMetrics(&registry, "recovery");
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("focus_wal_recovery_replayed_total"),
            std::string::npos);
  EXPECT_NE(json.find("focus_wal_recovered_commits_total"),
            std::string::npos);
  if (const char* path = std::getenv("FOCUS_WAL_METRICS_JSON")) {
    std::ofstream out(path);
    out << json;
    ASSERT_TRUE(out.good());
  }
}

// ---------------------------------------------------------------------
// Periodic crawler checkpoints bound recovery replay.

// Judges everything maximally relevant — the crawl visits pages as fast
// as the frontier supplies them, which is all this test needs.
class ConstantEvaluator final : public crawl::RelevanceEvaluator {
 public:
  Result<crawl::PageJudgment> Judge(const text::TermVector&) override {
    crawl::PageJudgment j;
    j.relevance = 1.0;
    j.best_leaf_is_good = true;
    return j;
  }
};

// Runs a WAL-backed crawl of `fetches` pages with the given checkpoint
// interval, then "crashes" (drops the crawler without a final checkpoint)
// and reopens the devices. Returns the reopened WAL's recovery stats.
storage::WalStats CrawlThenRecover(int fetches, int checkpoint_every) {
  taxonomy::Taxonomy tax;
  taxonomy::Cid rec =
      tax.AddTopic(taxonomy::kRootCid, "recreation").value();
  EXPECT_TRUE(tax.AddTopic(rec, "cycling").ok());
  webgraph::WebConfig config;
  config.seed = 5;
  config.pages_per_topic = 150;
  config.background_pages = 400;
  auto web = webgraph::SimulatedWeb::Generate(tax, config, {});
  EXPECT_TRUE(web.ok()) << web.status();

  MemDiskManager data, log;
  {
    auto wal = WalDiskManager::Open(&data, &log).TakeValue();
    storage::BufferPool pool(wal.get(), 512);
    sql::Catalog catalog(&pool);
    auto db = crawl::CrawlDb::Create(&catalog).TakeValue();
    db.BindWal(wal.get());
    ConstantEvaluator evaluator;
    crawl::CrawlerOptions options;
    options.max_fetches = fetches;
    options.checkpoint_every_batches = checkpoint_every;
    crawl::Crawler crawler(&web.value(), &evaluator, &db, &catalog,
                           options);
    EXPECT_TRUE(crawler.AddSeed(web.value().page(0).url).ok());
    EXPECT_TRUE(crawler.Crawl().ok());
    EXPECT_GT(crawler.visits().size(), 0u);
  }
  auto wal = WalDiskManager::Open(&data, &log).TakeValue();
  return wal->wal_stats();
}

TEST(CrawlerRevisitTest, RevisitLoopKeepsLogDiskBounded) {
  // The ROADMAP's segment-recycling item: a crawler that re-crawls its
  // corpus forever (ScheduleRevisits rounds) commits without end. With
  // recycling the log device plateaus at a constant number of segments;
  // without it, it grows with every round.
  taxonomy::Taxonomy tax;
  taxonomy::Cid rec = tax.AddTopic(taxonomy::kRootCid, "recreation").value();
  ASSERT_TRUE(tax.AddTopic(rec, "cycling").ok());
  webgraph::WebConfig config;
  config.seed = 5;
  config.pages_per_topic = 150;
  config.background_pages = 400;
  auto web = webgraph::SimulatedWeb::Generate(tax, config, {});
  ASSERT_TRUE(web.ok()) << web.status();

  constexpr int kRounds = 6;
  constexpr int kRevisitsPerRound = 24;
  auto run = [&](WalDiskManager::Options options,
                 std::vector<uint32_t>* log_pages) -> storage::WalStats {
    MemDiskManager data, log;
    auto wal = WalDiskManager::Open(&data, &log, options).TakeValue();
    storage::BufferPool pool(wal.get(), 512);
    sql::Catalog catalog(&pool);
    auto db = crawl::CrawlDb::Create(&catalog).TakeValue();
    db.BindWal(wal.get());
    ConstantEvaluator evaluator;
    crawl::CrawlerOptions copts;
    copts.max_fetches = 60;
    // No crawler-level checkpoint policy: bounding the log is entirely the
    // storage layer's recycling (or nobody's, in the control run).
    copts.checkpoint_every_batches = 0;
    crawl::Crawler crawler(&web.value(), &evaluator, &db, &catalog, copts);
    EXPECT_TRUE(crawler.AddSeed(web.value().page(0).url).ok());
    EXPECT_TRUE(crawler.Crawl().ok());
    EXPECT_GT(crawler.visits().size(), 0u);
    for (int round = 0; round < kRounds; ++round) {
      EXPECT_TRUE(
          crawler.ScheduleRevisits(nullptr, kRevisitsPerRound).ok());
      EXPECT_TRUE(crawler.Crawl().ok());
      log_pages->push_back(wal->wal_segment_stats().device_pages);
    }
    return wal->wal_stats();
  };

  WalDiskManager::Options recycle;
  recycle.segment_pages = 16;
  recycle.recycle_after_segments = 4;
  std::vector<uint32_t> bounded_pages;
  storage::WalStats bounded = run(recycle, &bounded_pages);
  EXPECT_GT(bounded.segments_recycled, 0u);
  // Steady state: the high-water mark stops tracking round count (at most
  // one segment of drift from batch-size variance between late rounds).
  EXPECT_LE(bounded_pages.back(),
            bounded_pages[bounded_pages.size() - 2] + recycle.segment_pages)
      << "log still growing after " << kRounds << " revisit rounds";
  // ...and is bounded by a constant number of segments over the warmup
  // crawl's log, no matter how many rounds ran.
  EXPECT_LE(bounded_pages.back(),
            (recycle.recycle_after_segments + 1) * recycle.segment_pages +
                bounded_pages.front());

  std::vector<uint32_t> unbounded_pages;
  storage::WalStats unbounded = run({}, &unbounded_pages);
  EXPECT_EQ(unbounded.segments_recycled, 0u);
  EXPECT_GT(unbounded_pages.back(), unbounded_pages.front());
  EXPECT_GT(unbounded_pages.back(), bounded_pages.back());
}

TEST(CrawlerCheckpointTest, RecoveryReplaysAtMostOneCheckpointInterval) {
  constexpr int kFetches = 40;
  constexpr int kInterval = 8;
  // With periodic checkpoints the log never accumulates more than one
  // interval of commits, no matter how long the crawl ran.
  storage::WalStats bounded = CrawlThenRecover(kFetches, kInterval);
  EXPECT_LE(bounded.recovered_commits, static_cast<uint64_t>(kInterval))
      << "log held more than one checkpoint interval of commits";

  // Control: checkpointing off — every commit of the whole crawl is
  // still in the log and must be replayed.
  storage::WalStats unbounded = CrawlThenRecover(kFetches, 0);
  EXPECT_GT(unbounded.recovered_commits,
            static_cast<uint64_t>(kInterval));
  EXPECT_GE(unbounded.recovered_commits, static_cast<uint64_t>(kFetches));
}

}  // namespace
}  // namespace focus
