#include <gtest/gtest.h>

#include <algorithm>

#include "sql/exec/external_sort.h"
#include "sql/exec/operator.h"
#include "sql/exec/sort.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/random.h"
#include "util/string_util.h"

namespace focus::sql {
namespace {

Schema KV() {
  return Schema({{"k", TypeId::kInt32}, {"v", TypeId::kInt32}});
}

std::vector<Tuple> RandomRows(int n, int key_range, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(Tuple({Value::Int32(static_cast<int32_t>(
                              rng.Uniform(key_range))),
                          Value::Int32(i)}));
  }
  return rows;
}

class ExternalSortTest : public testing::Test {
 protected:
  ExternalSortTest() : pool_(&disk_, 64) {}
  storage::MemDiskManager disk_;
  storage::BufferPool pool_;
};

TEST_F(ExternalSortTest, SmallInputStaysInMemory) {
  auto rows = RandomRows(100, 20, 1);
  ExternalSort sort(std::make_unique<MaterializedSource>(KV(), rows),
                    {{0, false}}, &pool_, /*memory_budget_rows=*/1000);
  auto out = Collect(&sort);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(sort.num_runs(), 0);
  ASSERT_EQ(out.value().size(), 100u);
  for (size_t i = 1; i < out.value().size(); ++i) {
    EXPECT_LE(out.value()[i - 1].Get(0).AsInt32(),
              out.value()[i].Get(0).AsInt32());
  }
}

TEST_F(ExternalSortTest, SpillsAndMergesCorrectly) {
  auto rows = RandomRows(5000, 300, 2);
  ExternalSort ext(std::make_unique<MaterializedSource>(KV(), rows),
                   {{0, false}}, &pool_, /*memory_budget_rows=*/256);
  auto out = Collect(&ext);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(ext.num_runs(), 15);

  Sort reference(std::make_unique<MaterializedSource>(KV(), rows),
                 {{0, false}});
  auto expected = Collect(&reference);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(out.value().size(), expected.value().size());
  for (size_t i = 0; i < out.value().size(); ++i) {
    EXPECT_EQ(out.value()[i].Get(0).AsInt32(),
              expected.value()[i].Get(0).AsInt32());
  }
}

TEST_F(ExternalSortTest, StableAcrossSpills) {
  // Equal keys must keep input order even when they straddle runs.
  std::vector<Tuple> rows;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back(Tuple({Value::Int32(i % 3), Value::Int32(i)}));
  }
  ExternalSort ext(std::make_unique<MaterializedSource>(KV(), rows),
                   {{0, false}}, &pool_, /*memory_budget_rows=*/64);
  auto out = Collect(&ext);
  ASSERT_TRUE(out.ok());
  int prev_v[3] = {-1, -1, -1};
  for (const auto& t : out.value()) {
    int k = t.Get(0).AsInt32();
    EXPECT_GT(t.Get(1).AsInt32(), prev_v[k]);
    prev_v[k] = t.Get(1).AsInt32();
  }
}

TEST_F(ExternalSortTest, DescendingAndMultiKey) {
  auto rows = RandomRows(2000, 10, 3);
  ExternalSort ext(std::make_unique<MaterializedSource>(KV(), rows),
                   {{0, true}, {1, false}}, &pool_,
                   /*memory_budget_rows=*/128);
  auto out = Collect(&ext);
  ASSERT_TRUE(out.ok());
  for (size_t i = 1; i < out.value().size(); ++i) {
    int ka = out.value()[i - 1].Get(0).AsInt32();
    int kb = out.value()[i].Get(0).AsInt32();
    EXPECT_GE(ka, kb);
    if (ka == kb) {
      EXPECT_LE(out.value()[i - 1].Get(1).AsInt32(),
                out.value()[i].Get(1).AsInt32());
    }
  }
}

TEST_F(ExternalSortTest, EmptyInput) {
  ExternalSort ext(
      std::make_unique<MaterializedSource>(KV(), std::vector<Tuple>{}),
      {{0, false}}, &pool_, 16);
  auto out = Collect(&ext);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST_F(ExternalSortTest, HandlesStringsAcrossSpills) {
  Schema schema({{"s", TypeId::kString}, {"v", TypeId::kInt32}});
  Rng rng(4);
  std::vector<Tuple> rows;
  for (int i = 0; i < 800; ++i) {
    rows.push_back(Tuple({Value::Str(StrCat("url-", rng.Uniform(50))),
                          Value::Int32(i)}));
  }
  ExternalSort ext(std::make_unique<MaterializedSource>(schema, rows),
                   {{0, false}}, &pool_, /*memory_budget_rows=*/100);
  auto out = Collect(&ext);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 800u);
  for (size_t i = 1; i < out.value().size(); ++i) {
    EXPECT_LE(out.value()[i - 1].Get(0).AsString(),
              out.value()[i].Get(0).AsString());
  }
}

// Property sweep: external == in-memory across budgets and seeds.
class ExternalSortPropertyTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExternalSortPropertyTest, MatchesInMemorySort) {
  auto [seed, budget] = GetParam();
  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, 64);
  auto rows = RandomRows(1500, 77, seed);
  ExternalSort ext(std::make_unique<MaterializedSource>(KV(), rows),
                   {{0, false}}, &pool, budget);
  Sort mem(std::make_unique<MaterializedSource>(KV(), rows), {{0, false}});
  auto a = Collect(&ext);
  auto b = Collect(&mem);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].Get(0).AsInt32(), b.value()[i].Get(0).AsInt32());
    EXPECT_EQ(a.value()[i].Get(1).AsInt32(), b.value()[i].Get(1).AsInt32());
  }
}

INSTANTIATE_TEST_SUITE_P(BudgetSweep, ExternalSortPropertyTest,
                         testing::Combine(testing::Range(1, 5),
                                          testing::Values(2, 16, 100,
                                                          5000)));

}  // namespace
}  // namespace focus::sql
