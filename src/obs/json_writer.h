// Minimal streaming JSON writer.
//
// One shared implementation backs every JSON emitter in the tree (metrics
// snapshots, Chrome trace export, bench result files) so escaping and
// number formatting cannot drift between them. The writer is append-only:
// callers open/close containers in order and the writer inserts commas.
#ifndef FOCUS_OBS_JSON_WRITER_H_
#define FOCUS_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace focus::obs {

// Escapes `raw` for use inside a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view raw);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Emits a key inside an object; must be followed by exactly one value
  // (scalar or container).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  // Doubles are emitted with enough digits to round-trip; NaN/Inf (not
  // representable in JSON) are emitted as null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Convenience: Key(key) + value.
  JsonWriter& Field(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  // Without this overload a string literal would convert to bool (a
  // pointer-to-bool standard conversion outranks the user-defined one to
  // string_view) and emit true/false.
  JsonWriter& Field(std::string_view key, const char* value) {
    return Key(key).String(value);
  }
  JsonWriter& Field(std::string_view key, int64_t value) {
    return Key(key).Int(value);
  }
  JsonWriter& Field(std::string_view key, uint64_t value) {
    return Key(key).UInt(value);
  }
  JsonWriter& Field(std::string_view key, int value) {
    return Key(key).Int(value);
  }
  JsonWriter& Field(std::string_view key, double value) {
    return Key(key).Double(value);
  }
  JsonWriter& Field(std::string_view key, bool value) {
    return Key(key).Bool(value);
  }

  // The document built so far. Valid JSON once every container is closed.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  // Written before a value or key: inserts "," when a sibling precedes.
  void BeforeValue();
  void BeforeKey();

  enum class Scope : uint8_t { kObject, kArray };
  struct Frame {
    Scope scope;
    bool has_items = false;
  };

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;  // a Key() awaits its value
};

}  // namespace focus::obs

#endif  // FOCUS_OBS_JSON_WRITER_H_
