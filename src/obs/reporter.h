// Periodic registry-delta logging for long crawls.
//
// The paper's admin watches the crawl from a console; PeriodicReporter is
// the headless version — every `interval` it logs which counters moved and
// by how much, so a multi-hour crawl leaves a progress trail without any
// external scrape infrastructure.
#ifndef FOCUS_OBS_REPORTER_H_
#define FOCUS_OBS_REPORTER_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace focus::obs {

class PeriodicReporter {
 public:
  // `registry` may be null (uses the global registry); it must outlive the
  // reporter. The reporter is stopped (and joined) on destruction.
  explicit PeriodicReporter(
      MetricsRegistry* registry = nullptr,
      std::chrono::milliseconds interval = std::chrono::seconds(10));
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  // Starts the background thread; logs one delta report per interval (at
  // Info level). Idempotent.
  void Start();
  // Stops and joins the thread, logging one final report. Idempotent.
  void Stop();

  // Formats counter movement since the previous call (or since
  // construction) as "name{labels} +delta" lines; empty string when
  // nothing moved. Usable without Start() for manual cadences.
  std::string ReportOnce();

 private:
  void Loop();

  MetricsRegistry* registry_;
  std::chrono::milliseconds interval_;
  std::map<std::string, uint64_t> last_;
  std::mutex last_mu_;  // ReportOnce may race the background thread

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace focus::obs

#endif  // FOCUS_OBS_REPORTER_H_
