#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/json_writer.h"

namespace focus::obs {

namespace {

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Cached per-thread ring for the global buffer (the only instance the
// FOCUS_SPAN macro uses, so one slot suffices).
thread_local TraceBuffer::Ring* tls_ring = nullptr;

}  // namespace

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::Enable(size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  if (!epoch_set_.load(std::memory_order_relaxed)) {
    epoch_steady_us_.store(SteadyMicros(), std::memory_order_relaxed);
    epoch_set_.store(true, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceBuffer::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

int64_t TraceBuffer::NowTraceMicros() const {
  return SteadyMicros() - epoch_steady_us_.load(std::memory_order_relaxed);
}

TraceBuffer::Ring* TraceBuffer::RingForThisThread() {
  if (tls_ring != nullptr) return tls_ring;
  std::lock_guard<std::mutex> lock(mu_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<uint32_t>(rings_.size() + 1);
  ring->capacity = ring_capacity_;
  ring->events.reserve(ring->capacity);
  tls_ring = ring.get();
  rings_.push_back(std::move(ring));
  return tls_ring;
}

void TraceBuffer::Record(const char* name, int64_t wall_start_us,
                         int64_t dur_us, int64_t virtual_us) {
  if (!enabled()) return;
  Ring* ring = RingForThisThread();
  SpanEvent event;
  event.name = name;
  event.tid = ring->tid;
  event.wall_start_us = wall_start_us;
  event.dur_us = dur_us;
  event.virtual_us = virtual_us;
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->events.size() < ring->capacity) {
    ring->events.push_back(event);
  } else {
    ring->events[ring->next] = event;
    ring->wrapped = true;
  }
  ring->next = (ring->next + 1) % ring->capacity;
}

std::vector<SpanEvent> TraceBuffer::Snapshot() const {
  std::vector<SpanEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    out.insert(out.end(), ring->events.begin(), ring->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.wall_start_us != b.wall_start_us) {
                return a.wall_start_us < b.wall_start_us;
              }
              // Parents start with (or before) their children but end
              // after: longer spans first so viewers nest correctly.
              return a.dur_us > b.dur_us;
            });
  return out;
}

std::string TraceBuffer::ToChromeTraceJson() const {
  std::vector<SpanEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Field("displayTimeUnit", "ms");
  w.Key("traceEvents").BeginArray();
  for (const SpanEvent& e : events) {
    w.BeginObject()
        .Field("name", e.name)
        .Field("cat", "focus")
        .Field("ph", "X")
        .Field("pid", 1)
        .Field("tid", static_cast<int64_t>(e.tid))
        .Field("ts", e.wall_start_us)
        .Field("dur", e.dur_us);
    if (e.virtual_us >= 0) {
      w.Key("args").BeginObject().Field("virtual_us", e.virtual_us)
          .EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
}

}  // namespace focus::obs
