#include "obs/event_log.h"

#include <algorithm>
#include <chrono>

#include "obs/json_writer.h"

namespace focus::obs {

namespace {

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread ring cache. A thread may record into several EventLog
// instances (tests build private logs next to the global one), so the
// cache maps instance id -> ring. Entries for destroyed logs are inert:
// instance ids are never reused, so a stale pointer is never looked up.
struct CachedRing {
  uint64_t instance_id;
  EventLog::Ring* ring;
};
thread_local std::vector<CachedRing> tls_rings;

std::atomic<uint64_t> next_instance_id{1};

}  // namespace

const char* CrawlEventTypeName(CrawlEventType type) {
  switch (type) {
    case CrawlEventType::kFrontierAdmit: return "frontier_admit";
    case CrawlEventType::kFrontierPromote: return "frontier_promote";
    case CrawlEventType::kFetchAttempt: return "fetch_attempt";
    case CrawlEventType::kFetchSuccess: return "fetch_success";
    case CrawlEventType::kFetchFailure: return "fetch_failure";
    case CrawlEventType::kRetryScheduled: return "retry_scheduled";
    case CrawlEventType::kUrlDropped: return "url_dropped";
    case CrawlEventType::kBreakerTransition: return "breaker_transition";
    case CrawlEventType::kBreakerDenied: return "breaker_denied";
    case CrawlEventType::kClassifyVerdict: return "classify_verdict";
    case CrawlEventType::kWalCommit: return "wal_commit";
    case CrawlEventType::kWalCheckpoint: return "wal_checkpoint";
    case CrawlEventType::kWalReplay: return "wal_replay";
    case CrawlEventType::kShardDeath: return "shard_death";
    case CrawlEventType::kShardRestart: return "shard_restart";
    case CrawlEventType::kExchangeBatch: return "exchange_batch";
  }
  return "unknown";
}

bool CrawlEventTypeFromName(const std::string& name, CrawlEventType* out) {
  for (int32_t v = 0;
       v <= static_cast<int32_t>(CrawlEventType::kExchangeBatch); ++v) {
    CrawlEventType t = static_cast<CrawlEventType>(v);
    if (name == CrawlEventTypeName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

EventLog::EventLog()
    : instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
}

EventLog::~EventLog() = default;

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::Enable(size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  if (!epoch_set_.load(std::memory_order_relaxed)) {
    epoch_steady_us_.store(SteadyMicros(), std::memory_order_relaxed);
    epoch_set_.store(true, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void EventLog::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

int64_t EventLog::NowWallMicros() const {
  return SteadyMicros() - epoch_steady_us_.load(std::memory_order_relaxed);
}

EventLog::Ring* EventLog::RingForThisThread() {
  for (const CachedRing& cached : tls_rings) {
    if (cached.instance_id == instance_id_) return cached.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<uint32_t>(rings_.size() + 1);
  ring->capacity = ring_capacity_;
  ring->events.reserve(ring->capacity);
  Ring* raw = ring.get();
  rings_.push_back(std::move(ring));
  tls_rings.push_back(CachedRing{instance_id_, raw});
  return raw;
}

void EventLog::Record(CrawlEventType type, int64_t oid, int64_t parent_oid,
                      int32_t sid, int64_t virtual_us, double value,
                      int64_t aux, bool reconciled) {
  if (!enabled()) return;
  Ring* ring = RingForThisThread();
  CrawlEvent event;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.type = type;
  event.tid = ring->tid;
  event.reconciled = reconciled;
  event.shard_id = shard_id_.load(std::memory_order_relaxed);
  event.oid = oid;
  event.parent_oid = parent_oid;
  event.sid = sid;
  event.wall_us = NowWallMicros();
  event.virtual_us = virtual_us;
  event.value = value;
  event.aux = aux;
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->events.size() < ring->capacity) {
    ring->events.push_back(event);
  } else {
    ring->events[ring->next] = event;
    ring->wrapped = true;
  }
  ring->next = (ring->next + 1) % ring->capacity;
}

std::vector<CrawlEvent> EventLog::Snapshot(const EventFilter& filter) const {
  std::vector<CrawlEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      for (const CrawlEvent& e : ring->events) {
        if (filter.type >= 0 &&
            static_cast<int32_t>(e.type) != filter.type) {
          continue;
        }
        // oids span the full 64-bit hash range (negative as int64), so
        // only the exact sentinel -1 disables the oid filter.
        if (filter.oid != -1 && e.oid != filter.oid) continue;
        if (e.seq < filter.min_seq) continue;
        out.push_back(e);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CrawlEvent& a, const CrawlEvent& b) {
              return a.seq < b.seq;
            });
  if (filter.limit > 0 && out.size() > filter.limit) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(filter.limit));
  }
  return out;
}

void AppendEventJson(const CrawlEvent& event, std::string* out) {
  JsonWriter w;
  w.BeginObject()
      .Field("seq", event.seq)
      .Field("type", CrawlEventTypeName(event.type))
      .Field("oid", event.oid)
      .Field("parent_oid", event.parent_oid)
      .Field("sid", static_cast<int64_t>(event.sid))
      .Field("shard_id", static_cast<int64_t>(event.shard_id))
      .Field("tid", static_cast<int64_t>(event.tid))
      .Field("wall_us", event.wall_us)
      .Field("virtual_us", event.virtual_us)
      .Field("value", event.value)
      .Field("aux", event.aux);
  if (event.reconciled) w.Field("reconciled", true);
  w.EndObject();
  out->append(w.TakeString());
}

std::string EventLog::ToJsonl(const EventFilter& filter) const {
  std::vector<CrawlEvent> events = Snapshot(filter);
  std::string out;
  out.reserve(events.size() * 160);
  for (const CrawlEvent& e : events) {
    AppendEventJson(e, &out);
    out.push_back('\n');
  }
  return out;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
}

}  // namespace focus::obs
