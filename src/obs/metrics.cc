#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"
#include "util/string_util.h"

namespace focus::obs {

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, rounded up).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < static_cast<int>(counts.size()); ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] >= rank) {
      // Interpolate within [lower, upper] by the rank's position in the
      // bucket. Bucket 0 is the exact value 0.
      if (i == 0) return 0.0;
      double lower = static_cast<double>(Histogram::BucketUpperBound(i - 1));
      double upper = static_cast<double>(Histogram::BucketUpperBound(i));
      double frac = static_cast<double>(rank - cumulative) /
                    static_cast<double>(counts[i]);
      return lower + (upper - lower) * frac;
    }
    cumulative += counts[i];
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(static_cast<int>(counts.size()) - 1));
}

int Histogram::BucketOf(uint64_t value) {
  // bit_width(value) is 64 for values >= 2^63; clamp those into the last
  // bucket so Observe never indexes past buckets_[kNumBuckets - 1].
  return value == 0
             ? 0
             : std::min(static_cast<int>(std::bit_width(value)),
                        kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  // The last bucket absorbs the clamped top of the range.
  if (i >= kNumBuckets - 1) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.counts.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      Labels* labels,
                                                      Kind kind) {
  std::sort(labels->begin(), labels->end());
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.name == name && e.labels == *labels) {
      FOCUS_CHECK(e.kind == kind, "metric '", e.name,
                  "' re-registered under a different type");
      return &e;
    }
  }
  Entry e;
  e.name = std::string(name);
  e.labels = std::move(*labels);
  e.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      e.counter = &counters_.emplace_back();
      break;
    case Kind::kGauge:
      e.gauge = &gauges_.emplace_back();
      break;
    case Kind::kHistogram:
      e.histogram = &histograms_.emplace_back();
      break;
  }
  return &entries_.emplace_back(std::move(e));
}

Counter* MetricsRegistry::GetCounter(std::string_view name, Labels labels) {
  return FindOrCreate(name, &labels, Kind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, Labels labels) {
  return FindOrCreate(name, &labels, Kind::kGauge)->gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         Labels labels) {
  return FindOrCreate(name, &labels, Kind::kHistogram)->histogram;
}

uint64_t MetricsRegistry::AddCollector(
    std::function<void(std::vector<GaugeSample>*)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::RemoveCollector(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(collectors_, [id](const auto& c) { return c.first == id; });
}

std::string PrometheusEscapeLabelValue(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeHelp(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    out += StrCat(k, "=\"", PrometheusEscapeLabelValue(v), "\"");
    first = false;
  }
  out += '}';
  return out;
}

void MetricsRegistry::SetHelp(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[std::string(name)] = std::string(help);
}

std::vector<const MetricsRegistry::Entry*> MetricsRegistry::SortedEntries()
    const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) {
              if (a->name != b->name) return a->name < b->name;
              return a->labels < b->labels;
            });
  return sorted;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // HELP text: registered via SetHelp, or the family name itself (a HELP
  // line must precede TYPE for conformant scrapes either way).
  auto help_for = [this](const std::string& name) -> std::string {
    auto it = help_.find(name);
    return PrometheusEscapeHelp(it == help_.end() ? name : it->second);
  };
  const std::string* last_typed = nullptr;
  for (const Entry* e : SortedEntries()) {
    if (last_typed == nullptr || *last_typed != e->name) {
      const char* type = e->kind == Kind::kCounter   ? "counter"
                         : e->kind == Kind::kGauge   ? "gauge"
                                                     : "histogram";
      out += StrCat("# HELP ", e->name, " ", help_for(e->name), "\n");
      out += StrCat("# TYPE ", e->name, " ", type, "\n");
      last_typed = &e->name;
    }
    switch (e->kind) {
      case Kind::kCounter:
        out += StrCat(e->name, FormatLabels(e->labels), " ",
                      e->counter->Value(), "\n");
        break;
      case Kind::kGauge:
        out += StrCat(e->name, FormatLabels(e->labels), " ",
                      e->gauge->Value(), "\n");
        break;
      case Kind::kHistogram: {
        HistogramSnapshot s = e->histogram->Snapshot();
        uint64_t cumulative = 0;
        for (int i = 0; i < static_cast<int>(s.counts.size()); ++i) {
          if (s.counts[i] == 0) continue;
          cumulative += s.counts[i];
          Labels le = e->labels;
          le.emplace_back("le",
                          StrCat(Histogram::BucketUpperBound(i)));
          out += StrCat(e->name, "_bucket", FormatLabels(le), " ",
                        cumulative, "\n");
        }
        Labels inf = e->labels;
        inf.emplace_back("le", "+Inf");
        out += StrCat(e->name, "_bucket", FormatLabels(inf), " ", s.count,
                      "\n");
        out += StrCat(e->name, "_sum", FormatLabels(e->labels), " ", s.sum,
                      "\n");
        out += StrCat(e->name, "_count", FormatLabels(e->labels), " ",
                      s.count, "\n");
        break;
      }
    }
  }
  // Collector samples render as gauges.
  std::vector<GaugeSample> samples;
  for (const auto& [id, fn] : collectors_) fn(&samples);
  std::stable_sort(samples.begin(), samples.end(),
                   [](const GaugeSample& a, const GaugeSample& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
  const std::string* last_sample_name = nullptr;
  for (const GaugeSample& s : samples) {
    if (last_sample_name == nullptr || *last_sample_name != s.name) {
      out += StrCat("# HELP ", s.name, " ", help_for(s.name), "\n");
      out += StrCat("# TYPE ", s.name, " gauge\n");
      last_sample_name = &s.name;
    }
    out += StrCat(s.name, FormatLabels(s.labels), " ", s.value, "\n");
  }
  return out;
}

namespace {

void WriteLabelsJson(JsonWriter* w, const Labels& labels) {
  w->Key("labels").BeginObject();
  for (const auto& [k, v] : labels) w->Field(k, v);
  w->EndObject();
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Field("schema", 2);

  w.Key("counters").BeginArray();
  for (const Entry* e : SortedEntries()) {
    if (e->kind != Kind::kCounter) continue;
    w.BeginObject().Field("name", e->name);
    WriteLabelsJson(&w, e->labels);
    w.Field("value", e->counter->Value()).EndObject();
  }
  w.EndArray();

  w.Key("gauges").BeginArray();
  for (const Entry* e : SortedEntries()) {
    if (e->kind != Kind::kGauge) continue;
    w.BeginObject().Field("name", e->name);
    WriteLabelsJson(&w, e->labels);
    w.Field("value", e->gauge->Value()).EndObject();
  }
  std::vector<GaugeSample> samples;
  for (const auto& [id, fn] : collectors_) fn(&samples);
  for (const GaugeSample& s : samples) {
    w.BeginObject().Field("name", s.name);
    WriteLabelsJson(&w, s.labels);
    w.Field("value", s.value).EndObject();
  }
  w.EndArray();

  w.Key("histograms").BeginArray();
  for (const Entry* e : SortedEntries()) {
    if (e->kind != Kind::kHistogram) continue;
    HistogramSnapshot s = e->histogram->Snapshot();
    w.BeginObject().Field("name", e->name);
    WriteLabelsJson(&w, e->labels);
    w.Field("count", s.count)
        .Field("sum", s.sum)
        .Field("mean", s.Mean())
        .Field("p50", s.Quantile(0.50))
        .Field("p90", s.Quantile(0.90))
        .Field("p99", s.Quantile(0.99));
    w.Key("buckets").BeginArray();
    for (int i = 0; i < static_cast<int>(s.counts.size()); ++i) {
      if (s.counts[i] == 0) continue;
      w.BeginObject()
          .Field("le", Histogram::BucketUpperBound(i))
          .Field("count", s.counts[i])
          .EndObject();
    }
    w.EndArray().EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.TakeString();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const Entry& e : entries_) {
    if (e.kind != Kind::kCounter) continue;
    out[StrCat(e.name, FormatLabels(e.labels))] = e.counter->Value();
  }
  return out;
}

}  // namespace focus::obs
