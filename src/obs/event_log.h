// Crawl provenance event log: typed per-URL lifecycle events in per-thread
// rings.
//
// Metrics answer "how much"; trace spans answer "how long"; this log answers
// "why": for any URL the crawl touched, which parent cited it, at what
// priority it entered the frontier, every fetch attempt with its fault
// class, every retry/backoff decision, every circuit-breaker denial, and
// the classify verdict — each event dual-stamped with wall time and
// simulated crawl time, plus the WAL commit/checkpoint/replay markers that
// order the crawl's durable history.
//
// Hot-path contract (mirrors TraceBuffer): when disabled, Record() is one
// relaxed atomic load and a branch — no allocation, no lock. When enabled,
// a record is a global relaxed fetch_add (the sequence number that totals
// the order across threads) plus a short critical section on the calling
// thread's own ring mutex; rings overwrite oldest on wrap so a long crawl
// keeps the most recent window. Events are fixed-size PODs — no strings —
// so recording never allocates once a ring exists. URLs are identified by
// their 64-bit oid; join with the CRAWL table (or Crawler::UrlOfOid) to
// get text back.
#ifndef FOCUS_OBS_EVENT_LOG_H_
#define FOCUS_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace focus::obs {

// The URL-lifecycle vocabulary. Values are stable — they are exported in
// JSONL and materialized into the EVENTS relational table.
enum class CrawlEventType : int32_t {
  kFrontierAdmit = 0,      // oid entered the frontier; parent_oid = citer
                           // (-1 for a seed), value = priority estimate
  kFrontierPromote = 1,    // parked not-before entry became ready
  kFetchAttempt = 2,       // aux = attempt ordinal (numtries at fetch)
  kFetchSuccess = 3,       // value = page relevance is on kClassifyVerdict
  kFetchFailure = 4,       // aux = FailureClass, value = server load
  kRetryScheduled = 5,     // value = backoff seconds, aux = retry cost
  kUrlDropped = 6,         // retry budget exhausted or permanent failure
  kBreakerTransition = 7,  // aux = new BreakerState
  kBreakerDenied = 8,      // open breaker refused the fetch
  kClassifyVerdict = 9,    // value = relevance
  kWalCommit = 10,         // aux = batch sequence / record count
  kWalCheckpoint = 11,
  kWalReplay = 12,         // recovery replayed records; aux = record count
  kShardDeath = 13,        // distributed shard died; aux = boot ordinal
  kShardRestart = 14,      // supervisor restarted a shard; aux = boot
                           // ordinal, value = frontier size after resume
  kExchangeBatch = 15,     // cross-shard delivery batch applied; aux =
                           // messages delivered, value = new watermark,
                           // parent_oid = source shard
};

// Stable lowercase snake_case name ("fetch_attempt"); used in JSONL and
// admin /events filters.
const char* CrawlEventTypeName(CrawlEventType type);
// Reverse lookup; returns false if `name` is not a known type.
bool CrawlEventTypeFromName(const std::string& name, CrawlEventType* out);

// Fixed-size, string-free record. `value` and `aux` are typed per event
// kind (see CrawlEventType comments).
struct CrawlEvent {
  uint64_t seq = 0;        // global total order across threads
  CrawlEventType type = CrawlEventType::kFrontierAdmit;
  uint32_t tid = 0;        // small sequential id per recording thread
  bool reconciled = false; // synthesized from durable state after recovery
  int32_t shard_id = 0;    // crawl shard that recorded the event (0 for
                           // single-shard runs; see EventLog::SetShardId)
  int64_t oid = -1;        // URL oid; -1 for process-level events (WAL)
  int64_t parent_oid = -1; // discovering parent for admits; -1 otherwise
  int32_t sid = -1;        // server id; -1 when not applicable
  int64_t wall_us = 0;     // microseconds since the log epoch (steady)
  int64_t virtual_us = -1; // simulated crawl time; -1 = none
  double value = 0.0;      // relevance / priority / backoff seconds / load
  int64_t aux = 0;         // fault class / breaker state / ordinal / count
};

// Snapshot/export filter. Default-constructed = everything.
struct EventFilter {
  int32_t type = -1;    // match CrawlEventType value; -1 = all
  int64_t oid = -1;     // match oid (full-range hash, may be negative);
                        // exactly -1 = all
  uint64_t min_seq = 0; // keep events with seq >= min_seq
  size_t limit = 0;     // keep only the LAST `limit` events; 0 = all
};

class EventLog {
 public:
  EventLog();
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // The process-wide log. Components take an EventLog* and treat nullptr
  // as "disabled" (not as the global — callers opt in explicitly).
  static EventLog& Global();

  // Starts recording. Each recording thread gets its own ring of
  // `ring_capacity` events; a full ring overwrites its oldest events.
  void Enable(size_t ring_capacity = 65536);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Appends one event (thread-safe). No-op when disabled.
  void Record(CrawlEventType type, int64_t oid, int64_t parent_oid,
              int32_t sid, int64_t virtual_us, double value, int64_t aux,
              bool reconciled = false);

  // Stamps every subsequent event with `shard_id`. Each distributed crawl
  // shard owns its own EventLog instance, so the shard id is a property of
  // the log rather than a parameter threaded through every Record call.
  // Defaults to 0 (single-shard runs).
  void SetShardId(int32_t shard_id) {
    shard_id_.store(shard_id, std::memory_order_relaxed);
  }
  int32_t shard_id() const {
    return shard_id_.load(std::memory_order_relaxed);
  }

  // All surviving events across threads, in sequence order, filtered.
  std::vector<CrawlEvent> Snapshot(const EventFilter& filter = {}) const;
  // One JSON object per line (JSONL), in sequence order.
  std::string ToJsonl(const EventFilter& filter = {}) const;
  // Drops all recorded events (rings stay registered; seq keeps rising).
  void Clear();

  // Total events ever recorded (monotonic, includes overwritten ones).
  uint64_t TotalRecorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  // Microseconds since the log epoch (steady clock; epoch = first Enable).
  int64_t NowWallMicros() const;

  struct Ring {
    mutable std::mutex mu;
    uint32_t tid = 0;
    std::vector<CrawlEvent> events;  // ring storage
    size_t next = 0;
    bool wrapped = false;
    size_t capacity = 0;
  };

 private:
  Ring* RingForThisThread();

  // Distinguishes instances in the per-thread ring cache, so tests that
  // build private logs never alias the global one's rings.
  const uint64_t instance_id_;

  std::atomic<bool> enabled_{false};
  std::atomic<int32_t> shard_id_{0};
  std::atomic<uint64_t> next_seq_{0};
  mutable std::mutex mu_;  // guards rings_ registration and capacity
  std::vector<std::unique_ptr<Ring>> rings_;
  size_t ring_capacity_ = 65536;
  std::atomic<int64_t> epoch_steady_us_{0};
  std::atomic<bool> epoch_set_{false};
};

// Appends one event's JSON object (no trailing newline) to `out`.
void AppendEventJson(const CrawlEvent& event, std::string* out);

}  // namespace focus::obs

#endif  // FOCUS_OBS_EVENT_LOG_H_
