#include "obs/reporter.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace focus::obs {

PeriodicReporter::PeriodicReporter(MetricsRegistry* registry,
                                   std::chrono::milliseconds interval)
    : registry_(MetricsRegistry::OrGlobal(registry)), interval_(interval) {
  last_ = registry_->CounterValues();
}

PeriodicReporter::~PeriodicReporter() { Stop(); }

void PeriodicReporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void PeriodicReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  std::string report = ReportOnce();
  if (!report.empty()) FOCUS_LOG(Info, "metrics delta (final):\n", report);
}

std::string PeriodicReporter::ReportOnce() {
  std::lock_guard<std::mutex> lock(last_mu_);
  std::map<std::string, uint64_t> now = registry_->CounterValues();
  std::string out;
  for (const auto& [key, value] : now) {
    auto it = last_.find(key);
    uint64_t prev = it == last_.end() ? 0 : it->second;
    if (value > prev) {
      out += StrCat("  ", key, " +", value - prev, "\n");
    }
  }
  last_ = std::move(now);
  return out;
}

void PeriodicReporter::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) {
        return;
      }
    }
    std::string report = ReportOnce();
    if (!report.empty()) FOCUS_LOG(Info, "metrics delta:\n", report);
  }
}

}  // namespace focus::obs
