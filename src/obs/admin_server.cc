#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace focus::obs {

namespace {

// %XX / '+' decoding for query components. Invalid escapes pass through
// verbatim — this is an introspection port, not a public parser.
std::string PercentDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && std::isxdigit(s[i + 1]) &&
               std::isxdigit(s[i + 2])) {
      out.push_back(static_cast<char>(
          std::strtol(s.substr(i + 1, 2).c_str(), nullptr, 16)));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

const char* StatusLine(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    default:
      return "500 Internal Server Error";
  }
}

}  // namespace

std::string AdminRequest::Param(const std::string& key,
                                const std::string& def) const {
  auto it = query.find(key);
  return it == query.end() ? def : it->second;
}

int64_t AdminRequest::ParamInt(const std::string& key, int64_t def) const {
  auto it = query.find(key);
  if (it == query.end() || it->second.empty()) return def;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return def;
  return static_cast<int64_t>(v);
}

AdminRequest ParseRequestTarget(const std::string& target) {
  AdminRequest req;
  size_t qpos = target.find('?');
  req.path = PercentDecode(target.substr(0, qpos));
  if (qpos == std::string::npos) return req;
  std::string qs = target.substr(qpos + 1);
  size_t start = 0;
  while (start <= qs.size()) {
    size_t amp = qs.find('&', start);
    std::string pair = qs.substr(
        start, amp == std::string::npos ? std::string::npos : amp - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        req.query[PercentDecode(pair)] = "";
      } else {
        req.query[PercentDecode(pair.substr(0, eq))] =
            PercentDecode(pair.substr(eq + 1));
      }
    }
    if (amp == std::string::npos) break;
    start = amp + 1;
  }
  return req;
}

AdminServer::AdminServer(Options options) : options_(options) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::AddHandler(
    std::string path,
    std::function<AdminResponse(const AdminRequest&)> handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[std::move(path)] = std::move(handler);
}

AdminResponse AdminServer::Handle(const AdminRequest& request) const {
  AdminResponse resp;
  if (request.path == "/healthz") {
    resp.body = "ok\n";
    return resp;
  }
  if (request.path == "/metrics") {
    MetricsRegistry* r = MetricsRegistry::OrGlobal(options_.metrics);
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = r->ToPrometheusText();
    return resp;
  }
  if (request.path == "/metrics.json") {
    MetricsRegistry* r = MetricsRegistry::OrGlobal(options_.metrics);
    resp.content_type = "application/json";
    resp.body = r->ToJson();
    return resp;
  }
  if (request.path == "/trace") {
    TraceBuffer* t =
        options_.trace != nullptr ? options_.trace : &TraceBuffer::Global();
    resp.content_type = "application/json";
    resp.body = t->ToChromeTraceJson();
    return resp;
  }
  if (request.path == "/events") {
    resp.content_type = "application/x-ndjson";
    if (options_.events == nullptr) return resp;
    EventFilter filter;
    std::string type = request.Param("type");
    if (!type.empty()) {
      CrawlEventType parsed;
      if (!CrawlEventTypeFromName(type, &parsed)) {
        resp.status = 400;
        resp.content_type = "text/plain; charset=utf-8";
        resp.body = "unknown event type: " + type + "\n";
        return resp;
      }
      filter.type = static_cast<int32_t>(parsed);
    }
    filter.oid = request.ParamInt("oid", -1);
    filter.min_seq = static_cast<uint64_t>(request.ParamInt("min_seq", 0));
    // Unfiltered tails are bounded: an admin page must never ship the
    // whole ring set by accident.
    filter.limit = static_cast<size_t>(request.ParamInt("limit", 1000));
    resp.body = options_.events->ToJsonl(filter);
    return resp;
  }
  std::function<AdminResponse(const AdminRequest&)> handler;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (handler) return handler(request);
  resp.status = 404;
  resp.body = "not found: " + request.path + "\n";
  return resp;
}

Status AdminServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("admin server already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError(std::string("bind 127.0.0.1:") +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocked accept(); close() after join.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void AdminServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the socket down (or something unrecoverable happened);
      // either way this thread is done.
      return;
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void AdminServer::ServeConnection(int fd) {
  // Read until the end of the request head. Serial, bounded, blocking:
  // the client is curl/a scraper on loopback.
  std::string head;
  char buf[4096];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    head.append(buf, static_cast<size_t>(n));
    if (head.size() > 64 * 1024) return;  // absurd request head; drop
  }
  size_t line_end = head.find('\n');
  std::string request_line = head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.pop_back();
  }
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  AdminResponse resp;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp.status = 400;
    resp.body = "malformed request line\n";
  } else if (request_line.substr(0, sp1) != "GET") {
    resp.status = 405;
    resp.body = "read-only server: GET only\n";
  } else {
    resp = Handle(
        ParseRequestTarget(request_line.substr(sp1 + 1, sp2 - sp1 - 1)));
  }
  std::string out = "HTTP/1.1 ";
  out += StatusLine(resp.status);
  out += "\r\nContent-Type: ";
  out += resp.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(resp.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += resp.body;
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace focus::obs
