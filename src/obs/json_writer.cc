#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace focus::obs {

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ += ',';
    stack_.back().has_items = true;
  }
}

void JsonWriter::BeforeKey() {
  if (stack_.back().has_items) out_ += ',';
  stack_.back().has_items = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame{Scope::kObject});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame{Scope::kArray});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  BeforeKey();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) {
      out_ += shorter;
      return *this;
    }
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace focus::obs
