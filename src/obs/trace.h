// Trace spans: RAII scopes recorded into per-thread ring buffers.
//
// FOCUS_SPAN("crawl.fetch") times the enclosing scope; when tracing is
// enabled the closed span is appended to the calling thread's ring buffer.
// Spans are dual-stamped: wall time (steady clock, microseconds since the
// first Enable) drives the Chrome trace_event layout, and an optional
// VirtualClock stamp records where in *simulated crawl time* the work
// happened, so a span can be correlated with the harvest-rate timeline.
//
// ToChromeTraceJson() renders complete ("ph":"X") events; the file loads
// directly in chrome://tracing and Perfetto. Nesting falls out of scoping:
// a span opened inside another on the same thread is contained in its
// parent's [ts, ts+dur] window, which is how the viewers infer the stack.
//
// Cost when disabled: one relaxed atomic load per FOCUS_SPAN. Span names
// must be string literals (or otherwise outlive the buffer) — they are
// stored as pointers.
#ifndef FOCUS_OBS_TRACE_H_
#define FOCUS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"

namespace focus::obs {

struct SpanEvent {
  const char* name = nullptr;
  uint32_t tid = 0;           // small sequential id per recording thread
  int64_t wall_start_us = 0;  // trace epoch = first Enable()
  int64_t dur_us = 0;
  int64_t virtual_us = -1;  // VirtualClock stamp at span start; -1 = none
};

class TraceBuffer {
 public:
  // The process-wide buffer FOCUS_SPAN records into.
  static TraceBuffer& Global();

  // Starts recording. Each thread that records gets its own ring of
  // `ring_capacity` spans; when a ring fills, the oldest spans are
  // overwritten (tracing a long crawl keeps the most recent window).
  void Enable(size_t ring_capacity = 8192);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(const char* name, int64_t wall_start_us, int64_t dur_us,
              int64_t virtual_us);

  // All recorded spans, across threads, in wall-start order.
  std::vector<SpanEvent> Snapshot() const;
  // Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string ToChromeTraceJson() const;
  // Drops all recorded spans (rings stay registered).
  void Clear();

  // Microseconds since the trace epoch (steady clock).
  int64_t NowTraceMicros() const;

  // Implementation detail, public only so the per-thread cache (an
  // anonymous-namespace thread_local in trace.cc) can name it.
  struct Ring {
    mutable std::mutex mu;
    uint32_t tid = 0;
    std::vector<SpanEvent> events;  // ring storage
    size_t next = 0;
    bool wrapped = false;
    size_t capacity = 0;
  };

 private:
  Ring* RingForThisThread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards rings_ registration and capacity
  std::vector<std::unique_ptr<Ring>> rings_;
  size_t ring_capacity_ = 8192;
  std::atomic<int64_t> epoch_steady_us_{0};
  std::atomic<bool> epoch_set_{false};
};

// RAII span scope; records on destruction when tracing is enabled. The
// optional VirtualClock is read at construction (simulated time of the
// span's start).
class SpanScope {
 public:
  explicit SpanScope(const char* name,
                     const VirtualClock* virtual_clock = nullptr) {
    TraceBuffer& buffer = TraceBuffer::Global();
    if (!buffer.enabled()) return;
    name_ = name;
    virtual_us_ = virtual_clock == nullptr ? -1 : virtual_clock->NowMicros();
    wall_start_us_ = buffer.NowTraceMicros();
  }
  ~SpanScope() {
    if (name_ == nullptr) return;
    TraceBuffer& buffer = TraceBuffer::Global();
    buffer.Record(name_, wall_start_us_,
                  buffer.NowTraceMicros() - wall_start_us_, virtual_us_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t wall_start_us_ = 0;
  int64_t virtual_us_ = -1;
};

}  // namespace focus::obs

#define FOCUS_SPAN_CONCAT_(a, b) a##b
#define FOCUS_SPAN_NAME_(counter) FOCUS_SPAN_CONCAT_(focus_span_, counter)

// Times the enclosing scope under `name` (a string literal).
#define FOCUS_SPAN(name) \
  ::focus::obs::SpanScope FOCUS_SPAN_NAME_(__COUNTER__)(name)

// Same, with a VirtualClock* stamped at span start.
#define FOCUS_SPAN_VT(name, vclock) \
  ::focus::obs::SpanScope FOCUS_SPAN_NAME_(__COUNTER__)(name, vclock)

#endif  // FOCUS_OBS_TRACE_H_
