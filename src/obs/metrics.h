// Process-wide metrics: labeled counters, gauges, and log-scale histograms.
//
// The paper's §3.7 sells Focus on watchability — the admin monitors the
// harvest rate and tweaks the crawl mid-flight. This registry is the
// substrate: every layer (crawler stages, classifier batches, distiller
// iterations, buffer pool, disk) registers metrics here, and one snapshot
// call renders them as a Prometheus-style text page or a JSON document.
//
// Hot-path design: registration (name + label lookup) takes a mutex once;
// the returned Counter/Gauge/Histogram pointer is stable for the registry's
// lifetime and its update methods are single relaxed atomic operations —
// fetch workers never serialize on the registry. Snapshots read the same
// atomics with relaxed loads; a snapshot taken during a storm of updates is
// a consistent-enough sample (each individual value is atomic, the set is
// not), which is the standard Prometheus contract.
#ifndef FOCUS_OBS_METRICS_H_
#define FOCUS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json_writer.h"

namespace focus::obs {

// Sorted (key, value) label pairs; part of a metric's identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing counter.
class Counter {
 public:
  void Inc() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  // counts[i] = observations with bit_width(value) == i, i.e. in
  // [2^(i-1), 2^i - 1]; counts[0] holds zeros. Upper bound of bucket i is
  // 2^i - 1.
  std::vector<uint64_t> counts;

  // Estimated q-quantile (q in [0, 1]): finds the bucket holding the
  // target rank and interpolates linearly inside it.
  double Quantile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

// Log-scale (power-of-two buckets) histogram of non-negative integer
// observations — microsecond latencies, batch sizes, row counts. Fixed 64
// buckets cover the whole uint64 range, so Observe never allocates and is
// two relaxed fetch_adds plus one for the bucket.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Observe(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  // Bucket index for `value`: 0 for 0, else floor(log2(value)) + 1,
  // clamped to the last bucket (which absorbs values >= 2^62).
  static int BucketOf(uint64_t value);
  // Inclusive upper bound of bucket `i` (2^i - 1; the last bucket
  // saturates to the uint64 maximum).
  static uint64_t BucketUpperBound(int i);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// One sample emitted by a snapshot-time collector callback.
struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide default registry. Components take a MetricsRegistry*
  // and fall back to this when given nullptr.
  static MetricsRegistry& Global();
  // Resolves the conventional "nullptr means global" parameter.
  static MetricsRegistry* OrGlobal(MetricsRegistry* registry) {
    return registry != nullptr ? registry : &Global();
  }

  // Finds or creates the metric (name, labels). The returned pointer is
  // valid for the registry's lifetime. Registering the same (name, labels)
  // under a different type is a programming error and aborts.
  Counter* GetCounter(std::string_view name, Labels labels = {});
  Gauge* GetGauge(std::string_view name, Labels labels = {});
  Histogram* GetHistogram(std::string_view name, Labels labels = {});

  // Registers help text for a metric family, emitted as a "# HELP" line
  // ahead of the family's samples in ToPrometheusText. One string per
  // name (all label sets of a family share it); unregistered families
  // fall back to the name itself so the exposition stays conformant.
  void SetHelp(std::string_view name, std::string_view help);

  // Registers a callback evaluated at snapshot time — the bridge for
  // components that already keep their own stats structs (buffer pool,
  // disk manager). Returns an id for RemoveCollector; collectors must be
  // removed before the objects they capture die.
  uint64_t AddCollector(std::function<void(std::vector<GaugeSample>*)> fn);
  void RemoveCollector(uint64_t id);

  // Prometheus-style text exposition (# TYPE comments, name{labels} value;
  // histograms as cumulative _bucket{le=...}/_sum/_count series).
  std::string ToPrometheusText() const;
  // JSON snapshot: {"schema": 2, "counters": [...], "gauges": [...],
  // "histograms": [...]} with p50/p90/p99 estimates per histogram.
  std::string ToJson() const;

  // Counter values keyed by "name{labels}" — the delta source for
  // PeriodicReporter.
  std::map<std::string, uint64_t> CounterValues() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    // Exactly one is non-null, owned by the deques below.
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  Entry* FindOrCreate(std::string_view name, Labels* labels, Kind kind);
  // Entries sorted by (name, labels), then collector samples, under mu_.
  std::vector<const Entry*> SortedEntries() const;

  mutable std::mutex mu_;
  std::map<std::string, std::string, std::less<>> help_;
  // deques: stable addresses across growth.
  std::deque<Entry> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<std::pair<uint64_t,
                        std::function<void(std::vector<GaugeSample>*)>>>
      collectors_;
  uint64_t next_collector_id_ = 1;
};

// Renders labels as {k="v",...} (empty string for no labels), with label
// values escaped per the Prometheus text exposition format.
std::string FormatLabels(const Labels& labels);

// Prometheus text-format escaping for label values: exactly backslash,
// double-quote and newline are escaped (the format's spec — unlike JSON,
// control characters and non-ASCII pass through verbatim).
std::string PrometheusEscapeLabelValue(std::string_view raw);
// Same for # HELP text, where only backslash and newline are escaped.
std::string PrometheusEscapeHelp(std::string_view raw);

}  // namespace focus::obs

#endif  // FOCUS_OBS_METRICS_H_
