// Read-only HTTP/1.1 introspection server for a live crawl.
//
// The paper's §3.7 argument is that a focused crawler must be *watchable*:
// the admin monitors the harvest rate mid-flight and intervenes. This
// server is the modern rendition — a minimal, dependency-free HTTP endpoint
// (POSIX sockets, loopback only) that renders the process's observability
// surfaces on demand:
//
//   /healthz       200 "ok" liveness probe
//   /metrics       Prometheus text exposition of the metrics registry
//   /metrics.json  JSON snapshot of the same registry
//   /trace         Chrome trace_event JSON of the trace buffer
//   /events        JSONL tail of the crawl event log; filterable via
//                  ?type=<name>&oid=<n>&min_seq=<n>&limit=<n>
//
// plus any routes the host binary registers with AddHandler — the crawl
// layer uses that to serve /frontier (per-shard depth / not-before /
// breaker state) without obs depending on crawl.
//
// Every response is built from a bounded snapshot taken at request time
// (registry/trace/event-log snapshot calls are already safe against
// concurrent writers), so serving never blocks the crawl and a response is
// internally consistent enough for monitoring. Requests are handled
// serially on one accept thread: this is an introspection port, not a web
// server. Binds 127.0.0.1 only; port 0 picks an ephemeral port, readable
// via port() after Start().
#ifndef FOCUS_OBS_ADMIN_SERVER_H_
#define FOCUS_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace focus::obs {

class EventLog;
class MetricsRegistry;
class TraceBuffer;

// One parsed GET request: decoded path plus query parameters.
struct AdminRequest {
  std::string path;
  std::map<std::string, std::string> query;

  // Query parameter or `def` when absent.
  std::string Param(const std::string& key, const std::string& def = "") const;
  int64_t ParamInt(const std::string& key, int64_t def) const;
};

struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminServer {
 public:
  struct Options {
    // 0 = ephemeral (kernel-assigned, see port()).
    int port = 0;
    // nullptr = process-global registry / trace buffer.
    MetricsRegistry* metrics = nullptr;
    TraceBuffer* trace = nullptr;
    // nullptr = /events serves an empty log.
    EventLog* events = nullptr;
  };

  explicit AdminServer(Options options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Registers `handler` for an exact path ("/frontier"), replacing any
  // previous handler for it. Safe while the server is running (the route
  // table has its own lock), so a long-lived server can re-point routes at
  // each new crawl session.
  void AddHandler(std::string path,
                  std::function<AdminResponse(const AdminRequest&)> handler);

  // Binds 127.0.0.1:<port> and spawns the accept thread.
  Status Start();
  // Stops the accept thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound port (the ephemeral choice when Options::port was 0); valid
  // after a successful Start().
  int port() const { return port_; }

  // Exposed for tests: dispatches one already-parsed request exactly as
  // the socket path would.
  AdminResponse Handle(const AdminRequest& request) const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  mutable std::mutex handlers_mu_;
  std::map<std::string, std::function<AdminResponse(const AdminRequest&)>>
      handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
};

// Parses "/events?type=fetch_failure&limit=10" into an AdminRequest
// (exposed for tests; percent-decoding covers %XX and '+').
AdminRequest ParseRequestTarget(const std::string& target);

}  // namespace focus::obs

#endif  // FOCUS_OBS_ADMIN_SERVER_H_
