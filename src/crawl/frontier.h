// Crawl frontier with reconfigurable lexicographic priorities (§3.2).
//
// "New work is checked out from the CRAWL table in the order
//  (numtries ascending, relevance descending, serverload ascending)."
// The frontier is an in-memory priority index over the unvisited rows of
// the CRAWL table; the table remains the source of truth. serverload is
// the paper's "crude and lazily updated" estimate: entries are re-ranked
// only when re-pushed. The policy can be switched mid-crawl (the heap is
// lazily rebuilt via entry versioning).
#ifndef FOCUS_CRAWL_FRONTIER_H_
#define FOCUS_CRAWL_FRONTIER_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace focus::obs {
class EventLog;
}  // namespace focus::obs

namespace focus::crawl {

struct FrontierEntry {
  uint64_t oid = 0;
  std::string url;
  int32_t numtries = 0;
  double relevance = 0;
  int32_t serverload = 0;
  int64_t lastvisited = 0;  // 0 = never
  double hub_score = 0;     // distiller boost / PageRank ordering signal
  int32_t backlinks = 0;    // known citations (Cho et al. ordering)
  uint64_t seq = 0;         // insertion sequence (BFS/FIFO orderings)
  // Not-before time (virtual us): 0 = ready now. Entries with a future
  // ready_at_us are parked — invisible to time-gated pops until a pop's
  // `now_us` reaches it (retry backoff and breaker quarantine land here).
  int64_t ready_at_us = 0;
};

enum class PriorityPolicy {
  // (numtries asc, relevance desc, serverload asc) — §3.2's aggressive
  // resource discovery order. The soft-focus crawler's default.
  kAggressiveDiscovery,
  // FIFO — the "standard crawler" baseline of Figure 5(a).
  kBreadthFirst,
  // (lastvisited asc, hub_score desc) — crawl maintenance ordering;
  // never-visited entries (lastvisited = 0) sort last.
  kRevisitHubs,
  // (numtries desc, relevance desc) — picking off timeouts/dead links.
  kRetryDeadLinks,
  // Content-blind prestige orderings from Cho, Garcia-Molina & Page
  // (§1.4's contrast: "PageRank has no notion of page content"):
  // (backlinks desc) — most-cited-first.
  kBacklinkCount,
  // (hub_score desc) where hub_score carries the latest PageRank of the
  // known crawl graph (refreshed periodically by the crawler).
  kPageRankOrder,
};

const char* PolicyName(PriorityPolicy policy);

// Pops with this deadline see every entry, parked or not (the default, so
// fault-free crawls behave exactly as before the not-before queue).
inline constexpr int64_t kNoTimeGate =
    std::numeric_limits<int64_t>::max();

class Frontier {
 public:
  explicit Frontier(PriorityPolicy policy = PriorityPolicy::
                        kAggressiveDiscovery)
      : policy_(policy) {}

  // Inserts or re-ranks `entry` (keyed by oid). Entries with a future
  // ready_at_us go to the parked queue.
  void AddOrUpdate(const FrontierEntry& entry);

  // Removes and returns the best entry whose ready_at_us <= now_us, or
  // nullopt when none qualifies.
  std::optional<FrontierEntry> PopBest(int64_t now_us = kNoTimeGate);

  // The best live entry with ready_at_us <= now_us without removing it
  // (nullptr when none). The pointer is invalidated by any mutating call.
  const FrontierEntry* PeekBest(int64_t now_us = kNoTimeGate);

  // Earliest ready_at_us among parked (not yet promoted) entries; nullopt
  // when nothing is parked. Lets an idle crawler fast-forward its virtual
  // clock instead of spinning.
  std::optional<int64_t> NextReadyMicros();

  // True when `a` outranks `b` under `policy` (same total order the heap
  // uses, including the deterministic seq/oid tie-break).
  static bool HigherPriority(const FrontierEntry& a, const FrontierEntry& b,
                             PriorityPolicy policy);

  // Removes `oid` from the frontier (e.g. once visited).
  void Erase(uint64_t oid);

  bool Contains(uint64_t oid) const { return live_.contains(oid); }
  const FrontierEntry* Peek(uint64_t oid) const;

  // Copies of every live entry (used to refresh ordering signals in bulk).
  std::vector<FrontierEntry> Snapshot() const;

  // Switches the ordering; existing entries are re-ranked.
  void SetPolicy(PriorityPolicy policy);
  PriorityPolicy policy() const { return policy_; }

  size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

  // Provenance hook: parked→ready promotions record kFrontierPromote
  // events. nullptr (the default) disables.
  void SetEventLog(obs::EventLog* log) { event_log_ = log; }

  // Live entries currently parked behind a not-before time.
  size_t parked_count() const;

 private:
  struct HeapItem {
    uint64_t oid;
    uint64_t version;
    FrontierEntry entry;
  };
  struct HeapLess {
    PriorityPolicy policy;
    bool operator()(const HeapItem& a, const HeapItem& b) const;
  };

  struct ParkedItem {
    uint64_t oid;
    uint64_t version;
    int64_t ready_at_us;
  };
  struct ParkedLater {  // min-heap on ready_at_us (oid tie-break)
    bool operator()(const ParkedItem& a, const ParkedItem& b) const {
      if (a.ready_at_us != b.ready_at_us) {
        return a.ready_at_us > b.ready_at_us;
      }
      return a.oid > b.oid;
    }
  };

  void RebuildHeap();
  // Discards stale items from the heap top so heap_.front() (if any) is
  // the live best entry.
  void CleanTop();
  // Moves parked entries whose ready time has arrived into the main heap.
  void Promote(int64_t now_us);
  // Discards stale items from the parked-heap top.
  void CleanParkedTop();

  PriorityPolicy policy_;
  obs::EventLog* event_log_ = nullptr;
  // oid -> (current version, entry). Heap items with stale versions are
  // discarded on pop.
  std::unordered_map<uint64_t, std::pair<uint64_t, FrontierEntry>> live_;
  std::vector<HeapItem> heap_;
  // Min-heap of not-yet-ready entries, by ready_at_us.
  std::vector<ParkedItem> parked_;
  uint64_t next_version_ = 1;
  uint64_t next_seq_ = 1;
};

// A server-sharded frontier for the concurrent crawl pipeline. Entries are
// assigned to shards by ServerIdOf(url) so each server's pages live in one
// shard and the lexicographic priority order (which includes the per-server
// politeness signal) is preserved within it. Every shard carries its own
// lock; fetch workers pop from a preferred shard and steal from the others
// when it runs dry. Insertion sequence numbers are issued from one atomic
// counter so the cross-shard tie-break order stays globally consistent —
// with a single shard, PopBest is exactly equivalent to a plain Frontier.
class ShardedFrontier {
 public:
  explicit ShardedFrontier(
      PriorityPolicy policy = PriorityPolicy::kAggressiveDiscovery,
      int num_shards = 1);

  ShardedFrontier(const ShardedFrontier&) = delete;
  ShardedFrontier& operator=(const ShardedFrontier&) = delete;

  // Inserts or re-ranks `entry` (keyed by oid; sharded by its URL's
  // server).
  void AddOrUpdate(const FrontierEntry& entry);

  // Removes and returns the globally best ready entry (best among the
  // shard bests with ready_at_us <= now_us), or nullopt when none.
  std::optional<FrontierEntry> PopBest(int64_t now_us = kNoTimeGate);

  // Work-stealing pop: takes the best ready entry of `shard`, or — when
  // that shard has none — of the nearest shard with one. `stolen`
  // (optional) reports whether the entry came from another shard.
  std::optional<FrontierEntry> PopPreferShard(int shard,
                                              bool* stolen = nullptr) {
    return PopPreferShard(shard, kNoTimeGate, stolen);
  }
  std::optional<FrontierEntry> PopPreferShard(int shard, int64_t now_us,
                                              bool* stolen);

  // Earliest parked ready_at_us across shards; nullopt when nothing is
  // parked anywhere.
  std::optional<int64_t> NextReadyMicros();

  void Erase(uint64_t oid);
  bool Contains(uint64_t oid) const;
  // A copy of the live entry for `oid` (frontier entries move under
  // concurrent pops, so no pointer-returning Peek here).
  std::optional<FrontierEntry> PeekCopy(uint64_t oid) const;

  // Copies of every live entry across all shards.
  std::vector<FrontierEntry> Snapshot() const;

  // Switches the ordering on every shard.
  void SetPolicy(PriorityPolicy policy);
  PriorityPolicy policy() const;

  size_t size() const;
  bool empty() const { return size() == 0; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardOf(std::string_view url) const;

  // Attaches the provenance event log to every shard (see
  // Frontier::SetEventLog).
  void SetEventLog(obs::EventLog* log);

  // Bounded per-shard introspection for the admin /frontier endpoint.
  struct ShardStats {
    int shard = 0;
    size_t live = 0;    // entries in the shard (ready + parked)
    size_t parked = 0;  // entries gated behind a not-before time
    // Earliest parked ready_at_us; -1 when nothing is parked.
    int64_t next_ready_us = -1;
  };
  std::vector<ShardStats> StatsSnapshot() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    Frontier frontier;
    explicit Shard(PriorityPolicy policy) : frontier(policy) {}
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_seq_{1};
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_FRONTIER_H_
