// Crawl frontier with reconfigurable lexicographic priorities (§3.2).
//
// "New work is checked out from the CRAWL table in the order
//  (numtries ascending, relevance descending, serverload ascending)."
// The frontier is an in-memory priority index over the unvisited rows of
// the CRAWL table; the table remains the source of truth. serverload is
// the paper's "crude and lazily updated" estimate: entries are re-ranked
// only when re-pushed. The policy can be switched mid-crawl (the heap is
// lazily rebuilt via entry versioning).
#ifndef FOCUS_CRAWL_FRONTIER_H_
#define FOCUS_CRAWL_FRONTIER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace focus::crawl {

struct FrontierEntry {
  uint64_t oid = 0;
  std::string url;
  int32_t numtries = 0;
  double relevance = 0;
  int32_t serverload = 0;
  int64_t lastvisited = 0;  // 0 = never
  double hub_score = 0;     // distiller boost / PageRank ordering signal
  int32_t backlinks = 0;    // known citations (Cho et al. ordering)
  uint64_t seq = 0;         // insertion sequence (BFS/FIFO orderings)
};

enum class PriorityPolicy {
  // (numtries asc, relevance desc, serverload asc) — §3.2's aggressive
  // resource discovery order. The soft-focus crawler's default.
  kAggressiveDiscovery,
  // FIFO — the "standard crawler" baseline of Figure 5(a).
  kBreadthFirst,
  // (lastvisited asc, hub_score desc) — crawl maintenance ordering;
  // never-visited entries (lastvisited = 0) sort last.
  kRevisitHubs,
  // (numtries desc, relevance desc) — picking off timeouts/dead links.
  kRetryDeadLinks,
  // Content-blind prestige orderings from Cho, Garcia-Molina & Page
  // (§1.4's contrast: "PageRank has no notion of page content"):
  // (backlinks desc) — most-cited-first.
  kBacklinkCount,
  // (hub_score desc) where hub_score carries the latest PageRank of the
  // known crawl graph (refreshed periodically by the crawler).
  kPageRankOrder,
};

const char* PolicyName(PriorityPolicy policy);

class Frontier {
 public:
  explicit Frontier(PriorityPolicy policy = PriorityPolicy::
                        kAggressiveDiscovery)
      : policy_(policy) {}

  // Inserts or re-ranks `entry` (keyed by oid).
  void AddOrUpdate(const FrontierEntry& entry);

  // Removes and returns the best entry, or nullopt when empty.
  std::optional<FrontierEntry> PopBest();

  // The best live entry without removing it (nullptr when empty). The
  // pointer is invalidated by any mutating call.
  const FrontierEntry* PeekBest();

  // True when `a` outranks `b` under `policy` (same total order the heap
  // uses, including the deterministic seq/oid tie-break).
  static bool HigherPriority(const FrontierEntry& a, const FrontierEntry& b,
                             PriorityPolicy policy);

  // Removes `oid` from the frontier (e.g. once visited).
  void Erase(uint64_t oid);

  bool Contains(uint64_t oid) const { return live_.contains(oid); }
  const FrontierEntry* Peek(uint64_t oid) const;

  // Copies of every live entry (used to refresh ordering signals in bulk).
  std::vector<FrontierEntry> Snapshot() const;

  // Switches the ordering; existing entries are re-ranked.
  void SetPolicy(PriorityPolicy policy);
  PriorityPolicy policy() const { return policy_; }

  size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

 private:
  struct HeapItem {
    uint64_t oid;
    uint64_t version;
    FrontierEntry entry;
  };
  struct HeapLess {
    PriorityPolicy policy;
    bool operator()(const HeapItem& a, const HeapItem& b) const;
  };

  void RebuildHeap();
  // Discards stale items from the heap top so heap_.front() (if any) is
  // the live best entry.
  void CleanTop();

  PriorityPolicy policy_;
  // oid -> (current version, entry). Heap items with stale versions are
  // discarded on pop.
  std::unordered_map<uint64_t, std::pair<uint64_t, FrontierEntry>> live_;
  std::vector<HeapItem> heap_;
  uint64_t next_version_ = 1;
  uint64_t next_seq_ = 1;
};

// A server-sharded frontier for the concurrent crawl pipeline. Entries are
// assigned to shards by ServerIdOf(url) so each server's pages live in one
// shard and the lexicographic priority order (which includes the per-server
// politeness signal) is preserved within it. Every shard carries its own
// lock; fetch workers pop from a preferred shard and steal from the others
// when it runs dry. Insertion sequence numbers are issued from one atomic
// counter so the cross-shard tie-break order stays globally consistent —
// with a single shard, PopBest is exactly equivalent to a plain Frontier.
class ShardedFrontier {
 public:
  explicit ShardedFrontier(
      PriorityPolicy policy = PriorityPolicy::kAggressiveDiscovery,
      int num_shards = 1);

  ShardedFrontier(const ShardedFrontier&) = delete;
  ShardedFrontier& operator=(const ShardedFrontier&) = delete;

  // Inserts or re-ranks `entry` (keyed by oid; sharded by its URL's
  // server).
  void AddOrUpdate(const FrontierEntry& entry);

  // Removes and returns the globally best entry (best among the shard
  // bests), or nullopt when empty.
  std::optional<FrontierEntry> PopBest();

  // Work-stealing pop: takes the best entry of `shard`, or — when that
  // shard is empty — of the nearest non-empty shard. `stolen` (optional)
  // reports whether the entry came from another shard.
  std::optional<FrontierEntry> PopPreferShard(int shard,
                                              bool* stolen = nullptr);

  void Erase(uint64_t oid);
  bool Contains(uint64_t oid) const;
  // A copy of the live entry for `oid` (frontier entries move under
  // concurrent pops, so no pointer-returning Peek here).
  std::optional<FrontierEntry> PeekCopy(uint64_t oid) const;

  // Copies of every live entry across all shards.
  std::vector<FrontierEntry> Snapshot() const;

  // Switches the ordering on every shard.
  void SetPolicy(PriorityPolicy policy);
  PriorityPolicy policy() const;

  size_t size() const;
  bool empty() const { return size() == 0; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardOf(std::string_view url) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    Frontier frontier;
    explicit Shard(PriorityPolicy policy) : frontier(policy) {}
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_seq_{1};
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_FRONTIER_H_
