// Crawl frontier with reconfigurable lexicographic priorities (§3.2).
//
// "New work is checked out from the CRAWL table in the order
//  (numtries ascending, relevance descending, serverload ascending)."
// The frontier is an in-memory priority index over the unvisited rows of
// the CRAWL table; the table remains the source of truth. serverload is
// the paper's "crude and lazily updated" estimate: entries are re-ranked
// only when re-pushed. The policy can be switched mid-crawl (the heap is
// lazily rebuilt via entry versioning).
#ifndef FOCUS_CRAWL_FRONTIER_H_
#define FOCUS_CRAWL_FRONTIER_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

namespace focus::crawl {

struct FrontierEntry {
  uint64_t oid = 0;
  std::string url;
  int32_t numtries = 0;
  double relevance = 0;
  int32_t serverload = 0;
  int64_t lastvisited = 0;  // 0 = never
  double hub_score = 0;     // distiller boost / PageRank ordering signal
  int32_t backlinks = 0;    // known citations (Cho et al. ordering)
  uint64_t seq = 0;         // insertion sequence (BFS/FIFO orderings)
};

enum class PriorityPolicy {
  // (numtries asc, relevance desc, serverload asc) — §3.2's aggressive
  // resource discovery order. The soft-focus crawler's default.
  kAggressiveDiscovery,
  // FIFO — the "standard crawler" baseline of Figure 5(a).
  kBreadthFirst,
  // (lastvisited asc, hub_score desc) — crawl maintenance ordering;
  // never-visited entries (lastvisited = 0) sort last.
  kRevisitHubs,
  // (numtries desc, relevance desc) — picking off timeouts/dead links.
  kRetryDeadLinks,
  // Content-blind prestige orderings from Cho, Garcia-Molina & Page
  // (§1.4's contrast: "PageRank has no notion of page content"):
  // (backlinks desc) — most-cited-first.
  kBacklinkCount,
  // (hub_score desc) where hub_score carries the latest PageRank of the
  // known crawl graph (refreshed periodically by the crawler).
  kPageRankOrder,
};

const char* PolicyName(PriorityPolicy policy);

class Frontier {
 public:
  explicit Frontier(PriorityPolicy policy = PriorityPolicy::
                        kAggressiveDiscovery)
      : policy_(policy) {}

  // Inserts or re-ranks `entry` (keyed by oid).
  void AddOrUpdate(const FrontierEntry& entry);

  // Removes and returns the best entry, or nullopt when empty.
  std::optional<FrontierEntry> PopBest();

  // Removes `oid` from the frontier (e.g. once visited).
  void Erase(uint64_t oid);

  bool Contains(uint64_t oid) const { return live_.contains(oid); }
  const FrontierEntry* Peek(uint64_t oid) const;

  // Copies of every live entry (used to refresh ordering signals in bulk).
  std::vector<FrontierEntry> Snapshot() const;

  // Switches the ordering; existing entries are re-ranked.
  void SetPolicy(PriorityPolicy policy);
  PriorityPolicy policy() const { return policy_; }

  size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

 private:
  struct HeapItem {
    uint64_t oid;
    uint64_t version;
    FrontierEntry entry;
  };
  struct HeapLess {
    PriorityPolicy policy;
    bool operator()(const HeapItem& a, const HeapItem& b) const;
  };

  void RebuildHeap();

  PriorityPolicy policy_;
  // oid -> (current version, entry). Heap items with stale versions are
  // discarded on pop.
  std::unordered_map<uint64_t, std::pair<uint64_t, FrontierEntry>> live_;
  std::vector<HeapItem> heap_;
  uint64_t next_version_ = 1;
  uint64_t next_seq_ = 1;
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_FRONTIER_H_
