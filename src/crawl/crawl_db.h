// The crawler's relational state: the CRAWL and LINK tables of Figure 1.
//
//   CRAWL(oid:int64, url:string, sid:int32, numtries:int32,
//         relevance:double, serverload:int32, lastvisited:int64,
//         kcid:int32, visited:int32,
//         nextretry:int64)                  index by_oid
//   LINK(oid_src:int64, sid_src:int32, oid_dst:int64, sid_dst:int32,
//        wgt_fwd:double, wgt_rev:double)    indexes by_src, by_dst
//   BREAKER(sid:int32, state:int32, failures:int32, open_until:int64,
//           cooldown:double)                index by_sid
//
// Distributed crawls additionally opt in (EnableExchange) to:
//   OUTBOX(seq:int64, dst_shard:int32, src_oid:int64, dst_url:string,
//          relevance:double, raise:int32)   index by_seq
//   XWMARK(src_shard:int32, applied_seq:int64)  index by_src
// OUTBOX journals cross-shard link admissions this shard produced (seq is
// a per-shard monotone sequence, appended in the same commit as the LINK
// row); XWMARK records, per source shard, the highest OUTBOX seq this
// shard has durably applied — the exactly-once watermark of the link
// exchange. Both ride the ordinary Commit/Checkpoint path, so a crash on
// either side of an exchange replays rather than drops or duplicates.
//
// nextretry is the not-before virtual time (us) of a failed entry's next
// attempt; BREAKER persists per-server circuit-breaker state so a resumed
// crawl keeps its quarantines and retry schedule.
//
// oid is the 64-bit URL hash; sid identifies the server (hash of the URL's
// host — standing in for the paper's resolved IP). For unvisited pages,
// `relevance` holds the inherited priority estimate (best citing page's
// R); after a visit it holds the page's own R(d).
#ifndef FOCUS_CRAWL_CRAWL_DB_H_
#define FOCUS_CRAWL_CRAWL_DB_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crawl/circuit_breaker.h"
#include "sql/catalog.h"
#include "sql/table.h"
#include "storage/wal.h"
#include "util/status.h"

namespace focus::crawl {

// Server id for a URL: hash of its host component.
int32_t ServerIdOf(std::string_view url);

// "http://host/path" -> "http://host/" (the §3.2 URL-truncation device).
// Returns the input unchanged when there is no path to strip.
std::string TruncateToHostRoot(std::string_view url);

// One cross-shard link admission queued in a source shard's OUTBOX.
struct ExchangeLink {
  int64_t seq = 0;        // per-source-shard monotone sequence
  int32_t dst_shard = 0;  // owning shard of dst_url
  uint64_t src_oid = 0;   // citing page (provenance parent)
  std::string dst_url;    // cited URL, owned by dst_shard
  double relevance = 0;   // citer's relevance estimate for dst_url
  // Admission semantics at the owner, mirroring the local expansion paths:
  // true = admit-or-raise (ordinary outlink: AddUrl, or RaiseRelevance on
  // a known unvisited row), false = admit-if-unknown (truncated host
  // roots and backlink citers never raise existing rows).
  bool raise_if_known = true;
};

struct CrawlRecord {
  uint64_t oid = 0;
  std::string url;
  int32_t sid = 0;
  int32_t numtries = 0;
  double relevance = 0;
  int32_t serverload = 0;
  int64_t lastvisited = 0;
  int32_t kcid = -1;
  bool visited = false;
  int64_t next_retry_us = 0;  // not-before time of the next fetch attempt
};

class CrawlDb {
 public:
  // Creates CRAWL and LINK in `catalog`.
  static Result<CrawlDb> Create(sql::Catalog* catalog);

  // Opens a WAL-backed database: reattaches CRAWL/LINK/BREAKER from the
  // layout metadata `wal` recovered (falling back to Create on a fresh
  // store) and binds `wal` so Commit/Checkpoint are durable. `catalog`'s
  // buffer pool must sit on top of `wal`.
  static Result<CrawlDb> Open(sql::Catalog* catalog,
                              storage::WalDiskManager* wal);

  // Binds a WAL to a freshly Created database (Open does this itself).
  // Without a bound WAL, Commit and Checkpoint are no-ops, preserving the
  // in-memory (MemDiskManager) fast path.
  void BindWal(storage::WalDiskManager* wal) { wal_ = wal; }
  bool has_wal() const { return wal_ != nullptr; }

  // Batch commit: flushes dirty pages (into the WAL overlay) and group-
  // commits them with the serialized catalog layouts. On OK the batch is
  // durable and atomic — after a crash, recovery lands exactly on a
  // commit boundary, never between.
  Status Commit();

  // Commit, then fold the log into the data device and truncate it
  // (BufferPool::FlushAll + manifest advance + log reset).
  Status Checkpoint();

  // Inserts a new URL row (visited = 0). AlreadyExists if the oid is known.
  Status AddUrl(std::string_view url, double relevance_estimate,
                int32_t serverload);

  // Fetch-attempt bookkeeping: numtries += 1.
  Status RecordAttempt(uint64_t oid);

  // Failed-fetch bookkeeping: numtries += cost, nextretry = next_retry_us
  // (0 when the entry is dropped — numtries then carries the exhausted
  // budget).
  Status RecordFailure(uint64_t oid, int32_t cost, int64_t next_retry_us);

  // Marks `oid` visited with its judged relevance, class and visit time.
  Status RecordVisit(uint64_t oid, double relevance, int32_t kcid,
                     int64_t lastvisited);

  // Raises the stored relevance estimate of an *unvisited* row to
  // `relevance` if higher (used for hub boosts and better citations).
  Status RaiseRelevance(uint64_t oid, double relevance);

  // Appends a LINK row; edge weights start at 0 (assigned by
  // RefreshEdgeWeights once endpoint relevances are known).
  Status AddLink(std::string_view src_url, std::string_view dst_url);

  // Sets wgt_fwd = R(dst), wgt_rev = R(src) for every LINK row, reading
  // relevances from CRAWL (§2.2.2). Unvisited endpoints weigh their
  // current estimate.
  Status RefreshEdgeWeights();

  Result<std::optional<CrawlRecord>> Lookup(uint64_t oid) const;
  Result<CrawlRecord> LookupByUrl(std::string_view url) const;

  // Persists one server's circuit-breaker state (insert or overwrite).
  Status UpsertBreaker(const BreakerRecord& rec);
  Result<std::vector<BreakerRecord>> LoadBreakers() const;

  // --- Cross-shard link exchange (distributed crawl) ---

  // Creates the OUTBOX/XWMARK tables. Idempotent; Open() reattaches them
  // automatically when the recovered catalog has them, so single-shard
  // stores never grow the extra tables.
  Status EnableExchange();
  bool has_exchange() const { return outbox_ != nullptr; }

  // Journals one cross-shard admission, assigning the next seq. Durable
  // with (and only with) the surrounding Commit, i.e. atomically with the
  // LINK row recorded in the same batch.
  Status AppendOutbox(int32_t dst_shard, uint64_t src_oid,
                      std::string_view dst_url, double relevance,
                      bool raise_if_known);

  // All OUTBOX messages for `dst_shard` with seq > after_seq, ascending.
  Result<std::vector<ExchangeLink>> ReadOutboxAfter(int32_t dst_shard,
                                                    int64_t after_seq) const;

  // Highest seq from `src_shard` this shard has durably applied (0 =
  // nothing yet).
  Result<int64_t> ExchangeWatermark(int32_t src_shard) const;
  // Upserts the watermark. Callers commit it in the same batch as the
  // admissions it covers — that atomicity is the exactly-once guarantee.
  Status SetExchangeWatermark(int32_t src_shard, int64_t seq);

  // Highest seq ever assigned by AppendOutbox (0 when empty).
  int64_t outbox_tail_seq() const { return next_outbox_seq_ - 1; }

  sql::Table* crawl_table() const { return crawl_; }
  sql::Table* link_table() const { return link_; }
  sql::Table* breaker_table() const { return breaker_; }

  uint64_t num_urls() const { return crawl_->num_rows(); }
  uint64_t num_links() const { return link_->num_rows(); }

  static CrawlRecord RecordFromTuple(const sql::Tuple& t);

 private:
  CrawlDb() = default;

  Result<storage::Rid> RidOf(uint64_t oid) const;

  sql::Catalog* catalog_ = nullptr;
  storage::WalDiskManager* wal_ = nullptr;
  sql::Table* crawl_ = nullptr;
  sql::Table* link_ = nullptr;
  sql::Table* breaker_ = nullptr;
  sql::Table* outbox_ = nullptr;  // null until EnableExchange/reattach
  sql::Table* xwmark_ = nullptr;
  int64_t next_outbox_seq_ = 1;   // restored from max(OUTBOX.seq) on Open
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_CRAWL_DB_H_
