// Crawl provenance: the event log as a relation, plus discovery-path
// reconstruction.
//
// The paper's thesis is that a crawler should be "a database application";
// this file extends that to the crawler's *history*. MaterializeEvents
// turns the in-memory event ring into an EVENTS table
//
//   EVENTS(seq:int64, type:int32, oid:int64, parent_oid:int64, sid:int32,
//          virtual_us:int64, value:double, aux:int64)
//
// queryable by all three executor engines, and DiscoveryEdges is the
// canned §3.7-style monitoring query over it: join frontier-admit events
// with LINK to recover, for every URL, the edge that discovered it and
// the priority it entered at. DiscoveryPath composes those facts into the
// full seed → ... → URL story (attempts, fault classes, retries, breaker
// denials per hop) — including for crawls resumed after a crash, where
// admits are reconciled from the WAL-recovered tables.
#ifndef FOCUS_CRAWL_PROVENANCE_H_
#define FOCUS_CRAWL_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crawl/crawl_db.h"
#include "obs/event_log.h"
#include "sql/catalog.h"
#include "sql/exec/operator.h"
#include "util/status.h"

namespace focus::obs {
class AdminServer;
}  // namespace focus::obs

namespace focus::crawl {

class Crawler;

// The EVENTS relation's schema (column order above).
sql::Schema EventsSchema();

// Materializes a snapshot of `log` into table `name` in `catalog`,
// dropping any previous materialization. Rows are inserted in sequence
// order, so a heap scan replays the crawl's history.
Result<sql::Table*> MaterializeEvents(const obs::EventLog& log,
                                      sql::Catalog* catalog,
                                      const std::string& name = "EVENTS",
                                      const obs::EventFilter& filter = {});

// The canned provenance query, runnable on any engine (results are
// bit-identical across kScalar / kVectorized / kParallel):
//
//   select E.seq, E.oid, E.parent_oid, E.value, L.wgt_fwd
//   from EVENTS E, LINK L
//   where E.type = 0 /* frontier_admit */ and E.parent_oid <> -1
//     and L.oid_src = E.parent_oid and L.oid_dst = E.oid
//   order by E.seq
//
// (oids are full-range 64-bit hashes stored as int64, so "no parent" is
// the exact sentinel -1, never a sign test.)
//
// Each row certifies one discovery: the admit event's claimed parent is
// backed by a LINK edge. `num_threads` only applies to kParallel.
Result<std::vector<sql::Tuple>> DiscoveryEdges(const sql::Table* events,
                                               const sql::Table* link,
                                               sql::ExecEngine engine,
                                               int num_threads = 4);

// One hop of a discovery path, root (seed) first.
struct DiscoveryHop {
  int64_t oid = -1;
  int64_t parent_oid = -1;  // -1: this hop is a seed
  std::string url;
  uint64_t admit_seq = 0;   // the admit event's global sequence number
  double priority = 0.0;    // frontier priority at admit time
  // Admit device: 0 = outlink, 1 = §3.2 URL truncation, 2 = §3.2
  // backward crawling.
  int64_t device = 0;
  bool reconciled = false;  // admit synthesized from recovered tables
  // Lifecycle facts accumulated over the hop's whole history.
  int attempts = 0;
  int failures = 0;   // with fault classes in `failure_classes`
  int retries = 0;
  int breaker_denials = 0;
  std::vector<int64_t> failure_classes;  // FailureClass per failure event
  bool visited = false;
  double relevance = 0.0;  // classify verdict (or stored estimate)
};

// Walks `target_oid` back to its seed through first-admit parent edges
// and annotates every hop from the event history. NotFound when the log
// holds no admit event for the target.
Result<std::vector<DiscoveryHop>> DiscoveryPath(const obs::EventLog& log,
                                                const CrawlDb& db,
                                                uint64_t target_oid);

// Human-readable rendering, one line per hop.
std::string FormatDiscoveryPath(const std::vector<DiscoveryHop>& path);

// Registers the crawl-layer admin routes on `server`:
//   /frontier  per-shard {live, parked, next_ready_us} plus every
//              breaker's state, as JSON.
// `crawler` must outlive the server's accept thread.
void RegisterCrawlAdminEndpoints(obs::AdminServer* server, Crawler* crawler);

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_PROVENANCE_H_
