#include "crawl/crawl_db.h"

#include <algorithm>

#include "util/hash.h"
#include "util/string_util.h"

namespace focus::crawl {

using sql::IndexSpec;
using sql::Schema;
using sql::Tuple;
using sql::TypeId;
using sql::Value;

int32_t ServerIdOf(std::string_view url) {
  size_t start = 0;
  if (auto pos = url.find("://"); pos != std::string_view::npos) {
    start = pos + 3;
  }
  size_t end = url.find('/', start);
  std::string_view host = url.substr(
      start, end == std::string_view::npos ? url.size() - start
                                           : end - start);
  // Keep it non-negative so it packs into index keys if ever needed.
  return static_cast<int32_t>(Fnv1a32(host) & 0x7FFFFFFF);
}

std::string TruncateToHostRoot(std::string_view url) {
  size_t start = 0;
  if (auto pos = url.find("://"); pos != std::string_view::npos) {
    start = pos + 3;
  }
  size_t slash = url.find('/', start);
  if (slash == std::string_view::npos) return std::string(url) + "/";
  return std::string(url.substr(0, slash + 1));
}

namespace {
// Schema declarations shared by Create (fresh tables) and Open (reattach
// after recovery): the layout blob persists storage positions only, the
// application re-declares shapes.
Schema CrawlSchema() {
  return Schema({{"oid", TypeId::kInt64},
                 {"url", TypeId::kString},
                 {"sid", TypeId::kInt32},
                 {"numtries", TypeId::kInt32},
                 {"relevance", TypeId::kDouble},
                 {"serverload", TypeId::kInt32},
                 {"lastvisited", TypeId::kInt64},
                 {"kcid", TypeId::kInt32},
                 {"visited", TypeId::kInt32},
                 {"nextretry", TypeId::kInt64}});
}
std::vector<IndexSpec> CrawlIndexes() {
  return {IndexSpec{"by_oid", {0}, {}}};
}
Schema LinkSchema() {
  return Schema({{"oid_src", TypeId::kInt64},
                 {"sid_src", TypeId::kInt32},
                 {"oid_dst", TypeId::kInt64},
                 {"sid_dst", TypeId::kInt32},
                 {"wgt_fwd", TypeId::kDouble},
                 {"wgt_rev", TypeId::kDouble}});
}
std::vector<IndexSpec> LinkIndexes() {
  return {IndexSpec{"by_src", {0}, {}}, IndexSpec{"by_dst", {2}, {}}};
}
Schema BreakerSchema() {
  return Schema({{"sid", TypeId::kInt32},
                 {"state", TypeId::kInt32},
                 {"failures", TypeId::kInt32},
                 {"open_until", TypeId::kInt64},
                 {"cooldown", TypeId::kDouble}});
}
std::vector<IndexSpec> BreakerIndexes() {
  return {IndexSpec{"by_sid", {0}, {}}};
}
Schema OutboxSchema() {
  return Schema({{"seq", TypeId::kInt64},
                 {"dst_shard", TypeId::kInt32},
                 {"src_oid", TypeId::kInt64},
                 {"dst_url", TypeId::kString},
                 {"relevance", TypeId::kDouble},
                 {"raise", TypeId::kInt32}});
}
std::vector<IndexSpec> OutboxIndexes() {
  return {IndexSpec{"by_seq", {0}, {}}};
}
Schema XwmarkSchema() {
  return Schema(
      {{"src_shard", TypeId::kInt32}, {"applied_seq", TypeId::kInt64}});
}
std::vector<IndexSpec> XwmarkIndexes() {
  return {IndexSpec{"by_src", {0}, {}}};
}
}  // namespace

Result<CrawlDb> CrawlDb::Create(sql::Catalog* catalog) {
  CrawlDb db;
  db.catalog_ = catalog;
  FOCUS_ASSIGN_OR_RETURN(
      db.crawl_,
      catalog->CreateTable("CRAWL", CrawlSchema(), CrawlIndexes()));
  FOCUS_ASSIGN_OR_RETURN(
      db.link_, catalog->CreateTable("LINK", LinkSchema(), LinkIndexes()));
  FOCUS_ASSIGN_OR_RETURN(
      db.breaker_,
      catalog->CreateTable("BREAKER", BreakerSchema(), BreakerIndexes()));
  return db;
}

Result<CrawlDb> CrawlDb::Open(sql::Catalog* catalog,
                              storage::WalDiskManager* wal) {
  const std::string& meta = wal->recovered_metadata();
  std::map<std::string, sql::TableLayout> layouts;
  if (!meta.empty()) {
    FOCUS_ASSIGN_OR_RETURN(layouts, sql::Catalog::ParseLayouts(meta));
  }
  bool have_tables = layouts.contains("CRAWL") && layouts.contains("LINK") &&
                     layouts.contains("BREAKER");
  if (!have_tables) {
    if (!layouts.empty()) {
      return Status::IOError(
          "recovered metadata is missing crawl tables (partial catalog)");
    }
    // Fresh store: nothing was ever committed.
    FOCUS_ASSIGN_OR_RETURN(CrawlDb db, Create(catalog));
    db.wal_ = wal;
    return db;
  }
  CrawlDb db;
  db.catalog_ = catalog;
  db.wal_ = wal;
  FOCUS_ASSIGN_OR_RETURN(
      db.crawl_, catalog->AttachTable("CRAWL", CrawlSchema(), CrawlIndexes(),
                                      layouts.at("CRAWL")));
  FOCUS_ASSIGN_OR_RETURN(
      db.link_, catalog->AttachTable("LINK", LinkSchema(), LinkIndexes(),
                                     layouts.at("LINK")));
  FOCUS_ASSIGN_OR_RETURN(
      db.breaker_,
      catalog->AttachTable("BREAKER", BreakerSchema(), BreakerIndexes(),
                           layouts.at("BREAKER")));
  if (layouts.contains("OUTBOX") && layouts.contains("XWMARK")) {
    FOCUS_ASSIGN_OR_RETURN(
        db.outbox_, catalog->AttachTable("OUTBOX", OutboxSchema(),
                                         OutboxIndexes(),
                                         layouts.at("OUTBOX")));
    FOCUS_ASSIGN_OR_RETURN(
        db.xwmark_, catalog->AttachTable("XWMARK", XwmarkSchema(),
                                         XwmarkIndexes(),
                                         layouts.at("XWMARK")));
    // The next seq resumes past the highest durable one, so replayed
    // crawls keep the sequence monotone.
    auto it = db.outbox_->Scan();
    storage::Rid rid;
    Tuple row;
    int64_t max_seq = 0;
    while (it.Next(&rid, &row)) {
      max_seq = std::max(max_seq, row.Get(0).AsInt64());
    }
    FOCUS_RETURN_IF_ERROR(it.status());
    db.next_outbox_seq_ = max_seq + 1;
  }
  return db;
}

Status CrawlDb::EnableExchange() {
  if (outbox_ != nullptr) return Status::OK();
  FOCUS_ASSIGN_OR_RETURN(
      outbox_,
      catalog_->CreateTable("OUTBOX", OutboxSchema(), OutboxIndexes()));
  FOCUS_ASSIGN_OR_RETURN(
      xwmark_,
      catalog_->CreateTable("XWMARK", XwmarkSchema(), XwmarkIndexes()));
  return Status::OK();
}

Status CrawlDb::AppendOutbox(int32_t dst_shard, uint64_t src_oid,
                             std::string_view dst_url, double relevance,
                             bool raise_if_known) {
  if (outbox_ == nullptr) {
    return Status::InvalidArgument("exchange tables not enabled");
  }
  int64_t seq = next_outbox_seq_;
  FOCUS_RETURN_IF_ERROR(
      outbox_
          ->Insert(Tuple({Value::Int64(seq), Value::Int32(dst_shard),
                          Value::Int64(static_cast<int64_t>(src_oid)),
                          Value::Str(std::string(dst_url)),
                          Value::Double(relevance),
                          Value::Int32(raise_if_known ? 1 : 0)}))
          .status());
  next_outbox_seq_ = seq + 1;
  return Status::OK();
}

Result<std::vector<ExchangeLink>> CrawlDb::ReadOutboxAfter(
    int32_t dst_shard, int64_t after_seq) const {
  if (outbox_ == nullptr) {
    return Status::InvalidArgument("exchange tables not enabled");
  }
  std::vector<ExchangeLink> out;
  auto it = outbox_->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    if (row.Get(1).AsInt32() != dst_shard) continue;
    if (row.Get(0).AsInt64() <= after_seq) continue;
    ExchangeLink msg;
    msg.seq = row.Get(0).AsInt64();
    msg.dst_shard = dst_shard;
    msg.src_oid = static_cast<uint64_t>(row.Get(2).AsInt64());
    msg.dst_url = row.Get(3).AsString();
    msg.relevance = row.Get(4).AsDouble();
    msg.raise_if_known = row.Get(5).AsInt32() != 0;
    out.push_back(std::move(msg));
  }
  FOCUS_RETURN_IF_ERROR(it.status());
  std::sort(out.begin(), out.end(),
            [](const ExchangeLink& a, const ExchangeLink& b) {
              return a.seq < b.seq;
            });
  return out;
}

Result<int64_t> CrawlDb::ExchangeWatermark(int32_t src_shard) const {
  if (xwmark_ == nullptr) {
    return Status::InvalidArgument("exchange tables not enabled");
  }
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(
      xwmark_->IndexLookup(0, {Value::Int32(src_shard)}, &rids));
  if (rids.empty()) return int64_t{0};
  Tuple row;
  FOCUS_RETURN_IF_ERROR(xwmark_->Get(rids[0], &row));
  return row.Get(1).AsInt64();
}

Status CrawlDb::SetExchangeWatermark(int32_t src_shard, int64_t seq) {
  if (xwmark_ == nullptr) {
    return Status::InvalidArgument("exchange tables not enabled");
  }
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(
      xwmark_->IndexLookup(0, {Value::Int32(src_shard)}, &rids));
  Tuple row({Value::Int32(src_shard), Value::Int64(seq)});
  if (rids.empty()) return xwmark_->Insert(row).status();
  return xwmark_->Update(rids[0], row);
}

Status CrawlDb::Commit() {
  if (wal_ == nullptr) return Status::OK();
  // Flush-order discipline: dirty pages land in the WAL overlay first,
  // then the group commit logs + syncs them with the catalog layouts.
  FOCUS_RETURN_IF_ERROR(catalog_->buffer_pool()->FlushAll());
  return wal_->Commit(catalog_->SerializeLayouts());
}

Status CrawlDb::Checkpoint() {
  if (wal_ == nullptr) return Status::OK();
  FOCUS_RETURN_IF_ERROR(catalog_->buffer_pool()->FlushAll());
  return wal_->Checkpoint(catalog_->SerializeLayouts());
}

Result<storage::Rid> CrawlDb::RidOf(uint64_t oid) const {
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(crawl_->IndexLookup(
      0, {Value::Int64(static_cast<int64_t>(oid))}, &rids));
  if (rids.empty()) {
    return Status::NotFound(StrCat("oid ", oid, " not in CRAWL"));
  }
  return rids[0];
}

Status CrawlDb::AddUrl(std::string_view url, double relevance_estimate,
                       int32_t serverload) {
  uint64_t oid = UrlOid(url);
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(crawl_->IndexLookup(
      0, {Value::Int64(static_cast<int64_t>(oid))}, &rids));
  if (!rids.empty()) {
    return Status::AlreadyExists(StrCat("url ", url));
  }
  return crawl_
      ->Insert(Tuple({Value::Int64(static_cast<int64_t>(oid)),
                      Value::Str(std::string(url)),
                      Value::Int32(ServerIdOf(url)), Value::Int32(0),
                      Value::Double(relevance_estimate),
                      Value::Int32(serverload), Value::Int64(0),
                      Value::Int32(-1), Value::Int32(0), Value::Int64(0)}))
      .status();
}

Status CrawlDb::RecordAttempt(uint64_t oid) {
  FOCUS_ASSIGN_OR_RETURN(storage::Rid rid, RidOf(oid));
  Tuple row;
  FOCUS_RETURN_IF_ERROR(crawl_->Get(rid, &row));
  row.Mutable(3) = Value::Int32(row.Get(3).AsInt32() + 1);
  return crawl_->Update(rid, row);
}

Status CrawlDb::RecordFailure(uint64_t oid, int32_t cost,
                              int64_t next_retry_us) {
  FOCUS_ASSIGN_OR_RETURN(storage::Rid rid, RidOf(oid));
  Tuple row;
  FOCUS_RETURN_IF_ERROR(crawl_->Get(rid, &row));
  row.Mutable(3) = Value::Int32(row.Get(3).AsInt32() + cost);
  row.Mutable(9) = Value::Int64(next_retry_us);
  return crawl_->Update(rid, row);
}

Status CrawlDb::RecordVisit(uint64_t oid, double relevance, int32_t kcid,
                            int64_t lastvisited) {
  FOCUS_ASSIGN_OR_RETURN(storage::Rid rid, RidOf(oid));
  Tuple row;
  FOCUS_RETURN_IF_ERROR(crawl_->Get(rid, &row));
  row.Mutable(4) = Value::Double(relevance);
  row.Mutable(6) = Value::Int64(lastvisited);
  row.Mutable(7) = Value::Int32(kcid);
  row.Mutable(8) = Value::Int32(1);
  row.Mutable(9) = Value::Int64(0);  // visit clears any pending retry
  return crawl_->Update(rid, row);
}

Status CrawlDb::RaiseRelevance(uint64_t oid, double relevance) {
  FOCUS_ASSIGN_OR_RETURN(storage::Rid rid, RidOf(oid));
  Tuple row;
  FOCUS_RETURN_IF_ERROR(crawl_->Get(rid, &row));
  if (row.Get(8).AsInt32() != 0) return Status::OK();  // already visited
  if (row.Get(4).AsDouble() >= relevance) return Status::OK();
  row.Mutable(4) = Value::Double(relevance);
  return crawl_->Update(rid, row);
}

Status CrawlDb::AddLink(std::string_view src_url, std::string_view dst_url) {
  return link_
      ->Insert(Tuple({Value::Int64(static_cast<int64_t>(UrlOid(src_url))),
                      Value::Int32(ServerIdOf(src_url)),
                      Value::Int64(static_cast<int64_t>(UrlOid(dst_url))),
                      Value::Int32(ServerIdOf(dst_url)), Value::Double(0),
                      Value::Double(0)}))
      .status();
}

Status CrawlDb::RefreshEdgeWeights() {
  auto relevance_of = [this](int64_t oid) -> Result<double> {
    std::vector<storage::Rid> rids;
    FOCUS_RETURN_IF_ERROR(crawl_->IndexLookup(0, {Value::Int64(oid)}, &rids));
    if (rids.empty()) return 0.0;
    Tuple row;
    FOCUS_RETURN_IF_ERROR(crawl_->Get(rids[0], &row));
    return row.Get(4).AsDouble();
  };
  auto it = link_->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    FOCUS_ASSIGN_OR_RETURN(double r_dst, relevance_of(row.Get(2).AsInt64()));
    FOCUS_ASSIGN_OR_RETURN(double r_src, relevance_of(row.Get(0).AsInt64()));
    row.Mutable(4) = Value::Double(r_dst);
    row.Mutable(5) = Value::Double(r_src);
    FOCUS_RETURN_IF_ERROR(link_->Update(rid, row));
  }
  return it.status();
}

CrawlRecord CrawlDb::RecordFromTuple(const Tuple& t) {
  CrawlRecord r;
  r.oid = static_cast<uint64_t>(t.Get(0).AsInt64());
  r.url = t.Get(1).AsString();
  r.sid = t.Get(2).AsInt32();
  r.numtries = t.Get(3).AsInt32();
  r.relevance = t.Get(4).AsDouble();
  r.serverload = t.Get(5).AsInt32();
  r.lastvisited = t.Get(6).AsInt64();
  r.kcid = t.Get(7).AsInt32();
  r.visited = t.Get(8).AsInt32() != 0;
  r.next_retry_us = t.Get(9).AsInt64();
  return r;
}

Result<std::optional<CrawlRecord>> CrawlDb::Lookup(uint64_t oid) const {
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(crawl_->IndexLookup(
      0, {Value::Int64(static_cast<int64_t>(oid))}, &rids));
  if (rids.empty()) return std::optional<CrawlRecord>{};
  Tuple row;
  FOCUS_RETURN_IF_ERROR(crawl_->Get(rids[0], &row));
  return std::optional<CrawlRecord>(RecordFromTuple(row));
}

Result<CrawlRecord> CrawlDb::LookupByUrl(std::string_view url) const {
  FOCUS_ASSIGN_OR_RETURN(std::optional<CrawlRecord> rec,
                         Lookup(UrlOid(url)));
  if (!rec.has_value()) {
    return Status::NotFound(StrCat("url ", url, " not in CRAWL"));
  }
  return *rec;
}

Status CrawlDb::UpsertBreaker(const BreakerRecord& rec) {
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(
      breaker_->IndexLookup(0, {Value::Int32(rec.sid)}, &rids));
  Tuple row({Value::Int32(rec.sid),
             Value::Int32(static_cast<int32_t>(rec.state)),
             Value::Int32(rec.consecutive_failures),
             Value::Int64(rec.open_until_us), Value::Double(rec.cooldown_s)});
  if (rids.empty()) return breaker_->Insert(row).status();
  return breaker_->Update(rids[0], row);
}

Result<std::vector<BreakerRecord>> CrawlDb::LoadBreakers() const {
  std::vector<BreakerRecord> out;
  auto it = breaker_->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    BreakerRecord rec;
    rec.sid = row.Get(0).AsInt32();
    rec.state = static_cast<BreakerState>(row.Get(1).AsInt32());
    rec.consecutive_failures = row.Get(2).AsInt32();
    rec.open_until_us = row.Get(3).AsInt64();
    rec.cooldown_s = row.Get(4).AsDouble();
    out.push_back(rec);
  }
  FOCUS_RETURN_IF_ERROR(it.status());
  return out;
}

}  // namespace focus::crawl
