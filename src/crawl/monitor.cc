#include "crawl/monitor.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "sql/exec/aggregate.h"
#include "sql/exec/basic.h"
#include "sql/exec/operator.h"
#include "sql/exec/scan.h"
#include "sql/exec/sort.h"
#include "util/string_util.h"

namespace focus::crawl {

using sql::AggKind;
using sql::AggSpec;
using sql::Collect;
using sql::Filter;
using sql::HashAggregate;
using sql::OperatorPtr;
using sql::ProjExpr;
using sql::Project;
using sql::SeqScan;
using sql::Sort;
using sql::SortKey;
using sql::Tuple;
using sql::TypeId;
using sql::Value;

namespace {

std::string Ms(uint64_t micros) {
  return StrCat(micros / 1000, ".", (micros % 1000) / 100, "ms");
}

std::string Fixed(double v, int places) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", places, v);
  return buf;
}

}  // namespace

std::string FormatStageMetrics(const StageMetricsSnapshot& s) {
  double steal_rate =
      s.frontier_pops == 0
          ? 0.0
          : static_cast<double>(s.frontier_steals) / s.frontier_pops;
  std::string out;
  out += StrCat("stage time   fetch=", Ms(s.fetch_micros),
                " classify=", Ms(s.classify_micros),
                " expand=", Ms(s.expand_micros),
                " lock_wait=", Ms(s.lock_wait_micros), "\n");
  out += StrCat("classify     batches=", s.batches,
                " pages=", s.batched_pages,
                " occupancy=", Fixed(s.AvgBatchOccupancy(), 2), "\n");
  out += StrCat("frontier     pops=", s.frontier_pops,
                " steals=", s.frontier_steals,
                " steal_rate=", Fixed(steal_rate, 3), "\n");
  out += StrCat("faults       failures=", s.fetch_failures,
                " retries=", s.retries, " dropped=", s.dropped_urls,
                " breaker_skips=", s.breaker_skips,
                " breaker_opens=", s.breaker_opens, "\n");
  return out;
}

Result<std::vector<CensusRow>> ClassCensus(const CrawlDb& db,
                                           const taxonomy::Taxonomy& tax) {
  // select kcid, count(*) from CRAWL where visited = 1 and kcid >= 0
  // group by kcid order by cnt
  OperatorPtr visited = std::make_unique<Filter>(
      std::make_unique<SeqScan>(db.crawl_table()), [](const Tuple& t) {
        return t.Get(8).AsInt32() != 0 && t.Get(7).AsInt32() >= 0;
      });
  OperatorPtr agg = std::make_unique<HashAggregate>(
      std::move(visited), std::vector<int>{7},
      std::vector<AggSpec>{AggSpec{AggKind::kCount, -1, "cnt"}});
  Sort ordered(std::move(agg), {{1, false}, {0, false}});
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Collect(&ordered));
  std::vector<CensusRow> out;
  out.reserve(rows.size());
  for (const Tuple& row : rows) {
    CensusRow census;
    census.kcid = static_cast<taxonomy::Cid>(row.Get(0).AsInt32());
    census.count = row.Get(1).AsInt64();
    census.name = tax.IsValidCid(census.kcid) ? tax.Name(census.kcid)
                                              : "<unknown>";
    out.push_back(std::move(census));
  }
  return out;
}

Result<std::vector<MinuteHarvest>> HarvestByMinute(const CrawlDb& db) {
  OperatorPtr visited = std::make_unique<Filter>(
      std::make_unique<SeqScan>(db.crawl_table()),
      [](const Tuple& t) { return t.Get(8).AsInt32() != 0; });
  OperatorPtr with_minute = std::make_unique<Project>(
      std::move(visited),
      std::vector<ProjExpr>{
          ProjExpr{"minute", TypeId::kInt64,
                   [](const Tuple& t) {
                     return Value::Int64(t.Get(6).AsInt64() / 60000000);
                   }},
          ProjExpr{"relevance", TypeId::kDouble,
                   [](const Tuple& t) { return t.Get(4); }}});
  OperatorPtr agg = std::make_unique<HashAggregate>(
      std::move(with_minute), std::vector<int>{0},
      std::vector<AggSpec>{AggSpec{AggKind::kAvg, 1, "avg_rel"},
                           AggSpec{AggKind::kCount, -1, "pages"}});
  Sort ordered(std::move(agg), {{0, false}});
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Collect(&ordered));
  std::vector<MinuteHarvest> out;
  out.reserve(rows.size());
  for (const Tuple& row : rows) {
    out.push_back(MinuteHarvest{row.Get(0).AsInt64(), row.Get(1).AsDouble(),
                                row.Get(2).AsInt64()});
  }
  return out;
}

Result<std::vector<CrawlRecord>> MissedHubNeighbors(const CrawlDb& db,
                                                    const sql::Table* hubs,
                                                    double percentile) {
  // psi = the `percentile` quantile of HUBS.score.
  std::vector<double> scores;
  {
    auto it = hubs->Scan();
    storage::Rid rid;
    Tuple row;
    while (it.Next(&rid, &row)) scores.push_back(row.Get(1).AsDouble());
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  if (scores.empty()) return std::vector<CrawlRecord>{};
  std::sort(scores.begin(), scores.end());
  double psi = scores[std::min(scores.size() - 1,
                               static_cast<size_t>(percentile *
                                                   scores.size()))];

  // Top hub oids.
  std::unordered_set<int64_t> top_hubs;
  {
    auto it = hubs->Scan();
    storage::Rid rid;
    Tuple row;
    while (it.Next(&rid, &row)) {
      if (row.Get(1).AsDouble() > psi) top_hubs.insert(row.Get(0).AsInt64());
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }

  // select url, relevance from CRAWL where oid in (select oid_dst from LINK
  // where oid_src in top_hubs and sid_src <> sid_dst) and numtries = 0
  std::unordered_set<int64_t> candidates;
  {
    auto it = db.link_table()->Scan();
    storage::Rid rid;
    Tuple row;
    while (it.Next(&rid, &row)) {
      if (!top_hubs.contains(row.Get(0).AsInt64())) continue;
      if (row.Get(1).AsInt32() == row.Get(3).AsInt32()) continue;
      candidates.insert(row.Get(2).AsInt64());
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  std::vector<CrawlRecord> out;
  {
    auto it = db.crawl_table()->Scan();
    storage::Rid rid;
    Tuple row;
    while (it.Next(&rid, &row)) {
      if (row.Get(8).AsInt32() != 0) continue;  // unvisited only
      if (row.Get(3).AsInt32() != 0) continue;  // never attempted
      if (!candidates.contains(row.Get(0).AsInt64())) continue;
      out.push_back(CrawlDb::RecordFromTuple(row));
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  std::sort(out.begin(), out.end(),
            [](const CrawlRecord& a, const CrawlRecord& b) {
              if (a.relevance != b.relevance) {
                return a.relevance > b.relevance;
              }
              return a.url < b.url;
            });
  return out;
}

}  // namespace focus::crawl
