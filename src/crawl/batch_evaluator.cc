#include "crawl/batch_evaluator.h"

#include "classify/db_tables.h"
#include "util/string_util.h"

namespace focus::crawl {

PageJudgment BatchRelevanceEvaluator::FromScores(
    const classify::ClassScores& scores) const {
  const taxonomy::Taxonomy& tax = ref_->tax();
  PageJudgment j;
  j.relevance = scores.Relevance(tax);
  j.best_leaf = scores.BestLeaf(tax);
  j.best_leaf_is_good = tax.IsGoodOrSubsumed(j.best_leaf);
  return j;
}

Result<PageJudgment> BatchRelevanceEvaluator::Judge(
    const text::TermVector& terms) {
  return FromScores(ref_->Classify(terms));
}

Result<std::vector<PageJudgment>> BatchRelevanceEvaluator::JudgeBatch(
    const std::vector<text::TermVector>& docs) {
  return JudgeBatchImpl(docs, nullptr);
}

Result<std::vector<PageJudgment>> BatchRelevanceEvaluator::JudgeBatchWithPlan(
    const std::vector<text::TermVector>& docs, sql::PlanStats* plan) {
  return JudgeBatchImpl(docs, plan);
}

Result<std::vector<PageJudgment>> BatchRelevanceEvaluator::JudgeBatchImpl(
    const std::vector<text::TermVector>& docs, sql::PlanStats* plan) {
  if (docs.empty()) return std::vector<PageJudgment>{};
  if (docs.size() == 1) {
    // A relational plan over one document is all fixed cost; use the
    // in-memory path (identical scores).
    FOCUS_ASSIGN_OR_RETURN(PageJudgment j, Judge(docs[0]));
    return std::vector<PageJudgment>{j};
  }

  std::lock_guard<std::mutex> lock(mutex_);
  std::string table_name = StrCat("DOCUMENT_BATCH_", next_batch_++);
  FOCUS_ASSIGN_OR_RETURN(sql::Table * document,
                         classify::CreateDocumentTable(scratch_, table_name));
  Status status = Status::OK();
  // dids are 1-based batch positions, so scores map back by index.
  for (size_t i = 0; i < docs.size() && status.ok(); ++i) {
    status = classify::InsertDocument(document, i + 1, docs[i]);
  }
  std::vector<PageJudgment> out;
  if (status.ok()) {
    auto scored = plan == nullptr ? bulk_->ClassifyAll(document)
                                  : bulk_->ClassifyWithPlan(document, plan);
    if (scored.ok()) {
      out.reserve(docs.size());
      for (size_t i = 0; i < docs.size(); ++i) {
        auto it = scored.value().find(i + 1);
        // An empty term vector materializes no DOCUMENT rows, so the plan
        // never sees its did; the in-memory path scores it identically
        // (priors only).
        out.push_back(it == scored.value().end()
                          ? FromScores(ref_->Classify(docs[i]))
                          : FromScores(it->second));
      }
    } else {
      status = scored.status();
    }
  }
  // Drop the scratch table even on failure.
  Status drop = scratch_->DropTable(table_name);
  FOCUS_RETURN_IF_ERROR(status);
  FOCUS_RETURN_IF_ERROR(drop);
  return out;
}

}  // namespace focus::crawl
