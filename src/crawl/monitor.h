// Crawl monitoring and tweaking — the ad-hoc relational queries of §3.7,
// transcribed onto the executor.
#ifndef FOCUS_CRAWL_MONITOR_H_
#define FOCUS_CRAWL_MONITOR_H_

#include <string>
#include <vector>

#include "crawl/crawl_db.h"
#include "crawl/metrics.h"
#include "sql/table.h"
#include "taxonomy/taxonomy.h"
#include "util/status.h"

namespace focus::crawl {

// Human-readable report of the pipeline stage counters — per-stage wall
// time, lock wait, batch occupancy, and frontier steal rate. One line per
// counter group, suitable for the crawl-monitoring console.
std::string FormatStageMetrics(const StageMetricsSnapshot& s);

// One row of the stagnation-diagnosis census:
//   with CENSUS(kcid, cnt) as
//     (select kcid, count(oid) from CRAWL group by kcid)
//   select kcid, cnt, name from CENSUS, TAXONOMY ... order by cnt
struct CensusRow {
  taxonomy::Cid kcid;
  int64_t count;
  std::string name;
};

// Census over *visited* pages, ascending by count. Unclassified rows
// (kcid = -1) are skipped.
Result<std::vector<CensusRow>> ClassCensus(const CrawlDb& db,
                                           const taxonomy::Taxonomy& tax);

// The harvest-rate monitoring applet's query:
//   select minute(lastvisited), avg(relevance) from CRAWL
//   where visited group by minute order by minute
struct MinuteHarvest {
  int64_t minute;
  double avg_relevance;
  int64_t pages;
};
Result<std::vector<MinuteHarvest>> HarvestByMinute(const CrawlDb& db);

// "Possibly missed neighbors of great hubs": unvisited never-tried URLs
// cited off-server by hubs whose score exceeds the `percentile` quantile
// of HUBS.score (the paper uses the 90th).
Result<std::vector<CrawlRecord>> MissedHubNeighbors(const CrawlDb& db,
                                                    const sql::Table* hubs,
                                                    double percentile = 0.9);

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_MONITOR_H_
