// Measurement helpers behind the paper's evaluation figures.
#ifndef FOCUS_CRAWL_METRICS_H_
#define FOCUS_CRAWL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "crawl/circuit_breaker.h"
#include "crawl/crawl_db.h"
#include "crawl/crawler.h"
#include "crawl/retry_policy.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace focus::crawl {

// A plain-value copy of the pipeline stage counters, safe to read after
// (or during) a crawl.
struct StageMetricsSnapshot {
  uint64_t fetch_micros = 0;      // wall time inside the fetch stage
  uint64_t classify_micros = 0;   // wall time inside the classify stage
  uint64_t expand_micros = 0;     // wall time recording visits + expanding
  uint64_t lock_wait_micros = 0;  // time blocked on the crawl-state lock
  uint64_t batches = 0;           // classify batches submitted
  uint64_t batched_pages = 0;     // pages across those batches
  uint64_t frontier_pops = 0;     // successful frontier pops
  uint64_t frontier_steals = 0;   // pops served by a non-preferred shard
  uint64_t fetch_failures = 0;    // failed fetch attempts (all classes)
  uint64_t retries = 0;           // failures rescheduled with backoff
  uint64_t dropped_urls = 0;      // entries abandoned (404 / budget)
  uint64_t breaker_skips = 0;     // pops re-parked by an open breaker
  uint64_t breaker_opens = 0;     // transitions into the open state

  // Mean pages per classify batch (the batch-occupancy signal: low values
  // mean the fetch stage starves the classifier).
  double AvgBatchOccupancy() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_pages) / batches;
  }
};

// Per-stage counters for the concurrent crawl pipeline (fetch → classify →
// expand), backed by registry counters (focus_crawl_stage_micros_total
// {stage=...} and friends) so the same numbers appear in Prometheus/JSON
// snapshots. Updates are single relaxed fetch_adds — fetch workers never
// serialize on the crawl-state lock (or on each other) to record time.
//
// Registry counters are process-cumulative across crawlers sharing a
// registry; each StageMetrics captures a baseline at construction (and on
// Reset()) and Snapshot() reports deltas since then, preserving the
// per-crawler view the monitor/bench code expects.
class StageMetrics {
 public:
  // nullptr registry means the process-global registry.
  explicit StageMetrics(obs::MetricsRegistry* registry = nullptr);

  void AddFetchMicros(uint64_t us) { fetch_micros_->Add(us); }
  void AddClassifyMicros(uint64_t us) { classify_micros_->Add(us); }
  void AddExpandMicros(uint64_t us) { expand_micros_->Add(us); }
  void AddLockWaitMicros(uint64_t us) { lock_wait_micros_->Add(us); }
  void RecordBatch(uint64_t pages) {
    batches_->Inc();
    batched_pages_->Add(pages);
    batch_pages_hist_->Observe(pages);
  }
  // Latency of one classifier batch (also kept as a histogram so snapshots
  // report tail behaviour, not just the mean).
  void ObserveClassifyBatchMicros(uint64_t us) {
    batch_micros_hist_->Observe(us);
  }
  void RecordPop(bool stolen) {
    frontier_pops_->Inc();
    if (stolen) frontier_steals_->Inc();
  }
  void RecordFetchFailure(FailureClass cls) {
    fetch_failures_[static_cast<int>(cls)]->Inc();
  }
  // A failure rescheduled with `backoff_s` seconds of (virtual) delay.
  void RecordRetry(FailureClass cls, double backoff_s) {
    retries_[static_cast<int>(cls)]->Inc();
    backoff_ms_hist_->Observe(backoff_s * 1e3);
  }
  void RecordDrop(bool permanent) {
    (permanent ? dropped_permanent_ : dropped_exhausted_)->Inc();
  }
  void RecordBreakerTransition(BreakerState to) {
    breaker_transitions_[static_cast<int>(to)]->Inc();
  }
  void RecordBreakerSkips(uint64_t n) {
    if (n > 0) breaker_skips_->Add(n);
  }
  // Servers currently quarantined (open or half-open breakers).
  void SetOpenBreakers(double n) { open_breakers_->Set(n); }
  // Instantaneous frontier size (sampled by the record stage).
  void SetFrontierDepth(double depth) { frontier_depth_->Set(depth); }
  // One distillation round's per-iteration L1 residuals: counts the
  // iterations and keeps the final residual as a convergence gauge.
  void RecordDistillResiduals(const std::vector<double>& residuals) {
    distill_iterations_->Add(residuals.size());
    if (!residuals.empty()) distill_residual_->Set(residuals.back());
  }
  // One visited page's relevance. Maintains the paper's harvest-rate signal
  // (§3.4) live: the mean R(p) over the last `kHarvestWindow` visits,
  // exported as the focus_crawl_harvest_rate gauge. Called from the record
  // stage (already serialized on the crawl-state lock), so a small mutex
  // here is off the fetch workers' hot path.
  void RecordVisitRelevance(double r);

  // Deltas since construction (or the last Reset).
  StageMetricsSnapshot Snapshot() const;
  // Re-baselines so the next Snapshot() starts from zero.
  void Reset();

 private:
  StageMetricsSnapshot Raw() const;

  obs::Counter* fetch_micros_;
  obs::Counter* classify_micros_;
  obs::Counter* expand_micros_;
  obs::Counter* lock_wait_micros_;
  obs::Counter* batches_;
  obs::Counter* batched_pages_;
  obs::Counter* frontier_pops_;
  obs::Counter* frontier_steals_;
  obs::Gauge* frontier_depth_;
  obs::Counter* distill_iterations_;
  obs::Gauge* distill_residual_;
  obs::Histogram* batch_pages_hist_;
  obs::Histogram* batch_micros_hist_;
  // Fault-model counters, indexed by FailureClass / BreakerState.
  obs::Counter* fetch_failures_[4];
  obs::Counter* retries_[4];
  obs::Counter* dropped_permanent_;
  obs::Counter* dropped_exhausted_;
  obs::Counter* breaker_transitions_[3];
  obs::Counter* breaker_skips_;
  obs::Gauge* open_breakers_;
  obs::Histogram* backoff_ms_hist_;
  // Sliding window behind the harvest-rate gauge.
  static constexpr size_t kHarvestWindow = 256;
  obs::Gauge* harvest_rate_;
  std::mutex harvest_mu_;
  std::vector<double> harvest_ring_;
  size_t harvest_next_ = 0;
  size_t harvest_count_ = 0;
  double harvest_sum_ = 0.0;
  StageMetricsSnapshot baseline_;
};

// Harvest rate (§3.4): moving average of R(p) over a window of fetches.
// Point i covers visits [max(0, i-window+1), i].
std::vector<double> MovingAverageRelevance(const std::vector<Visit>& visits,
                                           int window);

// Coverage (§3.5): after each test-crawl fetch, the fraction of the
// reference sets already visited.
struct CoverageSeries {
  std::vector<double> url_fraction;     // of ref_urls
  std::vector<double> server_fraction;  // of ref_servers
};
CoverageSeries Coverage(const std::vector<Visit>& test_visits,
                        const std::unordered_set<uint64_t>& ref_oids,
                        const std::unordered_set<int32_t>& ref_servers);

// Relevant reference sets from a finished crawl: visited pages with
// log R(u) > log_threshold (the paper uses -1), plus their servers.
struct ReferenceSets {
  std::unordered_set<uint64_t> oids;
  std::unordered_set<int32_t> servers;
};
ReferenceSets RelevantReferenceSets(const std::vector<Visit>& visits,
                                    double log_threshold = -1.0);

// Shortest link distances within the *crawled* graph (LINK table) from
// `sources` to each of `targets`; -1 when unreachable (§3.6).
Result<std::vector<int>> CrawledGraphDistances(
    const CrawlDb& db, const std::vector<uint64_t>& sources,
    const std::vector<uint64_t>& targets);

// Bucket counts of non-negative distances: hist[d] = #targets at distance
// d (distances beyond max_distance are clamped into the last bucket).
std::vector<int> DistanceHistogram(const std::vector<int>& distances,
                                   int max_distance);

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_METRICS_H_
