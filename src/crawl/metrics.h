// Measurement helpers behind the paper's evaluation figures.
#ifndef FOCUS_CRAWL_METRICS_H_
#define FOCUS_CRAWL_METRICS_H_

#include <unordered_set>
#include <vector>

#include "crawl/crawl_db.h"
#include "crawl/crawler.h"
#include "util/status.h"

namespace focus::crawl {

// Harvest rate (§3.4): moving average of R(p) over a window of fetches.
// Point i covers visits [max(0, i-window+1), i].
std::vector<double> MovingAverageRelevance(const std::vector<Visit>& visits,
                                           int window);

// Coverage (§3.5): after each test-crawl fetch, the fraction of the
// reference sets already visited.
struct CoverageSeries {
  std::vector<double> url_fraction;     // of ref_urls
  std::vector<double> server_fraction;  // of ref_servers
};
CoverageSeries Coverage(const std::vector<Visit>& test_visits,
                        const std::unordered_set<uint64_t>& ref_oids,
                        const std::unordered_set<int32_t>& ref_servers);

// Relevant reference sets from a finished crawl: visited pages with
// log R(u) > log_threshold (the paper uses -1), plus their servers.
struct ReferenceSets {
  std::unordered_set<uint64_t> oids;
  std::unordered_set<int32_t> servers;
};
ReferenceSets RelevantReferenceSets(const std::vector<Visit>& visits,
                                    double log_threshold = -1.0);

// Shortest link distances within the *crawled* graph (LINK table) from
// `sources` to each of `targets`; -1 when unreachable (§3.6).
Result<std::vector<int>> CrawledGraphDistances(
    const CrawlDb& db, const std::vector<uint64_t>& sources,
    const std::vector<uint64_t>& targets);

// Bucket counts of non-negative distances: hist[d] = #targets at distance
// d (distances beyond max_distance are clamped into the last bucket).
std::vector<int> DistanceHistogram(const std::vector<int>& distances,
                                   int max_distance);

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_METRICS_H_
