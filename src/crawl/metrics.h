// Measurement helpers behind the paper's evaluation figures.
#ifndef FOCUS_CRAWL_METRICS_H_
#define FOCUS_CRAWL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "crawl/crawl_db.h"
#include "crawl/crawler.h"
#include "util/status.h"

namespace focus::crawl {

// A plain-value copy of the pipeline stage counters, safe to read after
// (or during) a crawl.
struct StageMetricsSnapshot {
  uint64_t fetch_micros = 0;      // wall time inside the fetch stage
  uint64_t classify_micros = 0;   // wall time inside the classify stage
  uint64_t expand_micros = 0;     // wall time recording visits + expanding
  uint64_t lock_wait_micros = 0;  // time blocked on the crawl-state lock
  uint64_t batches = 0;           // classify batches submitted
  uint64_t batched_pages = 0;     // pages across those batches
  uint64_t frontier_pops = 0;     // successful frontier pops
  uint64_t frontier_steals = 0;   // pops served by a non-preferred shard

  // Mean pages per classify batch (the batch-occupancy signal: low values
  // mean the fetch stage starves the classifier).
  double AvgBatchOccupancy() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_pages) / batches;
  }
};

// Per-stage counters for the concurrent crawl pipeline (fetch → classify →
// expand). All counters are atomic so fetch workers update them without
// taking the crawl-state lock.
class StageMetrics {
 public:
  void AddFetchMicros(uint64_t us) { fetch_micros_ += us; }
  void AddClassifyMicros(uint64_t us) { classify_micros_ += us; }
  void AddExpandMicros(uint64_t us) { expand_micros_ += us; }
  void AddLockWaitMicros(uint64_t us) { lock_wait_micros_ += us; }
  void RecordBatch(uint64_t pages) {
    ++batches_;
    batched_pages_ += pages;
  }
  void RecordPop(bool stolen) {
    ++frontier_pops_;
    if (stolen) ++frontier_steals_;
  }

  StageMetricsSnapshot Snapshot() const {
    StageMetricsSnapshot s;
    s.fetch_micros = fetch_micros_.load();
    s.classify_micros = classify_micros_.load();
    s.expand_micros = expand_micros_.load();
    s.lock_wait_micros = lock_wait_micros_.load();
    s.batches = batches_.load();
    s.batched_pages = batched_pages_.load();
    s.frontier_pops = frontier_pops_.load();
    s.frontier_steals = frontier_steals_.load();
    return s;
  }

 private:
  std::atomic<uint64_t> fetch_micros_{0};
  std::atomic<uint64_t> classify_micros_{0};
  std::atomic<uint64_t> expand_micros_{0};
  std::atomic<uint64_t> lock_wait_micros_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_pages_{0};
  std::atomic<uint64_t> frontier_pops_{0};
  std::atomic<uint64_t> frontier_steals_{0};
};

// Harvest rate (§3.4): moving average of R(p) over a window of fetches.
// Point i covers visits [max(0, i-window+1), i].
std::vector<double> MovingAverageRelevance(const std::vector<Visit>& visits,
                                           int window);

// Coverage (§3.5): after each test-crawl fetch, the fraction of the
// reference sets already visited.
struct CoverageSeries {
  std::vector<double> url_fraction;     // of ref_urls
  std::vector<double> server_fraction;  // of ref_servers
};
CoverageSeries Coverage(const std::vector<Visit>& test_visits,
                        const std::unordered_set<uint64_t>& ref_oids,
                        const std::unordered_set<int32_t>& ref_servers);

// Relevant reference sets from a finished crawl: visited pages with
// log R(u) > log_threshold (the paper uses -1), plus their servers.
struct ReferenceSets {
  std::unordered_set<uint64_t> oids;
  std::unordered_set<int32_t> servers;
};
ReferenceSets RelevantReferenceSets(const std::vector<Visit>& visits,
                                    double log_threshold = -1.0);

// Shortest link distances within the *crawled* graph (LINK table) from
// `sources` to each of `targets`; -1 when unreachable (§3.6).
Result<std::vector<int>> CrawledGraphDistances(
    const CrawlDb& db, const std::vector<uint64_t>& sources,
    const std::vector<uint64_t>& targets);

// Bucket counts of non-negative distances: hist[d] = #targets at distance
// d (distances beyond max_distance are clamped into the last bucket).
std::vector<int> DistanceHistogram(const std::vector<int>& distances,
                                   int max_distance);

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_METRICS_H_
