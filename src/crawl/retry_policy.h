// Retry classification and backoff for fetch failures (§3.1's "all
// crawlers crash" robustness requirement, applied to the hostile web).
//
// Every failed fetch is classified, charged against a per-class retry
// budget, and — when retried — scheduled with exponential backoff plus
// deterministic jitter. All decisions are pure functions of the entry and
// the failure, so identical crawls make identical drop decisions at any
// thread count; only *when* a retry lands varies with scheduling.
#ifndef FOCUS_CRAWL_RETRY_POLICY_H_
#define FOCUS_CRAWL_RETRY_POLICY_H_

#include <cstdint>

#include "crawl/frontier.h"
#include "util/status.h"

namespace focus::obs {
class EventLog;
}  // namespace focus::obs

namespace focus::crawl {

// Failure classes the fetch path can produce, mapped from Status codes.
enum class FailureClass {
  kTransient,   // 5xx-style (kUnavailable): retry with backoff, costs 1
  kTimeout,     // deadline expiry (kDeadlineExceeded): retry, counts double
  kPermanent,   // 404-style (kNotFound): drop immediately
  kServerBusy,  // scheduled outage (kResourceExhausted): retry, costs 0
};

// Stable lowercase name ("transient", "timeout", ...), used as the metric
// label.
const char* FailureClassName(FailureClass cls);

FailureClass ClassifyFetchFailure(const Status& error);

struct RetryPolicyOptions {
  double base_backoff_s = 2.0;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 120.0;
  // Fractional +/- jitter, deterministic per (oid, numtries).
  double jitter = 0.25;
  int transient_cost = 1;
  int timeout_cost = 2;  // timeouts burn budget twice as fast
};

class RetryPolicy {
 public:
  struct Decision {
    bool drop = false;
    // Added to the entry's numtries (and persisted). Drops are charged up
    // to the full budget so a resumed crawl recognizes them as exhausted.
    int cost = 0;
    int64_t ready_at_us = 0;  // not-before time when retried
    double backoff_s = 0;
  };

  // `retry_budget` is CrawlerOptions::max_retries: an entry whose numtries
  // reaches it is dropped, matching ResumeFromDb's dead-link filter.
  RetryPolicy(const RetryPolicyOptions& options, int retry_budget)
      : options_(options), retry_budget_(retry_budget) {}

  Decision Decide(const FrontierEntry& entry, FailureClass cls,
                  int64_t now_us) const;

  // Exponential backoff for an entry that has consumed `numtries` budget,
  // with +/- jitter derived from (oid, numtries) so concurrent crawlers
  // compute identical schedules.
  double BackoffSeconds(uint64_t oid, int32_t numtries) const;

  // Provenance hook: Decide() records kRetryScheduled / kUrlDropped
  // events. The decision itself stays a pure function of its inputs.
  void SetEventLog(obs::EventLog* log) { event_log_ = log; }

 private:
  RetryPolicyOptions options_;
  int retry_budget_;
  obs::EventLog* event_log_ = nullptr;
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_RETRY_POLICY_H_
