#include "crawl/crawler.h"

#include <algorithm>

#include "distill/join_distiller.h"
#include "distill/pagerank.h"

#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace focus::crawl {

Crawler::Crawler(webgraph::SimulatedWeb* web, RelevanceEvaluator* evaluator,
                 CrawlDb* db, sql::Catalog* catalog, CrawlerOptions options)
    : web_(web),
      evaluator_(evaluator),
      db_(db),
      options_(options),
      frontier_(options.policy),
      catalog_(catalog) {}

Status Crawler::AddSeed(std::string_view url) {
  std::lock_guard<std::mutex> lock(mutex_);
  Status s = db_->AddUrl(url, /*relevance_estimate=*/1.0, /*serverload=*/0);
  if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  FrontierEntry entry;
  entry.oid = UrlOid(url);
  entry.url = std::string(url);
  entry.relevance = 1.0;
  frontier_.AddOrUpdate(entry);
  return Status::OK();
}

Result<bool> Crawler::Step() {
  webgraph::SimulatedWeb::FetchResult fetch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<int>(visits_.size()) + in_flight_ >=
        options_.max_fetches) {
      return false;
    }
    std::optional<FrontierEntry> entry = frontier_.PopBest();
    if (!entry.has_value()) {
      stats_.stagnated = true;
      return false;
    }
    ++stats_.attempts;
    FOCUS_RETURN_IF_ERROR(db_->RecordAttempt(entry->oid));
    auto fetched = web_->Fetch(entry->url, &clock_);
    if (!fetched.ok()) {
      ++stats_.failures;
      // 404s are permanent (truncated guesses often miss); transient
      // failures are retried up to the limit.
      if (fetched.status().code() != StatusCode::kNotFound &&
          entry->numtries + 1 < options_.max_retries) {
        FrontierEntry retry = *entry;
        ++retry.numtries;
        retry.serverload = server_fetches_[ServerIdOf(retry.url)];
        frontier_.AddOrUpdate(retry);
      }
      return true;
    }
    fetch = fetched.TakeValue();
    ++in_flight_;
  }

  // Classification runs outside the lock (the CPU-heavy part; the paper
  // runs ~30 fetch threads against one classifier).
  text::TermVector terms = text::BuildTermVector(fetch.tokens);
  FOCUS_ASSIGN_OR_RETURN(PageJudgment judgment, evaluator_->Judge(terms));

  std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  uint64_t oid = UrlOid(fetch.url);
  FOCUS_RETURN_IF_ERROR(db_->RecordVisit(oid, judgment.relevance,
                                         judgment.best_leaf,
                                         clock_.NowMicros()));
  ++server_fetches_[fetch.server_id];
  Visit visit;
  visit.fetch_index = static_cast<int>(visits_.size());
  visit.oid = oid;
  visit.url = fetch.url;
  visit.relevance = judgment.relevance;
  visit.best_leaf = judgment.best_leaf;
  visit.virtual_time_us = clock_.NowMicros();
  visits_.push_back(visit);

  FOCUS_RETURN_IF_ERROR(ExpandLinks(fetch, judgment));

  if (options_.expand_backlinks &&
      judgment.relevance > options_.backlink_relevance_threshold) {
    // Pages pointing to a relevant page are likely hubs (radius-2 rule).
    FOCUS_ASSIGN_OR_RETURN(
        std::vector<std::string> citers,
        web_->Backlinks(fetch.url, options_.backlinks_per_page));
    for (const std::string& citer : citers) {
      uint64_t citer_oid = UrlOid(citer);
      FOCUS_ASSIGN_OR_RETURN(std::optional<CrawlRecord> known,
                             db_->Lookup(citer_oid));
      if (known.has_value()) continue;
      FOCUS_RETURN_IF_ERROR(
          db_->AddUrl(citer, judgment.relevance,
                      server_fetches_[ServerIdOf(citer)]));
      FrontierEntry entry;
      entry.oid = citer_oid;
      entry.url = citer;
      entry.relevance = judgment.relevance;
      entry.serverload = server_fetches_[ServerIdOf(citer)];
      frontier_.AddOrUpdate(entry);
    }
  }

  if (options_.distill_every > 0 &&
      visits_.size() % options_.distill_every == 0) {
    FOCUS_RETURN_IF_ERROR(RunDistillationBoost());
  }
  if (options_.policy == PriorityPolicy::kPageRankOrder &&
      options_.pagerank_every > 0 &&
      visits_.size() % options_.pagerank_every == 0) {
    FOCUS_RETURN_IF_ERROR(RefreshPageRankPriorities());
  }
  return true;
}

Status Crawler::RefreshPageRankPriorities() {
  // Build the known crawl graph from LINK.
  std::unordered_map<uint64_t, uint32_t> node_index;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  auto index_of = [&](uint64_t oid) {
    auto [it, inserted] = node_index.try_emplace(
        oid, static_cast<uint32_t>(node_index.size()));
    return it->second;
  };
  {
    auto it = db_->link_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      edges.emplace_back(
          index_of(static_cast<uint64_t>(row.Get(0).AsInt64())),
          index_of(static_cast<uint64_t>(row.Get(2).AsInt64())));
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  std::vector<double> rank = distill::PageRank(node_index.size(), edges);
  for (FrontierEntry entry : frontier_.Snapshot()) {
    auto it = node_index.find(entry.oid);
    entry.hub_score = it == node_index.end() ? 0.0 : rank[it->second];
    frontier_.AddOrUpdate(entry);
  }
  return Status::OK();
}

Status Crawler::ExpandLinks(const webgraph::SimulatedWeb::FetchResult& fetch,
                            const PageJudgment& judgment) {
  bool expand_frontier = true;
  if (options_.expansion == ExpansionRule::kHardFocus) {
    expand_frontier = judgment.best_leaf_is_good;
  }
  // Revisits must not duplicate LINK rows.
  bool record_links = links_recorded_.insert(UrlOid(fetch.url)).second;
  for (const std::string& dst : fetch.outlink_urls) {
    // The LINK table records the crawl graph regardless of the expansion
    // decision; only frontier insertion is gated.
    if (record_links) {
      FOCUS_RETURN_IF_ERROR(db_->AddLink(fetch.url, dst));
    }
    if (!expand_frontier) continue;

    uint64_t dst_oid = UrlOid(dst);
    if (options_.try_truncated_urls) {
      // Also consider the target's host root (server index pages are often
      // excellent resource lists).
      std::string root = TruncateToHostRoot(dst);
      if (root != dst) {
        FOCUS_ASSIGN_OR_RETURN(std::optional<CrawlRecord> known,
                               db_->Lookup(UrlOid(root)));
        if (!known.has_value()) {
          FOCUS_RETURN_IF_ERROR(
              db_->AddUrl(root, judgment.relevance,
                          server_fetches_[ServerIdOf(root)]));
          FrontierEntry entry;
          entry.oid = UrlOid(root);
          entry.url = root;
          entry.relevance = judgment.relevance;
          entry.serverload = server_fetches_[ServerIdOf(root)];
          frontier_.AddOrUpdate(entry);
        }
      }
    }
    FOCUS_ASSIGN_OR_RETURN(std::optional<CrawlRecord> existing,
                           db_->Lookup(dst_oid));
    double estimate = judgment.relevance;
    int32_t load = server_fetches_[ServerIdOf(dst)];
    if (!existing.has_value()) {
      FOCUS_RETURN_IF_ERROR(db_->AddUrl(dst, estimate, load));
      FrontierEntry entry;
      entry.oid = dst_oid;
      entry.url = dst;
      entry.relevance = estimate;
      entry.serverload = load;
      entry.backlinks = ++backlink_counts_[dst_oid];
      frontier_.AddOrUpdate(entry);
    } else if (!existing->visited) {
      // A better citation raises the unvisited page's priority; every
      // citation raises its backlink count (Cho ordering signal).
      int32_t backlinks = ++backlink_counts_[dst_oid];
      if (estimate > existing->relevance) {
        FOCUS_RETURN_IF_ERROR(db_->RaiseRelevance(dst_oid, estimate));
      }
      if (const FrontierEntry* in_frontier = frontier_.Peek(dst_oid);
          in_frontier != nullptr) {
        FrontierEntry updated = *in_frontier;
        updated.relevance = std::max(updated.relevance, estimate);
        updated.serverload = load;
        updated.backlinks = backlinks;
        frontier_.AddOrUpdate(updated);
      }
    }
  }
  return Status::OK();
}

Status Crawler::RunDistillationBoost() {
  if (!distill_tables_ready_) {
    distill_tables_.link = db_->link_table();
    distill_tables_.crawl = db_->crawl_table();
    FOCUS_RETURN_IF_ERROR(
        distill::CreateHubsAuthTables(catalog_, &distill_tables_));
    distill_tables_ready_ = true;
  }
  FOCUS_RETURN_IF_ERROR(db_->RefreshEdgeWeights());
  distill::JoinDistiller distiller(distill_tables_);
  distill::HitsOptions hits_options;
  hits_options.iterations = options_.distill_iterations;
  hits_options.rho = options_.distill_rho;
  FOCUS_RETURN_IF_ERROR(distiller.Run(hits_options));
  ++stats_.distill_rounds;

  FOCUS_ASSIGN_OR_RETURN(auto hub_scores,
                         distill::CollectScores(distill_tables_.hubs));
  std::vector<std::pair<uint64_t, double>> top =
      distill::HitsEngine::TopHubs(
          [&] {
            std::unordered_map<uint64_t, distill::HubAuthScore> s;
            for (const auto& [oid, score] : hub_scores) s[oid].hub = score;
            return s;
          }(),
          options_.top_hubs_to_boost);

  // Raise priority of unvisited pages cited by the top hubs (§3.7's
  // "possibly missed neighbors of great hubs").
  sql::Table* link = db_->link_table();
  int by_src = link->IndexId("by_src");
  for (const auto& [hub_oid, score] : top) {
    std::vector<storage::Rid> rids;
    FOCUS_RETURN_IF_ERROR(link->IndexLookup(
        by_src, {sql::Value::Int64(static_cast<int64_t>(hub_oid))}, &rids));
    sql::Tuple row;
    for (const auto& rid : rids) {
      FOCUS_RETURN_IF_ERROR(link->Get(rid, &row));
      uint64_t dst_oid = static_cast<uint64_t>(row.Get(2).AsInt64());
      const FrontierEntry* entry = frontier_.Peek(dst_oid);
      if (entry == nullptr) continue;
      FOCUS_RETURN_IF_ERROR(
          db_->RaiseRelevance(dst_oid, options_.hub_boost_relevance));
      FrontierEntry boosted = *entry;
      boosted.relevance =
          std::max(boosted.relevance, options_.hub_boost_relevance);
      boosted.hub_score = score;
      frontier_.AddOrUpdate(boosted);
    }
  }
  return Status::OK();
}

Status Crawler::ResumeFromDb() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = db_->crawl_table()->Scan();
  storage::Rid rid;
  sql::Tuple row;
  uint64_t restored = 0;
  while (it.Next(&rid, &row)) {
    CrawlRecord rec = CrawlDb::RecordFromTuple(row);
    if (rec.visited) {
      ++server_fetches_[rec.sid];
      links_recorded_.insert(rec.oid);
      continue;
    }
    if (rec.numtries >= options_.max_retries) continue;  // dead link
    FrontierEntry entry;
    entry.oid = rec.oid;
    entry.url = rec.url;
    entry.numtries = rec.numtries;
    entry.relevance = rec.relevance;
    entry.serverload = rec.serverload;
    entry.lastvisited = rec.lastvisited;
    frontier_.AddOrUpdate(entry);
    ++restored;
  }
  FOCUS_RETURN_IF_ERROR(it.status());
  FOCUS_LOG(Info, "resumed crawl: ", restored, " frontier entries, ",
            links_recorded_.size(), " pages already visited");
  return Status::OK();
}

Status Crawler::ScheduleRevisits(const sql::Table* hubs, int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Hub scores by oid, when a distillation round is available.
  std::unordered_map<int64_t, double> hub_score;
  if (hubs != nullptr) {
    auto it = hubs->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      hub_score[row.Get(0).AsInt64()] = row.Get(1).AsDouble();
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  // Collect visited pages, stalest first, best hubs first within a tie.
  std::vector<CrawlRecord> visited;
  {
    auto it = db_->crawl_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      CrawlRecord rec = CrawlDb::RecordFromTuple(row);
      if (rec.visited) visited.push_back(std::move(rec));
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  auto score_of = [&](const CrawlRecord& r) {
    auto it = hub_score.find(static_cast<int64_t>(r.oid));
    return it == hub_score.end() ? 0.0 : it->second;
  };
  std::sort(visited.begin(), visited.end(),
            [&](const CrawlRecord& a, const CrawlRecord& b) {
              if (a.lastvisited != b.lastvisited) {
                return a.lastvisited < b.lastvisited;
              }
              return score_of(a) > score_of(b);
            });
  int scheduled = 0;
  for (const CrawlRecord& rec : visited) {
    if (scheduled >= count) break;
    FrontierEntry entry;
    entry.oid = rec.oid;
    entry.url = rec.url;
    entry.numtries = rec.numtries;
    entry.relevance = rec.relevance;
    entry.serverload = rec.serverload;
    entry.lastvisited = rec.lastvisited;
    entry.hub_score = score_of(rec);
    frontier_.AddOrUpdate(entry);
    ++scheduled;
  }
  options_.max_fetches += scheduled;
  frontier_.SetPolicy(PriorityPolicy::kRevisitHubs);
  return Status::OK();
}

Status Crawler::Crawl() {
  if (options_.num_threads <= 1) {
    for (;;) {
      auto more = Step();
      FOCUS_RETURN_IF_ERROR(more.status());
      if (!more.value()) break;
    }
    return Status::OK();
  }
  ThreadPool pool(options_.num_threads);
  std::mutex status_mutex;
  Status first_error;
  for (int i = 0; i < options_.num_threads; ++i) {
    pool.Submit([this, &status_mutex, &first_error] {
      for (;;) {
        auto more = Step();
        if (!more.ok()) {
          std::lock_guard<std::mutex> lock(status_mutex);
          if (first_error.ok()) first_error = more.status();
          return;
        }
        if (!more.value()) return;
      }
    });
  }
  pool.Wait();
  return first_error;
}

}  // namespace focus::crawl
