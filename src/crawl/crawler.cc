#include "crawl/crawler.h"

#include <algorithm>
#include <chrono>

#include "crawl/metrics.h"
#include "distill/join_distiller.h"
#include "distill/pagerank.h"
#include "obs/event_log.h"
#include "obs/trace.h"

#include "util/clock.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace focus::crawl {

namespace {

int ResolveShardCount(const CrawlerOptions& options) {
  if (options.frontier_shards > 0) return options.frontier_shards;
  // Single-threaded crawls keep one shard: ShardedFrontier::PopBest is
  // then bit-for-bit the classic frontier order.
  if (options.num_threads <= 1) return 1;
  return std::min(options.num_threads * 2, 16);
}

}  // namespace

Crawler::Crawler(webgraph::SimulatedWeb* web, RelevanceEvaluator* evaluator,
                 CrawlDb* db, sql::Catalog* catalog, CrawlerOptions options)
    : web_(web),
      evaluator_(evaluator),
      db_(db),
      options_(options),
      frontier_(options.policy, ResolveShardCount(options)),
      catalog_(catalog),
      stage_metrics_(std::make_unique<StageMetrics>(options.metrics_registry)),
      retry_policy_(options.retry, options.max_retries),
      breaker_(options.breaker) {
  if (options_.classify_batch_size < 1) options_.classify_batch_size = 1;
  // -1 = inherit: FocusSystem::NewCrawl resolves it from FocusOptions;
  // a standalone crawler falls back to the same default interval.
  if (options_.checkpoint_every_batches < 0) {
    options_.checkpoint_every_batches = 64;
  }
  next_distill_at_ = options_.distill_every;
  next_pagerank_at_ = options_.pagerank_every;
  if (options_.event_log != nullptr) {
    frontier_.SetEventLog(options_.event_log);
    breaker_.SetEventLog(options_.event_log);
    retry_policy_.SetEventLog(options_.event_log);
  }
}

Crawler::~Crawler() = default;

Status Crawler::AddSeed(std::string_view url) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Status s = db_->AddUrl(url, /*relevance_estimate=*/1.0, /*serverload=*/0);
  if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  FrontierEntry entry;
  entry.oid = UrlOid(url);
  entry.url = std::string(url);
  entry.relevance = 1.0;
  frontier_.AddOrUpdate(entry);
  if (options_.event_log != nullptr) {
    // Seeds are discovery roots: no parent.
    options_.event_log->Record(obs::CrawlEventType::kFrontierAdmit,
                               static_cast<int64_t>(entry.oid),
                               /*parent_oid=*/-1, ServerIdOf(url),
                               clock_.NowMicros(), /*value=*/1.0, /*aux=*/0);
  }
  return Status::OK();
}

Status Crawler::CommitBatch() {
  if (options_.checkpoint_every_batches > 0 &&
      ++commits_since_checkpoint_ >= options_.checkpoint_every_batches) {
    commits_since_checkpoint_ = 0;
    // Checkpoint subsumes Commit: the WAL protocol logs the pending batch,
    // flushes the overlay and truncates the log, so recovery replay is
    // bounded by one checkpoint interval of commits.
    return db_->Checkpoint();
  }
  return db_->Commit();
}

Result<bool> Crawler::Step() {
  if (options_.interrupt) {
    // Scheduled shard deaths (dist::ShardFaultPlan) land between steps —
    // i.e. between durable batches, like any other crash point.
    FOCUS_RETURN_IF_ERROR(options_.interrupt(clock_.NowMicros()));
  }
  webgraph::SimulatedWeb::FetchResult fetch;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (static_cast<int>(visits_.size()) + in_flight_.load() >=
        options_.max_fetches) {
      return false;
    }
    std::optional<FrontierEntry> entry;
    for (;;) {
      int64_t now = clock_.NowMicros();
      entry = frontier_.PopBest(now);
      if (entry.has_value()) {
        if (options_.breaker.enabled) {
          BreakerOutcome adm = breaker_.Admit(ServerIdOf(entry->url), now);
          NoteBreakerOutcome(adm);
          if (!adm.allow) {
            // Quarantined server: re-park until the breaker's next
            // probe/cooldown deadline (never earlier than now + 1 so the
            // pop loop can't spin).
            if (options_.event_log != nullptr) {
              options_.event_log->Record(
                  obs::CrawlEventType::kBreakerDenied,
                  static_cast<int64_t>(entry->oid), /*parent_oid=*/-1,
                  ServerIdOf(entry->url), now, /*value=*/0.0,
                  /*aux=*/adm.retry_at_us);
            }
            FrontierEntry parked = std::move(*entry);
            parked.ready_at_us = std::max(adm.retry_at_us, now + 1);
            frontier_.AddOrUpdate(parked);
            ++stats_.breaker_skips;
            stage_metrics_->RecordBreakerSkips(1);
            continue;
          }
        }
        break;
      }
      if (frontier_.empty()) {
        stats_.stagnated = true;
        return false;
      }
      // Entries exist but none is ready yet: fast-forward the virtual
      // clock to the earliest retry/probe deadline.
      std::optional<int64_t> at = frontier_.NextReadyMicros();
      if (!at.has_value()) {
        stats_.stagnated = true;
        return false;
      }
      if (*at > now) clock_.AdvanceMicros(*at - now);
    }
    stage_metrics_->RecordPop(/*stolen=*/false);
    ++stats_.attempts;
    if (options_.event_log != nullptr) {
      options_.event_log->Record(obs::CrawlEventType::kFetchAttempt,
                                 static_cast<int64_t>(entry->oid),
                                 /*parent_oid=*/-1, ServerIdOf(entry->url),
                                 clock_.NowMicros(), entry->relevance,
                                 /*aux=*/entry->numtries + 1);
    }
    // Attempts are numbered from durable state (numtries) so a crashed
    // crawler's refetch of an attempt whose bookkeeping was lost replays
    // the same outcome — the visited set becomes a deterministic fixpoint
    // ResumeFromDb can converge to (tests/robustness_test.cc).
    auto fetched = web_->Fetch(entry->url, &clock_, entry->numtries + 1);
    if (!fetched.ok()) {
      if (options_.breaker.enabled) {
        NoteBreakerOutcome(
            breaker_.OnFailure(ServerIdOf(entry->url), clock_.NowMicros()));
      }
      FOCUS_RETURN_IF_ERROR(
          HandleFetchFailure(*entry, fetched.status(), clock_.NowMicros()));
      FOCUS_RETURN_IF_ERROR(FlushBreakerState());
      // Failure bookkeeping (numtries, nextretry, breaker rows) is a
      // batch of its own; a crash after this point must not replay it.
      FOCUS_RETURN_IF_ERROR(CommitBatch());
      return true;
    }
    if (options_.breaker.enabled) {
      NoteBreakerOutcome(breaker_.OnSuccess(ServerIdOf(entry->url)));
      FOCUS_RETURN_IF_ERROR(FlushBreakerState());
    }
    fetch = fetched.TakeValue();
    if (options_.event_log != nullptr) {
      options_.event_log->Record(obs::CrawlEventType::kFetchSuccess,
                                 static_cast<int64_t>(entry->oid),
                                 /*parent_oid=*/-1, ServerIdOf(entry->url),
                                 clock_.NowMicros(), /*value=*/0.0,
                                 /*aux=*/entry->numtries + 1);
    }
    in_flight_.fetch_add(1);
  }

  // Classification runs outside the lock (the CPU-heavy part; the paper
  // runs ~30 fetch threads against one classifier).
  text::TermVector terms = text::BuildTermVector(fetch.tokens);
  Stopwatch classify_timer;
  auto judged = evaluator_->Judge(terms);
  stage_metrics_->AddClassifyMicros(
      static_cast<uint64_t>(classify_timer.ElapsedMicros()));
  if (!judged.ok()) {
    in_flight_.fetch_sub(1);
    return judged.status();
  }
  PageJudgment judgment = judged.value();

  std::lock_guard<std::mutex> lock(state_mutex_);
  in_flight_.fetch_sub(1);
  uint64_t oid = UrlOid(fetch.url);
  FOCUS_RETURN_IF_ERROR(db_->RecordVisit(oid, judgment.relevance,
                                         judgment.best_leaf,
                                         clock_.NowMicros()));
  ++server_fetches_[fetch.server_id];
  Visit visit;
  visit.fetch_index = static_cast<int>(visits_.size());
  visit.oid = oid;
  visit.url = fetch.url;
  visit.relevance = judgment.relevance;
  visit.best_leaf = judgment.best_leaf;
  visit.virtual_time_us = clock_.NowMicros();
  visits_.push_back(visit);
  stage_metrics_->RecordVisitRelevance(judgment.relevance);
  if (options_.event_log != nullptr) {
    options_.event_log->Record(obs::CrawlEventType::kClassifyVerdict,
                               static_cast<int64_t>(oid), /*parent_oid=*/-1,
                               ServerIdOf(fetch.url), visit.virtual_time_us,
                               judgment.relevance,
                               /*aux=*/static_cast<int64_t>(
                                   judgment.best_leaf));
  }

  FOCUS_RETURN_IF_ERROR(ExpandLinks(fetch, judgment, visit.virtual_time_us));

  if (options_.expand_backlinks &&
      judgment.relevance > options_.backlink_relevance_threshold) {
    // Pages pointing to a relevant page are likely hubs (radius-2 rule).
    FOCUS_ASSIGN_OR_RETURN(
        std::vector<std::string> citers,
        web_->Backlinks(fetch.url, options_.backlinks_per_page));
    for (const std::string& citer : citers) {
      uint64_t citer_oid = UrlOid(citer);
      if (options_.link_sink != nullptr &&
          !options_.link_sink->Owns(citer)) {
        FOCUS_RETURN_IF_ERROR(ExportRemoteLink(oid, citer,
                                               judgment.relevance,
                                               /*raise_if_known=*/false));
        continue;
      }
      FOCUS_ASSIGN_OR_RETURN(std::optional<CrawlRecord> known,
                             db_->Lookup(citer_oid));
      if (known.has_value()) continue;
      FOCUS_RETURN_IF_ERROR(
          db_->AddUrl(citer, judgment.relevance,
                      server_fetches_[ServerIdOf(citer)]));
      FrontierEntry entry;
      entry.oid = citer_oid;
      entry.url = citer;
      entry.relevance = judgment.relevance;
      entry.serverload = server_fetches_[ServerIdOf(citer)];
      frontier_.AddOrUpdate(entry);
      if (options_.event_log != nullptr) {
        options_.event_log->Record(obs::CrawlEventType::kFrontierAdmit,
                                   static_cast<int64_t>(citer_oid),
                                   static_cast<int64_t>(oid),
                                   ServerIdOf(citer), clock_.NowMicros(),
                                   judgment.relevance, /*aux=*/2);
      }
    }
  }

  FOCUS_RETURN_IF_ERROR(RunPeriodicBoosts());
  // Single-threaded batch boundary: the visit, its link expansion and any
  // boosts commit atomically (no-op without a WAL-backed CrawlDb).
  FOCUS_RETURN_IF_ERROR(CommitBatch());
  return true;
}

Status Crawler::HandleFetchFailure(const FrontierEntry& entry,
                                   const Status& error, int64_t at_us) {
  FailureClass cls = ClassifyFetchFailure(error);
  stage_metrics_->RecordFetchFailure(cls);
  if (options_.event_log != nullptr) {
    options_.event_log->Record(obs::CrawlEventType::kFetchFailure,
                               static_cast<int64_t>(entry.oid),
                               /*parent_oid=*/-1, ServerIdOf(entry.url),
                               at_us, /*value=*/entry.relevance,
                               /*aux=*/static_cast<int64_t>(cls));
  }
  RetryPolicy::Decision d = retry_policy_.Decide(entry, cls, at_us);
  FOCUS_RETURN_IF_ERROR(
      db_->RecordFailure(entry.oid, d.cost, d.drop ? 0 : d.ready_at_us));
  if (d.drop) {
    ++stats_.dropped_urls;
    stage_metrics_->RecordDrop(cls == FailureClass::kPermanent);
    return Status::OK();
  }
  ++stats_.transient_failures;
  stage_metrics_->RecordRetry(cls, d.backoff_s);
  FrontierEntry retry = entry;
  retry.numtries += d.cost;
  retry.serverload = server_fetches_[ServerIdOf(retry.url)];
  retry.ready_at_us = d.ready_at_us;
  frontier_.AddOrUpdate(retry);
  return Status::OK();
}

void Crawler::NoteBreakerOutcome(const BreakerOutcome& outcome) {
  if (!outcome.transitioned) return;
  stage_metrics_->RecordBreakerTransition(outcome.record.state);
  stage_metrics_->SetOpenBreakers(static_cast<double>(breaker_.open_count()));
  std::lock_guard<std::mutex> lock(breaker_dirty_mu_);
  breaker_dirty_.push_back(outcome.record);
}

Status Crawler::FlushBreakerState() {
  std::vector<BreakerRecord> dirty;
  {
    std::lock_guard<std::mutex> lock(breaker_dirty_mu_);
    dirty.swap(breaker_dirty_);
  }
  // Duplicate sids upsert in queue order, so the latest transition wins.
  for (const BreakerRecord& rec : dirty) {
    FOCUS_RETURN_IF_ERROR(db_->UpsertBreaker(rec));
  }
  return Status::OK();
}

Status Crawler::RunPeriodicBoosts() {
  while (options_.distill_every > 0 && next_distill_at_ > 0 &&
         visits_.size() >= next_distill_at_) {
    FOCUS_RETURN_IF_ERROR(RunDistillationBoost());
    next_distill_at_ += options_.distill_every;
  }
  while (options_.policy == PriorityPolicy::kPageRankOrder &&
         options_.pagerank_every > 0 && next_pagerank_at_ > 0 &&
         visits_.size() >= next_pagerank_at_) {
    FOCUS_RETURN_IF_ERROR(RefreshPageRankPriorities());
    next_pagerank_at_ += options_.pagerank_every;
  }
  return Status::OK();
}

Status Crawler::RefreshPageRankPriorities() {
  // Build the known crawl graph from LINK.
  std::unordered_map<uint64_t, uint32_t> node_index;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  auto index_of = [&](uint64_t oid) {
    auto [it, inserted] = node_index.try_emplace(
        oid, static_cast<uint32_t>(node_index.size()));
    return it->second;
  };
  {
    auto it = db_->link_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      edges.emplace_back(
          index_of(static_cast<uint64_t>(row.Get(0).AsInt64())),
          index_of(static_cast<uint64_t>(row.Get(2).AsInt64())));
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  std::vector<double> rank = distill::PageRank(node_index.size(), edges);
  for (FrontierEntry entry : frontier_.Snapshot()) {
    auto it = node_index.find(entry.oid);
    entry.hub_score = it == node_index.end() ? 0.0 : rank[it->second];
    frontier_.AddOrUpdate(entry);
  }
  return Status::OK();
}

Status Crawler::ExpandLinks(const webgraph::SimulatedWeb::FetchResult& fetch,
                            const PageJudgment& judgment, int64_t at_us) {
  bool expand_frontier = true;
  if (options_.expansion == ExpansionRule::kHardFocus) {
    expand_frontier = judgment.best_leaf_is_good;
  }
  const int64_t src_oid = static_cast<int64_t>(UrlOid(fetch.url));
  // Revisits must not duplicate LINK rows.
  bool record_links = links_recorded_.insert(UrlOid(fetch.url)).second;
  for (const std::string& dst : fetch.outlink_urls) {
    // The LINK table records the crawl graph regardless of the expansion
    // decision; only frontier insertion is gated.
    if (record_links) {
      FOCUS_RETURN_IF_ERROR(db_->AddLink(fetch.url, dst));
    }
    if (!expand_frontier) continue;

    uint64_t dst_oid = UrlOid(dst);
    if (options_.link_sink != nullptr && !options_.link_sink->Owns(dst)) {
      // Cross-shard target (its whole server belongs to another shard, so
      // its host root does too): journal the admission for the owner and
      // leave the local frontier alone.
      if (options_.try_truncated_urls) {
        std::string root = TruncateToHostRoot(dst);
        if (root != dst) {
          FOCUS_RETURN_IF_ERROR(
              ExportRemoteLink(UrlOid(fetch.url), root, judgment.relevance,
                               /*raise_if_known=*/false));
        }
      }
      FOCUS_RETURN_IF_ERROR(ExportRemoteLink(UrlOid(fetch.url), dst,
                                             judgment.relevance,
                                             /*raise_if_known=*/true));
      continue;
    }
    if (options_.try_truncated_urls) {
      // Also consider the target's host root (server index pages are often
      // excellent resource lists).
      std::string root = TruncateToHostRoot(dst);
      if (root != dst) {
        FOCUS_ASSIGN_OR_RETURN(std::optional<CrawlRecord> known,
                               db_->Lookup(UrlOid(root)));
        if (!known.has_value()) {
          FOCUS_RETURN_IF_ERROR(
              db_->AddUrl(root, judgment.relevance,
                          server_fetches_[ServerIdOf(root)]));
          FrontierEntry entry;
          entry.oid = UrlOid(root);
          entry.url = root;
          entry.relevance = judgment.relevance;
          entry.serverload = server_fetches_[ServerIdOf(root)];
          frontier_.AddOrUpdate(entry);
          if (options_.event_log != nullptr) {
            options_.event_log->Record(
                obs::CrawlEventType::kFrontierAdmit,
                static_cast<int64_t>(entry.oid), src_oid,
                ServerIdOf(root), at_us, judgment.relevance, /*aux=*/1);
          }
        }
      }
    }
    FOCUS_ASSIGN_OR_RETURN(std::optional<CrawlRecord> existing,
                           db_->Lookup(dst_oid));
    double estimate = judgment.relevance;
    int32_t load = server_fetches_[ServerIdOf(dst)];
    if (!existing.has_value()) {
      FOCUS_RETURN_IF_ERROR(db_->AddUrl(dst, estimate, load));
      FrontierEntry entry;
      entry.oid = dst_oid;
      entry.url = dst;
      entry.relevance = estimate;
      entry.serverload = load;
      entry.backlinks = ++backlink_counts_[dst_oid];
      frontier_.AddOrUpdate(entry);
      if (options_.event_log != nullptr) {
        options_.event_log->Record(obs::CrawlEventType::kFrontierAdmit,
                                   static_cast<int64_t>(dst_oid), src_oid,
                                   ServerIdOf(dst), at_us, estimate,
                                   /*aux=*/0);
      }
    } else if (!existing->visited) {
      // A better citation raises the unvisited page's priority; every
      // citation raises its backlink count (Cho ordering signal).
      int32_t backlinks = ++backlink_counts_[dst_oid];
      if (estimate > existing->relevance) {
        FOCUS_RETURN_IF_ERROR(db_->RaiseRelevance(dst_oid, estimate));
      }
      if (std::optional<FrontierEntry> in_frontier =
              frontier_.PeekCopy(dst_oid);
          in_frontier.has_value()) {
        FrontierEntry updated = *in_frontier;
        updated.relevance = std::max(updated.relevance, estimate);
        updated.serverload = load;
        updated.backlinks = backlinks;
        frontier_.AddOrUpdate(updated);
      }
    }
  }
  return Status::OK();
}

Status Crawler::ExportRemoteLink(uint64_t src_oid, const std::string& dst_url,
                                 double relevance, bool raise_if_known) {
  uint64_t dst_oid = UrlOid(dst_url);
  if (raise_if_known) {
    // The owner applies max-raise semantics, so only a strictly better
    // estimate is worth journaling. The dedup map is in-memory: a crash
    // loses it and the replayed batch re-exports, which the owner no-ops.
    auto [it, inserted] = raise_exported_.try_emplace(dst_oid, relevance);
    if (!inserted) {
      if (relevance <= it->second) return Status::OK();
      it->second = relevance;
    }
  } else {
    // Admit-if-unknown targets never raise existing rows, so one export
    // is enough.
    if (!admit_exported_.insert(dst_oid).second) return Status::OK();
  }
  return options_.link_sink->ExportLink(src_oid, dst_url, relevance,
                                        raise_if_known);
}

Status Crawler::AdmitRemoteLink(std::string_view url, double relevance,
                                int64_t parent_oid, bool raise_if_known) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  uint64_t oid = UrlOid(url);
  int32_t sid = ServerIdOf(url);
  FOCUS_ASSIGN_OR_RETURN(std::optional<CrawlRecord> existing,
                         db_->Lookup(oid));
  if (!existing.has_value()) {
    FOCUS_RETURN_IF_ERROR(db_->AddUrl(url, relevance, server_fetches_[sid]));
    FrontierEntry entry;
    entry.oid = oid;
    entry.url = std::string(url);
    entry.relevance = relevance;
    entry.serverload = server_fetches_[sid];
    entry.backlinks = ++backlink_counts_[oid];
    frontier_.AddOrUpdate(entry);
    if (options_.event_log != nullptr) {
      options_.event_log->Record(obs::CrawlEventType::kFrontierAdmit,
                                 static_cast<int64_t>(oid), parent_oid, sid,
                                 clock_.NowMicros(), relevance, /*aux=*/3);
    }
    return Status::OK();
  }
  if (!raise_if_known || existing->visited) return Status::OK();
  // Same as the local ExpandLinks path for a known unvisited citation:
  // count the backlink, raise the estimate (max), re-rank if live.
  int32_t backlinks = ++backlink_counts_[oid];
  if (relevance > existing->relevance) {
    FOCUS_RETURN_IF_ERROR(db_->RaiseRelevance(oid, relevance));
  }
  if (std::optional<FrontierEntry> in_frontier = frontier_.PeekCopy(oid);
      in_frontier.has_value()) {
    FrontierEntry updated = *in_frontier;
    updated.relevance = std::max(updated.relevance, relevance);
    updated.backlinks = backlinks;
    frontier_.AddOrUpdate(updated);
  }
  return Status::OK();
}

Status Crawler::RunDistillationBoost() {
  FOCUS_SPAN("crawl.distill_boost");
  if (!distill_tables_ready_) {
    distill_tables_.link = db_->link_table();
    distill_tables_.crawl = db_->crawl_table();
    FOCUS_RETURN_IF_ERROR(
        distill::CreateHubsAuthTables(catalog_, &distill_tables_));
    distill_tables_ready_ = true;
  }
  FOCUS_RETURN_IF_ERROR(db_->RefreshEdgeWeights());
  distill::JoinDistiller distiller(distill_tables_);
  distiller.EnableResidualTracking(true);
  distill::HitsOptions hits_options;
  hits_options.iterations = options_.distill_iterations;
  hits_options.rho = options_.distill_rho;
  FOCUS_RETURN_IF_ERROR(distiller.Run(hits_options));
  stage_metrics_->RecordDistillResiduals(distiller.residuals());
  ++stats_.distill_rounds;

  FOCUS_ASSIGN_OR_RETURN(auto hub_scores,
                         distill::CollectScores(distill_tables_.hubs));
  std::vector<std::pair<uint64_t, double>> top =
      distill::HitsEngine::TopHubs(
          [&] {
            std::unordered_map<uint64_t, distill::HubAuthScore> s;
            for (const auto& [oid, score] : hub_scores) s[oid].hub = score;
            return s;
          }(),
          options_.top_hubs_to_boost);

  // Raise priority of unvisited pages cited by the top hubs (§3.7's
  // "possibly missed neighbors of great hubs").
  sql::Table* link = db_->link_table();
  int by_src = link->IndexId("by_src");
  for (const auto& [hub_oid, score] : top) {
    std::vector<storage::Rid> rids;
    FOCUS_RETURN_IF_ERROR(link->IndexLookup(
        by_src, {sql::Value::Int64(static_cast<int64_t>(hub_oid))}, &rids));
    sql::Tuple row;
    for (const auto& rid : rids) {
      FOCUS_RETURN_IF_ERROR(link->Get(rid, &row));
      uint64_t dst_oid = static_cast<uint64_t>(row.Get(2).AsInt64());
      std::optional<FrontierEntry> entry = frontier_.PeekCopy(dst_oid);
      if (!entry.has_value()) continue;
      FOCUS_RETURN_IF_ERROR(
          db_->RaiseRelevance(dst_oid, options_.hub_boost_relevance));
      FrontierEntry boosted = *entry;
      boosted.relevance =
          std::max(boosted.relevance, options_.hub_boost_relevance);
      boosted.hub_score = score;
      frontier_.AddOrUpdate(boosted);
    }
  }
  return Status::OK();
}

Status Crawler::ResumeFromDb() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  // Event reconciliation: a crash lost the in-memory rings, but the WAL
  // replayed the durable CRAWL/LINK state — re-emit the discovery history
  // from it, in table-scan order (heap insertion order == the commit order
  // the WAL recovered), flagged `reconciled`. The discovering parent of a
  // page is its earliest recorded citation.
  obs::EventLog* elog = options_.event_log;
  // Visit times gate which citations are plausible discoveries, so the
  // CRAWL rows are collected up front (they are re-walked below anyway).
  std::vector<CrawlRecord> records;
  std::unordered_map<uint64_t, int64_t> visited_at;
  {
    auto crawl_it = db_->crawl_table()->Scan();
    storage::Rid crawl_rid;
    sql::Tuple crawl_row;
    while (crawl_it.Next(&crawl_rid, &crawl_row)) {
      records.push_back(CrawlDb::RecordFromTuple(crawl_row));
      const CrawlRecord& rec = records.back();
      if (rec.visited) visited_at.emplace(rec.oid, rec.lastvisited);
    }
    FOCUS_RETURN_IF_ERROR(crawl_it.status());
  }
  std::unordered_map<uint64_t, uint64_t> first_citer;
  if (elog != nullptr) {
    auto link_it = db_->link_table()->Scan();
    storage::Rid link_rid;
    sql::Tuple link_row;
    while (link_it.Next(&link_rid, &link_row)) {
      uint64_t src = static_cast<uint64_t>(link_row.Get(0).AsInt64());
      uint64_t dst = static_cast<uint64_t>(link_row.Get(2).AsInt64());
      // LINK is a graph with cycles (a seed gets cited by its own
      // descendants), but discovery is causal: a citation only counts
      // when the citer was itself visited, and strictly before the cited
      // page's own visit. Parent chains then walk strictly back in visit
      // time, so the synthesized admits can never cycle.
      auto src_visit = visited_at.find(src);
      if (src_visit == visited_at.end()) continue;
      auto dst_visit = visited_at.find(dst);
      if (dst_visit != visited_at.end() &&
          src_visit->second >= dst_visit->second) {
        continue;
      }
      first_citer.try_emplace(dst, src);
    }
    FOCUS_RETURN_IF_ERROR(link_it.status());
  }
  auto emit_reconciled = [&](const CrawlRecord& rec) {
    if (elog == nullptr) return;
    auto citer = first_citer.find(rec.oid);
    int64_t parent = citer == first_citer.end()
                         ? -1
                         : static_cast<int64_t>(citer->second);
    elog->Record(obs::CrawlEventType::kFrontierAdmit,
                 static_cast<int64_t>(rec.oid), parent, rec.sid,
                 /*virtual_us=*/-1, rec.relevance, /*aux=*/0,
                 /*reconciled=*/true);
    if (rec.numtries > 0 || rec.visited) {
      // One summary event for the lost attempt history: a visited row
      // proves a successful attempt even when numtries (the durable
      // retry budget consumed) is still zero.
      elog->Record(obs::CrawlEventType::kFetchAttempt,
                   static_cast<int64_t>(rec.oid), /*parent_oid=*/-1,
                   rec.sid, /*virtual_us=*/-1, rec.relevance,
                   /*aux=*/rec.numtries, /*reconciled=*/true);
    }
    if (rec.visited) {
      elog->Record(obs::CrawlEventType::kFetchSuccess,
                   static_cast<int64_t>(rec.oid), /*parent_oid=*/-1,
                   rec.sid, rec.lastvisited, /*value=*/0.0,
                   /*aux=*/rec.numtries, /*reconciled=*/true);
      elog->Record(obs::CrawlEventType::kClassifyVerdict,
                   static_cast<int64_t>(rec.oid), /*parent_oid=*/-1,
                   rec.sid, rec.lastvisited, rec.relevance,
                   /*aux=*/static_cast<int64_t>(rec.kcid),
                   /*reconciled=*/true);
    } else if (rec.numtries >= options_.max_retries) {
      elog->Record(obs::CrawlEventType::kUrlDropped,
                   static_cast<int64_t>(rec.oid), /*parent_oid=*/-1,
                   rec.sid, /*virtual_us=*/-1, /*value=*/0.0,
                   /*aux=*/static_cast<int64_t>(FailureClass::kTransient),
                   /*reconciled=*/true);
    } else if (rec.next_retry_us > 0) {
      elog->Record(obs::CrawlEventType::kRetryScheduled,
                   static_cast<int64_t>(rec.oid), /*parent_oid=*/-1,
                   rec.sid, /*virtual_us=*/-1, /*value=*/0.0,
                   /*aux=*/rec.next_retry_us, /*reconciled=*/true);
    }
  };
  uint64_t restored = 0;
  int64_t max_visit_us = 0;
  for (const CrawlRecord& rec : records) {
    emit_reconciled(rec);
    if (rec.visited) {
      ++server_fetches_[rec.sid];
      links_recorded_.insert(rec.oid);
      max_visit_us = std::max(max_visit_us, rec.lastvisited);
      continue;
    }
    if (rec.numtries >= options_.max_retries) continue;  // dead link
    FrontierEntry entry;
    entry.oid = rec.oid;
    entry.url = rec.url;
    entry.numtries = rec.numtries;
    entry.relevance = rec.relevance;
    entry.serverload = rec.serverload;
    entry.lastvisited = rec.lastvisited;
    entry.ready_at_us = rec.next_retry_us;  // keep the backoff schedule
    frontier_.AddOrUpdate(entry);
    ++restored;
  }
  // Rejoin the dead crawl's virtual timeline so restored not-before times
  // (absolute virtual us) stay meaningful.
  if (max_visit_us > clock_.NowMicros()) {
    clock_.AdvanceMicros(max_visit_us - clock_.NowMicros());
  }
  FOCUS_ASSIGN_OR_RETURN(std::vector<BreakerRecord> breakers,
                         db_->LoadBreakers());
  for (const BreakerRecord& rec : breakers) breaker_.Restore(rec);
  if (!breakers.empty()) {
    stage_metrics_->SetOpenBreakers(
        static_cast<double>(breaker_.open_count()));
  }
  FOCUS_LOG(Info, "resumed crawl: ", restored, " frontier entries, ",
            links_recorded_.size(), " pages already visited, ",
            breakers.size(), " breaker records");
  return Status::OK();
}

Status Crawler::ScheduleRevisits(const sql::Table* hubs, int count) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  // Hub scores by oid, when a distillation round is available.
  std::unordered_map<int64_t, double> hub_score;
  if (hubs != nullptr) {
    auto it = hubs->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      hub_score[row.Get(0).AsInt64()] = row.Get(1).AsDouble();
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  // Collect visited pages, stalest first, best hubs first within a tie.
  std::vector<CrawlRecord> visited;
  {
    auto it = db_->crawl_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      CrawlRecord rec = CrawlDb::RecordFromTuple(row);
      if (rec.visited) visited.push_back(std::move(rec));
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  auto score_of = [&](const CrawlRecord& r) {
    auto it = hub_score.find(static_cast<int64_t>(r.oid));
    return it == hub_score.end() ? 0.0 : it->second;
  };
  std::sort(visited.begin(), visited.end(),
            [&](const CrawlRecord& a, const CrawlRecord& b) {
              if (a.lastvisited != b.lastvisited) {
                return a.lastvisited < b.lastvisited;
              }
              return score_of(a) > score_of(b);
            });
  int scheduled = 0;
  for (const CrawlRecord& rec : visited) {
    if (scheduled >= count) break;
    FrontierEntry entry;
    entry.oid = rec.oid;
    entry.url = rec.url;
    entry.numtries = rec.numtries;
    entry.relevance = rec.relevance;
    entry.serverload = rec.serverload;
    entry.lastvisited = rec.lastvisited;
    entry.hub_score = score_of(rec);
    frontier_.AddOrUpdate(entry);
    ++scheduled;
  }
  options_.max_fetches += scheduled;
  frontier_.SetPolicy(PriorityPolicy::kRevisitHubs);
  return Status::OK();
}

std::vector<FrontierEntry> Crawler::GatherBatch(int worker,
                                                VirtualClock* worker_clock) {
  std::vector<FrontierEntry> batch;
  batch.reserve(options_.classify_batch_size);
  int shard = worker % frontier_.num_shards();
  uint64_t breaker_skips = 0;
  while (static_cast<int>(batch.size()) < options_.classify_batch_size) {
    {
      // Reserve one budget slot; release it below if the frontier is dry.
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (static_cast<int>(visits_.size()) + in_flight_.load() >=
          options_.max_fetches) {
        break;
      }
      in_flight_.fetch_add(1);
    }
    bool stolen = false;
    int64_t now = worker_clock->NowMicros();
    std::optional<FrontierEntry> entry =
        frontier_.PopPreferShard(shard, now, &stolen);
    if (!entry.has_value()) {
      in_flight_.fetch_sub(1);
      break;
    }
    if (options_.breaker.enabled) {
      BreakerOutcome adm = breaker_.Admit(ServerIdOf(entry->url), now);
      NoteBreakerOutcome(adm);
      if (!adm.allow) {
        if (options_.event_log != nullptr) {
          options_.event_log->Record(obs::CrawlEventType::kBreakerDenied,
                                     static_cast<int64_t>(entry->oid),
                                     /*parent_oid=*/-1,
                                     ServerIdOf(entry->url), now,
                                     /*value=*/0.0,
                                     /*aux=*/adm.retry_at_us);
        }
        FrontierEntry parked = std::move(*entry);
        parked.ready_at_us = std::max(adm.retry_at_us, now + 1);
        frontier_.AddOrUpdate(parked);
        in_flight_.fetch_sub(1);
        ++breaker_skips;
        continue;
      }
    }
    stage_metrics_->RecordPop(stolen);
    batch.push_back(std::move(*entry));
  }
  if (breaker_skips > 0) {
    stage_metrics_->RecordBreakerSkips(breaker_skips);
    std::lock_guard<std::mutex> lock(state_mutex_);
    stats_.breaker_skips += breaker_skips;
  }
  return batch;
}

Status Crawler::RecordBatch(std::vector<FetchedPage>* pages,
                            const std::vector<PageJudgment>& judgments) {
  FOCUS_SPAN("crawl.record_batch");
  Stopwatch lock_wait;
  std::unique_lock<std::mutex> lock(state_mutex_);
  stage_metrics_->AddLockWaitMicros(
      static_cast<uint64_t>(lock_wait.ElapsedMicros()));
  Stopwatch expand_timer;
  for (size_t i = 0; i < pages->size(); ++i) {
    FetchedPage& page = (*pages)[i];
    const PageJudgment& judgment = judgments[i];
    uint64_t oid = UrlOid(page.fetch.url);
    FOCUS_RETURN_IF_ERROR(db_->RecordVisit(oid, judgment.relevance,
                                           judgment.best_leaf,
                                           page.fetched_at_us));
    ++server_fetches_[page.fetch.server_id];
    Visit visit;
    visit.fetch_index = static_cast<int>(visits_.size());
    visit.oid = oid;
    visit.url = page.fetch.url;
    visit.relevance = judgment.relevance;
    visit.best_leaf = judgment.best_leaf;
    visit.virtual_time_us = page.fetched_at_us;
    visits_.push_back(visit);
    stage_metrics_->RecordVisitRelevance(judgment.relevance);
    if (options_.event_log != nullptr) {
      options_.event_log->Record(obs::CrawlEventType::kClassifyVerdict,
                                 static_cast<int64_t>(oid),
                                 /*parent_oid=*/-1,
                                 ServerIdOf(page.fetch.url),
                                 page.fetched_at_us, judgment.relevance,
                                 /*aux=*/static_cast<int64_t>(
                                     judgment.best_leaf));
    }

    FOCUS_RETURN_IF_ERROR(
        ExpandLinks(page.fetch, judgment, page.fetched_at_us));

    if (options_.expand_backlinks &&
        judgment.relevance > options_.backlink_relevance_threshold) {
      // Backlink metadata is a web service: web_mutex_ nests inside
      // state_mutex_ here (never the other way around).
      std::vector<std::string> citers;
      {
        std::lock_guard<std::mutex> web_lock(web_mutex_);
        FOCUS_ASSIGN_OR_RETURN(
            citers, web_->Backlinks(page.fetch.url,
                                    options_.backlinks_per_page));
      }
      for (const std::string& citer : citers) {
        uint64_t citer_oid = UrlOid(citer);
        if (options_.link_sink != nullptr &&
            !options_.link_sink->Owns(citer)) {
          FOCUS_RETURN_IF_ERROR(ExportRemoteLink(oid, citer,
                                                 judgment.relevance,
                                                 /*raise_if_known=*/false));
          continue;
        }
        FOCUS_ASSIGN_OR_RETURN(std::optional<CrawlRecord> known,
                               db_->Lookup(citer_oid));
        if (known.has_value()) continue;
        FOCUS_RETURN_IF_ERROR(
            db_->AddUrl(citer, judgment.relevance,
                        server_fetches_[ServerIdOf(citer)]));
        FrontierEntry entry;
        entry.oid = citer_oid;
        entry.url = citer;
        entry.relevance = judgment.relevance;
        entry.serverload = server_fetches_[ServerIdOf(citer)];
        frontier_.AddOrUpdate(entry);
        if (options_.event_log != nullptr) {
          options_.event_log->Record(obs::CrawlEventType::kFrontierAdmit,
                                     static_cast<int64_t>(citer_oid),
                                     static_cast<int64_t>(oid),
                                     ServerIdOf(citer), page.fetched_at_us,
                                     judgment.relevance, /*aux=*/2);
        }
      }
    }
    in_flight_.fetch_sub(1);
  }
  Status boosts = RunPeriodicBoosts();
  Status flush = FlushBreakerState();
  // Pipeline batch boundary: everything this record/expand critical
  // section wrote becomes one durable WAL commit (no-op without a WAL).
  Status commit = CommitBatch();
  stage_metrics_->AddExpandMicros(
      static_cast<uint64_t>(expand_timer.ElapsedMicros()));
  stage_metrics_->SetFrontierDepth(static_cast<double>(frontier_.size()));
  lock.unlock();
  work_cv_.notify_all();
  if (!boosts.ok()) return boosts;
  if (!flush.ok()) return flush;
  return commit;
}

Status Crawler::PipelineWorker(int worker, VirtualClock* worker_clock) {
  for (;;) {
    if (abort_.load()) return Status::OK();
    if (options_.interrupt) {
      FOCUS_RETURN_IF_ERROR(options_.interrupt(worker_clock->NowMicros()));
    }
    std::vector<FrontierEntry> batch = GatherBatch(worker, worker_clock);
    if (batch.empty()) {
      std::unique_lock<std::mutex> lock(state_mutex_);
      if (static_cast<int>(visits_.size()) >= options_.max_fetches) {
        return Status::OK();  // budget spent
      }
      if (in_flight_.load() == 0) {
        if (frontier_.empty()) {
          // Nothing left anywhere and nothing pending that could add
          // links: the crawl stagnated short of its budget.
          stats_.stagnated = true;
          return Status::OK();
        }
        // Entries exist but none is ready at this worker's virtual time
        // (backoff or breaker quarantine): fast-forward to the earliest
        // deadline instead of spinning.
        std::optional<int64_t> at = frontier_.NextReadyMicros();
        int64_t now = worker_clock->NowMicros();
        if (at.has_value() && *at > now) {
          worker_clock->AdvanceMicros(*at - now);
        }
        continue;
      }
      // Other workers hold in-flight pages that may expand the frontier
      // or release budget; wait for them.
      work_cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }

    // --- fetch stage (web lock only; latency charged to this worker's
    // virtual timeline, so concurrent workers overlap fetch waits exactly
    // like the paper's ~30 fetch threads) ---
    std::vector<FetchedPage> fetched;
    fetched.reserve(batch.size());
    struct FailedFetch {
      FrontierEntry entry;
      Status error;
      int64_t at_us;
    };
    std::vector<FailedFetch> failures;
    Stopwatch fetch_timer;
    {
      FOCUS_SPAN_VT("crawl.fetch_batch", worker_clock);
      for (FrontierEntry& entry : batch) {
        int32_t sid = ServerIdOf(entry.url);
        if (options_.event_log != nullptr) {
          options_.event_log->Record(obs::CrawlEventType::kFetchAttempt,
                                     static_cast<int64_t>(entry.oid),
                                     /*parent_oid=*/-1, sid,
                                     worker_clock->NowMicros(),
                                     entry.relevance,
                                     /*aux=*/entry.numtries + 1);
        }
        Result<webgraph::SimulatedWeb::FetchResult> result = [&] {
          std::lock_guard<std::mutex> web_lock(web_mutex_);
          // Same durable attempt numbering as the single-threaded path.
          return web_->Fetch(entry.url, worker_clock, entry.numtries + 1);
        }();
        if (!result.ok()) {
          if (options_.breaker.enabled) {
            NoteBreakerOutcome(
                breaker_.OnFailure(sid, worker_clock->NowMicros()));
          }
          failures.push_back(FailedFetch{std::move(entry), result.status(),
                                         worker_clock->NowMicros()});
          continue;
        }
        if (options_.breaker.enabled) {
          NoteBreakerOutcome(breaker_.OnSuccess(sid));
        }
        if (options_.event_log != nullptr) {
          options_.event_log->Record(obs::CrawlEventType::kFetchSuccess,
                                     static_cast<int64_t>(entry.oid),
                                     /*parent_oid=*/-1, sid,
                                     worker_clock->NowMicros(),
                                     /*value=*/0.0,
                                     /*aux=*/entry.numtries + 1);
        }
        FetchedPage page;
        page.entry = std::move(entry);
        page.fetch = result.TakeValue();
        page.fetched_at_us = worker_clock->NowMicros();
        fetched.push_back(std::move(page));
      }
    }
    stage_metrics_->AddFetchMicros(
        static_cast<uint64_t>(fetch_timer.ElapsedMicros()));

    {
      // Attempt/failure bookkeeping in one short critical section.
      std::lock_guard<std::mutex> lock(state_mutex_);
      stats_.attempts += batch.size();
      for (const FailedFetch& failure : failures) {
        FOCUS_RETURN_IF_ERROR(
            HandleFetchFailure(failure.entry, failure.error, failure.at_us));
      }
      FOCUS_RETURN_IF_ERROR(FlushBreakerState());
      in_flight_.fetch_sub(static_cast<int>(failures.size()));
    }
    if (!failures.empty()) work_cv_.notify_all();
    if (fetched.empty()) continue;

    // --- classify stage (no locks; one batched evaluator call) ---
    std::vector<text::TermVector> docs;
    docs.reserve(fetched.size());
    for (FetchedPage& page : fetched) {
      page.terms = text::BuildTermVector(page.fetch.tokens);
      docs.push_back(page.terms);
    }
    Stopwatch classify_timer;
    auto judged = [&] {
      FOCUS_SPAN_VT("crawl.classify_batch", worker_clock);
      return evaluator_->JudgeBatch(docs);
    }();
    uint64_t classify_micros =
        static_cast<uint64_t>(classify_timer.ElapsedMicros());
    stage_metrics_->AddClassifyMicros(classify_micros);
    stage_metrics_->RecordBatch(fetched.size());
    stage_metrics_->ObserveClassifyBatchMicros(classify_micros);
    if (!judged.ok()) {
      in_flight_.fetch_sub(static_cast<int>(fetched.size()));
      work_cv_.notify_all();
      return judged.status();
    }

    // --- record/expand stage (state lock) ---
    FOCUS_RETURN_IF_ERROR(RecordBatch(&fetched, judged.value()));
  }
}

Status Crawler::RunPipeline() {
  ThreadPool pool(options_.num_threads);
  std::mutex status_mutex;
  Status first_error;
  // Workers continue the crawl's virtual timeline (nonzero after a resume
  // or an earlier Crawl() call) so absolute not-before times line up.
  const int64_t base_us = clock_.NowMicros();
  std::vector<VirtualClock> worker_clocks(options_.num_threads);
  for (VirtualClock& c : worker_clocks) c.AdvanceMicros(base_us);
  for (int i = 0; i < options_.num_threads; ++i) {
    pool.Submit([this, i, &status_mutex, &first_error, &worker_clocks] {
      Status s = PipelineWorker(i, &worker_clocks[i]);
      if (!s.ok()) {
        {
          std::lock_guard<std::mutex> lock(status_mutex);
          if (first_error.ok()) first_error = std::move(s);
        }
        // Stop peers: a failed worker may never release its in-flight
        // reservations, so waiting on them would hang the pool.
        abort_.store(true);
        work_cv_.notify_all();
      }
    });
  }
  pool.Wait();
  // The crawl's virtual makespan is the slowest worker's timeline (workers
  // fetch concurrently, so their waits overlap).
  int64_t makespan = base_us;
  for (const VirtualClock& c : worker_clocks) {
    makespan = std::max(makespan, c.NowMicros());
  }
  clock_.AdvanceMicros(makespan - base_us);
  return first_error;
}

Status Crawler::Crawl() {
  Status result;
  if (options_.num_threads <= 1) {
    for (;;) {
      auto more = Step();
      result = more.status();
      if (!result.ok() || !more.value()) break;
    }
  } else {
    result = RunPipeline();
  }
  // Persist any breaker transitions still queued (e.g. from the last
  // successful fetches) so a resume sees the final quarantine state.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    Status flush = FlushBreakerState();
    if (result.ok()) result = flush;
    Status commit = CommitBatch();
    if (result.ok()) result = commit;
  }
  return result;
}

}  // namespace focus::crawl
