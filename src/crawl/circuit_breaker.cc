#include "crawl/circuit_breaker.h"

#include <algorithm>

#include "obs/event_log.h"

namespace focus::crawl {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

void CircuitBreakerRegistry::EmitTransition(const BreakerOutcome& out,
                                            int64_t now_us) const {
  if (event_log_ == nullptr || !out.transitioned) return;
  event_log_->Record(obs::CrawlEventType::kBreakerTransition, /*oid=*/-1,
                     /*parent_oid=*/-1, out.record.sid,
                     /*virtual_us=*/now_us,
                     /*value=*/out.record.cooldown_s,
                     /*aux=*/static_cast<int64_t>(out.record.state));
}

BreakerRecord CircuitBreakerRegistry::RecordOf(int32_t sid,
                                               const State& s) const {
  BreakerRecord rec;
  rec.sid = sid;
  rec.state = s.state;
  rec.consecutive_failures = s.fails;
  rec.open_until_us = s.open_until_us;
  rec.cooldown_s = s.cooldown_s;
  return rec;
}

BreakerOutcome CircuitBreakerRegistry::Admit(int32_t sid, int64_t now_us) {
  BreakerOutcome out;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(sid);
  if (it == states_.end()) return out;  // no history: closed, allow
  State& s = it->second;
  switch (s.state) {
    case BreakerState::kClosed:
      return out;
    case BreakerState::kOpen:
      if (now_us < s.open_until_us) {
        out.allow = false;
        out.retry_at_us = s.open_until_us;
        return out;
      }
      // Cooldown over: allow one probe and watch it.
      s.state = BreakerState::kHalfOpen;
      s.next_probe_at_us =
          now_us + static_cast<int64_t>(options_.probe_interval_s * 1e6);
      out.transitioned = true;
      out.record = RecordOf(sid, s);
      EmitTransition(out, now_us);
      return out;
    case BreakerState::kHalfOpen:
      if (now_us < s.next_probe_at_us) {
        out.allow = false;
        out.retry_at_us = s.next_probe_at_us;
        return out;
      }
      s.next_probe_at_us =
          now_us + static_cast<int64_t>(options_.probe_interval_s * 1e6);
      return out;
  }
  return out;
}

BreakerOutcome CircuitBreakerRegistry::OnSuccess(int32_t sid) {
  BreakerOutcome out;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(sid);
  if (it == states_.end()) return out;
  State& s = it->second;
  bool was_tripped = s.state != BreakerState::kClosed;
  if (was_tripped) --open_count_;
  s.state = BreakerState::kClosed;
  s.fails = 0;
  s.cooldown_s = options_.cooldown_s;
  s.open_until_us = 0;
  if (was_tripped) {
    out.transitioned = true;
    out.record = RecordOf(sid, s);
    EmitTransition(out, /*now_us=*/-1);
  }
  return out;
}

BreakerOutcome CircuitBreakerRegistry::OnFailure(int32_t sid,
                                                 int64_t now_us) {
  BreakerOutcome out;
  std::lock_guard<std::mutex> lock(mu_);
  State& s = states_[sid];
  if (s.cooldown_s == 0) s.cooldown_s = options_.cooldown_s;
  switch (s.state) {
    case BreakerState::kClosed:
      if (++s.fails < options_.failure_threshold) return out;
      break;  // trip below
    case BreakerState::kHalfOpen:
      --open_count_;  // re-counted when it re-opens below
      ++s.fails;
      break;  // probe failed: re-open with escalated cooldown
    case BreakerState::kOpen:
      // A straggler attempt admitted before the trip; the breaker is
      // already open.
      ++s.fails;
      return out;
  }
  s.state = BreakerState::kOpen;
  s.open_until_us = now_us + static_cast<int64_t>(s.cooldown_s * 1e6);
  s.cooldown_s =
      std::min(s.cooldown_s * options_.cooldown_multiplier,
               options_.max_cooldown_s);
  ++open_count_;
  out.transitioned = true;
  out.record = RecordOf(sid, s);
  EmitTransition(out, now_us);
  return out;
}

void CircuitBreakerRegistry::Restore(const BreakerRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  State& s = states_[rec.sid];
  if (s.state != BreakerState::kClosed) --open_count_;
  s.state = rec.state;
  s.fails = rec.consecutive_failures;
  s.open_until_us = rec.open_until_us;
  s.cooldown_s = rec.cooldown_s;
  s.next_probe_at_us = 0;
  if (s.state != BreakerState::kClosed) ++open_count_;
}

std::vector<BreakerRecord> CircuitBreakerRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BreakerRecord> out;
  out.reserve(states_.size());
  for (const auto& [sid, s] : states_) out.push_back(RecordOf(sid, s));
  return out;
}

int64_t CircuitBreakerRegistry::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_count_;
}

}  // namespace focus::crawl
