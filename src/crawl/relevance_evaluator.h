// The crawler's hook into the classifier (§2.1.2).
#ifndef FOCUS_CRAWL_RELEVANCE_EVALUATOR_H_
#define FOCUS_CRAWL_RELEVANCE_EVALUATOR_H_

#include <vector>

#include "classify/hierarchical_classifier.h"
#include "taxonomy/taxonomy.h"
#include "text/document.h"
#include "util/status.h"

namespace focus::crawl {

struct PageJudgment {
  // Soft-focus relevance R(d) (Equation 3).
  double relevance = 0;
  // Best leaf class c* (used by the hard focus rule).
  taxonomy::Cid best_leaf = taxonomy::kRootCid;
  // True when some ancestor-or-self of c* is good (hard focus predicate).
  bool best_leaf_is_good = false;
};

class RelevanceEvaluator {
 public:
  virtual ~RelevanceEvaluator() = default;
  virtual Result<PageJudgment> Judge(const text::TermVector& terms) = 0;

  // Judges a micro-batch of pages in one call (the crawl pipeline's
  // classify stage). The default delegates to Judge() per document;
  // BatchRelevanceEvaluator overrides it with one relational bulk-probe
  // plan per batch. Implementations must be safe to call from concurrent
  // fetch workers and must return exactly docs.size() judgments, aligned
  // by index.
  virtual Result<std::vector<PageJudgment>> JudgeBatch(
      const std::vector<text::TermVector>& docs) {
    std::vector<PageJudgment> out;
    out.reserve(docs.size());
    for (const text::TermVector& terms : docs) {
      FOCUS_ASSIGN_OR_RETURN(PageJudgment j, Judge(terms));
      out.push_back(j);
    }
    return out;
  }
};

// Judges pages with the in-memory hierarchical classifier. The DB-resident
// probe classifiers are drop-in equivalents (identical scores — see
// classify tests); benchmarks choose per access path.
class ClassifierEvaluator final : public RelevanceEvaluator {
 public:
  explicit ClassifierEvaluator(const classify::HierarchicalClassifier* clf)
      : clf_(clf) {}

  Result<PageJudgment> Judge(const text::TermVector& terms) override {
    classify::ClassScores scores = clf_->Classify(terms);
    PageJudgment j;
    j.relevance = scores.Relevance(clf_->tax());
    j.best_leaf = scores.BestLeaf(clf_->tax());
    j.best_leaf_is_good = clf_->tax().IsGoodOrSubsumed(j.best_leaf);
    return j;
  }

 private:
  const classify::HierarchicalClassifier* clf_;
};

}  // namespace focus::crawl

#include "classify/single_probe.h"

namespace focus::crawl {

// Judges pages through the DB-resident statistics tables (the paper's
// configuration: the classifier is "integrated into the database").
// Produces scores identical to ClassifierEvaluator; the difference is the
// access path — every term triggers a BLOB/STAT probe through the buffer
// pool.
class SingleProbeEvaluator final : public RelevanceEvaluator {
 public:
  explicit SingleProbeEvaluator(const classify::SingleProbeClassifier* clf,
                                const taxonomy::Taxonomy* tax)
      : clf_(clf), tax_(tax) {}

  Result<PageJudgment> Judge(const text::TermVector& terms) override {
    FOCUS_ASSIGN_OR_RETURN(classify::ClassScores scores,
                           clf_->Classify(terms));
    PageJudgment j;
    j.relevance = scores.Relevance(*tax_);
    j.best_leaf = scores.BestLeaf(*tax_);
    j.best_leaf_is_good = tax_->IsGoodOrSubsumed(j.best_leaf);
    return j;
  }

 private:
  const classify::SingleProbeClassifier* clf_;
  const taxonomy::Taxonomy* tax_;
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_RELEVANCE_EVALUATOR_H_
