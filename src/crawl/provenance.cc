#include "crawl/provenance.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "crawl/crawler.h"
#include "crawl/frontier.h"
#include "obs/admin_server.h"
#include "obs/json_writer.h"
#include "crawl/retry_policy.h"
#include "sql/exec/basic.h"
#include "sql/exec/batch_ops.h"
#include "sql/exec/join.h"
#include "sql/exec/parallel.h"
#include "sql/exec/scan.h"
#include "sql/exec/sort.h"

namespace focus::crawl {

using sql::SortKey;
using sql::TypeId;
using sql::Value;

sql::Schema EventsSchema() {
  return sql::Schema({{"seq", TypeId::kInt64},
                      {"type", TypeId::kInt32},
                      {"oid", TypeId::kInt64},
                      {"parent_oid", TypeId::kInt64},
                      {"sid", TypeId::kInt32},
                      {"virtual_us", TypeId::kInt64},
                      {"value", TypeId::kDouble},
                      {"aux", TypeId::kInt64}});
}

Result<sql::Table*> MaterializeEvents(const obs::EventLog& log,
                                      sql::Catalog* catalog,
                                      const std::string& name,
                                      const obs::EventFilter& filter) {
  std::vector<obs::CrawlEvent> events = log.Snapshot(filter);
  if (catalog->GetTable(name) != nullptr) {
    FOCUS_RETURN_IF_ERROR(catalog->DropTable(name));
  }
  FOCUS_ASSIGN_OR_RETURN(sql::Table * table,
                         catalog->CreateTable(name, EventsSchema()));
  for (const obs::CrawlEvent& e : events) {
    FOCUS_RETURN_IF_ERROR(
        table
            ->Insert(sql::Tuple({Value::Int64(static_cast<int64_t>(e.seq)),
                                 Value::Int32(static_cast<int32_t>(e.type)),
                                 Value::Int64(e.oid), Value::Int64(e.parent_oid),
                                 Value::Int32(e.sid), Value::Int64(e.virtual_us),
                                 Value::Double(e.value), Value::Int64(e.aux)}))
            .status());
  }
  return table;
}

namespace {

// EVENTS column positions (EventsSchema order).
constexpr int kColSeq = 0;
constexpr int kColType = 1;
constexpr int kColOid = 2;
constexpr int kColParent = 3;
constexpr int kColValue = 6;

constexpr int32_t kAdmit =
    static_cast<int32_t>(obs::CrawlEventType::kFrontierAdmit);

Result<std::vector<sql::Tuple>> DiscoveryEdgesScalar(const sql::Table* events,
                                                     const sql::Table* link) {
  using namespace sql;
  // Admit events that claim a discovering parent.
  OperatorPtr admits = std::make_unique<Filter>(
      std::make_unique<SeqScan>(events), [](const Tuple& t) {
        // oids are full-range 64-bit hashes (negative as int64 is fine);
        // only the exact sentinel -1 means "no parent".
        return t.Get(kColType).AsInt32() == kAdmit &&
               t.Get(kColParent).AsInt64() != -1;
      });
  OperatorPtr projected = Project::Columns(
      std::move(admits), {kColSeq, kColOid, kColParent, kColValue});
  // projected: 0 seq, 1 oid, 2 parent_oid, 3 value
  OperatorPtr by_edge = std::make_unique<Sort>(
      std::move(projected), std::vector<SortKey>{{2, false}, {1, false}});
  OperatorPtr link_sorted = std::make_unique<Sort>(
      std::make_unique<SeqScan>(link),
      std::vector<SortKey>{{0, false}, {2, false}});
  OperatorPtr joined = std::make_unique<MergeJoin>(
      std::move(by_edge), std::move(link_sorted), std::vector<int>{2, 1},
      std::vector<int>{0, 2});
  // joined: 0 seq, 1 oid, 2 parent_oid, 3 value, 4.. LINK (wgt_fwd at 8)
  OperatorPtr out = Project::Columns(std::move(joined), {0, 1, 2, 3, 8});
  OperatorPtr by_seq =
      std::make_unique<Sort>(std::move(out), std::vector<SortKey>{{0, false}});
  return Collect(by_seq.get());
}

sql::BatchPredicate AdmitWithParentPred() {
  // Over the scanned (seq, type, oid, parent_oid, value) projection.
  return [](const sql::Batch& in, std::vector<int64_t>* sel) {
    const auto& type = in.col(1).i32;
    const auto& parent = in.col(3).i64;
    for (size_t i = 0; i < type.size(); ++i) {
      if (type[i] == kAdmit && parent[i] != -1) {
        sel->push_back(static_cast<int64_t>(i));
      }
    }
  };
}

std::vector<sql::BatchExpr> AdmitProjection() {
  std::vector<sql::BatchExpr> exprs;
  exprs.push_back(sql::BatchExpr::Passthrough("seq", TypeId::kInt64, 0));
  exprs.push_back(sql::BatchExpr::Passthrough("oid", TypeId::kInt64, 2));
  exprs.push_back(
      sql::BatchExpr::Passthrough("parent_oid", TypeId::kInt64, 3));
  exprs.push_back(sql::BatchExpr::Passthrough("value", TypeId::kDouble, 4));
  return exprs;
}

std::vector<sql::BatchExpr> EdgeProjection() {
  std::vector<sql::BatchExpr> exprs;
  exprs.push_back(sql::BatchExpr::Passthrough("seq", TypeId::kInt64, 0));
  exprs.push_back(sql::BatchExpr::Passthrough("oid", TypeId::kInt64, 1));
  exprs.push_back(
      sql::BatchExpr::Passthrough("parent_oid", TypeId::kInt64, 2));
  exprs.push_back(sql::BatchExpr::Passthrough("value", TypeId::kDouble, 3));
  exprs.push_back(sql::BatchExpr::Passthrough("wgt_fwd", TypeId::kDouble, 8));
  return exprs;
}

// Scan columns shared by the vectorized and parallel plans: the URL
// strings never leave EVENTS/LINK, so only the joined numerics are read.
const std::vector<int> kEventScanCols = {kColSeq, kColType, kColOid,
                                         kColParent, kColValue};

Result<std::vector<sql::Tuple>> DiscoveryEdgesVectorized(
    const sql::Table* events, const sql::Table* link) {
  using namespace sql;
  BatchOperatorPtr scan =
      std::make_unique<BatchTableScan>(events, kEventScanCols);
  BatchOperatorPtr filtered =
      std::make_unique<BatchFilter>(std::move(scan), AdmitWithParentPred());
  BatchOperatorPtr projected =
      std::make_unique<BatchProject>(std::move(filtered), AdmitProjection());
  BatchOperatorPtr by_edge = std::make_unique<BatchSort>(
      std::move(projected), std::vector<SortKey>{{2, false}, {1, false}});
  BatchOperatorPtr link_sorted = std::make_unique<BatchSort>(
      std::make_unique<BatchTableScan>(link),
      std::vector<SortKey>{{0, false}, {2, false}});
  BatchOperatorPtr joined = std::make_unique<BatchMergeJoin>(
      std::move(by_edge), std::move(link_sorted), std::vector<int>{2, 1},
      std::vector<int>{0, 2});
  BatchOperatorPtr out =
      std::make_unique<BatchProject>(std::move(joined), EdgeProjection());
  BatchOperatorPtr by_seq = std::make_unique<BatchSort>(
      std::move(out), std::vector<SortKey>{{0, false}});
  Devectorize tail(std::move(by_seq));
  return Collect(&tail);
}

Result<std::vector<sql::Tuple>> DiscoveryEdgesParallel(const sql::Table* events,
                                                       const sql::Table* link,
                                                       int num_threads) {
  using namespace sql;
  MorselDispatcher disp(num_threads);
  BatchOperatorPtr scan =
      std::make_unique<ParallelTableScan>(events, &disp, kEventScanCols);
  BatchOperatorPtr filtered = std::make_unique<ParallelFilter>(
      std::move(scan), AdmitWithParentPred(), &disp);
  BatchOperatorPtr projected = std::make_unique<ParallelProject>(
      std::move(filtered), AdmitProjection(), &disp);
  // The parallel merge join fuses both sides' sorts (oids span the full
  // 64-bit hash range, so the radix planner falls back to the serial sort
  // kernels — same output either way).
  BatchOperatorPtr link_scan = std::make_unique<ParallelTableScan>(link, &disp);
  BatchOperatorPtr joined = std::make_unique<ParallelMergeJoin>(
      std::move(projected), std::move(link_scan), std::vector<int>{2, 1},
      std::vector<int>{0, 2}, &disp);
  BatchOperatorPtr out = std::make_unique<ParallelProject>(
      std::move(joined), EdgeProjection(), &disp);
  BatchOperatorPtr by_seq = std::make_unique<ParallelSort>(
      std::move(out), std::vector<SortKey>{{0, false}}, &disp);
  Devectorize tail(std::move(by_seq));
  return Collect(&tail);
}

}  // namespace

Result<std::vector<sql::Tuple>> DiscoveryEdges(const sql::Table* events,
                                               const sql::Table* link,
                                               sql::ExecEngine engine,
                                               int num_threads) {
  switch (engine) {
    case sql::ExecEngine::kScalar:
      return DiscoveryEdgesScalar(events, link);
    case sql::ExecEngine::kVectorized:
      return DiscoveryEdgesVectorized(events, link);
    case sql::ExecEngine::kParallel:
      return DiscoveryEdgesParallel(events, link, num_threads);
    case sql::ExecEngine::kEncoded:
      // The introspection join is tiny; codes would cost more than they
      // save. Encoded sessions fall back to the vectorized plan.
      return DiscoveryEdgesVectorized(events, link);
  }
  return Status::InvalidArgument("unknown exec engine");
}

Result<std::vector<DiscoveryHop>> DiscoveryPath(const obs::EventLog& log,
                                                const CrawlDb& db,
                                                uint64_t target_oid) {
  std::vector<obs::CrawlEvent> events = log.Snapshot();

  // Per-oid lifecycle rollup. The first admit (lowest seq — Snapshot is
  // sequence-ordered) defines the discovering parent; later re-admits
  // (backlink boosts, truncated roots already known) do not rewrite
  // history.
  struct OidFacts {
    const obs::CrawlEvent* admit = nullptr;
    int attempts = 0;
    int failures = 0;
    int retries = 0;
    int breaker_denials = 0;
    std::vector<int64_t> failure_classes;
    bool visited = false;
    double relevance = 0.0;
  };
  std::unordered_map<int64_t, OidFacts> facts;
  for (const obs::CrawlEvent& e : events) {
    // URL oids are full-range 64-bit hashes, so negative int64 values are
    // real URLs; only the exact -1 marks a process-level event.
    if (e.oid == -1) continue;
    OidFacts& f = facts[e.oid];
    switch (e.type) {
      case obs::CrawlEventType::kFrontierAdmit:
        if (f.admit == nullptr) f.admit = &e;
        break;
      case obs::CrawlEventType::kFetchAttempt:
        ++f.attempts;
        break;
      case obs::CrawlEventType::kFetchFailure:
        ++f.failures;
        f.failure_classes.push_back(e.aux);
        break;
      case obs::CrawlEventType::kRetryScheduled:
        ++f.retries;
        break;
      case obs::CrawlEventType::kBreakerDenied:
        ++f.breaker_denials;
        break;
      case obs::CrawlEventType::kClassifyVerdict:
        f.visited = true;
        f.relevance = e.value;
        break;
      default:
        break;
    }
  }

  auto target = facts.find(static_cast<int64_t>(target_oid));
  if (target == facts.end() || target->second.admit == nullptr) {
    return Status::NotFound("no admit event for oid " +
                            std::to_string(target_oid));
  }

  // Walk child -> parent, then reverse so the seed leads.
  std::vector<DiscoveryHop> path;
  std::unordered_set<int64_t> on_path;  // cycle guard (corrupt logs)
  int64_t cur = static_cast<int64_t>(target_oid);
  while (cur != -1 && on_path.insert(cur).second) {
    auto it = facts.find(cur);
    if (it == facts.end() || it->second.admit == nullptr) {
      return Status::Internal("discovery chain broken at oid " +
                              std::to_string(cur) +
                              ": no admit event (ring overwrote it?)");
    }
    const OidFacts& f = it->second;
    DiscoveryHop hop;
    hop.oid = cur;
    hop.parent_oid = f.admit->parent_oid;
    hop.admit_seq = f.admit->seq;
    hop.priority = f.admit->value;
    hop.device = f.admit->aux;
    hop.reconciled = f.admit->reconciled;
    hop.attempts = f.attempts;
    hop.failures = f.failures;
    hop.retries = f.retries;
    hop.breaker_denials = f.breaker_denials;
    hop.failure_classes = f.failure_classes;
    hop.visited = f.visited;
    hop.relevance = f.relevance;
    FOCUS_ASSIGN_OR_RETURN(auto rec, db.Lookup(static_cast<uint64_t>(cur)));
    if (rec.has_value()) {
      hop.url = rec->url;
      if (!hop.visited) hop.relevance = rec->relevance;
    }
    path.push_back(std::move(hop));
    cur = path.back().parent_oid;
  }
  if (cur != -1) {
    return Status::Internal("discovery chain for oid " +
                            std::to_string(target_oid) + " cycles at oid " +
                            std::to_string(cur));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string FormatDiscoveryPath(const std::vector<DiscoveryHop>& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    const DiscoveryHop& hop = path[i];
    for (size_t d = 0; d < i; ++d) out += "  ";
    if (i == 0) {
      out += "seed ";
    } else {
      const char* via = hop.device == 1   ? "truncation"
                        : hop.device == 2 ? "backlink"
                                          : "link";
      out += "└─(";
      out += via;
      out += ")─> ";
    }
    out += hop.url.empty() ? ("oid:" + std::to_string(hop.oid)) : hop.url;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  [seq %llu, priority %.3f, attempts %d, failures %d, "
                  "retries %d, denials %d%s%s",
                  static_cast<unsigned long long>(hop.admit_seq), hop.priority,
                  hop.attempts, hop.failures, hop.retries, hop.breaker_denials,
                  hop.reconciled ? ", reconciled" : "",
                  hop.visited ? "" : ", unvisited");
    out += buf;
    if (hop.visited) {
      std::snprintf(buf, sizeof(buf), ", R=%.3f", hop.relevance);
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

void RegisterCrawlAdminEndpoints(obs::AdminServer* server, Crawler* crawler) {
  server->AddHandler("/frontier", [crawler](const obs::AdminRequest&) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("shards").BeginArray();
    size_t live = 0, parked = 0;
    for (const ShardedFrontier::ShardStats& s :
         crawler->frontier()->StatsSnapshot()) {
      live += s.live;
      parked += s.parked;
      w.BeginObject()
          .Field("shard", s.shard)
          .Field("live", static_cast<uint64_t>(s.live))
          .Field("parked", static_cast<uint64_t>(s.parked))
          .Field("next_ready_us", s.next_ready_us)
          .EndObject();
    }
    w.EndArray();
    w.Field("live", static_cast<uint64_t>(live));
    w.Field("parked", static_cast<uint64_t>(parked));
    w.Key("breakers").BeginArray();
    for (const BreakerRecord& b : crawler->breakers().Snapshot()) {
      w.BeginObject()
          .Field("sid", b.sid)
          .Field("state", BreakerStateName(b.state))
          .Field("failures", b.consecutive_failures)
          .Field("open_until_us", b.open_until_us)
          .Field("cooldown_s", b.cooldown_s)
          .EndObject();
    }
    w.EndArray();
    w.EndObject();
    obs::AdminResponse resp;
    resp.content_type = "application/json";
    resp.body = w.TakeString();
    return resp;
  });
}

}  // namespace focus::crawl
