#include "crawl/retry_policy.h"

#include <algorithm>
#include <cmath>

#include "obs/event_log.h"
#include "util/hash.h"

namespace focus::crawl {

const char* FailureClassName(FailureClass cls) {
  switch (cls) {
    case FailureClass::kTransient:
      return "transient";
    case FailureClass::kTimeout:
      return "timeout";
    case FailureClass::kPermanent:
      return "permanent";
    case FailureClass::kServerBusy:
      return "server_busy";
  }
  return "?";
}

FailureClass ClassifyFetchFailure(const Status& error) {
  switch (error.code()) {
    case StatusCode::kNotFound:
      return FailureClass::kPermanent;
    case StatusCode::kDeadlineExceeded:
      return FailureClass::kTimeout;
    case StatusCode::kResourceExhausted:
      return FailureClass::kServerBusy;
    default:
      return FailureClass::kTransient;
  }
}

RetryPolicy::Decision RetryPolicy::Decide(const FrontierEntry& entry,
                                          FailureClass cls,
                                          int64_t now_us) const {
  Decision d;
  switch (cls) {
    case FailureClass::kPermanent:
      d.drop = true;
      break;
    case FailureClass::kTimeout:
      d.cost = options_.timeout_cost;
      break;
    case FailureClass::kTransient:
      d.cost = options_.transient_cost;
      break;
    case FailureClass::kServerBusy:
      d.cost = 0;  // outages are the server's fault, not the page's
      break;
  }
  int after = entry.numtries + d.cost;
  if (cls != FailureClass::kServerBusy && after >= retry_budget_) {
    d.drop = true;
  }
  if (d.drop) {
    // Charge the drop up to the full budget: "numtries >= budget" is the
    // durable dropped marker ResumeFromDb skips.
    d.cost = std::max(d.cost, retry_budget_ - entry.numtries);
    if (event_log_ != nullptr) {
      event_log_->Record(obs::CrawlEventType::kUrlDropped,
                         static_cast<int64_t>(entry.oid), /*parent_oid=*/-1,
                         /*sid=*/-1, /*virtual_us=*/now_us, /*value=*/0.0,
                         /*aux=*/static_cast<int64_t>(cls));
    }
    return d;
  }
  d.backoff_s = BackoffSeconds(entry.oid, after);
  d.ready_at_us = now_us + static_cast<int64_t>(d.backoff_s * 1e6);
  if (event_log_ != nullptr) {
    event_log_->Record(obs::CrawlEventType::kRetryScheduled,
                       static_cast<int64_t>(entry.oid), /*parent_oid=*/-1,
                       /*sid=*/-1, /*virtual_us=*/now_us,
                       /*value=*/d.backoff_s, /*aux=*/d.cost);
  }
  return d;
}

double RetryPolicy::BackoffSeconds(uint64_t oid, int32_t numtries) const {
  double base = options_.base_backoff_s *
                std::pow(options_.backoff_multiplier,
                         std::max(0, numtries - 1));
  base = std::min(base, options_.max_backoff_s);
  uint64_t h = Mix64(oid ^ Mix64(0x42414b4f4646ULL +
                                 static_cast<uint64_t>(
                                     static_cast<uint32_t>(numtries))));
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return base * (1.0 + options_.jitter * (2.0 * u - 1.0));
}

}  // namespace focus::crawl
