#include "crawl/frontier.h"

#include <algorithm>
#include <limits>

namespace focus::crawl {

const char* PolicyName(PriorityPolicy policy) {
  switch (policy) {
    case PriorityPolicy::kAggressiveDiscovery:
      return "aggressive_discovery";
    case PriorityPolicy::kBreadthFirst:
      return "breadth_first";
    case PriorityPolicy::kRevisitHubs:
      return "revisit_hubs";
    case PriorityPolicy::kRetryDeadLinks:
      return "retry_dead_links";
    case PriorityPolicy::kBacklinkCount:
      return "backlink_count";
    case PriorityPolicy::kPageRankOrder:
      return "pagerank_order";
  }
  return "?";
}

// Returns true when `a` has *lower* priority than `b` (max-heap on
// priority). Ties always break on seq then oid for determinism.
bool Frontier::HeapLess::operator()(const HeapItem& a,
                                    const HeapItem& b) const {
  const FrontierEntry& x = a.entry;
  const FrontierEntry& y = b.entry;
  auto tie = [&] {
    if (x.seq != y.seq) return x.seq > y.seq;
    return x.oid > y.oid;
  };
  switch (policy) {
    case PriorityPolicy::kAggressiveDiscovery: {
      if (x.numtries != y.numtries) return x.numtries > y.numtries;
      if (x.relevance != y.relevance) return x.relevance < y.relevance;
      // serverload is a politeness signal ("crude and lazily updated"),
      // not a fine ranking: compare in coarse buckets so lightly-loaded
      // servers tie and FIFO order decides among them.
      int32_t xload = x.serverload / 8, yload = y.serverload / 8;
      if (xload != yload) return xload > yload;
      return tie();
    }
    case PriorityPolicy::kBreadthFirst:
      return tie();
    case PriorityPolicy::kRevisitHubs: {
      // Maintenance ordering: stalest visited pages first; never-visited
      // entries (lastvisited = 0) are not maintenance targets and sort
      // last.
      int64_t lx = x.lastvisited == 0
                       ? std::numeric_limits<int64_t>::max()
                       : x.lastvisited;
      int64_t ly = y.lastvisited == 0
                       ? std::numeric_limits<int64_t>::max()
                       : y.lastvisited;
      if (lx != ly) return lx > ly;
      if (x.hub_score != y.hub_score) return x.hub_score < y.hub_score;
      return tie();
    }
    case PriorityPolicy::kRetryDeadLinks:
      if (x.numtries != y.numtries) return x.numtries < y.numtries;
      if (x.relevance != y.relevance) return x.relevance < y.relevance;
      return tie();
    case PriorityPolicy::kBacklinkCount:
      if (x.backlinks != y.backlinks) return x.backlinks < y.backlinks;
      return tie();
    case PriorityPolicy::kPageRankOrder:
      if (x.hub_score != y.hub_score) return x.hub_score < y.hub_score;
      return tie();
  }
  return tie();
}

void Frontier::AddOrUpdate(const FrontierEntry& entry) {
  FrontierEntry e = entry;
  auto it = live_.find(e.oid);
  if (it != live_.end()) {
    e.seq = it->second.second.seq;  // preserve insertion order
  } else if (e.seq == 0) {
    e.seq = next_seq_++;
  } else {
    next_seq_ = std::max(next_seq_, e.seq + 1);
  }
  uint64_t version = next_version_++;
  live_[e.oid] = {version, e};
  heap_.push_back(HeapItem{e.oid, version, e});
  std::push_heap(heap_.begin(), heap_.end(), HeapLess{policy_});
}

std::optional<FrontierEntry> Frontier::PopBest() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapLess{policy_});
    HeapItem item = std::move(heap_.back());
    heap_.pop_back();
    auto it = live_.find(item.oid);
    if (it == live_.end() || it->second.first != item.version) {
      continue;  // stale
    }
    FrontierEntry entry = it->second.second;
    live_.erase(it);
    return entry;
  }
  return std::nullopt;
}

void Frontier::Erase(uint64_t oid) { live_.erase(oid); }

std::vector<FrontierEntry> Frontier::Snapshot() const {
  std::vector<FrontierEntry> out;
  out.reserve(live_.size());
  for (const auto& [oid, versioned] : live_) {
    out.push_back(versioned.second);
  }
  return out;
}

const FrontierEntry* Frontier::Peek(uint64_t oid) const {
  auto it = live_.find(oid);
  return it == live_.end() ? nullptr : &it->second.second;
}

void Frontier::SetPolicy(PriorityPolicy policy) {
  policy_ = policy;
  RebuildHeap();
}

void Frontier::RebuildHeap() {
  heap_.clear();
  heap_.reserve(live_.size());
  for (const auto& [oid, versioned] : live_) {
    heap_.push_back(HeapItem{oid, versioned.first, versioned.second});
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapLess{policy_});
}

}  // namespace focus::crawl
