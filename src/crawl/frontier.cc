#include "crawl/frontier.h"

#include <algorithm>
#include <limits>

#include "crawl/crawl_db.h"
#include "obs/event_log.h"

namespace focus::crawl {

const char* PolicyName(PriorityPolicy policy) {
  switch (policy) {
    case PriorityPolicy::kAggressiveDiscovery:
      return "aggressive_discovery";
    case PriorityPolicy::kBreadthFirst:
      return "breadth_first";
    case PriorityPolicy::kRevisitHubs:
      return "revisit_hubs";
    case PriorityPolicy::kRetryDeadLinks:
      return "retry_dead_links";
    case PriorityPolicy::kBacklinkCount:
      return "backlink_count";
    case PriorityPolicy::kPageRankOrder:
      return "pagerank_order";
  }
  return "?";
}

// Returns true when `a` has *lower* priority than `b` (max-heap on
// priority). Ties always break on seq then oid for determinism.
bool Frontier::HeapLess::operator()(const HeapItem& a,
                                    const HeapItem& b) const {
  const FrontierEntry& x = a.entry;
  const FrontierEntry& y = b.entry;
  auto tie = [&] {
    if (x.seq != y.seq) return x.seq > y.seq;
    return x.oid > y.oid;
  };
  switch (policy) {
    case PriorityPolicy::kAggressiveDiscovery: {
      if (x.numtries != y.numtries) return x.numtries > y.numtries;
      if (x.relevance != y.relevance) return x.relevance < y.relevance;
      // serverload is a politeness signal ("crude and lazily updated"),
      // not a fine ranking: compare in coarse buckets so lightly-loaded
      // servers tie and FIFO order decides among them.
      int32_t xload = x.serverload / 8, yload = y.serverload / 8;
      if (xload != yload) return xload > yload;
      return tie();
    }
    case PriorityPolicy::kBreadthFirst:
      return tie();
    case PriorityPolicy::kRevisitHubs: {
      // Maintenance ordering: stalest visited pages first; never-visited
      // entries (lastvisited = 0) are not maintenance targets and sort
      // last.
      int64_t lx = x.lastvisited == 0
                       ? std::numeric_limits<int64_t>::max()
                       : x.lastvisited;
      int64_t ly = y.lastvisited == 0
                       ? std::numeric_limits<int64_t>::max()
                       : y.lastvisited;
      if (lx != ly) return lx > ly;
      if (x.hub_score != y.hub_score) return x.hub_score < y.hub_score;
      return tie();
    }
    case PriorityPolicy::kRetryDeadLinks:
      if (x.numtries != y.numtries) return x.numtries < y.numtries;
      if (x.relevance != y.relevance) return x.relevance < y.relevance;
      return tie();
    case PriorityPolicy::kBacklinkCount:
      if (x.backlinks != y.backlinks) return x.backlinks < y.backlinks;
      return tie();
    case PriorityPolicy::kPageRankOrder:
      if (x.hub_score != y.hub_score) return x.hub_score < y.hub_score;
      return tie();
  }
  return tie();
}

void Frontier::AddOrUpdate(const FrontierEntry& entry) {
  FrontierEntry e = entry;
  auto it = live_.find(e.oid);
  if (it != live_.end()) {
    e.seq = it->second.second.seq;  // preserve insertion order
  } else if (e.seq == 0) {
    e.seq = next_seq_++;
  } else {
    next_seq_ = std::max(next_seq_, e.seq + 1);
  }
  uint64_t version = next_version_++;
  live_[e.oid] = {version, e};
  if (e.ready_at_us > 0) {
    parked_.push_back(ParkedItem{e.oid, version, e.ready_at_us});
    std::push_heap(parked_.begin(), parked_.end(), ParkedLater{});
  } else {
    heap_.push_back(HeapItem{e.oid, version, e});
    std::push_heap(heap_.begin(), heap_.end(), HeapLess{policy_});
  }
}

std::optional<FrontierEntry> Frontier::PopBest(int64_t now_us) {
  Promote(now_us);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapLess{policy_});
    HeapItem item = std::move(heap_.back());
    heap_.pop_back();
    auto it = live_.find(item.oid);
    if (it == live_.end() || it->second.first != item.version) {
      continue;  // stale
    }
    FrontierEntry entry = it->second.second;
    live_.erase(it);
    return entry;
  }
  return std::nullopt;
}

void Frontier::CleanTop() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    auto it = live_.find(top.oid);
    if (it != live_.end() && it->second.first == top.version) return;
    std::pop_heap(heap_.begin(), heap_.end(), HeapLess{policy_});
    heap_.pop_back();
  }
}

const FrontierEntry* Frontier::PeekBest(int64_t now_us) {
  Promote(now_us);
  CleanTop();
  return heap_.empty() ? nullptr : &heap_.front().entry;
}

void Frontier::CleanParkedTop() {
  while (!parked_.empty()) {
    const ParkedItem& top = parked_.front();
    auto it = live_.find(top.oid);
    if (it != live_.end() && it->second.first == top.version) return;
    std::pop_heap(parked_.begin(), parked_.end(), ParkedLater{});
    parked_.pop_back();
  }
}

void Frontier::Promote(int64_t now_us) {
  while (true) {
    CleanParkedTop();
    if (parked_.empty() || parked_.front().ready_at_us > now_us) return;
    std::pop_heap(parked_.begin(), parked_.end(), ParkedLater{});
    ParkedItem item = parked_.back();
    parked_.pop_back();
    auto it = live_.find(item.oid);
    if (it == live_.end() || it->second.first != item.version) continue;
    // The entry is ready now; clear the gate so later re-ranks (which copy
    // the live entry) don't re-park it.
    it->second.second.ready_at_us = 0;
    heap_.push_back(HeapItem{item.oid, item.version, it->second.second});
    std::push_heap(heap_.begin(), heap_.end(), HeapLess{policy_});
    if (event_log_ != nullptr) {
      // now_us = the pop deadline that surfaced the entry; aux = the
      // not-before time it had been parked behind.
      event_log_->Record(obs::CrawlEventType::kFrontierPromote,
                         static_cast<int64_t>(item.oid), /*parent_oid=*/-1,
                         /*sid=*/-1,
                         /*virtual_us=*/now_us == kNoTimeGate ? -1 : now_us,
                         /*value=*/0.0, /*aux=*/item.ready_at_us);
    }
  }
}

size_t Frontier::parked_count() const {
  size_t n = 0;
  for (const auto& [oid, versioned] : live_) {
    if (versioned.second.ready_at_us > 0) ++n;
  }
  return n;
}

std::optional<int64_t> Frontier::NextReadyMicros() {
  CleanParkedTop();
  if (parked_.empty()) return std::nullopt;
  return parked_.front().ready_at_us;
}

bool Frontier::HigherPriority(const FrontierEntry& a, const FrontierEntry& b,
                              PriorityPolicy policy) {
  HeapItem ia{a.oid, 0, a};
  HeapItem ib{b.oid, 0, b};
  // HeapLess(x, y) == "x ranks below y".
  return HeapLess{policy}(ib, ia);
}

void Frontier::Erase(uint64_t oid) { live_.erase(oid); }

std::vector<FrontierEntry> Frontier::Snapshot() const {
  std::vector<FrontierEntry> out;
  out.reserve(live_.size());
  for (const auto& [oid, versioned] : live_) {
    out.push_back(versioned.second);
  }
  return out;
}

const FrontierEntry* Frontier::Peek(uint64_t oid) const {
  auto it = live_.find(oid);
  return it == live_.end() ? nullptr : &it->second.second;
}

void Frontier::SetPolicy(PriorityPolicy policy) {
  policy_ = policy;
  RebuildHeap();
}

void Frontier::RebuildHeap() {
  heap_.clear();
  heap_.reserve(live_.size());
  parked_.clear();
  for (const auto& [oid, versioned] : live_) {
    if (versioned.second.ready_at_us > 0) {
      parked_.push_back(
          ParkedItem{oid, versioned.first, versioned.second.ready_at_us});
    } else {
      heap_.push_back(HeapItem{oid, versioned.first, versioned.second});
    }
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapLess{policy_});
  std::make_heap(parked_.begin(), parked_.end(), ParkedLater{});
}

ShardedFrontier::ShardedFrontier(PriorityPolicy policy, int num_shards) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(policy));
  }
}

int ShardedFrontier::ShardOf(std::string_view url) const {
  uint32_t sid = static_cast<uint32_t>(ServerIdOf(url));
  return static_cast<int>(sid % shards_.size());
}

void ShardedFrontier::AddOrUpdate(const FrontierEntry& entry) {
  FrontierEntry e = entry;
  if (e.seq == 0) e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[ShardOf(e.url)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.frontier.AddOrUpdate(e);
}

std::optional<FrontierEntry> ShardedFrontier::PopBest(int64_t now_us) {
  // Lock every shard (index order) and take the best of the shard bests —
  // with one shard this is exactly Frontier::PopBest.
  for (auto& shard : shards_) shard->mu.lock();
  Shard* best = nullptr;
  const FrontierEntry* best_entry = nullptr;
  PriorityPolicy policy = shards_[0]->frontier.policy();
  for (auto& shard : shards_) {
    const FrontierEntry* top = shard->frontier.PeekBest(now_us);
    if (top == nullptr) continue;
    if (best_entry == nullptr ||
        Frontier::HigherPriority(*top, *best_entry, policy)) {
      best = shard.get();
      best_entry = top;
    }
  }
  std::optional<FrontierEntry> out;
  if (best != nullptr) out = best->frontier.PopBest(now_us);
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    (*it)->mu.unlock();
  }
  return out;
}

std::optional<FrontierEntry> ShardedFrontier::PopPreferShard(int shard,
                                                             int64_t now_us,
                                                             bool* stolen) {
  int k = num_shards();
  if (shard < 0) shard = 0;
  for (int i = 0; i < k; ++i) {
    Shard& s = *shards_[(shard + i) % k];
    std::lock_guard<std::mutex> lock(s.mu);
    std::optional<FrontierEntry> popped = s.frontier.PopBest(now_us);
    if (popped.has_value()) {
      if (stolen != nullptr) *stolen = i != 0;
      return popped;
    }
  }
  if (stolen != nullptr) *stolen = false;
  return std::nullopt;
}

std::optional<int64_t> ShardedFrontier::NextReadyMicros() {
  std::optional<int64_t> earliest;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    std::optional<int64_t> at = shard->frontier.NextReadyMicros();
    if (at.has_value() && (!earliest.has_value() || *at < *earliest)) {
      earliest = at;
    }
  }
  return earliest;
}

void ShardedFrontier::Erase(uint64_t oid) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->frontier.Contains(oid)) {
      shard->frontier.Erase(oid);
      return;
    }
  }
}

bool ShardedFrontier::Contains(uint64_t oid) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->frontier.Contains(oid)) return true;
  }
  return false;
}

std::optional<FrontierEntry> ShardedFrontier::PeekCopy(uint64_t oid) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (const FrontierEntry* e = shard->frontier.Peek(oid); e != nullptr) {
      return *e;
    }
  }
  return std::nullopt;
}

std::vector<FrontierEntry> ShardedFrontier::Snapshot() const {
  std::vector<FrontierEntry> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    std::vector<FrontierEntry> part = shard->frontier.Snapshot();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

void ShardedFrontier::SetPolicy(PriorityPolicy policy) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->frontier.SetPolicy(policy);
  }
}

PriorityPolicy ShardedFrontier::policy() const {
  std::lock_guard<std::mutex> lock(shards_[0]->mu);
  return shards_[0]->frontier.policy();
}

size_t ShardedFrontier::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->frontier.size();
  }
  return n;
}

void ShardedFrontier::SetEventLog(obs::EventLog* log) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->frontier.SetEventLog(log);
  }
}

std::vector<ShardedFrontier::ShardStats> ShardedFrontier::StatsSnapshot()
    const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    ShardStats s;
    s.shard = static_cast<int>(i);
    s.live = shards_[i]->frontier.size();
    s.parked = shards_[i]->frontier.parked_count();
    // Min over live parked entries (exact, unlike the lazily-cleaned
    // parked heap, and const-safe).
    int64_t earliest = -1;
    for (const FrontierEntry& e : shards_[i]->frontier.Snapshot()) {
      if (e.ready_at_us > 0 &&
          (earliest < 0 || e.ready_at_us < earliest)) {
        earliest = e.ready_at_us;
      }
    }
    s.next_ready_us = earliest;
    out.push_back(s);
  }
  return out;
}

}  // namespace focus::crawl
