#include "crawl/metrics.h"

#include <cmath>
#include <deque>
#include <unordered_map>

#include "crawl/crawl_db.h"

namespace focus::crawl {

StageMetrics::StageMetrics(obs::MetricsRegistry* registry) {
  obs::MetricsRegistry* r = obs::MetricsRegistry::OrGlobal(registry);
  auto stage = [&](const char* name) {
    return r->GetCounter("focus_crawl_stage_micros_total",
                         {{"stage", name}});
  };
  fetch_micros_ = stage("fetch");
  classify_micros_ = stage("classify");
  expand_micros_ = stage("expand");
  lock_wait_micros_ = stage("lock_wait");
  batches_ = r->GetCounter("focus_crawl_classify_batches_total");
  batched_pages_ = r->GetCounter("focus_crawl_classify_pages_total");
  frontier_pops_ = r->GetCounter("focus_crawl_frontier_pops_total");
  frontier_steals_ = r->GetCounter("focus_crawl_frontier_steals_total");
  frontier_depth_ = r->GetGauge("focus_crawl_frontier_depth");
  distill_iterations_ = r->GetCounter("focus_distill_iterations_total");
  distill_residual_ = r->GetGauge("focus_distill_last_residual");
  batch_pages_hist_ = r->GetHistogram("focus_crawl_classify_batch_pages");
  batch_micros_hist_ = r->GetHistogram("focus_crawl_classify_batch_micros");
  for (int c = 0; c < 4; ++c) {
    const char* cls = FailureClassName(static_cast<FailureClass>(c));
    fetch_failures_[c] = r->GetCounter("focus_crawl_fetch_failures_total",
                                       {{"class", cls}});
    retries_[c] = r->GetCounter("focus_crawl_retries_total", {{"class", cls}});
  }
  dropped_permanent_ = r->GetCounter("focus_crawl_dropped_urls_total",
                                     {{"reason", "permanent"}});
  dropped_exhausted_ = r->GetCounter("focus_crawl_dropped_urls_total",
                                     {{"reason", "budget_exhausted"}});
  for (int s = 0; s < 3; ++s) {
    breaker_transitions_[s] =
        r->GetCounter("focus_crawl_breaker_transitions_total",
                      {{"to", BreakerStateName(static_cast<BreakerState>(s))}});
  }
  breaker_skips_ = r->GetCounter("focus_crawl_breaker_skips_total");
  open_breakers_ = r->GetGauge("focus_crawl_open_breakers");
  backoff_ms_hist_ = r->GetHistogram("focus_crawl_backoff_delay_ms");
  harvest_rate_ = r->GetGauge("focus_crawl_harvest_rate");
  harvest_ring_.assign(kHarvestWindow, 0.0);
  r->SetHelp("focus_crawl_harvest_rate",
             "Mean relevance over the last 256 visited pages (the paper's "
             "sliding-window harvest-rate signal).");
  r->SetHelp("focus_crawl_stage_micros_total",
             "Wall microseconds spent inside each crawl pipeline stage.");
  r->SetHelp("focus_crawl_fetch_failures_total",
             "Failed fetch attempts by fault class.");
  r->SetHelp("focus_crawl_retries_total",
             "Failures rescheduled with backoff, by fault class.");
  r->SetHelp("focus_crawl_breaker_transitions_total",
             "Circuit-breaker state transitions by target state.");
  Reset();
}

void StageMetrics::RecordVisitRelevance(double r) {
  std::lock_guard<std::mutex> lock(harvest_mu_);
  if (harvest_count_ < kHarvestWindow) {
    ++harvest_count_;
  } else {
    harvest_sum_ -= harvest_ring_[harvest_next_];
  }
  harvest_ring_[harvest_next_] = r;
  harvest_next_ = (harvest_next_ + 1) % kHarvestWindow;
  harvest_sum_ += r;
  harvest_rate_->Set(harvest_sum_ / static_cast<double>(harvest_count_));
}

StageMetricsSnapshot StageMetrics::Raw() const {
  StageMetricsSnapshot s;
  s.fetch_micros = fetch_micros_->Value();
  s.classify_micros = classify_micros_->Value();
  s.expand_micros = expand_micros_->Value();
  s.lock_wait_micros = lock_wait_micros_->Value();
  s.batches = batches_->Value();
  s.batched_pages = batched_pages_->Value();
  s.frontier_pops = frontier_pops_->Value();
  s.frontier_steals = frontier_steals_->Value();
  for (int c = 0; c < 4; ++c) {
    s.fetch_failures += fetch_failures_[c]->Value();
    s.retries += retries_[c]->Value();
  }
  s.dropped_urls = dropped_permanent_->Value() + dropped_exhausted_->Value();
  s.breaker_skips = breaker_skips_->Value();
  s.breaker_opens =
      breaker_transitions_[static_cast<int>(BreakerState::kOpen)]->Value();
  return s;
}

StageMetricsSnapshot StageMetrics::Snapshot() const {
  StageMetricsSnapshot s = Raw();
  s.fetch_micros -= baseline_.fetch_micros;
  s.classify_micros -= baseline_.classify_micros;
  s.expand_micros -= baseline_.expand_micros;
  s.lock_wait_micros -= baseline_.lock_wait_micros;
  s.batches -= baseline_.batches;
  s.batched_pages -= baseline_.batched_pages;
  s.frontier_pops -= baseline_.frontier_pops;
  s.frontier_steals -= baseline_.frontier_steals;
  s.fetch_failures -= baseline_.fetch_failures;
  s.retries -= baseline_.retries;
  s.dropped_urls -= baseline_.dropped_urls;
  s.breaker_skips -= baseline_.breaker_skips;
  s.breaker_opens -= baseline_.breaker_opens;
  return s;
}

void StageMetrics::Reset() { baseline_ = Raw(); }

std::vector<double> MovingAverageRelevance(const std::vector<Visit>& visits,
                                           int window) {
  std::vector<double> out;
  out.reserve(visits.size());
  double sum = 0;
  for (size_t i = 0; i < visits.size(); ++i) {
    sum += visits[i].relevance;
    if (i >= static_cast<size_t>(window)) {
      sum -= visits[i - window].relevance;
      out.push_back(sum / window);
    } else {
      out.push_back(sum / static_cast<double>(i + 1));
    }
  }
  return out;
}

CoverageSeries Coverage(const std::vector<Visit>& test_visits,
                        const std::unordered_set<uint64_t>& ref_oids,
                        const std::unordered_set<int32_t>& ref_servers) {
  CoverageSeries series;
  series.url_fraction.reserve(test_visits.size());
  series.server_fraction.reserve(test_visits.size());
  std::unordered_set<uint64_t> seen_oids;
  std::unordered_set<int32_t> seen_servers;
  size_t url_hits = 0, server_hits = 0;
  for (const Visit& v : test_visits) {
    if (ref_oids.contains(v.oid) && seen_oids.insert(v.oid).second) {
      ++url_hits;
    }
    int32_t sid = ServerIdOf(v.url);
    if (ref_servers.contains(sid) && seen_servers.insert(sid).second) {
      ++server_hits;
    }
    series.url_fraction.push_back(
        ref_oids.empty() ? 0.0
                         : static_cast<double>(url_hits) / ref_oids.size());
    series.server_fraction.push_back(
        ref_servers.empty()
            ? 0.0
            : static_cast<double>(server_hits) / ref_servers.size());
  }
  return series;
}

ReferenceSets RelevantReferenceSets(const std::vector<Visit>& visits,
                                    double log_threshold) {
  ReferenceSets sets;
  double threshold = std::exp(log_threshold);
  for (const Visit& v : visits) {
    if (v.relevance > threshold) {
      sets.oids.insert(v.oid);
      sets.servers.insert(ServerIdOf(v.url));
    }
  }
  return sets;
}

Result<std::vector<int>> CrawledGraphDistances(
    const CrawlDb& db, const std::vector<uint64_t>& sources,
    const std::vector<uint64_t>& targets) {
  // Adjacency from the LINK table.
  std::unordered_map<uint64_t, std::vector<uint64_t>> adj;
  {
    auto it = db.link_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      adj[static_cast<uint64_t>(row.Get(0).AsInt64())].push_back(
          static_cast<uint64_t>(row.Get(2).AsInt64()));
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  std::unordered_map<uint64_t, int> dist;
  std::deque<uint64_t> queue;
  for (uint64_t s : sources) {
    if (dist.emplace(s, 0).second) queue.push_back(s);
  }
  while (!queue.empty()) {
    uint64_t u = queue.front();
    queue.pop_front();
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (uint64_t v : it->second) {
      if (dist.emplace(v, dist[u] + 1).second) queue.push_back(v);
    }
  }
  std::vector<int> out;
  out.reserve(targets.size());
  for (uint64_t t : targets) {
    auto it = dist.find(t);
    out.push_back(it == dist.end() ? -1 : it->second);
  }
  return out;
}

std::vector<int> DistanceHistogram(const std::vector<int>& distances,
                                   int max_distance) {
  std::vector<int> hist(max_distance + 1, 0);
  for (int d : distances) {
    if (d < 0) continue;
    ++hist[std::min(d, max_distance)];
  }
  return hist;
}

}  // namespace focus::crawl
