// Batched page judging through the DB-resident bulk-probe classifier —
// the paper's §2.1.3 insight (batched, I/O-conscious relational plans beat
// per-document probing ~10x, Figure 8) applied to the live crawl loop.
#ifndef FOCUS_CRAWL_BATCH_EVALUATOR_H_
#define FOCUS_CRAWL_BATCH_EVALUATOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "classify/bulk_probe.h"
#include "classify/hierarchical_classifier.h"
#include "crawl/relevance_evaluator.h"
#include "sql/catalog.h"
#include "util/status.h"

namespace focus::crawl {

// Judges micro-batches of fetched pages with one Figure 3 relational plan
// per batch: the batch is materialized as a scratch DOCUMENT table, scored
// in a single BulkProbeClassifier::ClassifyAll pass, and the scores are
// mapped back in input order. Single-page batches (and Judge) fall back to
// the in-memory hierarchical classifier — the relational plan's sequential
// passes only pay off once several documents share them; the scores are
// identical either way (asserted by crawl_pipeline_test to 1e-9).
//
// Thread-safe: concurrent JudgeBatch calls are serialized internally, so
// one evaluator can serve every fetch worker of a crawl pipeline.
class BatchRelevanceEvaluator final : public RelevanceEvaluator {
 public:
  // `scratch` hosts the per-batch DOCUMENT tables (created and dropped per
  // call); all pointers must outlive the evaluator.
  BatchRelevanceEvaluator(const classify::BulkProbeClassifier* bulk,
                          const classify::HierarchicalClassifier* ref,
                          sql::Catalog* scratch)
      : bulk_(bulk), ref_(ref), scratch_(scratch) {}

  Result<PageJudgment> Judge(const text::TermVector& terms) override;
  Result<std::vector<PageJudgment>> JudgeBatch(
      const std::vector<text::TermVector>& docs) override;

  // Like JudgeBatch, but records the batch's Figure 3 plans into `plan`
  // (EXPLAIN ANALYZE; see sql::PlanStats). Batches of size < 2 take the
  // in-memory fallback and record nothing.
  Result<std::vector<PageJudgment>> JudgeBatchWithPlan(
      const std::vector<text::TermVector>& docs, sql::PlanStats* plan);

 private:
  PageJudgment FromScores(const classify::ClassScores& scores) const;
  Result<std::vector<PageJudgment>> JudgeBatchImpl(
      const std::vector<text::TermVector>& docs, sql::PlanStats* plan);

  const classify::BulkProbeClassifier* bulk_;
  const classify::HierarchicalClassifier* ref_;
  sql::Catalog* scratch_;
  std::mutex mutex_;  // serializes scratch-table use across fetch workers
  uint64_t next_batch_ = 0;
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_BATCH_EVALUATOR_H_
