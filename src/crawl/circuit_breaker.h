// Per-server circuit breakers: closed → open → half-open probe.
//
// A server that fails repeatedly is quarantined (its frontier entries are
// parked until the breaker's next probe time) so workers stop burning
// fetch budget on dead hosts. Breakers only *delay* attempts — they never
// consume retry budget or drop entries — so enabling them cannot change
// which pages a crawl-to-exhaustion eventually visits, only how much
// virtual time it wastes on unresponsive servers.
#ifndef FOCUS_CRAWL_CIRCUIT_BREAKER_H_
#define FOCUS_CRAWL_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace focus::obs {
class EventLog;
}  // namespace focus::obs

namespace focus::crawl {

struct CircuitBreakerOptions {
  bool enabled = true;
  int failure_threshold = 4;      // consecutive failures that open it
  double cooldown_s = 20.0;       // first open duration
  double cooldown_multiplier = 2.0;  // escalation on re-open
  double max_cooldown_s = 240.0;
  double probe_interval_s = 5.0;  // min spacing of half-open probes
};

enum class BreakerState : int32_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateName(BreakerState state);

// Snapshot of one server's breaker; also the persistence format backing
// the BREAKER table, so ResumeFromDb can restore quarantines.
struct BreakerRecord {
  int32_t sid = 0;  // ServerIdOf(url), not the webgraph's internal id
  BreakerState state = BreakerState::kClosed;
  int32_t consecutive_failures = 0;
  int64_t open_until_us = 0;
  double cooldown_s = 0;  // duration of the *next* open period
};

// What one call observed. `transitioned` is set when the call moved the
// breaker between states; `record` then holds the post-call state for
// metrics and persistence.
struct BreakerOutcome {
  bool allow = true;        // Admit only
  int64_t retry_at_us = 0;  // Admit only: park until here when !allow
  bool transitioned = false;
  BreakerRecord record;
};

// Internally locked; safe to call from concurrent fetch workers.
class CircuitBreakerRegistry {
 public:
  explicit CircuitBreakerRegistry(const CircuitBreakerOptions& options)
      : options_(options) {}

  // May the crawler attempt a fetch on `sid` at `now_us`? An open breaker
  // denies until its cooldown elapses (then allows one half-open probe per
  // probe interval).
  BreakerOutcome Admit(int32_t sid, int64_t now_us);
  BreakerOutcome OnSuccess(int32_t sid);
  BreakerOutcome OnFailure(int32_t sid, int64_t now_us);

  void Restore(const BreakerRecord& rec);
  std::vector<BreakerRecord> Snapshot() const;
  // Breakers currently open or half-open.
  int64_t open_count() const;

  // Provenance hook: state transitions record kBreakerTransition events.
  // nullptr (the default) disables.
  void SetEventLog(obs::EventLog* log) { event_log_ = log; }

 private:
  // Records the transition carried by `out` (no-op without a log or when
  // the call did not transition). `now_us` may be -1 (OnSuccess has no
  // virtual timestamp).
  void EmitTransition(const BreakerOutcome& out, int64_t now_us) const;
  struct State {
    BreakerState state = BreakerState::kClosed;
    int32_t fails = 0;
    int64_t open_until_us = 0;
    double cooldown_s = 0;
    int64_t next_probe_at_us = 0;
  };

  BreakerRecord RecordOf(int32_t sid, const State& s) const;

  CircuitBreakerOptions options_;
  obs::EventLog* event_log_ = nullptr;
  mutable std::mutex mu_;
  std::unordered_map<int32_t, State> states_;
  int64_t open_count_ = 0;
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_CIRCUIT_BREAKER_H_
