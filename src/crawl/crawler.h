// The focused crawler (§2, §3.2): fetch → classify → expand, driven by the
// classifier's relevance judgments and (optionally) periodic distillation.
#ifndef FOCUS_CRAWL_CRAWLER_H_
#define FOCUS_CRAWL_CRAWLER_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crawl/crawl_db.h"
#include "crawl/frontier.h"
#include "crawl/relevance_evaluator.h"
#include "distill/distiller.h"
#include "sql/catalog.h"
#include "text/tokenizer.h"
#include "util/clock.h"
#include "webgraph/simulated_web.h"

namespace focus::crawl {

// How relevance judgments gate link expansion (§2.1.2).
enum class ExpansionRule {
  // Insert outlinks always; the frontier priority (relevance-ordered) does
  // the focusing. The paper's preferred, stagnation-robust rule.
  kSoftFocus,
  // Expand only when the best leaf class has a good ancestor-or-self.
  // Faithful to the paper's description — and to its failure mode: crawls
  // can stagnate (§2.1.2, §3.7).
  kHardFocus,
  // Ignore the classifier for control (still recorded for measurement):
  // the standard-crawler baseline of Figure 5(a).
  kUnfocused,
};

struct CrawlerOptions {
  int max_fetches = 6000;
  int max_retries = 3;
  ExpansionRule expansion = ExpansionRule::kSoftFocus;
  PriorityPolicy policy = PriorityPolicy::kAggressiveDiscovery;

  // Periodic distillation (0 = off): every `distill_every` visits, refresh
  // edge weights, run the join distiller and raise the priority of
  // unvisited pages cited by the top hubs (§3.2, §3.7).
  int distill_every = 0;
  // For the kPageRankOrder policy: recompute PageRank over the known
  // crawl graph every `pagerank_every` visits and refresh frontier
  // priorities (0 = at seed time only).
  int pagerank_every = 0;
  int distill_iterations = 5;
  double distill_rho = 0.0;
  int top_hubs_to_boost = 15;
  double hub_boost_relevance = 0.9;

  // §3.2's URL-truncation device: when expanding links, also enqueue the
  // host root ("http://host/") of each target, hunting for server index
  // pages.
  bool try_truncated_urls = false;
  // §3.2's backward-crawling device: after fetching a strongly relevant
  // page, enqueue pages that point to it (they are radius-2 hub
  // candidates). Requires the web's backlink metadata service.
  bool expand_backlinks = false;
  int backlinks_per_page = 5;
  double backlink_relevance_threshold = 0.5;

  int num_threads = 1;
};

struct Visit {
  int fetch_index = 0;  // 0-based order of successful fetches
  uint64_t oid = 0;
  std::string url;
  double relevance = 0;
  taxonomy::Cid best_leaf = 0;
  int64_t virtual_time_us = 0;
};

struct CrawlStats {
  uint64_t attempts = 0;
  uint64_t failures = 0;
  uint64_t distill_rounds = 0;
  bool stagnated = false;  // frontier ran dry before the budget
};

class Crawler {
 public:
  // `catalog` hosts the HUBS/AUTH tables for periodic distillation; all
  // pointers must outlive the crawler.
  Crawler(webgraph::SimulatedWeb* web, RelevanceEvaluator* evaluator,
          CrawlDb* db, sql::Catalog* catalog, CrawlerOptions options);

  // Registers a start URL with relevance estimate 1.
  Status AddSeed(std::string_view url);

  // Rebuilds the in-memory frontier from the CRAWL table — the recovery
  // path §3.1 motivates ("Few pages on the Web are formally checked for
  // well-formedness, hence all crawlers crash"): the table is the durable
  // crawl state; a fresh Crawler over the same CrawlDb resumes where the
  // dead one stopped. Unvisited rows within the retry limit re-enter the
  // frontier with their stored priority fields; visited rows seed the
  // link-dedup set so resumed revisits do not duplicate LINK rows.
  Status ResumeFromDb();

  // Runs until the fetch budget is spent or the frontier stagnates.
  Status Crawl();

  const std::vector<Visit>& visits() const { return visits_; }
  const CrawlStats& stats() const { return stats_; }
  const VirtualClock& clock() const { return clock_; }
  Frontier* frontier() { return &frontier_; }
  CrawlDb* db() const { return db_; }
  const distill::DistillTables& distill_tables() const {
    return distill_tables_;
  }

  // Switches the frontier ordering mid-crawl (§3.2's dynamically
  // reconfigurable priority controls).
  void SetPolicy(PriorityPolicy policy) { frontier_.SetPolicy(policy); }

  // Crawl maintenance (§3.2): re-enqueues up to `count` already-visited
  // pages under the (lastvisited asc, hub_score desc) ordering and raises
  // the fetch budget accordingly. `hubs` supplies hub scores from a
  // distillation round (may be null). Switches the frontier policy to
  // kRevisitHubs; under that ordering never-visited frontier entries
  // (lastvisited = 0) still drain first, then the stalest pages. Re-visits
  // refresh relevance, class and lastvisited; links are recorded only on
  // the first visit.
  Status ScheduleRevisits(const sql::Table* hubs, int count);

 private:
  // One fetch-classify-expand step; false when the frontier is empty.
  Result<bool> Step();
  Status ExpandLinks(const webgraph::SimulatedWeb::FetchResult& fetch,
                     const PageJudgment& judgment);
  Status RunDistillationBoost();
  // Recomputes PageRank over LINK and pushes the scores into the frontier
  // (the Cho et al. perceived-prestige ordering).
  Status RefreshPageRankPriorities();

  webgraph::SimulatedWeb* web_;
  RelevanceEvaluator* evaluator_;
  CrawlDb* db_;
  CrawlerOptions options_;
  Frontier frontier_;
  VirtualClock clock_;
  text::Tokenizer tokenizer_;
  distill::DistillTables distill_tables_;
  bool distill_tables_ready_ = false;
  sql::Catalog* catalog_;

  std::unordered_map<int32_t, int32_t> server_fetches_;
  // Pages whose outlinks are already in LINK (revisits must not duplicate
  // edges).
  std::unordered_set<uint64_t> links_recorded_;
  // Citations seen so far per unvisited page (Cho backlink ordering).
  std::unordered_map<uint64_t, int32_t> backlink_counts_;
  std::vector<Visit> visits_;
  CrawlStats stats_;
  int in_flight_ = 0;  // fetches started but not yet recorded
  std::mutex mutex_;  // guards everything above in multi-threaded crawls
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_CRAWLER_H_
