// The focused crawler (§2, §3.2): fetch → classify → expand, driven by the
// classifier's relevance judgments and (optionally) periodic distillation.
#ifndef FOCUS_CRAWL_CRAWLER_H_
#define FOCUS_CRAWL_CRAWLER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crawl/circuit_breaker.h"
#include "crawl/crawl_db.h"
#include "crawl/frontier.h"
#include "crawl/relevance_evaluator.h"
#include "crawl/retry_policy.h"
#include "distill/distiller.h"
#include "sql/catalog.h"
#include "text/tokenizer.h"
#include "util/clock.h"
#include "webgraph/simulated_web.h"

namespace focus::obs {
class EventLog;
class MetricsRegistry;
}  // namespace focus::obs

namespace focus::crawl {

// How relevance judgments gate link expansion (§2.1.2).
enum class ExpansionRule {
  // Insert outlinks always; the frontier priority (relevance-ordered) does
  // the focusing. The paper's preferred, stagnation-robust rule.
  kSoftFocus,
  // Expand only when the best leaf class has a good ancestor-or-self.
  // Faithful to the paper's description — and to its failure mode: crawls
  // can stagnate (§2.1.2, §3.7).
  kHardFocus,
  // Ignore the classifier for control (still recorded for measurement):
  // the standard-crawler baseline of Figure 5(a).
  kUnfocused,
};

// Routes link discoveries whose target belongs to another crawl shard
// (distributed crawl, src/dist). When a crawler has a sink, expansion of a
// non-owned target journals an admission for the owner (CrawlDb's OUTBOX)
// instead of touching the local frontier; the LINK row is still recorded
// locally, so the crawl graph stays lossless. All calls arrive under the
// crawler's state lock, inside the batch that will commit them.
class CrossShardLinkSink {
 public:
  virtual ~CrossShardLinkSink() = default;
  // True when this crawler's shard owns `url`.
  virtual bool Owns(std::string_view url) const = 0;
  // Journals an admission of `dst_url` discovered by `src_oid`.
  // `raise_if_known` carries the local expansion semantics the owner must
  // mirror (see ExchangeLink::raise_if_known).
  virtual Status ExportLink(uint64_t src_oid, std::string_view dst_url,
                            double relevance, bool raise_if_known) = 0;
};

struct CrawlerOptions {
  int max_fetches = 6000;
  int max_retries = 3;
  ExpansionRule expansion = ExpansionRule::kSoftFocus;
  PriorityPolicy policy = PriorityPolicy::kAggressiveDiscovery;

  // Periodic distillation (0 = off): every `distill_every` visits, refresh
  // edge weights, run the join distiller and raise the priority of
  // unvisited pages cited by the top hubs (§3.2, §3.7).
  int distill_every = 0;
  // For the kPageRankOrder policy: recompute PageRank over the known
  // crawl graph every `pagerank_every` visits and refresh frontier
  // priorities (0 = at seed time only).
  int pagerank_every = 0;
  int distill_iterations = 5;
  double distill_rho = 0.0;
  int top_hubs_to_boost = 15;
  double hub_boost_relevance = 0.9;

  // §3.2's URL-truncation device: when expanding links, also enqueue the
  // host root ("http://host/") of each target, hunting for server index
  // pages.
  bool try_truncated_urls = false;
  // §3.2's backward-crawling device: after fetching a strongly relevant
  // page, enqueue pages that point to it (they are radius-2 hub
  // candidates). Requires the web's backlink metadata service.
  bool expand_backlinks = false;
  int backlinks_per_page = 5;
  double backlink_relevance_threshold = 0.5;

  int num_threads = 1;
  // Pages accumulated by a fetch worker before one batched classify call
  // (the paper's §2.1.3 batching insight applied to the live crawl loop).
  // Only the multi-threaded pipeline batches; single-threaded crawls judge
  // page-by-page for exact historical determinism.
  int classify_batch_size = 32;
  // Frontier shards, keyed by ServerIdOf(url). 0 = auto: one shard
  // single-threaded (exactly the classic frontier), else two per thread.
  int frontier_shards = 0;

  // Hostile-web handling: failure classification + backoff (budgeted by
  // max_retries) and per-server circuit breakers. Both make purely
  // time-shifting decisions, so the set of pages a crawl-to-exhaustion
  // visits is identical at any thread count.
  RetryPolicyOptions retry;
  CircuitBreakerOptions breaker;

  // Every Nth committed crawl batch is promoted to a CrawlDb::Checkpoint
  // (overlay flush + log truncation), so crash recovery replays at most
  // one interval of commits. 0 disables periodic checkpoints; -1 inherits
  // core::FocusOptions::checkpoint_every_batches (64 when the crawler is
  // built standalone). No-op without a WAL-backed CrawlDb.
  int checkpoint_every_batches = -1;

  // Registry for the crawler's stage metrics; nullptr = process-global.
  // Benchmarks pass a private registry so repeated runs start from zero.
  obs::MetricsRegistry* metrics_registry = nullptr;

  // Provenance event log; nullptr = disabled (the default — the hot path
  // then pays only a branch per would-be event). When set, the crawler
  // records the full URL lifecycle and attaches the log to its frontier,
  // breaker registry and retry policy.
  obs::EventLog* event_log = nullptr;

  // Distributed crawl hooks (src/dist). `link_sink` diverts expansion of
  // non-owned URLs into the cross-shard exchange; nullptr = single-shard
  // behavior. `interrupt` is polled with the current virtual time at every
  // step/batch boundary; a non-OK return aborts the crawl with that status
  // (the ShardFaultPlan's scheduled shard deaths). Both borrowed/copied;
  // the sink must outlive the crawler.
  CrossShardLinkSink* link_sink = nullptr;
  std::function<Status(int64_t virtual_us)> interrupt;
};

struct Visit {
  int fetch_index = 0;  // 0-based order of successful fetches
  uint64_t oid = 0;
  std::string url;
  double relevance = 0;
  taxonomy::Cid best_leaf = 0;
  int64_t virtual_time_us = 0;
};

struct CrawlStats {
  uint64_t attempts = 0;
  // Failed attempts that were rescheduled with backoff (transient /
  // timeout / outage classes). attempts == visits + transient_failures +
  // dropped_urls.
  uint64_t transient_failures = 0;
  // Entries abandoned: permanent (404) failures plus retry-budget
  // exhaustion. Deterministic per seed, unlike the timing-dependent
  // attempt counts.
  uint64_t dropped_urls = 0;
  // Frontier pops re-parked because the server's breaker was open.
  uint64_t breaker_skips = 0;
  uint64_t distill_rounds = 0;
  bool stagnated = false;  // frontier ran dry before the budget
};

class StageMetrics;

class Crawler {
 public:
  // `catalog` hosts the HUBS/AUTH tables for periodic distillation; all
  // pointers must outlive the crawler.
  Crawler(webgraph::SimulatedWeb* web, RelevanceEvaluator* evaluator,
          CrawlDb* db, sql::Catalog* catalog, CrawlerOptions options);
  ~Crawler();

  // Registers a start URL with relevance estimate 1.
  Status AddSeed(std::string_view url);

  // Rebuilds the in-memory frontier from the CRAWL table — the recovery
  // path §3.1 motivates ("Few pages on the Web are formally checked for
  // well-formedness, hence all crawlers crash"): the table is the durable
  // crawl state; a fresh Crawler over the same CrawlDb resumes where the
  // dead one stopped. Unvisited rows within the retry limit re-enter the
  // frontier with their stored priority fields; visited rows seed the
  // link-dedup set so resumed revisits do not duplicate LINK rows.
  Status ResumeFromDb();

  // Runs until the fetch budget is spent or the frontier stagnates.
  Status Crawl();

  const std::vector<Visit>& visits() const { return visits_; }
  const CrawlStats& stats() const { return stats_; }
  const VirtualClock& clock() const { return clock_; }
  ShardedFrontier* frontier() { return &frontier_; }
  // Breaker states, for the admin /frontier endpoint (internally locked).
  const CircuitBreakerRegistry& breakers() const { return breaker_; }
  // Per-stage pipeline counters (fetch/classify/expand time, lock wait,
  // batch occupancy, work stealing).
  const StageMetrics& stage_metrics() const { return *stage_metrics_; }
  CrawlDb* db() const { return db_; }
  const distill::DistillTables& distill_tables() const {
    return distill_tables_;
  }

  // Switches the frontier ordering mid-crawl (§3.2's dynamically
  // reconfigurable priority controls).
  void SetPolicy(PriorityPolicy policy) { frontier_.SetPolicy(policy); }

  // Crawl maintenance (§3.2): re-enqueues up to `count` already-visited
  // pages under the (lastvisited asc, hub_score desc) ordering and raises
  // the fetch budget accordingly. `hubs` supplies hub scores from a
  // distillation round (may be null). Switches the frontier policy to
  // kRevisitHubs; under that ordering never-visited frontier entries
  // (lastvisited = 0) still drain first, then the stalest pages. Re-visits
  // refresh relevance, class and lastvisited; links are recorded only on
  // the first visit.
  Status ScheduleRevisits(const sql::Table* hubs, int count);

  // Applies one cross-shard admission delivered by the link exchange:
  // unknown URLs enter CRAWL and the frontier with `relevance` as their
  // estimate; known unvisited rows are raised to `relevance` when
  // `raise_if_known` (max semantics, so redelivery after a crash is
  // idempotent); visited rows are no-ops. The caller owns durability —
  // admissions and the exchange watermark commit as one batch.
  Status AdmitRemoteLink(std::string_view url, double relevance,
                         int64_t parent_oid, bool raise_if_known);

 private:
  // A page that cleared the fetch stage, waiting for classification.
  struct FetchedPage {
    FrontierEntry entry;
    webgraph::SimulatedWeb::FetchResult fetch;
    int64_t fetched_at_us = 0;  // the fetching worker's virtual time
    text::TermVector terms;
  };

  // One fetch-classify-expand step (single-threaded path); false when the
  // frontier is empty or the budget is spent.
  Result<bool> Step();
  // The concurrent pipeline (num_threads > 1): sharded frontier pops,
  // micro-batched classification, fine-grained critical sections.
  Status RunPipeline();
  // One worker's loop. `worker` indexes its preferred frontier shard;
  // `worker_clock` accumulates the worker's virtual fetch timeline.
  Status PipelineWorker(int worker, VirtualClock* worker_clock);
  // Pops up to classify_batch_size entries ready at the worker's virtual
  // time and admitted by their server's breaker, reserving each against
  // the fetch budget via in_flight_.
  std::vector<FrontierEntry> GatherBatch(int worker,
                                         VirtualClock* worker_clock);
  // Classifies a failed fetch, charges its retry budget (persisting via
  // CrawlDb::RecordFailure) and either drops the entry or re-parks it with
  // backoff. Caller holds state_mutex_.
  Status HandleFetchFailure(const FrontierEntry& entry, const Status& error,
                            int64_t at_us);
  // Records a breaker transition (metrics + persistence dirty queue).
  void NoteBreakerOutcome(const BreakerOutcome& outcome);
  // Writes queued breaker transitions to the BREAKER table. Caller holds
  // state_mutex_.
  Status FlushBreakerState();
  // Records a classified batch under one state critical section.
  Status RecordBatch(std::vector<FetchedPage>* pages,
                     const std::vector<PageJudgment>& judgments);
  // Runs any distillation / PageRank refresh whose visit threshold has
  // been crossed. Caller holds state_mutex_.
  Status RunPeriodicBoosts();
  // Commits the current durable batch; every checkpoint_every_batches-th
  // commit is promoted to a full checkpoint so the WAL never holds more
  // than one interval of commits. Caller holds state_mutex_.
  Status CommitBatch();

  // `at_us` is the visit's virtual time (stamps admit events).
  Status ExpandLinks(const webgraph::SimulatedWeb::FetchResult& fetch,
                     const PageJudgment& judgment, int64_t at_us);
  // Journals a non-owned link target into the sink, suppressing exports
  // the owner would no-op (same estimate or lower for raise-mode targets;
  // any repeat for admit-if-unknown targets). Caller holds state_mutex_.
  Status ExportRemoteLink(uint64_t src_oid, const std::string& dst_url,
                          double relevance, bool raise_if_known);
  Status RunDistillationBoost();
  // Recomputes PageRank over LINK and pushes the scores into the frontier
  // (the Cho et al. perceived-prestige ordering).
  Status RefreshPageRankPriorities();

  webgraph::SimulatedWeb* web_;
  RelevanceEvaluator* evaluator_;
  CrawlDb* db_;
  CrawlerOptions options_;
  ShardedFrontier frontier_;  // internally locked, one lock per shard
  VirtualClock clock_;
  text::Tokenizer tokenizer_;
  distill::DistillTables distill_tables_;
  bool distill_tables_ready_ = false;
  sql::Catalog* catalog_;
  std::unique_ptr<StageMetrics> stage_metrics_;
  RetryPolicy retry_policy_;
  CircuitBreakerRegistry breaker_;
  // Breaker transitions awaiting persistence. Appended lock-free of the
  // crawl state (own small mutex, safe from fetch workers); drained into
  // the BREAKER table by FlushBreakerState under state_mutex_.
  std::mutex breaker_dirty_mu_;
  std::vector<BreakerRecord> breaker_dirty_;

  std::unordered_map<int32_t, int32_t> server_fetches_;
  // Pages whose outlinks are already in LINK (revisits must not duplicate
  // edges).
  std::unordered_set<uint64_t> links_recorded_;
  // Citations seen so far per unvisited page (Cho backlink ordering).
  std::unordered_map<uint64_t, int32_t> backlink_counts_;
  // Export dedup (guarded by state_mutex_): best estimate already
  // journaled per raise-mode target, and admit-if-unknown targets already
  // journaled once. Purely an outbox-volume optimization — both are lost
  // on a crash and re-exports are idempotent at the owner.
  std::unordered_map<uint64_t, double> raise_exported_;
  std::unordered_set<uint64_t> admit_exported_;
  std::vector<Visit> visits_;
  CrawlStats stats_;
  // Visit counts at which the next distillation / PageRank refresh fire
  // (thresholds rather than modulo so batched recording cannot step over a
  // trigger).
  uint64_t next_distill_at_ = 0;
  uint64_t next_pagerank_at_ = 0;
  // Commits since the last periodic checkpoint (guarded by state_mutex_).
  int commits_since_checkpoint_ = 0;

  // Fetches reserved against the budget but not yet recorded or failed.
  std::atomic<int> in_flight_{0};
  // Set when a pipeline worker fails, so its peers stop instead of waiting
  // on reservations that will never be released.
  std::atomic<bool> abort_{false};
  // Guards db_, visits_, stats_, server/backlink/link bookkeeping and the
  // periodic-boost thresholds. The frontier (per-shard locks) and the web
  // (web_mutex_) are guarded separately so fetch workers only contend here
  // in the short record sections.
  std::mutex state_mutex_;
  // Serializes SimulatedWeb access (fetch simulation mutates RNG and
  // bookkeeping state).
  std::mutex web_mutex_;
  // Signaled when budget or frontier state changes; idle workers wait.
  std::condition_variable work_cv_;
};

}  // namespace focus::crawl

#endif  // FOCUS_CRAWL_CRAWLER_H_
