// Relevance-weighted HITS (§2.2) — in-memory reference implementation.
//
// Kleinberg's mutual recursion with the paper's enhancements:
//   * forward edge weight  EF[u,v] = relevance(v)  (stored as wgt_fwd),
//   * backward edge weight EB[u,v] = relevance(u)  (stored as wgt_rev),
//   * nepotism filter: edges within one server (sid_src == sid_dst) are
//     ignored,
//   * authority updates only flow to pages with relevance > rho.
// One iteration = UpdateAuth (from hubs) then UpdateHubs (from the new
// authorities), each L1-normalized, exactly as in Figure 4.
#ifndef FOCUS_DISTILL_HITS_H_
#define FOCUS_DISTILL_HITS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace focus::distill {

struct WeightedEdge {
  uint64_t oid_src = 0;
  int32_t sid_src = 0;
  uint64_t oid_dst = 0;
  int32_t sid_dst = 0;
  double wgt_fwd = 0;  // EF[u,v] = relevance(v)
  double wgt_rev = 0;  // EB[u,v] = relevance(u)
};

struct HubAuthScore {
  double hub = 0;
  double auth = 0;
};

struct HitsOptions {
  int iterations = 20;
  // Authority relevance threshold rho (Figure 4's filter).
  double rho = 0.0;
  // Ignore same-server edges (always on in the paper; exposed here so the
  // ablation bench can quantify what the filter buys). The DB-resident
  // distillers always filter.
  bool nepotism_filter = true;
};

class HitsEngine {
 public:
  // `relevance` maps oid -> R(u); pages absent from the map are treated as
  // relevance 0 (they fail any rho >= 0 filter).
  HitsEngine(std::vector<WeightedEdge> edges,
             std::unordered_map<uint64_t, double> relevance);

  // Runs the iterations and returns final scores per oid.
  std::unordered_map<uint64_t, HubAuthScore> Run(
      const HitsOptions& options) const;

  // Top-k oids by hub / authority score (descending, oid tiebreak for
  // determinism).
  static std::vector<std::pair<uint64_t, double>> TopHubs(
      const std::unordered_map<uint64_t, HubAuthScore>& scores, int k);
  static std::vector<std::pair<uint64_t, double>> TopAuthorities(
      const std::unordered_map<uint64_t, HubAuthScore>& scores, int k);

 private:
  std::vector<WeightedEdge> edges_;
  std::unordered_map<uint64_t, double> relevance_;
};

// Assigns the paper's edge weights from endpoint relevances:
// wgt_fwd = R(dst), wgt_rev = R(src).
void AssignRelevanceWeights(std::unordered_map<uint64_t, double> const&
                                relevance,
                            std::vector<WeightedEdge>* edges);

}  // namespace focus::distill

#endif  // FOCUS_DISTILL_HITS_H_
