#include "distill/hits.h"

#include <algorithm>

namespace focus::distill {

HitsEngine::HitsEngine(std::vector<WeightedEdge> edges,
                       std::unordered_map<uint64_t, double> relevance)
    : edges_(std::move(edges)), relevance_(std::move(relevance)) {}

std::unordered_map<uint64_t, HubAuthScore> HitsEngine::Run(
    const HitsOptions& options) const {
  std::unordered_map<uint64_t, HubAuthScore> scores;
  auto relevance_of = [&](uint64_t oid) {
    auto it = relevance_.find(oid);
    return it == relevance_.end() ? 0.0 : it->second;
  };
  // Initialize hub scores uniformly over link sources.
  for (const auto& e : edges_) {
    scores[e.oid_src];
    scores[e.oid_dst];
  }
  if (scores.empty()) return scores;
  for (auto& [oid, s] : scores) s.hub = 1.0;

  for (int iter = 0; iter < options.iterations; ++iter) {
    // UpdateAuth: a(v) = sum over edges (u,v), u off-server, R(v) > rho of
    // h(u) * wgt_fwd.
    for (auto& [oid, s] : scores) s.auth = 0;
    for (const auto& e : edges_) {
      if (options.nepotism_filter && e.sid_src == e.sid_dst) continue;
      if (relevance_of(e.oid_dst) <= options.rho) continue;
      scores[e.oid_dst].auth += scores[e.oid_src].hub * e.wgt_fwd;
    }
    double auth_total = 0;
    for (const auto& [oid, s] : scores) auth_total += s.auth;
    if (auth_total > 0) {
      for (auto& [oid, s] : scores) s.auth /= auth_total;
    }
    // UpdateHubs: h(u) = sum over edges (u,v), off-server, of
    // a(v) * wgt_rev.
    for (auto& [oid, s] : scores) s.hub = 0;
    for (const auto& e : edges_) {
      if (options.nepotism_filter && e.sid_src == e.sid_dst) continue;
      scores[e.oid_src].hub += scores[e.oid_dst].auth * e.wgt_rev;
    }
    double hub_total = 0;
    for (const auto& [oid, s] : scores) hub_total += s.hub;
    if (hub_total > 0) {
      for (auto& [oid, s] : scores) s.hub /= hub_total;
    }
  }
  return scores;
}

namespace {
std::vector<std::pair<uint64_t, double>> TopBy(
    const std::unordered_map<uint64_t, HubAuthScore>& scores, int k,
    bool hub) {
  std::vector<std::pair<uint64_t, double>> all;
  all.reserve(scores.size());
  for (const auto& [oid, s] : scores) {
    all.emplace_back(oid, hub ? s.hub : s.auth);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}
}  // namespace

std::vector<std::pair<uint64_t, double>> HitsEngine::TopHubs(
    const std::unordered_map<uint64_t, HubAuthScore>& scores, int k) {
  return TopBy(scores, k, /*hub=*/true);
}

std::vector<std::pair<uint64_t, double>> HitsEngine::TopAuthorities(
    const std::unordered_map<uint64_t, HubAuthScore>& scores, int k) {
  return TopBy(scores, k, /*hub=*/false);
}

void AssignRelevanceWeights(
    std::unordered_map<uint64_t, double> const& relevance,
    std::vector<WeightedEdge>* edges) {
  auto relevance_of = [&](uint64_t oid) {
    auto it = relevance.find(oid);
    return it == relevance.end() ? 0.0 : it->second;
  };
  for (auto& e : *edges) {
    e.wgt_fwd = relevance_of(e.oid_dst);
    e.wgt_rev = relevance_of(e.oid_src);
  }
}

}  // namespace focus::distill
