#include "distill/pagerank.h"

namespace focus::distill {

std::vector<double> PageRank(
    size_t num_nodes, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    const PageRankOptions& options) {
  if (num_nodes == 0) return {};
  std::vector<int> outdeg(num_nodes, 0);
  for (const auto& [u, v] : edges) ++outdeg[u];

  std::vector<double> rank(num_nodes, 1.0 / num_nodes);
  std::vector<double> next(num_nodes, 0.0);
  for (int iter = 0; iter < options.iterations; ++iter) {
    double dangling = 0;
    for (size_t i = 0; i < num_nodes; ++i) {
      if (outdeg[i] == 0) dangling += rank[i];
      next[i] = 0;
    }
    for (const auto& [u, v] : edges) {
      next[v] += rank[u] / outdeg[u];
    }
    double base = (1.0 - options.damping) / num_nodes +
                  options.damping * dangling / num_nodes;
    for (size_t i = 0; i < num_nodes; ++i) {
      rank[i] = base + options.damping * next[i];
    }
  }
  return rank;
}

}  // namespace focus::distill
