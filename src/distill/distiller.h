// DB-resident distillation (§2.2.3): shared table handles and interface.
//
// Two implementations run against the same LINK/HUBS/AUTH/CRAWL tables:
//   * NaiveDistiller  — sequential LINK scan with per-edge index lookups
//     and score updates (the pre-database, main-memory style);
//   * JoinDistiller   — each update expressed as the Figure 4 join +
//     group-by plan, with HUBS/AUTH bulk-replaced in sorted order.
// Both reproduce HitsEngine's scores exactly (tested); Figure 8(d) measures
// their I/O difference.
#ifndef FOCUS_DISTILL_DISTILLER_H_
#define FOCUS_DISTILL_DISTILLER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "distill/hits.h"
#include "obs/metrics.h"
#include "sql/catalog.h"
#include "sql/table.h"
#include "util/status.h"

namespace focus::distill {

struct DistillTables {
  // LINK(oid_src:int64, sid_src:int32, oid_dst:int64, sid_dst:int32,
  //      wgt_fwd:double, wgt_rev:double), indexes by_src, by_dst.
  sql::Table* link = nullptr;
  // HUBS/AUTH(oid:int64, score:double), index by_oid. Maintained in
  // ascending-oid heap order by the join distiller.
  sql::Table* hubs = nullptr;
  sql::Table* auth = nullptr;
  // Any table with "oid" (int64) and "relevance" (double) columns and an
  // index named "by_oid"; normally the crawler's CRAWL table.
  sql::Table* crawl = nullptr;
};

// Creates empty HUBS and AUTH tables in `catalog` (names "HUBS", "AUTH").
Status CreateHubsAuthTables(sql::Catalog* catalog, DistillTables* tables);

class Distiller {
 public:
  struct Stats {
    double scan_seconds = 0;    // LINK scans
    double lookup_seconds = 0;  // per-edge index lookups (naive only)
    double update_seconds = 0;  // score writes / bulk replacement
    double join_seconds = 0;    // join+aggregate execution (join only)
    // Dangling-edge audit (join distiller's Initialize): LINK rows whose
    // endpoint has no CRAWL row. Real crawls produce these — a URL row
    // purged after its retry budget is exhausted leaves its citations
    // behind. The distiller tolerates them (the Figure 4 joins simply
    // drop such edges) and counts them here so the §3.7 admin can see
    // how much of the graph a hostile web has torn off.
    uint64_t dangling_src_edges = 0;
    uint64_t dangling_dst_edges = 0;
    // Scores clamped to 0 by ReplaceNormalized because they were not
    // finite (defensive: a pathological weight blob must not poison the
    // whole score vector through normalization).
    uint64_t nonfinite_scores = 0;
  };

  virtual ~Distiller() = default;

  // Seeds HUBS with score 1 for every distinct oid_src and clears AUTH.
  virtual Status Initialize() = 0;
  // One UpdateAuth + UpdateHubs round (Figure 4), L1-normalizing each.
  virtual Status RunIteration(double rho) = 0;

  Status Run(const HitsOptions& options);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  // Publishes the latest stats into `registry` (nullptr = process global)
  // as gauges labeled {distiller=name}. Gauge semantics (last write wins)
  // fit the stack-allocated distillers CrawlSession::Distill builds per
  // call: nothing to unregister when the distiller dies.
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& name) const;

  // Opt-in convergence tracking: when enabled, Run() records the L1
  // distance between successive hub-score vectors after each iteration.
  // Off by default — each residual costs an extra HUBS scan, which would
  // distort the Figure 8(d) I/O measurements.
  void EnableResidualTracking(bool on) { track_residuals_ = on; }
  const std::vector<double>& residuals() const { return residuals_; }

 protected:
  explicit Distiller(DistillTables tables) : tables_(tables) {}

  DistillTables tables_;
  Stats stats_;
  bool track_residuals_ = false;
  std::vector<double> residuals_;
};

// Reads a score table (HUBS or AUTH) into an oid -> score map.
Result<std::unordered_map<uint64_t, double>> CollectScores(
    const sql::Table* table);

}  // namespace focus::distill

#endif  // FOCUS_DISTILL_DISTILLER_H_
