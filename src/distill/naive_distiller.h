// Naive distillation: per-edge index lookups and in-place score updates
// (the "Index" bars of Figure 8(d)).
#ifndef FOCUS_DISTILL_NAIVE_DISTILLER_H_
#define FOCUS_DISTILL_NAIVE_DISTILLER_H_

#include "distill/distiller.h"

namespace focus::distill {

class NaiveDistiller final : public Distiller {
 public:
  explicit NaiveDistiller(DistillTables tables) : Distiller(tables) {}

  Status Initialize() override;
  Status RunIteration(double rho) override;

 private:
  // Sets every score in `table` to value (or scales by 1/total).
  Status ZeroScores(sql::Table* table);
  Status NormalizeScores(sql::Table* table);
  // Probes `table`'s by_oid index; 0 when absent.
  Result<double> LookupScore(const sql::Table* table, int64_t oid) const;
  // Adds delta to the row with `oid` (which must exist).
  Status AddToScore(sql::Table* table, int64_t oid, double delta);
  Result<double> LookupRelevance(int64_t oid) const;

  int crawl_oid_col_ = -1;
  int crawl_rel_col_ = -1;
};

}  // namespace focus::distill

#endif  // FOCUS_DISTILL_NAIVE_DISTILLER_H_
