// Join-based distillation — the Figure 4 SQL, as executor plans
// (the "Join" bars of Figure 8(d)).
//
//   insert into AUTH(oid, score)
//     select oid_dst, sum(score * wgt_fwd)
//     from HUBS, LINK, CRAWL
//     where sid_src <> sid_dst and HUBS.oid = oid_src
//       and oid_dst = CRAWL.oid and relevance > rho
//     group by oid_dst;  -- then normalize
// and symmetrically for HUBS (without the relevance filter).
#ifndef FOCUS_DISTILL_JOIN_DISTILLER_H_
#define FOCUS_DISTILL_JOIN_DISTILLER_H_

#include <memory>

#include "distill/distiller.h"
#include "sql/exec/analyze.h"
#include "sql/exec/parallel.h"

namespace focus::distill {

class JoinDistiller final : public Distiller {
 public:
  explicit JoinDistiller(DistillTables tables) : Distiller(tables) {}

  Status Initialize() override;
  Status RunIteration(double rho) override;

  // Like RunIteration, but records every operator of the UpdateAuth and
  // UpdateHubs plans into `plan` (EXPLAIN ANALYZE for Figure 4). `plan`
  // may be null, in which case this is exactly RunIteration.
  Status RunIterationWithPlan(double rho, sql::PlanStats* plan);

  // Selects the executor for the Figure 4 plans. Defaults to the
  // vectorized batch engine; the scalar Volcano path stays available for
  // comparison benchmarks and equivalence tests, and kParallel runs the
  // batch plans morsel-parallel with bit-identical results. kEncoded
  // lets the cost model (cost_model.h) pick the access path per join
  // node: the relevant-page restriction becomes a semi-join against the
  // sorted oid domain when probing wins, and the HUBS/AUTH joins switch
  // between index probe and sort-merge as their sizes dictate — all
  // bit-identical to the other engines.
  void SetEngine(sql::ExecEngine engine) { engine_ = engine; }
  sql::ExecEngine engine() const { return engine_; }

  // Worker count for kParallel (including the calling thread; 1 = inline).
  // Takes effect on the next RunIteration. Default 4.
  void SetParallelThreads(int threads) {
    if (threads != parallel_threads_) {
      parallel_threads_ = threads;
      dispatcher_.reset();
    }
  }
  int parallel_threads() const { return parallel_threads_; }

 private:
  // Replaces `table`'s rows with `rows` scaled to sum 1, in input order
  // (callers supply ascending-oid rows so the heap stays merge-ready).
  Status ReplaceNormalized(sql::Table* table,
                           const std::vector<sql::Tuple>& rows);

  // Counts LINK rows whose src/dst oid has no CRAWL row (purged or lost
  // URLs) into stats_; such edges are tolerated — the joins drop them.
  Status AuditDanglingEdges();

  Status UpdateAuth(double rho);
  Status UpdateHubs();
  Status UpdateAuthVec(double rho);
  Status UpdateHubsVec();

  // The dispatcher for kParallel plans, created on first use.
  sql::MorselDispatcher* dispatcher();

  sql::ExecEngine engine_ = sql::ExecEngine::kVectorized;
  int parallel_threads_ = 4;
  std::unique_ptr<sql::MorselDispatcher> dispatcher_;
  int crawl_oid_col_ = -1;
  int crawl_rel_col_ = -1;
  // Non-null only inside RunIterationWithPlan.
  sql::PlanStats* plan_ = nullptr;
};

}  // namespace focus::distill

#endif  // FOCUS_DISTILL_JOIN_DISTILLER_H_
