#include "distill/naive_distiller.h"

#include <set>

#include "util/clock.h"
#include "util/string_util.h"

namespace focus::distill {

using sql::Tuple;
using sql::Value;

Status NaiveDistiller::Initialize() {
  crawl_oid_col_ = tables_.crawl->schema().ColumnIndex("oid");
  crawl_rel_col_ = tables_.crawl->schema().ColumnIndex("relevance");
  if (crawl_oid_col_ < 0 || crawl_rel_col_ < 0) {
    return Status::InvalidArgument(
        "crawl table must have oid and relevance columns");
  }
  // Distinct sources (hub candidates, score 1) and destinations
  // (authority candidates, score 0), in ascending oid order.
  std::set<int64_t> srcs, dsts;
  auto it = tables_.link->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    srcs.insert(row.Get(0).AsInt64());
    dsts.insert(row.Get(2).AsInt64());
  }
  FOCUS_RETURN_IF_ERROR(it.status());
  FOCUS_RETURN_IF_ERROR(tables_.hubs->Clear());
  FOCUS_RETURN_IF_ERROR(tables_.auth->Clear());
  for (int64_t oid : srcs) {
    FOCUS_RETURN_IF_ERROR(
        tables_.hubs->Insert(Tuple({Value::Int64(oid), Value::Double(1.0)}))
            .status());
  }
  for (int64_t oid : dsts) {
    FOCUS_RETURN_IF_ERROR(
        tables_.auth->Insert(Tuple({Value::Int64(oid), Value::Double(0.0)}))
            .status());
  }
  return Status::OK();
}

Status NaiveDistiller::ZeroScores(sql::Table* table) {
  Stopwatch timer;
  auto it = table->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    row.Mutable(1) = Value::Double(0.0);
    FOCUS_RETURN_IF_ERROR(table->Update(rid, row));
  }
  FOCUS_RETURN_IF_ERROR(it.status());
  stats_.update_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

Status NaiveDistiller::NormalizeScores(sql::Table* table) {
  Stopwatch timer;
  double total = 0;
  {
    auto it = table->Scan();
    storage::Rid rid;
    Tuple row;
    while (it.Next(&rid, &row)) total += row.Get(1).AsDouble();
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  if (total > 0) {
    auto it = table->Scan();
    storage::Rid rid;
    Tuple row;
    while (it.Next(&rid, &row)) {
      row.Mutable(1) = Value::Double(row.Get(1).AsDouble() / total);
      FOCUS_RETURN_IF_ERROR(table->Update(rid, row));
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  stats_.update_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

Result<double> NaiveDistiller::LookupScore(const sql::Table* table,
                                           int64_t oid) const {
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(
      table->IndexLookup(table->IndexId("by_oid"), {Value::Int64(oid)},
                         &rids));
  if (rids.empty()) return 0.0;
  Tuple row;
  FOCUS_RETURN_IF_ERROR(table->Get(rids[0], &row));
  return row.Get(1).AsDouble();
}

Status NaiveDistiller::AddToScore(sql::Table* table, int64_t oid,
                                  double delta) {
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(
      table->IndexLookup(table->IndexId("by_oid"), {Value::Int64(oid)},
                         &rids));
  if (rids.empty()) {
    return Status::Internal(StrCat("score row missing for oid ", oid));
  }
  Tuple row;
  FOCUS_RETURN_IF_ERROR(table->Get(rids[0], &row));
  row.Mutable(1) = Value::Double(row.Get(1).AsDouble() + delta);
  return table->Update(rids[0], row);
}

Result<double> NaiveDistiller::LookupRelevance(int64_t oid) const {
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(tables_.crawl->IndexLookup(
      tables_.crawl->IndexId("by_oid"), {Value::Int64(oid)}, &rids));
  if (rids.empty()) return 0.0;
  Tuple row;
  FOCUS_RETURN_IF_ERROR(tables_.crawl->Get(rids[0], &row));
  return row.Get(crawl_rel_col_).AsDouble();
}

Status NaiveDistiller::RunIteration(double rho) {
  // --- UpdateAuth ---
  FOCUS_RETURN_IF_ERROR(ZeroScores(tables_.auth));
  {
    auto it = tables_.link->Scan();
    storage::Rid rid;
    Tuple row;
    for (;;) {
      Stopwatch scan_timer;
      bool more = it.Next(&rid, &row);
      stats_.scan_seconds += scan_timer.ElapsedSeconds();
      if (!more) break;
      if (row.Get(1).AsInt32() == row.Get(3).AsInt32()) continue;  // nepotism
      Stopwatch lookup_timer;
      FOCUS_ASSIGN_OR_RETURN(double relevance,
                             LookupRelevance(row.Get(2).AsInt64()));
      if (relevance <= rho) {
        stats_.lookup_seconds += lookup_timer.ElapsedSeconds();
        continue;
      }
      FOCUS_ASSIGN_OR_RETURN(double hub,
                             LookupScore(tables_.hubs,
                                         row.Get(0).AsInt64()));
      stats_.lookup_seconds += lookup_timer.ElapsedSeconds();
      Stopwatch update_timer;
      FOCUS_RETURN_IF_ERROR(AddToScore(tables_.auth, row.Get(2).AsInt64(),
                                       hub * row.Get(4).AsDouble()));
      stats_.update_seconds += update_timer.ElapsedSeconds();
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  FOCUS_RETURN_IF_ERROR(NormalizeScores(tables_.auth));

  // --- UpdateHubs ---
  FOCUS_RETURN_IF_ERROR(ZeroScores(tables_.hubs));
  {
    auto it = tables_.link->Scan();
    storage::Rid rid;
    Tuple row;
    for (;;) {
      Stopwatch scan_timer;
      bool more = it.Next(&rid, &row);
      stats_.scan_seconds += scan_timer.ElapsedSeconds();
      if (!more) break;
      if (row.Get(1).AsInt32() == row.Get(3).AsInt32()) continue;
      Stopwatch lookup_timer;
      FOCUS_ASSIGN_OR_RETURN(double auth,
                             LookupScore(tables_.auth,
                                         row.Get(2).AsInt64()));
      stats_.lookup_seconds += lookup_timer.ElapsedSeconds();
      Stopwatch update_timer;
      FOCUS_RETURN_IF_ERROR(AddToScore(tables_.hubs, row.Get(0).AsInt64(),
                                       auth * row.Get(5).AsDouble()));
      stats_.update_seconds += update_timer.ElapsedSeconds();
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  return NormalizeScores(tables_.hubs);
}

}  // namespace focus::distill
