#include "distill/distiller.h"

#include <cmath>

namespace focus::distill {

using sql::IndexSpec;
using sql::Schema;
using sql::Tuple;
using sql::TypeId;

Status CreateHubsAuthTables(sql::Catalog* catalog, DistillTables* tables) {
  Schema score_schema({{"oid", TypeId::kInt64}, {"score", TypeId::kDouble}});
  FOCUS_ASSIGN_OR_RETURN(
      tables->hubs,
      catalog->CreateTable("HUBS", score_schema,
                           {IndexSpec{"by_oid", {0}, {}}}));
  FOCUS_ASSIGN_OR_RETURN(
      tables->auth,
      catalog->CreateTable("AUTH", score_schema,
                           {IndexSpec{"by_oid", {0}, {}}}));
  return Status::OK();
}

namespace {

// L1 distance over the union of keys (missing key = score 0).
double L1Residual(const std::unordered_map<uint64_t, double>& a,
                  const std::unordered_map<uint64_t, double>& b) {
  double d = 0;
  for (const auto& [oid, score] : a) {
    auto it = b.find(oid);
    d += std::abs(score - (it == b.end() ? 0.0 : it->second));
  }
  for (const auto& [oid, score] : b) {
    if (!a.contains(oid)) d += std::abs(score);
  }
  return d;
}

}  // namespace

void Distiller::ExportMetrics(obs::MetricsRegistry* registry,
                              const std::string& name) const {
  registry = obs::MetricsRegistry::OrGlobal(registry);
  registry
      ->GetGauge("focus_distill_dangling_edges",
                 {{"distiller", name}, {"endpoint", "src"}})
      ->Set(static_cast<double>(stats_.dangling_src_edges));
  registry
      ->GetGauge("focus_distill_dangling_edges",
                 {{"distiller", name}, {"endpoint", "dst"}})
      ->Set(static_cast<double>(stats_.dangling_dst_edges));
  registry
      ->GetGauge("focus_distill_nonfinite_scores", {{"distiller", name}})
      ->Set(static_cast<double>(stats_.nonfinite_scores));
}

Status Distiller::Run(const HitsOptions& options) {
  FOCUS_RETURN_IF_ERROR(Initialize());
  std::unordered_map<uint64_t, double> prev;
  if (track_residuals_) {
    residuals_.clear();
    FOCUS_ASSIGN_OR_RETURN(prev, CollectScores(tables_.hubs));
  }
  for (int i = 0; i < options.iterations; ++i) {
    FOCUS_RETURN_IF_ERROR(RunIteration(options.rho));
    if (track_residuals_) {
      FOCUS_ASSIGN_OR_RETURN(auto cur, CollectScores(tables_.hubs));
      residuals_.push_back(L1Residual(prev, cur));
      prev = std::move(cur);
    }
  }
  return Status::OK();
}

Result<std::unordered_map<uint64_t, double>> CollectScores(
    const sql::Table* table) {
  std::unordered_map<uint64_t, double> out;
  auto it = table->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    out[static_cast<uint64_t>(row.Get(0).AsInt64())] = row.Get(1).AsDouble();
  }
  FOCUS_RETURN_IF_ERROR(it.status());
  return out;
}

}  // namespace focus::distill
