#include "distill/distiller.h"

namespace focus::distill {

using sql::IndexSpec;
using sql::Schema;
using sql::Tuple;
using sql::TypeId;

Status CreateHubsAuthTables(sql::Catalog* catalog, DistillTables* tables) {
  Schema score_schema({{"oid", TypeId::kInt64}, {"score", TypeId::kDouble}});
  FOCUS_ASSIGN_OR_RETURN(
      tables->hubs,
      catalog->CreateTable("HUBS", score_schema,
                           {IndexSpec{"by_oid", {0}, {}}}));
  FOCUS_ASSIGN_OR_RETURN(
      tables->auth,
      catalog->CreateTable("AUTH", score_schema,
                           {IndexSpec{"by_oid", {0}, {}}}));
  return Status::OK();
}

Result<std::unordered_map<uint64_t, double>> CollectScores(
    const sql::Table* table) {
  std::unordered_map<uint64_t, double> out;
  auto it = table->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    out[static_cast<uint64_t>(row.Get(0).AsInt64())] = row.Get(1).AsDouble();
  }
  FOCUS_RETURN_IF_ERROR(it.status());
  return out;
}

}  // namespace focus::distill
