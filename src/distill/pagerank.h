// PageRank (Brin & Page) over an explicit edge list.
//
// Used as a baseline crawl-ordering signal (Cho et al.'s "perceived
// prestige" orderings) and as a contrast to the topic-weighted HITS
// distiller: PageRank has no notion of page content (§1.4).
#ifndef FOCUS_DISTILL_PAGERANK_H_
#define FOCUS_DISTILL_PAGERANK_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace focus::distill {

struct PageRankOptions {
  double damping = 0.85;
  int iterations = 30;
};

// Computes PageRank for nodes [0, num_nodes) from directed `edges`.
// Dangling mass is redistributed uniformly. Scores sum to 1.
std::vector<double> PageRank(
    size_t num_nodes, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    const PageRankOptions& options = {});

}  // namespace focus::distill

#endif  // FOCUS_DISTILL_PAGERANK_H_
